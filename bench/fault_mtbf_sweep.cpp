// MTBF sweep — MRCP-RM vs MinEDF-WC under injected resource failures.
//
// For each per-resource MTBF value, both resource managers replay the
// same synthetic workload under the *same* fault trace (the injector's
// trace depends only on (fault seed, MTBF, MTTR, cluster size), never on
// policy decisions — common random numbers across the comparison). Rows
// report the paper's T and P series plus the failure-attribution
// metrics: tasks killed, wasted work, and late jobs that had a task
// killed or slowed.
//
// MTBF = 0 is the fault-free reference row.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"
#include "sweep.h"

using namespace mrcp;

namespace {

struct PolicyStats {
  RunningStat p;
  RunningStat t;
  RunningStat killed;
  RunningStat wasted_s;
  RunningStat late_affected;

  void add(const sim::RunMetrics& run, const sim::FailureMetrics& f) {
    p.add(run.P_percent);
    t.add(run.T_seconds);
    killed.add(static_cast<double>(f.tasks_killed));
    wasted_s.add(f.wasted_seconds());
    late_affected.add(static_cast<double>(f.jobs_late_failure_affected));
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags("MTBF sweep: MRCP-RM vs MinEDF-WC under resource failures");
  bench::add_common_flags(flags);
  flags.add_double("mttr", 120.0, "mean time to repair (s)")
      .add_double("straggler-prob", 0.0, "per-task straggler probability")
      .add_double("straggler-factor", 1.0, "straggler exec-time multiplier")
      .add_int("fault-seed", 7, "fault-injection base seed")
      .add_string("mtbf-values", "0,20000,10000,5000,2500",
                  "comma-separated per-resource MTBF values (s, 0 = none)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const bench::SweepOptions options = bench::SweepOptions::from_flags(flags);
  const SyntheticWorkloadConfig base = bench::table3_defaults(options);
  const MrcpConfig mrcp_config = bench::default_mrcp_config(options);

  std::vector<double> mtbf_values;
  {
    const std::string& spec = flags.get_string("mtbf-values");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      mtbf_values.push_back(std::stod(spec.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  Table table({"mtbf(s)", "rm", "P(%)", "P±", "T(s)", "killed", "wasted(s)",
               "late-affected"});

  for (const double mtbf : mtbf_values) {
    PolicyStats mrcp_stats;
    PolicyStats minedf_stats;
    for (std::size_t rep = 0; rep < options.reps; ++rep) {
      SyntheticWorkloadConfig wc = base;
      wc.seed = replication_seed(options.seed, rep);
      const Workload w = generate_synthetic_workload(wc);

      sim::SimOptions sim_options;
      sim_options.faults.mtbf_s = mtbf;
      sim_options.faults.mttr_s = flags.get_double("mttr");
      sim_options.faults.straggler_prob = flags.get_double("straggler-prob");
      sim_options.faults.straggler_factor =
          flags.get_double("straggler-factor");
      sim_options.faults.seed = replication_seed(
          static_cast<std::uint64_t>(flags.get_int("fault-seed")), rep);

      const sim::SimMetrics mrcp_metrics =
          sim::simulate_mrcp(w, mrcp_config, sim_options);
      mrcp_stats.add(sim::summarize_run(mrcp_metrics, options.warmup),
                     mrcp_metrics.failure);

      const sim::SimMetrics minedf_metrics =
          sim::simulate_minedf(w, baseline::MinEdfConfig{}, sim_options);
      minedf_stats.add(sim::summarize_run(minedf_metrics, options.warmup),
                       minedf_metrics.failure);
    }
    const auto add_rows = [&](const char* name, PolicyStats& s) {
      const auto p_ci = confidence_interval(s.p);
      table.add_row({Table::cell(mtbf, 0), name, Table::cell(p_ci.mean, 2),
                     Table::cell(p_ci.half_width, 2),
                     Table::cell(s.t.mean(), 1), Table::cell(s.killed.mean(), 1),
                     Table::cell(s.wasted_s.mean(), 1),
                     Table::cell(s.late_affected.mean(), 1)});
    };
    add_rows("MRCP-RM", mrcp_stats);
    add_rows("MinEDF-WC", minedf_stats);
  }

  std::printf("%s\n", table.to_string().c_str());
  if (!options.csv_path.empty()) {
    if (table.write_csv(options.csv_path)) {
      std::printf("wrote %s\n", options.csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.csv_path.c_str());
      return 1;
    }
  }
  return 0;
}
