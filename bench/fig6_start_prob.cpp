// Fig. 6 — effect of the advance-reservation probability p.
// Paper finding: same trend as Fig. 5 (O, T, P decrease with p), but the
// decrease in O is milder because s_max stays at its default.
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags("Fig. 6: effect of P(s_j > v_j) (p in {0.1, 0.5, 0.9})");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<double> p = {0.1, 0.5, 0.9};
  std::vector<std::string> labels = {"0.1", "0.5", "0.9"};

  run_mrcp_sweep("Fig. 6 — effect of earliest-start probability p on O, T, N, P",
                 "p", labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.start_prob = p[vi];
                 });
  return 0;
}
