// Shared scaffolding for the figure-reproduction benches.
//
// Every bench is a factor-at-a-time sweep (paper §VI.A): one parameter
// varies, the others sit at the Table 3 defaults, each point is averaged
// over replications with 95% confidence intervals, and the binary prints
// one table row per swept value (O, T, N, P — the series the paper
// plots) plus a CSV file when --csv is given.
//
// Defaults are scaled down (fewer jobs/replications than the paper's
// steady-state runs) so the whole suite finishes in minutes on one core;
// pass --jobs/--reps to run at paper scale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "core/mrcp_rm.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

namespace mrcp::bench {

/// Registers the flags shared by all synthetic-workload sweeps.
void add_common_flags(Flags& flags);

/// Common knobs parsed from flags.
struct SweepOptions {
  std::size_t jobs = 120;
  std::size_t reps = 3;
  std::uint64_t seed = 42;
  double warmup = 0.1;
  double solver_budget_s = 0.1;
  unsigned threads = 1;
  /// CP solver worker threads per invocation (cp::SolveParams::num_threads).
  int solver_threads = 1;
  std::string csv_path;

  static SweepOptions from_flags(const Flags& flags);
};

/// Table 3 defaults (boldface column of the paper, with documented
/// middle-of-range assumptions — see EXPERIMENTS.md).
SyntheticWorkloadConfig table3_defaults(const SweepOptions& options);

MrcpConfig default_mrcp_config(const SweepOptions& options);

/// Run one factor-at-a-time sweep with MRCP-RM: for each value, the
/// mutator adjusts the workload config, `reps` replications run, and one
/// table row is printed.
void run_mrcp_sweep(
    const std::string& title, const std::string& param_name,
    const std::vector<std::string>& param_values, const SweepOptions& options,
    const std::function<void(SyntheticWorkloadConfig&, std::size_t value_index)>&
        mutate,
    const std::function<void(MrcpConfig&, std::size_t value_index)>&
        mutate_rm = nullptr);

}  // namespace mrcp::bench
