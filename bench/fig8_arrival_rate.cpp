// Fig. 8 — effect of the job arrival rate lambda.
// Paper finding: O and T increase with lambda (more live tasks per CP
// model); O/T stays between 0.005% and 0.04%; P rises to ~1.7% at the
// highest rate.
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags(
      "Fig. 8: effect of arrival rate (lambda in {0.001, 0.01, 0.015, 0.02})");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<double> lambda = {0.001, 0.01, 0.015, 0.02};
  std::vector<std::string> labels = {"0.001", "0.01", "0.015", "0.02"};

  run_mrcp_sweep("Fig. 8 — effect of job arrival rate on O, T, N, P",
                 "lambda(jobs/s)", labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.arrival_rate = lambda[vi];
                 });
  return 0;
}
