// Ablation — re-planning scope (paper §VII: "mechanisms that can reduce
// matchmaking and scheduling times when lambda is high").
//
// Paper Table 2 re-maps every unstarted task on each invocation; the
// kNewJobsOnly scope freezes previously planned tasks and only places
// new arrivals into the remaining gaps.
//
// Finding (see EXPERIMENTS.md): at these scales the freeze does NOT pay
// off — frozen future tasks fragment concrete slots, which forces the
// direct per-resource formulation (the §V.D combined abstraction is
// unsound under fragmentation), and that costs more per solve than a
// full combined re-plan while also degrading P. Full re-planning plus
// §V.D separation dominates on both axes, supporting the paper's design.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Ablation: full re-planning (Table 2) vs new-jobs-only scope");
  flags.add_int("jobs", 150, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("dm", 2.0, "deadline multiplier (tight)")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const std::vector<double> lambdas = {0.01, 0.02};

  Table table({"lambda", "scope", "O(s/job)", "O±", "T(s)", "P(%)"});
  for (double lambda : lambdas) {
    for (const ReplanScope scope :
         {ReplanScope::kAllUnstarted, ReplanScope::kNewJobsOnly}) {
      RunningStat o_stat;
      RunningStat t_stat;
      RunningStat p_stat;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        SyntheticWorkloadConfig wc;
        wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
        wc.arrival_rate = lambda;
        wc.deadline_multiplier_ul = flags.get_double("dm");
        wc.seed = replication_seed(
            static_cast<std::uint64_t>(flags.get_int("seed")), rep);
        const Workload workload = generate_synthetic_workload(wc);
        MrcpConfig rm;
        rm.replan_scope = scope;
        rm.solve.time_limit_s = flags.get_double("solver-budget-s");
        const sim::RunMetrics run = sim::summarize_run(
            sim::simulate_mrcp(workload, rm), flags.get_double("warmup"));
        o_stat.add(run.O_seconds);
        t_stat.add(run.T_seconds);
        p_stat.add(run.P_percent);
      }
      const auto o_ci = confidence_interval(o_stat);
      char lam[32];
      std::snprintf(lam, sizeof(lam), "%g", lambda);
      table.add_row(
          {lam,
           scope == ReplanScope::kAllUnstarted ? "all-unstarted (Table 2)"
                                               : "new-jobs-only",
           Table::cell(o_ci.mean, 6), Table::cell(o_ci.half_width, 6),
           Table::cell(t_stat.mean(), 1), Table::cell(p_stat.mean(), 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
