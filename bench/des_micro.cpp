// google-benchmark microbenchmarks of the DES kernel: schedule/fire
// throughput and cancellation cost, which bound simulation speed.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "des/simulation.h"

namespace mrcp::des {
namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(1, 0);
  std::vector<Time> times(n);
  for (auto& t : times) t = Time{rng.uniform_int(0, 1000000)};
  for (auto _ : state) {
    Simulation sim;
    std::uint64_t fired = 0;
    for (Time t : times) {
      sim.schedule_at(t, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CancelHeavy(benchmark::State& state) {
  // The MRCP-RM driver cancels and reschedules future task events on
  // every replan; this measures that pattern (cancel 90% of events).
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(2, 0);
  for (auto _ : state) {
    Simulation sim;
    std::vector<EventHandle> handles;
    handles.reserve(n);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(
          sim.schedule_at(Time{rng.uniform_int(0, 1000000)}, [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 10 != 0) sim.cancel(handles[i]);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CancelHeavy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NestedScheduling(benchmark::State& state) {
  // Event chains (each event schedules the next), the pattern of task
  // end -> dispatch -> new task end in the MinEDF-WC driver.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < depth) sim.schedule_after(Time{1}, chain);
    };
    sim.schedule_at(Time{0}, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_NestedScheduling)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace mrcp::des

BENCHMARK_MAIN();
