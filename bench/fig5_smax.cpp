// Fig. 5 — effect of the earliest start time offset bound (s_max sweep).
// Paper finding: O and T (and P) decrease as s_max increases — job
// executions overlap less, and the §V.E deferral queue keeps far-future
// jobs out of the CP model.
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags(
      "Fig. 5: effect of earliest start time (s_max in {10000, 50000, 250000} s)");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<std::int64_t> s_max = {10000, 50000, 250000};
  std::vector<std::string> labels;
  for (auto v : s_max) labels.push_back(std::to_string(v));

  run_mrcp_sweep("Fig. 5 — effect of earliest start time of jobs on O, T, N, P",
                 "s_max(s)", labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.s_max = s_max[vi];
                 });
  return 0;
}
