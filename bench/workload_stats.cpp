// Workload sanity bench — Table 3 and Table 4 distribution checks.
//
// Prints descriptive statistics of generated workloads against their
// specified distribution moments, so reproduction drift in the
// generators is visible at a glance.
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "mapreduce/facebook_workload.h"
#include "mapreduce/synthetic_workload.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Workload generator statistics vs specified moments");
  flags.add_int("jobs", 2000, "jobs to generate per workload")
      .add_int("seed", 42, "seed");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  {
    SyntheticWorkloadConfig wc;
    wc.num_jobs = jobs;
    wc.seed = seed;
    const Workload w = generate_synthetic_workload(wc);
    const auto s = w.summarize();
    Table t({"Table 3 statistic", "measured", "expected"});
    t.add_row({"mean map tasks / job", Table::cell(s.mean_map_tasks, 2),
               "50.50 (DU[1,100])"});
    t.add_row({"mean reduce tasks / job", Table::cell(s.mean_reduce_tasks, 2),
               "50.50 (DU[1,100])"});
    t.add_row({"mean map exec (s)", Table::cell(s.mean_map_exec_seconds, 2),
               "25.50 (DU[1,50])"});
    t.add_row({"mean inter-arrival (s)",
               Table::cell(s.mean_interarrival_seconds, 1), "100.0 (1/0.01)"});
    t.add_row({"fraction AR (s_j > v_j)", Table::cell(s.fraction_future_start, 3),
               "0.500 (p)"});
    t.add_row({"offered utilization", Table::cell(s.offered_utilization, 3),
               "< 1 (stable)"});
    std::printf("%s\n", t.to_string().c_str());
  }
  {
    FacebookWorkloadConfig wc;
    wc.num_jobs = jobs;
    wc.seed = seed;
    const Workload w = generate_facebook_workload(wc);
    const auto s = w.summarize();
    const double map_mean_s = std::exp(9.9511 + 0.5 * 1.6764) / 1000.0;
    const double red_mean_s = std::exp(12.375 + 0.5 * 1.6262) / 1000.0;
    char map_exp[48];
    char red_exp[48];
    std::snprintf(map_exp, sizeof(map_exp), "%.1f (LN(9.9511,1.6764))",
                  map_mean_s);
    std::snprintf(red_exp, sizeof(red_exp), "%.1f (LN(12.375,1.6262))",
                  red_mean_s);
    Table t({"Table 4 statistic", "measured", "expected"});
    t.add_row({"mean map tasks / job", Table::cell(s.mean_map_tasks, 2),
               "216.10 (Table 4 mix)"});
    t.add_row({"mean reduce tasks / job", Table::cell(s.mean_reduce_tasks, 2),
               "17.82 (Table 4 mix)"});
    t.add_row({"mean map exec (s)", Table::cell(s.mean_map_exec_seconds, 1),
               map_exp});
    t.add_row({"mean reduce exec (s)",
               Table::cell(s.mean_reduce_exec_seconds, 1), red_exp});
    t.add_row({"fraction AR (s_j > v_j)",
               Table::cell(s.fraction_future_start, 3), "0.000 (p = 0)"});
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
