// Heterogeneity sweep — MRCP-RM vs MinEDF-WC on speed-mixed,
// placement-constrained clusters (docs/heterogeneous.md).
//
// Two axes, crossed:
//
//   * speed spread — every machine's speed factor is drawn from a
//     permille choice set: "none" (homogeneous 1000), "mild"
//     (750/1000/1250) or "wide" (500/1000/2000). Wider spreads raise
//     the stakes of placement: the same task takes 4x longer on the
//     slowest machine of the wide mix than on the fastest.
//
//   * locality tightness — the per-task probability of a data-locality
//     candidate set (plus rack striping and reduce anti-affinity at a
//     fixed rate once any locality is on). Tighter locality removes
//     placement freedom exactly where the speed spread makes it
//     valuable.
//
// Both resource managers replay the same workloads under the *same*
// fault trace (individual failures + correlated rack bursts; the trace
// depends only on the fault seed and cluster shape, never on policy —
// common random numbers across the comparison).
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"
#include "sweep.h"

using namespace mrcp;

namespace {

struct SpreadChoice {
  const char* name;
  std::vector<int> speeds;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      "Heterogeneity sweep: speed spread x locality tightness, "
      "MRCP-RM vs MinEDF-WC under identical fault traces");
  bench::add_common_flags(flags);
  flags.add_double("mtbf", 20000.0, "per-resource MTBF (s, 0 = none)")
      .add_double("mttr", 120.0, "mean time to repair (s)")
      .add_double("rack-mtbf", 50000.0, "per-rack burst MTBF (s, 0 = none)")
      .add_double("rack-mttr", 120.0, "mean member repair after a burst (s)")
      .add_int("num-racks", 4, "racks the cluster is striped across")
      .add_int("fault-seed", 7, "fault-injection base seed")
      .add_string("locality-values", "0,0.25,0.5",
                  "comma-separated per-task locality probabilities")
      .add_double("affinity-prob", 0.2,
                  "per-job reduce anti-affinity probability (only when "
                  "locality > 0)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const bench::SweepOptions options = bench::SweepOptions::from_flags(flags);
  const SyntheticWorkloadConfig base = bench::table3_defaults(options);
  const MrcpConfig mrcp_config = bench::default_mrcp_config(options);

  const std::vector<SpreadChoice> spreads = {
      {"none", {}},
      {"mild", {750, 1000, 1250}},
      {"wide", {500, 1000, 2000}},
  };
  std::vector<double> locality_values;
  {
    const std::string& spec = flags.get_string("locality-values");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      locality_values.push_back(std::stod(spec.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  Table table({"spread", "locality", "rm", "P(%)", "P±", "T(s)", "T±",
               "late-affected"});

  for (const SpreadChoice& spread : spreads) {
    for (const double locality : locality_values) {
      RunningStat p[2];
      RunningStat t[2];
      RunningStat affected[2];
      for (std::size_t rep = 0; rep < options.reps; ++rep) {
        SyntheticWorkloadConfig wc = base;
        wc.seed = replication_seed(options.seed, rep);
        wc.speed_choices = spread.speeds;
        wc.locality_prob = locality;
        if (locality > 0.0) {
          wc.num_racks = static_cast<int>(flags.get_int("num-racks"));
          wc.affinity_prob = flags.get_double("affinity-prob");
        }
        const Workload w = generate_synthetic_workload(wc);

        sim::SimOptions sim_options;
        sim_options.faults.mtbf_s = flags.get_double("mtbf");
        sim_options.faults.mttr_s = flags.get_double("mttr");
        sim_options.faults.rack_mtbf_s = flags.get_double("rack-mtbf");
        sim_options.faults.rack_mttr_s = flags.get_double("rack-mttr");
        sim_options.faults.seed = replication_seed(
            static_cast<std::uint64_t>(flags.get_int("fault-seed")), rep);

        const sim::SimMetrics mrcp_metrics =
            sim::simulate_mrcp(w, mrcp_config, sim_options);
        const sim::RunMetrics mrcp_run =
            sim::summarize_run(mrcp_metrics, options.warmup);
        p[0].add(mrcp_run.P_percent);
        t[0].add(mrcp_run.T_seconds);
        affected[0].add(static_cast<double>(
            mrcp_metrics.failure.jobs_late_failure_affected));

        const sim::SimMetrics minedf_metrics =
            sim::simulate_minedf(w, baseline::MinEdfConfig{}, sim_options);
        const sim::RunMetrics minedf_run =
            sim::summarize_run(minedf_metrics, options.warmup);
        p[1].add(minedf_run.P_percent);
        t[1].add(minedf_run.T_seconds);
        affected[1].add(static_cast<double>(
            minedf_metrics.failure.jobs_late_failure_affected));
      }
      const char* names[2] = {"MRCP-RM", "MinEDF-WC"};
      for (int k = 0; k < 2; ++k) {
        const auto p_ci = confidence_interval(p[k]);
        const auto t_ci = confidence_interval(t[k]);
        table.add_row({spread.name, Table::cell(locality, 2), names[k],
                       Table::cell(p_ci.mean, 2),
                       Table::cell(p_ci.half_width, 2),
                       Table::cell(t_ci.mean, 1),
                       Table::cell(t_ci.half_width, 1),
                       Table::cell(affected[k].mean(), 1)});
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  if (!options.csv_path.empty()) {
    if (table.write_csv(options.csv_path)) {
      std::printf("wrote %s\n", options.csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.csv_path.c_str());
      return 1;
    }
  }
  return 0;
}
