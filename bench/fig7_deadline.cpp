// Fig. 7 — effect of the deadline multiplier upper bound d_M (d_UL).
// Paper finding: O decreases as d_M grows (more laxity, less search
// effort); T barely changes; P drops: 3.46% / 0.56% / 0.21% at 2 / 5 / 10.
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags("Fig. 7: effect of deadline multiplier (d_M in {2, 5, 10})");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<double> d_m = {2.0, 5.0, 10.0};
  std::vector<std::string> labels = {"2", "5", "10"};

  run_mrcp_sweep("Fig. 7 — effect of deadline of jobs on O, T, N, P", "d_M",
                 labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.deadline_multiplier_ul = d_m[vi];
                 });
  return 0;
}
