// Fig. 4 — effect of task execution times (e_max sweep).
// Paper finding: O and T increase with e_max; O/T stays below ~0.02%.
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags("Fig. 4: effect of task execution time (e_max in {10, 50, 100} s)");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<std::int64_t> e_max = {10, 50, 100};
  std::vector<std::string> labels;
  for (auto v : e_max) labels.push_back(std::to_string(v));

  run_mrcp_sweep("Fig. 4 — effect of task execution time on O, T, N, P",
                 "e_max(s)", labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.e_max = e_max[vi];
                 });
  return 0;
}
