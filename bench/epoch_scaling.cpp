// Incremental rescheduling epoch-scaling bench (docs/incremental.md).
//
// Measures per-invocation cost of ReplanScope::kDirtyOnly as a function
// of the dirty-set size at a fixed live-set size, against the Table 2
// full-rebuild baseline (kAllUnstarted), and emits
// BENCH_epoch_scaling.json for the perf-smoke CI gate.
//
// Protocol: N jobs (2 maps + 1 reduce each) are submitted at t=0 with a
// far-future earliest start, so nothing ever executes and the live set
// stays constant at 3N tasks while epochs advance. Each epoch marks a
// job window dirty via mark_dirty() and invokes reschedule():
//   - per dirty fraction f: one cold epoch (model-cache miss: fresh
//     build + SearchRoot replay) then repeated same-window epochs
//     (cache hits — the steady state of a park-retry storm or a
//     repeatedly re-solved hot region);
//   - a rotating 10% window (every epoch a different region → every
//     epoch a miss: the honest worst case of incremental mode);
//   - a soak at 10% dirty for `soak-epochs` epochs.
// The full-rebuild baseline re-solves all 3N tasks per epoch under
// kAllUnstarted. It is measured twice: with the §V.D separation
// (combined model + matchmaker — the healthy-path default, reported as
// context) and with the direct per-resource model, which is the
// apples-to-apples baseline: a frozen boundary fragments concrete
// slots, so incremental mode can only ever solve the direct
// formulation, and speedup_10pct compares against the direct rebuild.
// Both numbers land in the JSON; see docs/incremental.md for when the
// combined full rebuild is the better deployment choice.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "core/mrcp_rm.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

using namespace mrcp;

namespace {

constexpr Time kEarliestStart = Time{1'000'000};  // far future: nothing starts
constexpr Time kEpochStep = Time{1'000};

Job make_bench_job(JobId id) {
  Job j;
  j.id = id;
  j.arrival_time = Time{0};
  j.earliest_start = kEarliestStart;
  j.deadline = kEarliestStart + Time{10'000'000};  // loose: lateness never binds
  j.map_tasks.push_back(Task{TaskType::kMap, Time{800}, 1});
  j.map_tasks.push_back(Task{TaskType::kMap, Time{1200}, 1});
  j.reduce_tasks.push_back(Task{TaskType::kReduce, Time{1000}, 1});
  return j;
}

cp::SolveParams bench_solve_params() {
  cp::SolveParams p;
  p.portfolio = {cp::JobOrdering::kEdf};  // one deterministic descent
  p.improvement_fails = 0;
  p.lns_iterations = 0;
  p.time_limit_s = 600.0;
  p.num_threads = 1;
  return p;
}

MrcpRm make_rm(int resources, int jobs, ReplanScope scope, bool separation,
               Time* t) {
  MrcpConfig config;
  config.replan_scope = scope;
  config.use_separation = separation;
  config.defer_future_jobs = false;  // far-future jobs must stay live
  config.solve = bench_solve_params();
  MrcpRm rm(Cluster::homogeneous(resources, 4, 4), config);
  for (JobId id = 0; id < jobs; ++id) rm.submit(make_bench_job(id), Time{0});
  *t = Time{0};
  rm.reschedule(*t);
  return rm;
}

/// Marks jobs [begin, end) dirty, advances time one epoch step, and
/// returns the reschedule() wall time.
double timed_epoch(MrcpRm& rm, Time* t, JobId begin, JobId end) {
  for (JobId id = begin; id < end; ++id) rm.mark_dirty(id);
  *t += kEpochStep;
  Stopwatch sw;
  rm.reschedule(*t);
  return sw.elapsed_seconds();
}

struct FractionResult {
  double fraction = 0.0;
  JobId dirty_jobs = 0;
  double cold_s = 0.0;  ///< model-cache miss (fresh build + root)
  double warm_s = 0.0;  ///< mean over cache-hit epochs
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Incremental rescheduling: per-epoch cost vs dirty-set size");
  flags.add_int("jobs", 10000, "live jobs (3 tasks each)")
      .add_int("resources", 100, "cluster size")
      .add_int("full-epochs", 3, "full-rebuild baseline epochs")
      .add_int("warm-epochs", 3, "cache-hit epochs per fraction")
      .add_int("rotating-epochs", 5, "rotating-window (cache-miss) epochs")
      .add_int("soak-epochs", 20, "10%-dirty soak epochs")
      .add_string("out", "BENCH_epoch_scaling.json", "JSON output path");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const int jobs = static_cast<int>(flags.get_int("jobs"));
  const int resources = static_cast<int>(flags.get_int("resources"));
  const int full_epochs = static_cast<int>(flags.get_int("full-epochs"));
  const int warm_epochs = static_cast<int>(flags.get_int("warm-epochs"));
  const int rotating_epochs = static_cast<int>(flags.get_int("rotating-epochs"));
  const int soak_epochs = static_cast<int>(flags.get_int("soak-epochs"));
  MRCP_CHECK(jobs >= 100 && resources >= 1);

  // ---- Full-rebuild baselines (kAllUnstarted) ----
  double full_combined_s = 0.0;
  double full_direct_s = 0.0;
  for (const bool separation : {true, false}) {
    Time t;
    MrcpRm rm = make_rm(resources, jobs, ReplanScope::kAllUnstarted,
                        separation, &t);
    double total = 0.0;
    for (int e = 0; e < full_epochs; ++e) {
      t += kEpochStep;
      Stopwatch sw;
      rm.reschedule(t);
      total += sw.elapsed_seconds();
    }
    (separation ? full_combined_s : full_direct_s) =
        total / static_cast<double>(full_epochs);
  }
  const double full_rebuild_s = full_direct_s;
  std::printf("full rebuild (%d tasks): combined %.4fs  direct %.4fs\n",
              jobs * 3, full_combined_s, full_direct_s);

  // ---- Incremental (kDirtyOnly) ----
  Time t;
  Stopwatch init_sw;
  MrcpRm rm = make_rm(resources, jobs, ReplanScope::kDirtyOnly,
                      /*separation=*/false, &t);
  const double initial_full_s = init_sw.elapsed_seconds();

  const std::vector<double> fractions = {0.01, 0.05, 0.10, 0.25, 0.50, 1.00};
  std::vector<FractionResult> results;
  double warm_10pct = 0.0;
  for (const double f : fractions) {
    FractionResult r;
    r.fraction = f;
    r.dirty_jobs = static_cast<JobId>(f * jobs);
    r.cold_s = timed_epoch(rm, &t, 0, r.dirty_jobs);
    double total = 0.0;
    for (int e = 0; e < warm_epochs; ++e) {
      total += timed_epoch(rm, &t, 0, r.dirty_jobs);
    }
    r.warm_s = total / static_cast<double>(warm_epochs);
    if (f == 0.10) warm_10pct = r.warm_s;
    std::printf("dirty %5.0f%% (%ld jobs): cold %.4fs  warm %.4fs\n", f * 100,
                static_cast<long>(r.dirty_jobs), r.cold_s, r.warm_s);
    results.push_back(r);
  }

  // Rotating 10% window: a different region each epoch, so the model
  // cache never hits — the honest steady-state miss cost.
  const JobId window = static_cast<JobId>(jobs / 10);
  double rotating_total = 0.0;
  for (int e = 0; e < rotating_epochs; ++e) {
    const JobId begin = (static_cast<JobId>(e) * window) %
                        static_cast<JobId>(jobs - window + 1);
    rotating_total += timed_epoch(rm, &t, begin, begin + window);
  }
  const double rotating_10pct_s =
      rotating_total / static_cast<double>(rotating_epochs);
  std::printf("rotating 10%% (cache miss every epoch): %.4fs\n",
              rotating_10pct_s);

  // Soak: sustained same-window 10%-dirty epochs at the full live size.
  double soak_total = 0.0;
  double soak_max = 0.0;
  for (int e = 0; e < soak_epochs; ++e) {
    const double s = timed_epoch(rm, &t, 0, window);
    soak_total += s;
    soak_max = std::max(soak_max, s);
  }
  const double soak_mean_s = soak_total / static_cast<double>(soak_epochs);
  std::printf("soak (%d epochs at 10%%): mean %.4fs  max %.4fs\n", soak_epochs,
              soak_mean_s, soak_max);

  const MrcpStats& st = rm.stats();
  MRCP_CHECK_MSG(st.dirty_promotions == 0,
                 "dirty-set bookkeeping missed an event");
  const double speedup_warm = warm_10pct > 0.0 ? full_rebuild_s / warm_10pct
                                               : 0.0;
  const double speedup_cold =
      rotating_10pct_s > 0.0 ? full_rebuild_s / rotating_10pct_s : 0.0;
  std::printf("speedup at 10%% dirty: warm %.1fx  cold/rotating %.1fx\n",
              speedup_warm, speedup_cold);

  const std::string out = flags.get_string("out");
  FILE* fp = std::fopen(out.c_str(), "w");
  MRCP_CHECK_MSG(fp != nullptr, "cannot open bench output file");
  std::fprintf(fp, "{\n");
  std::fprintf(fp, "  \"bench\": \"epoch_scaling\",\n");
  std::fprintf(fp, "  \"live_jobs\": %d,\n", jobs);
  std::fprintf(fp, "  \"live_tasks\": %d,\n", jobs * 3);
  std::fprintf(fp, "  \"resources\": %d,\n", resources);
  std::fprintf(fp, "  \"initial_full_s\": %.6f,\n", initial_full_s);
  std::fprintf(fp, "  \"full_rebuild_combined_s\": %.6f,\n", full_combined_s);
  std::fprintf(fp, "  \"full_rebuild_direct_s\": %.6f,\n", full_direct_s);
  std::fprintf(fp, "  \"full_rebuild_s\": %.6f,\n", full_rebuild_s);
  std::fprintf(fp, "  \"fractions\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FractionResult& r = results[i];
    std::fprintf(fp,
                 "    {\"fraction\": %.2f, \"dirty_jobs\": %ld, "
                 "\"cold_s\": %.6f, \"warm_s\": %.6f}%s\n",
                 r.fraction, static_cast<long>(r.dirty_jobs), r.cold_s,
                 r.warm_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(fp, "  ],\n");
  std::fprintf(fp, "  \"rotating_10pct_s\": %.6f,\n", rotating_10pct_s);
  std::fprintf(fp,
               "  \"soak\": {\"epochs\": %d, \"mean_s\": %.6f, "
               "\"max_s\": %.6f},\n",
               soak_epochs, soak_mean_s, soak_max);
  std::fprintf(fp, "  \"model_cache_hits\": %llu,\n",
               static_cast<unsigned long long>(st.model_cache_hits));
  std::fprintf(fp, "  \"model_cache_misses\": %llu,\n",
               static_cast<unsigned long long>(st.model_cache_misses));
  std::fprintf(fp, "  \"warm_starts_used\": %llu,\n",
               static_cast<unsigned long long>(st.warm_starts_used));
  std::fprintf(fp, "  \"dirty_promotions\": %llu,\n",
               static_cast<unsigned long long>(st.dirty_promotions));
  std::fprintf(fp, "  \"speedup_10pct\": %.2f,\n", speedup_warm);
  std::fprintf(fp, "  \"speedup_10pct_cold\": %.2f\n", speedup_cold);
  std::fprintf(fp, "}\n");
  std::fclose(fp);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
