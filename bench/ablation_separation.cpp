// Ablation — §V.D separation of matchmaking and scheduling.
//
// The paper motivates the optimization with a batch anecdote: ~25 jobs x
// ~100 tasks took ~15 s with the combined single resource versus ~60 s
// with 50 explicit resources (a ~4x solve-time ratio). This bench
// measures the same ratio with our engine: identical batches solved with
// the combined model + min-gap matchmaking versus the direct
// per-resource alternative model, comparing wall time and late-job
// counts.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/mrcp_rm.h"
#include "mapreduce/synthetic_workload.h"

using namespace mrcp;

namespace {

struct BatchResult {
  double solve_seconds = 0.0;
  int late = 0;
};

BatchResult schedule_batch(const Workload& workload, bool use_separation,
                           double budget_s) {
  MrcpConfig config;
  config.use_separation = use_separation;
  config.defer_future_jobs = false;
  config.solve.time_limit_s = budget_s;
  MrcpRm rm(workload.cluster, config);
  // Submit the whole batch at t = 0 and run one invocation (the paper's
  // batch setting for this measurement).
  for (const Job& job : workload.jobs) rm.submit(job, Time{0});
  Stopwatch timer;
  const Plan& plan = rm.reschedule(Time{0});
  BatchResult result;
  result.solve_seconds = timer.elapsed_seconds();
  // Late jobs = jobs whose last planned task ends after the deadline.
  std::vector<Time> completion(workload.size(), Time{0});
  for (const PlannedTask& pt : plan.tasks) {
    auto& c = completion[static_cast<std::size_t>(pt.job)];
    c = std::max(c, pt.end);
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (completion[i] > workload.jobs[i].deadline) ++result.late;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      "Ablation (paper §V.D): combined-resource solve + matchmaking vs the "
      "direct per-resource alternative model, on one batch of jobs");
  flags.add_int("batch-jobs", 25, "jobs per batch (paper anecdote: 25)")
      .add_int("reps", 3, "independent batches")
      .add_int("resources", 50, "resources m (2 map + 2 reduce slots each)")
      .add_int("seed", 42, "base seed")
      .add_double("solver-budget-s", 2.0, "CP solve budget per mode (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  RunningStat combined_s;
  RunningStat direct_s;
  RunningStat combined_late;
  RunningStat direct_late;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    SyntheticWorkloadConfig wc;
    wc.num_jobs = static_cast<std::size_t>(flags.get_int("batch-jobs"));
    wc.num_resources = static_cast<int>(flags.get_int("resources"));
    wc.arrival_rate = 1000.0;  // batch: effectively simultaneous arrivals
    wc.start_prob = 0.0;
    wc.seed = replication_seed(static_cast<std::uint64_t>(flags.get_int("seed")),
                               rep);
    Workload workload = generate_synthetic_workload(wc);
    for (Job& j : workload.jobs) {
      j.arrival_time = Time{0};
      j.earliest_start = Time{0};
      // Keep the original deadline *spans*.
    }

    const double budget = flags.get_double("solver-budget-s");
    const BatchResult combined = schedule_batch(workload, true, budget);
    const BatchResult direct = schedule_batch(workload, false, budget);
    combined_s.add(combined.solve_seconds);
    direct_s.add(direct.solve_seconds);
    combined_late.add(combined.late);
    direct_late.add(direct.late);
  }

  Table table({"mode", "solve(s)", "±", "late jobs"});
  const auto cs = confidence_interval(combined_s);
  const auto ds = confidence_interval(direct_s);
  table.add_row({"combined+matchmake (§V.D)", Table::cell(cs.mean, 4),
                 Table::cell(cs.half_width, 4),
                 Table::cell(combined_late.mean(), 1)});
  table.add_row({"direct per-resource", Table::cell(ds.mean, 4),
                 Table::cell(ds.half_width, 4),
                 Table::cell(direct_late.mean(), 1)});
  std::printf("%s\n", table.to_string().c_str());
  if (cs.mean > 0.0) {
    std::printf("direct / combined solve-time ratio: %.1fx (paper anecdote: ~4x)\n",
                ds.mean / cs.mean);
  }
  return 0;
}
