// Ablation — §V.E earliest-start-time deferral queue.
//
// With many advance reservations far in the future (high p, high s_max),
// the paper found matchmaking-and-scheduling time grows because the CP
// model carries tasks that cannot run for a long time. The deferral
// queue keeps those jobs out of the model until s_j approaches. This
// bench runs the same AR-heavy workload with deferral on and off and
// compares O (and verifies N/T are unaffected).
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags(
      "Ablation (paper §V.E): deferral of far-future advance reservations");
  flags.add_int("jobs", 100, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("p", 0.9, "AR probability (high to stress the queue)")
      .add_int("smax", 50000, "max earliest-start offset (s)")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  Table table({"deferral", "O(s/job)", "±", "T(s)", "N", "max live tasks"});

  for (const bool defer : {true, false}) {
    RunningStat o_stat;
    RunningStat t_stat;
    RunningStat n_stat;
    RunningStat live_stat;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      SyntheticWorkloadConfig wc;
      wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
      wc.start_prob = flags.get_double("p");
      wc.s_max = flags.get_int("smax");
      wc.seed = replication_seed(
          static_cast<std::uint64_t>(flags.get_int("seed")), rep);
      const Workload workload = generate_synthetic_workload(wc);

      MrcpConfig rm;
      rm.defer_future_jobs = defer;
      rm.solve.time_limit_s = flags.get_double("solver-budget-s");
      const sim::SimMetrics metrics = sim::simulate_mrcp(workload, rm);
      const sim::RunMetrics run =
          sim::summarize_run(metrics, flags.get_double("warmup"));
      o_stat.add(run.O_seconds);
      t_stat.add(run.T_seconds);
      n_stat.add(run.N_late);
      live_stat.add(static_cast<double>(metrics.max_live_tasks));
    }
    const auto o_ci = confidence_interval(o_stat);
    table.add_row({defer ? "on (§V.E)" : "off", Table::cell(o_ci.mean, 6),
                   Table::cell(o_ci.half_width, 6), Table::cell(t_stat.mean(), 1),
                   Table::cell(n_stat.mean(), 1),
                   Table::cell(live_stat.mean(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
