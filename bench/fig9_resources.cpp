// Fig. 9 — effect of the number of resources m.
// Paper finding: T decreases with m; O increases as m shrinks (more
// contention to resolve); P and T jump when m drops from 50 to 25, with
// little change between 50 and 100 (the knee).
#include "sweep.h"

using namespace mrcp;
using namespace mrcp::bench;

int main(int argc, char** argv) {
  Flags flags("Fig. 9: effect of the number of resources (m in {25, 50, 100})");
  add_common_flags(flags);
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;
  const SweepOptions options = SweepOptions::from_flags(flags);

  const std::vector<int> m = {25, 50, 100};
  std::vector<std::string> labels = {"25", "50", "100"};

  run_mrcp_sweep("Fig. 9 — effect of the number of resources on O, T, N, P",
                 "m", labels, options,
                 [&](SyntheticWorkloadConfig& wc, std::size_t vi) {
                   wc.num_resources = m[vi];
                 });
  return 0;
}
