// google-benchmark microbenchmarks of the CP engine: timetable profile
// operations and full solves at several instance sizes. These bound the
// per-invocation cost that makes up the paper's O metric.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cp/profile.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

void BM_ProfileAddRemove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(1, 0);
  std::vector<std::pair<Time, Time>> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time s = rng.uniform_int(0, 100000);
    intervals.emplace_back(s, rng.uniform_int(1, 500));
  }
  for (auto _ : state) {
    Profile p(64);
    for (const auto& [s, d] : intervals) p.add(s, d, 1);
    for (const auto& [s, d] : intervals) p.remove(s, d, 1);
    benchmark::DoNotOptimize(p.num_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_ProfileAddRemove)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ProfileEarliestFeasible(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(2, 0);
  Profile p(64);
  for (std::size_t i = 0; i < n; ++i) {
    const Time est = rng.uniform_int(0, 100000);
    const Time dur = rng.uniform_int(1, 500);
    const Time start = p.earliest_feasible(est, dur, 1);
    p.add(start, dur, 1);
  }
  Time query = 0;
  for (auto _ : state) {
    query = (query + 7919) % 100000;
    benchmark::DoNotOptimize(p.earliest_feasible(query, 100, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileEarliestFeasible)->Arg(100)->Arg(1000)->Arg(5000);

/// Build a random open-batch model: `jobs` jobs of ~100 tasks on the
/// Table 3 default cluster (combined resource, as MRCP-RM solves it).
Model make_model(int jobs, std::uint64_t seed) {
  RandomStream rng(seed, 0);
  Model m;
  m.add_resource(100, 100);  // combined: 50 resources x (2, 2)
  for (int j = 0; j < jobs; ++j) {
    const Time est = rng.uniform_int(0, 1000) * 1000;
    Time work = 0;
    std::vector<Time> maps;
    std::vector<Time> reduces;
    const auto k_m = rng.uniform_int(1, 100);
    const auto k_r = rng.uniform_int(1, 100);
    for (std::int64_t t = 0; t < k_m; ++t) {
      maps.push_back(rng.uniform_int(1, 50) * 1000);
      work += maps.back();
    }
    const Time base = 3 * work / k_r;
    for (std::int64_t t = 0; t < k_r; ++t) {
      reduces.push_back(base + rng.uniform_int(1, 10) * 1000);
    }
    const Time te = work / 100 + base + 10000;
    const Time deadline =
        est + static_cast<Time>(static_cast<double>(te) *
                                rng.uniform_real(1.0, 5.0));
    const CpJobIndex cj = m.add_job(est, deadline, j);
    for (Time d : maps) m.add_task(cj, Phase::kMap, d);
    for (Time d : reduces) m.add_task(cj, Phase::kReduce, d);
  }
  return m;
}

void BM_SolveGreedyPortfolio(benchmark::State& state) {
  const Model m = make_model(static_cast<int>(state.range(0)), 3);
  SolveParams params;
  params.improvement_fails = 0;
  params.lns_iterations = 0;
  params.time_limit_s = 60.0;
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveGreedyPortfolio)->Arg(2)->Arg(10)->Arg(25);

void BM_SolveWithImprovement(benchmark::State& state) {
  const Model m = make_model(static_cast<int>(state.range(0)), 4);
  SolveParams params;
  params.improvement_fails = 500;
  params.lns_iterations = 10;
  params.time_limit_s = 60.0;
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveWithImprovement)->Arg(2)->Arg(10);

}  // namespace
}  // namespace mrcp::cp

BENCHMARK_MAIN();
