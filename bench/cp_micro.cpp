// google-benchmark microbenchmarks of the CP engine: timetable profile
// operations and full solves at several instance sizes. These bound the
// per-invocation cost that makes up the paper's O metric.
//
// In addition to the google-benchmark suite, the binary always writes
// BENCH_cp_micro.json (self-timed: profile query ns/op, solve wall-time
// swept over {1, 2, 4, hw} worker threads on a small and an enlarged
// workload, per-phase breakdown, and the parallel speedup on the
// enlarged workload) so the perf trajectory of the hot path is tracked
// in a machine-readable form. See docs/perf.md for how to read it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cp/profile.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

void BM_ProfileAddRemove(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(1, 0);
  std::vector<std::pair<Time, Time>> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time s{rng.uniform_int(0, 100000)};
    intervals.emplace_back(s, rng.uniform_int(1, 500));
  }
  for (auto _ : state) {
    Profile p(64);
    for (const auto& [s, d] : intervals) p.add(s, d, 1);
    for (const auto& [s, d] : intervals) p.remove(s, d, 1);
    benchmark::DoNotOptimize(p.num_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_ProfileAddRemove)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ProfileEarliestFeasible(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(2, 0);
  Profile p(64);
  for (std::size_t i = 0; i < n; ++i) {
    const Time est{rng.uniform_int(0, 100000)};
    const Time dur{rng.uniform_int(1, 500)};
    const Time start = p.earliest_feasible(est, dur, 1);
    p.add(start, dur, 1);
  }
  Time query;
  for (auto _ : state) {
    query = (query + Time{7919}) % Time{100000};
    benchmark::DoNotOptimize(p.earliest_feasible(query, Time{100}, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfileEarliestFeasible)->Arg(100)->Arg(1000)->Arg(5000);

/// Build a random open-batch model: `jobs` jobs of ~100 tasks on the
/// Table 3 default cluster (combined resource, as MRCP-RM solves it).
Model make_model(int jobs, std::uint64_t seed) {
  RandomStream rng(seed, 0);
  Model m;
  m.add_resource(100, 100);  // combined: 50 resources x (2, 2)
  for (int j = 0; j < jobs; ++j) {
    const Time est{rng.uniform_int(0, 1000) * 1000};
    Time work;
    std::vector<Time> maps;
    std::vector<Time> reduces;
    const auto k_m = rng.uniform_int(1, 100);
    const auto k_r = rng.uniform_int(1, 100);
    for (std::int64_t t = 0; t < k_m; ++t) {
      maps.push_back(Time{rng.uniform_int(1, 50) * 1000});
      work += maps.back();
    }
    const Time base = 3 * work / k_r;
    for (std::int64_t t = 0; t < k_r; ++t) {
      reduces.push_back(base + Time{rng.uniform_int(1, 10) * 1000});
    }
    const Time te = work / 100 + base + Time{10000};
    const Time deadline =
        est + Time{static_cast<std::int64_t>(static_cast<double>(te.count()) *
                                             rng.uniform_real(1.0, 5.0))};
    const CpJobIndex cj = m.add_job(est, deadline, j);
    for (Time d : maps) m.add_task(cj, Phase::kMap, d);
    for (Time d : reduces) m.add_task(cj, Phase::kReduce, d);
  }
  return m;
}

void BM_SolveGreedyPortfolio(benchmark::State& state) {
  const Model m = make_model(static_cast<int>(state.range(0)), 3);
  SolveParams params;
  params.improvement_fails = 0;
  params.lns_iterations = 0;
  params.time_limit_s = 60.0;
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveGreedyPortfolio)->Arg(2)->Arg(10)->Arg(25);

void BM_SolveWithImprovement(benchmark::State& state) {
  const Model m = make_model(static_cast<int>(state.range(0)), 4);
  SolveParams params;
  params.improvement_fails = 500;
  params.lns_iterations = 10;
  params.time_limit_s = 60.0;
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveWithImprovement)->Arg(2)->Arg(10);

/// Parallel portfolio/LNS: same solve, swept over worker threads.
void BM_SolveThreads(benchmark::State& state) {
  const Model m = make_model(25, 3);
  SolveParams params;
  params.improvement_fails = 0;
  params.lns_iterations = 20;
  params.lns_batch = 4;
  params.time_limit_s = 60.0;
  params.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveThreads)->Arg(1)->Arg(2)->Arg(4);

/// Thread scaling on an instance large enough that per-member search work
/// dominates setup — the regime where the parallel portfolio must pay.
void BM_SolveThreadsLarge(benchmark::State& state) {
  const Model m = make_model(60, 3);
  SolveParams params;
  params.improvement_fails = 0;
  params.lns_iterations = 20;
  params.lns_batch = 4;
  params.time_limit_s = 60.0;
  params.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SolveResult result = solve(m, params);
    benchmark::DoNotOptimize(result.best.num_late);
  }
  state.counters["tasks"] = static_cast<double>(m.num_tasks());
}
BENCHMARK(BM_SolveThreadsLarge)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// The pre-flat-timeline profile (sorted map of usage deltas), kept
/// here as the bench baseline the JSON compares against.
class MapProfileBaseline {
 public:
  explicit MapProfileBaseline(int capacity) : capacity_(capacity) {}

  Time earliest_feasible(Time est, Time duration, int demand) const {
    int usage = 0;
    auto it = delta_.begin();
    for (; it != delta_.end() && it->first <= est; ++it) usage += it->second;
    Time candidate = est;
    bool in_feasible = usage + demand <= capacity_;
    while (true) {
      const Time next_change = (it == delta_.end()) ? kMaxTime : it->first;
      if (in_feasible && next_change - candidate >= duration) return candidate;
      if (it == delta_.end()) return candidate;
      const Time seg_start = next_change;
      while (it != delta_.end() && it->first == seg_start) {
        usage += it->second;
        ++it;
      }
      const bool feasible_now = usage + demand <= capacity_;
      if (feasible_now && !in_feasible) candidate = seg_start;
      in_feasible = feasible_now;
    }
  }

  void add(Time start, Time duration, int demand) {
    apply(start, duration, demand);
  }
  void remove(Time start, Time duration, int demand) {
    apply(start, duration, -demand);
  }

 private:
  void apply(Time start, Time duration, int delta) {
    delta_[start] += delta;
    if (delta_[start] == 0) delta_.erase(start);
    delta_[start + duration] -= delta;
    auto it = delta_.find(start + duration);
    if (it != delta_.end() && it->second == 0) delta_.erase(it);
  }

  int capacity_;
  std::map<Time, int> delta_;
};

/// Self-timed measurements for BENCH_cp_micro.json: median-of-3 runs,
/// coarse but machine-comparable across commits.
double best_of_seconds(int runs, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < runs; ++i) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

void write_bench_json(const char* path) {
  // Profile query cost on a ~10k-event timetable (the earliest_feasible
  // shape the innermost search loop issues).
  constexpr int kIntervals = 5000;
  constexpr int kQueries = 200000;
  RandomStream rng(2, 0);
  Profile p(64);
  for (int i = 0; i < kIntervals; ++i) {
    const Time est{rng.uniform_int(0, 100000)};
    const Time dur{rng.uniform_int(1, 500)};
    p.add(p.earliest_feasible(est, dur, 1), dur, 1);
  }
  MapProfileBaseline pmap(64);
  {
    RandomStream rmap(2, 0);
    for (int i = 0; i < kIntervals; ++i) {
      const Time est{rmap.uniform_int(0, 100000)};
      const Time dur{rmap.uniform_int(1, 500)};
      pmap.add(pmap.earliest_feasible(est, dur, 1), dur, 1);
    }
  }
  Time sink;
  const double query_s = best_of_seconds(3, [&] {
    Time q;
    for (int i = 0; i < kQueries; ++i) {
      q = (q + Time{7919}) % Time{100000};
      sink += p.earliest_feasible(q, Time{100}, 1);
    }
  });
  // Far fewer queries for the map baseline: each one is a linear scan.
  constexpr int kMapQueries = kQueries / 50;
  const double map_query_s = best_of_seconds(3, [&] {
    Time q;
    for (int i = 0; i < kMapQueries; ++i) {
      q = (q + Time{7919}) % Time{100000};
      sink += pmap.earliest_feasible(q, Time{100}, 1);
    }
  });
  const double add_remove_s = best_of_seconds(3, [&] {
    RandomStream r2(1, 0);
    Profile q(64);
    std::vector<std::pair<Time, Time>> ivs;
    ivs.reserve(kIntervals);
    for (int i = 0; i < kIntervals; ++i) {
      ivs.emplace_back(r2.uniform_int(0, 100000), r2.uniform_int(1, 500));
    }
    for (const auto& [s, d] : ivs) q.add(s, d, 1);
    for (const auto& [s, d] : ivs) q.remove(s, d, 1);
    sink += static_cast<Time>(q.num_events());
  });

  // Solve wall-time on the Table 3 / Fig. 2-3-shaped combined-resource
  // model. Two instances: the historical 25-job workload (absolute
  // solve_wall_s_1_thread is tracked against it) and an enlarged 60-job
  // one where per-member search work dominates setup — the regime the
  // parallel portfolio targets and the one solve_speedup is defined on.
  // Both are swept over {1, 2, 4, hw} worker threads; the solution
  // quality must be identical at every thread count (deterministic fold).
  SolveParams params;
  params.improvement_fails = 0;
  params.lns_iterations = 20;
  params.lns_batch = 4;
  params.time_limit_s = 60.0;
  // At least 2 workers so the pool path is always measured, even on a
  // single-core machine (where it records the overhead, not a speedup).
  const int hw = std::max(2, ThreadPool::resolve_num_threads(0));
  std::vector<int> sweep = {1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  struct SolveSample {
    int threads = 0;
    double wall_s = 0.0;
    SolveResult result;
  };
  auto sweep_solves = [&](const Model& m) {
    std::vector<SolveSample> out;
    for (int t : sweep) {
      SolveSample s;
      s.threads = t;
      params.num_threads = t;
      s.wall_s = best_of_seconds(3, [&] { s.result = solve(m, params); });
      out.push_back(std::move(s));
    }
    return out;
  };
  const Model m = make_model(25, 3);
  const Model m_large = make_model(60, 3);
  const std::vector<SolveSample> small = sweep_solves(m);
  const std::vector<SolveSample> large = sweep_solves(m_large);
  const SolveSample& small_1t = small.front();
  const SolveSample& large_1t = large.front();
  const SolveSample& large_hw = large.back();
  for (const SolveSample& s : small) {
    if (s.result.best.num_late != small_1t.result.best.num_late) {
      std::fprintf(stderr,
                   "error: small-solve quality differs at %d threads\n",
                   s.threads);
    }
  }
  for (const SolveSample& s : large) {
    if (s.result.best.num_late != large_1t.result.best.num_late) {
      std::fprintf(stderr,
                   "error: large-solve quality differs at %d threads\n",
                   s.threads);
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_threads\": %d,\n",
               ThreadPool::resolve_num_threads(0));
  std::fprintf(f, "  \"profile_events\": %zu,\n", p.num_events());
  std::fprintf(f, "  \"profile_earliest_feasible_ns_per_op\": %.1f,\n",
               query_s * 1e9 / kQueries);
  std::fprintf(f, "  \"profile_earliest_feasible_ns_per_op_map_baseline\": %.1f,\n",
               map_query_s * 1e9 / kMapQueries);
  std::fprintf(f, "  \"profile_query_speedup_vs_map\": %.1f,\n",
               query_s > 0 ? (map_query_s / kMapQueries) / (query_s / kQueries)
                           : 0.0);
  std::fprintf(f, "  \"profile_add_remove_ns_per_op\": %.1f,\n",
               add_remove_s * 1e9 / (2.0 * kIntervals));
  std::fprintf(f, "  \"solve_workload\": \"table3-combined-25jobs\",\n");
  std::fprintf(f, "  \"solve_tasks\": %zu,\n", m.num_tasks());
  std::fprintf(f, "  \"solve_num_late\": %d,\n", small_1t.result.best.num_late);
  std::fprintf(f, "  \"solve_status\": \"%s\",\n",
               solve_status_name(small_1t.result.status));
  std::fprintf(f, "  \"solve_budget_used_s\": %.6f,\n",
               small_1t.result.wall_seconds);
  for (const SolveSample& s : small) {
    std::fprintf(f, "  \"solve_wall_s_%d_thread%s\": %.6f,\n", s.threads,
                 s.threads == 1 ? "" : "s", s.wall_s);
  }
  std::fprintf(f, "  \"solve_phase_portfolio_s\": %.6f,\n",
               small_1t.result.stats.portfolio_seconds);
  std::fprintf(f, "  \"solve_phase_improvement_s\": %.6f,\n",
               small_1t.result.stats.improvement_seconds);
  std::fprintf(f, "  \"solve_phase_lns_s\": %.6f,\n",
               small_1t.result.stats.lns_seconds);
  std::fprintf(f, "  \"solve_large_workload\": \"table3-combined-60jobs\",\n");
  std::fprintf(f, "  \"solve_large_tasks\": %zu,\n", m_large.num_tasks());
  std::fprintf(f, "  \"solve_large_num_late\": %d,\n",
               large_1t.result.best.num_late);
  for (const SolveSample& s : large) {
    std::fprintf(f, "  \"solve_large_wall_s_%d_thread%s\": %.6f,\n", s.threads,
                 s.threads == 1 ? "" : "s", s.wall_s);
  }
  std::fprintf(f, "  \"solve_large_phase_portfolio_s\": %.6f,\n",
               large_1t.result.stats.portfolio_seconds);
  std::fprintf(f, "  \"solve_large_phase_improvement_s\": %.6f,\n",
               large_1t.result.stats.improvement_seconds);
  std::fprintf(f, "  \"solve_large_phase_lns_s\": %.6f,\n",
               large_1t.result.stats.lns_seconds);
  std::fprintf(f, "  \"solve_threads\": %d,\n", large_hw.threads);
  std::fprintf(f, "  \"solve_speedup\": %.3f,\n",
               large_hw.wall_s > 0 ? large_1t.wall_s / large_hw.wall_s : 0.0);
  std::fprintf(f, "  \"checksum\": %lld\n", static_cast<long long>(sink.count()));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace mrcp::cp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mrcp::cp::write_bench_json("BENCH_cp_micro.json");
  return 0;
}
