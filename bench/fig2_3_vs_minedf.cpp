// Figs. 2 & 3 — MRCP-RM vs MinEDF-WC on the Facebook-derived workload.
//
// Paper findings: MRCP-RM's proportion of late jobs P is 70-93% lower
// than MinEDF-WC's across lambda = 1e-4 .. 5e-4 (Fig. 2), and its average
// turnaround T is up to ~7% lower (Fig. 3).
//
// Each lambda point runs both resource managers on the *same* replicated
// workloads (common random numbers) and prints P, T, N, O for each plus
// the P/T reduction.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "mapreduce/facebook_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags(
      "Figs. 2 & 3: MRCP-RM vs MinEDF-WC on the Facebook workload "
      "(Table 4, LogNormal task times, 64x(1,1) resources, d_M = 2)");
  flags.add_int("jobs", 200, "jobs per replication (paper: 1000)")
      .add_int("reps", 3, "replications per point (paper: 100)")
      .add_int("seed", 42, "base seed")
      .add_double("warmup", 0.1, "warmup fraction excluded from metrics")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)")
      .add_string("lambdas", "0.0001,0.0002,0.0003,0.0004,0.0005",
                  "comma-separated arrival rates (jobs/s)")
      .add_string("csv", "", "also write results as CSV to this path");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  std::vector<double> lambdas;
  {
    const std::string& spec = flags.get_string("lambdas");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t next = spec.find(',', pos);
      if (next == std::string::npos) next = spec.size();
      lambdas.push_back(std::stod(spec.substr(pos, next - pos)));
      pos = next + 1;
    }
  }

  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double warmup = flags.get_double("warmup");

  std::printf("Figs. 2 & 3 — MRCP-RM vs MinEDF-WC (Facebook workload)\n");
  std::printf("jobs/rep=%zu reps=%zu warmup=%.0f%%\n\n", jobs, reps,
              warmup * 100.0);

  Table table({"lambda", "P_cp(%)", "P_edf(%)", "P_red(%)", "T_cp(s)",
               "T_edf(s)", "T_red(%)", "N_cp", "N_edf", "O_cp(s)", "O_edf(s)"});

  for (double lambda : lambdas) {
    RunningStat p_cp;
    RunningStat p_edf;
    RunningStat t_cp;
    RunningStat t_edf;
    RunningStat n_cp;
    RunningStat n_edf;
    RunningStat o_cp;
    RunningStat o_edf;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      FacebookWorkloadConfig wc;
      wc.num_jobs = jobs;
      wc.arrival_rate = lambda;
      wc.seed = replication_seed(seed, rep);
      const Workload workload = generate_facebook_workload(wc);

      MrcpConfig rm;
      rm.solve.time_limit_s = flags.get_double("solver-budget-s");
      const sim::RunMetrics cp_run =
          sim::summarize_run(sim::simulate_mrcp(workload, rm), warmup);
      const sim::RunMetrics edf_run =
          sim::summarize_run(sim::simulate_minedf(workload), warmup);
      p_cp.add(cp_run.P_percent);
      p_edf.add(edf_run.P_percent);
      t_cp.add(cp_run.T_seconds);
      t_edf.add(edf_run.T_seconds);
      n_cp.add(cp_run.N_late);
      n_edf.add(edf_run.N_late);
      o_cp.add(cp_run.O_seconds);
      o_edf.add(edf_run.O_seconds);
    }
    const double p_red = p_edf.mean() > 0.0
                             ? 100.0 * (1.0 - p_cp.mean() / p_edf.mean())
                             : 0.0;
    const double t_red = t_edf.mean() > 0.0
                             ? 100.0 * (1.0 - t_cp.mean() / t_edf.mean())
                             : 0.0;
    char lam[32];
    std::snprintf(lam, sizeof(lam), "%g", lambda);
    table.add_row({lam, Table::cell(p_cp.mean(), 2), Table::cell(p_edf.mean(), 2),
                   Table::cell(p_red, 0), Table::cell(t_cp.mean(), 1),
                   Table::cell(t_edf.mean(), 1), Table::cell(t_red, 1),
                   Table::cell(n_cp.mean(), 1), Table::cell(n_edf.mean(), 1),
                   Table::cell(o_cp.mean(), 5), Table::cell(o_edf.mean(), 5)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  const std::string& csv = flags.get_string("csv");
  if (!csv.empty() && table.write_csv(csv)) {
    std::printf("wrote %s\n", csv.c_str());
  }
  return 0;
}
