// Per-job-type lateness breakdown on the Facebook workload (Table 4):
// which of the ten job classes miss deadlines under each resource
// manager. This is the drill-down behind Fig. 2 — it shows MRCP-RM's
// advantage concentrating in the large multi-wave classes (types 6-10),
// whose deadlines the baseline's average-based allocation underestimates.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "mapreduce/facebook_workload.h"
#include "sim/cluster_sim.h"

using namespace mrcp;

namespace {

/// Table 4 type index of a job (by its unique (k_mp, k_rd) shape).
int type_of(const Job& job) {
  const auto& mix = facebook_job_mix();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (static_cast<std::size_t>(mix[i].map_tasks) == job.num_map_tasks() &&
        static_cast<std::size_t>(mix[i].reduce_tasks) ==
            job.num_reduce_tasks()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("Per-Table-4-type lateness breakdown (MRCP-RM vs MinEDF-WC)");
  flags.add_int("jobs", 300, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("lambda", 0.0004, "arrival rate (jobs/s)")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("solver-budget-s", 0.1, "CP solve budget (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const auto warmup_of = [&](std::size_t n) {
    return static_cast<std::size_t>(flags.get_double("warmup") *
                                    static_cast<double>(n));
  };

  std::array<int, 10> total{};
  std::array<int, 10> late_cp{};
  std::array<int, 10> late_edf{};

  for (std::size_t rep = 0; rep < reps; ++rep) {
    FacebookWorkloadConfig wc;
    wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
    wc.arrival_rate = flags.get_double("lambda");
    wc.seed = replication_seed(static_cast<std::uint64_t>(flags.get_int("seed")),
                               rep);
    const Workload w = generate_facebook_workload(wc);

    MrcpConfig rm;
    rm.solve.time_limit_s = flags.get_double("solver-budget-s");
    const sim::SimMetrics cp_m = sim::simulate_mrcp(w, rm);
    const sim::SimMetrics edf_m = sim::simulate_minedf(w);

    const std::size_t first = warmup_of(w.size());
    for (std::size_t i = first; i < w.size(); ++i) {
      const int type = type_of(w.jobs[i]);
      if (type < 0) continue;
      const auto t = static_cast<std::size_t>(type);
      ++total[t];
      late_cp[t] += cp_m.records[i].late ? 1 : 0;
      late_edf[t] += edf_m.records[i].late ? 1 : 0;
    }
  }

  Table table({"type", "k_mp", "k_rd", "jobs", "late_cp", "late_edf",
               "P_cp(%)", "P_edf(%)"});
  const auto& mix = facebook_job_mix();
  for (std::size_t t = 0; t < mix.size(); ++t) {
    const double n = std::max(1, total[t]);
    table.add_row({std::to_string(t + 1), std::to_string(mix[t].map_tasks),
                   std::to_string(mix[t].reduce_tasks),
                   std::to_string(total[t]), std::to_string(late_cp[t]),
                   std::to_string(late_edf[t]),
                   Table::cell(100.0 * late_cp[t] / n, 1),
                   Table::cell(100.0 * late_edf[t] / n, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
