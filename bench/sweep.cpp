#include "sweep.h"

#include <cstdio>

#include "common/rng.h"

namespace mrcp::bench {

void add_common_flags(Flags& flags) {
  flags.add_int("jobs", 200, "jobs per replication (paper: steady-state runs)")
      .add_int("reps", 5, "independent replications per point")
      .add_int("seed", 42, "base seed (replication r uses a derived seed)")
      .add_double("warmup", 0.1, "warmup fraction excluded from metrics")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)")
      .add_int("threads", 1, "replications run in parallel on this many threads")
      .add_int("solver-threads", 1,
               "CP solver worker threads per invocation (0 = all hardware)")
      .add_string("csv", "", "also write results as CSV to this path");
}

SweepOptions SweepOptions::from_flags(const Flags& flags) {
  SweepOptions o;
  o.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  o.reps = static_cast<std::size_t>(flags.get_int("reps"));
  o.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  o.warmup = flags.get_double("warmup");
  o.solver_budget_s = flags.get_double("solver-budget-s");
  o.threads = static_cast<unsigned>(flags.get_int("threads"));
  o.solver_threads = static_cast<int>(flags.get_int("solver-threads"));
  o.csv_path = flags.get_string("csv");
  return o;
}

SyntheticWorkloadConfig table3_defaults(const SweepOptions& options) {
  SyntheticWorkloadConfig c;
  c.num_jobs = options.jobs;
  // Table 3 defaults; ambiguous boldface values take the middle of each
  // listed range (documented in EXPERIMENTS.md).
  c.num_map_tasks = {1, 100};
  c.num_reduce_tasks = {1, 100};
  c.e_max = 50;
  c.start_prob = 0.5;
  c.s_max = 50000;
  c.deadline_multiplier_ul = 5.0;
  c.arrival_rate = 0.01;
  c.num_resources = 50;
  c.map_capacity = 2;
  c.reduce_capacity = 2;
  return c;
}

MrcpConfig default_mrcp_config(const SweepOptions& options) {
  MrcpConfig c;
  c.solve.time_limit_s = options.solver_budget_s;
  c.solve.num_threads = options.solver_threads;
  return c;
}

void run_mrcp_sweep(
    const std::string& title, const std::string& param_name,
    const std::vector<std::string>& param_values, const SweepOptions& options,
    const std::function<void(SyntheticWorkloadConfig&, std::size_t)>& mutate,
    const std::function<void(MrcpConfig&, std::size_t)>& mutate_rm) {
  std::printf("%s\n", title.c_str());
  std::printf("jobs/rep=%zu reps=%zu warmup=%.0f%% solver-budget=%.3fs\n\n",
              options.jobs, options.reps, options.warmup * 100.0,
              options.solver_budget_s);

  Table table(sim::result_headers(param_name));
  for (std::size_t vi = 0; vi < param_values.size(); ++vi) {
    const sim::ReplicatedMetrics point = sim::replicate(
        options.reps,
        [&](std::size_t rep) {
          SyntheticWorkloadConfig wc = table3_defaults(options);
          wc.seed = replication_seed(options.seed, rep);
          mutate(wc, vi);
          MrcpConfig rm = default_mrcp_config(options);
          if (mutate_rm) mutate_rm(rm, vi);
          const Workload workload = generate_synthetic_workload(wc);
          const sim::SimMetrics metrics = sim::simulate_mrcp(workload, rm);
          return sim::summarize_run(metrics, options.warmup);
        },
        options.threads);
    table.add_row(sim::result_row(param_values[vi], point));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  if (!options.csv_path.empty()) {
    if (table.write_csv(options.csv_path)) {
      std::printf("wrote %s\n", options.csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write %s\n",
                   options.csv_path.c_str());
    }
  }
}

}  // namespace mrcp::bench
