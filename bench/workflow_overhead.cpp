// Workflow (DAG) scheduling bench — quantifies what the §VII
// generalization costs: the same task mix scheduled (a) as plain
// MapReduce jobs, (b) as chained pipelines (every job's maps form one
// chain), comparing scheduling overhead O and turnaround T. Chains
// serialize the map phase, so T grows by construction; O measures the
// engine's precedence-propagation overhead.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Workflow DAG overhead: flat MapReduce vs chained pipelines");
  flags.add_int("jobs", 60, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  Table table({"shape", "O(s/job)", "O±", "T(s)", "N"});

  for (const bool chained : {false, true}) {
    RunningStat o_stat;
    RunningStat t_stat;
    RunningStat n_stat;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      SyntheticWorkloadConfig wc;
      wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
      wc.num_map_tasks = {2, 10};
      wc.num_reduce_tasks = {1, 4};
      wc.e_max = 20;
      wc.arrival_rate = 0.01;
      wc.num_resources = 20;
      wc.seed = replication_seed(
          static_cast<std::uint64_t>(flags.get_int("seed")), rep);
      Workload w = generate_synthetic_workload(wc);
      if (chained) {
        for (Job& j : w.jobs) {
          for (std::size_t t = 1; t < j.num_map_tasks(); ++t) {
            j.precedences.emplace_back(static_cast<int>(t - 1),
                                       static_cast<int>(t));
          }
          // Chains stretch the critical path; loosen deadlines so the
          // comparison isolates overhead rather than lateness churn.
          j.deadline = j.earliest_start +
                       (j.deadline - j.earliest_start) +
                       j.total_map_time();
        }
      }
      MrcpConfig rm;
      rm.solve.time_limit_s = flags.get_double("solver-budget-s");
      const sim::RunMetrics run = sim::summarize_run(
          sim::simulate_mrcp(w, rm), flags.get_double("warmup"));
      o_stat.add(run.O_seconds);
      t_stat.add(run.T_seconds);
      n_stat.add(run.N_late);
    }
    const auto o_ci = confidence_interval(o_stat);
    table.add_row({chained ? "chained pipelines (DAG)" : "flat MapReduce",
                   Table::cell(o_ci.mean, 6), Table::cell(o_ci.half_width, 6),
                   Table::cell(t_stat.mean(), 1), Table::cell(n_stat.mean(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
