// Ablation — MinEDF-WC design choices, on the Facebook workload:
//   * ARIA allocation bound: average (faithful to [8]) vs upper
//     (conservative Graham bound on exact durations);
//   * task dispatch order within a job: FIFO (faithful) vs LPT.
// MRCP-RM is included as the reference row. Shows how much of the
// paper's Fig. 2 gap is attributable to each baseline design choice.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "mapreduce/facebook_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Ablation: MinEDF-WC estimator bound x dispatch order");
  flags.add_int("jobs", 200, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("lambda", 0.0004, "arrival rate (jobs/s)")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("solver-budget-s", 0.1, "CP solve budget (MRCP row)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double warmup = flags.get_double("warmup");

  auto make_workload = [&](std::size_t rep) {
    FacebookWorkloadConfig wc;
    wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
    wc.arrival_rate = flags.get_double("lambda");
    wc.seed = replication_seed(seed, rep);
    return generate_facebook_workload(wc);
  };

  Table table({"scheduler", "P(%)", "P±", "T(s)", "N"});

  {
    RunningStat p_stat;
    RunningStat t_stat;
    RunningStat n_stat;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      MrcpConfig rm;
      rm.solve.time_limit_s = flags.get_double("solver-budget-s");
      const sim::RunMetrics run =
          sim::summarize_run(sim::simulate_mrcp(make_workload(rep), rm), warmup);
      p_stat.add(run.P_percent);
      t_stat.add(run.T_seconds);
      n_stat.add(run.N_late);
    }
    const auto p_ci = confidence_interval(p_stat);
    table.add_row({"MRCP-RM (reference)", Table::cell(p_ci.mean, 2),
                   Table::cell(p_ci.half_width, 2), Table::cell(t_stat.mean(), 1),
                   Table::cell(n_stat.mean(), 1)});
  }

  const std::vector<std::pair<std::string, baseline::MinEdfConfig>> variants = {
      {"MinEDF-WC avg+fifo (as in [8])",
       {baseline::AriaBound::kAverage, baseline::TaskDispatchOrder::kFifo,
        baseline::AllocationPolicy::kMinimal}},
      {"MinEDF-WC avg+lpt",
       {baseline::AriaBound::kAverage, baseline::TaskDispatchOrder::kLpt,
        baseline::AllocationPolicy::kMinimal}},
      {"MinEDF-WC upper+fifo",
       {baseline::AriaBound::kUpper, baseline::TaskDispatchOrder::kFifo,
        baseline::AllocationPolicy::kMinimal}},
      {"MinEDF-WC upper+lpt",
       {baseline::AriaBound::kUpper, baseline::TaskDispatchOrder::kLpt,
        baseline::AllocationPolicy::kMinimal}},
      {"plain EDF (maximal alloc)",
       {baseline::AriaBound::kAverage, baseline::TaskDispatchOrder::kFifo,
        baseline::AllocationPolicy::kMaximal}},
  };
  for (const auto& [name, config] : variants) {
    RunningStat p_stat;
    RunningStat t_stat;
    RunningStat n_stat;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const sim::RunMetrics run = sim::summarize_run(
          sim::simulate_minedf(make_workload(rep), config), warmup);
      p_stat.add(run.P_percent);
      t_stat.add(run.T_seconds);
      n_stat.add(run.N_late);
    }
    const auto p_ci = confidence_interval(p_stat);
    table.add_row({name, Table::cell(p_ci.mean, 2),
                   Table::cell(p_ci.half_width, 2), Table::cell(t_stat.mean(), 1),
                   Table::cell(n_stat.mean(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
