// Ablation — job ordering strategies (paper §VI.B).
//
// The paper ran MRCP-RM with three orderings — job id, EDF, least laxity
// first — and reports that EDF produced the smallest P, with no large
// differences overall. This bench fixes the solver portfolio to a single
// strategy at a time and compares O, T, N, P.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

using namespace mrcp;

int main(int argc, char** argv) {
  Flags flags("Ablation (paper §VI.B): job ordering strategies");
  flags.add_int("jobs", 100, "jobs per replication")
      .add_int("reps", 3, "replications")
      .add_int("seed", 42, "base seed")
      .add_double("warmup", 0.1, "warmup fraction")
      .add_double("dm", 2.0, "deadline multiplier (tight, so ordering matters)")
      .add_double("solver-budget-s", 0.1, "CP solve budget per invocation (s)");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const auto reps = static_cast<std::size_t>(flags.get_int("reps"));
  Table table(sim::result_headers("ordering"));

  const std::vector<std::pair<std::string, cp::JobOrdering>> strategies = {
      {"job-id", cp::JobOrdering::kJobId},
      {"edf", cp::JobOrdering::kEdf},
      {"least-laxity", cp::JobOrdering::kLeastLaxity},
      {"fcfs", cp::JobOrdering::kFcfs},
  };
  for (const auto& [name, ordering] : strategies) {
    const sim::ReplicatedMetrics point =
        sim::replicate(reps, [&](std::size_t rep) {
          SyntheticWorkloadConfig wc;
          wc.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
          wc.deadline_multiplier_ul = flags.get_double("dm");
          wc.seed = replication_seed(
              static_cast<std::uint64_t>(flags.get_int("seed")), rep);
          const Workload workload = generate_synthetic_workload(wc);
          MrcpConfig rm;
          rm.solve.portfolio = {ordering};
          rm.solve.time_limit_s = flags.get_double("solver-budget-s");
          const sim::SimMetrics metrics = sim::simulate_mrcp(workload, rm);
          return sim::summarize_run(metrics, flags.get_double("warmup"));
        });
    table.add_row(sim::result_row(name, point));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
