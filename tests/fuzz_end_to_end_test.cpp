// Randomized end-to-end property suite: random workload/configuration
// combinations through both resource managers with full execution
// validation. Any capacity, precedence, SLA, or bookkeeping violation
// aborts via MRCP_CHECK inside the simulator; these tests additionally
// assert the metric invariants that must hold for every run.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapreduce/synthetic_workload.h"
#include "mapreduce/workload_io.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

namespace mrcp {
namespace {

struct FuzzCase {
  Workload workload;
  MrcpConfig config;
};

FuzzCase make_case(std::uint64_t seed) {
  RandomStream rng(seed, 0xF022);
  SyntheticWorkloadConfig wc;
  wc.num_jobs = static_cast<std::size_t>(rng.uniform_int(5, 40));
  wc.num_map_tasks = {1, rng.uniform_int(2, 30)};
  wc.num_reduce_tasks = {1, rng.uniform_int(1, 15)};
  wc.e_max = rng.uniform_int(2, 60);
  wc.start_prob = rng.uniform_real(0.0, 1.0);
  wc.s_max = rng.uniform_int(10, 5000);
  wc.deadline_multiplier_ul = rng.uniform_real(1.1, 8.0);
  wc.arrival_rate = rng.uniform_real(0.002, 0.08);
  wc.num_resources = static_cast<int>(rng.uniform_int(2, 20));
  wc.map_capacity = static_cast<int>(rng.uniform_int(1, 3));
  wc.reduce_capacity = static_cast<int>(rng.uniform_int(1, 3));
  wc.seed = seed;

  FuzzCase c;
  c.workload = generate_synthetic_workload(wc);
  c.config.use_separation = rng.bernoulli(0.8);
  c.config.defer_future_jobs = rng.bernoulli(0.7);
  c.config.deferral_window = Time{rng.uniform_int(0, 2000) * kTicksPerSecond};
  c.config.replan_scope = rng.bernoulli(0.85) ? ReplanScope::kAllUnstarted
                                              : ReplanScope::kNewJobsOnly;
  // Results are only reproducible when the wall-clock cap does not bind
  // (solver.h); the deterministic budgets below finish in milliseconds,
  // so keep the cap far above them or parallel test load makes the
  // double-simulation assertions flaky.
  c.config.solve.time_limit_s = 5.0;
  c.config.solve.improvement_fails = rng.uniform_int(0, 500);
  c.config.solve.lns_iterations = static_cast<int>(rng.uniform_int(0, 10));
  c.config.solve.seed = seed;
  return c;
}

void check_invariants(const sim::SimMetrics& m, const Workload& w) {
  ASSERT_EQ(m.records.size(), w.size());
  for (std::size_t i = 0; i < m.records.size(); ++i) {
    const sim::JobRecord& r = m.records[i];
    const Job& j = w.jobs[i];
    ASSERT_TRUE(r.completed()) << "job " << i << " never finished";
    // Completion can never precede s_j + the job's longest task.
    const Time min_span = std::max(j.max_map_time(),
                                   j.num_reduce_tasks() > 0
                                       ? j.max_map_time() + j.max_reduce_time()
                                       : Time{0});
    EXPECT_GE(r.completion, j.earliest_start + min_span);
    EXPECT_EQ(r.late, r.completion > j.deadline);
  }
  // Executed exactly one interval per task (validated structurally by
  // validate_execution inside the simulator; re-check count here).
  std::size_t expected = 0;
  for (const Job& j : w.jobs) expected += j.num_tasks();
  EXPECT_EQ(m.executed.size(), expected);
}

class FuzzEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEndToEnd, MrcpValidatedRun) {
  const FuzzCase c = make_case(GetParam());
  sim::SimOptions opts;
  opts.validate_execution = true;
  opts.validate_plans = true;  // every intermediate plan checked too
  const sim::SimMetrics m = sim::simulate_mrcp(c.workload, c.config, opts);
  check_invariants(m, c.workload);
}

TEST_P(FuzzEndToEnd, MinedfValidatedRun) {
  const FuzzCase c = make_case(GetParam());
  const sim::SimMetrics m = sim::simulate_minedf(c.workload);
  check_invariants(m, c.workload);
}

TEST_P(FuzzEndToEnd, WorkloadSerializationRoundTripStable) {
  const FuzzCase c = make_case(GetParam());
  std::string error;
  const Workload loaded =
      workload_from_string(workload_to_string(c.workload), &error);
  ASSERT_EQ(error, "");
  // Simulating the reloaded workload gives bit-identical completions.
  const sim::SimMetrics a = sim::simulate_mrcp(c.workload, c.config);
  const sim::SimMetrics b = sim::simulate_mrcp(loaded, c.config);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEndToEnd,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace mrcp
