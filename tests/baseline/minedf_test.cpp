#include "baseline/minedf_wc.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "../test_util.h"

namespace mrcp::baseline {
namespace {

using testutil::make_job;

struct Launch {
  JobId job;
  int task_index;
  Time start;
  Time end;
};

struct Harness {
  std::vector<Launch> launches;
  std::unique_ptr<MinEdfWcScheduler> sched;

  // Tests pin the exact (upper-bound) estimator by default so slot-count
  // expectations are deterministic; average-mode behaviour is covered by
  // dedicated tests below.
  explicit Harness(const Cluster& cluster,
                   AriaBound bound = AriaBound::kUpper,
                   TaskDispatchOrder order = TaskDispatchOrder::kFifo) {
    MinEdfConfig config;
    config.bound = bound;
    config.task_order = order;
    sched = std::make_unique<MinEdfWcScheduler>(
        cluster,
        [this](JobId j, int t, Time s, Time e) {
          launches.push_back(Launch{j, t, s, e});
          return e;  // homogeneous harness: actual end == base end
        },
        config);
  }

  /// Drive completions strictly in end-time order up to `until`.
  void run_until(Time until) {
    while (true) {
      // earliest unfinished launch
      std::size_t best = launches.size();
      for (std::size_t i = 0; i < launches.size(); ++i) {
        if (finished.count(i) != 0U) continue;
        if (best == launches.size() || launches[i].end < launches[best].end) {
          best = i;
        }
      }
      if (best == launches.size() || launches[best].end > until) break;
      finished.insert(best);
      sched->on_task_finished(launches[best].job, launches[best].task_index,
                              launches[best].end);
    }
  }

  std::set<std::size_t> finished;
};

TEST(MinEdfWc, SingleJobRunsAllMapsThenReduces) {
  Harness h(Cluster::homogeneous(2, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{100}, Time{100}}, {Time{50}}), Time{0});
  // Two map slots: two maps start immediately.
  ASSERT_EQ(h.launches.size(), 2u);
  EXPECT_EQ(h.launches[0].start, Time{0});
  EXPECT_EQ(h.launches[1].start, Time{0});
  h.run_until(Time{100});
  // Third map launched at 100; after it finishes at 200, the reduce goes.
  ASSERT_GE(h.launches.size(), 3u);
  EXPECT_EQ(h.launches[2].start, Time{100});
  h.run_until(Time{200});
  ASSERT_EQ(h.launches.size(), 4u);
  const Launch& red = h.launches[3];
  EXPECT_EQ(red.start, Time{200});
  EXPECT_EQ(red.end, Time{250});
  h.run_until(Time{250});
  EXPECT_EQ(h.sched->live_jobs(), 0u);
  EXPECT_EQ(h.sched->stats().jobs_completed, 1u);
}

TEST(MinEdfWc, ReducesWaitForAllMaps) {
  Harness h(Cluster::homogeneous(4, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{300}}, {Time{50}}), Time{0});
  h.run_until(Time{100});  // first map done, second still running
  for (const Launch& l : h.launches) {
    const bool is_reduce = l.task_index >= 2;
    EXPECT_FALSE(is_reduce) << "reduce launched before maps finished";
  }
  h.run_until(Time{300});
  bool reduce_launched = false;
  for (const Launch& l : h.launches) reduce_launched |= l.task_index == 2;
  EXPECT_TRUE(reduce_launched);
}

TEST(MinEdfWc, WorkConservationUsesAllFreeSlots) {
  // One job with many maps and a loose deadline: MinEDF grants the
  // minimum, WC tops it up to every free slot.
  Harness h(Cluster::homogeneous(4, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{10}, Time{10}, Time{10}, Time{10}}, {}), Time{0});
  EXPECT_EQ(h.launches.size(), 4u);  // all four slots busy at once
}

TEST(MinEdfWc, UrgentJobGetsMinimumSlotsSpareGoesToNext) {
  // Cluster with 2 map slots. Job 0 (loose deadline) occupies both; job 1
  // (deadline 400, two 150-tick maps) arrives and must wait — no
  // preemption. When both slots free at t=100, EDF serves job 1 first
  // but grants only its *minimum* need: one slot suffices to finish both
  // maps by 100+150+150 = 400. The spare slot goes work-conservingly to
  // job 0.
  Harness h(Cluster::homogeneous(2, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}, Time{100}}, {}), Time{0});
  ASSERT_EQ(h.launches.size(), 2u);
  h.sched->submit(make_job(1, Time{10}, Time{10}, Time{400}, {Time{150}, Time{150}}, {}), Time{10});
  // No free slots: nothing new yet.
  EXPECT_EQ(h.launches.size(), 2u);
  h.run_until(Time{100});
  ASSERT_EQ(h.launches.size(), 4u);
  EXPECT_EQ(h.launches[2].job, 1);
  EXPECT_EQ(h.launches[3].job, 0);
}

TEST(MinEdfWc, UrgentJobTakesBothSlotsWhenDeadlineDemandsIt) {
  // Same shape but job 1's deadline (350) is only achievable with both
  // slots running its 150-tick maps in parallel from t=100.
  Harness h(Cluster::homogeneous(2, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}, Time{100}}, {}), Time{0});
  h.sched->submit(make_job(1, Time{10}, Time{10}, Time{350}, {Time{150}, Time{150}}, {}), Time{10});
  h.run_until(Time{100});
  ASSERT_EQ(h.launches.size(), 4u);
  EXPECT_EQ(h.launches[2].job, 1);
  EXPECT_EQ(h.launches[3].job, 1);
}

TEST(MinEdfWc, LptDispatchRunsLongestTaskFirst) {
  Harness h(Cluster::homogeneous(1, 1, 1), AriaBound::kUpper,
            TaskDispatchOrder::kLpt);
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{50}, Time{200}, Time{100}}, {}), Time{0});
  ASSERT_EQ(h.launches.size(), 1u);
  // Flat index 1 has the longest duration (200).
  EXPECT_EQ(h.launches[0].task_index, 1);
  h.run_until(Time{200});
  ASSERT_EQ(h.launches.size(), 2u);
  EXPECT_EQ(h.launches[1].task_index, 2);  // 100 next
}

TEST(MinEdfWc, FifoDispatchRunsTasksInSplitOrder) {
  Harness h(Cluster::homogeneous(1, 1, 1));  // default: FIFO
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{50}, Time{200}, Time{100}}, {}), Time{0});
  ASSERT_EQ(h.launches.size(), 1u);
  EXPECT_EQ(h.launches[0].task_index, 0);
  h.run_until(Time{50});
  ASSERT_EQ(h.launches.size(), 2u);
  EXPECT_EQ(h.launches[1].task_index, 1);
}

TEST(MinEdfWc, RespectsEarliestStart) {
  Harness h(Cluster::homogeneous(2, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{500}, Time{10000}, {Time{100}}, {}), Time{0});
  EXPECT_TRUE(h.launches.empty());  // not eligible yet
  EXPECT_EQ(h.sched->next_eligible_time(Time{0}), Time{500});
  h.sched->wake(Time{500});
  ASSERT_EQ(h.launches.size(), 1u);
  EXPECT_EQ(h.launches[0].start, Time{500});
}

TEST(MinEdfWc, MapOnlyJobCompletes) {
  Harness h(Cluster::homogeneous(1, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{10000}, {Time{10}, Time{10}}, {}), Time{0});
  h.run_until(Time{100});
  EXPECT_EQ(h.sched->stats().jobs_completed, 1u);
  EXPECT_EQ(h.sched->free_map_slots(), 1);
  EXPECT_EQ(h.sched->free_reduce_slots(), 1);
}

TEST(MinEdfWc, SlotAccountingNeverNegative) {
  Harness h(Cluster::homogeneous(2, 2, 1));
  for (int i = 0; i < 5; ++i) {
    h.sched->submit(
        make_job(i, Time{i * 10}, Time{i * 10}, Time{100000}, {Time{30}, Time{40}}, {Time{20}}), Time{i * 10});
    h.run_until(Time{i * 10});
    EXPECT_GE(h.sched->free_map_slots(), 0);
    EXPECT_GE(h.sched->free_reduce_slots(), 0);
  }
  h.run_until(Time{1000000});
  EXPECT_EQ(h.sched->stats().jobs_completed, 5u);
  EXPECT_EQ(h.sched->free_map_slots(), 4);
  EXPECT_EQ(h.sched->free_reduce_slots(), 2);
}

TEST(MinEdfWc, NextEligibleTimePicksEarliestFutureStart) {
  Harness h(Cluster::homogeneous(4, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{900}, Time{100000}, {Time{10}}, {}), Time{0});
  h.sched->submit(make_job(1, Time{0}, Time{400}, Time{100000}, {Time{10}}, {}), Time{0});
  h.sched->submit(make_job(2, Time{0}, Time{0}, Time{100000}, {Time{10}}, {}), Time{0});
  EXPECT_EQ(h.sched->next_eligible_time(Time{0}), Time{400});
  h.sched->wake(Time{400});
  EXPECT_EQ(h.sched->next_eligible_time(Time{400}), Time{900});
  h.sched->wake(Time{900});
  EXPECT_EQ(h.sched->next_eligible_time(Time{900}), kNoTime);
}

TEST(MinEdfWc, ReduceOnlyJobRunsImmediately) {
  Harness h(Cluster::homogeneous(2, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{100000}, {}, {Time{50}, Time{60}}), Time{0});
  // No maps: reduces are eligible at once.
  ASSERT_EQ(h.launches.size(), 2u);
  h.run_until(Time{1000});
  EXPECT_EQ(h.sched->stats().jobs_completed, 1u);
}

TEST(MinEdfWc, RemainingStatsIncludeRunningResiduals) {
  Harness h(Cluster::homogeneous(1, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}, Time{40}}, {}), Time{0});
  ASSERT_EQ(h.launches.size(), 1u);  // one map running [0, 100)
  // Internal behaviour is covered indirectly: at t=0 the running task
  // holds the only slot, so nothing else launches until 100.
  h.run_until(Time{99});
  EXPECT_EQ(h.launches.size(), 1u);
  h.run_until(Time{100});
  EXPECT_EQ(h.launches.size(), 2u);
  EXPECT_EQ(h.launches[1].start, Time{100});
}

TEST(MinEdfWc, StatsTrackSubmissionsAndLaunches) {
  Harness h(Cluster::homogeneous(1, 1, 1));
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{10000}, {Time{10}}, {Time{5}}), Time{0});
  h.run_until(Time{100});
  EXPECT_EQ(h.sched->stats().jobs_submitted, 1u);
  EXPECT_EQ(h.sched->stats().tasks_launched, 2u);
  EXPECT_GT(h.sched->stats().dispatches, 0u);
}

TEST(MinEdfWc, AverageBoundCanMissDeadlines) {
  // Three 60-tick maps, deadline 110, two slots available. The ARIA
  // average estimate ((90 + 120) / 2 = 105) claims 2 slots suffice, but
  // the actual list schedule finishes at 120 > 110 — the baseline's
  // characteristic optimistic allocation (paper Fig. 2).
  Harness h(Cluster::homogeneous(2, 1, 1), AriaBound::kAverage);
  h.sched->submit(make_job(0, Time{0}, Time{0}, Time{110}, {Time{60}, Time{60}, Time{60}}, {}), Time{0});
  h.run_until(Time{1000});
  Time completion;
  for (const Launch& l : h.launches) completion = std::max(completion, l.end);
  EXPECT_EQ(completion, Time{120});  // misses the 110 deadline
}

TEST(MinEdfWc, MaximalAllocationGrabsAllSlotsEdfFirst) {
  // Plain-EDF variant: job 0 (earlier deadline) takes as many slots as
  // it has tasks; job 1 gets the leftovers despite the minimal profile
  // of job 0 needing just one slot.
  MinEdfConfig cfg;
  cfg.allocation = AllocationPolicy::kMaximal;
  std::vector<Launch> launches;
  MinEdfWcScheduler sched(
      Cluster::homogeneous(4, 1, 1),
      [&](JobId j, int t, Time s, Time e) {
        launches.push_back({j, t, s, e});
        return e;
      },
      cfg);
  sched.submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{10}, Time{10}, Time{10}}, {}), Time{0});
  sched.submit(make_job(1, Time{0}, Time{0}, Time{2000000}, {Time{10}, Time{10}}, {}), Time{0});
  ASSERT_EQ(launches.size(), 4u);
  int job0_launches = 0;
  for (const Launch& l : launches) job0_launches += l.job == 0 ? 1 : 0;
  EXPECT_EQ(job0_launches, 3);  // all of job 0's maps run at once
}

TEST(MinEdfWc, NeverLaunchesBeyondCapacity) {
  Harness h(Cluster::homogeneous(2, 1, 1));
  for (int i = 0; i < 4; ++i) {
    h.sched->submit(make_job(i, Time{0}, Time{0}, Time{1000 + i}, {Time{50}, Time{50}}, {}), Time{0});
  }
  // At most 2 concurrent map launches at t=0.
  int at_zero = 0;
  for (const Launch& l : h.launches) {
    if (l.start == Time{0}) ++at_zero;
  }
  EXPECT_EQ(at_zero, 2);
}

}  // namespace
}  // namespace mrcp::baseline
