#include "baseline/aria_estimator.h"

#include <gtest/gtest.h>

namespace mrcp::baseline {
namespace {

TEST(CompletionUpperBound, EmptyIsZero) {
  EXPECT_EQ(completion_upper_bound({}, 3), Time{0});
}

TEST(CompletionUpperBound, SingleSlotSums) {
  EXPECT_EQ(completion_upper_bound({Time{10}, Time{20}, Time{30}}, 1), Time{60});
}

TEST(CompletionUpperBound, GrahamBound) {
  // (sum - max)/n + max = (60-30)/2 + 30 = 45.
  EXPECT_EQ(completion_upper_bound({Time{10}, Time{20}, Time{30}}, 2), Time{45});
  // n=3: (30)/3 + 30 = 40.
  EXPECT_EQ(completion_upper_bound({Time{10}, Time{20}, Time{30}}, 3), Time{40});
}

TEST(CompletionUpperBound, CeilingDivision) {
  // (sum - max) = 25, n = 4 -> ceil(25/4) = 7, + max 10 = 17.
  EXPECT_EQ(completion_upper_bound({Time{10}, Time{10}, Time{10}, Time{5}}, 4), Time{17});
}

TEST(CompletionUpperBound, BoundIsAtLeastMax) {
  EXPECT_GE(completion_upper_bound({Time{5}, Time{50}}, 100), Time{50});
}

TEST(MinSlots, EmptyNeedsZero) {
  EXPECT_EQ(min_slots_for_budget({}, Time{100}, 8), 0);
}

TEST(MinSlots, GenerousBudgetNeedsOne) {
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{60}, 8), 1);
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{1000}, 8), 1);
}

TEST(MinSlots, TightBudgetNeedsMore) {
  // Budget 45 achievable with 2 slots (see GrahamBound).
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{45}, 8), 2);
  // Budget 44 needs 3 slots: bound(3) = 40 <= 44.
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{44}, 8), 3);
}

TEST(MinSlots, ImpossibleBudgetReturnsZero) {
  // Even unlimited slots cannot beat the longest task.
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{29}, 8), 0);
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{0}, 8), 0);
}

TEST(MinSlots, CapByMaxSlots) {
  // Needs 3 slots but only 2 available -> infeasible.
  EXPECT_EQ(min_slots_for_budget({Time{10}, Time{20}, Time{30}}, Time{44}, 2), 0);
}

TEST(MinSlots, InverseOfBound) {
  // For a mix of durations and budgets, min_slots_for_budget returns the
  // smallest n whose bound fits.
  const std::vector<Time> durs{Time{7}, Time{13}, Time{22}, Time{9}, Time{30}, Time{18}};
  for (Time budget = Time{30}; budget <= Time{99}; budget += Time{3}) {
    const int n = min_slots_for_budget(durs, budget, 16);
    if (n == 0) {
      EXPECT_GT(completion_upper_bound(durs, 16), budget);
      continue;
    }
    EXPECT_LE(completion_upper_bound(durs, n), budget);
    if (n > 1) {
      EXPECT_GT(completion_upper_bound(durs, n - 1), budget);
    }
  }
}

TEST(AriaAverage, AverageOfLowAndUpBounds) {
  // {60,60,60} on 2 slots: T_low = ceil(180/2) = 90,
  // T_up = ceil(2*60/2) + 60 = 120, T_avg = 105.
  EXPECT_EQ(aria_completion_estimate(std::vector<Time>{Time{60}, Time{60}, Time{60}}, 2, AriaBound::kAverage), Time{105});
  // kUpper delegates to the Graham bound.
  EXPECT_EQ(aria_completion_estimate(std::vector<Time>{Time{60}, Time{60}, Time{60}}, 2, AriaBound::kUpper), Time{120});
}

TEST(AriaAverage, EmptyAndSingle) {
  EXPECT_EQ(aria_completion_estimate(std::vector<Time>{}, 4, AriaBound::kAverage), Time{0});
  // Single task: low = ceil(d/n), up = 0/n + d = d.
  EXPECT_EQ(aria_completion_estimate(std::vector<Time>{Time{50}}, 1, AriaBound::kAverage), Time{50});
}

TEST(AriaAverage, CanClaimFeasibilityTheScheduleMisses) {
  // Budget 110 on {60,60,60}: the average estimate accepts 2 slots
  // (105 <= 110) although the true list-schedule completion is 120 —
  // the optimistic allocation that makes MinEDF-WC miss deadlines.
  EXPECT_EQ(min_slots_for_estimate(std::vector<Time>{Time{60}, Time{60}, Time{60}}, Time{110}, 2, AriaBound::kAverage),
            2);
  EXPECT_EQ(min_slots_for_estimate(std::vector<Time>{Time{60}, Time{60}, Time{60}}, Time{110}, 2, AriaBound::kUpper), 0);
}

TEST(AriaAverage, MonotoneNonIncreasingInSlots) {
  const std::vector<Time> durs{Time{7}, Time{13}, Time{22}, Time{9}, Time{30}, Time{18}, Time{44}, Time{5}};
  Time prev = aria_completion_estimate(durs, 1, AriaBound::kAverage);
  for (int n = 2; n <= 10; ++n) {
    const Time est = aria_completion_estimate(durs, n, AriaBound::kAverage);
    EXPECT_LE(est, prev);
    prev = est;
  }
}

TEST(MinimalSlotProfile, MapOnlyJob) {
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{Time{10}, Time{20}, Time{30}}, std::vector<Time>{}, Time{0}, Time{45}, 8, 8);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.map_slots, 2);
  EXPECT_EQ(p.reduce_slots, 0);
}

TEST(MinimalSlotProfile, ReduceOnlyJob) {
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{}, std::vector<Time>{Time{10}, Time{20}, Time{30}}, Time{0}, Time{45}, 8, 8);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.map_slots, 0);
  EXPECT_EQ(p.reduce_slots, 2);
}

TEST(MinimalSlotProfile, TwoPhaseSplitsBudget) {
  // Maps {30}, reduces {30}; deadline 70 from t=0: maps take 30 with one
  // slot, reduces 30 with one slot -> (1, 1) works.
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{Time{30}}, std::vector<Time>{Time{30}}, Time{0}, Time{70}, 8, 8);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.map_slots, 1);
  EXPECT_EQ(p.reduce_slots, 1);
}

TEST(MinimalSlotProfile, TightDeadlineNeedsParallelism) {
  // Maps: 4x25 (sum 100), reduces: 2x20 (sum 40). Deadline 75.
  // nm=2: bound = ceil(75/2)+25 = 63 > 75-40... sweep should find a
  // feasible minimal combination; verify feasibility + bound arithmetic.
  const SlotProfile p =
      minimal_slot_profile(std::vector<Time>{Time{25}, Time{25}, Time{25}, Time{25}}, std::vector<Time>{Time{20}, Time{20}}, Time{0}, Time{75}, 8, 8);
  ASSERT_TRUE(p.feasible);
  const Time t_map = completion_upper_bound({Time{25}, Time{25}, Time{25}, Time{25}}, p.map_slots);
  const Time t_red = completion_upper_bound({Time{20}, Time{20}}, p.reduce_slots);
  EXPECT_LE(t_map + t_red, Time{75});
  // Minimality: no profile with fewer total slots is feasible.
  const int total = p.map_slots + p.reduce_slots;
  for (int nm = 1; nm < 8; ++nm) {
    for (int nr = 1; nm + nr < total; ++nr) {
      EXPECT_GT(completion_upper_bound({Time{25}, Time{25}, Time{25}, Time{25}}, nm) +
                    completion_upper_bound({Time{20}, Time{20}}, nr),
                Time{75})
          << "smaller profile (" << nm << "," << nr << ") would fit";
    }
  }
}

TEST(MinimalSlotProfile, InfeasibleDeadlineReturnsMaxSlots) {
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{Time{100}}, std::vector<Time>{Time{100}}, Time{0}, Time{50}, 4, 4);
  EXPECT_FALSE(p.feasible);
  EXPECT_EQ(p.map_slots, 4);
  EXPECT_EQ(p.reduce_slots, 4);
}

TEST(MinimalSlotProfile, PastDeadline) {
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{Time{10}}, std::vector<Time>{Time{10}}, Time{100}, Time{50}, 4, 4);
  EXPECT_FALSE(p.feasible);
}

TEST(MinimalSlotProfile, NowOffsetsBudget) {
  // Same instance as TwoPhaseSplitsBudget but starting at t = 30 with
  // deadline 100: identical budget of 70.
  const SlotProfile p = minimal_slot_profile(std::vector<Time>{Time{30}}, std::vector<Time>{Time{30}}, Time{30}, Time{100}, 8, 8);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.map_slots, 1);
  EXPECT_EQ(p.reduce_slots, 1);
}

}  // namespace
}  // namespace mrcp::baseline
