// Journal schema tests: every serialized type must round-trip exactly
// over seeded random instances (1000 per type — the encode/decode
// property the recovery path stands on), and malformed input —
// truncation, bit flips, unknown versions, trailing bytes — must be
// rejected with a byte offset, never crash or silently misparse.
// The Journal class's resume-verification and crash-injection modes are
// covered at the bottom (docs/crash_recovery.md).
#include "core/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/io/file_io.h"
#include "common/io/record_io.h"

namespace mrcp {
namespace {

// ---------------------------------------------------------------------------
// Seeded generators. Sizes stay small (the property is about field
// coverage, not volume); values span the full domain of each field.
// ---------------------------------------------------------------------------

using Rng = std::mt19937_64;

std::int32_t rnd_i32(Rng& rng) { return static_cast<std::int32_t>(rng()); }

Ticks rnd_ticks(Rng& rng) { return Ticks{static_cast<std::int64_t>(rng())}; }

double rnd_f64(Rng& rng) {
  return std::uniform_real_distribution<double>(-1e15, 1e15)(rng);
}

Task rnd_task(Rng& rng) {
  Task task;
  task.type = (rng() & 1) != 0 ? TaskType::kReduce : TaskType::kMap;
  task.exec_time = rnd_ticks(rng);
  task.res_req = rnd_i32(rng);
  task.net_demand = rnd_i32(rng);
  // Placement constraints (journal format v2): empty most of the time so
  // the default-shaped encoding is exercised too.
  for (std::uint64_t i = rng() % 3; i > 0; --i) {
    task.candidates.push_back(rnd_i32(rng));
  }
  for (std::uint64_t i = rng() % 3; i > 0; --i) {
    task.racks.push_back(rnd_i32(rng));
  }
  task.affinity_group = (rng() & 1) != 0 ? rnd_i32(rng) : -1;
  return task;
}

Job rnd_job(Rng& rng) {
  Job job;
  job.id = rnd_i32(rng);
  job.arrival_time = rnd_ticks(rng);
  job.earliest_start = rnd_ticks(rng);
  job.deadline = rnd_ticks(rng);
  for (std::uint64_t i = rng() % 5; i > 0; --i) {
    job.map_tasks.push_back(rnd_task(rng));
  }
  for (std::uint64_t i = rng() % 4; i > 0; --i) {
    job.reduce_tasks.push_back(rnd_task(rng));
  }
  for (std::uint64_t i = rng() % 4; i > 0; --i) {
    job.precedences.emplace_back(rnd_i32(rng), rnd_i32(rng));
  }
  return job;
}

PlannedTask rnd_planned_task(Rng& rng) {
  PlannedTask task;
  task.job = rnd_i32(rng);
  task.task_index = rnd_i32(rng);
  task.type = (rng() & 1) != 0 ? TaskType::kReduce : TaskType::kMap;
  task.resource = rnd_i32(rng);
  task.start = rnd_ticks(rng);
  task.end = rnd_ticks(rng);
  task.started = (rng() & 1) != 0;
  return task;
}

Plan rnd_plan(Rng& rng) {
  Plan plan;
  plan.epoch = rng();
  plan.planned_at = rnd_ticks(rng);
  for (std::uint64_t i = rng() % 6; i > 0; --i) {
    plan.tasks.push_back(rnd_planned_task(rng));
  }
  plan.parked_tasks = static_cast<std::size_t>(rng() % 1000);
  return plan;
}

MrcpStats rnd_stats(Rng& rng) {
  MrcpStats stats;
  stats.invocations = rng();
  stats.jobs_submitted = rng();
  stats.jobs_completed = rng();
  stats.jobs_completed_late = rng();
  stats.total_sched_seconds = rnd_f64(rng);
  stats.solver_decisions = static_cast<std::int64_t>(rng());
  stats.solver_fails = static_cast<std::int64_t>(rng());
  stats.max_live_tasks = rng();
  stats.resource_down_events = rng();
  stats.resource_up_events = rng();
  stats.tasks_reset_by_failure = rng();
  stats.solve_attempts = rng();
  stats.fallback_plans = rng();
  stats.jobs_backpressured = rng();
  stats.jobs_parked = rng();
  stats.solve_wall_seconds = rnd_f64(rng);
  stats.model_cache_hits = rng();
  stats.model_cache_misses = rng();
  stats.warm_starts_used = rng();
  stats.dirty_promotions = rng();
  return stats;
}

InvocationRecord rnd_invocation(Rng& rng) {
  InvocationRecord rec;
  rec.epoch = rng();
  rec.sim_time = rnd_ticks(rng);
  rec.attempts = rnd_i32(rng);
  rec.last_status = static_cast<cp::SolveStatus>(rng() % 4);
  rec.outcome = static_cast<InvocationOutcome>(rng() % 6);
  rec.solve_wall_seconds = rnd_f64(rng);
  rec.live_tasks = static_cast<std::size_t>(rng() % 100000);
  rec.parked_jobs = static_cast<std::size_t>(rng() % 100000);
  rec.dirty_jobs = static_cast<std::size_t>(rng() % 100000);
  rec.frozen_tasks = static_cast<std::size_t>(rng() % 100000);
  rec.model_cache_hit = (rng() & 1) != 0;
  return rec;
}

/// encode(decode(encode(x))) == encode(x): a byte-level fixpoint is the
/// round-trip proof without needing operator== on every type.
template <typename T, typename Encode, typename Decode>
void expect_fixpoint(const T& value, Encode encode, Decode decode) {
  io::Encoder enc;
  encode(enc, value);
  const std::string first = enc.take();
  io::Decoder dec(first);
  const T back = decode(dec);
  ASSERT_TRUE(dec.done()) << dec.error();
  io::Encoder enc2;
  encode(enc2, back);
  ASSERT_EQ(enc2.str(), first);
}

// ---------------------------------------------------------------------------
// Round trips: 1000 seeded instances per serialized type.
// ---------------------------------------------------------------------------

TEST(JournalCodecs, TicksRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Ticks t = rnd_ticks(rng);
    io::Encoder enc;
    encode_ticks(enc, t);
    io::Decoder dec(enc.str());
    ASSERT_EQ(decode_ticks(dec), t);
    ASSERT_TRUE(dec.done());
  }
}

TEST(JournalCodecs, TaskRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Task task = rnd_task(rng);
    expect_fixpoint(task, encode_task, decode_task);
    io::Encoder enc;
    encode_task(enc, task);
    io::Decoder dec(enc.str());
    const Task back = decode_task(dec);
    ASSERT_EQ(back.type, task.type);
    ASSERT_EQ(back.exec_time, task.exec_time);
    ASSERT_EQ(back.res_req, task.res_req);
    ASSERT_EQ(back.net_demand, task.net_demand);
    ASSERT_EQ(back.candidates, task.candidates);
    ASSERT_EQ(back.racks, task.racks);
    ASSERT_EQ(back.affinity_group, task.affinity_group);
  }
}

TEST(JournalCodecs, JobRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Job job = rnd_job(rng);
    expect_fixpoint(job, encode_job, decode_job);
    io::Encoder enc;
    encode_job(enc, job);
    io::Decoder dec(enc.str());
    const Job back = decode_job(dec);
    ASSERT_EQ(back.id, job.id);
    ASSERT_EQ(back.deadline, job.deadline);
    ASSERT_EQ(back.map_tasks.size(), job.map_tasks.size());
    ASSERT_EQ(back.reduce_tasks.size(), job.reduce_tasks.size());
    ASSERT_EQ(back.precedences, job.precedences);
  }
}

TEST(JournalCodecs, PlannedTaskRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    expect_fixpoint(rnd_planned_task(rng), encode_planned_task,
                    decode_planned_task);
  }
}

TEST(JournalCodecs, PlanRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Plan plan = rnd_plan(rng);
    expect_fixpoint(plan, encode_plan, decode_plan);
    io::Encoder enc;
    encode_plan(enc, plan);
    io::Decoder dec(enc.str());
    const Plan back = decode_plan(dec);
    ASSERT_EQ(back.epoch, plan.epoch);
    ASSERT_EQ(back.planned_at, plan.planned_at);
    ASSERT_EQ(back.tasks.size(), plan.tasks.size());
    ASSERT_EQ(back.parked_tasks, plan.parked_tasks);
  }
}

TEST(JournalCodecs, MrcpStatsRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    expect_fixpoint(rnd_stats(rng), encode_mrcp_stats, decode_mrcp_stats);
  }
}

TEST(JournalCodecs, InvocationRecordRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    expect_fixpoint(rnd_invocation(rng), encode_invocation_record,
                    decode_invocation_record);
  }
}

TEST(JournalCodecs, LedgerRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    DegradationLedger ledger;
    for (std::uint64_t r = rng() % 8; r > 0; --r) {
      ledger.record(rnd_invocation(rng));
    }
    expect_fixpoint(ledger, encode_ledger, decode_ledger);
    // The decoded ledger replays record(), so the aggregate counters
    // must match too, not just the record list.
    io::Encoder enc;
    encode_ledger(enc, ledger);
    io::Decoder dec(enc.str());
    const DegradationLedger back = decode_ledger(dec);
    ASSERT_EQ(back.counts().invocations(), ledger.counts().invocations());
    ASSERT_EQ(back.counts().solve_attempts, ledger.counts().solve_attempts);
  }
}

// ---------------------------------------------------------------------------
// Journal events.
// ---------------------------------------------------------------------------

/// A random event of a random type, returned as its encoded payload.
std::string rnd_event_payload(Rng& rng) {
  switch (rng() % 7) {
    case 0:
      return encode_submit_event(rnd_job(rng), rnd_ticks(rng));
    case 1:
      return encode_release_event(rnd_i32(rng), rnd_ticks(rng));
    case 2:
      return encode_completion_event(rnd_i32(rng), rnd_ticks(rng));
    case 3:
      return encode_resource_down_event(rnd_i32(rng), rnd_ticks(rng));
    case 4:
      return encode_resource_up_event(rnd_i32(rng), rnd_ticks(rng));
    case 5:
      return encode_plan_event(rnd_plan(rng));
    default: {
      std::set<JobId> parked;
      for (std::uint64_t i = rng() % 6; i > 0; --i) {
        parked.insert(rnd_i32(rng));
      }
      return encode_park_retry_event(rnd_ticks(rng), parked);
    }
  }
}

/// Re-encode a decoded event through the same builder that produced it.
std::string reencode(const JournalEvent& event) {
  switch (event.type) {
    case JournalEventType::kSubmit:
      return encode_submit_event(event.job, event.time);
    case JournalEventType::kRelease:
      return encode_release_event(event.job_id, event.time);
    case JournalEventType::kCompletion:
      return encode_completion_event(event.job_id, event.time);
    case JournalEventType::kResourceDown:
      return encode_resource_down_event(event.resource, event.time);
    case JournalEventType::kResourceUp:
      return encode_resource_up_event(event.resource, event.time);
    case JournalEventType::kPlanPublished:
      return encode_plan_event(event.plan);
    case JournalEventType::kParkRetry:
      return encode_park_retry_event(
          event.time,
          std::set<JobId>(event.parked.begin(), event.parked.end()));
  }
  return {};
}

TEST(JournalEvents, AllTypesRoundTrip) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::string payload = rnd_event_payload(rng);
    JournalEvent event;
    std::string error;
    ASSERT_TRUE(decode_journal_event(payload, &event, &error)) << error;
    ASSERT_EQ(reencode(event), payload);
  }
}

TEST(JournalEvents, EveryTruncationIsRejectedWithOffset) {
  // Chop one instance of every event type at every byte: all proper
  // prefixes must be rejected, and the error must carry a byte offset.
  Rng rng(10);
  for (int variant = 0; variant < 14; ++variant) {
    const std::string payload = rnd_event_payload(rng);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      JournalEvent event;
      std::string error;
      ASSERT_FALSE(
          decode_journal_event(payload.substr(0, cut), &event, &error))
          << "cut=" << cut;
      ASSERT_NE(error.find("byte"), std::string::npos) << error;
    }
  }
}

TEST(JournalEvents, UnknownTypeAndVersionRejected) {
  const std::string payload = encode_release_event(7, Time{0});
  JournalEvent event;
  std::string error;

  std::string bad_type = payload;
  bad_type[0] = '\x00';
  EXPECT_FALSE(decode_journal_event(bad_type, &event, &error));
  EXPECT_NE(error.find("unknown journal event type"), std::string::npos)
      << error;
  bad_type[0] = '\x63';
  EXPECT_FALSE(decode_journal_event(bad_type, &event, &error));

  std::string bad_version = payload;
  bad_version[1] = '\x7f';
  EXPECT_FALSE(decode_journal_event(bad_version, &event, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  std::string trailing = payload + "x";
  EXPECT_FALSE(decode_journal_event(trailing, &event, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(JournalEvents, RandomBitFlipsNeverCrashDecode) {
  // Totality under hostile input: a flipped payload either decodes (the
  // flip landed on a don't-care or produced another valid encoding) or
  // is rejected with a located error — it never aborts or misbehaves
  // (the ASan crash-soak job runs this too).
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    std::string payload = rnd_event_payload(rng);
    const std::size_t byte = rng() % payload.size();
    payload[byte] ^= static_cast<char>(1 << (rng() % 8));
    JournalEvent event;
    std::string error;
    if (!decode_journal_event(payload, &event, &error)) {
      ASSERT_FALSE(error.empty());
      ASSERT_NE(error.find("byte"), std::string::npos) << error;
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot records.
// ---------------------------------------------------------------------------

TEST(SnapshotRecords, RoundTripSeeded) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    SnapshotRecord snapshot;
    snapshot.journal_cursor = rng();
    snapshot.state.assign(rng() % 200, '\0');
    for (char& c : snapshot.state) c = static_cast<char>(rng());
    const std::string payload = encode_snapshot_record(snapshot);
    SnapshotRecord back;
    std::string error;
    ASSERT_TRUE(decode_snapshot_record(payload, &back, &error)) << error;
    ASSERT_EQ(back.journal_cursor, snapshot.journal_cursor);
    ASSERT_EQ(back.state, snapshot.state);
    // Truncations of this payload are rejected too.
    const std::size_t cut = rng() % payload.size();
    EXPECT_FALSE(decode_snapshot_record(payload.substr(0, cut), &back, &error));
  }
}

TEST(SnapshotRecords, TrailingBytesRejected) {
  SnapshotRecord snapshot;
  snapshot.journal_cursor = 3;
  snapshot.state = "abc";
  std::string payload = encode_snapshot_record(snapshot) + "y";
  SnapshotRecord back;
  std::string error;
  EXPECT_FALSE(decode_snapshot_record(payload, &back, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(SnapshotRecords, ChooseSnapshotPicksNewestCoveredCursor) {
  std::vector<std::string> payloads;
  for (const std::uint64_t cursor : {2u, 5u, 9u}) {
    SnapshotRecord s;
    s.journal_cursor = cursor;
    s.state = "state-" + std::to_string(cursor);
    payloads.push_back(encode_snapshot_record(s));
  }
  // An undecodable entry (torn snapshot write) is skipped, not fatal.
  payloads.insert(payloads.begin() + 1, "garbage");

  const auto all = choose_snapshot(payloads, 100);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->journal_cursor, 9u);
  const auto mid = choose_snapshot(payloads, 8);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->journal_cursor, 5u);
  EXPECT_EQ(mid->state, "state-5");
  EXPECT_FALSE(choose_snapshot(payloads, 1).has_value());
  EXPECT_FALSE(choose_snapshot({}, 100).has_value());
}

// ---------------------------------------------------------------------------
// The Journal class: resume verification and crash injection.
// ---------------------------------------------------------------------------

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Journal, ResumeVerifiesThenGoesLive) {
  const std::string path = temp_path("mrcp_journal_resume.journal");
  const std::string a = "record-a";
  const std::string b = "record-b";
  ASSERT_TRUE(io::write_text_file(path, io::frame_record(a)));

  Journal journal;
  std::string error;
  ASSERT_TRUE(journal.open_resume(path, io::frame_record(a).size(), {a},
                                  /*base_records=*/5, &error))
      << error;
  EXPECT_EQ(journal.records_appended(), 5u);
  EXPECT_EQ(journal.verify_pending(), 1u);
  // First append re-emits the on-disk record: verified, not rewritten.
  EXPECT_TRUE(journal.append(a));
  EXPECT_EQ(journal.verify_pending(), 0u);
  // Second append is live and lands in the file.
  EXPECT_TRUE(journal.append(b));
  EXPECT_EQ(journal.records_appended(), 7u);

  const io::FramedData data = io::read_framed_file(path);
  ASSERT_EQ(data.records.size(), 2u);
  EXPECT_EQ(data.records[0], a);
  EXPECT_EQ(data.records[1], b);
  std::remove(path.c_str());
}

TEST(Journal, ResumeDivergenceLatchesError) {
  const std::string path = temp_path("mrcp_journal_diverge.journal");
  ASSERT_TRUE(io::write_text_file(path, io::frame_record("expected")));

  Journal journal;
  std::string error;
  ASSERT_TRUE(journal.open_resume(path, io::frame_record("expected").size(),
                                  {"expected"}, 0, &error));
  EXPECT_FALSE(journal.append("something-else"));
  EXPECT_FALSE(journal.ok());
  EXPECT_NE(journal.error().find("resume divergence"), std::string::npos)
      << journal.error();
  // Latched: later appends fail too, nothing reaches the file.
  EXPECT_FALSE(journal.append("expected"));
  std::remove(path.c_str());
}

TEST(Journal, CrashInjectionPersistsExactlyN) {
  const std::string path = temp_path("mrcp_journal_crash.journal");
  Journal journal;
  std::string error;
  ASSERT_TRUE(journal.open(path, &error)) << error;
  journal.set_crash_after(2);
  EXPECT_TRUE(journal.append("one"));
  EXPECT_FALSE(journal.crashed());
  EXPECT_TRUE(journal.append("two"));
  EXPECT_FALSE(journal.crashed());
  // The third append is silently dropped — a dying process gets no
  // error either — and the crash flag trips for the driver to notice.
  EXPECT_TRUE(journal.append("three"));
  EXPECT_TRUE(journal.crashed());
  EXPECT_EQ(journal.records_appended(), 2u);

  const io::FramedData data = io::read_framed_file(path);
  ASSERT_EQ(data.records.size(), 2u);
  EXPECT_EQ(data.records[1], "two");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrcp
