#include "core/model_builder.h"

#include <gtest/gtest.h>

namespace mrcp {
namespace {

LiveTask live_task(int index, TaskType type, Time exec, bool started,
                   ResourceId pinned, Time started_at) {
  LiveTask t;
  t.task_index = index;
  t.type = type;
  t.exec_time = exec;
  t.started = started;
  t.resource = pinned;
  t.start = started_at;
  return t;
}

std::vector<LiveJob> two_live_jobs() {
  std::vector<LiveJob> jobs(2);
  jobs[0].id = 10;
  jobs[0].effective_earliest_start = Time{100};
  jobs[0].deadline = Time{500};
  jobs[0].tasks = {
      live_task(0, TaskType::kMap, Time{30}, false, kNoResource, kNoTime),
      live_task(1, TaskType::kMap, Time{40}, true, 2, Time{90}),  // running on r2
      live_task(2, TaskType::kReduce, Time{50}, false, kNoResource, kNoTime),
  };
  jobs[1].id = 11;
  jobs[1].effective_earliest_start = Time{120};
  jobs[1].deadline = Time{900};
  jobs[1].tasks = {
      live_task(0, TaskType::kMap, Time{25}, false, kNoResource, kNoTime),
  };
  return jobs;
}

TEST(ModelBuilder, DirectModelMirrorsCluster) {
  const Cluster cluster = Cluster::homogeneous(4, 2, 3);
  const BuiltModel built = build_direct_model(cluster, two_live_jobs());
  EXPECT_FALSE(built.combined);
  ASSERT_EQ(built.model.num_resources(), 4u);
  EXPECT_EQ(built.model.resource(0).map_capacity, 2);
  EXPECT_EQ(built.model.resource(0).reduce_capacity, 3);
  EXPECT_EQ(built.model.num_jobs(), 2u);
  EXPECT_EQ(built.model.num_tasks(), 4u);
  EXPECT_EQ(built.model.validate(), "");
}

TEST(ModelBuilder, CombinedModelSumsCapacity) {
  const Cluster cluster = Cluster::homogeneous(4, 2, 3);
  const BuiltModel built = build_combined_model(cluster, two_live_jobs());
  EXPECT_TRUE(built.combined);
  ASSERT_EQ(built.model.num_resources(), 1u);
  EXPECT_EQ(built.model.resource(0).map_capacity, 8);
  EXPECT_EQ(built.model.resource(0).reduce_capacity, 12);
  EXPECT_EQ(built.model.validate(), "");
}

TEST(ModelBuilder, TaskRefsRoundTrip) {
  const Cluster cluster = Cluster::homogeneous(4, 1, 1);
  const BuiltModel built = build_combined_model(cluster, two_live_jobs());
  ASSERT_EQ(built.task_refs.size(), 4u);
  EXPECT_EQ(built.task_refs[0], std::make_pair(JobId{10}, 0));
  EXPECT_EQ(built.task_refs[1], std::make_pair(JobId{10}, 1));
  EXPECT_EQ(built.task_refs[2], std::make_pair(JobId{10}, 2));
  EXPECT_EQ(built.task_refs[3], std::make_pair(JobId{11}, 0));
  ASSERT_EQ(built.job_refs.size(), 2u);
  EXPECT_EQ(built.job_refs[0], 10);
  EXPECT_EQ(built.job_refs[1], 11);
}

TEST(ModelBuilder, StartedTaskPinnedInDirectModel) {
  const Cluster cluster = Cluster::homogeneous(4, 2, 3);
  const BuiltModel built = build_direct_model(cluster, two_live_jobs());
  const cp::CpTask& pinned = built.model.task(1);
  EXPECT_TRUE(pinned.pinned);
  EXPECT_EQ(pinned.pinned_resource, 2);
  EXPECT_EQ(pinned.pinned_start, Time{90});
}

TEST(ModelBuilder, StartedTaskPinnedToCombinedResource) {
  const Cluster cluster = Cluster::homogeneous(4, 2, 3);
  const BuiltModel built = build_combined_model(cluster, two_live_jobs());
  const cp::CpTask& pinned = built.model.task(1);
  EXPECT_TRUE(pinned.pinned);
  EXPECT_EQ(pinned.pinned_resource, 0);  // the combined resource
  EXPECT_EQ(pinned.pinned_start, Time{90});
}

TEST(ModelBuilder, JobSlaCarriedThrough) {
  const Cluster cluster = Cluster::homogeneous(4, 1, 1);
  const BuiltModel built = build_direct_model(cluster, two_live_jobs());
  EXPECT_EQ(built.model.job(0).earliest_start, Time{100});
  EXPECT_EQ(built.model.job(0).deadline, Time{500});
  EXPECT_EQ(built.model.job(0).external_id, 10);
  EXPECT_EQ(built.model.job(1).earliest_start, Time{120});
}

TEST(ModelBuilder, PhaseStructurePreserved) {
  const Cluster cluster = Cluster::homogeneous(4, 1, 1);
  const BuiltModel built = build_direct_model(cluster, two_live_jobs());
  EXPECT_EQ(built.model.job(0).map_tasks.size(), 2u);
  EXPECT_EQ(built.model.job(0).reduce_tasks.size(), 1u);
  EXPECT_EQ(built.model.task(2).phase, cp::Phase::kReduce);
  EXPECT_EQ(built.model.task(2).duration, Time{50});
}

}  // namespace
}  // namespace mrcp
