// End-to-end tests of the graceful-degradation pipeline
// (docs/degraded_mode.md): the solver watchdog and SolveStatus, the
// escalation ladder and its ledger attribution, unplaceable-job parking,
// arrival backpressure, and the frozen-assignment demotion that keeps
// failure recovery sound in degraded epochs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/stopwatch.h"
#include "core/degradation.h"
#include "core/fallback_scheduler.h"
#include "core/mrcp_rm.h"
#include "cp/solver.h"
#include "sim/cluster_sim.h"

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

/// A model large enough that building the search root alone outlasts a
/// nanosecond-scale watchdog, so aborted solves are deterministic.
cp::Model big_model() {
  cp::Model m;
  m.add_resource(4, 4);
  for (int j = 0; j < 6; ++j) {
    const cp::CpJobIndex cj = m.add_job(Time{0}, Time{500 + 100 * j}, j);
    for (int t = 0; t < 8; ++t) m.add_task(cj, cp::Phase::kMap, Time{50});
    for (int t = 0; t < 2; ++t) m.add_task(cj, cp::Phase::kReduce, Time{30});
  }
  return m;
}

MrcpConfig degraded_config() {
  MrcpConfig cfg;
  cfg.validate_plans = true;
  cfg.solve.time_limit_s = 1e-9;  // watchdog expires before any descent
  cfg.solve.seed = 1;
  return cfg;
}

// ---- SolveStatus and the hard watchdog ----

TEST(SolveStatus, Names) {
  EXPECT_STREQ(cp::solve_status_name(cp::SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(cp::solve_status_name(cp::SolveStatus::kFeasible), "feasible");
  EXPECT_STREQ(cp::solve_status_name(cp::SolveStatus::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(cp::solve_status_name(cp::SolveStatus::kInfeasible),
               "infeasible");
}

TEST(SolveStatus, UnconstrainedSolveReportsOptimalAndWallClock) {
  cp::Model m;
  m.add_resource(1, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{500}, 0);
  m.add_task(j, cp::Phase::kMap, Time{50});
  cp::SolveParams params;
  params.time_limit_s = 5.0;
  const cp::SolveResult r = cp::solve(m, params);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(r.status, cp::SolveStatus::kOptimal);
  EXPECT_FALSE(r.stats.aborted);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_EQ(r.wall_seconds, r.stats.solve_seconds);
}

TEST(SolveStatus, ExpiredWatchdogYieldsBudgetExhaustedNoSolution) {
  const cp::Model m = big_model();
  cp::SolveParams params;
  params.time_limit_s = 1e-9;
  const Deadline deadline(0.0);  // already expired
  params.hard_deadline = &deadline;
  const cp::SolveResult r = cp::solve(m, params);
  EXPECT_FALSE(r.best.valid);
  EXPECT_EQ(r.status, cp::SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(r.stats.aborted);
  EXPECT_EQ(r.stats.solutions, 0);
}

TEST(SolveStatus, SeededSolveUnderExpiredWatchdogReturnsSeedAsFeasible) {
  // The parachute semantics of the retry rungs: an aborted-but-seeded
  // solve hands the warm start back (valid, kFeasible) and reports zero
  // solutions of its own — which is how the ladder tells a genuine
  // retry success from an echo of the EDF incumbent. The deadlines are
  // deliberately unmeetable (2400 ticks of map work on 4 slots): a seed
  // with zero late jobs would be proved optimal by bound, and rightly
  // reported as kOptimal even when the search itself never ran.
  cp::Model m;
  m.add_resource(4, 4);
  for (int j = 0; j < 6; ++j) {
    const cp::CpJobIndex cj = m.add_job(Time{0}, Time{150 + 10 * j}, j);
    for (int t = 0; t < 8; ++t) m.add_task(cj, cp::Phase::kMap, Time{50});
    for (int t = 0; t < 2; ++t) m.add_task(cj, cp::Phase::kReduce, Time{30});
  }
  const cp::Solution seed = fallback_schedule(m);
  ASSERT_TRUE(seed.valid);
  ASSERT_GT(seed.num_late, 0);  // premise: the seed is not optimal-by-bound
  cp::SolveParams params;
  params.time_limit_s = 1e-9;
  const Deadline deadline(0.0);
  params.hard_deadline = &deadline;
  const cp::SolveResult r = cp::solve(m, params, &seed);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(r.status, cp::SolveStatus::kFeasible);
  EXPECT_EQ(r.stats.solutions, 0);
  EXPECT_EQ(r.best.num_late, seed.num_late);
}

// ---- Escalation ladder + ledger attribution ----

TEST(DegradedMode, TinyBudgetFallsBackAndLedgerAttributes) {
  MrcpConfig cfg = degraded_config();
  cfg.max_solve_retries = 0;  // primary -> fallback directly
  cfg.backpressure_hold = Time{1'000};
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), cfg);

  std::vector<Time> maps(10, Time{50});
  rm.submit(make_job(0, Time{0}, Time{0}, Time{2'000}, maps, {Time{30}, Time{30}}), Time{0});
  rm.submit(make_job(1, Time{0}, Time{0}, Time{2'500}, maps, {Time{30}, Time{30}}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  EXPECT_FALSE(p1.tasks.empty());

  ASSERT_EQ(rm.ledger().records().size(), 1u);
  const InvocationRecord& rec = rm.ledger().records()[0];
  EXPECT_EQ(rec.outcome, InvocationOutcome::kFallback);
  EXPECT_EQ(rec.attempts, 1);
  EXPECT_EQ(rec.last_status, cp::SolveStatus::kBudgetExhausted);
  EXPECT_EQ(rec.epoch, p1.epoch);
  EXPECT_GT(rec.live_tasks, 0u);
  EXPECT_EQ(rm.ledger().counts().fallback, 1u);
  EXPECT_EQ(rm.stats().fallback_plans, 1u);

  // Unchanged live set while degraded: the next invocation republishes
  // instead of re-solving.
  rm.reschedule(Time{1});
  ASSERT_EQ(rm.ledger().records().size(), 2u);
  EXPECT_EQ(rm.ledger().records()[1].outcome, InvocationOutcome::kSkipped);
  EXPECT_EQ(rm.ledger().records()[1].attempts, 0);

  // Arrivals during a degraded streak are backpressure-deferred.
  rm.submit(make_job(2, Time{2}, Time{2}, Time{3'000}, {Time{50}}, {}), Time{2});
  EXPECT_EQ(rm.stats().jobs_backpressured, 1u);
  EXPECT_EQ(rm.degradation_counts().jobs_backpressured, 1u);
  EXPECT_EQ(rm.next_deferred_release(), Time{2} + cfg.backpressure_hold);

  // At the hold's expiry the deferred job joins a full (dirty) pass.
  rm.reschedule(Time{2} + cfg.backpressure_hold);
  ASSERT_EQ(rm.ledger().records().size(), 3u);
  EXPECT_EQ(rm.ledger().records()[2].outcome, InvocationOutcome::kFallback);

  // Far in the future everything has completed: idle invocation, and
  // every invocation is attributed to exactly one outcome.
  rm.reschedule(Time{10'000'000});
  const DegradationCounts& counts = rm.ledger().counts();
  EXPECT_EQ(counts.idle, 1u);
  EXPECT_EQ(counts.invocations(), rm.stats().invocations);
  EXPECT_EQ(counts.invocations(), rm.ledger().records().size());
  EXPECT_EQ(rm.stats().jobs_completed, 3u);
}

TEST(DegradedMode, RetryRungsAreAttemptedBeforeFallback) {
  MrcpConfig cfg = degraded_config();
  cfg.max_solve_retries = 2;
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), cfg);
  std::vector<Time> maps(10, Time{50});
  rm.submit(make_job(0, Time{0}, Time{0}, Time{2'000}, maps, {Time{30}, Time{30}}), Time{0});
  rm.reschedule(Time{0});
  ASSERT_EQ(rm.ledger().records().size(), 1u);
  const InvocationRecord& rec = rm.ledger().records()[0];
  // Degraded either way; if the invocation deadline had room for rungs,
  // they were counted as attempts on top of the primary solve.
  EXPECT_TRUE(rec.outcome == InvocationOutcome::kFallback ||
              rec.outcome == InvocationOutcome::kCpRetry);
  EXPECT_GE(rec.attempts, 1);
  EXPECT_LE(rec.attempts, 1 + cfg.max_solve_retries);
  EXPECT_EQ(rm.stats().solve_attempts, static_cast<std::uint64_t>(rec.attempts));
}

TEST(DegradedModeDeathTest, FallbackDisabledRestoresFatalBehaviour) {
  MrcpConfig cfg = degraded_config();
  cfg.fallback_enabled = false;
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), cfg);
  std::vector<Time> maps(10, Time{50});
  rm.submit(make_job(0, Time{0}, Time{0}, Time{2'000}, maps, {Time{30}, Time{30}}), Time{0});
  EXPECT_DEATH(rm.reschedule(Time{0}), "solver returned no solution");
}

// ---- Burst workload through the full simulator ----

TEST(DegradedMode, BurstWorkloadWithTinyBudgetSimulatesToCompletion) {
  std::vector<Job> jobs;
  std::vector<Time> maps(8, Time{30'000});
  for (int i = 0; i < 12; ++i) {
    const Time arrival{i};
    jobs.push_back(make_job(i, arrival, arrival, Time{2'000'000 + 50'000 * i},
                            maps, {Time{20'000}, Time{20'000}}));
  }
  const Workload w = make_workload(std::move(jobs), 2, 2, 2);

  MrcpConfig cfg;
  cfg.solve.time_limit_s = 1e-9;
  cfg.validate_plans = true;  // every published plan is re-validated
  sim::SimOptions options;
  options.validate_execution = true;
  // simulate_mrcp aborts internally on an unfinished job, an invalid
  // plan, or an invalid execution — reaching the assertions below means
  // the burst drained cleanly under a hopeless solver budget.
  const sim::SimMetrics metrics = sim::simulate_mrcp(w, cfg, options);

  EXPECT_EQ(metrics.records.size(), 12u);
  for (const sim::JobRecord& r : metrics.records) EXPECT_TRUE(r.completed());
  const DegradationCounts& d = metrics.degradation;
  EXPECT_GT(d.fallback, 0u);
  EXPECT_GT(d.degraded(), 0u);
  EXPECT_EQ(d.invocations(), metrics.rm_invocations);
  EXPECT_GT(d.jobs_backpressured, 0u);
}

// ---- Parking when no resource can host the work ----

TEST(DegradedMode, AllResourcesDownParksAndRecovers) {
  MrcpConfig cfg;
  cfg.validate_plans = true;
  cfg.solve.time_limit_s = 2.0;
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100'000}, {Time{100}}, {Time{50}}), Time{0});
  rm.reschedule(Time{0});

  // Pre-degradation this aborted ("every resource is down"); now the
  // work is parked until a repair.
  rm.handle_resource_down(0, Time{10});
  const Plan& parked = rm.reschedule(Time{10});
  EXPECT_TRUE(parked.tasks.empty());
  EXPECT_EQ(parked.parked_tasks, 2u);
  EXPECT_EQ(rm.ledger().records().back().outcome, InvocationOutcome::kParked);
  EXPECT_EQ(rm.ledger().records().back().parked_jobs, 1u);
  EXPECT_GE(rm.stats().jobs_parked, 1u);
  // Parked work retries on a timer even without a repair event.
  EXPECT_EQ(rm.next_deferred_release(), Time{10} + cfg.park_retry_delay);

  rm.handle_resource_up(0, Time{100});
  const Plan& repaired = rm.reschedule(Time{100});
  EXPECT_EQ(repaired.parked_tasks, 0u);
  EXPECT_EQ(repaired.tasks.size(), 2u);
  EXPECT_EQ(rm.ledger().records().back().outcome,
            InvocationOutcome::kCpPrimary);

  rm.reschedule(Time{1'000'000});
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
}

// ---- Frozen assignments must not outlive their predecessors ----

TEST(DegradedMode, FailureDemotesFrozenReduceWhoseMapWasKilled) {
  // r0 is map-only, so the reduce always lands on r1 and survives the
  // r0 failure with its (now stale) planned start. The frozen-scope
  // re-collection must demote it back to free rather than pin a reduce
  // that would start before the killed map's re-run completes.
  Cluster c;
  c.add_resource(1, 0);
  c.add_resource(1, 1);
  MrcpConfig cfg;
  cfg.validate_plans = true;  // aborts on a precedence-violating plan
  cfg.solve.time_limit_s = 2.0;
  cfg.replan_scope = ReplanScope::kNewJobsOnly;
  MrcpRm rm(c, cfg);

  // Deadline forces the two maps in parallel across r0/r1.
  rm.submit(make_job(0, Time{0}, Time{0}, Time{160}, {Time{100}, Time{100}}, {Time{50}}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  bool map_on_r0 = false;
  for (const PlannedTask& pt : p1.tasks) {
    map_on_r0 |= pt.type == TaskType::kMap && pt.resource == 0;
  }
  ASSERT_TRUE(map_on_r0);

  rm.handle_resource_down(0, Time{50});
  const Plan& p2 = rm.reschedule(Time{50});
  Time latest_map_end;
  const PlannedTask* reduce = nullptr;
  for (const PlannedTask& pt : p2.tasks) {
    EXPECT_NE(pt.resource, 0);  // nothing resurrects onto the down node
    if (pt.type == TaskType::kMap) {
      latest_map_end = std::max(latest_map_end, pt.end);
    } else {
      reduce = &pt;
    }
  }
  ASSERT_NE(reduce, nullptr);
  // Killed map re-runs after r1's own map: reduce starts at 200, not at
  // its stale planned 100.
  EXPECT_GE(reduce->start, latest_map_end);
  EXPECT_GE(reduce->start, Time{200});
}

TEST(DegradedMode, MidEpochFailureDuringFallbackEpochStaysValid) {
  // Fallback-produced plan (tiny budget), then a failure mid-epoch: the
  // recovery pass — retry rungs included, which freeze surviving
  // assignments — must never resurrect assignments of the down resource
  // or schedule a reduce before its maps. validate_plans makes any such
  // violation fatal, so completing the run is the assertion.
  MrcpConfig cfg = degraded_config();
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), cfg);
  std::vector<Time> maps(6, Time{100});
  rm.submit(make_job(0, Time{0}, Time{0}, Time{5'000}, maps, {Time{50}}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  EXPECT_EQ(rm.ledger().records().back().outcome, InvocationOutcome::kFallback);
  EXPECT_FALSE(p1.tasks.empty());

  rm.handle_resource_down(0, Time{150});
  const Plan& p2 = rm.reschedule(Time{150});
  for (const PlannedTask& pt : p2.tasks) {
    if (!pt.started) {
      EXPECT_NE(pt.resource, 0);
    }
  }
  rm.handle_resource_up(0, Time{400});
  rm.reschedule(Time{400});
  rm.reschedule(Time{1'000'000});
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
}

// ---- Backoff growth clamps (saturating Ticks arithmetic) ----

TEST(DegradedMode, BackpressureHoldStreakIsCappedAtEight) {
  // Twelve consecutive degraded invocations, then an arrival: the hold
  // must scale with min(streak, 8), not the raw streak — unbounded
  // doubling would defer a burst past the simulation horizon.
  MrcpConfig cfg = degraded_config();
  cfg.backpressure_hold = Time{1000};
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{10'000'000}, {Time{500'000}},
                     {Time{100'000}}),
            Time{0});
  rm.reschedule(Time{0});  // tiny budget: fallback, streak = 1
  for (int i = 1; i <= 11; ++i) {
    // Alternate fault events so every invocation is dirty (a clean one
    // would take the backpressure skip and leave the streak unchanged).
    if (i % 2 == 1) {
      rm.handle_resource_down(1, Time{i});
    } else {
      rm.handle_resource_up(1, Time{i});
    }
    rm.reschedule(Time{i});
  }
  // Streak is now 12; the hold still folds at the cap: 8 * 1000 ticks.
  rm.submit(make_job(1, Time{100}, Time{100}, Time{10'000'000}, {Time{1000}},
                     {}),
            Time{100});
  EXPECT_EQ(rm.next_deferred_release(), Time{100} + Time{8000});
}

TEST(DegradedMode, BackpressureHoldSaturatesAtTheHorizon) {
  // An extreme configured hold clamps the release time to kMaxTime
  // instead of wrapping into the past (which would instantly re-release
  // the burst the hold was meant to absorb — or worse, UB).
  MrcpConfig cfg = degraded_config();
  cfg.backpressure_hold = kMaxTime;
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{10'000'000}, {Time{500'000}},
                     {}),
            Time{0});
  rm.reschedule(Time{0});  // streak = 1
  rm.submit(make_job(1, Time{5}, Time{5}, Time{10'000'000}, {Time{1000}}, {}),
            Time{5});
  EXPECT_EQ(rm.next_deferred_release(), kMaxTime);
}

TEST(DegradedMode, ParkRetrySaturatesAtTheHorizon) {
  // park_retry_delay near the horizon pins the retry wakeup at kMaxTime
  // — far future, but still ordered after `now`, so the wakeup neither
  // wraps negative nor fires immediately in a busy loop.
  MrcpConfig cfg;
  cfg.validate_plans = true;
  cfg.solve.time_limit_s = 2.0;
  cfg.solve.seed = 1;
  cfg.park_retry_delay = kMaxTime;
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100'000}, {Time{100}}, {}),
            Time{0});
  rm.handle_resource_down(0, Time{10});
  const Plan& parked = rm.reschedule(Time{10});
  EXPECT_EQ(parked.parked_tasks, 1u);
  EXPECT_EQ(rm.next_deferred_release(), kMaxTime);
  EXPECT_GT(rm.next_deferred_release(), Time{10});
}

TEST(DegradedMode, ExtremeRetryCountDoesNotOverflowTheBudget) {
  // max_solve_retries = 64 would be UB with a naive `1 << retry` budget
  // doubling; the ldexp fold (exponent capped at 40) must survive it.
  // The UBSan CI job turns any reintroduced shift overflow fatal here.
  MrcpConfig cfg = degraded_config();
  cfg.max_solve_retries = 64;
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{50'000}, {Time{100}, Time{100}},
                     {Time{50}}),
            Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  EXPECT_FALSE(plan.tasks.empty());
  const InvocationRecord& rec = rm.ledger().records().back();
  EXPECT_NE(rec.outcome, InvocationOutcome::kCpPrimary);
  EXPECT_GE(rec.attempts, 1);
  rm.reschedule(Time{1'000'000});
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
}

}  // namespace
}  // namespace mrcp
