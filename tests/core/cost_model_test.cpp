#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/mrcp_rm.h"

namespace mrcp {
namespace {

using testutil::make_job;

TEST(CostModel, EmptyIntervalsCostNothing) {
  const CostBreakdown cost = intervals_cost({}, CostRates{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(cost.total(), 0.0);
  EXPECT_DOUBLE_EQ(cost.uptime_seconds, 0.0);
}

TEST(CostModel, BusySecondsPerPhase) {
  // 2 map intervals of 10 s, 1 reduce of 5 s (times in ticks = ms).
  const std::vector<BusyInterval> intervals = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {1, TaskType::kMap, Time{0}, Time{10000}},
      {0, TaskType::kReduce, Time{10000}, Time{15000}},
  };
  const CostBreakdown cost = intervals_cost(intervals, CostRates{2.0, 3.0, 0.0});
  EXPECT_DOUBLE_EQ(cost.map_busy_seconds, 20.0);
  EXPECT_DOUBLE_EQ(cost.reduce_busy_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cost.map_busy_cost, 40.0);
  EXPECT_DOUBLE_EQ(cost.reduce_busy_cost, 15.0);
  EXPECT_DOUBLE_EQ(cost.total(), 55.0);
}

TEST(CostModel, UptimeIsLeaseWindowPerResource) {
  // Resource 0 busy [0,10s) and [20s,30s): lease window 30 s (gaps are
  // paid — the lease holds the machine).
  const std::vector<BusyInterval> intervals = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {0, TaskType::kMap, Time{20000}, Time{30000}},
      {1, TaskType::kReduce, Time{5000}, Time{8000}},
  };
  const CostBreakdown cost = intervals_cost(intervals, CostRates{0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(cost.uptime_seconds, 30.0 + 3.0);
  EXPECT_DOUBLE_EQ(cost.uptime_cost, 33.0);
}

TEST(CostModel, PackingOntoFewerResourcesIsCheaperOnUptime) {
  // Same busy time, spread vs packed.
  const std::vector<BusyInterval> spread = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {1, TaskType::kMap, Time{0}, Time{10000}},
  };
  const std::vector<BusyInterval> packed = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {0, TaskType::kMap, Time{10000}, Time{20000}},
  };
  const CostRates rates{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(intervals_cost(spread, rates).uptime_cost, 20.0);
  EXPECT_DOUBLE_EQ(intervals_cost(packed, rates).uptime_cost, 20.0);
  // ...uptime equal here; but with idle gaps the packed variant pays for
  // its single lease only:
  const std::vector<BusyInterval> sparse_two = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {1, TaskType::kMap, Time{30000}, Time{40000}},
  };
  const std::vector<BusyInterval> sparse_one = {
      {0, TaskType::kMap, Time{0}, Time{10000}},
      {0, TaskType::kMap, Time{30000}, Time{40000}},
  };
  EXPECT_DOUBLE_EQ(intervals_cost(sparse_two, rates).uptime_cost, 20.0);
  EXPECT_DOUBLE_EQ(intervals_cost(sparse_one, rates).uptime_cost, 40.0);
}

TEST(CostModel, PlanCostMatchesManualIntervals) {
  MrcpConfig cfg;
  cfg.solve.time_limit_s = 1.0;
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{10000}, Time{20000}}, {Time{5000}}), Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  const CostRates rates{1.0, 10.0, 0.1};
  const CostBreakdown cost = plan_cost(plan, rates);
  EXPECT_DOUBLE_EQ(cost.map_busy_seconds, 30.0);
  EXPECT_DOUBLE_EQ(cost.reduce_busy_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cost.map_busy_cost, 30.0);
  EXPECT_DOUBLE_EQ(cost.reduce_busy_cost, 50.0);
  EXPECT_GT(cost.uptime_cost, 0.0);
}

TEST(CostModel, ZeroRatesZeroCostButSecondsReported) {
  const std::vector<BusyInterval> intervals = {{0, TaskType::kMap, Time{0}, Time{1000}}};
  const CostBreakdown cost = intervals_cost(intervals, CostRates{});
  EXPECT_DOUBLE_EQ(cost.total(), 0.0);
  EXPECT_DOUBLE_EQ(cost.map_busy_seconds, 1.0);
}

}  // namespace
}  // namespace mrcp
