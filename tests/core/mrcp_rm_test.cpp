#include "core/mrcp_rm.h"

#include <gtest/gtest.h>

#include <map>

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

MrcpConfig test_config() {
  MrcpConfig c;
  c.validate_plans = true;
  c.solve.time_limit_s = 2.0;
  c.solve.seed = 1;
  return c;
}

const PlannedTask* find_task(const Plan& plan, JobId job, int task_index) {
  for (const PlannedTask& pt : plan.tasks) {
    if (pt.job == job && pt.task_index == task_index) return &pt;
  }
  return nullptr;
}

TEST(MrcpRm, SingleJobPlannedAtEarliestStart) {
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{200}}, {Time{300}}), Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  ASSERT_EQ(plan.tasks.size(), 3u);
  const PlannedTask* m0 = find_task(plan, 0, 0);
  const PlannedTask* m1 = find_task(plan, 0, 1);
  const PlannedTask* r0 = find_task(plan, 0, 2);
  ASSERT_NE(m0, nullptr);
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(m0->start, Time{0});
  EXPECT_EQ(m1->start, Time{0});
  EXPECT_GE(r0->start, Time{200});  // after the longest map
}

TEST(MrcpRm, EmptyRescheduleProducesEmptyPlan) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  const Plan& plan = rm.reschedule(Time{100});
  EXPECT_TRUE(plan.tasks.empty());
  EXPECT_EQ(plan.planned_at, Time{100});
}

TEST(MrcpRm, EpochIncrementsPerInvocation) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  const std::uint64_t e1 = rm.reschedule(Time{0}).epoch;
  const std::uint64_t e2 = rm.reschedule(Time{1}).epoch;
  EXPECT_EQ(e2, e1 + 1);
}

TEST(MrcpRm, StartedTaskIsPinnedAcrossReschedules) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{500}}, {}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  const PlannedTask* t1 = find_task(p1, 0, 0);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->start, Time{0});
  // A task planned to start at the invocation instant counts as started
  // (paper Table 2 line 7: start <= current time).
  EXPECT_TRUE(t1->started);

  // Re-plan mid-execution with a competing job: the running task must
  // stay exactly where it was.
  rm.submit(make_job(1, Time{100}, Time{100}, Time{100000}, {Time{50}}, {}), Time{100});
  const Plan& p2 = rm.reschedule(Time{100});
  const PlannedTask* t2 = find_task(p2, 0, 0);
  ASSERT_NE(t2, nullptr);
  EXPECT_TRUE(t2->started);
  EXPECT_EQ(t2->start, Time{0});
  EXPECT_EQ(t2->end, Time{500});
  // The new job waits for the single map slot.
  const PlannedTask* n = find_task(p2, 1, 0);
  ASSERT_NE(n, nullptr);
  EXPECT_GE(n->start, Time{500});
}

TEST(MrcpRm, CompletedTasksDroppedAndJobRemoved) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{500}}, {Time{300}}), Time{0});
  rm.reschedule(Time{0});
  EXPECT_EQ(rm.live_jobs(), 1u);
  // Map runs [0,500), reduce [500,800). At t=900 everything completed.
  const Plan& plan = rm.reschedule(Time{900});
  EXPECT_TRUE(plan.tasks.empty());
  EXPECT_EQ(rm.live_jobs(), 0u);
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
  EXPECT_EQ(rm.stats().jobs_completed_late, 0u);
}

TEST(MrcpRm, PartiallyCompletedJobKeepsRemainingTasks) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{500}}, {Time{300}}), Time{0});
  rm.reschedule(Time{0});
  // At t=600 the map is done, the reduce (500-800) is running.
  const Plan& plan = rm.reschedule(Time{600});
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].task_index, 1);
  EXPECT_TRUE(plan.tasks[0].started);
  EXPECT_EQ(plan.tasks[0].start, Time{500});
}

TEST(MrcpRm, LateJobCountedInStats) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  // Deadline impossible: 100 ticks for a 500-tick map.
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100}, {Time{500}}, {}), Time{0});
  rm.reschedule(Time{0});
  rm.reschedule(Time{1000});
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
  EXPECT_EQ(rm.stats().jobs_completed_late, 1u);
}

TEST(MrcpRm, EarliestStartClampedToNow) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  MrcpConfig cfg = test_config();
  cfg.defer_future_jobs = false;
  MrcpRm rm2(Cluster::homogeneous(1, 1, 1), cfg);
  // Job arrived earlier with s_j = 50; rescheduling at t=200 must not
  // schedule it in the past.
  rm2.submit(make_job(0, Time{0}, Time{50}, Time{100000}, {Time{10}}, {}), Time{0});
  const Plan& plan = rm2.reschedule(Time{200});
  const PlannedTask* t = find_task(plan, 0, 0);
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->start, Time{200});
}

TEST(MrcpRm, FutureEarliestStartRespected) {
  MrcpConfig cfg = test_config();
  cfg.defer_future_jobs = false;  // keep the job in the model immediately
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{5000}, Time{100000}, {Time{10}}, {}), Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  const PlannedTask* t = find_task(plan, 0, 0);
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->start, Time{5000});
}

TEST(MrcpRm, DeferralQueueHoldsFarFutureJobs) {
  MrcpConfig cfg = test_config();
  cfg.defer_future_jobs = true;
  cfg.deferral_window = Time{0};
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{5000}, Time{100000}, {Time{10}}, {}), Time{0});
  EXPECT_EQ(rm.next_deferred_release(), Time{5000});
  const Plan& p1 = rm.reschedule(Time{0});
  EXPECT_TRUE(p1.tasks.empty());  // deferred: not in the model yet
  const Plan& p2 = rm.reschedule(Time{5000});
  EXPECT_EQ(p2.tasks.size(), 1u);
  EXPECT_EQ(rm.next_deferred_release(), kNoTime);
}

TEST(MrcpRm, DeferralWindowReleasesEarly) {
  MrcpConfig cfg = test_config();
  cfg.deferral_window = Time{1000};
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{5000}, Time{100000}, {Time{10}}, {}), Time{0});
  EXPECT_EQ(rm.next_deferred_release(), Time{4000});
  const Plan& plan = rm.reschedule(Time{4000});
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_GE(plan.tasks[0].start, Time{5000});  // still honours s_j
}

TEST(MrcpRm, NewUrgentJobPreemptsPlannedButUnstartedWork) {
  // Job 0 (loose deadline) is planned first; before anything starts, an
  // urgent job 1 arrives at the same instant the plan was made. The RM
  // re-maps job 0's unstarted tasks behind job 1.
  MrcpConfig cfg = test_config();
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{500}}, {}), Time{0});
  rm.reschedule(Time{0});
  // Immediately after (same tick) job 1 with a tight deadline arrives.
  // Job 0's map has started at t=0 (start <= now), so it is pinned; this
  // test uses t shifted by the fact the map started. Instead check at a
  // *new* arrival after the first map would complete.
  rm.submit(make_job(1, Time{100}, Time{100}, Time{700}, {Time{400}}, {}), Time{100});
  const Plan& p = rm.reschedule(Time{100});
  const PlannedTask* t0 = find_task(p, 0, 0);
  const PlannedTask* t1 = find_task(p, 1, 0);
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  // Job 0's map started at 0 and is pinned; job 1 runs right after and
  // meets its deadline (500 + 400 = 900 > 700 -> job 1 is late; with a
  // single slot nothing better exists).
  EXPECT_TRUE(t0->started);
  EXPECT_EQ(t1->start, Time{500});
}

TEST(MrcpRm, DirectModeMatchesSeparationOnSmallCase) {
  MrcpConfig combined_cfg = test_config();
  combined_cfg.use_separation = true;
  MrcpConfig direct_cfg = test_config();
  direct_cfg.use_separation = false;

  const Job job = make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{200}, Time{150}}, {Time{300}});
  MrcpRm rm_a(Cluster::homogeneous(2, 2, 1), combined_cfg);
  MrcpRm rm_b(Cluster::homogeneous(2, 2, 1), direct_cfg);
  rm_a.submit(job, Time{0});
  rm_b.submit(job, Time{0});
  const Plan& pa = rm_a.reschedule(Time{0});
  const Plan& pb = rm_b.reschedule(Time{0});
  ASSERT_EQ(pa.tasks.size(), pb.tasks.size());
  // Both must produce a plan completing the job by max map end + reduce.
  Time end_a;
  Time end_b;
  for (const PlannedTask& t : pa.tasks) end_a = std::max(end_a, t.end);
  for (const PlannedTask& t : pb.tasks) end_b = std::max(end_b, t.end);
  EXPECT_EQ(end_a, end_b);
}

TEST(MrcpRm, StatsAccumulate) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{10}}, {}), Time{0});
  rm.reschedule(Time{0});
  EXPECT_EQ(rm.stats().invocations, 1u);
  EXPECT_EQ(rm.stats().jobs_submitted, 1u);
  EXPECT_GT(rm.stats().total_sched_seconds, 0.0);
  EXPECT_GE(rm.stats().max_live_tasks, 1u);
  EXPECT_GT(rm.stats().average_sched_seconds_per_job(), 0.0);
}

TEST(MrcpRm, NewJobsOnlyScopeFreezesPlannedTasks) {
  MrcpConfig cfg = test_config();
  cfg.replan_scope = ReplanScope::kNewJobsOnly;
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{500}, Time{600}, Time{700}}, {}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  std::map<int, std::pair<ResourceId, Time>> before;
  for (const PlannedTask& pt : p1.tasks) {
    if (pt.job == 0) before[pt.task_index] = {pt.resource, pt.start};
  }
  // An urgent job arrives; in frozen scope job 0's unstarted tasks keep
  // their placement exactly.
  rm.submit(make_job(1, Time{100}, Time{100}, Time{2000}, {Time{300}}, {}), Time{100});
  const Plan& p2 = rm.reschedule(Time{100});
  for (const PlannedTask& pt : p2.tasks) {
    if (pt.job != 0) continue;
    ASSERT_TRUE(before.count(pt.task_index));
    EXPECT_EQ(pt.resource, before[pt.task_index].first);
    EXPECT_EQ(pt.start, before[pt.task_index].second);
  }
}

TEST(MrcpRm, AllUnstartedScopeCanMovePlannedTasks) {
  // Same scenario under the Table 2 default: job 0's queued (unstarted)
  // third task may be displaced by the urgent arrival.
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{500}, Time{600}, Time{700}}, {}), Time{0});
  rm.reschedule(Time{0});
  rm.submit(make_job(1, Time{100}, Time{100}, Time{2000}, {Time{300}}, {}), Time{100});
  const Plan& p2 = rm.reschedule(Time{100});
  const PlannedTask* urgent = nullptr;
  for (const PlannedTask& pt : p2.tasks) {
    if (pt.job == 1) urgent = &pt;
  }
  ASSERT_NE(urgent, nullptr);
  // The urgent job should be scheduled at the earliest slot release
  // (t=500, when the first map ends), not behind job 0's queued work.
  EXPECT_LE(urgent->start, Time{500});
}

TEST(MrcpRm, RejectsDuplicateJobIds) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), test_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{10}}, {}), Time{0});
  EXPECT_DEATH(rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{10}}, {}), Time{0}),
               "duplicate job id");
}

}  // namespace
}  // namespace mrcp
