#include "core/plan.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

struct Fixture {
  Job job = make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{200}}, {Time{300}});
  Cluster cluster = Cluster::homogeneous(2, 1, 1);
  std::vector<const Job*> jobs_by_id{&job};

  Plan good_plan() const {
    Plan p;
    p.planned_at = Time{0};
    p.tasks = {
        {0, 0, TaskType::kMap, 0, Time{0}, Time{100}, false},
        {0, 1, TaskType::kMap, 1, Time{0}, Time{200}, false},
        {0, 2, TaskType::kReduce, 0, Time{200}, Time{500}, false},
    };
    return p;
  }
};

TEST(ValidatePlan, AcceptsGoodPlan) {
  Fixture f;
  EXPECT_EQ(validate_plan(f.good_plan(), f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, EmptyPlanIsValid) {
  Fixture f;
  Plan p;
  EXPECT_EQ(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesResourceOutOfRange) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[0].resource = 5;
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesWrongDuration) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[0].end = Time{150};  // task 0 takes 100 ticks
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesTypeMismatch) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[0].type = TaskType::kReduce;
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesCapacityOverload) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[1].resource = 0;  // both maps on the single-slot resource 0
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesReduceBeforeMaps) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[2].start = Time{150};  // map 1 ends at 200
  p.tasks[2].end = Time{450};
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesEarlyStartForUnstartedMap) {
  Job job = make_job(0, Time{0}, Time{1000}, Time{10000}, {Time{100}}, {});
  Cluster cluster = Cluster::homogeneous(1, 1, 1);
  std::vector<const Job*> jobs_by_id{&job};
  Plan p;
  p.tasks = {{0, 0, TaskType::kMap, 0, Time{500}, Time{600}, false}};
  EXPECT_NE(validate_plan(p, cluster, jobs_by_id), "");
  // The same placement is fine when the task already started (it was
  // legal when planned; s_j clamping happened later).
  p.tasks[0].started = true;
  EXPECT_EQ(validate_plan(p, cluster, jobs_by_id), "");
}

TEST(ValidatePlan, CatchesUnknownJob) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[0].job = 7;
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, CatchesBadTaskIndex) {
  Fixture f;
  Plan p = f.good_plan();
  p.tasks[0].task_index = 9;
  EXPECT_NE(validate_plan(p, f.cluster, f.jobs_by_id), "");
}

TEST(ValidatePlan, ChecksWorkflowPrecedences) {
  Job job = make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{100}}, {});
  job.precedences = {{0, 1}};
  Cluster cluster = Cluster::homogeneous(2, 1, 1);
  std::vector<const Job*> jobs_by_id{&job};
  Plan p;
  p.tasks = {
      {0, 0, TaskType::kMap, 0, Time{0}, Time{100}, false},
      {0, 1, TaskType::kMap, 1, Time{50}, Time{150}, false},  // overlaps its pred
  };
  EXPECT_NE(validate_plan(p, cluster, jobs_by_id), "");
  p.tasks[1].start = Time{100};
  p.tasks[1].end = Time{200};
  EXPECT_EQ(validate_plan(p, cluster, jobs_by_id), "");
}

TEST(ValidatePlan, ChecksNetworkCapacity) {
  Job job = make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{100}}, {});
  for (Task& t : job.map_tasks) t.net_demand = 1;
  Cluster cluster = Cluster::homogeneous(1, 2, 1, /*net_capacity=*/1);
  std::vector<const Job*> jobs_by_id{&job};
  Plan p;
  p.tasks = {
      {0, 0, TaskType::kMap, 0, Time{0}, Time{100}, false},
      {0, 1, TaskType::kMap, 0, Time{0}, Time{100}, false},  // 2 link units on cap 1
  };
  EXPECT_NE(validate_plan(p, cluster, jobs_by_id), "");
  p.tasks[1].start = Time{100};
  p.tasks[1].end = Time{200};
  EXPECT_EQ(validate_plan(p, cluster, jobs_by_id), "");
}

TEST(PlanToString, MentionsEpochAndCount) {
  Plan p;
  p.epoch = 7;
  p.tasks.resize(3);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("epoch=7"), std::string::npos);
  EXPECT_NE(s.find("tasks=3"), std::string::npos);
}

}  // namespace
}  // namespace mrcp
