// Incremental rescheduling (ReplanScope::kDirtyOnly, docs/incremental.md):
// dirty-set bookkeeping, the empty-dirty fast path, the persistent
// model/SearchRoot cache, warm starts, frozen-boundary soundness under
// faults, parked-work re-entry, and randomized differentials pitting the
// persistent-model path against scratch rebuilds for byte-identical
// plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/degradation.h"
#include "core/mrcp_rm.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

MrcpConfig incremental_config(bool reuse_cache = true) {
  MrcpConfig cfg;
  cfg.replan_scope = ReplanScope::kDirtyOnly;
  cfg.reuse_model_cache = reuse_cache;
  cfg.validate_plans = true;
  cfg.defer_future_jobs = false;
  cfg.solve.time_limit_s = 5.0;  // generous: no watchdog nondeterminism
  cfg.solve.improvement_fails = 200;
  cfg.solve.lns_iterations = 2;
  return cfg;
}

bool plans_equal(const Plan& a, const Plan& b) {
  if (a.tasks.size() != b.tasks.size()) return false;
  if (a.parked_tasks != b.parked_tasks) return false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const PlannedTask& x = a.tasks[i];
    const PlannedTask& y = b.tasks[i];
    if (x.job != y.job || x.task_index != y.task_index || x.type != y.type ||
        x.resource != y.resource || x.start != y.start || x.end != y.end ||
        x.started != y.started) {
      return false;
    }
  }
  return true;
}

/// The planned (resource, start) of one task, for frozen-boundary checks.
const PlannedTask* find_task(const Plan& plan, JobId job, int task_index) {
  for (const PlannedTask& pt : plan.tasks) {
    if (pt.job == job && pt.task_index == task_index) return &pt;
  }
  return nullptr;
}

// ---- Fast path and dirty-set bookkeeping ----

TEST(Incremental, EmptyDirtySetRepublishesWithoutSolving) {
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), incremental_config());
  rm.submit(make_job(0, Time{0}, Time{1'000}, Time{50'000}, {Time{100}, Time{100}}, {Time{80}}), Time{0});
  rm.submit(make_job(1, Time{0}, Time{1'000}, Time{60'000}, {Time{100}}, {Time{80}}), Time{0});
  const Plan p1 = rm.reschedule(Time{0});
  EXPECT_EQ(rm.ledger().records().back().outcome, InvocationOutcome::kCpPrimary);
  EXPECT_TRUE(rm.dirty_jobs().empty());

  // Nothing happened: the next invocation must not solve at all.
  const Plan& p2 = rm.reschedule(Time{10});
  const InvocationRecord& rec = rm.ledger().records().back();
  EXPECT_EQ(rec.outcome, InvocationOutcome::kSkipped);
  EXPECT_EQ(rec.attempts, 0);
  EXPECT_EQ(p2.epoch, p1.epoch + 1);
  EXPECT_TRUE(plans_equal(p1, p2));
  EXPECT_EQ(rm.stats().solve_attempts, 1u);

  rm.reschedule(Time{1'000'000});
  EXPECT_EQ(rm.stats().jobs_completed, 2u);
}

TEST(Incremental, ArrivalResolvesOnlyTheNewJobAgainstFrozenBoundary) {
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), incremental_config());
  rm.submit(make_job(0, Time{0}, Time{1'000}, Time{50'000}, {Time{100}, Time{100}}, {Time{80}}), Time{0});
  rm.submit(make_job(1, Time{0}, Time{1'000}, Time{60'000}, {Time{100}}, {Time{80}}), Time{0});
  const Plan p1 = rm.reschedule(Time{0});

  rm.submit(make_job(2, Time{10}, Time{1'000}, Time{70'000}, {Time{100}}, {Time{80}}), Time{10});
  EXPECT_EQ(rm.dirty_jobs().size(), 1u);
  EXPECT_EQ(*rm.dirty_jobs().begin(), 2);
  const Plan& p2 = rm.reschedule(Time{10});

  const InvocationRecord& rec = rm.ledger().records().back();
  EXPECT_EQ(rec.outcome, InvocationOutcome::kCpPrimary);
  EXPECT_EQ(rec.dirty_jobs, 1u);
  // Every task of jobs 0/1 starts in the future and stays frozen.
  EXPECT_EQ(rec.frozen_tasks, 5u);
  for (const PlannedTask& before : p1.tasks) {
    const PlannedTask* after = find_task(p2, before.job, before.task_index);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->resource, before.resource);
    EXPECT_EQ(after->start, before.start);
  }
  EXPECT_NE(find_task(p2, 2, 0), nullptr);
  EXPECT_EQ(rm.stats().dirty_promotions, 0u);
}

TEST(Incremental, RepeatedDirtyRegionHitsTheModelCacheAndWarmStarts) {
  MrcpRm rm(Cluster::homogeneous(2, 2, 2), incremental_config());
  rm.submit(make_job(0, Time{0}, Time{1'000}, Time{50'000}, {Time{100}, Time{100}}, {Time{80}}), Time{0});
  rm.submit(make_job(1, Time{0}, Time{1'000}, Time{60'000}, {Time{100}}, {Time{80}}), Time{0});
  const Plan p1 = rm.reschedule(Time{0});  // initial: everything dirty, cache miss

  rm.mark_dirty(0);
  const Plan p2 = rm.reschedule(Time{10});  // new fingerprint: miss
  EXPECT_FALSE(rm.ledger().records().back().model_cache_hit);

  rm.mark_dirty(0);
  const Plan& p3 = rm.reschedule(Time{20});  // same dirty region again: hit
  const InvocationRecord& rec = rm.ledger().records().back();
  EXPECT_TRUE(rec.model_cache_hit);
  EXPECT_EQ(rm.stats().model_cache_hits, 1u);
  EXPECT_EQ(rm.stats().model_cache_misses, 2u);
  EXPECT_GE(rm.stats().warm_starts_used, 1u);
  // Warm-started re-solves of an unchanged region keep the plan stable.
  EXPECT_TRUE(plans_equal(p2, p3));
  EXPECT_TRUE(plans_equal(p1, p3));
  EXPECT_EQ(rm.stats().dirty_promotions, 0u);
}

TEST(IncrementalDeathTest, MarkDirtyOfUnknownJobIsFatal) {
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), incremental_config());
  EXPECT_DEATH(rm.mark_dirty(7), "non-active job");
}

// ---- Frozen-boundary soundness under faults ----

TEST(Incremental, FaultDirtiesAffectedJobsAndReplansThemSoundly) {
  // r0 is map-only, so job 0's reduce lands on r1 and survives the r0
  // failure with a stale planned start. In kDirtyOnly mode the fault
  // dirties the whole job, so the reduce is re-solved — it must wait for
  // the killed map's re-run (the kNewJobsOnly demotion fixpoint's job,
  // handled here by per-job freezing).
  Cluster c;
  c.add_resource(1, 0);
  c.add_resource(1, 1);
  MrcpRm rm(c, incremental_config());
  rm.submit(make_job(0, Time{0}, Time{0}, Time{160}, {Time{100}, Time{100}}, {Time{50}}), Time{0});
  const Plan& p1 = rm.reschedule(Time{0});
  bool map_on_r0 = false;
  for (const PlannedTask& pt : p1.tasks) {
    map_on_r0 |= pt.type == TaskType::kMap && pt.resource == 0;
  }
  ASSERT_TRUE(map_on_r0);

  rm.handle_resource_down(0, Time{50});
  EXPECT_EQ(rm.dirty_jobs().count(0), 1u);
  const Plan& p2 = rm.reschedule(Time{50});
  Time latest_map_end;
  const PlannedTask* reduce = nullptr;
  for (const PlannedTask& pt : p2.tasks) {
    EXPECT_NE(pt.resource, 0);  // nothing resurrects onto the down node
    if (pt.type == TaskType::kMap) {
      latest_map_end = std::max(latest_map_end, pt.end);
    } else {
      reduce = &pt;
    }
  }
  ASSERT_NE(reduce, nullptr);
  EXPECT_GE(reduce->start, latest_map_end);
  EXPECT_GE(reduce->start, Time{200});
  EXPECT_EQ(rm.stats().dirty_promotions, 0u);
}

TEST(Incremental, ParkedJobRejoinsTheDirtySetWhenItsResourceRecovers) {
  MrcpConfig cfg = incremental_config();
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100'000}, {Time{100}}, {Time{50}}), Time{0});
  rm.reschedule(Time{0});

  rm.handle_resource_down(0, Time{10});
  const Plan& parked = rm.reschedule(Time{10});
  EXPECT_TRUE(parked.tasks.empty());
  EXPECT_EQ(parked.parked_tasks, 2u);
  EXPECT_EQ(rm.ledger().records().back().outcome, InvocationOutcome::kParked);
  // Parked work retries on a timer even without a repair event …
  EXPECT_EQ(rm.next_deferred_release(), Time{10} + cfg.park_retry_delay);

  // … and a retry while the resource is still down parks again instead
  // of taking the empty-dirty fast path (the parked fold keeps the job
  // in the dirty set every invocation).
  rm.reschedule(Time{10} + cfg.park_retry_delay);
  EXPECT_EQ(rm.ledger().records().back().outcome, InvocationOutcome::kParked);

  // The repair dirties the parked job; the next invocation re-solves it.
  rm.handle_resource_up(0, Time{100});
  EXPECT_EQ(rm.dirty_jobs().count(0), 1u);
  const Plan& repaired = rm.reschedule(Time{100});
  EXPECT_EQ(repaired.parked_tasks, 0u);
  EXPECT_EQ(repaired.tasks.size(), 2u);
  EXPECT_EQ(rm.ledger().records().back().outcome,
            InvocationOutcome::kCpPrimary);

  rm.reschedule(Time{1'000'000});
  EXPECT_EQ(rm.stats().jobs_completed, 1u);
  EXPECT_EQ(rm.stats().dirty_promotions, 0u);
}

// ---- Randomized differential: persistent model vs scratch rebuild ----

Job random_job(RandomStream& rng, JobId id, Time now) {
  const int maps = static_cast<int>(rng.uniform_int(1, 3));
  const int reduces = static_cast<int>(rng.uniform_int(0, 2));
  std::vector<Time> map_durs;
  std::vector<Time> reduce_durs;
  for (int i = 0; i < maps; ++i) map_durs.push_back(Time{rng.uniform_int(50, 400)});
  for (int i = 0; i < reduces; ++i) {
    reduce_durs.push_back(Time{rng.uniform_int(50, 300)});
  }
  const Time earliest = now + Time{rng.uniform_int(0, 300)};
  const Time deadline = earliest + Time{rng.uniform_int(500, 3'000)};
  return make_job(id, now, earliest, deadline, map_durs, reduce_durs);
}

/// Drives two RMs through an identical randomized event stream —
/// arrivals, failures, repairs, idle re-invocations — and requires
/// byte-identical published plans after every invocation. `a` keeps the
/// persistent model + SearchRoot; `b` rebuilds from scratch each epoch.
void run_differential(std::uint64_t seed) {
  RandomStream rng(seed, 7);
  const int m = static_cast<int>(rng.uniform_int(2, 3));
  const Cluster cluster = Cluster::homogeneous(m, 2, 2);
  MrcpRm a(cluster, incremental_config(/*reuse_cache=*/true));
  MrcpRm b(cluster, incremental_config(/*reuse_cache=*/false));

  Time t;
  JobId next_id = 0;
  std::vector<bool> down(static_cast<std::size_t>(m), false);
  auto submit_both = [&](const Job& job) {
    a.submit(job, t);
    b.submit(job, t);
  };
  auto reschedule_both = [&] {
    const Plan& pa = a.reschedule(t);
    const Plan& pb = b.reschedule(t);
    ASSERT_EQ(pa.epoch, pb.epoch) << "seed " << seed;
    ASSERT_TRUE(plans_equal(pa, pb)) << "seed " << seed << " at t=" << t;
    ASSERT_EQ(a.next_deferred_release(), b.next_deferred_release());
  };

  submit_both(random_job(rng, next_id++, t));
  submit_both(random_job(rng, next_id++, t));
  reschedule_both();

  for (int step = 0; step < 8; ++step) {
    t += Time{rng.uniform_int(1, 500)};
    switch (rng.uniform_int(0, 3)) {
      case 0:
        submit_both(random_job(rng, next_id++, t));
        break;
      case 1: {  // fail a random up resource
        std::vector<ResourceId> up;
        for (int r = 0; r < m; ++r) {
          if (!down[static_cast<std::size_t>(r)]) {
            up.push_back(static_cast<ResourceId>(r));
          }
        }
        if (up.empty()) break;
        const ResourceId r = up[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1))];
        down[static_cast<std::size_t>(r)] = true;
        a.handle_resource_down(r, t);
        b.handle_resource_down(r, t);
        break;
      }
      case 2: {  // repair a random down resource
        std::vector<ResourceId> downed;
        for (int r = 0; r < m; ++r) {
          if (down[static_cast<std::size_t>(r)]) {
            downed.push_back(static_cast<ResourceId>(r));
          }
        }
        if (downed.empty()) break;
        const ResourceId r = downed[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(downed.size()) - 1))];
        down[static_cast<std::size_t>(r)] = false;
        a.handle_resource_up(r, t);
        b.handle_resource_up(r, t);
        break;
      }
      default:  // pure re-invocation (fast path on both sides)
        break;
    }
    reschedule_both();
  }

  // Drain: repair everything, then run far past every deadline.
  for (int r = 0; r < m; ++r) {
    if (down[static_cast<std::size_t>(r)]) {
      a.handle_resource_up(static_cast<ResourceId>(r), t);
      b.handle_resource_up(static_cast<ResourceId>(r), t);
    }
  }
  reschedule_both();
  // Two drain passes: the first releases any backpressure-deferred jobs
  // and plans them into its own future; the second sweeps them complete.
  t += Time{10'000'000};
  reschedule_both();
  t += Time{10'000'000};
  reschedule_both();
  ASSERT_EQ(a.stats().jobs_completed, a.stats().jobs_submitted);
  ASSERT_EQ(b.stats().jobs_completed, a.stats().jobs_completed);
  ASSERT_EQ(a.stats().dirty_promotions, 0u);
  ASSERT_EQ(b.stats().dirty_promotions, 0u);
  // The cached path must actually exercise the cache to be a differential.
  ASSERT_EQ(b.stats().model_cache_hits, 0u);
}

TEST(IncrementalDifferential, CacheOnVsCacheOffByteIdenticalOver500Seeds) {
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    run_differential(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- Fault storm: dirty-set invariants ----

TEST(Incremental, FaultStormNeverTripsTheDirtyPromotionSafetyNet) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    RandomStream rng(seed, 11);
    const int m = 3;
    MrcpRm rm(Cluster::homogeneous(m, 2, 2), incremental_config());
    Time t;
    JobId next_id = 0;
    std::vector<bool> down(static_cast<std::size_t>(m), false);
    rm.submit(random_job(rng, next_id++, t), t);
    rm.reschedule(t);
    for (int step = 0; step < 12; ++step) {
      t += Time{rng.uniform_int(1, 300)};
      const std::int64_t roll = rng.uniform_int(0, 9);
      if (roll < 2 && next_id < 8) {
        rm.submit(random_job(rng, next_id++, t), t);
      } else if (roll < 6) {
        std::vector<ResourceId> up;
        for (int r = 0; r < m; ++r) {
          if (!down[static_cast<std::size_t>(r)]) {
            up.push_back(static_cast<ResourceId>(r));
          }
        }
        if (!up.empty()) {
          const ResourceId r = up[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(up.size()) - 1))];
          down[static_cast<std::size_t>(r)] = true;
          rm.handle_resource_down(r, t);
        }
      } else if (roll < 9) {
        std::vector<ResourceId> downed;
        for (int r = 0; r < m; ++r) {
          if (down[static_cast<std::size_t>(r)]) {
            downed.push_back(static_cast<ResourceId>(r));
          }
        }
        if (!downed.empty()) {
          const ResourceId r = downed[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(downed.size()) - 1))];
          down[static_cast<std::size_t>(r)] = false;
          rm.handle_resource_up(r, t);
        }
      }
      rm.reschedule(t);  // validate_plans re-checks every published plan
    }
    for (int r = 0; r < m; ++r) {
      if (down[static_cast<std::size_t>(r)]) {
        rm.handle_resource_up(static_cast<ResourceId>(r), t);
      }
    }
    rm.reschedule(t);
    rm.reschedule(t + Time{10'000'000});
    rm.reschedule(t + Time{20'000'000});
    ASSERT_EQ(rm.stats().jobs_completed, rm.stats().jobs_submitted)
        << "seed " << seed;
    ASSERT_EQ(rm.stats().dirty_promotions, 0u) << "seed " << seed;
    ASSERT_EQ(rm.ledger().counts().invocations(), rm.stats().invocations);
  }
}

// ---- Through the discrete-event simulator ----

TEST(Incremental, DesParkedWorkRetriesWhileTheSimulatorIsIdle) {
  // Two resources with frequent failures and long repairs: the cluster
  // goes fully down mid-run, parking the job. The park-retry timer must
  // reach the driver through next_deferred_release() so retry
  // invocations fire while the DES has no other events — the run
  // completing (the driver asserts every job finishes) plus multiple
  // kParked invocations is the regression proof, in both replan scopes.
  for (const ReplanScope scope :
       {ReplanScope::kAllUnstarted, ReplanScope::kDirtyOnly}) {
    const Job job =
        make_job(0, Time{0}, Time{0}, Time{10'000'000}, {Time{30'000}, Time{30'000}, Time{30'000}}, {Time{10'000}});
    const Workload w = make_workload({job}, 2, 1, 1);
    MrcpConfig cfg;
    cfg.replan_scope = scope;
    cfg.validate_plans = true;
    sim::SimOptions options;
    options.validate_execution = true;
    options.faults.mtbf_s = 4.0;
    options.faults.mttr_s = 60.0;
    options.faults.max_concurrent_down = 2;  // allow a full outage
    options.faults.seed = 5;
    const sim::SimMetrics metrics = sim::simulate_mrcp(w, cfg, options);
    ASSERT_EQ(metrics.records.size(), 1u);
    EXPECT_TRUE(metrics.records[0].completed());
    EXPECT_GE(metrics.degradation.parked, 2u)
        << "park retries never fired while idle";
  }
}

TEST(Incremental, DesExecutionDifferentialCacheOnVsOffUnderFaults) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticWorkloadConfig wc;
    wc.num_jobs = 10;
    wc.num_map_tasks = {1, 4};
    wc.num_reduce_tasks = {1, 2};
    wc.e_max = 5;
    wc.arrival_rate = 0.05;
    wc.num_resources = 4;
    wc.deadline_multiplier_ul = 3.0;
    wc.seed = seed;
    const Workload w = generate_synthetic_workload(wc);

    sim::SimOptions options;
    options.validate_execution = true;
    options.faults.mtbf_s = 60.0;
    options.faults.mttr_s = 15.0;
    options.faults.seed = seed + 100;

    MrcpConfig on;
    on.replan_scope = ReplanScope::kDirtyOnly;
    on.validate_plans = true;
    on.solve.improvement_fails = 200;
    on.solve.lns_iterations = 2;
    MrcpConfig off = on;
    off.reuse_model_cache = false;

    const sim::SimMetrics ma = sim::simulate_mrcp(w, on, options);
    const sim::SimMetrics mb = sim::simulate_mrcp(w, off, options);
    ASSERT_EQ(ma.executed.size(), mb.executed.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ma.executed.size(); ++i) {
      const sim::ExecutedTask& x = ma.executed[i];
      const sim::ExecutedTask& y = mb.executed[i];
      ASSERT_TRUE(x.job == y.job && x.task_index == y.task_index &&
                  x.resource == y.resource && x.start == y.start &&
                  x.end == y.end)
          << "seed " << seed << " executed[" << i << "]";
    }
    ASSERT_EQ(ma.degradation.invocations(), mb.degradation.invocations());
  }
}

}  // namespace
}  // namespace mrcp
