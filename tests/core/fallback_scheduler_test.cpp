#include "core/fallback_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "cp/solver.h"

namespace mrcp {
namespace {

using cp::CpJobIndex;
using cp::CpTaskIndex;
using cp::Model;
using cp::Phase;
using cp::Solution;

TEST(FallbackScheduler, EmptyModelIsValid) {
  Model m;
  m.add_resource(1, 1);
  const Solution sol = fallback_schedule(m);
  EXPECT_TRUE(sol.valid);
  EXPECT_EQ(sol.num_late, 0);
}

TEST(FallbackScheduler, SchedulesSimpleJobOnTime) {
  Model m;
  m.add_resource(2, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j, Phase::kMap, Time{50});
  m.add_task(j, Phase::kMap, Time{50});
  m.add_task(j, Phase::kReduce, Time{30});
  const Solution sol = fallback_schedule(m);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_EQ(sol.num_late, 0);
}

TEST(FallbackScheduler, EdfOrderPrioritizesTightDeadline) {
  // One slot, two single-map jobs; job-id order would make the tight
  // job late, EDF order completes both on time.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});
  const Solution sol = fallback_schedule(m);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_EQ(sol.num_late, 0);
}

TEST(FallbackScheduler, RespectsPinnedTasks) {
  // The pinned map occupies the only map slot for [0, 100); the free map
  // must wait, and the reduce must start after both maps.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{500}, 0);
  const CpTaskIndex pinned = m.add_task(j, Phase::kMap, Time{100});
  m.add_task(j, Phase::kMap, Time{50});
  const CpTaskIndex reduce = m.add_task(j, Phase::kReduce, Time{20});
  m.pin_task(pinned, 0, Time{0});
  const Solution sol = fallback_schedule(m);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_EQ(sol.placements[static_cast<std::size_t>(pinned)].start, Time{0});
  EXPECT_GE(sol.placements[static_cast<std::size_t>(reduce)].start, Time{150});
}

TEST(FallbackScheduler, RespectsWorkflowPrecedences) {
  Model m;
  m.add_resource(2, 2);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  const CpTaskIndex a = m.add_task(j, Phase::kMap, Time{40});
  const CpTaskIndex b = m.add_task(j, Phase::kMap, Time{40});
  m.add_precedence(a, b);
  const Solution sol = fallback_schedule(m);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_GE(sol.placements[static_cast<std::size_t>(b)].start,
            sol.placements[static_cast<std::size_t>(a)].start + Time{40});
}

TEST(FallbackScheduler, HonorsCandidateRestrictions) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{400}, 0);
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{50});
  m.restrict_candidates(t, {1});
  const Solution sol = fallback_schedule(m);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_EQ(sol.placements[static_cast<std::size_t>(t)].resource, 1);
}

TEST(FallbackScheduler, ReturnsInvalidWhenNoHostExists) {
  // Demand 3 exceeds every capacity: the scheduler reports an invalid
  // solution instead of crashing (the RM parks such work upstream, but
  // the scheduler itself must stay total).
  Model m;
  m.add_resource(2, 2);
  const CpJobIndex j = m.add_job(Time{0}, Time{400}, 0);
  m.add_task(j, Phase::kMap, Time{50}, 3);
  const Solution sol = fallback_schedule(m);
  EXPECT_FALSE(sol.valid);
}

TEST(FallbackScheduler, Deterministic) {
  RandomStream rng(7, 0);
  Model m;
  m.add_resource(2, 2);
  m.add_resource(1, 1);
  for (int j = 0; j < 8; ++j) {
    const Time est{rng.uniform_int(0, 100)};
    const CpJobIndex cj = m.add_job(est, est + Time{rng.uniform_int(100, 600)}, j);
    const auto maps = rng.uniform_int(1, 4);
    const auto reduces = rng.uniform_int(1, 2);
    for (std::int64_t t = 0; t < maps; ++t) {
      m.add_task(cj, Phase::kMap, Time{rng.uniform_int(10, 60)});
    }
    for (std::int64_t t = 0; t < reduces; ++t) {
      m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(10, 40)});
    }
  }
  const Solution s1 = fallback_schedule(m);
  const Solution s2 = fallback_schedule(m);
  ASSERT_TRUE(s1.valid);
  ASSERT_EQ(s1.placements.size(), s2.placements.size());
  for (std::size_t i = 0; i < s1.placements.size(); ++i) {
    EXPECT_EQ(s1.placements[i].resource, s2.placements[i].resource);
    EXPECT_EQ(s1.placements[i].start, s2.placements[i].start);
  }
}

TEST(FallbackScheduler, RandomModelsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    RandomStream rng(seed, 0);
    Model m;
    const auto resources = rng.uniform_int(1, 3);
    for (std::int64_t r = 0; r < resources; ++r) {
      m.add_resource(static_cast<int>(rng.uniform_int(1, 3)),
                     static_cast<int>(rng.uniform_int(1, 2)));
    }
    const auto jobs = rng.uniform_int(1, 6);
    for (std::int64_t j = 0; j < jobs; ++j) {
      const Time est{rng.uniform_int(0, 50)};
      const CpJobIndex cj =
          m.add_job(est, est + Time{rng.uniform_int(50, 400)}, static_cast<int>(j));
      const auto maps = rng.uniform_int(1, 3);
      for (std::int64_t t = 0; t < maps; ++t) {
        m.add_task(cj, Phase::kMap, Time{rng.uniform_int(5, 50)});
      }
      if (rng.uniform_int(0, 1) == 1) {
        m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(5, 30)});
      }
    }
    ASSERT_EQ(m.validate(), "");
    const Solution sol = fallback_schedule(m);
    ASSERT_TRUE(sol.valid) << "seed " << seed;
    EXPECT_EQ(validate_solution(m, sol), "") << "seed " << seed;
  }
}

TEST(FallbackScheduler, SeededCpNeverWorseThanFallbackAlone) {
  // Differential guarantee of the escalation ladder: warm-starting the
  // CP solver with the EDF fallback's schedule can only prune — the
  // solver's result is never later-count worse than the seed itself.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomStream rng(seed, 1);
    Model m;
    m.add_resource(2, 2);
    const auto jobs = rng.uniform_int(2, 6);
    for (std::int64_t j = 0; j < jobs; ++j) {
      const Time est{rng.uniform_int(0, 40)};
      const CpJobIndex cj =
          m.add_job(est, est + Time{rng.uniform_int(40, 250)}, static_cast<int>(j));
      const auto maps = rng.uniform_int(1, 3);
      for (std::int64_t t = 0; t < maps; ++t) {
        m.add_task(cj, Phase::kMap, Time{rng.uniform_int(5, 60)});
      }
      m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(5, 40)});
    }
    const Solution fallback = fallback_schedule(m);
    ASSERT_TRUE(fallback.valid) << "seed " << seed;

    cp::SolveParams params;
    params.time_limit_s = 2.0;
    params.seed = seed;
    const cp::SolveResult seeded = cp::solve(m, params, &fallback);
    ASSERT_TRUE(seeded.best.valid) << "seed " << seed;
    EXPECT_LE(seeded.best.num_late, fallback.num_late) << "seed " << seed;
    EXPECT_EQ(validate_solution(m, seeded.best), "") << "seed " << seed;
  }
}

}  // namespace
}  // namespace mrcp
