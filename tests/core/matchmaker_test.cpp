#include "core/matchmaker.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "cp/profile.h"

namespace mrcp {
namespace {

TEST(Matchmaker, PaperMinGapExample) {
  // §V.D: r1 busy until 10, r2 busy until 8; a task needing [11, 15)
  // goes to r1 (gap 1 < gap 3).
  Cluster cluster = Cluster::homogeneous(2, 1, 1);
  std::vector<MatchItem> items = {
      {TaskType::kMap, Time{2}, Time{10}, false, kNoResource},   // ends 10 (claims r0)
      {TaskType::kMap, Time{5}, Time{8}, false, kNoResource},    // ends 8 (claims r1)
      {TaskType::kMap, Time{11}, Time{15}, false, kNoResource},  // the §V.D task
  };
  const std::vector<ResourceId> assigned = matchmake(cluster, items);
  EXPECT_NE(assigned[0], assigned[1]);
  EXPECT_EQ(assigned[2], assigned[0]);  // joins the later-ending slot
}

TEST(Matchmaker, ParallelTasksSpreadAcrossSlots) {
  Cluster cluster = Cluster::homogeneous(3, 1, 1);
  std::vector<MatchItem> items = {
      {TaskType::kMap, Time{0}, Time{10}, false, kNoResource},
      {TaskType::kMap, Time{0}, Time{10}, false, kNoResource},
      {TaskType::kMap, Time{0}, Time{10}, false, kNoResource},
  };
  const std::vector<ResourceId> assigned = matchmake(cluster, items);
  EXPECT_NE(assigned[0], assigned[1]);
  EXPECT_NE(assigned[1], assigned[2]);
  EXPECT_NE(assigned[0], assigned[2]);
}

TEST(Matchmaker, ReusesSlotAfterCompletion) {
  Cluster cluster = Cluster::homogeneous(1, 2, 1);
  std::vector<MatchItem> items = {
      {TaskType::kMap, Time{0}, Time{10}, false, kNoResource},
      {TaskType::kMap, Time{10}, Time{20}, false, kNoResource},
      {TaskType::kMap, Time{5}, Time{9}, false, kNoResource},
  };
  const std::vector<ResourceId> assigned = matchmake(cluster, items);
  for (ResourceId r : assigned) EXPECT_EQ(r, 0);
}

TEST(Matchmaker, PinnedTaskForcedToItsResource) {
  Cluster cluster = Cluster::homogeneous(2, 1, 1);
  std::vector<MatchItem> items = {
      {TaskType::kMap, Time{0}, Time{50}, true, 1},  // running on resource 1
      {TaskType::kMap, Time{10}, Time{20}, false, kNoResource},
  };
  const std::vector<ResourceId> assigned = matchmake(cluster, items);
  EXPECT_EQ(assigned[0], 1);
  EXPECT_EQ(assigned[1], 0);  // only free slot
}

TEST(Matchmaker, MapAndReducePoolsIndependent) {
  Cluster cluster = Cluster::homogeneous(1, 1, 1);
  std::vector<MatchItem> items = {
      {TaskType::kMap, Time{0}, Time{10}, false, kNoResource},
      {TaskType::kReduce, Time{0}, Time{10}, false, kNoResource},
  };
  const std::vector<ResourceId> assigned = matchmake(cluster, items);
  EXPECT_EQ(assigned[0], 0);
  EXPECT_EQ(assigned[1], 0);
}

// Property: any interval set respecting the combined capacity can be
// matchmade, and the per-resource capacity is then respected.
class MatchmakerRandomProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MatchmakerRandomProperty, ValidAssignmentForFeasibleSchedules) {
  RandomStream rng(GetParam(), 0);
  const int m = static_cast<int>(rng.uniform_int(2, 5));
  const int cap = static_cast<int>(rng.uniform_int(1, 3));
  Cluster cluster = Cluster::homogeneous(m, cap, cap);

  // Build a feasible combined schedule by greedy placement against the
  // combined profiles (mirrors the solver's behavior).
  cp::Profile map_profile(m * cap);
  cp::Profile reduce_profile(m * cap);
  std::vector<MatchItem> items;
  for (int i = 0; i < 60; ++i) {
    const TaskType type = rng.bernoulli(0.5) ? TaskType::kMap : TaskType::kReduce;
    cp::Profile& prof = type == TaskType::kMap ? map_profile : reduce_profile;
    const Time est{rng.uniform_int(0, 300)};
    const Time dur{rng.uniform_int(1, 60)};
    const Time start = prof.earliest_feasible(est, dur, 1);
    prof.add(start, dur, 1);
    items.push_back(MatchItem{type, start, start + dur, false, kNoResource});
  }

  const std::vector<ResourceId> assigned = matchmake(cluster, items);

  // Sweep per (resource, type).
  std::map<std::pair<ResourceId, int>, std::map<Time, int>> deltas;
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_GE(assigned[i], 0);
    ASSERT_LT(assigned[i], m);
    deltas[{assigned[i], static_cast<int>(items[i].type)}][items[i].start] += 1;
    deltas[{assigned[i], static_cast<int>(items[i].type)}][items[i].end] -= 1;
  }
  for (const auto& [key, delta] : deltas) {
    int usage = 0;
    for (const auto& [t, d] : delta) {
      usage += d;
      ASSERT_LE(usage, cap) << "resource " << key.first << " over capacity";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchmakerRandomProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Regrouping, PaperExample) {
  // §V.D: 100 map + 100 reduce slots, nm=50, nr=30 -> 50 resources with
  // c^mp = 2; 20 resources with c^rd = 3 and 10 with c^rd = 4.
  const Cluster c = compute_regrouping(100, 100, 50, 30);
  ASSERT_EQ(c.size(), 50);
  EXPECT_EQ(c.total_map_slots(), 100);
  EXPECT_EQ(c.total_reduce_slots(), 100);
  int with_3 = 0;
  int with_4 = 0;
  int with_0 = 0;
  for (const Resource& r : c.resources()) {
    EXPECT_EQ(r.map_capacity, 2);
    if (r.reduce_capacity == 3) ++with_3;
    if (r.reduce_capacity == 4) ++with_4;
    if (r.reduce_capacity == 0) ++with_0;
  }
  EXPECT_EQ(with_3, 20);
  EXPECT_EQ(with_4, 10);
  EXPECT_EQ(with_0, 20);  // the other 20 resources carry no reduce slots
}

TEST(Regrouping, EvenSplit) {
  const Cluster c = compute_regrouping(100, 100, 50, 50);
  ASSERT_EQ(c.size(), 50);
  for (const Resource& r : c.resources()) {
    EXPECT_EQ(r.map_capacity, 2);
    EXPECT_EQ(r.reduce_capacity, 2);
  }
}

TEST(Regrouping, MapOnly) {
  const Cluster c = compute_regrouping(10, 0, 5, 0);
  ASSERT_EQ(c.size(), 5);
  EXPECT_EQ(c.total_map_slots(), 10);
  EXPECT_EQ(c.total_reduce_slots(), 0);
}

TEST(Regrouping, SlotTotalsPreserved) {
  const Cluster c = compute_regrouping(17, 23, 4, 6);
  EXPECT_EQ(c.size(), 6);
  EXPECT_EQ(c.total_map_slots(), 17);
  EXPECT_EQ(c.total_reduce_slots(), 23);
}

}  // namespace
}  // namespace mrcp
