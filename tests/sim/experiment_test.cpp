#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace mrcp::sim {
namespace {

SimMetrics fake_metrics(int jobs, int late) {
  SimMetrics m;
  for (int i = 0; i < jobs; ++i) {
    JobRecord r;
    r.id = i;
    r.arrival = Time{i * 1000};
    r.earliest_start = r.arrival;
    r.deadline = r.arrival + Time{10000};
    r.completion = r.arrival + Time{i < late ? 20000 : 5000};
    r.late = r.completion > r.deadline;
    m.records.push_back(r);
  }
  m.total_sched_seconds = 0.5;
  return m;
}

TEST(SummarizeRun, ComputesPaperMetrics) {
  const SimMetrics m = fake_metrics(10, 2);
  const RunMetrics run = summarize_run(m, 0.0);
  EXPECT_DOUBLE_EQ(run.O_seconds, 0.05);  // 0.5s over 10 jobs
  EXPECT_DOUBLE_EQ(run.N_late, 2.0);
  EXPECT_DOUBLE_EQ(run.P_percent, 20.0);
  // T: 2 jobs at 20s, 8 at 5s -> (40 + 40) / 10 = 8 s.
  EXPECT_NEAR(run.T_seconds, 8.0, 1e-9);
}

TEST(SummarizeRun, WarmupTrimsEarlyJobs) {
  const SimMetrics m = fake_metrics(10, 2);  // late jobs are ids 0 and 1
  const RunMetrics run = summarize_run(m, 0.2);
  EXPECT_DOUBLE_EQ(run.N_late, 0.0);  // both late jobs trimmed
  EXPECT_DOUBLE_EQ(run.P_percent, 0.0);
  EXPECT_NEAR(run.T_seconds, 5.0, 1e-9);
}

TEST(Replicate, AggregatesAcrossReplications) {
  const ReplicatedMetrics agg = replicate(5, [](std::size_t rep) {
    RunMetrics m;
    m.O_seconds = 0.1;
    m.T_seconds = 100.0 + static_cast<double>(rep);
    m.N_late = static_cast<double>(rep % 2);
    m.P_percent = 1.0;
    return m;
  });
  EXPECT_EQ(agg.replications, 5u);
  EXPECT_DOUBLE_EQ(agg.O.mean, 0.1);
  EXPECT_DOUBLE_EQ(agg.O.half_width, 0.0);
  EXPECT_DOUBLE_EQ(agg.T.mean, 102.0);
  EXPECT_GT(agg.T.half_width, 0.0);
  EXPECT_DOUBLE_EQ(agg.P.mean, 1.0);
}

TEST(Replicate, ParallelMatchesSerial) {
  auto runner = [](std::size_t rep) {
    RunMetrics m;
    m.O_seconds = 0.01 * static_cast<double>(rep + 1);
    m.T_seconds = 50.0 + 3.0 * static_cast<double>(rep);
    m.N_late = static_cast<double>(rep % 3);
    m.P_percent = static_cast<double>(rep);
    return m;
  };
  const ReplicatedMetrics serial = replicate(7, runner, 1);
  const ReplicatedMetrics parallel = replicate(7, runner, 4);
  EXPECT_DOUBLE_EQ(serial.O.mean, parallel.O.mean);
  EXPECT_DOUBLE_EQ(serial.T.mean, parallel.T.mean);
  EXPECT_DOUBLE_EQ(serial.T.half_width, parallel.T.half_width);
  EXPECT_DOUBLE_EQ(serial.N.mean, parallel.N.mean);
  EXPECT_DOUBLE_EQ(serial.P.half_width, parallel.P.half_width);
}

TEST(Replicate, MoreThreadsThanReplications) {
  const ReplicatedMetrics agg = replicate(
      2,
      [](std::size_t rep) {
        RunMetrics m;
        m.T_seconds = static_cast<double>(rep);
        return m;
      },
      16);
  EXPECT_EQ(agg.replications, 2u);
  EXPECT_DOUBLE_EQ(agg.T.mean, 0.5);
}

TEST(ResultTable, HeadersAndRowsAlign) {
  const auto headers = result_headers("lambda");
  const ReplicatedMetrics m;
  const auto row = result_row("0.01", m);
  EXPECT_EQ(headers.size(), row.size());
  EXPECT_EQ(headers[0], "lambda");
  EXPECT_EQ(row[0], "0.01");
}

}  // namespace
}  // namespace mrcp::sim
