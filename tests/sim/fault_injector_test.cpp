#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../test_util.h"
#include "des/simulation.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;
using testutil::make_workload;

FaultConfig failing_config(double mtbf_s = 100.0, double mttr_s = 20.0,
                           std::uint64_t seed = 7) {
  FaultConfig c;
  c.mtbf_s = mtbf_s;
  c.mttr_s = mttr_s;
  c.seed = seed;
  return c;
}

TEST(FaultConfig, Validation) {
  EXPECT_EQ(FaultConfig{}.validate(), "");
  EXPECT_EQ(failing_config().validate(), "");

  FaultConfig bad = failing_config();
  bad.mtbf_s = -1.0;
  EXPECT_NE(bad.validate(), "");

  bad = failing_config();
  bad.mttr_s = 0.0;
  EXPECT_NE(bad.validate(), "");

  bad = FaultConfig{};
  bad.straggler_prob = 1.5;
  EXPECT_NE(bad.validate(), "");

  bad = FaultConfig{};
  bad.straggler_prob = 0.5;
  bad.straggler_factor = 0.5;
  EXPECT_NE(bad.validate(), "");

  bad = FaultConfig{};
  bad.max_concurrent_down = -2;
  EXPECT_NE(bad.validate(), "");
}

TEST(FaultConfig, EnabledPredicates) {
  FaultConfig off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.failures_enabled());
  EXPECT_FALSE(off.stragglers_enabled());

  // straggler_factor == 1 is a no-op even with prob > 0.
  FaultConfig unity;
  unity.straggler_prob = 0.5;
  EXPECT_FALSE(unity.stragglers_enabled());

  FaultConfig on = failing_config();
  EXPECT_TRUE(on.enabled());
}

TEST(FaultInjector, DisabledStartSchedulesNothing) {
  des::Simulation des;
  FaultInjector injector(4, FaultConfig{});
  injector.start(des, [](ResourceId, Time) {}, [](ResourceId, Time) {});
  EXPECT_TRUE(des.empty());
  des.run();
  EXPECT_EQ(injector.failures(), 0u);
  EXPECT_TRUE(injector.downtime().empty());
}

/// Run an injector for `horizon` ticks, returning its downtime trace.
/// `noisy` callbacks schedule extra unrelated DES events, standing in for
/// the scheduling activity of a resource manager — the trace must not
/// depend on them.
std::vector<DownInterval> record_trace(const FaultConfig& config, int resources,
                                       Time horizon, bool noisy) {
  des::Simulation des;
  FaultInjector injector(resources, config);
  auto transition = [&des, noisy](ResourceId, Time) {
    if (noisy) des.schedule_after(Time{1}, [] {});
  };
  injector.start(des, transition, transition);
  des.run(horizon);
  injector.stop(des);
  des.run();
  return injector.downtime();
}

TEST(FaultInjector, TraceIsPolicyIndependent) {
  const FaultConfig config = failing_config(/*mtbf_s=*/50.0, /*mttr_s=*/10.0);
  const Time horizon = seconds_to_ticks(std::int64_t{2000});
  const auto quiet = record_trace(config, 5, horizon, /*noisy=*/false);
  const auto noisy = record_trace(config, 5, horizon, /*noisy=*/true);

  ASSERT_FALSE(quiet.empty());
  ASSERT_EQ(quiet.size(), noisy.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i].resource, noisy[i].resource);
    EXPECT_EQ(quiet[i].start, noisy[i].start);
    EXPECT_EQ(quiet[i].end, noisy[i].end);
  }
}

TEST(FaultInjector, TraceChangesWithSeed) {
  const Time horizon = seconds_to_ticks(std::int64_t{2000});
  const auto a = record_trace(failing_config(50.0, 10.0, 1), 5, horizon, false);
  const auto b = record_trace(failing_config(50.0, 10.0, 2), 5, horizon, false);
  ASSERT_FALSE(a.empty());
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].resource != b[i].resource || a[i].start != b[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, TracksUpDownState) {
  des::Simulation des;
  FaultInjector injector(3, failing_config(40.0, 10.0));
  int max_down = 0;
  injector.start(
      des,
      [&](ResourceId r, Time) {
        EXPECT_TRUE(injector.is_down(r));
        max_down = std::max(max_down, injector.down_count());
      },
      [&](ResourceId r, Time) { EXPECT_FALSE(injector.is_down(r)); });
  des.run(seconds_to_ticks(std::int64_t{5000}));
  injector.stop(des);
  des.run();

  EXPECT_GT(injector.failures(), 0u);
  EXPECT_LE(max_down, 2);  // default cap: m - 1
  EXPECT_EQ(injector.failures(), injector.downtime().size());
  // Every closed interval pairs a failure with a repair.
  std::size_t open = 0;
  for (const DownInterval& d : injector.downtime()) {
    EXPECT_GE(d.resource, 0);
    EXPECT_LT(d.resource, 3);
    if (d.end == kNoTime) {
      ++open;
    } else {
      EXPECT_GT(d.end, d.start);
    }
  }
  EXPECT_EQ(injector.repairs() + open, injector.failures());
}

TEST(FaultInjector, ConcurrencyCapSuppressesFailures) {
  des::Simulation des;
  FaultConfig config = failing_config(/*mtbf_s=*/5.0, /*mttr_s=*/50.0);
  config.max_concurrent_down = 1;
  FaultInjector injector(4, config);
  int max_down = 0;
  injector.start(
      des,
      [&](ResourceId, Time) {
        max_down = std::max(max_down, injector.down_count());
      },
      [](ResourceId, Time) {});
  des.run(seconds_to_ticks(std::int64_t{2000}));
  injector.stop(des);
  des.run();

  EXPECT_EQ(max_down, 1);
  EXPECT_GT(injector.suppressed_failures(), 0u);
}

FaultConfig rack_config(double rack_mtbf_s = 100.0, double rack_mttr_s = 20.0,
                        std::uint64_t seed = 7) {
  FaultConfig c;
  c.rack_mtbf_s = rack_mtbf_s;
  c.rack_mttr_s = rack_mttr_s;
  c.seed = seed;
  return c;
}

TEST(FaultConfig, RackValidation) {
  EXPECT_EQ(rack_config().validate(), "");
  FaultConfig bad = rack_config();
  bad.rack_mtbf_s = -1.0;
  EXPECT_NE(bad.validate(), "");
  bad = rack_config();
  bad.rack_mttr_s = 0.0;
  EXPECT_NE(bad.validate(), "");
  // enabled() must see rack-only fault configs.
  EXPECT_TRUE(rack_config().enabled());
  EXPECT_TRUE(rack_config().rack_failures_enabled());
  EXPECT_FALSE(rack_config().failures_enabled());
}

TEST(RackBursts, DownsEveryUpMemberOfTheRackAtOnce) {
  des::Simulation des;
  // Racks {0,0,1,1,1}; cap 4 so a whole rack can go down.
  FaultConfig config = rack_config(/*rack_mtbf_s=*/60.0, /*rack_mttr_s=*/10.0);
  config.max_concurrent_down = 4;
  FaultInjector injector(5, config, {0, 0, 1, 1, 1});
  std::vector<std::pair<ResourceId, Time>> downs;
  injector.start(
      des, [&](ResourceId r, Time t) { downs.emplace_back(r, t); },
      [](ResourceId, Time) {});
  des.run(seconds_to_ticks(std::int64_t{500}));
  injector.stop(des);
  des.run();

  ASSERT_GT(injector.rack_bursts(), 0u);
  ASSERT_FALSE(downs.empty());
  // Every down event shares its timestamp with all same-tick events of
  // the same rack: group by time and check each group stays in one rack.
  for (std::size_t i = 0; i < downs.size(); ++i) {
    const int rack_i = downs[i].first < 2 ? 0 : 1;
    for (std::size_t j = i + 1; j < downs.size(); ++j) {
      if (downs[j].second != downs[i].second) continue;
      const int rack_j = downs[j].first < 2 ? 0 : 1;
      EXPECT_EQ(rack_i, rack_j) << "burst spanned racks at t=" << downs[i].second;
    }
  }
  // Every burst member shows up in the downtime log like any failure.
  EXPECT_EQ(injector.failures(), injector.downtime().size());
}

TEST(RackBursts, MembersDrawIndependentRepairs) {
  des::Simulation des;
  FaultConfig config = rack_config(/*rack_mtbf_s=*/50.0, /*rack_mttr_s=*/30.0);
  config.max_concurrent_down = 3;
  FaultInjector injector(3, config, {0, 0, 0});
  injector.start(des, [](ResourceId, Time) {}, [](ResourceId, Time) {});
  des.run(seconds_to_ticks(std::int64_t{2000}));
  injector.stop(des);
  des.run();

  ASSERT_GT(injector.rack_bursts(), 0u);
  // Find a burst that downed >= 2 members and compare their repair ends.
  bool found_distinct = false;
  const auto& dt = injector.downtime();
  for (std::size_t i = 0; i + 1 < dt.size() && !found_distinct; ++i) {
    if (dt[i].start != dt[i + 1].start) continue;
    if (dt[i].end == kNoTime || dt[i + 1].end == kNoTime) continue;
    found_distinct = dt[i].end != dt[i + 1].end;
  }
  EXPECT_TRUE(found_distinct)
      << "every multi-member burst repaired in lockstep — repairs are "
         "not independent";
}

TEST(RackBursts, ConcurrencyCapSuppressesMembers) {
  des::Simulation des;
  FaultConfig config = rack_config(/*rack_mtbf_s=*/20.0, /*rack_mttr_s=*/100.0);
  config.max_concurrent_down = 1;
  FaultInjector injector(4, config, {0, 0, 0, 0});
  int max_down = 0;
  injector.start(
      des,
      [&](ResourceId, Time) {
        max_down = std::max(max_down, injector.down_count());
      },
      [](ResourceId, Time) {});
  des.run(seconds_to_ticks(std::int64_t{2000}));
  injector.stop(des);
  des.run();

  EXPECT_EQ(max_down, 1);
  EXPECT_GT(injector.suppressed_failures(), 0u);
}

TEST(RackBursts, TraceIsPolicyIndependent) {
  auto record = [](bool noisy) {
    des::Simulation des;
    FaultConfig config = rack_config(/*rack_mtbf_s=*/40.0, /*rack_mttr_s=*/10.0);
    config.mtbf_s = 80.0;  // mixed individual + rack faults
    config.mttr_s = 15.0;
    FaultInjector injector(4, config, {0, 0, 1, 1});
    auto transition = [&des, noisy](ResourceId, Time) {
      if (noisy) des.schedule_after(Time{1}, [] {});
    };
    injector.start(des, transition, transition);
    des.run(seconds_to_ticks(std::int64_t{2000}));
    injector.stop(des);
    des.run();
    return injector.downtime();
  };
  const auto quiet = record(false);
  const auto noisy = record(true);
  ASSERT_FALSE(quiet.empty());
  ASSERT_EQ(quiet.size(), noisy.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i].resource, noisy[i].resource);
    EXPECT_EQ(quiet[i].start, noisy[i].start);
    EXPECT_EQ(quiet[i].end, noisy[i].end);
  }
}

TEST(RackBursts, StateRoundTripsThroughEncodeRestore) {
  des::Simulation des;
  FaultConfig config = rack_config(/*rack_mtbf_s=*/30.0, /*rack_mttr_s=*/20.0);
  config.mtbf_s = 60.0;
  config.mttr_s = 10.0;
  config.max_concurrent_down = 3;
  FaultInjector injector(4, config, {0, 0, 1, 1});
  injector.start(des, [](ResourceId, Time) {}, [](ResourceId, Time) {});
  des.run(seconds_to_ticks(std::int64_t{300}));

  const std::string state = injector.encode_state();
  FaultInjector restored(4, config, {0, 0, 1, 1});
  std::string error;
  ASSERT_TRUE(restored.restore_state(state, &error)) << error;
  EXPECT_EQ(restored.failures(), injector.failures());
  EXPECT_EQ(restored.repairs(), injector.repairs());
  EXPECT_EQ(restored.rack_bursts(), injector.rack_bursts());
  EXPECT_EQ(restored.downtime().size(), injector.downtime().size());
  // Re-encoding the restored state is byte-identical modulo the pending
  // events (which the driver re-schedules); compare counters via a fresh
  // encode of the same structure by restoring a second time.
  FaultInjector twice(4, config, {0, 0, 1, 1});
  ASSERT_TRUE(twice.restore_state(state, &error)) << error;
  EXPECT_EQ(twice.pending_transitions().size(),
            restored.pending_transitions().size());

  // Rack-count and rack-id mismatches are rejected, not misapplied.
  FaultInjector wrong_racks(4, config, {0, 0, 0, 0});  // one rack, not two
  EXPECT_FALSE(wrong_racks.restore_state(state, &error));
  EXPECT_NE(error.find("rack"), std::string::npos) << error;
  FaultInjector wrong_ids(4, config, {0, 0, 2, 2});  // racks {0,2} != {0,1}
  EXPECT_FALSE(wrong_ids.restore_state(state, &error));
  EXPECT_NE(error.find("rack"), std::string::npos) << error;

  // Unknown versions and truncations are rejected with a message.
  std::string bad_version = state;
  bad_version[0] = '\x7f';
  FaultInjector v(4, config, {0, 0, 1, 1});
  EXPECT_FALSE(v.restore_state(bad_version, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  for (std::size_t cut = 0; cut < state.size(); cut += 7) {
    FaultInjector t(4, config, {0, 0, 1, 1});
    EXPECT_FALSE(t.restore_state(state.substr(0, cut), &error))
        << "cut=" << cut;
  }
}

TEST(RackBursts, ResumedRunMatchesUninterruptedTrace) {
  FaultConfig config = rack_config(/*rack_mtbf_s=*/40.0, /*rack_mttr_s=*/15.0);
  config.mtbf_s = 90.0;
  config.mttr_s = 12.0;
  const std::vector<int> racks = {0, 0, 1, 1};
  const Time horizon = seconds_to_ticks(std::int64_t{1500});
  const Time cut = seconds_to_ticks(std::int64_t{400});

  // Uninterrupted baseline.
  des::Simulation des_a;
  FaultInjector a(4, config, racks);
  a.start(des_a, [](ResourceId, Time) {}, [](ResourceId, Time) {});
  des_a.run(horizon);

  // Run to the cut, capture, restore into a fresh injector + DES, finish.
  des::Simulation des_b;
  FaultInjector b(4, config, racks);
  b.start(des_b, [](ResourceId, Time) {}, [](ResourceId, Time) {});
  des_b.run(cut);
  const std::string state = b.encode_state();

  des::Simulation des_c;
  des_c.restore_clock(des_b.now());
  FaultInjector c(4, config, racks);
  std::string error;
  ASSERT_TRUE(c.restore_state(state, &error)) << error;
  c.resume([](ResourceId, Time) {}, [](ResourceId, Time) {});
  for (const FaultInjector::PendingTransition& t : c.pending_transitions()) {
    c.schedule_transition(des_c, t);
  }
  des_c.run(horizon);

  const auto& base = a.downtime();
  const auto& resumed = c.downtime();
  ASSERT_EQ(base.size(), resumed.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].resource, resumed[i].resource) << i;
    EXPECT_EQ(base[i].start, resumed[i].start) << i;
    EXPECT_EQ(base[i].end, resumed[i].end) << i;
  }
  EXPECT_EQ(a.rack_bursts(), c.rack_bursts());
  EXPECT_EQ(a.failures(), c.failures());
}

TEST(Stragglers, HashIsDeterministicAndSeedSensitive) {
  FaultConfig config;
  config.straggler_prob = 0.3;
  config.straggler_factor = 2.0;
  config.seed = 11;

  int hits = 0;
  bool seed_matters = false;
  FaultConfig other = config;
  other.seed = 12;
  for (JobId j = 0; j < 100; ++j) {
    for (int t = 0; t < 5; ++t) {
      const bool a = is_straggler(config, j, t);
      EXPECT_EQ(a, is_straggler(config, j, t));  // pure function
      if (a) ++hits;
      if (a != is_straggler(other, j, t)) seed_matters = true;
    }
  }
  // ~150 expected of 500; any generator this far off is broken.
  EXPECT_GT(hits, 75);
  EXPECT_LT(hits, 250);
  EXPECT_TRUE(seed_matters);
}

TEST(Stragglers, ApplyInflatesExecTimes) {
  FaultConfig config;
  config.straggler_prob = 1.0;  // every task
  config.straggler_factor = 3.0;
  config.seed = 5;

  Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}, Time{2000}}, {Time{3000}})}, 1, 2, 2);
  const std::size_t slowed = apply_stragglers(w, config);
  EXPECT_EQ(slowed, 3u);
  EXPECT_EQ(w.jobs[0].map_tasks[0].exec_time, Time{3000});
  EXPECT_EQ(w.jobs[0].map_tasks[1].exec_time, Time{6000});
  EXPECT_EQ(w.jobs[0].reduce_tasks[0].exec_time, Time{9000});
}

TEST(Stragglers, DisabledIsNoop) {
  FaultConfig config;  // prob = 0
  Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {Time{2000}})}, 1, 2, 2);
  EXPECT_EQ(apply_stragglers(w, config), 0u);
  EXPECT_EQ(w.jobs[0].map_tasks[0].exec_time, Time{1000});

  // factor == 1 with prob > 0 is likewise a no-op.
  config.straggler_prob = 1.0;
  config.straggler_factor = 1.0;
  EXPECT_EQ(apply_stragglers(w, config), 0u);
}

}  // namespace
}  // namespace mrcp::sim
