#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace mrcp::sim {
namespace {

JobRecord make_record(JobId id, Time arrival, Time earliest_start,
                      Time deadline, Time completion) {
  JobRecord r;
  r.id = id;
  r.arrival = arrival;
  r.earliest_start = earliest_start;
  r.deadline = deadline;
  finish_job_record(r, completion);
  return r;
}

TEST(FinishJobRecord, SetsCompletionAndLateness) {
  JobRecord r;
  r.deadline = Time{100};
  EXPECT_FALSE(r.completed());
  finish_job_record(r, Time{90});
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.completion, Time{90});
  EXPECT_FALSE(r.late);

  JobRecord late;
  late.deadline = Time{100};
  finish_job_record(late, Time{101});
  EXPECT_TRUE(late.late);
}

TEST(FinishJobRecordDeathTest, DoubleCompletionAborts) {
  JobRecord r;
  r.deadline = Time{100};
  finish_job_record(r, Time{50});
  EXPECT_DEATH(finish_job_record(r, Time{60}), "job completed twice");
}

TEST(Metrics, AggregateNoWarmup) {
  SimMetrics m;
  m.records.push_back(make_record(0, Time{0}, Time{0}, Time{100}, Time{50}));    // on time
  m.records.push_back(make_record(1, Time{10}, Time{10}, Time{100}, Time{150})); // late
  const auto agg = m.aggregate(0.0);
  EXPECT_EQ(agg.jobs, 2u);
  EXPECT_EQ(agg.late, 1);
  EXPECT_DOUBLE_EQ(agg.percent_late, 50.0);
}

// The warmup cut discards the earliest-*arriving* jobs. Build records
// whose id order is the reverse of their arrival order: a cut by record
// index would discard the wrong jobs.
TEST(Metrics, WarmupCutFollowsArrivalOrderNotIdOrder) {
  SimMetrics m;
  // Job 0 arrives last and is late; jobs 1..3 arrive earlier, on time.
  m.records.push_back(make_record(0, Time{3000}, Time{3000}, Time{3100}, Time{4000}));  // late
  m.records.push_back(make_record(1, Time{0}, Time{0}, Time{1000}, Time{100}));
  m.records.push_back(make_record(2, Time{1000}, Time{1000}, Time{2000}, Time{1100}));
  m.records.push_back(make_record(3, Time{2000}, Time{2000}, Time{3000}, Time{2100}));

  // warmup 0.25 discards exactly one job: the earliest arrival (job 1),
  // never job 0 (the record at index 0).
  const auto agg = m.aggregate(0.25);
  EXPECT_EQ(agg.jobs, 3u);
  EXPECT_EQ(agg.late, 1);

  // With an id-order cut, job 0 (the only late one) would be gone and
  // percent_late would be 0. It must survive the arrival-order cut.
  EXPECT_DOUBLE_EQ(agg.percent_late, 100.0 / 3.0);

  // Mean turnaround over jobs 2, 3, 0: (100 + 100 + 1000) ms.
  EXPECT_DOUBLE_EQ(agg.mean_turnaround_s,
                   (ticks_to_seconds(Time{100}) + ticks_to_seconds(Time{100}) +
                    ticks_to_seconds(Time{1000})) /
                       3.0);
}

TEST(Metrics, BatchCiFollowsArrivalOrder) {
  SimMetrics m;
  // 40 records, ids reversed relative to arrival. The first-arriving
  // half has turnaround 100 ticks, the last-arriving half 900 ticks.
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const Time arrival{(n - 1 - i) * 1000};
    const Time turnaround{(n - 1 - i) < n / 2 ? 100 : 900};
    m.records.push_back(
        make_record(i, arrival, arrival, arrival + Time{10000}, arrival + turnaround));
  }
  // Cutting half the jobs in arrival order leaves only 900-tick
  // turnarounds; an index-order cut would leave a 100/900 mix.
  const auto ci = m.turnaround_batch_ci(0.5, 4);
  EXPECT_DOUBLE_EQ(ci.mean, ticks_to_seconds(Time{900}));
}

TEST(Metrics, TiedArrivalsKeepIdOrder) {
  SimMetrics m;
  // All arrivals tie: the arrival-order cut then equals the id-order
  // cut (stable sort), so warmup discards the lowest ids.
  m.records.push_back(make_record(0, Time{0}, Time{0}, Time{10}, Time{1000}));  // late
  m.records.push_back(make_record(1, Time{0}, Time{0}, Time{10000}, Time{100}));
  m.records.push_back(make_record(2, Time{0}, Time{0}, Time{10000}, Time{100}));
  m.records.push_back(make_record(3, Time{0}, Time{0}, Time{10000}, Time{100}));
  const auto agg = m.aggregate(0.25);
  EXPECT_EQ(agg.jobs, 3u);
  EXPECT_EQ(agg.late, 0);
}

}  // namespace
}  // namespace mrcp::sim
