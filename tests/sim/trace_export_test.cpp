#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "../test_util.h"
#include "sim/cluster_sim.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;
using testutil::make_workload;

TEST(TraceExport, PlanCsvHasOneRowPerTask) {
  MrcpConfig cfg;
  cfg.solve.time_limit_s = 1.0;
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), cfg);
  rm.submit(make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}, Time{200}}, {Time{300}}), Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  const std::string csv = plan_to_csv(plan);
  // Header + 3 task rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("job,task,type,resource,start_s,end_s,started"),
            std::string::npos);
  EXPECT_NE(csv.find("map"), std::string::npos);
  EXPECT_NE(csv.find("reduce"), std::string::npos);
}

TEST(TraceExport, ExecutionCsvFromSimulation) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}, Time{200}}, {Time{300}})}, 2, 1, 1);
  const SimMetrics m = simulate_mrcp(w, MrcpConfig{});
  ASSERT_EQ(m.executed.size(), 3u);
  const std::string csv = execution_to_csv(m.executed, w);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  // Executed rows are always marked started.
  EXPECT_EQ(csv.find(",0\n"), std::string::npos);
}

TEST(TraceExport, ExecutedTraceMatchesRecords) {
  const Workload w = make_workload(
      {
          make_job(0, Time{0}, Time{0}, Time{100000}, {Time{50}, Time{60}}, {Time{40}}),
          make_job(1, Time{10}, Time{10}, Time{100000}, {Time{30}}, {}),
      },
      2, 1, 1);
  const SimMetrics m = simulate_mrcp(w, MrcpConfig{});
  ASSERT_EQ(m.executed.size(), 4u);
  // The latest executed end of each job equals its completion record.
  Time latest0;
  Time latest1;
  for (const ExecutedTask& et : m.executed) {
    (et.job == 0 ? latest0 : latest1) =
        std::max(et.job == 0 ? latest0 : latest1, et.end);
  }
  EXPECT_EQ(latest0, m.records[0].completion);
  EXPECT_EQ(latest1, m.records[1].completion);
}

TEST(TraceExport, MinedfTraceExposed) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}}, {Time{50}})}, 1, 1, 1);
  const SimMetrics m = simulate_minedf(w);
  EXPECT_EQ(m.executed.size(), 2u);
}

TEST(TraceExport, WriteTextFileRoundTrip) {
  const std::string path = testing::TempDir() + "/mrcp_trace_test.csv";
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(TraceExport, WriteTextFileBadPath) {
  EXPECT_FALSE(write_text_file("/nonexistent_zzz/x.csv", "x"));
}

}  // namespace
}  // namespace mrcp::sim
