// Seeded crash-injection recovery harness (docs/crash_recovery.md).
//
// Every test follows the same shape: run a deterministic workload to
// completion with the journal on (the *baseline*), then for a sweep of
// crash points kill a fresh run after exactly N journal records, restore
// from whatever reached disk, resume, and require the resumed run to be
// indistinguishable from the uninterrupted one — byte-identical journal
// file (which the Journal's verification mode enforces record by record)
// and an identical executed trace, job records, kills and downtime.
// Sweeps cover snapshot restores, cold restores (journal only), torn
// final records, corrupt snapshot tails, and mid-journal bit flips.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "../test_util.h"
#include "common/io/file_io.h"
#include "common/io/record_io.h"
#include "sim/cluster_sim.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;
using testutil::make_workload;

/// Budget by fails/iterations only — the time limit must never bind, so
/// runs are bit-reproducible across machines, repetitions and resumes.
MrcpConfig deterministic_config() {
  MrcpConfig c;
  c.solve.time_limit_s = 120.0;
  c.solve.improvement_fails = 120;
  c.solve.lns_iterations = 2;
  c.solve.num_threads = 1;
  return c;
}

struct Scenario {
  Workload workload;
  MrcpConfig config;
  SimOptions options;
};

/// Fault-free, deadline-tight workload: arrivals, plans, deferral
/// releases and completions feed the journal.
Scenario fault_free_scenario() {
  Scenario s;
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(i, Time{i * 1500}, Time{i * 1500},
                            Time{i * 1500 + 60000},
                            {Time{4000}, Time{3000}}, {Time{2000}}));
  }
  s.workload = make_workload(std::move(jobs), 3, 2, 2);
  s.config = deterministic_config();
  return s;
}

/// Aggressive resource failures on top: downs, ups, kills and degraded
/// plans join the journal stream.
Scenario faulty_scenario() {
  Scenario s;
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(make_job(i, Time{i * 2000}, Time{i * 2000},
                            Time{i * 2000 + 200000},
                            {Time{5000}, Time{5000}}, {Time{4000}}));
  }
  s.workload = make_workload(std::move(jobs), 3, 2, 2);
  s.config = deterministic_config();
  s.options.faults.mtbf_s = 8.0;
  s.options.faults.mttr_s = 4.0;
  s.options.faults.seed = 3;
  return s;
}

/// Heterogeneous cluster (mixed speeds, two racks), placement-
/// constrained jobs and correlated rack bursts on top of individual
/// failures: the v2 journal task fields and the injector's v2 rack
/// state all land in the durability stream.
Scenario hetero_rack_scenario() {
  Scenario s;
  Cluster c;
  c.add_resource_hetero(2, 2, 0, 1500, 0);
  c.add_resource_hetero(2, 2, 0, 1000, 0);
  c.add_resource_hetero(2, 2, 0, 500, 1);
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    Job j = make_job(i, Time{i * 2000}, Time{i * 2000},
                     Time{i * 2000 + 200000}, {Time{5000}, Time{5000}},
                     {Time{4000}});
    switch (i % 3) {
      case 0:
        j.map_tasks[0].affinity_group = 0;
        j.map_tasks[1].affinity_group = 0;
        break;
      case 1:
        j.map_tasks[0].candidates = {0, 1};
        break;
      default:
        j.map_tasks[1].racks = {0};
        break;
    }
    jobs.push_back(j);
  }
  s.workload.cluster = c;
  s.workload.jobs = std::move(jobs);
  s.config = deterministic_config();
  s.options.faults.mtbf_s = 10.0;
  s.options.faults.mttr_s = 4.0;
  s.options.faults.rack_mtbf_s = 25.0;
  s.options.faults.rack_mttr_s = 5.0;
  s.options.faults.seed = 11;
  return s;
}

SimMetrics run_with(const Scenario& s, const DurabilityOptions& durability) {
  SimOptions options = s.options;
  options.durability = durability;
  return simulate_mrcp(s.workload, s.config, options);
}

std::string slurp(const std::string& path) {
  std::string content;
  EXPECT_TRUE(io::read_file(path, &content)) << path;
  return content;
}

void expect_same_trace(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (std::size_t i = 0; i < a.executed.size(); ++i) {
    EXPECT_EQ(a.executed[i].job, b.executed[i].job) << i;
    EXPECT_EQ(a.executed[i].task_index, b.executed[i].task_index) << i;
    EXPECT_EQ(a.executed[i].resource, b.executed[i].resource) << i;
    EXPECT_EQ(a.executed[i].start, b.executed[i].start) << i;
    EXPECT_EQ(a.executed[i].end, b.executed[i].end) << i;
  }
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion) << i;
    EXPECT_EQ(a.records[i].late, b.records[i].late) << i;
    EXPECT_EQ(a.records[i].failure_affected, b.records[i].failure_affected)
        << i;
  }
  ASSERT_EQ(a.killed.size(), b.killed.size());
  for (std::size_t i = 0; i < a.killed.size(); ++i) {
    EXPECT_EQ(a.killed[i].job, b.killed[i].job) << i;
    EXPECT_EQ(a.killed[i].start, b.killed[i].start) << i;
    EXPECT_EQ(a.killed[i].end, b.killed[i].end) << i;
  }
  ASSERT_EQ(a.downtime.size(), b.downtime.size());
  for (std::size_t i = 0; i < a.downtime.size(); ++i) {
    EXPECT_EQ(a.downtime[i].resource, b.downtime[i].resource) << i;
    EXPECT_EQ(a.downtime[i].start, b.downtime[i].start) << i;
    EXPECT_EQ(a.downtime[i].end, b.downtime[i].end) << i;
  }
}

struct Baseline {
  SimMetrics metrics;
  std::string journal;  ///< full uninterrupted journal, bytes
  std::uint64_t records = 0;
};

Baseline run_baseline(const Scenario& s, const std::string& prefix,
                      std::uint64_t snapshot_every) {
  DurabilityOptions dur;
  dur.journal_prefix = prefix;
  dur.snapshot_every = snapshot_every;
  Baseline b;
  b.metrics = run_with(s, dur);
  EXPECT_FALSE(b.metrics.crash_stopped);
  b.journal = slurp(dur.journal_path());
  b.records = io::read_framed(b.journal).records.size();
  return b;
}

/// Crash a fresh run after exactly `crash_after` journal records at
/// `prefix`, then resume and compare against the baseline.
void crash_and_recover(const Scenario& s, const Baseline& baseline,
                       const std::string& prefix, std::uint64_t snapshot_every,
                       std::uint64_t crash_after) {
  DurabilityOptions dur;
  dur.journal_prefix = prefix;
  dur.snapshot_every = snapshot_every;
  dur.crash_after_records = crash_after;
  const SimMetrics crashed = run_with(s, dur);
  EXPECT_EQ(crashed.crash_stopped, crash_after < baseline.records);
  // Whatever reached disk must be a byte-prefix of the uninterrupted
  // journal — determinism of the run up to the crash point.
  const std::string partial = slurp(dur.journal_path());
  ASSERT_LE(partial.size(), baseline.journal.size());
  EXPECT_EQ(partial, baseline.journal.substr(0, partial.size()));

  dur.crash_after_records = 0;
  dur.restore = true;
  const SimMetrics resumed = run_with(s, dur);
  EXPECT_FALSE(resumed.crash_stopped);
  EXPECT_EQ(slurp(dur.journal_path()), baseline.journal)
      << "resumed journal diverged (crash point " << crash_after << ")";
  expect_same_trace(resumed, baseline.metrics);
}

/// Truncate the file at `path` by `cut` bytes (a torn tail).
void tear_tail(const std::string& path, std::uint64_t cut) {
  const std::string content = slurp(path);
  ASSERT_GE(content.size(), cut);
  ASSERT_TRUE(io::truncate_file(path, content.size() - cut));
}

TEST(CrashRecovery, JournalingDoesNotPerturbTheRun) {
  const Scenario s = faulty_scenario();
  const SimMetrics plain = run_with(s, DurabilityOptions{});
  const Baseline journaled =
      run_baseline(s, testing::TempDir() + "crt_perturb", 5);
  expect_same_trace(plain, journaled.metrics);
}

TEST(CrashRecovery, JournalBytesIndependentOfSnapshotCadence) {
  const Scenario s = fault_free_scenario();
  const Baseline dense = run_baseline(s, testing::TempDir() + "crt_dense", 3);
  const Baseline sparse = run_baseline(s, testing::TempDir() + "crt_sparse", 0);
  EXPECT_EQ(dense.journal, sparse.journal);
  EXPECT_GT(dense.records, 0u);
}

// The sweeps below must together cover at least 200 distinct crash
// points (the crash-soak contract, see docs/crash_recovery.md); each
// asserts its own floor and the floors sum past 200.

TEST(CrashRecovery, FaultFreeSweep) {
  const Scenario s = fault_free_scenario();
  const std::string prefix = testing::TempDir() + "crt_ff";
  const Baseline baseline = run_baseline(s, prefix + "_base", 5);
  // Every crash point, including the no-crash edge N == total records.
  std::uint64_t points = 0;
  for (std::uint64_t n = 1; n <= baseline.records; ++n, ++points) {
    crash_and_recover(s, baseline, prefix, 5, n);
  }
  EXPECT_GE(points, 50u) << "workload too small for the sweep";
}

TEST(CrashRecovery, FaultySweep) {
  const Scenario s = faulty_scenario();
  const std::string prefix = testing::TempDir() + "crt_fault";
  const Baseline baseline = run_baseline(s, prefix + "_base", 5);
  std::uint64_t points = 0;
  for (std::uint64_t n = 1; n < baseline.records; ++n, ++points) {
    crash_and_recover(s, baseline, prefix, 5, n);
  }
  EXPECT_GE(points, 55u) << "workload too small for the sweep";
}

TEST(CrashRecovery, HeteroRackFaultSweep) {
  // Speed-scaled durations, placement constraints and rack bursts all
  // flow through the journal and the injector snapshot; every crash
  // point must still restore byte-identically.
  const Scenario s = hetero_rack_scenario();
  const std::string prefix = testing::TempDir() + "crt_hetero";
  const Baseline baseline = run_baseline(s, prefix + "_base", 5);
  std::uint64_t points = 0;
  for (std::uint64_t n = 1; n < baseline.records; n += 2, ++points) {
    crash_and_recover(s, baseline, prefix, 5, n);
  }
  EXPECT_GE(points, 25u) << "hetero workload too small for the sweep";
}

TEST(CrashRecovery, ColdRestoreSweep) {
  // snapshot_every = 0: no snapshots at all; recovery re-runs from
  // scratch with the whole valid journal as the verification queue.
  const Scenario s = fault_free_scenario();
  const std::string prefix = testing::TempDir() + "crt_cold";
  const Baseline baseline = run_baseline(s, prefix + "_base", 0);
  std::uint64_t points = 0;
  for (std::uint64_t n = 1; n < baseline.records; n += 2, ++points) {
    crash_and_recover(s, baseline, prefix, 0, n);
  }
  EXPECT_GE(points, 25u);
}

TEST(CrashRecovery, TornFinalRecordSweep) {
  // The crash tears the last journal record: truncate a seeded number of
  // bytes off the tail before resuming. The reader must fall back to the
  // last whole record and recovery must still converge byte-identically.
  const Scenario s = faulty_scenario();
  const std::string prefix = testing::TempDir() + "crt_torn";
  const Baseline baseline = run_baseline(s, prefix + "_base", 5);
  // fixed-seed crash-point sweep (lint-ok: rng-construction)
  std::mt19937_64 rng(0xC0FFEE);
  std::uint64_t points = 0;
  for (std::uint64_t n = 2; n < baseline.records; ++n, ++points) {
    DurabilityOptions dur;
    dur.journal_prefix = prefix;
    dur.snapshot_every = 5;
    dur.crash_after_records = n;
    const SimMetrics crashed = run_with(s, dur);
    EXPECT_TRUE(crashed.crash_stopped);
    const std::string partial = slurp(dur.journal_path());
    // Cut into (at most through) the final record.
    const std::uint64_t cut =
        1 + rng() % std::min<std::uint64_t>(partial.size() - 1, 24);
    tear_tail(dur.journal_path(), cut);

    dur.crash_after_records = 0;
    dur.restore = true;
    const SimMetrics resumed = run_with(s, dur);
    EXPECT_FALSE(resumed.crash_stopped);
    EXPECT_EQ(slurp(dur.journal_path()), baseline.journal)
        << "torn-tail recovery diverged (crash point " << n << ", cut " << cut
        << ")";
    expect_same_trace(resumed, baseline.metrics);
  }
  EXPECT_GE(points, 55u);
}

TEST(CrashRecovery, MidSnapshotCrashSweep) {
  // Kill the scheduler "while writing a snapshot": tear the snapshot
  // file's tail so its last record is unreadable. Recovery must fall
  // back to an earlier snapshot (or a cold restore) and still converge.
  const Scenario s = faulty_scenario();
  const std::string prefix = testing::TempDir() + "crt_snap";
  const Baseline baseline = run_baseline(s, prefix + "_base", 4);
  // fixed-seed crash-point sweep (lint-ok: rng-construction)
  std::mt19937_64 rng(0xBADF00D);
  std::uint64_t points = 0;
  for (std::uint64_t n = 5; n < baseline.records; n += 2, ++points) {
    DurabilityOptions dur;
    dur.journal_prefix = prefix;
    dur.snapshot_every = 4;
    dur.crash_after_records = n;
    const SimMetrics crashed = run_with(s, dur);
    EXPECT_TRUE(crashed.crash_stopped);
    const std::string snap = slurp(dur.snapshot_path());
    ASSERT_FALSE(snap.empty());
    tear_tail(dur.snapshot_path(), 1 + rng() % std::min<std::uint64_t>(
                                             snap.size() - 1, snap.size() / 2));

    dur.crash_after_records = 0;
    dur.restore = true;
    const SimMetrics resumed = run_with(s, dur);
    EXPECT_FALSE(resumed.crash_stopped);
    EXPECT_EQ(slurp(dur.journal_path()), baseline.journal)
        << "mid-snapshot recovery diverged (crash point " << n << ")";
    expect_same_trace(resumed, baseline.metrics);
  }
  EXPECT_GE(points, 25u);
}

TEST(CrashRecovery, BitFlipMidJournalTruncatesAndRecovers) {
  // A flipped byte in the middle of the journal fails that record's CRC;
  // the valid prefix ends there, recovery restores an earlier snapshot
  // and re-derives everything past the flip.
  const Scenario s = fault_free_scenario();
  const std::string prefix = testing::TempDir() + "crt_flip";
  const Baseline baseline = run_baseline(s, prefix, 5);
  std::string corrupted = baseline.journal;
  corrupted[corrupted.size() / 2] ^= 0x20;
  ASSERT_TRUE(io::write_text_file(prefix + ".journal", corrupted));

  DurabilityOptions dur;
  dur.journal_prefix = prefix;
  dur.snapshot_every = 5;
  dur.restore = true;
  const SimMetrics resumed = run_with(s, dur);
  EXPECT_FALSE(resumed.crash_stopped);
  EXPECT_EQ(slurp(dur.journal_path()), baseline.journal);
  expect_same_trace(resumed, baseline.metrics);
}

TEST(CrashRecovery, ResumeAfterCompletionIsIdempotent) {
  // Restoring a journal of a *finished* run replays nothing new and
  // leaves the file untouched.
  const Scenario s = fault_free_scenario();
  const std::string prefix = testing::TempDir() + "crt_idem";
  const Baseline baseline = run_baseline(s, prefix, 5);
  DurabilityOptions dur;
  dur.journal_prefix = prefix;
  dur.snapshot_every = 5;
  dur.restore = true;
  const SimMetrics resumed = run_with(s, dur);
  EXPECT_EQ(slurp(dur.journal_path()), baseline.journal);
  expect_same_trace(resumed, baseline.metrics);
}

#if GTEST_HAS_DEATH_TEST
TEST(CrashRecoveryDeath, RestoreWithoutJournalAborts) {
  const Scenario s = fault_free_scenario();
  DurabilityOptions dur;
  dur.journal_prefix = testing::TempDir() + "crt_missing_nonexistent";
  dur.restore = true;
  EXPECT_DEATH(run_with(s, dur), "cannot read the journal");
}
#endif

}  // namespace
}  // namespace mrcp::sim
