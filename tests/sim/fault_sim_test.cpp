// End-to-end fault injection through both simulation drivers: kills,
// rescheduling, determinism, and the fault-aware execution validator.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../test_util.h"
#include "sim/cluster_sim.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;
using testutil::make_workload;

MrcpConfig fast_mrcp_config() {
  MrcpConfig c;
  c.solve.time_limit_s = 0.5;
  c.solve.improvement_fails = 500;
  c.solve.lns_iterations = 5;
  c.validate_plans = true;
  return c;
}

/// Budget by fails/iterations only — the time limit must not bind, so
/// results are bit-reproducible across runs and thread counts.
MrcpConfig deterministic_mrcp_config(int threads) {
  MrcpConfig c;
  c.solve.time_limit_s = 60.0;
  c.solve.improvement_fails = 300;
  c.solve.lns_iterations = 4;
  c.solve.num_threads = threads;
  c.validate_plans = true;
  return c;
}

/// A workload long enough for an aggressive fault config to hit it.
Workload faulty_workload() {
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(make_job(i, Time{i * 2000}, Time{i * 2000}, Time{i * 2000 + 200000},
                            {Time{5000}, Time{5000}}, {Time{4000}}));
  }
  return make_workload(std::move(jobs), 3, 2, 2);
}

SimOptions aggressive_faults(std::uint64_t seed = 3) {
  SimOptions o;
  o.faults.mtbf_s = 8.0;
  o.faults.mttr_s = 4.0;
  o.faults.seed = seed;
  return o;
}

void expect_same_outcome(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (std::size_t i = 0; i < a.executed.size(); ++i) {
    EXPECT_EQ(a.executed[i].job, b.executed[i].job);
    EXPECT_EQ(a.executed[i].task_index, b.executed[i].task_index);
    EXPECT_EQ(a.executed[i].resource, b.executed[i].resource);
    EXPECT_EQ(a.executed[i].start, b.executed[i].start);
    EXPECT_EQ(a.executed[i].end, b.executed[i].end);
  }
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].late, b.records[i].late);
    EXPECT_EQ(a.records[i].failure_affected, b.records[i].failure_affected);
  }
  EXPECT_EQ(a.killed.size(), b.killed.size());
  EXPECT_EQ(a.failure.tasks_killed, b.failure.tasks_killed);
  EXPECT_EQ(a.failure.wasted_ticks, b.failure.wasted_ticks);
}

TEST(FaultSim, DisabledFaultsMatchDefaultRunMrcp) {
  const Workload w = faulty_workload();
  const SimMetrics plain = simulate_mrcp(w, fast_mrcp_config());
  SimOptions off;  // mtbf 0, straggler_prob 0 — but non-default idle knobs
  off.faults.mttr_s = 123.0;
  off.faults.seed = 99;
  const SimMetrics with_off = simulate_mrcp(w, fast_mrcp_config(), off);
  expect_same_outcome(plain, with_off);
  EXPECT_TRUE(with_off.downtime.empty());
  EXPECT_EQ(with_off.failure.resource_failures, 0u);
}

TEST(FaultSim, DisabledFaultsMatchDefaultRunMinedf) {
  const Workload w = faulty_workload();
  const SimMetrics plain = simulate_minedf(w);
  SimOptions off;
  off.faults.mttr_s = 123.0;
  off.faults.straggler_factor = 4.0;  // idle: prob stays 0
  const SimMetrics with_off =
      simulate_minedf(w, baseline::MinEdfConfig{}, off);
  expect_same_outcome(plain, with_off);
  EXPECT_TRUE(with_off.downtime.empty());
}

TEST(FaultSim, MrcpSurvivesFailures) {
  const Workload w = faulty_workload();
  // validate_execution runs inside (aborts on any inconsistency).
  const SimMetrics m =
      simulate_mrcp(w, fast_mrcp_config(), aggressive_faults());
  for (const JobRecord& r : m.records) EXPECT_TRUE(r.completed());
  EXPECT_GT(m.failure.resource_failures, 0u);
  EXPECT_GT(m.failure.tasks_killed, 0u);
  EXPECT_EQ(m.failure.tasks_killed, m.killed.size());
  Time wasted;
  for (const ExecutedTask& k : m.killed) {
    wasted += k.end - k.start;
    EXPECT_TRUE(m.records[static_cast<std::size_t>(k.job)].failure_affected);
  }
  EXPECT_EQ(m.failure.wasted_ticks, wasted);
  EXPECT_FALSE(m.downtime.empty());
}

TEST(FaultSim, MinedfSurvivesFailures) {
  const Workload w = faulty_workload();
  const SimMetrics m = simulate_minedf(w, baseline::MinEdfConfig{},
                                       aggressive_faults());
  for (const JobRecord& r : m.records) EXPECT_TRUE(r.completed());
  EXPECT_GT(m.failure.resource_failures, 0u);
  EXPECT_GT(m.failure.tasks_killed, 0u);
  EXPECT_EQ(m.failure.tasks_killed, m.killed.size());
  for (const ExecutedTask& k : m.killed) {
    EXPECT_TRUE(m.records[static_cast<std::size_t>(k.job)].failure_affected);
  }
}

TEST(FaultSim, FaultTraceIsCommonAcrossPolicies) {
  const Workload w = faulty_workload();
  const SimOptions o = aggressive_faults();
  const SimMetrics a = simulate_mrcp(w, fast_mrcp_config(), o);
  const SimMetrics b = simulate_minedf(w, baseline::MinEdfConfig{}, o);
  // The drivers stop injecting when their workload drains, so one trace
  // may extend past the other — but the common prefix is identical (the
  // injector never consults the policy).
  ASSERT_FALSE(a.downtime.empty());
  ASSERT_FALSE(b.downtime.empty());
  const std::size_t n = std::min(a.downtime.size(), b.downtime.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.downtime[i].resource, b.downtime[i].resource);
    EXPECT_EQ(a.downtime[i].start, b.downtime[i].start);
  }
}

TEST(FaultSim, RepeatedRunsAreIdentical) {
  const Workload w = faulty_workload();
  const SimOptions o = aggressive_faults();
  const SimMetrics a =
      simulate_mrcp(w, deterministic_mrcp_config(1), o);
  const SimMetrics b =
      simulate_mrcp(w, deterministic_mrcp_config(1), o);
  expect_same_outcome(a, b);
  const SimMetrics c = simulate_minedf(w, baseline::MinEdfConfig{}, o);
  const SimMetrics d = simulate_minedf(w, baseline::MinEdfConfig{}, o);
  expect_same_outcome(c, d);
}

TEST(FaultSim, MrcpSolverThreadCountDoesNotChangeOutcome) {
  const Workload w = faulty_workload();
  const SimOptions o = aggressive_faults();
  const SimMetrics one =
      simulate_mrcp(w, deterministic_mrcp_config(1), o);
  const SimMetrics four =
      simulate_mrcp(w, deterministic_mrcp_config(4), o);
  expect_same_outcome(one, four);
}

TEST(FaultSim, StragglersSlowTheJobDown) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {Time{2000}})}, 1, 1, 1);
  SimOptions o;
  o.faults.straggler_prob = 1.0;
  o.faults.straggler_factor = 2.0;

  const SimMetrics mrcp = simulate_mrcp(w, fast_mrcp_config(), o);
  EXPECT_EQ(mrcp.records[0].completion, Time{6000});  // (1000 + 2000) * 2
  EXPECT_EQ(mrcp.failure.straggler_tasks, 2u);

  const SimMetrics minedf = simulate_minedf(w, baseline::MinEdfConfig{}, o);
  EXPECT_EQ(minedf.records[0].completion, Time{6000});
  EXPECT_EQ(minedf.failure.straggler_tasks, 2u);
}

// ---- Fault-aware validator, exercised directly with hand-built traces.

Workload two_resource_workload() {
  // One map task of 100 ticks; two single-slot resources.
  return make_workload({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}}, {})}, 2, 1, 1);
}

TEST(ValidateExecutionFaults, AcceptsKilledAttemptAtFailure) {
  const Workload w = two_resource_workload();
  const std::vector<DownInterval> downtime = {{0, Time{50}, Time{200}}};
  const std::vector<ExecutedTask> killed = {{0, 0, 0, Time{0}, Time{50}}};
  const std::vector<ExecutedTask> executed = {{0, 0, 1, Time{50}, Time{150}}};
  EXPECT_EQ(validate_execution(w, executed, killed, downtime), "");
}

TEST(ValidateExecutionFaults, RejectsKillWithoutMatchingFailure) {
  const Workload w = two_resource_workload();
  const std::vector<DownInterval> downtime = {{0, Time{50}, Time{200}}};
  // Attempt ends at 40, but resource 0 fails at 50.
  const std::vector<ExecutedTask> killed = {{0, 0, 0, Time{0}, Time{40}}};
  const std::vector<ExecutedTask> executed = {{0, 0, 1, Time{50}, Time{150}}};
  EXPECT_NE(validate_execution(w, executed, killed, downtime), "");
}

TEST(ValidateExecutionFaults, RejectsKilledAttemptThatRanToCompletion) {
  const Workload w = two_resource_workload();
  const std::vector<DownInterval> downtime = {{0, Time{100}, Time{200}}};
  // 100 ticks is the full exec time — that is a completion, not a kill.
  const std::vector<ExecutedTask> killed = {{0, 0, 0, Time{0}, Time{100}}};
  const std::vector<ExecutedTask> executed = {{0, 0, 1, Time{100}, Time{200}}};
  EXPECT_NE(validate_execution(w, executed, killed, downtime), "");
}

TEST(ValidateExecutionFaults, RejectsExecutionDuringDowntime) {
  const Workload w = two_resource_workload();
  const std::vector<DownInterval> downtime = {{1, Time{60}, Time{120}}};
  // Successful run on resource 1 overlaps its [60, 120) outage.
  const std::vector<ExecutedTask> executed = {{0, 0, 1, Time{50}, Time{150}}};
  EXPECT_NE(validate_execution(w, executed, {}, downtime), "");
}

TEST(ValidateExecutionFaults, OpenDowntimeBlocksForever) {
  const Workload w = two_resource_workload();
  const std::vector<DownInterval> downtime = {{0, Time{50}, kNoTime}};
  // Resource 0 never comes back; anything on it after 50 must fail.
  const std::vector<ExecutedTask> executed = {{0, 0, 0, Time{60}, Time{160}}};
  EXPECT_NE(validate_execution(w, executed, {}, downtime), "");
  const std::vector<ExecutedTask> ok = {{0, 0, 1, Time{60}, Time{160}}};
  EXPECT_EQ(validate_execution(w, ok, {}, downtime), "");
}

TEST(ValidateExecutionFaults, KilledAttemptCountsTowardCapacity) {
  // Single resource with one map slot: a killed attempt overlapping the
  // successful one double-books the slot.
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}}, {})}, 1, 1, 1);
  const std::vector<DownInterval> downtime = {{0, Time{50}, Time{60}}};
  const std::vector<ExecutedTask> killed = {{0, 0, 0, Time{10}, Time{50}}};
  // Overlaps the killed attempt's [10, 50) occupancy.
  const std::vector<ExecutedTask> bad = {{0, 0, 0, Time{20}, Time{120}}};
  EXPECT_NE(validate_execution(w, bad, killed, downtime), "");
  // Starting after the repair is fine.
  const std::vector<ExecutedTask> good = {{0, 0, 0, Time{60}, Time{160}}};
  EXPECT_EQ(validate_execution(w, good, killed, downtime), "");
}

}  // namespace
}  // namespace mrcp::sim
