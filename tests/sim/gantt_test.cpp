#include "sim/gantt.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/mrcp_rm.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;

Plan plan_for(const std::vector<Job>& jobs, const Cluster& cluster) {
  MrcpConfig cfg;
  cfg.solve.time_limit_s = 1.0;
  cfg.defer_future_jobs = false;
  MrcpRm rm(cluster, cfg);
  for (const Job& j : jobs) rm.submit(j, Time{0});
  return rm.reschedule(Time{0});
}

TEST(Gantt, EmptyPlanRendersEmpty) {
  Plan plan;
  EXPECT_EQ(render_gantt(plan, Cluster::homogeneous(2, 1, 1)), "");
}

TEST(Gantt, RowsForUsedResourcePhases) {
  const Cluster cluster = Cluster::homogeneous(2, 1, 1);
  const Plan plan =
      plan_for({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {Time{500}})}, cluster);
  const std::string chart = render_gantt(plan, cluster);
  EXPECT_NE(chart.find("/map"), std::string::npos);
  EXPECT_NE(chart.find("/reduce"), std::string::npos);
  // Job id digit appears.
  EXPECT_NE(chart.find('0'), std::string::npos);
}

TEST(Gantt, PhaseFiltering) {
  const Cluster cluster = Cluster::homogeneous(1, 1, 1);
  const Plan plan =
      plan_for({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {Time{500}})}, cluster);
  GanttOptions opts;
  opts.include_reduce = false;
  const std::string chart = render_gantt(plan, cluster, opts);
  EXPECT_NE(chart.find("/map"), std::string::npos);
  EXPECT_EQ(chart.find("/reduce"), std::string::npos);
}

TEST(Gantt, WidthControlsLineLength) {
  const Cluster cluster = Cluster::homogeneous(1, 1, 1);
  const Plan plan = plan_for({make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {})}, cluster);
  GanttOptions opts;
  opts.width = 20;
  const std::string chart = render_gantt(plan, cluster, opts);
  // Find the row line and measure the cell area between the pipes.
  const auto bar = chart.find('|');
  ASSERT_NE(bar, std::string::npos);
  const auto end = chart.find('|', bar + 1);
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(end - bar - 1, 20u);
}

TEST(Gantt, TwoJobsDistinctDigits) {
  const Cluster cluster = Cluster::homogeneous(2, 1, 1);
  const Plan plan = plan_for(
      {
          make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {}),
          make_job(1, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {}),
      },
      cluster);
  const std::string chart = render_gantt(plan, cluster);
  EXPECT_NE(chart.find('0'), std::string::npos);
  EXPECT_NE(chart.find('1'), std::string::npos);
}

TEST(Gantt, DowntimeOverlayMarksX) {
  const Cluster cluster = Cluster::homogeneous(2, 1, 1);
  const Plan plan = plan_for(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {})}, cluster);
  // Outage on resource 1 (which runs nothing) inside the plan's span.
  const std::vector<DownInterval> downtime = {{1, Time{200}, Time{800}}};
  GanttOptions options;
  options.downtime = &downtime;
  const std::string chart = render_gantt(plan, cluster, options);
  EXPECT_NE(chart.find('X'), std::string::npos);
  EXPECT_NE(chart.find("r1/"), std::string::npos);  // row now rendered

  // Tasks win the bucket: an overlay on the busy resource never
  // overwrites the job digit.
  const std::vector<DownInterval> on_busy = {{0, Time{0}, Time{1000}}};
  options.downtime = &on_busy;
  const std::string busy_chart = render_gantt(plan, cluster, options);
  EXPECT_NE(busy_chart.find('0'), std::string::npos);

  // Without the overlay, no X appears.
  EXPECT_EQ(render_gantt(plan, cluster).find('X'), std::string::npos);
}

TEST(Gantt, SharedBucketMarksHash) {
  // Capacity-2 row with two concurrent tasks in the same bucket.
  const Cluster cluster = Cluster::homogeneous(1, 2, 1);
  const Plan plan = plan_for(
      {
          make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}, Time{1000}}, {}),
      },
      cluster);
  const std::string chart = render_gantt(plan, cluster);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

}  // namespace
}  // namespace mrcp::sim
