#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mrcp::sim {
namespace {

using testutil::make_job;
using testutil::make_workload;

MrcpConfig fast_mrcp_config() {
  MrcpConfig c;
  c.solve.time_limit_s = 0.5;
  c.solve.improvement_fails = 500;
  c.solve.lns_iterations = 5;
  c.validate_plans = true;
  return c;
}

TEST(SimulateMrcp, SingleJobCompletesOnTime) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{200}}, {Time{300}})}, 2, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  ASSERT_EQ(m.records.size(), 1u);
  EXPECT_TRUE(m.records[0].completed());
  EXPECT_EQ(m.records[0].completion, Time{500});  // maps parallel 200, reduce 300
  EXPECT_FALSE(m.records[0].late);
  const auto agg = m.aggregate();
  EXPECT_EQ(agg.late, 0);
  EXPECT_DOUBLE_EQ(agg.percent_late, 0.0);
}

TEST(SimulateMrcp, LateJobDetected) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{100}, {Time{500}}, {})}, 1, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  EXPECT_TRUE(m.records[0].late);
  EXPECT_EQ(m.aggregate().late, 1);
}

TEST(SimulateMrcp, TwoJobsShareCluster) {
  const Workload w = make_workload(
      {
          make_job(0, Time{0}, Time{0}, Time{100000}, {Time{300}, Time{300}}, {Time{100}}),
          make_job(1, Time{50}, Time{50}, Time{100000}, {Time{200}}, {Time{100}}),
      },
      2, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  EXPECT_TRUE(m.records[0].completed());
  EXPECT_TRUE(m.records[1].completed());
  EXPECT_EQ(m.aggregate().late, 0);
}

TEST(SimulateMrcp, ArRequestWaitsForEarliestStart) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{5000}, Time{100000}, {Time{100}}, {})}, 1, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  EXPECT_EQ(m.records[0].completion, Time{5100});
  // Turnaround is measured from s_j (paper: CT_j - s_j).
  EXPECT_EQ(m.records[0].turnaround(), Time{100});
}

TEST(SimulateMrcp, DeferralDoesNotChangeOutcome) {
  MrcpConfig defer = fast_mrcp_config();
  defer.defer_future_jobs = true;
  MrcpConfig nodefer = fast_mrcp_config();
  nodefer.defer_future_jobs = false;
  const Workload w = make_workload(
      {
          make_job(0, Time{0}, Time{3000}, Time{100000}, {Time{100}, Time{100}}, {Time{50}}),
          make_job(1, Time{10}, Time{10}, Time{100000}, {Time{200}}, {}),
      },
      2, 1, 1);
  const SimMetrics a = simulate_mrcp(w, defer);
  const SimMetrics b = simulate_mrcp(w, nodefer);
  EXPECT_EQ(a.aggregate().late, b.aggregate().late);
  EXPECT_TRUE(a.records[0].completed());
  EXPECT_TRUE(b.records[0].completed());
}

TEST(SimulateMrcp, ManyJobsAllComplete) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(i, Time{i * 100}, Time{i * 100}, Time{i * 100 + 50000},
                            {Time{100}, Time{150}, Time{200}}, {Time{250}}));
  }
  const Workload w = make_workload(std::move(jobs), 4, 2, 2);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  for (const JobRecord& r : m.records) EXPECT_TRUE(r.completed());
  EXPECT_GT(m.rm_invocations, 0u);
  EXPECT_GT(m.total_sched_seconds, 0.0);
}

TEST(SimulateMinedf, SingleJobCompletes) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{10000}, {Time{100}, Time{200}}, {Time{300}})}, 2, 1, 1);
  const SimMetrics m = simulate_minedf(w);
  EXPECT_EQ(m.records[0].completion, Time{500});
  EXPECT_FALSE(m.records[0].late);
}

TEST(SimulateMinedf, LateJobDetected) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{100}, {Time{500}}, {})}, 1, 1, 1);
  const SimMetrics m = simulate_minedf(w);
  EXPECT_TRUE(m.records[0].late);
}

TEST(SimulateMinedf, ArRequestHonoured) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{5000}, Time{100000}, {Time{100}}, {})}, 1, 1, 1);
  const SimMetrics m = simulate_minedf(w);
  EXPECT_EQ(m.records[0].completion, Time{5100});
}

TEST(SimulateMinedf, ManyJobsAllComplete) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job(i, Time{i * 100}, Time{i * 100}, Time{i * 100 + 50000},
                            {Time{100}, Time{150}, Time{200}}, {Time{250}}));
  }
  const Workload w = make_workload(std::move(jobs), 4, 2, 2);
  const SimMetrics m = simulate_minedf(w);
  for (const JobRecord& r : m.records) EXPECT_TRUE(r.completed());
}

TEST(ValidateExecution, CatchesMissingTask) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{10}}, {})}, 1, 2, 1);
  std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{10}}};
  EXPECT_NE(validate_execution(w, executed), "");
}

TEST(ValidateExecution, CatchesCapacityViolation) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{10}}, {})}, 1, 1, 1);
  std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{10}}, {0, 1, 0, Time{5}, Time{15}}};
  EXPECT_NE(validate_execution(w, executed), "");
}

TEST(ValidateExecution, CatchesPrecedenceViolation) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {Time{10}})}, 1, 1, 1);
  std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{10}}, {0, 1, 0, Time{5}, Time{15}}};
  EXPECT_NE(validate_execution(w, executed), "");
}

TEST(ValidateExecution, CatchesWrongDuration) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {})}, 1, 1, 1);
  std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{99}}};
  EXPECT_NE(validate_execution(w, executed), "");
}

TEST(ValidateExecution, AcceptsCleanExecution) {
  const Workload w =
      make_workload({make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {Time{20}})}, 1, 1, 1);
  std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{10}}, {0, 1, 0, Time{10}, Time{30}}};
  EXPECT_EQ(validate_execution(w, executed), "");
}

TEST(ValidateExecution, NetDemandOnZeroCapacityResourceFails) {
  // Mixed cluster: resource 0 has no link capacity, resource 1 does.
  // Running a net-demanding task on resource 0 must fail validation —
  // not silently skip the network sweep.
  Workload w;
  w.cluster.add_resource(1, 1, /*net=*/0);
  w.cluster.add_resource(1, 1, /*net=*/10);
  Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {});
  j.map_tasks[0].net_demand = 5;
  w.jobs.push_back(j);

  const std::vector<ExecutedTask> on_zero_cap = {{0, 0, 0, Time{0}, Time{10}}};
  EXPECT_NE(validate_execution(w, on_zero_cap), "");
  const std::vector<ExecutedTask> on_linked = {{0, 0, 1, Time{0}, Time{10}}};
  EXPECT_EQ(validate_execution(w, on_linked), "");
}

TEST(ValidateExecution, AllZeroNetClusterIgnoresNetDemand) {
  // When no resource models links, net demand is unconstrained (the
  // legacy no-network workloads).
  Workload w;
  w.cluster.add_resource(1, 1, /*net=*/0);
  Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {});
  j.map_tasks[0].net_demand = 5;
  w.jobs.push_back(j);
  const std::vector<ExecutedTask> executed = {{0, 0, 0, Time{0}, Time{10}}};
  EXPECT_EQ(validate_execution(w, executed), "");
}

TEST(SimulateMrcp, TurnaroundBatchCiMatchesAggregateMean) {
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(make_job(i, Time{i * 500}, Time{i * 500}, Time{i * 500 + 100000},
                            {Time{100}, Time{150}}, {Time{200}}));
  }
  const Workload w = make_workload(std::move(jobs), 4, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  const BatchMeansResult bm = m.turnaround_batch_ci(0.0, 10);
  EXPECT_NEAR(bm.mean, m.aggregate(0.0).mean_turnaround_s, 1e-9);
  EXPECT_EQ(bm.batches, 10u);
  EXPECT_GE(bm.half_width, 0.0);
}

TEST(SimulateMrcp, TurnaroundUsesEarliestStartNotArrival) {
  // Job arrives at 0 with s_j = 1000; completes at 1100.
  // T = CT - s_j = 100, not 1100.
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{1000}, Time{100000}, {Time{100}}, {})}, 1, 1, 1);
  const SimMetrics m = simulate_mrcp(w, fast_mrcp_config());
  EXPECT_NEAR(m.aggregate().mean_turnaround_s, 0.1, 1e-9);
}

}  // namespace
}  // namespace mrcp::sim
