// Heterogeneous clusters and multi-slot task demands (q_t > 1) through
// the full stack. The paper keeps q_t = 1 and homogeneous resources in
// its evaluation; the model (§III.A) allows both, so the library must
// handle them — multi-slot demands force the direct (non-§V.D) CP
// formulation.
#include <gtest/gtest.h>

#include "core/matchmaker.h"
#include "core/mrcp_rm.h"
#include "cp/solver.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

Cluster mixed_cluster() {
  Cluster c;
  c.add_resource(4, 0);  // map-heavy node
  c.add_resource(0, 4);  // reduce-only node
  c.add_resource(1, 1);  // small node
  return c;
}

TEST(Heterogeneous, ClusterAccounting) {
  const Cluster c = mixed_cluster();
  EXPECT_EQ(c.total_map_slots(), 5);
  EXPECT_EQ(c.total_reduce_slots(), 5);
}

TEST(Heterogeneous, MrcpSchedulesAcrossMixedNodes) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}, Time{100}, Time{100}}, {Time{200}, Time{200}})};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  // 5 maps over 5 map slots in parallel (100), then reduces in parallel.
  EXPECT_EQ(m.records[0].completion, Time{300});
}

TEST(Heterogeneous, MinedfHandlesMixedNodes) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}}, {Time{200}})};
  const sim::SimMetrics m = sim::simulate_minedf(w);
  EXPECT_TRUE(m.records[0].completed());
}

TEST(Heterogeneous, ReduceOnlyNodeNeverRunsMaps) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{50}, Time{50}, Time{50}, Time{50}, Time{50}, Time{50}}, {})};
  MrcpConfig cfg;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  for (const sim::ExecutedTask& et : m.executed) {
    EXPECT_NE(et.resource, 1) << "map ran on the reduce-only node";
  }
}

TEST(MultiSlotDemand, CpSearchSerializesHeavyTasks) {
  // Two tasks each needing 2 of 3 slots: cannot overlap.
  cp::Model m;
  m.add_resource(3, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, /*demand=*/2);
  m.add_task(j, cp::Phase::kMap, Time{100}, /*demand=*/2);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(cp::validate_solution(m, r.best), "");
  EXPECT_EQ(r.best.job_completion[0], Time{200});
}

TEST(MultiSlotDemand, MixesWithUnitTasks) {
  // demand-2 task + demand-1 task on 3 slots: can overlap.
  cp::Model m;
  m.add_resource(3, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, 2);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(r.best.job_completion[0], Time{100});
}

TEST(MultiSlotDemand, RmFallsBackToDirectModel) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}}, {});
  job.map_tasks[0].res_req = 2;
  job.map_tasks[1].res_req = 2;
  Workload w;
  w.jobs = {job};
  w.cluster = Cluster::homogeneous(2, 2, 1);  // 2 slots per resource
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  // Each heavy map fills one resource completely; both can run at once
  // (different resources) -> 100.
  EXPECT_EQ(m.records[0].completion, Time{100});
}

TEST(MultiSlotDemand, SerializesWhenOnlyOneResourceFits) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}}, {});
  job.map_tasks[0].res_req = 2;
  job.map_tasks[1].res_req = 2;
  Workload w;
  w.jobs = {job};
  Cluster c;
  c.add_resource(2, 1);  // only this one fits a demand-2 task
  c.add_resource(1, 1);
  w.cluster = c;
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  EXPECT_EQ(m.records[0].completion, Time{200});  // serialized on resource 0
}

TEST(Heterogeneous, RegroupedClusterRunsWorkload) {
  // A §V.D-regrouped (uneven) cluster used directly as the system.
  Workload w;
  w.cluster = compute_regrouping(10, 10, 5, 3);
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{60}, Time{60}, Time{60}, Time{60}}, {Time{80}, Time{80}})};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  EXPECT_TRUE(m.records[0].completed());
}

}  // namespace
}  // namespace mrcp
