// Heterogeneous clusters and multi-slot task demands (q_t > 1) through
// the full stack. The paper keeps q_t = 1 and homogeneous resources in
// its evaluation; the model (§III.A) allows both, so the library must
// handle them — multi-slot demands force the direct (non-§V.D) CP
// formulation.
#include <gtest/gtest.h>

#include <set>

#include "core/matchmaker.h"
#include "core/mrcp_rm.h"
#include "cp/solver.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

Cluster mixed_cluster() {
  Cluster c;
  c.add_resource(4, 0);  // map-heavy node
  c.add_resource(0, 4);  // reduce-only node
  c.add_resource(1, 1);  // small node
  return c;
}

TEST(Heterogeneous, ClusterAccounting) {
  const Cluster c = mixed_cluster();
  EXPECT_EQ(c.total_map_slots(), 5);
  EXPECT_EQ(c.total_reduce_slots(), 5);
}

TEST(Heterogeneous, MrcpSchedulesAcrossMixedNodes) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}, Time{100}, Time{100}}, {Time{200}, Time{200}})};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  // 5 maps over 5 map slots in parallel (100), then reduces in parallel.
  EXPECT_EQ(m.records[0].completion, Time{300});
}

TEST(Heterogeneous, MinedfHandlesMixedNodes) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}}, {Time{200}})};
  const sim::SimMetrics m = sim::simulate_minedf(w);
  EXPECT_TRUE(m.records[0].completed());
}

TEST(Heterogeneous, ReduceOnlyNodeNeverRunsMaps) {
  Workload w;
  w.cluster = mixed_cluster();
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{50}, Time{50}, Time{50}, Time{50}, Time{50}, Time{50}}, {})};
  MrcpConfig cfg;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  for (const sim::ExecutedTask& et : m.executed) {
    EXPECT_NE(et.resource, 1) << "map ran on the reduce-only node";
  }
}

TEST(MultiSlotDemand, CpSearchSerializesHeavyTasks) {
  // Two tasks each needing 2 of 3 slots: cannot overlap.
  cp::Model m;
  m.add_resource(3, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, /*demand=*/2);
  m.add_task(j, cp::Phase::kMap, Time{100}, /*demand=*/2);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(cp::validate_solution(m, r.best), "");
  EXPECT_EQ(r.best.job_completion[0], Time{200});
}

TEST(MultiSlotDemand, MixesWithUnitTasks) {
  // demand-2 task + demand-1 task on 3 slots: can overlap.
  cp::Model m;
  m.add_resource(3, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, 2);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(r.best.job_completion[0], Time{100});
}

TEST(MultiSlotDemand, RmFallsBackToDirectModel) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}}, {});
  job.map_tasks[0].res_req = 2;
  job.map_tasks[1].res_req = 2;
  Workload w;
  w.jobs = {job};
  w.cluster = Cluster::homogeneous(2, 2, 1);  // 2 slots per resource
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  // Each heavy map fills one resource completely; both can run at once
  // (different resources) -> 100.
  EXPECT_EQ(m.records[0].completion, Time{100});
}

TEST(MultiSlotDemand, SerializesWhenOnlyOneResourceFits) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}}, {});
  job.map_tasks[0].res_req = 2;
  job.map_tasks[1].res_req = 2;
  Workload w;
  w.jobs = {job};
  Cluster c;
  c.add_resource(2, 1);  // only this one fits a demand-2 task
  c.add_resource(1, 1);
  w.cluster = c;
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  EXPECT_EQ(m.records[0].completion, Time{200});  // serialized on resource 0
}

// ---- Speed axis -----------------------------------------------------
//
// Effective duration on a host is scale_duration(exec_time, speed):
// permille of the baseline, ceil rounding (docs/heterogeneous.md).

TEST(HeteroSpeed, SlowAndFastHostsScaleObservedDurations) {
  Cluster c;
  c.add_resource_hetero(1, 1, 0, /*speed=*/500, /*rack=*/0);   // half speed
  c.add_resource_hetero(1, 1, 0, /*speed=*/2000, /*rack=*/0);  // double speed
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{100}, Time{100}}, {});
  job.map_tasks[0].candidates = {0};  // pin to the slow host
  job.map_tasks[1].candidates = {1};  // pin to the fast host
  Workload w;
  w.cluster = c;
  w.jobs = {job};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  ASSERT_EQ(m.executed.size(), 2u);
  for (const sim::ExecutedTask& et : m.executed) {
    const Time observed = et.end - et.start;
    if (et.resource == 0) {
      EXPECT_EQ(observed, Time{200}) << "slow host must take twice as long";
    } else {
      EXPECT_EQ(observed, Time{50}) << "fast host must take half as long";
    }
  }
  EXPECT_EQ(m.records[0].completion, Time{200});
}

TEST(HeteroSpeed, CpMeetsDeadlineOnlyTheFastHostAllows) {
  // Base duration 100; deadline 60. Only the speed-2000 host (observed
  // duration 50) can meet it, so the planner must place the task there.
  Cluster c;
  c.add_resource_hetero(1, 1, 0, 1000, 0);
  c.add_resource_hetero(1, 1, 0, 2000, 0);
  Workload w;
  w.cluster = c;
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{60}, {Time{100}}, {})};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  ASSERT_EQ(m.executed.size(), 1u);
  EXPECT_EQ(m.executed[0].resource, 1);
  EXPECT_EQ(m.records[0].completion, Time{50});
  EXPECT_FALSE(m.records[0].late);
}

TEST(HeteroSpeed, MinedfRunsSpeedScaledTasks) {
  Cluster c;
  c.add_resource_hetero(2, 2, 0, 500, 0);
  c.add_resource_hetero(2, 2, 0, 1500, 1);
  Workload w;
  w.cluster = c;
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{90}, Time{90}}, {Time{60}})};
  const sim::SimMetrics m = sim::simulate_minedf(w);
  ASSERT_TRUE(m.records[0].completed());
  // Every observed duration must match the host's speed exactly — the
  // execution validator enforces this, so a green run is the assertion;
  // still, check the completion is consistent with *some* speed scaling
  // (never the unscaled base chain).
  for (const sim::ExecutedTask& et : m.executed) {
    const Resource& host = w.cluster.resource(et.resource);
    const Task& task =
        w.jobs[0].task(static_cast<std::size_t>(et.task_index));
    EXPECT_EQ(et.end - et.start, host.scaled_duration(task.exec_time));
  }
}

// ---- Placement axis -------------------------------------------------

TEST(HeteroPlacement, CandidateSetsConfineExecution) {
  Workload w;
  w.cluster = Cluster::homogeneous(3, 2, 2);
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{50}, Time{50}, Time{50}}, {Time{40}});
  for (Task& t : job.map_tasks) t.candidates = {2};
  w.jobs = {job};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  for (const sim::ExecutedTask& et : m.executed) {
    const Task& task =
        w.jobs[0].task(static_cast<std::size_t>(et.task_index));
    if (task.type == TaskType::kMap) {
      EXPECT_EQ(et.resource, 2) << "map escaped its candidate set";
    }
  }
}

TEST(HeteroPlacement, RackLocalityConfinesExecution) {
  Cluster c;
  c.add_resource_hetero(2, 2, 0, 1000, /*rack=*/0);
  c.add_resource_hetero(2, 2, 0, 1000, /*rack=*/0);
  c.add_resource_hetero(2, 2, 0, 1000, /*rack=*/1);
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{50}, Time{50}}, {});
  for (Task& t : job.map_tasks) t.racks = {1};
  Workload w;
  w.cluster = c;
  w.jobs = {job};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  for (const sim::ExecutedTask& et : m.executed) {
    EXPECT_EQ(w.cluster.resource(et.resource).rack, 1)
        << "task ran outside rack 1";
  }
  // Rack 1 has one machine with 2 map slots, so the two maps overlap.
  EXPECT_EQ(m.records[0].completion, Time{50});
}

TEST(HeteroPlacement, AntiAffinitySpreadsGroupAcrossResources) {
  Workload w;
  w.cluster = Cluster::homogeneous(3, 2, 2);
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{50}, Time{50}, Time{50}}, {});
  for (Task& t : job.map_tasks) t.affinity_group = 0;
  w.jobs = {job};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  std::set<ResourceId> hosts;
  for (const sim::ExecutedTask& et : m.executed) hosts.insert(et.resource);
  EXPECT_EQ(hosts.size(), 3u)
      << "anti-affinity group members shared a resource";
}

TEST(HeteroPlacement, MinedfHonorsCandidatesAndRacks) {
  Cluster c;
  c.add_resource_hetero(2, 2, 0, 1000, 0);
  c.add_resource_hetero(2, 2, 0, 1000, 1);
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000},
                     {Time{50}, Time{50}}, {Time{40}});
  job.map_tasks[0].candidates = {1};
  job.map_tasks[1].racks = {0};
  Workload w;
  w.cluster = c;
  w.jobs = {job};
  const sim::SimMetrics m = sim::simulate_minedf(w);
  ASSERT_TRUE(m.records[0].completed());
  for (const sim::ExecutedTask& et : m.executed) {
    const Task& task =
        w.jobs[0].task(static_cast<std::size_t>(et.task_index));
    if (!task.candidates.empty()) {
      EXPECT_EQ(et.resource, 1);
    }
    if (!task.racks.empty()) {
      EXPECT_EQ(w.cluster.resource(et.resource).rack, task.racks[0]);
    }
  }
}

TEST(Heterogeneous, RegroupedClusterRunsWorkload) {
  // A §V.D-regrouped (uneven) cluster used directly as the system.
  Workload w;
  w.cluster = compute_regrouping(10, 10, 5, 3);
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{60}, Time{60}, Time{60}, Time{60}}, {Time{80}, Time{80}})};
  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  EXPECT_TRUE(m.records[0].completed());
}

}  // namespace
}  // namespace mrcp
