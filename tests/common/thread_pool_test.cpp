#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace mrcp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(3);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins; queued tasks have run or been completed
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TasksObserveEachOthersWrites) {
  // submit/wait_idle must form a happens-before edge usable for the
  // solver's collect-then-fold pattern.
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(3), 3);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.run_indexed(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
  }
}

TEST(ThreadPool, RunIndexedFormsHappensBeforeEdge) {
  // Plain (non-atomic) writes into per-index slots must be visible to
  // the caller after run_indexed returns — the solver's padded result
  // slots rely on this barrier.
  ThreadPool pool(4);
  std::vector<int> results(512, 0);
  pool.run_indexed(results.size(),
                   [&](std::size_t i) { results[i] = static_cast<int>(i) + 1; });
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, RunIndexedReusableAndInteropsWithSubmit) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.run_indexed(10, [&](std::size_t) { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 11);
  }
}

TEST(ThreadPool, CurrentWorkerIdInRangeInsideBatchMinusOneOutside) {
  EXPECT_EQ(ThreadPool::current_worker_id(), -1);
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen_ids(64);
  for (auto& s : seen_ids) s.store(-2);
  pool.run_indexed(seen_ids.size(), [&](std::size_t i) {
    seen_ids[i].store(ThreadPool::current_worker_id());
  });
  for (auto& s : seen_ids) {
    EXPECT_GE(s.load(), 0);
    EXPECT_LT(s.load(), pool.num_threads());
  }
  EXPECT_EQ(ThreadPool::current_worker_id(), -1);
}

}  // namespace
}  // namespace mrcp
