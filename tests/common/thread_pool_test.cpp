#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace mrcp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns) {
  ThreadPool pool(3);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins; queued tasks have run or been completed
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TasksObserveEachOthersWrites) {
  // submit/wait_idle must form a happens-before edge usable for the
  // solver's collect-then-fold pattern.
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(3), 3);
}

}  // namespace
}  // namespace mrcp
