#include "common/flags.h"

#include <gtest/gtest.h>

#include <array>

namespace mrcp {
namespace {

Flags make_flags() {
  Flags flags("test program");
  flags.add_int("jobs", 100, "number of jobs")
      .add_double("lambda", 0.01, "arrival rate")
      .add_bool("verbose", false, "enable logging")
      .add_string("out", "", "csv output path");
  return flags;
}

// argv helper: const-casts string literals (argv contract is non-const).
template <std::size_t N>
bool parse(Flags& flags, std::array<const char*, N> args) {
  std::array<char*, N> argv;
  for (std::size_t i = 0; i < N; ++i) argv[i] = const_cast<char*>(args[i]);
  return flags.parse(static_cast<int>(N), argv.data());
}

TEST(Flags, Defaults) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 1>{"prog"}));
  EXPECT_EQ(flags.get_int("jobs"), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("lambda"), 0.01);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("out"), "");
}

TEST(Flags, EqualsSyntax) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 4>{
                               "prog", "--jobs=250", "--lambda=0.02",
                               "--out=results.csv"}));
  EXPECT_EQ(flags.get_int("jobs"), 250);
  EXPECT_DOUBLE_EQ(flags.get_double("lambda"), 0.02);
  EXPECT_EQ(flags.get_string("out"), "results.csv");
}

TEST(Flags, SpaceSyntax) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 5>{"prog", "--jobs", "42",
                                                      "--lambda", "1.5"}));
  EXPECT_EQ(flags.get_int("jobs"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("lambda"), 1.5);
}

TEST(Flags, BareBoolSetsTrue) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 2>{"prog", "--verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, BoolExplicitValues) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 2>{"prog", "--verbose=true"}));
  EXPECT_TRUE(flags.get_bool("verbose"));
  Flags flags2 = make_flags();
  EXPECT_TRUE(
      parse(flags2, std::array<const char*, 2>{"prog", "--verbose=false"}));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(Flags, UnknownFlagFails) {
  Flags flags = make_flags();
  EXPECT_FALSE(parse(flags, std::array<const char*, 2>{"prog", "--nope"}));
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, MalformedIntFails) {
  Flags flags = make_flags();
  EXPECT_FALSE(parse(flags, std::array<const char*, 2>{"prog", "--jobs=abc"}));
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, MissingValueFails) {
  Flags flags = make_flags();
  EXPECT_FALSE(parse(flags, std::array<const char*, 2>{"prog", "--jobs"}));
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, PositionalArgumentFails) {
  Flags flags = make_flags();
  EXPECT_FALSE(parse(flags, std::array<const char*, 2>{"prog", "positional"}));
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, HelpReturnsFalseButOk) {
  Flags flags = make_flags();
  EXPECT_FALSE(parse(flags, std::array<const char*, 2>{"prog", "--help"}));
  EXPECT_TRUE(flags.ok());
}

TEST(Flags, UsageListsAllFlags) {
  Flags flags = make_flags();
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("--lambda"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--out"), std::string::npos);
  EXPECT_NE(usage.find("number of jobs"), std::string::npos);
}

TEST(Flags, NegativeNumbers) {
  Flags flags = make_flags();
  EXPECT_TRUE(parse(flags, std::array<const char*, 3>{"prog", "--jobs", "-5"}));
  EXPECT_EQ(flags.get_int("jobs"), -5);
}

}  // namespace
}  // namespace mrcp
