#include "common/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace mrcp {
namespace {

TEST(Lag1Autocorr, ZeroForConstantAndShortSeries) {
  EXPECT_DOUBLE_EQ(lag1_autocorrelation(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(lag1_autocorrelation(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(lag1_autocorrelation(std::vector<double>{3, 3, 3, 3}), 0.0);
}

TEST(Lag1Autocorr, PositiveForTrendingSeries) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(lag1_autocorrelation(v), 0.9);
}

TEST(Lag1Autocorr, NegativeForAlternatingSeries) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(lag1_autocorrelation(v), -0.9);
}

TEST(BatchMeans, DegenerateInputs) {
  const auto empty = batch_means_ci(std::vector<double>{});
  EXPECT_EQ(empty.batches, 0u);
  const auto tiny = batch_means_ci(std::vector<double>{5.0, 7.0}, 20);
  EXPECT_DOUBLE_EQ(tiny.mean, 6.0);
  EXPECT_DOUBLE_EQ(tiny.half_width, 0.0);
}

TEST(BatchMeans, MeanMatchesPlainMeanWhenDivisible) {
  std::vector<double> v;
  RandomStream rng(3, 0);
  for (int i = 0; i < 400; ++i) v.push_back(rng.uniform_real(0, 10));
  const auto bm = batch_means_ci(v, 20);
  RunningStat s;
  for (double x : v) s.add(x);
  EXPECT_EQ(bm.batch_size, 20u);
  EXPECT_EQ(bm.discarded, 0u);
  EXPECT_NEAR(bm.mean, s.mean(), 1e-12);
}

TEST(BatchMeans, DiscardsRemainderAtFront) {
  std::vector<double> v(103, 1.0);
  const auto bm = batch_means_ci(v, 20);
  EXPECT_EQ(bm.batch_size, 5u);
  EXPECT_EQ(bm.discarded, 3u);
  EXPECT_DOUBLE_EQ(bm.mean, 1.0);
}

TEST(BatchMeans, IidSeriesMatchesClassicCiClosely) {
  RandomStream rng(7, 0);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.uniform_real(0, 1));
  const auto bm = batch_means_ci(v, 20);
  // For iid data the batch-means CI estimates the same quantity as the
  // classic CI; widths agree within statistical noise (factor ~2).
  RunningStat s;
  for (double x : v) s.add(x);
  const auto classic = confidence_interval(s);
  EXPECT_NEAR(bm.mean, classic.mean, 1e-12);
  EXPECT_LT(bm.half_width, classic.half_width * 3.0);
  EXPECT_GT(bm.half_width, classic.half_width / 3.0);
  EXPECT_LT(std::abs(bm.batch_lag1_autocorr), 0.5);
}

TEST(BatchMeans, AutocorrelatedSeriesWiderThanNaive) {
  // AR(1) with strong positive correlation: the naive per-observation CI
  // is far too narrow; batch means must report a wider interval.
  RandomStream rng(11, 0);
  std::vector<double> v;
  double x = 0.0;
  for (int i = 0; i < 4000; ++i) {
    x = 0.95 * x + rng.uniform_real(-1, 1);
    v.push_back(x);
  }
  RunningStat s;
  for (double y : v) s.add(y);
  const auto naive = confidence_interval(s);
  const auto bm = batch_means_ci(v, 20);
  EXPECT_GT(bm.half_width, 2.0 * naive.half_width);
}

TEST(BatchMeans, MoreDataShrinksInterval) {
  RandomStream rng(13, 0);
  auto make = [&](int n) {
    std::vector<double> v;
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform_real(0, 1));
    return v;
  };
  const auto small = batch_means_ci(make(400), 20);
  const auto large = batch_means_ci(make(40000), 20);
  EXPECT_LT(large.half_width, small.half_width);
}

}  // namespace
}  // namespace mrcp
