#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrcp {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 1000), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 10), 3.169, 1e-3);
  EXPECT_NEAR(t_critical(0.90, 10), 1.812, 1e-3);
}

TEST(ConfidenceIntervalTest, SingleSampleHasZeroWidth) {
  const auto ci = confidence_interval(std::vector<double>{4.2});
  EXPECT_DOUBLE_EQ(ci.mean, 4.2);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, KnownHalfWidth) {
  // Five values with mean 10, sd sqrt(2.5); se = sqrt(0.5);
  // t(0.975, df=4) = 2.776.
  const std::vector<double> v{8, 9, 10, 11, 12};
  const auto ci = confidence_interval(v);
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(2.5 / 5.0), 1e-3);
  EXPECT_EQ(ci.n, 5u);
}

TEST(ConfidenceIntervalTest, RelativeWidth) {
  ConfidenceInterval ci;
  ci.mean = 100.0;
  ci.half_width = 5.0;
  EXPECT_DOUBLE_EQ(ci.relative(), 0.05);
  ci.mean = 0.0;
  EXPECT_DOUBLE_EQ(ci.relative(), 0.0);
}

TEST(ConfidenceIntervalTest, IdenticalValuesZeroWidth) {
  const auto ci = confidence_interval(std::vector<double>{3, 3, 3, 3});
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(FormatCi, Renders) {
  ConfidenceInterval ci;
  ci.mean = 1.2345;
  ci.half_width = 0.01;
  EXPECT_EQ(format_ci(ci, 2), "1.23 ±0.01");
}

}  // namespace
}  // namespace mrcp
