#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "common/distributions.h"

namespace mrcp {
namespace {

TEST(SplitMix64, KnownNonTrivialOutputs) {
  // Distinct inputs map to distinct, non-trivial outputs.
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(ReplicationSeed, DistinctAcrossReplications) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t rep = 0; rep < 100; ++rep) {
    seeds.insert(replication_seed(42, rep));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(ReplicationSeed, DistinctAcrossBaseSeeds) {
  EXPECT_NE(replication_seed(1, 0), replication_seed(2, 0));
}

TEST(RandomStream, DeterministicForSameSeedAndStream) {
  RandomStream a(7, 3);
  RandomStream b(7, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(RandomStream, DifferentStreamsDiffer) {
  RandomStream a(7, 0);
  RandomStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomStream, UniformIntStaysInRangeAndHitsEndpoints) {
  RandomStream rng(1, 0);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, UniformIntDegenerateRange) {
  RandomStream rng(1, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RandomStream, BernoulliExtremes) {
  RandomStream rng(1, 0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng(9, 0);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomStream, ExponentialMean) {
  RandomStream rng(11, 0);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.01);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(RandomStream, UniformRealRange) {
  RandomStream rng(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(1.0, 2.0);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 2.0);
  }
}

TEST(Distributions, DiscreteUniformMean) {
  const DiscreteUniform du{1, 100};
  EXPECT_DOUBLE_EQ(du.mean(), 50.5);
  RandomStream rng(5, 0);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(du.sample(rng));
  EXPECT_NEAR(sum / n, 50.5, 1.5);
}

TEST(Distributions, LogNormalMeanMatchesClosedForm) {
  // Paper's map-task distribution: LN(9.9511, 1.6764) in ms.
  const LogNormal ln{9.9511, 1.6764};
  const double expected = std::exp(9.9511 + 0.5 * 1.6764);
  EXPECT_NEAR(ln.mean(), expected, 1e-9);
  RandomStream rng(13, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += ln.sample(rng);
  // Heavy-tailed: allow 10% relative error at this sample size.
  EXPECT_NEAR(sum / n / expected, 1.0, 0.10);
}

TEST(Distributions, ExponentialStruct) {
  const Exponential e{0.02};
  EXPECT_DOUBLE_EQ(e.mean(), 50.0);
}

TEST(Distributions, UniformStruct) {
  const Uniform u{1.0, 5.0};
  EXPECT_DOUBLE_EQ(u.mean(), 3.0);
  RandomStream rng(17, 0);
  for (int i = 0; i < 100; ++i) {
    const double v = u.sample(rng);
    ASSERT_GE(v, 1.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RandomStream, ShuffleIsPermutation) {
  RandomStream rng(19, 0);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto orig = v;
  rng.shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace mrcp
