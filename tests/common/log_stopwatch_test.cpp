#include <gtest/gtest.h>

#include <thread>

#include "common/log.h"
#include "common/stopwatch.h"

namespace mrcp {
namespace {

TEST(Log, LevelThresholdRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Messages below the threshold are discarded (no crash, no output check
  // needed beyond exercising the path).
  MRCP_LOG_DEBUG("discarded %d", 42);
  MRCP_LOG_ERROR("emitted %s", "once");
  set_log_level(before);
}

TEST(Log, AllLevelsExercisable) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kTrace);
  MRCP_LOG_TRACE("t");
  MRCP_LOG_DEBUG("d");
  MRCP_LOG_INFO("i");
  MRCP_LOG_WARN("w");
  MRCP_LOG_ERROR("e");
  set_log_level(before);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.elapsed_seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_GE(sw.elapsed_ns(), 15'000'000);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.015);
}

TEST(Stopwatch, Monotonic) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.elapsed_seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace mrcp
