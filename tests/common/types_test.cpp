// Boundary tests for the tick/second conversions in common/types.h.
//
// seconds_to_ticks must follow std::llround semantics: round to nearest,
// halves away from zero — in particular negative slack/lateness values
// round symmetrically with positive ones (the pre-fix `x + 0.5` cast
// truncated toward zero, mapping -0.5 ticks to 0 instead of -1).
#include "common/types.h"

#include <gtest/gtest.h>

namespace mrcp {
namespace {

TEST(SecondsToTicks, RoundsPositiveToNearest) {
  EXPECT_EQ(seconds_to_ticks(0.0), Time{0});
  EXPECT_EQ(seconds_to_ticks(1.0), Time{1000});
  EXPECT_EQ(seconds_to_ticks(0.0004), Time{0});
  EXPECT_EQ(seconds_to_ticks(0.0006), Time{1});
  EXPECT_EQ(seconds_to_ticks(1.2344), Time{1234});
  EXPECT_EQ(seconds_to_ticks(1.2346), Time{1235});
}

TEST(SecondsToTicks, HalfTickBoundaries) {
  // 0.0004999 s = 0.4999 ticks -> 0; 0.0005 s = 0.5 ticks -> 1 (half
  // away from zero), and symmetrically for negative inputs.
  EXPECT_EQ(seconds_to_ticks(0.0004999), Time{0});
  EXPECT_EQ(seconds_to_ticks(0.0005), Time{1});
  EXPECT_EQ(seconds_to_ticks(-0.0004999), Time{0});
  EXPECT_EQ(seconds_to_ticks(-0.0005), Time{-1});
  EXPECT_EQ(seconds_to_ticks(0.0015), Time{2});
  EXPECT_EQ(seconds_to_ticks(-0.0015), Time{-2});
}

TEST(SecondsToTicks, NegativeValuesRoundToNearest) {
  EXPECT_EQ(seconds_to_ticks(-1.0), Time{-1000});
  EXPECT_EQ(seconds_to_ticks(-0.0004), Time{0});
  EXPECT_EQ(seconds_to_ticks(-0.0006), Time{-1});
  EXPECT_EQ(seconds_to_ticks(-1.2344), Time{-1234});
  EXPECT_EQ(seconds_to_ticks(-1.2346), Time{-1235});
}

TEST(SecondsToTicks, ClampsToMaxTime) {
  EXPECT_EQ(seconds_to_ticks(1e300), kMaxTime);
  EXPECT_EQ(seconds_to_ticks(-1e300), -kMaxTime);
  // Exactly at the clamp edge (kMaxTime ticks expressed in seconds).
  const double edge = ticks_to_seconds(kMaxTime);
  EXPECT_EQ(seconds_to_ticks(edge), kMaxTime);
  EXPECT_EQ(seconds_to_ticks(-edge), -kMaxTime);
}

TEST(SecondsToTicks, RoundTripsWithTicksToSeconds) {
  for (Time t : {Time{0}, Time{1}, Time{999}, Time{1000}, Time{123456},
                 Time{-1}, Time{-999}, Time{-123456}}) {
    EXPECT_EQ(seconds_to_ticks(ticks_to_seconds(t)), t) << "t=" << t;
  }
}

TEST(SecondsToTicks, IsConstexpr) {
  static_assert(seconds_to_ticks(1.5) == Time{1500});
  static_assert(seconds_to_ticks(-0.0005) == Time{-1});
  static_assert(seconds_to_ticks(1e300) == kMaxTime);
  SUCCEED();
}

}  // namespace
}  // namespace mrcp
