// Boundary tests for the tick/second conversions in common/types.h.
//
// seconds_to_ticks must follow std::llround semantics: round to nearest,
// halves away from zero — in particular negative slack/lateness values
// round symmetrically with positive ones (the pre-fix `x + 0.5` cast
// truncated toward zero, mapping -0.5 ticks to 0 instead of -1).
#include "common/types.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace mrcp {
namespace {

TEST(SecondsToTicks, RoundsPositiveToNearest) {
  EXPECT_EQ(seconds_to_ticks(0.0), Time{0});
  EXPECT_EQ(seconds_to_ticks(1.0), Time{1000});
  EXPECT_EQ(seconds_to_ticks(0.0004), Time{0});
  EXPECT_EQ(seconds_to_ticks(0.0006), Time{1});
  EXPECT_EQ(seconds_to_ticks(1.2344), Time{1234});
  EXPECT_EQ(seconds_to_ticks(1.2346), Time{1235});
}

TEST(SecondsToTicks, HalfTickBoundaries) {
  // 0.0004999 s = 0.4999 ticks -> 0; 0.0005 s = 0.5 ticks -> 1 (half
  // away from zero), and symmetrically for negative inputs.
  EXPECT_EQ(seconds_to_ticks(0.0004999), Time{0});
  EXPECT_EQ(seconds_to_ticks(0.0005), Time{1});
  EXPECT_EQ(seconds_to_ticks(-0.0004999), Time{0});
  EXPECT_EQ(seconds_to_ticks(-0.0005), Time{-1});
  EXPECT_EQ(seconds_to_ticks(0.0015), Time{2});
  EXPECT_EQ(seconds_to_ticks(-0.0015), Time{-2});
}

TEST(SecondsToTicks, NegativeValuesRoundToNearest) {
  EXPECT_EQ(seconds_to_ticks(-1.0), Time{-1000});
  EXPECT_EQ(seconds_to_ticks(-0.0004), Time{0});
  EXPECT_EQ(seconds_to_ticks(-0.0006), Time{-1});
  EXPECT_EQ(seconds_to_ticks(-1.2344), Time{-1234});
  EXPECT_EQ(seconds_to_ticks(-1.2346), Time{-1235});
}

TEST(SecondsToTicks, ClampsToMaxTime) {
  EXPECT_EQ(seconds_to_ticks(1e300), kMaxTime);
  EXPECT_EQ(seconds_to_ticks(-1e300), -kMaxTime);
  // Exactly at the clamp edge (kMaxTime ticks expressed in seconds).
  const double edge = ticks_to_seconds(kMaxTime);
  EXPECT_EQ(seconds_to_ticks(edge), kMaxTime);
  EXPECT_EQ(seconds_to_ticks(-edge), -kMaxTime);
}

TEST(SecondsToTicks, RoundTripsWithTicksToSeconds) {
  for (Time t : {Time{0}, Time{1}, Time{999}, Time{1000}, Time{123456},
                 Time{-1}, Time{-999}, Time{-123456}}) {
    EXPECT_EQ(seconds_to_ticks(ticks_to_seconds(t)), t) << "t=" << t;
  }
}

TEST(SecondsToTicks, IsConstexpr) {
  static_assert(seconds_to_ticks(1.5) == Time{1500});
  static_assert(seconds_to_ticks(-0.0005) == Time{-1});
  static_assert(seconds_to_ticks(1e300) == kMaxTime);
  SUCCEED();
}

// The saturating arithmetic guards user-configurable delay folds
// (backpressure holds, park-retry delays): any overflow clamps to the
// time horizon instead of wrapping into UB (docs/crash_recovery.md
// relies on these being pure, too).

TEST(SaturatingAdd, PlainSumsAreExact) {
  EXPECT_EQ(saturating_add(Time{0}, Time{0}), Time{0});
  EXPECT_EQ(saturating_add(Time{1500}, Time{-500}), Time{1000});
  EXPECT_EQ(saturating_add(Time{-1200}, Time{-300}), Time{-1500});
}

TEST(SaturatingAdd, ClampsAtTheHorizon) {
  EXPECT_EQ(saturating_add(kMaxTime, Time{1}), kMaxTime);
  EXPECT_EQ(saturating_add(kMaxTime, kMaxTime), kMaxTime);
  EXPECT_EQ(saturating_add(-kMaxTime, Time{-1}), -kMaxTime);
  EXPECT_EQ(saturating_add(-kMaxTime, -kMaxTime), -kMaxTime);
  // One step inside the horizon stays exact; the next step saturates.
  const Time edge = kMaxTime - Time{1};
  EXPECT_EQ(saturating_add(edge, Time{1}), kMaxTime);
  EXPECT_EQ(saturating_add(edge, Time{2}), kMaxTime);
}

TEST(SaturatingAdd, Int64ExtremesDoNotWrap) {
  // Raw int64 extremes (outside the Time domain proper) are clamped
  // before the sum, so the arithmetic cannot overflow.
  const Time lo{std::numeric_limits<std::int64_t>::min()};
  const Time hi{std::numeric_limits<std::int64_t>::max()};
  EXPECT_EQ(saturating_add(hi, hi), kMaxTime);
  EXPECT_EQ(saturating_add(lo, lo), -kMaxTime);
  EXPECT_EQ(saturating_add(hi, lo), Time{0});
}

TEST(SaturatingMul, PlainProductsAreExact) {
  EXPECT_EQ(saturating_mul(Time{250}, 4), Time{1000});
  EXPECT_EQ(saturating_mul(Time{-250}, 4), Time{-1000});
  EXPECT_EQ(saturating_mul(Time{250}, -4), Time{-1000});
  EXPECT_EQ(saturating_mul(Time{-250}, -4), Time{1000});
  EXPECT_EQ(saturating_mul(Time{0}, 99), Time{0});
  EXPECT_EQ(saturating_mul(kMaxTime, 0), Time{0});
}

TEST(SaturatingMul, ClampsAtTheHorizon) {
  EXPECT_EQ(saturating_mul(kMaxTime, 2), kMaxTime);
  EXPECT_EQ(saturating_mul(kMaxTime, -2), -kMaxTime);
  EXPECT_EQ(saturating_mul(-kMaxTime, 2), -kMaxTime);
  EXPECT_EQ(saturating_mul(-kMaxTime, -2), kMaxTime);
  // The largest exact product right at the boundary stays exact.
  const std::int64_t half = kMaxTime.count() / 2;
  EXPECT_EQ(saturating_mul(Time{half}, 2), Time{half * 2});
  EXPECT_EQ(saturating_mul(Time{half + 1}, 2), kMaxTime);
}

TEST(SaturatingMul, Int64MinMagnitudeIsHandled) {
  // |int64 min| is not representable as a positive int64; the unsigned
  // magnitude path must still clamp cleanly instead of overflowing.
  const Time lo{std::numeric_limits<std::int64_t>::min()};
  EXPECT_EQ(saturating_mul(lo, 1), -kMaxTime);
  EXPECT_EQ(saturating_mul(lo, -1), kMaxTime);
  EXPECT_EQ(saturating_mul(Time{1}, std::numeric_limits<std::int64_t>::min()),
            -kMaxTime);
}

TEST(SaturatingArithmetic, IsConstexpr) {
  static_assert(saturating_add(kMaxTime, kMaxTime) == kMaxTime);
  static_assert(saturating_mul(kMaxTime, 8) == kMaxTime);
  static_assert(saturating_mul(Time{3}, 3) == Time{9});
  SUCCEED();
}

}  // namespace
}  // namespace mrcp
