// Durability I/O layer tests: CRC32C against published vectors, the
// encode/decode primitives (including the error-latching model that
// recovery relies on), and the checksummed record framing with its
// torn-tail / bit-flip semantics (docs/crash_recovery.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "common/io/codec.h"
#include "common/io/crc32c.h"
#include "common/io/file_io.h"
#include "common/io/record_io.h"

namespace mrcp::io {
namespace {

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The check value every CRC32C implementation must produce, plus the
  // RFC 3720 (iSCSI) test patterns.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  std::string ascending;
  for (int i = 0; i < 32; ++i) ascending.push_back(static_cast<char>(i));
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32c, ChunkedExtendMatchesWhole) {
  // fixed-seed property trials (lint-ok: rng-construction)
  std::mt19937_64 rng(0xC4C32Cu);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = rng() % 257;
    std::string data(size, '\0');
    for (char& c : data) c = static_cast<char>(rng());
    const std::uint32_t whole = crc32c(data);
    // Split at an arbitrary point: extending must be associative.
    const std::size_t cut = size == 0 ? 0 : rng() % (size + 1);
    std::uint32_t crc = crc32c_extend(0, data.data(), cut);
    crc = crc32c_extend(crc, data.data() + cut, size - cut);
    ASSERT_EQ(crc, whole) << "size=" << size << " cut=" << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] ^= static_cast<char>(1 << bit);
      ASSERT_NE(crc32c(flipped), clean) << "byte " << byte << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------------
// Encoder / Decoder
// ---------------------------------------------------------------------------

TEST(Codec, PrimitivesRoundTripSeeded) {
  // fixed-seed property trials (lint-ok: rng-construction)
  std::mt19937_64 rng(0xC0DEC);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint8_t a = static_cast<std::uint8_t>(rng());
    const std::uint32_t b = static_cast<std::uint32_t>(rng());
    const std::uint64_t c = rng();
    const std::int64_t d = static_cast<std::int64_t>(rng());
    const double e =
        std::uniform_real_distribution<double>(-1e18, 1e18)(rng);
    const bool f = (rng() & 1) != 0;
    const Ticks g{static_cast<std::int64_t>(rng())};
    std::string blob(rng() % 64, '\0');
    for (char& ch : blob) ch = static_cast<char>(rng());

    Encoder enc;
    enc.u8(a);
    enc.u32(b);
    enc.u64(c);
    enc.i64(d);
    enc.f64(e);
    enc.boolean(f);
    enc.ticks(g);
    enc.bytes(blob);

    Decoder dec(enc.str());
    ASSERT_EQ(dec.u8(), a);
    ASSERT_EQ(dec.u32(), b);
    ASSERT_EQ(dec.u64(), c);
    ASSERT_EQ(dec.i64(), d);
    ASSERT_EQ(dec.f64(), e);
    ASSERT_EQ(dec.boolean(), f);
    ASSERT_EQ(dec.ticks(), g);
    ASSERT_EQ(dec.bytes(), blob);
    ASSERT_TRUE(dec.done());
  }
}

TEST(Codec, LittleEndianLayoutIsFixed) {
  // The on-disk format must not depend on the host: spell the expected
  // bytes out explicitly.
  Encoder enc;
  enc.u32(0x01020304u);
  const std::string& s = enc.str();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(s[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(s[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(s[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(s[3]), 0x01);
}

TEST(Codec, ShortReadLatchesErrorWithOffset) {
  Encoder enc;
  enc.u32(7);
  Decoder dec(enc.str());
  EXPECT_EQ(dec.u32(), 7u);
  EXPECT_TRUE(dec.ok());
  // Reading past the end latches an error naming byte 4 and returns
  // zeros from then on — decode is total, never an abort.
  EXPECT_EQ(dec.u64(), 0u);
  EXPECT_FALSE(dec.ok());
  EXPECT_FALSE(dec.done());
  EXPECT_NE(dec.error().find("byte 4"), std::string::npos) << dec.error();
  EXPECT_EQ(dec.u32(), 0u);  // still zero, error unchanged
}

TEST(Codec, OversizedBytesLengthIsRejectedNotAllocated) {
  Encoder enc;
  enc.u32(0xFFFFFFFFu);  // bytes length prefix far beyond the buffer
  Decoder dec(enc.str());
  EXPECT_EQ(dec.bytes(), "");
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, SemanticFailLatchesAtCurrentOffset) {
  Encoder enc;
  enc.u8(9);
  Decoder dec(enc.str());
  (void)dec.u8();
  dec.fail("unsupported version");
  EXPECT_FALSE(dec.ok());
  EXPECT_NE(dec.error().find("unsupported version"), std::string::npos);
  EXPECT_NE(dec.error().find("byte 1"), std::string::npos) << dec.error();
}

TEST(Codec, DoneRequiresFullConsumption) {
  Encoder enc;
  enc.u8(1);
  enc.u8(2);
  Decoder dec(enc.str());
  (void)dec.u8();
  EXPECT_TRUE(dec.ok());
  EXPECT_FALSE(dec.done());  // one byte left over
  (void)dec.u8();
  EXPECT_TRUE(dec.done());
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

TEST(RecordIo, FrameAndReadBack) {
  std::string stream;
  stream += frame_record("alpha");
  stream += frame_record("");
  stream += frame_record(std::string("\x00\x01\x02", 3));
  const FramedData data = read_framed(stream);
  EXPECT_EQ(data.tail, ReadStatus::kEof);
  EXPECT_EQ(data.valid_bytes, stream.size());
  ASSERT_EQ(data.records.size(), 3u);
  EXPECT_EQ(data.records[0], "alpha");
  EXPECT_EQ(data.records[1], "");
  EXPECT_EQ(data.records[2], std::string("\x00\x01\x02", 3));
}

TEST(RecordIo, TornTailKeepsValidPrefixSeeded) {
  // 1000 seeded cuts: however the stream is torn, the reader must
  // return exactly the records whose frames end at or before the cut,
  // and valid_bytes must point at that boundary.
  // fixed-seed property trials (lint-ok: rng-construction)
  std::mt19937_64 rng(0xF4A3E5);
  std::vector<std::string> payloads;
  std::string stream;
  std::vector<std::size_t> boundaries{0};
  for (int i = 0; i < 40; ++i) {
    std::string p(rng() % 50, '\0');
    for (char& c : p) c = static_cast<char>(rng());
    payloads.push_back(p);
    stream += frame_record(p);
    boundaries.push_back(stream.size());
  }
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t cut = rng() % (stream.size() + 1);
    const FramedData data =
        read_framed(std::string_view(stream).substr(0, cut));
    std::size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(data.records.size(), expect_records) << "cut=" << cut;
    ASSERT_EQ(data.valid_bytes, boundaries[expect_records]) << "cut=" << cut;
    if (cut == boundaries[expect_records]) {
      ASSERT_EQ(data.tail, ReadStatus::kEof);
    } else {
      ASSERT_EQ(data.tail, ReadStatus::kTruncated);
      ASSERT_NE(data.error.find("torn frame"), std::string::npos);
    }
    for (std::size_t r = 0; r < expect_records; ++r) {
      ASSERT_EQ(data.records[r], payloads[r]);
    }
  }
}

TEST(RecordIo, BitFlipIsCorruptNotTorn) {
  std::string stream = frame_record("first") + frame_record("second");
  // Flip one payload bit inside the *first* record: trust must end at
  // the stream start even though the second record is intact.
  stream[8] ^= 0x01;
  const FramedData data = read_framed(stream);
  EXPECT_EQ(data.tail, ReadStatus::kCorrupt);
  EXPECT_EQ(data.records.size(), 0u);
  EXPECT_EQ(data.valid_bytes, 0u);
  EXPECT_NE(data.error.find("CRC mismatch"), std::string::npos);
}

TEST(RecordIo, ReaderParksAtLastValidBoundary) {
  const std::string a = frame_record("aa");
  std::string stream = a + frame_record("bb");
  stream.resize(stream.size() - 1);  // tear the final payload byte
  RecordReader reader(stream);
  std::string payload;
  ASSERT_EQ(reader.next(&payload), ReadStatus::kOk);
  EXPECT_EQ(payload, "aa");
  ASSERT_EQ(reader.next(&payload), ReadStatus::kTruncated);
  EXPECT_EQ(reader.offset(), a.size());
  EXPECT_EQ(reader.record_index(), 1u);
  // Parked: repeated reads report the same status at the same offset.
  ASSERT_EQ(reader.next(&payload), ReadStatus::kTruncated);
  EXPECT_EQ(reader.offset(), a.size());
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

TEST(FileIo, WriterAppendsAndFileReadsBack) {
  const std::string path = testing::TempDir() + "/mrcp_io_records.bin";
  {
    FileRecordWriter writer;
    ASSERT_TRUE(writer.open(path, /*truncate=*/true));
    EXPECT_TRUE(writer.append("one"));
    EXPECT_TRUE(writer.append("two"));
  }
  {
    // Reopen in append mode: recovery's path after truncating a tail.
    FileRecordWriter writer;
    ASSERT_TRUE(writer.open(path, /*truncate=*/false));
    EXPECT_TRUE(writer.append("three"));
  }
  bool opened = false;
  const FramedData data = read_framed_file(path, &opened);
  EXPECT_TRUE(opened);
  EXPECT_EQ(data.tail, ReadStatus::kEof);
  ASSERT_EQ(data.records.size(), 3u);
  EXPECT_EQ(data.records[2], "three");
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileReportsUnopened) {
  bool opened = true;
  const FramedData data = read_framed_file("/nonexistent/mrcp.journal",
                                           &opened);
  EXPECT_FALSE(opened);
  EXPECT_EQ(data.records.size(), 0u);
  EXPECT_EQ(data.tail, ReadStatus::kEof);
}

TEST(FileIo, RoundTripIsBinaryExact) {
  const std::string path = testing::TempDir() + "/mrcp_io_blob.bin";
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  ASSERT_TRUE(write_text_file(path, blob));
  EXPECT_TRUE(file_exists(path));
  std::string back;
  ASSERT_TRUE(read_file(path, &back));
  EXPECT_EQ(back, blob);
  std::remove(path.c_str());
}

TEST(FileIo, TruncateDropsTornTail) {
  const std::string path = testing::TempDir() + "/mrcp_io_trunc.bin";
  const std::string keep = frame_record("durable");
  ASSERT_TRUE(write_text_file(path, keep + "torn-garbage"));
  ASSERT_TRUE(truncate_file(path, keep.size()));
  std::string back;
  ASSERT_TRUE(read_file(path, &back));
  EXPECT_EQ(back, keep);
  // Growing a file is not truncation.
  EXPECT_FALSE(truncate_file(path, keep.size() + 100));
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
}

}  // namespace
}  // namespace mrcp::io
