#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mrcp {
namespace {

TEST(TableTest, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,2,3\n4,5,6\n");
}

TEST(TableTest, CellFormatters) {
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::int64_t{42}), "42");
  EXPECT_EQ(Table::cell(0.0, 3), "0.000");
}

TEST(TableTest, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({"x", "9"});
  const std::string path = testing::TempDir() + "/mrcp_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nx,9\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvBadPathFails) {
  Table t({"h"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_zzz/file.csv"));
}

}  // namespace
}  // namespace mrcp
