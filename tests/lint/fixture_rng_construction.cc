// mrcp-lint fixture: MUST be flagged by rule `rng-construction` (three
// findings: seeded engine, random_device, brace-init engine). Seeding
// does not help — construction outside RandomStream still forks the
// stream-split discipline. The reference pass-through is clean.
#include <random>

unsigned fixture_bad_rng() {
  std::mt19937_64 engine(42);       // finding 1
  std::random_device dev;           // finding 2
  auto eng2 = std::minstd_rand{7};  // finding 3
  return static_cast<unsigned>(engine() + dev() + eng2());
}

unsigned fixture_ok_passthrough(std::mt19937_64& shared) {
  return static_cast<unsigned>(shared());  // clean: reference, no engine
}
