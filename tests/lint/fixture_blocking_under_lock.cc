// mrcp-lint fixture: MUST be flagged by rule `blocking-under-lock`
// (three findings: sleep under std::lock_guard, pool wait under
// MutexLock, thread join under std::unique_lock). The sleep after the
// guard's scope closes is clean.
#include <chrono>
#include <mutex>
#include <thread>

struct FixturePool {
  void wait_idle() {}
};
struct Mutex {
  void lock() {}
  void unlock() {}
};
struct MutexLock {
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }
  Mutex& mu_;
};

void fixture_bad_blocking(std::mutex& m, Mutex& mu, FixturePool& pool,
                          std::thread& t) {
  {
    std::lock_guard<std::mutex> lock(m);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // finding 1
  }
  {
    MutexLock lock(mu);
    pool.wait_idle();  // finding 2
  }
  {
    std::unique_lock<std::mutex> lock(m);
    t.join();  // finding 3
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // clean
}
