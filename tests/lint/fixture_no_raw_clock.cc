// Lint fixture: MUST be flagged by lint.sh rule `no-raw-clock` — all
// three raw wall-clock entry points the extended pattern covers.
#include <chrono>
#include <ctime>

long fixture_bad_clock() {
  auto a = std::time(nullptr);
  auto b = std::chrono::system_clock::now().time_since_epoch().count();
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<long>(a) + static_cast<long>(b) + ts.tv_sec;
}
