// mrcp-lint fixture: MUST be flagged by rule `unordered-iteration`
// (twice: named container and inline expression), and the allow-listed
// loop MUST NOT be flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>

int fixture_bad_iteration() {
  std::unordered_map<std::string, int> scores;
  int total = 0;
  for (const auto& kv : scores) {  // finding 1: hash-order feeds `total`
    total += kv.second;
  }
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // finding 2: inline
    total += v;
  }
  // lint-ok: unordered-iteration
  for (const auto& kv : scores) {  // suppressed: order provably unused
    total += kv.second;
  }
  return total;
}
