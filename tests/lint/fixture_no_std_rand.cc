// Lint fixture: MUST be flagged by lint.sh rule `no-std-rand`.
// Not part of any build target — *.cc keeps it out of the lint sweep's
// --include filter; tests/lint/run_lint_fixtures.sh greps it on purpose.
#include <cstdlib>

int fixture_bad_rand() {
  return std::rand();  // global-state, unseeded: nondeterministic
}
