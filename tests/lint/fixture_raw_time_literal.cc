// mrcp-lint fixture: MUST be flagged by rule `raw-time-literal` (two
// findings), while Time{0}/Time{1} and the allow-listed constant stay
// clean. The runner passes this file with a src/-shaped virtual path so
// the production-code scope applies.
namespace mrcp {
class Ticks {
 public:
  constexpr Ticks() = default;
  constexpr explicit Ticks(long long count) : count_(count) {}

 private:
  long long count_ = 0;
};
using Time = Ticks;
}  // namespace mrcp

mrcp::Time fixture_bad_literals() {
  mrcp::Time epsilon{1};             // fine: unit-free epsilon
  mrcp::Time zero{0};                // fine: unit-free origin
  mrcp::Time bad{250};               // finding 1: 250 of... what?
  mrcp::Time also_bad = mrcp::Time{86'400'000};  // finding 2
  mrcp::Time blessed{604'800'000};   // lint-ok: raw-time-literal
  (void)epsilon;
  (void)zero;
  (void)also_bad;
  (void)blessed;
  return bad;
}
