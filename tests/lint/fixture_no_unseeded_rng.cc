// Lint fixture: MUST be flagged by lint.sh rule `no-unseeded-rng`.
#include <random>

int fixture_bad_engine() {
  std::mt19937 engine;  // default-constructed: same stream every run
  return static_cast<int>(engine());
}
