// Lint fixture: MUST be flagged by lint.sh rule `no-naked-new`.
struct FixtureWidget {
  int x = 0;
};

FixtureWidget* fixture_bad_alloc() {
  return new FixtureWidget();  // ownership should be unique_ptr/value
}
