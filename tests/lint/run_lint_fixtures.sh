#!/usr/bin/env bash
# Self-test of the static-analysis layer: every custom rule — the four
# grep rules in scripts/lint.sh and the four structural rules in
# mrcp-lint — must flag its fixture, and the clean fixture must flag
# nothing. A rule that silently stops matching (pattern typo, regex
# drift, refactored lexer) fails this test, which runs as a ctest.
#
# Usage: run_lint_fixtures.sh <path-to-mrcp-lint-binary>
set -uo pipefail
cd "$(dirname "$0")"

MRCP_LINT="${1:?usage: $0 <mrcp-lint binary>}"
REPO_ROOT="$(cd ../.. && pwd)"
fail=0

note() { echo "lint-fixtures: $*"; }
die() {
  echo "lint-fixtures: FAIL: $*" >&2
  fail=1
}

# --------------------------------------------------------------------------
# Grep rules: re-create each pattern exactly as scripts/lint.sh defines it
# (sourcing the definitions keeps this in sync by construction).
# --------------------------------------------------------------------------
declare -A GREP_RULE GREP_FIXTURE
GREP_RULE[no-std-rand]='\bstd::rand\b|\bsrand\s*\('
GREP_FIXTURE[no-std-rand]=fixture_no_std_rand.cc
GREP_RULE[no-unseeded-rng]='std::mt19937(_64)?\s+[A-Za-z_][A-Za-z0-9_]*\s*;|std::random_device'
GREP_FIXTURE[no-unseeded-rng]=fixture_no_unseeded_rng.cc
GREP_RULE[no-naked-new]='=\s*new\s+[A-Za-z_]|return\s+new\s+[A-Za-z_]'
GREP_FIXTURE[no-naked-new]=fixture_no_naked_new.cc
GREP_RULE[no-raw-clock]='std::time\s*\(|\bgettimeofday\s*\(|std::chrono::system_clock::now|\bclock_gettime\s*\('
GREP_FIXTURE[no-raw-clock]=fixture_no_raw_clock.cc

# The patterns above must not drift from scripts/lint.sh.
for rule in "${!GREP_RULE[@]}"; do
  if ! grep -qF "${GREP_RULE[$rule]}" "$REPO_ROOT/scripts/lint.sh"; then
    die "pattern for '$rule' differs from scripts/lint.sh — update both"
  fi
done

for rule in "${!GREP_RULE[@]}"; do
  fixture="${GREP_FIXTURE[$rule]}"
  if grep -qE "${GREP_RULE[$rule]}" "$fixture"; then
    note "grep rule '$rule' fires on $fixture"
  else
    die "grep rule '$rule' does NOT fire on $fixture"
  fi
  if grep -E "${GREP_RULE[$rule]}" fixture_clean.cc | grep -qv 'lint-ok'; then
    die "grep rule '$rule' over-matches fixture_clean.cc"
  fi
done

# --------------------------------------------------------------------------
# mrcp-lint rules. raw-time-literal is scoped to production code, so its
# fixture is staged under a src/-shaped path first.
# --------------------------------------------------------------------------
expect_rule() {
  local rule="$1" file="$2" expected="$3"
  local got
  got=$("$MRCP_LINT" "$file" 2>/dev/null | grep -c "\[$rule\]")
  if [[ "$got" -eq "$expected" ]]; then
    note "mrcp-lint rule '$rule' fires ${got}x on $(basename "$file")"
  else
    die "mrcp-lint rule '$rule': expected $expected finding(s) on $(basename "$file"), got $got"
  fi
}

expect_rule unordered-iteration fixture_unordered_iteration.cc 2
expect_rule rng-construction fixture_rng_construction.cc 3
expect_rule blocking-under-lock fixture_blocking_under_lock.cc 3

stage=$(mktemp -d)
trap 'rm -rf "$stage"' EXIT
mkdir -p "$stage/src/core"
cp fixture_raw_time_literal.cc "$stage/src/core/"
expect_rule raw-time-literal "$stage/src/core/fixture_raw_time_literal.cc" 2

# raw-file-io: fires under a generic src/ path, silent in the sanctioned
# homes (src/common/io/ here; src/sim/trace_export.* is the other).
mkdir -p "$stage/src/common/io"
cp fixture_raw_file_io.cc "$stage/src/core/"
cp fixture_raw_file_io.cc "$stage/src/common/io/"
expect_rule raw-file-io "$stage/src/core/fixture_raw_file_io.cc" 3
expect_rule raw-file-io "$stage/src/common/io/fixture_raw_file_io.cc" 0

# Clean fixture: zero findings from any mrcp-lint rule.
if "$MRCP_LINT" fixture_clean.cc >/dev/null 2>&1; then
  note "mrcp-lint clean fixture passes with 0 findings"
else
  die "mrcp-lint reports findings on fixture_clean.cc"
fi

# JSON output stays machine-readable: a finding run must emit valid-ish
# JSON with the rule name in it.
json=$("$MRCP_LINT" --json fixture_rng_construction.cc 2>/dev/null)
case "$json" in
  \[*rng-construction*\]*) note "mrcp-lint --json emits findings" ;;
  *) die "mrcp-lint --json output malformed: $json" ;;
esac

if [[ $fail -eq 0 ]]; then
  echo "lint-fixtures: all rules fire; clean fixture clean — OK"
else
  exit 1
fi
