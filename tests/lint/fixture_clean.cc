// Lint fixture: MUST produce zero findings from every grep rule and
// every mrcp-lint rule — guards against rules that over-match.
#include <map>
#include <memory>
#include <vector>

namespace mrcp {
class Ticks {
 public:
  constexpr Ticks() = default;
  constexpr explicit Ticks(long long count) : count_(count) {}

 private:
  long long count_ = 0;
};
using Time = Ticks;
}  // namespace mrcp

int fixture_clean(const std::map<int, int>& ordered) {
  mrcp::Time zero{0};
  mrcp::Time one{1};
  (void)zero;
  (void)one;
  auto owned = std::make_unique<std::vector<int>>();
  int total = 0;
  for (const auto& kv : ordered) total += kv.second;  // ordered: fine
  return total + static_cast<int>(owned->size());
}
