// mrcp-lint fixture: MUST be flagged by rule `raw-file-io` (three
// findings), while read-only std::ifstream and the allow-listed write
// stay clean. The runner stages this file with a src/-shaped virtual
// path so the production-code scope applies, and a second copy under
// src/common/io/ to prove the sanctioned homes suppress the rule.
#include <cstdio>
#include <fstream>
#include <string>

bool fixture_bad_file_io(const std::string& path) {
  std::ifstream in(path);             // fine: read-only
  std::ofstream out(path);            // finding 1: unframed write stream
  std::fstream rw(path);              // finding 2: write-capable stream
  std::FILE* f = fopen(path.c_str(), "wb");  // finding 3: C stdio write
  if (f != nullptr) std::fclose(f);
  // lint-ok: raw-file-io
  std::ofstream blessed(path + ".tmp");
  return out.good() && rw.good() && blessed.good();
}
