// Focused tests of the set-times "postpone" branching and the B&B
// interplay — the part of the search that recovers schedules a pure
// greedy descent misses.
#include <gtest/gtest.h>

#include "cp/search.h"

namespace mrcp::cp {
namespace {

SearchLimits limits_with(std::int64_t fails, int postpone) {
  SearchLimits l;
  l.max_fails = fails;
  l.postpone_tries = postpone;
  l.time_limit_s = 5.0;
  return l;
}

// Instance where greedy EDF is suboptimal but postponement fixes it
// within the SAME ordering:
//   resource: 1 map slot.
//   job A (rank first, deadline 300): map 100.
//   job B (deadline 120): map 100, earliest start 0.
// EDF ranks B first (deadline 120 < 300): B at [0,100], A at [100,200]
// -> both on time. Force the *bad* order with kJobId and give B id 1:
// A at [0,100], B at [100,200] -> B late (200 > 120). Postponing A's
// start past B's slot cannot help on one machine (A would be even
// later but A's deadline 300 tolerates [100, 200]!): postpone branch
// places A at B's end... With 1 task per job and B placed after A in
// order, postponement of A to its next profile event (none at root)
// does nothing — documenting exactly which rescues work and which
// don't keeps the search's limits honest.
TEST(Postpone, RootPostponeHasNoEventToSkipTo) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{300}, 0);
  m.add_task(a, Phase::kMap, Time{100});
  const CpJobIndex b = m.add_job(Time{0}, Time{120}, 1);
  m.add_task(b, Phase::kMap, Time{100});

  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchStats st;
  const Solution sol = search.run(limits_with(10000, 3), nullptr, &st);
  ASSERT_TRUE(sol.valid);
  // Order A-then-B on an empty machine: no profile events precede A's
  // placement, so no postpone branch exists and B stays late.
  EXPECT_EQ(sol.num_late, 1);
  EXPECT_TRUE(st.exhausted);
}

// With pinned tasks creating profile structure, postponement has events
// to skip past and recovers the optimum. Layout (one map slot):
//   pinned fillers [0, 50) and [110, 160);
//   job A (rank first, loose deadline): map 60 — greedy takes the exact
//     gap [50, 110);
//   job B (deadline 219): map 60 — greedy then lands [160, 220): late.
// Postponing A past the next profile event (110) frees the gap for B.
TEST(Postpone, SkipsPastPinnedTaskToMeetDeadline) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex filler = m.add_job(Time{0}, Time{100000}, 9);
  const CpTaskIndex pin1 = m.add_task(filler, Phase::kMap, Time{50});
  const CpTaskIndex pin2 = m.add_task(filler, Phase::kMap, Time{50});
  m.pin_task(pin1, 0, Time{0});
  m.pin_task(pin2, 0, Time{110});
  const CpJobIndex a = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(a, Phase::kMap, Time{60});
  const CpJobIndex b = m.add_job(Time{0}, Time{219}, 1);
  m.add_task(b, Phase::kMap, Time{60});

  // Greedy job-id order: A fills [50, 110), B lands [160, 220) -> late.
  SetTimesSearch greedy(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchLimits greedy_limits = limits_with(0, 0);
  greedy_limits.stop_after_first_solution = true;
  SearchStats st0;
  const Solution g = greedy.run(greedy_limits, nullptr, &st0);
  EXPECT_EQ(g.num_late, 1);

  // Full search with postponement: A postpones past the second filler.
  SetTimesSearch full(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchStats st1;
  const Solution best = full.run(limits_with(10000, 3), nullptr, &st1);
  EXPECT_EQ(best.num_late, 0) << "postpone branching should rescue job B";
  EXPECT_EQ(validate_solution(m, best), "");
}

TEST(Postpone, ZeroTriesDisablesDelayedBranches) {
  // Same instance as SkipsPastPinnedTaskToMeetDeadline; with
  // postpone_tries = 0 the only branches are resource choices (one
  // resource here), so the late schedule stands even with a big budget.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex filler = m.add_job(Time{0}, Time{100000}, 9);
  const CpTaskIndex pin1 = m.add_task(filler, Phase::kMap, Time{50});
  const CpTaskIndex pin2 = m.add_task(filler, Phase::kMap, Time{50});
  m.pin_task(pin1, 0, Time{0});
  m.pin_task(pin2, 0, Time{110});
  const CpJobIndex a = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(a, Phase::kMap, Time{60});
  const CpJobIndex b = m.add_job(Time{0}, Time{219}, 1);
  m.add_task(b, Phase::kMap, Time{60});

  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchStats st;
  const Solution sol = search.run(limits_with(10000, 0), nullptr, &st);
  EXPECT_EQ(sol.num_late, 1);
}

TEST(Postpone, FailLimitCountsPrunesNotTieDescents) {
  // Only B&B prunes count as fails; complete descents that merely tie
  // the incumbent are solutions, not fails. A small tree can therefore
  // be exhausted with fails below the limit — assert exactly that.
  Model m;
  m.add_resource(1, 1);
  for (int j = 0; j < 10; ++j) {
    const CpJobIndex cj = m.add_job(Time{0}, Time{80 + 5 * j}, j);
    m.add_task(cj, Phase::kMap, Time{60});
  }
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchStats st;
  const Solution sol = search.run(limits_with(3, 2), nullptr, &st);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_LE(st.fails, 3 + 1);
  EXPECT_GE(st.solutions, 1);
}

TEST(Postpone, MultiResourceBranchingPrefersEarliestStart) {
  // Two resources, one busy early: the first branch goes to the free one.
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex filler = m.add_job(Time{0}, Time{10000}, 9);
  const CpTaskIndex pinned = m.add_task(filler, Phase::kMap, Time{100});
  m.pin_task(pinned, 0, Time{0});
  const CpJobIndex a = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(a, Phase::kMap, Time{50});
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchLimits l = limits_with(0, 0);
  l.stop_after_first_solution = true;
  SearchStats st;
  const Solution sol = search.run(l, nullptr, &st);
  EXPECT_EQ(sol.placements[1].resource, 1);
  EXPECT_EQ(sol.placements[1].start, Time{0});
}

}  // namespace
}  // namespace mrcp::cp
