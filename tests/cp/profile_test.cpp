#include "cp/profile.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace mrcp::cp {
namespace {

TEST(ProfileTest, EmptyProfileIsFreeEverywhere) {
  Profile p(2);
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{10}, 1), Time{0});
  EXPECT_EQ(p.earliest_feasible(Time{100}, Time{10}, 2), Time{100});
  EXPECT_TRUE(p.fits(Time{0}, Time{1000}, 2));
  EXPECT_EQ(p.usage_at(Time{50}), 0);
}

TEST(ProfileTest, FullCapacityBlocks) {
  Profile p(1);
  p.add(Time{10}, Time{20}, 1);  // busy [10, 30)
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{10}, 1), Time{0});   // fits before
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{11}, 1), Time{30});  // too long to fit before
  EXPECT_EQ(p.earliest_feasible(Time{15}, Time{5}, 1), Time{30});
  EXPECT_FALSE(p.fits(Time{15}, Time{5}, 1));
  EXPECT_TRUE(p.fits(Time{30}, Time{100}, 1));
}

TEST(ProfileTest, PartialCapacityAllowsOverlap) {
  Profile p(2);
  p.add(Time{10}, Time{20}, 1);
  EXPECT_EQ(p.earliest_feasible(Time{15}, Time{5}, 1), Time{15});  // second slot free
  p.add(Time{12}, Time{10}, 1);                              // [12, 22) second unit
  EXPECT_EQ(p.earliest_feasible(Time{15}, Time{5}, 1), Time{22});  // both busy until 22
  EXPECT_EQ(p.usage_at(Time{15}), 2);
  EXPECT_EQ(p.usage_at(Time{25}), 1);
  EXPECT_EQ(p.usage_at(Time{35}), 0);
}

TEST(ProfileTest, DemandGreaterThanOne) {
  Profile p(3);
  p.add(Time{0}, Time{10}, 2);
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{5}, 1), Time{0});
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{5}, 2), Time{10});
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{5}, 3), Time{10});
}

TEST(ProfileTest, GapBetweenIntervals) {
  Profile p(1);
  p.add(Time{0}, Time{10}, 1);
  p.add(Time{20}, Time{10}, 1);
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{10}, 1), Time{10});  // exact gap [10,20)
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{11}, 1), Time{30});  // gap too small
  EXPECT_EQ(p.earliest_feasible(Time{12}, Time{8}, 1), Time{12});
  EXPECT_EQ(p.earliest_feasible(Time{12}, Time{9}, 1), Time{30});
}

TEST(ProfileTest, RemoveRestoresFreedom) {
  Profile p(1);
  p.add(Time{5}, Time{10}, 1);
  EXPECT_EQ(p.earliest_feasible(Time{5}, Time{1}, 1), Time{15});
  p.remove(Time{5}, Time{10}, 1);
  EXPECT_EQ(p.earliest_feasible(Time{5}, Time{1}, 1), Time{5});
  EXPECT_EQ(p.num_events(), 0u);
}

TEST(ProfileTest, NextEventAfter) {
  Profile p(2);
  p.add(Time{10}, Time{10}, 1);
  EXPECT_EQ(p.next_event_after(Time{0}), Time{10});
  EXPECT_EQ(p.next_event_after(Time{10}), Time{20});
  EXPECT_EQ(p.next_event_after(Time{20}), kMaxTime);
}

TEST(ProfileTest, PeakUsage) {
  Profile p(5);
  p.add(Time{0}, Time{10}, 1);
  p.add(Time{5}, Time{10}, 2);
  p.add(Time{8}, Time{4}, 1);
  EXPECT_EQ(p.peak_usage(), 4);
}

TEST(ProfileTest, AbuttingIntervalsDoNotStack) {
  Profile p(1);
  p.add(Time{0}, Time{10}, 1);
  p.add(Time{10}, Time{10}, 1);
  EXPECT_EQ(p.usage_at(Time{9}), 1);
  EXPECT_EQ(p.usage_at(Time{10}), 1);
  EXPECT_EQ(p.earliest_feasible(Time{0}, Time{1}, 1), Time{20});
}

TEST(ProfileTest, EstInsideBusyRegion) {
  Profile p(1);
  p.add(Time{0}, Time{100}, 1);
  EXPECT_EQ(p.earliest_feasible(Time{50}, Time{10}, 1), Time{100});
}

// Property test: earliest_feasible agrees with a brute-force check over a
// randomly built profile, for both the feasibility of the returned start
// and the infeasibility of all earlier starts.
class ProfileRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileRandomProperty, EarliestFeasibleIsCorrectAndMinimal) {
  RandomStream rng(GetParam(), 0);
  const int capacity = static_cast<int>(rng.uniform_int(1, 4));
  Profile p(capacity);

  struct Iv {
    Time s;
    Time d;
    int q;
  };
  std::vector<Iv> placed;
  for (int i = 0; i < 40; ++i) {
    const Time s{rng.uniform_int(0, 200)};
    const Time d{rng.uniform_int(1, 30)};
    const int q = static_cast<int>(rng.uniform_int(1, capacity));
    // Only place if it fits (mimics solver usage).
    if (p.fits(s, d, q)) {
      p.add(s, d, q);
      placed.push_back({s, d, q});
    }
  }

  auto brute_usage = [&](Time t) {
    int u = 0;
    for (const Iv& iv : placed) {
      if (iv.s <= t && t < iv.s + iv.d) u += iv.q;
    }
    return u;
  };
  auto brute_fits = [&](Time start, Time dur, int q) {
    for (Time t = start; t < start + dur; t += Time{1}) {
      if (brute_usage(t) + q > capacity) return false;
    }
    return true;
  };

  for (int trial = 0; trial < 25; ++trial) {
    const Time est{rng.uniform_int(0, 250)};
    const Time dur{rng.uniform_int(1, 25)};
    const int q = static_cast<int>(rng.uniform_int(1, capacity));
    const Time got = p.earliest_feasible(est, dur, q);
    ASSERT_GE(got, est);
    ASSERT_TRUE(brute_fits(got, dur, q))
        << "claimed start " << got << " does not fit";
    // Minimality: every earlier start in [est, got) must fail.
    for (Time t = est; t < got && t < est + Time{400}; t += Time{1}) {
      ASSERT_FALSE(brute_fits(t, dur, q))
          << "earlier start " << t << " also fits (got " << got << ")";
    }
    // usage_at agrees with brute force at a few sample points.
    for (Time t : {est, got, got + dur}) {
      ASSERT_EQ(p.usage_at(t), brute_usage(t)) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileRandomProperty,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                          8));

TEST(ProfileTest, AddRemoveRandomSequenceLeavesEmpty) {
  RandomStream rng(99, 0);
  Profile p(3);
  std::vector<std::tuple<Time, Time, int>> ivs;
  for (int i = 0; i < 100; ++i) {
    const Time s{rng.uniform_int(0, 1000)};
    const Time d{rng.uniform_int(1, 50)};
    const int q = static_cast<int>(rng.uniform_int(1, 3));
    p.add(s, d, q);
    ivs.emplace_back(s, d, q);
  }
  rng.shuffle(ivs.begin(), ivs.end());
  for (const auto& [s, d, q] : ivs) p.remove(s, d, q);
  EXPECT_EQ(p.num_events(), 0u);
  EXPECT_EQ(p.peak_usage(), 0);
}

}  // namespace
}  // namespace mrcp::cp
