#include "cp/solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mrcp::cp {
namespace {

SolveParams fast_params() {
  SolveParams p;
  p.improvement_fails = 5000;
  p.lns_iterations = 30;
  p.time_limit_s = 5.0;
  p.seed = 3;
  return p;
}

TEST(Solver, PortfolioFixesBadIdOrdering) {
  // The instance from search_test: job-id order alone leaves one late
  // job; the solver's EDF portfolio member finds the 0-late schedule.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});

  const SolveResult result = solve(m, fast_params());
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(result.best.num_late, 0);
  EXPECT_TRUE(result.stats.proved_optimal);
  EXPECT_EQ(validate_solution(m, result.best), "");
}

TEST(Solver, EmptyModelSolves) {
  Model m;
  m.add_resource(1, 1);
  const SolveResult result = solve(m, fast_params());
  EXPECT_TRUE(result.best.valid);
  EXPECT_EQ(result.best.num_late, 0);
}

TEST(Solver, WarmStartNeverRegresses) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});
  const SolveResult first = solve(m, fast_params());
  const SolveResult second = solve(m, fast_params(), &first.best);
  EXPECT_LE(second.best.num_late, first.best.num_late);
}

TEST(Solver, DeterministicForSeed) {
  Model m;
  m.add_resource(2, 2);
  for (int i = 0; i < 6; ++i) {
    const CpJobIndex j = m.add_job(Time{0}, Time{150 + 10 * i}, i);
    m.add_task(j, Phase::kMap, Time{40 + 5 * i});
    m.add_task(j, Phase::kReduce, Time{20});
  }
  const SolveResult a = solve(m, fast_params());
  const SolveResult b = solve(m, fast_params());
  ASSERT_EQ(a.best.num_late, b.best.num_late);
  for (std::size_t i = 0; i < a.best.placements.size(); ++i) {
    EXPECT_EQ(a.best.placements[i].start, b.best.placements[i].start);
    EXPECT_EQ(a.best.placements[i].resource, b.best.placements[i].resource);
  }
}

TEST(Solver, LnsImprovesOverSinglePortfolioWhenHelpful) {
  // An instance where pure EDF is suboptimal: two tight-deadline jobs and
  // one mid-deadline short job that EDF wedges between them. We only
  // check the solver does at least as well as the plain EDF descent.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{100}, 0);
  m.add_task(a, Phase::kMap, Time{60});
  const CpJobIndex b = m.add_job(Time{0}, Time{130}, 1);
  m.add_task(b, Phase::kMap, Time{60});
  const CpJobIndex c = m.add_job(Time{0}, Time{260}, 2);
  m.add_task(c, Phase::kMap, Time{100});

  SetTimesSearch edf(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchLimits greedy;
  greedy.max_fails = 0;
  greedy.stop_after_first_solution = true;
  SearchStats st;
  const Solution edf_sol = edf.run(greedy, nullptr, &st);

  const SolveResult result = solve(m, fast_params());
  EXPECT_LE(result.best.num_late, edf_sol.num_late);
  EXPECT_EQ(validate_solution(m, result.best), "");
}

TEST(Solver, HonoursPinnedTasks) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  const CpTaskIndex t0 = m.add_task(j, Phase::kMap, Time{50});
  m.add_task(j, Phase::kMap, Time{10});
  m.pin_task(t0, 0, Time{100});
  const SolveResult result = solve(m, fast_params());
  EXPECT_EQ(result.best.placements[0].start, Time{100});
  EXPECT_EQ(validate_solution(m, result.best), "");
}

TEST(Solver, ReportsBestOrdering) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100}, 0);
  m.add_task(j, Phase::kMap, Time{10});
  const SolveResult result = solve(m, fast_params());
  // Single job: first portfolio member (EDF) wins.
  EXPECT_EQ(result.stats.best_ordering, JobOrdering::kEdf);
}

TEST(Solver, SolveSecondsPopulated) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100}, 0);
  m.add_task(j, Phase::kMap, Time{10});
  const SolveResult result = solve(m, fast_params());
  EXPECT_GE(result.stats.solve_seconds, 0.0);
  EXPECT_LT(result.stats.solve_seconds, 5.0);
}

// Property sweep: random instances always yield valid solutions, and the
// solver never does worse than the plain EDF first descent.
class SolverRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRandomProperty, AlwaysValidAndNoWorseThanEdf) {
  RandomStream rng(GetParam(), 0);
  Model m;
  const int num_resources = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < num_resources; ++r) {
    m.add_resource(static_cast<int>(rng.uniform_int(1, 3)),
                   static_cast<int>(rng.uniform_int(1, 3)));
  }
  const int num_jobs = static_cast<int>(rng.uniform_int(2, 8));
  for (int jj = 0; jj < num_jobs; ++jj) {
    const Time est{rng.uniform_int(0, 100)};
    Time work;
    const int maps = static_cast<int>(rng.uniform_int(1, 5));
    const int reduces = static_cast<int>(rng.uniform_int(0, 3));
    std::vector<Time> map_durs;
    std::vector<Time> reduce_durs;
    for (int t = 0; t < maps; ++t) {
      map_durs.push_back(Time{rng.uniform_int(5, 60)});
      work += map_durs.back();
    }
    for (int t = 0; t < reduces; ++t) {
      reduce_durs.push_back(Time{rng.uniform_int(5, 60)});
      work += reduce_durs.back();
    }
    // Deadlines between "tight" and "loose".
    const Time deadline = est + work / 2 + Time{rng.uniform_int(20, 200)};
    const CpJobIndex cj = m.add_job(est, deadline, jj);
    for (Time d : map_durs) m.add_task(cj, Phase::kMap, d);
    for (Time d : reduce_durs) m.add_task(cj, Phase::kReduce, d);
  }
  ASSERT_EQ(m.validate(), "");

  SetTimesSearch edf(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchLimits greedy;
  greedy.max_fails = 0;
  greedy.stop_after_first_solution = true;
  SearchStats st;
  const Solution edf_sol = edf.run(greedy, nullptr, &st);
  ASSERT_TRUE(edf_sol.valid);

  SolveParams params = fast_params();
  params.seed = GetParam();
  const SolveResult result = solve(m, params);
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(validate_solution(m, result.best), "");
  EXPECT_LE(result.best.num_late, edf_sol.num_late);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRandomProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mrcp::cp
