#include "cp/search.h"

#include <gtest/gtest.h>

namespace mrcp::cp {
namespace {

SearchLimits default_limits() {
  SearchLimits l;
  l.max_fails = 10000;
  l.time_limit_s = 5.0;
  l.postpone_tries = 2;
  return l;
}

Solution run_search(const Model& m, JobOrdering ordering = JobOrdering::kEdf,
                    SearchLimits limits = default_limits()) {
  SetTimesSearch search(m, make_job_ranks(m, ordering));
  SearchStats stats;
  Solution sol = search.run(limits, nullptr, &stats);
  EXPECT_TRUE(sol.valid);
  EXPECT_EQ(validate_solution(m, sol), "");
  return sol;
}

TEST(JobRanks, EdfOrdersByDeadline) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{300}, 0);
  m.add_task(a, Phase::kMap, Time{10});
  const CpJobIndex b = m.add_job(Time{0}, Time{100}, 1);
  m.add_task(b, Phase::kMap, Time{10});
  const auto ranks = make_job_ranks(m, JobOrdering::kEdf);
  EXPECT_GT(ranks[0], ranks[1]);  // b (earlier deadline) first
}

TEST(JobRanks, LeastLaxityUsesRemainingWork) {
  Model m;
  m.add_resource(2, 2);
  // Job 0: deadline 100, work 10 -> laxity 90.
  const CpJobIndex a = m.add_job(Time{0}, Time{100}, 0);
  m.add_task(a, Phase::kMap, Time{10});
  // Job 1: deadline 120, work 100 -> laxity 20: scheduled first.
  const CpJobIndex b = m.add_job(Time{0}, Time{120}, 1);
  m.add_task(b, Phase::kMap, Time{100});
  const auto ranks = make_job_ranks(m, JobOrdering::kLeastLaxity);
  EXPECT_GT(ranks[0], ranks[1]);
}

TEST(JobRanks, JobIdUsesExternalId) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{100}, 42);
  m.add_task(a, Phase::kMap, Time{10});
  const CpJobIndex b = m.add_job(Time{0}, Time{50}, 7);
  m.add_task(b, Phase::kMap, Time{10});
  const auto ranks = make_job_ranks(m, JobOrdering::kJobId);
  EXPECT_GT(ranks[0], ranks[1]);  // external id 7 before 42
}

TEST(JobRanks, FcfsUsesEarliestStart) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{200}, Time{1000}, 0);
  m.add_task(a, Phase::kMap, Time{10});
  const CpJobIndex b = m.add_job(Time{100}, Time{2000}, 1);
  m.add_task(b, Phase::kMap, Time{10});
  const auto ranks = make_job_ranks(m, JobOrdering::kFcfs);
  EXPECT_GT(ranks[0], ranks[1]);
}

TEST(SetTimes, SingleTaskStartsAtEst) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{25}, Time{200});
  m.add_task(j, Phase::kMap, Time{10});
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.placements[0].start, Time{25});
  EXPECT_EQ(sol.num_late, 0);
}

TEST(SetTimes, MapsThenReduceLeftPacked) {
  Model m;
  m.add_resource(2, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  m.add_task(j, Phase::kMap, Time{20});
  m.add_task(j, Phase::kMap, Time{30});
  m.add_task(j, Phase::kReduce, Time{40});
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.job_completion[0], Time{70});  // maps parallel (end 30), reduce 30-70
  EXPECT_EQ(sol.num_late, 0);
}

TEST(SetTimes, SerializesOnSingleSlot) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  m.add_task(j, Phase::kMap, Time{20});
  m.add_task(j, Phase::kMap, Time{30});
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.job_completion[0], Time{50});
}

TEST(SetTimes, ChoosesLessLoadedResource) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{1000}, 0);
  m.add_task(j0, Phase::kMap, Time{50});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{1000}, 1);
  m.add_task(j1, Phase::kMap, Time{50});
  const Solution sol = run_search(m);
  // Both should run in parallel on different resources.
  EXPECT_EQ(sol.placements[0].start, Time{0});
  EXPECT_EQ(sol.placements[1].start, Time{0});
  EXPECT_NE(sol.placements[0].resource, sol.placements[1].resource);
}

TEST(SetTimes, PinnedTaskKeptInPlace) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  const CpTaskIndex t0 = m.add_task(j, Phase::kMap, Time{30});
  m.add_task(j, Phase::kMap, Time{10});
  m.pin_task(t0, 0, Time{5});  // occupies [5, 35)
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.placements[0].start, Time{5});
  EXPECT_EQ(sol.placements[0].resource, 0);
  // Second map fits before (0..10? no: [0,10) overlaps [5,35)) -> at 35.
  EXPECT_EQ(sol.placements[1].start, Time{35});
}

TEST(SetTimes, GapFillingBeforePinnedTask) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  const CpTaskIndex t0 = m.add_task(j, Phase::kMap, Time{30});
  m.add_task(j, Phase::kMap, Time{10});
  m.pin_task(t0, 0, Time{20});  // busy [20, 50)
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.placements[1].start, Time{0});  // fills the [0, 20) gap
}

TEST(SetTimes, EdfOrderingMeetsDeadlinesIdOrderingMisses) {
  // Two jobs on one slot: job 0 (id first) has a loose deadline, job 1 a
  // tight one. The search is conditioned on the job ordering: under EDF
  // both deadlines are met; under job-id order job 1 is late and no
  // placement branching can fix it (reordering jobs is the solver
  // portfolio's role — see solver_test.cpp).
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});

  const Solution edf = run_search(m, JobOrdering::kEdf);
  EXPECT_EQ(edf.num_late, 0);

  const Solution id_order = run_search(m, JobOrdering::kJobId);
  EXPECT_EQ(id_order.num_late, 1);
}

TEST(SetTimes, FirstSolutionOnlyGreedy) {
  // Same instance; restricted to the first descent, job-id order stays
  // late — demonstrating the limits knob.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});

  SearchLimits limits = default_limits();
  limits.stop_after_first_solution = true;
  limits.max_fails = 0;
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchStats stats;
  const Solution sol = search.run(limits, nullptr, &stats);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(sol.num_late, 1);
  EXPECT_EQ(stats.solutions, 1);
}

TEST(SetTimes, UnavoidablyLateJobCounted) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{10});
  m.add_task(j, Phase::kMap, Time{50});  // cannot possibly meet deadline 10
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.num_late, 1);
  EXPECT_EQ(sol.job_late[0], 1);
}

TEST(SetTimes, EmptyModelYieldsEmptySolution) {
  Model m;
  m.add_resource(1, 1);
  SetTimesSearch search(m, {});
  SearchStats stats;
  const Solution sol = search.run(default_limits(), nullptr, &stats);
  EXPECT_TRUE(sol.valid);
  EXPECT_EQ(sol.num_late, 0);
  EXPECT_TRUE(stats.exhausted);
}

TEST(SetTimes, AllTasksPinnedIsEvaluatedOnly) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{30});
  m.pin_task(t, 0, Time{0});
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchStats stats;
  const Solution sol = search.run(default_limits(), nullptr, &stats);
  EXPECT_TRUE(sol.valid);
  EXPECT_EQ(sol.placements[0].start, Time{0});
  EXPECT_EQ(sol.job_completion[0], Time{30});
  EXPECT_EQ(sol.num_late, 0);
}

TEST(SetTimes, RespectsCandidateRestriction) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10});
  m.restrict_candidates(t, {1});
  const Solution sol = run_search(m);
  EXPECT_EQ(sol.placements[0].resource, 1);
}

TEST(SetTimes, IncumbentPrunesToNoWorseSolution) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200}, 0);
  m.add_task(j0, Phase::kMap, Time{80});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{60}, 1);
  m.add_task(j1, Phase::kMap, Time{50});
  // First find the optimum, then re-run with it as incumbent: the result
  // must not regress.
  const Solution best = run_search(m, JobOrdering::kEdf);
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kJobId));
  SearchStats stats;
  const Solution sol = search.run(default_limits(), &best, &stats);
  EXPECT_LE(sol.num_late, best.num_late);
}

TEST(SetTimes, ReduceWaitsForAllMapsAcrossResources) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{1000});
  m.add_task(j, Phase::kMap, Time{10});
  m.add_task(j, Phase::kMap, Time{70});
  m.add_task(j, Phase::kReduce, Time{5});
  const Solution sol = run_search(m);
  // Maps in parallel end at 70; reduce starts at >= 70.
  EXPECT_GE(sol.placements[2].start, Time{70});
  EXPECT_EQ(sol.job_completion[0], Time{75});
}

TEST(SetTimes, StatsAreAccountedFor) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{10}, 0);
  m.add_task(j0, Phase::kMap, Time{50});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{10}, 1);
  m.add_task(j1, Phase::kMap, Time{50});
  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchStats stats;
  search.run(default_limits(), nullptr, &stats);
  EXPECT_GT(stats.decisions, 0);
  EXPECT_GE(stats.solutions, 1);
}

TEST(JobOrderingName, Names) {
  EXPECT_STREQ(job_ordering_name(JobOrdering::kEdf), "edf");
  EXPECT_STREQ(job_ordering_name(JobOrdering::kJobId), "job-id");
  EXPECT_STREQ(job_ordering_name(JobOrdering::kLeastLaxity), "least-laxity");
  EXPECT_STREQ(job_ordering_name(JobOrdering::kFcfs), "fcfs");
}

}  // namespace
}  // namespace mrcp::cp
