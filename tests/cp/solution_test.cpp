#include "cp/solution.h"

#include <gtest/gtest.h>

namespace mrcp::cp {
namespace {

// Model: 1 resource (2 map / 1 reduce slots); job 0 with maps {20, 30} and
// reduce {40}, s_j = 0, d_j = 100.
Model base_model() {
  Model m;
  m.add_resource(2, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100}, 7);
  m.add_task(j, Phase::kMap, Time{20});
  m.add_task(j, Phase::kMap, Time{30});
  m.add_task(j, Phase::kReduce, Time{40});
  return m;
}

Solution good_solution() {
  Solution s;
  s.placements = {{0, Time{0}}, {0, Time{0}}, {0, Time{30}}};  // maps parallel, reduce at 30
  return s;
}

TEST(EvaluateSolution, ComputesCompletionAndLateness) {
  const Model m = base_model();
  Solution s = good_solution();
  evaluate_solution(m, s);
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.job_completion[0], Time{70});
  EXPECT_EQ(s.job_late[0], 0);
  EXPECT_EQ(s.num_late, 0);
  EXPECT_EQ(s.total_completion, Time{70});
}

TEST(EvaluateSolution, MarksLateJob) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{25}, 7);
  m.add_task(j, Phase::kMap, Time{30});
  Solution s;
  s.placements = {{0, Time{0}}};
  evaluate_solution(m, s);
  EXPECT_EQ(s.job_completion[0], Time{30});
  EXPECT_EQ(s.job_late[0], 1);
  EXPECT_EQ(s.num_late, 1);
}

TEST(ValidateSolution, AcceptsGoodSolution) {
  const Model m = base_model();
  Solution s = good_solution();
  evaluate_solution(m, s);
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesCapacityViolation) {
  Model m;
  m.add_resource(1, 1);  // only 1 map slot
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  m.add_task(j, Phase::kMap, Time{20});
  m.add_task(j, Phase::kMap, Time{20});
  Solution s;
  s.placements = {{0, Time{0}}, {0, Time{10}}};  // overlap on a 1-capacity resource
  EXPECT_NE(validate_solution(m, s), "");
  s.placements = {{0, Time{0}}, {0, Time{20}}};  // sequential is fine
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesPrecedenceViolation) {
  const Model m = base_model();
  Solution s;
  s.placements = {{0, Time{0}}, {0, Time{0}}, {0, Time{29}}};  // reduce starts before map end
  EXPECT_NE(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesEarliestStartViolation) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{50}, Time{200});
  m.add_task(j, Phase::kMap, Time{10});
  Solution s;
  s.placements = {{0, Time{40}}};
  EXPECT_NE(validate_solution(m, s), "");
  s.placements = {{0, Time{50}}};
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, PinnedTaskExemptFromEarliestStart) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{50}, Time{200});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10});
  m.pin_task(t, 0, Time{40});  // started before the (clamped) s_j
  Solution s;
  s.placements = {{0, Time{40}}};
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesPinningViolation) {
  Model m;
  m.add_resource(2, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{200});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10});
  m.pin_task(t, 0, Time{15});
  Solution s;
  s.placements = {{0, Time{20}}};  // wrong start
  EXPECT_NE(validate_solution(m, s), "");
  s.placements = {{0, Time{15}}};
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesNonCandidateResource) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{200});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10});
  m.restrict_candidates(t, {1});
  Solution s;
  s.placements = {{0, Time{0}}};
  EXPECT_NE(validate_solution(m, s), "");
  s.placements = {{1, Time{0}}};
  EXPECT_EQ(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesUndecidedTask) {
  const Model m = base_model();
  Solution s;
  s.placements.resize(3);  // default: undecided
  EXPECT_NE(validate_solution(m, s), "");
}

TEST(ValidateSolution, CatchesWrongPlacementCount) {
  const Model m = base_model();
  Solution s;
  s.placements = {{0, Time{0}}};
  EXPECT_NE(validate_solution(m, s), "");
}

TEST(SolutionOrdering, BetterThanComparesLateThenCompletion) {
  Solution a;
  a.valid = true;
  a.num_late = 1;
  a.total_completion = Time{100};
  Solution b;
  b.valid = true;
  b.num_late = 2;
  b.total_completion = Time{50};
  EXPECT_TRUE(a.better_than(b));
  EXPECT_FALSE(b.better_than(a));
  b.num_late = 1;
  b.total_completion = Time{99};
  EXPECT_TRUE(b.better_than(a));
  Solution invalid;
  EXPECT_TRUE(a.better_than(invalid));
  EXPECT_FALSE(invalid.better_than(a));
}

TEST(SolutionOrdering, MapsOnDifferentPhasesDontCollide) {
  // Map and reduce capacity pools are independent: a 1/1 resource can run
  // one map and one reduce simultaneously.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{200});
  m.add_task(j0, Phase::kMap, Time{50});
  const CpJobIndex j1 = m.add_job(Time{0}, Time{200});
  m.add_task(j1, Phase::kReduce, Time{50});
  Solution s;
  s.placements = {{0, Time{0}}, {0, Time{0}}};
  EXPECT_EQ(validate_solution(m, s), "");
}

}  // namespace
}  // namespace mrcp::cp
