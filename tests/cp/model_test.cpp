#include "cp/model.h"

#include <gtest/gtest.h>

namespace mrcp::cp {
namespace {

Model two_job_model() {
  Model m;
  m.add_resource(2, 2);
  const CpJobIndex j0 = m.add_job(Time{0}, Time{100}, 10);
  m.add_task(j0, Phase::kMap, Time{20});
  m.add_task(j0, Phase::kMap, Time{30});
  m.add_task(j0, Phase::kReduce, Time{40});
  const CpJobIndex j1 = m.add_job(Time{50}, Time{300}, 11);
  m.add_task(j1, Phase::kMap, Time{10});
  return m;
}

TEST(CpModel, Accessors) {
  const Model m = two_job_model();
  EXPECT_EQ(m.num_resources(), 1u);
  EXPECT_EQ(m.num_jobs(), 2u);
  EXPECT_EQ(m.num_tasks(), 4u);
  EXPECT_EQ(m.job(0).map_tasks.size(), 2u);
  EXPECT_EQ(m.job(0).reduce_tasks.size(), 1u);
  EXPECT_EQ(m.job(1).map_tasks.size(), 1u);
  EXPECT_EQ(m.task(2).phase, Phase::kReduce);
  EXPECT_EQ(m.task(2).duration, Time{40});
  EXPECT_EQ(m.job(0).external_id, 10);
}

TEST(CpModel, ValidatesCleanModel) {
  EXPECT_EQ(two_job_model().validate(), "");
}

TEST(CpModel, RejectsEmptyResources) {
  Model m;
  EXPECT_NE(m.validate(), "");
}

TEST(CpModel, RejectsJobWithoutTasks) {
  Model m;
  m.add_resource(1, 1);
  m.add_job(Time{0}, Time{10});
  EXPECT_NE(m.validate(), "");
}

TEST(CpModel, RejectsDemandExceedingCapacity) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  m.add_task(j, Phase::kMap, Time{10}, /*demand=*/2);
  EXPECT_NE(m.validate(), "");
}

TEST(CpModel, DemandFitsSomeCandidate) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(4, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10}, /*demand=*/3);
  EXPECT_EQ(m.validate(), "");
  // Restricting to the small resource breaks it.
  m.restrict_candidates(t, {0});
  EXPECT_NE(m.validate(), "");
}

TEST(CpModel, StaticEarliestStartMaps) {
  const Model m = two_job_model();
  EXPECT_EQ(m.static_earliest_start(0), Time{0});
  EXPECT_EQ(m.static_earliest_start(3), Time{50});  // job 1's s_j
}

TEST(CpModel, StaticEarliestStartReduceAfterMaps) {
  const Model m = two_job_model();
  // Reduce of job 0: maps could end at earliest max(0+20, 0+30) = 30.
  EXPECT_EQ(m.static_earliest_start(2), Time{30});
}

TEST(CpModel, StaticEarliestStartPinnedTask) {
  Model m = two_job_model();
  m.pin_task(0, 0, Time{5});
  EXPECT_EQ(m.static_earliest_start(0), Time{5});
  // Reduce bound uses the pinned map start: max(5+20, 0+30) = 30.
  EXPECT_EQ(m.static_earliest_start(2), Time{30});
  m.pin_task(1, 0, Time{40});  // second map pinned at 40, ends 70
  EXPECT_EQ(m.static_earliest_start(2), Time{70});
}

TEST(CpModel, CompletionLowerBound) {
  const Model m = two_job_model();
  // Job 0: maps end >= 30, reduce ends >= 30 + 40 = 70.
  EXPECT_EQ(m.completion_lower_bound(0), Time{70});
  // Job 1: single 10-tick map from s_j = 50 -> 60.
  EXPECT_EQ(m.completion_lower_bound(1), Time{60});
}

TEST(CpModel, CompletionLowerBoundMapOnlyJob) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{10}, Time{100});
  m.add_task(j, Phase::kMap, Time{25});
  EXPECT_EQ(m.completion_lower_bound(j), Time{35});
}

TEST(CpModel, PinnedResourceMustBeCandidate) {
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{10});
  m.restrict_candidates(t, {0});
  m.pin_task(t, 1, Time{0});
  EXPECT_NE(m.validate(), "");
}

TEST(CpModel, PinnedNeedsCapacity) {
  Model m;
  m.add_resource(1, 0);  // no reduce slots
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{100});
  const CpTaskIndex t = m.add_task(j, Phase::kReduce, Time{10});
  m.pin_task(t, 0, Time{0});
  EXPECT_NE(m.validate(), "");
}

}  // namespace
}  // namespace mrcp::cp
