// SearchRoot sharing and SetTimesSearch::reset() determinism: a search
// cached across reset()s must behave exactly like a freshly constructed
// one for every (job ranking, intra-job order) — including models with
// pinned tasks and user-precedence DAGs, warm starts, and repeated runs
// of the same configuration. run() unwinds every decision on exit, so
// reset() only rebuilds the decision order; these tests are the
// executable statement of that contract (audited internally by
// audit_at_root() in MRCP_AUDIT builds).
#include "cp/search.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cp/model.h"
#include "cp/solution.h"

namespace mrcp::cp {
namespace {

SearchLimits first_descent_limits() {
  SearchLimits l;
  l.max_fails = 0;
  l.stop_after_first_solution = true;
  l.postpone_tries = 0;
  l.time_limit_s = 5.0;
  return l;
}

SearchLimits bnb_limits() {
  SearchLimits l;
  l.max_fails = 2000;
  l.postpone_tries = 2;
  l.time_limit_s = 5.0;
  return l;
}

/// Random instance optionally exercising every piece of root state
/// SearchRoot precomputes: pinned tasks (timetable replay, fixed
/// completions, possibly statically-late jobs) and a user-precedence DAG
/// (the priority-topo decision-order rebuild).
Model random_model(std::uint64_t seed, bool with_pins,
                   bool with_precedences) {
  RandomStream rng(seed, 0x5E);
  Model m;
  const CpResourceIndex r0 = m.add_resource(2, 2);
  m.add_resource(3, 1);
  std::vector<CpTaskIndex> prev_maps;
  const int num_jobs = static_cast<int>(rng.uniform_int(4, 8));
  for (int j = 0; j < num_jobs; ++j) {
    const Time est{rng.uniform_int(0, 60)};
    const CpJobIndex cj = m.add_job(est, est + Time{rng.uniform_int(60, 180)}, j);
    std::vector<CpTaskIndex> maps;
    const int nm = static_cast<int>(rng.uniform_int(1, 4));
    for (int t = 0; t < nm; ++t) {
      maps.push_back(m.add_task(cj, Phase::kMap, Time{rng.uniform_int(5, 40)}));
    }
    const int nr = static_cast<int>(rng.uniform_int(0, 2));
    for (int t = 0; t < nr; ++t) {
      m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(5, 40)});
    }
    if (with_pins && j == 0) {
      // Pin the first job's first map: exercises the pinned replay and
      // the fixed map-end/completion root state.
      m.pin_task(maps.front(), r0, est);
    }
    if (with_precedences) {
      for (std::size_t t = 1; t < maps.size(); ++t) {
        m.add_precedence(maps[t - 1], maps[t]);
      }
      if (!prev_maps.empty() && rng.bernoulli(0.6)) {
        m.add_precedence(prev_maps.front(), maps.back());
      }
    }
    prev_maps = maps;
  }
  return m;
}

void expect_identical(const Solution& a, const Solution& b,
                      const std::string& what) {
  ASSERT_EQ(a.valid, b.valid) << what;
  ASSERT_EQ(a.num_late, b.num_late) << what;
  ASSERT_EQ(a.total_completion, b.total_completion) << what;
  ASSERT_EQ(a.placements.size(), b.placements.size()) << what;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    ASSERT_EQ(a.placements[i].resource, b.placements[i].resource)
        << what << " task " << i;
    ASSERT_EQ(a.placements[i].start, b.placements[i].start)
        << what << " task " << i;
  }
}

struct Config {
  JobOrdering ordering;
  std::uint8_t lpt;  ///< all-FIFO (0) or all-LPT (1) intra-job order
};

const Config kConfigs[] = {
    {JobOrdering::kEdf, 0},         {JobOrdering::kEdf, 1},
    {JobOrdering::kLeastLaxity, 0}, {JobOrdering::kLeastLaxity, 1},
    {JobOrdering::kJobId, 0},       {JobOrdering::kFcfs, 1},
};

class SearchRootReuse
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool, bool>> {
};

TEST_P(SearchRootReuse, ReusedSearchMatchesFreshAcrossConfigs) {
  const auto [seed, with_pins, with_precedences] = GetParam();
  const Model m = random_model(seed, with_pins, with_precedences);
  ASSERT_EQ(m.validate(), "");

  const SearchRoot root(m);
  SetTimesSearch reused(root);
  const SearchLimits limits = first_descent_limits();
  for (const Config& cfg : kConfigs) {
    const std::vector<int> ranks = make_job_ranks(m, cfg.ordering);
    const std::vector<std::uint8_t> lpt(m.num_jobs(), cfg.lpt);

    SetTimesSearch fresh(m, ranks, lpt);
    SearchStats fresh_stats;
    const Solution want = fresh.run(limits, nullptr, &fresh_stats);
    ASSERT_TRUE(want.valid);
    ASSERT_EQ(validate_solution(m, want), "");

    reused.reset(ranks, lpt);
    SearchStats reused_stats;
    const Solution got = reused.run(limits, nullptr, &reused_stats);
    expect_identical(want, got,
                     std::string("reused vs fresh, ordering ") +
                         job_ordering_name(cfg.ordering) +
                         (cfg.lpt ? " lpt" : " fifo"));
    EXPECT_EQ(fresh_stats.decisions, reused_stats.decisions);
    EXPECT_EQ(fresh_stats.fails, reused_stats.fails);
  }
}

TEST_P(SearchRootReuse, RepeatedSameConfigRunsAreIdentical) {
  const auto [seed, with_pins, with_precedences] = GetParam();
  const Model m = random_model(seed, with_pins, with_precedences);
  ASSERT_EQ(m.validate(), "");

  const SearchRoot root(m);
  SetTimesSearch search(root);
  const std::vector<int> ranks = make_job_ranks(m, JobOrdering::kEdf);
  const SearchLimits limits = first_descent_limits();

  search.reset(ranks);
  SearchStats st0;
  const Solution first = search.run(limits, nullptr, &st0);
  for (int rep = 0; rep < 3; ++rep) {
    search.reset(ranks);
    SearchStats st;
    const Solution again = search.run(limits, nullptr, &st);
    expect_identical(first, again, "repeat " + std::to_string(rep));
    EXPECT_EQ(st0.decisions, st.decisions);
  }
}

TEST_P(SearchRootReuse, WarmStartedBnBMatchesFresh) {
  const auto [seed, with_pins, with_precedences] = GetParam();
  const Model m = random_model(seed, with_pins, with_precedences);
  ASSERT_EQ(m.validate(), "");

  const std::vector<int> ranks = make_job_ranks(m, JobOrdering::kLeastLaxity);
  const SearchRoot root(m);
  SetTimesSearch reused(root);

  // First descent produces the incumbent, then a full branch-and-bound
  // run (backtracking, postponement) from the same reused object must
  // match a fresh search byte for byte.
  reused.reset(ranks);
  SearchStats st_inc;
  const Solution incumbent =
      reused.run(first_descent_limits(), nullptr, &st_inc);
  ASSERT_TRUE(incumbent.valid);

  SetTimesSearch fresh(m, ranks);
  SearchStats fresh_stats;
  const Solution want = fresh.run(bnb_limits(), &incumbent, &fresh_stats);

  reused.reset(ranks);
  SearchStats reused_stats;
  const Solution got = reused.run(bnb_limits(), &incumbent, &reused_stats);
  expect_identical(want, got, "warm-started B&B reused vs fresh");
  EXPECT_EQ(fresh_stats.decisions, reused_stats.decisions);
  EXPECT_EQ(fresh_stats.fails, reused_stats.fails);
  EXPECT_EQ(fresh_stats.exhausted, reused_stats.exhausted);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SearchRootReuse,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 6),
                       ::testing::Bool(), ::testing::Bool()));

TEST(SearchRootShared, ManySearchesOneRootAgree) {
  // Several searches over one root, interleaved, must not interfere:
  // the root is immutable and each search owns its mutable state.
  const Model m = random_model(11, true, true);
  ASSERT_EQ(m.validate(), "");
  const SearchRoot root(m);
  const std::vector<int> ranks = make_job_ranks(m, JobOrdering::kEdf);

  SetTimesSearch a(root);
  SetTimesSearch b(root);
  a.reset(ranks);
  b.reset(ranks);
  SearchStats sa;
  SearchStats sb;
  const Solution ra = a.run(first_descent_limits(), nullptr, &sa);
  const Solution rb = b.run(first_descent_limits(), nullptr, &sb);
  expect_identical(ra, rb, "two searches, one root");
}

}  // namespace
}  // namespace mrcp::cp
