// Standalone suites for the audit layer itself, runnable in EVERY build
// configuration (no MRCP_AUDIT needed): the audit functions are plain
// library code, and SearchLimits::bound_auditor is always present.
//
// Four groups:
//  * ReferenceProfile vs Profile equivalence under random add/remove
//    interleavings — the differential check the in-engine hooks rely on;
//  * earliest_feasible answer audits: monotone, feasible, idempotent,
//    minimal — including a deliberately wrong answer being rejected;
//  * SharedBoundAuditor positive and negative cases, plus end-to-end
//    incumbent-bound monotonicity of a real multi-threaded solve;
//  * brute_force_check_solution / exhaustive_min_late on hand-built
//    models with known optima.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "cp/audit.h"
#include "cp/model.h"
#include "cp/profile.h"
#include "cp/search.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

// --- ReferenceProfile vs Profile -----------------------------------------

TEST(ReferenceProfileTest, MatchesFastProfileUnderRandomMutation) {
  RandomStream rng(42, 0xA0D1);
  for (int trial = 0; trial < 50; ++trial) {
    const int capacity = static_cast<int>(rng.uniform_int(1, 4));
    Profile fast(capacity);
    audit::ReferenceProfile ref(capacity);
    std::vector<std::tuple<Time, Time, int>> live;  // {start, duration, demand}

    for (int step = 0; step < 120; ++step) {
      const bool remove = !live.empty() && rng.bernoulli(0.4);
      if (remove) {
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const auto [s, d, q] = live[i];
        fast.remove(s, d, q);
        ref.remove(s, d, q);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        const Time s{rng.uniform_int(0, 200)};
        const Time d{rng.uniform_int(1, 30)};
        const int q = static_cast<int>(rng.uniform_int(1, capacity));
        fast.add(s, d, q);
        ref.add(s, d, q);
        live.emplace_back(s, d, q);
      }
      ASSERT_EQ(audit::check_profile_against_reference(fast, ref), "")
          << "trial " << trial << " step " << step;

      // Random feasibility queries must agree too.
      const Time est{rng.uniform_int(0, 250)};
      const Time dur{rng.uniform_int(1, 25)};
      const int dem = static_cast<int>(rng.uniform_int(1, capacity));
      ASSERT_EQ(fast.earliest_feasible(est, dur, dem),
                ref.earliest_feasible(est, dur, dem))
          << "trial " << trial << " step " << step;
    }
  }
}

// --- earliest_feasible answer audits --------------------------------------

TEST(EarliestFeasibleAuditTest, AcceptsCorrectAnswers) {
  RandomStream rng(7, 0xB0B);
  Profile profile(2);
  for (int i = 0; i < 40; ++i) {
    profile.add(Time{rng.uniform_int(0, 100)}, Time{rng.uniform_int(1, 20)},
                static_cast<int>(rng.uniform_int(1, 2)));
  }
  for (int q = 0; q < 200; ++q) {
    const Time est{rng.uniform_int(0, 150)};
    const Time dur{rng.uniform_int(1, 15)};
    const int dem = static_cast<int>(rng.uniform_int(1, 2));
    const Time got = profile.earliest_feasible(est, dur, dem);
    EXPECT_EQ(audit::check_earliest_feasible_answer(profile, est, dur, dem, got),
              "")
        << "query " << q;
  }
}

TEST(EarliestFeasibleAuditTest, RejectsNonMonotoneAnswer) {
  Profile profile(1);
  const std::string err =
      audit::check_earliest_feasible_answer(profile, Time{10}, Time{5}, 1, Time{9});
  EXPECT_NE(err, "");
}

TEST(EarliestFeasibleAuditTest, RejectsInfeasibleAnswer) {
  Profile profile(1);
  profile.add(Time{0}, Time{10}, 1);  // resource fully busy on [0, 10)
  const std::string err =
      audit::check_earliest_feasible_answer(profile, Time{0}, Time{5}, 1, Time{3});
  EXPECT_NE(err, "");  // [3, 8) overlaps the busy stretch
}

TEST(EarliestFeasibleAuditTest, RejectsNonMinimalAnswer) {
  Profile profile(1);
  profile.add(Time{0}, Time{10}, 1);
  // Earliest feasible is 10; claiming 20 is feasible but not minimal.
  const std::string err =
      audit::check_earliest_feasible_answer(profile, Time{0}, Time{5}, 1, Time{20});
  EXPECT_NE(err, "");
}

// --- SharedBoundAuditor ----------------------------------------------------

/// Fetch-min publish, as the search performs it.
void publish_min(std::atomic<int>& bound, int value) {
  int cur = bound.load(std::memory_order_relaxed);
  while (value < cur &&
         !bound.compare_exchange_weak(cur, value, std::memory_order_acq_rel)) {
  }
}

TEST(SharedBoundAuditorTest, AcceptsMonotonePublishes) {
  std::atomic<int> bound{100};
  audit::SharedBoundAuditor auditor;
  for (int v : {7, 9, 5, 5, 12, 3}) {
    publish_min(bound, v);
    auditor.on_publish(v, bound);
  }
  EXPECT_EQ(auditor.error(), "");
  EXPECT_EQ(auditor.low_water_mark(), 3);
  EXPECT_EQ(bound.load(), 3);
}

TEST(SharedBoundAuditorTest, DetectsLostUpdate) {
  std::atomic<int> bound{100};
  audit::SharedBoundAuditor auditor;
  publish_min(bound, 4);
  auditor.on_publish(4, bound);
  // A buggy worker does a plain store that raises the bound back up.
  bound.store(50);
  publish_min(bound, 30);  // 30 < 50, "improves" the corrupted bound
  auditor.on_publish(30, bound);
  EXPECT_NE(auditor.error(), "");
}

TEST(SharedBoundAuditorTest, DetectsRaisingReset) {
  std::atomic<int> bound{6};
  audit::SharedBoundAuditor auditor;
  auditor.on_publish(6, bound);
  // Resetting to a value above the current bound would re-admit pruned
  // branches; the auditor must flag it before the caller stores.
  auditor.on_reset(9, bound);
  EXPECT_NE(auditor.error(), "");
}

TEST(SharedBoundAuditorTest, AcceptsLoweringReset) {
  std::atomic<int> bound{6};
  audit::SharedBoundAuditor auditor;
  auditor.on_publish(6, bound);
  auditor.on_reset(6, bound);
  auditor.on_reset(2, bound);
  EXPECT_EQ(auditor.error(), "");
}

TEST(SharedBoundAuditorTest, RaceFreeUnderConcurrentPublishes) {
  std::atomic<int> bound{1000};
  audit::SharedBoundAuditor auditor;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w, &bound, &auditor] {
      RandomStream rng(static_cast<std::uint64_t>(w), 0xCAFE);
      for (int i = 0; i < 2000; ++i) {
        const int v = static_cast<int>(rng.uniform_int(0, 500));
        publish_min(bound, v);
        auditor.on_publish(v, bound);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(auditor.error(), "");
  EXPECT_EQ(bound.load(), auditor.low_water_mark());
}

/// End-to-end: a real multi-threaded search run with the auditor
/// installed through SearchLimits must keep the bound monotone. This
/// works in plain builds — the field exists unconditionally.
TEST(SharedBoundAuditorTest, RealSearchKeepsBoundMonotone) {
  Model m;
  m.add_resource(2, 1);
  m.add_resource(1, 1);
  RandomStream rng(11, 0xFEED);
  for (int j = 0; j < 5; ++j) {
    const Time est{rng.uniform_int(0, 5)};
    const CpJobIndex job = m.add_job(est, est + Time{rng.uniform_int(4, 14)}, j);
    const int maps = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < maps; ++k) {
      m.add_task(job, Phase::kMap, Time{rng.uniform_int(1, 6)});
    }
    m.add_task(job, Phase::kReduce, Time{rng.uniform_int(1, 4)});
  }
  ASSERT_EQ(m.validate(), "");

  std::atomic<int> shared{static_cast<int>(m.num_jobs()) + 1};
  audit::SharedBoundAuditor auditor;
  SearchLimits limits;
  limits.max_fails = 50000;
  limits.time_limit_s = 5.0;
  limits.shared_late_bound = &shared;
  limits.bound_auditor = &auditor;

  SetTimesSearch search(m, make_job_ranks(m, JobOrdering::kEdf));
  SearchStats stats;
  const Solution sol = search.run(limits, nullptr, &stats);
  ASSERT_TRUE(sol.valid);
  EXPECT_EQ(auditor.error(), "");
  EXPECT_LE(auditor.low_water_mark(), static_cast<int>(m.num_jobs()));
  EXPECT_EQ(validate_solution(m, sol), "");
}

// --- Propagation idempotence (standalone, any build) -----------------------

/// Replays a full set-times search's propagation pattern by hand:
/// schedule tasks greedily, and after each placement re-run every query
/// to confirm a second propagation pass changes nothing (fixpoint).
TEST(PropagationIdempotenceTest, SecondPassIsNoOp) {
  RandomStream rng(19, 0x1D3);
  for (int trial = 0; trial < 30; ++trial) {
    const int capacity = static_cast<int>(rng.uniform_int(1, 3));
    Profile profile(capacity);
    struct Placed {
      Time start, duration;
      int demand;
      Time est;
    };
    std::vector<Placed> placed;
    for (int t = 0; t < 25; ++t) {
      const Time est{rng.uniform_int(0, 40)};
      const Time dur{rng.uniform_int(1, 10)};
      const int dem = static_cast<int>(rng.uniform_int(1, capacity));
      const Time start = profile.earliest_feasible(est, dur, dem);
      ASSERT_EQ(audit::check_earliest_feasible_answer(profile, est, dur, dem,
                                                      start),
                "");
      profile.add(start, dur, dem);
      placed.push_back({start, dur, dem, est});

      // Idempotence across the whole fixed set: re-querying any placed
      // task from its own start (with its own demand removed) returns
      // exactly that start.
      for (const Placed& p : placed) {
        profile.remove(p.start, p.duration, p.demand);
        EXPECT_EQ(profile.earliest_feasible(p.start, p.duration, p.demand),
                  p.start)
            << "trial " << trial;
        // Monotone: rerunning from the original est can't move earlier.
        EXPECT_GE(profile.earliest_feasible(p.est, p.duration, p.demand), p.est);
        profile.add(p.start, p.duration, p.demand);
      }
    }
  }
}

// --- Brute-force solution oracle -------------------------------------------

Model two_job_model() {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{10}, 0);
  m.add_task(a, Phase::kMap, Time{4});
  m.add_task(a, Phase::kReduce, Time{3});
  const CpJobIndex b = m.add_job(Time{0}, Time{8}, 1);
  m.add_task(b, Phase::kMap, Time{5});
  return m;
}

TEST(BruteForceOracleTest, AcceptsValidSolution) {
  const Model m = two_job_model();
  ASSERT_EQ(m.validate(), "");
  Solution sol;
  sol.placements = {{0, Time{0}}, {0, Time{4}}, {0, Time{0}}};  // maps overlap? no: map cap 1
  // Task 0 (job a map) on [0,4), task 2 (job b map) also at 0 — capacity 1
  // would be violated; place job b's map after.
  sol.placements = {{0, Time{0}}, {0, Time{9}}, {0, Time{4}}};
  evaluate_solution(m, sol);
  EXPECT_EQ(validate_solution(m, sol), "");
  EXPECT_EQ(audit::brute_force_check_solution(m, sol), "");
}

TEST(BruteForceOracleTest, RejectsCapacityViolation) {
  const Model m = two_job_model();
  Solution sol;
  sol.placements = {{0, Time{0}}, {0, Time{4}}, {0, Time{2}}};  // both maps overlap on cap 1
  evaluate_solution(m, sol);
  EXPECT_NE(audit::brute_force_check_solution(m, sol), "");
}

TEST(BruteForceOracleTest, RejectsReduceBeforeMaps) {
  const Model m = two_job_model();
  Solution sol;
  sol.placements = {{0, Time{0}}, {0, Time{2}}, {0, Time{9}}};  // reduce starts mid-map
  evaluate_solution(m, sol);
  EXPECT_NE(audit::brute_force_check_solution(m, sol), "");
}

// --- Exhaustive enumeration oracle ------------------------------------------

TEST(ExhaustiveOracleTest, KnownOptimumZeroLate) {
  // One resource, two jobs, loose deadlines: everything fits on time.
  Model m;
  m.add_resource(2, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{100}, 0);
  m.add_task(a, Phase::kMap, Time{3});
  m.add_task(a, Phase::kMap, Time{3});
  m.add_task(a, Phase::kReduce, Time{2});
  const CpJobIndex b = m.add_job(Time{0}, Time{100}, 1);
  m.add_task(b, Phase::kMap, Time{4});
  ASSERT_EQ(m.validate(), "");
  EXPECT_EQ(audit::exhaustive_min_late(m), 0);
}

TEST(ExhaustiveOracleTest, KnownOptimumOneLate) {
  // Map capacity 1 and two jobs each needing the full horizon: exactly
  // one must be late whatever the order.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{5}, 0);
  m.add_task(a, Phase::kMap, Time{5});
  const CpJobIndex b = m.add_job(Time{0}, Time{5}, 1);
  m.add_task(b, Phase::kMap, Time{5});
  ASSERT_EQ(m.validate(), "");
  EXPECT_EQ(audit::exhaustive_min_late(m), 1);
}

TEST(ExhaustiveOracleTest, OrderingMattersEdfStyle) {
  // Tight job must go first for zero late: EDF-shaped instance.
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex tight = m.add_job(Time{0}, Time{3}, 0);
  m.add_task(tight, Phase::kMap, Time{3});
  const CpJobIndex loose = m.add_job(Time{0}, Time{100}, 1);
  m.add_task(loose, Phase::kMap, Time{4});
  ASSERT_EQ(m.validate(), "");
  EXPECT_EQ(audit::exhaustive_min_late(m), 0);
}

TEST(ExhaustiveOracleTest, RespectsBudget) {
  Model m;
  m.add_resource(2, 2);
  const CpJobIndex j = m.add_job(Time{0}, Time{100}, 0);
  for (int t = 0; t < 6; ++t) m.add_task(j, Phase::kMap, Time{2});
  ASSERT_EQ(m.validate(), "");
  EXPECT_EQ(audit::exhaustive_min_late(m, /*max_schedules=*/1), -1);
}

TEST(ExhaustiveOracleTest, AgreesWithSolverOnPinnedModel) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex a = m.add_job(Time{0}, Time{6}, 0);
  const CpTaskIndex t0 = m.add_task(a, Phase::kMap, Time{4});
  const CpJobIndex b = m.add_job(Time{0}, Time{4}, 1);
  m.add_task(b, Phase::kMap, Time{3});
  // Job a's map is already running: job b cannot finish by 4.
  m.pin_task(t0, 0, Time{0});
  ASSERT_EQ(m.validate(), "");
  EXPECT_EQ(audit::exhaustive_min_late(m), 1);

  SolveParams params;
  params.seed = 5;
  params.time_limit_s = 5.0;
  const SolveResult result = solve(m, params);
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(result.best.num_late, 1);
  EXPECT_EQ(audit::brute_force_check_solution(m, result.best), "");
}

}  // namespace
}  // namespace mrcp::cp
