// Determinism of the parallel portfolio/LNS solver: for a fixed seed
// (and a budget that does not bind), solve() must return identical
// num_late and placements for every thread count. The winner fold runs
// after the barrier and the shared incumbent bound only cuts
// strictly-worse branches, so 1, 4 and all-hardware threads must agree
// bit-for-bit (docs/cp_engine.md states the guarantee).
#include "cp/solver.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace mrcp::cp {
namespace {

SolveParams parallel_params(std::uint64_t seed) {
  SolveParams p;
  p.improvement_fails = 2000;
  p.lns_iterations = 24;
  p.lns_batch = 4;
  p.time_limit_s = 60.0;  // must not bind: timing-dependent cutoffs
                          // are the one non-deterministic knob
  p.seed = seed;
  return p;
}

/// Random open-stream instance in the tier-1 scenario shape (mixed
/// tight/loose deadlines, map+reduce phases, several resources).
Model random_model(std::uint64_t seed) {
  RandomStream rng(seed, 0);
  Model m;
  const int num_resources = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < num_resources; ++r) {
    m.add_resource(static_cast<int>(rng.uniform_int(1, 3)),
                   static_cast<int>(rng.uniform_int(1, 3)));
  }
  const int num_jobs = static_cast<int>(rng.uniform_int(3, 10));
  for (int j = 0; j < num_jobs; ++j) {
    const Time est{rng.uniform_int(0, 100)};
    Time work;
    std::vector<Time> maps;
    std::vector<Time> reduces;
    const int nm = static_cast<int>(rng.uniform_int(1, 6));
    const int nr = static_cast<int>(rng.uniform_int(0, 4));
    for (int t = 0; t < nm; ++t) {
      maps.push_back(Time{rng.uniform_int(5, 60)});
      work += maps.back();
    }
    for (int t = 0; t < nr; ++t) {
      reduces.push_back(Time{rng.uniform_int(5, 60)});
      work += reduces.back();
    }
    const Time deadline = est + work / 2 + Time{rng.uniform_int(20, 150)};
    const CpJobIndex cj = m.add_job(est, deadline, j);
    for (Time d : maps) m.add_task(cj, Phase::kMap, d);
    for (Time d : reduces) m.add_task(cj, Phase::kReduce, d);
  }
  return m;
}

void expect_identical(const Solution& a, const Solution& b,
                      const std::string& what) {
  ASSERT_EQ(a.valid, b.valid) << what;
  ASSERT_EQ(a.num_late, b.num_late) << what;
  ASSERT_EQ(a.total_completion, b.total_completion) << what;
  ASSERT_EQ(a.placements.size(), b.placements.size()) << what;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].resource, b.placements[i].resource)
        << what << " task " << i;
    EXPECT_EQ(a.placements[i].start, b.placements[i].start)
        << what << " task " << i;
  }
}

class SolverThreadDeterminism : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SolverThreadDeterminism, SameResultForOneAndFourThreads) {
  const Model m = random_model(GetParam());
  ASSERT_EQ(m.validate(), "");

  SolveParams p1 = parallel_params(GetParam());
  p1.num_threads = 1;
  SolveParams p4 = p1;
  p4.num_threads = 4;
  SolveParams p_auto = p1;
  p_auto.num_threads = 0;  // all hardware threads

  const SolveResult r1 = solve(m, p1);
  const SolveResult r4 = solve(m, p4);
  const SolveResult ra = solve(m, p_auto);
  ASSERT_TRUE(r1.best.valid);
  EXPECT_EQ(validate_solution(m, r4.best), "");
  expect_identical(r1.best, r4.best, "1 vs 4 threads");
  expect_identical(r1.best, ra.best, "1 vs auto threads");
  EXPECT_EQ(r1.stats.best_ordering, r4.stats.best_ordering);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverThreadDeterminism,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SolverParallel, WarmStartDeterministicAcrossThreads) {
  const Model m = random_model(7);
  SolveParams p = parallel_params(7);
  p.num_threads = 1;
  const SolveResult warm = solve(m, p);
  SolveParams p4 = p;
  p4.num_threads = 4;
  const SolveResult r1 = solve(m, p, &warm.best);
  const SolveResult r4 = solve(m, p4, &warm.best);
  expect_identical(r1.best, r4.best, "warm-started 1 vs 4 threads");
  EXPECT_LE(r4.best.num_late, warm.best.num_late);
}

/// Random instance with a dense user-precedence DAG layered on top of
/// the implicit map→reduce barrier: chains inside jobs plus cross-job
/// edges. Exercises the SearchRoot precedence graph and the priority-topo
/// decision-order rebuild in the cached-search reset path.
Model precedence_heavy_model(std::uint64_t seed) {
  RandomStream rng(seed, 0x9E);
  Model m;
  m.add_resource(2, 2);
  m.add_resource(3, 1);
  std::vector<CpTaskIndex> all_maps;
  const int num_jobs = 6;
  for (int j = 0; j < num_jobs; ++j) {
    const Time est{rng.uniform_int(0, 50)};
    const CpJobIndex cj = m.add_job(est, est + Time{rng.uniform_int(80, 200)}, j);
    std::vector<CpTaskIndex> maps;
    const int nm = static_cast<int>(rng.uniform_int(2, 5));
    for (int t = 0; t < nm; ++t) {
      maps.push_back(m.add_task(cj, Phase::kMap, Time{rng.uniform_int(5, 40)}));
    }
    const int nr = static_cast<int>(rng.uniform_int(1, 3));
    for (int t = 0; t < nr; ++t) {
      m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(5, 40)});
    }
    // Chain the job's maps: map_0 -> map_1 -> ... (workflow stages).
    for (std::size_t t = 1; t < maps.size(); ++t) {
      m.add_precedence(maps[t - 1], maps[t]);
    }
    // Cross-job edge: this job's first map waits for an earlier job's
    // map — acyclic because edges only point from lower to higher jobs.
    if (!all_maps.empty() && rng.bernoulli(0.7)) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(all_maps.size()) - 1));
      m.add_precedence(all_maps[pick], maps.front());
    }
    all_maps.insert(all_maps.end(), maps.begin(), maps.end());
  }
  return m;
}

TEST(SolverParallel, PrecedenceHeavyIdenticalAtOneTwoAndEightThreads) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Model m = precedence_heavy_model(seed);
    ASSERT_EQ(m.validate(), "");
    ASSERT_GT(m.num_precedences(), 0u);

    SolveParams p1 = parallel_params(seed);
    p1.num_threads = 1;
    SolveParams p2 = p1;
    p2.num_threads = 2;
    SolveParams p8 = p1;
    p8.num_threads = 8;

    const SolveResult r1 = solve(m, p1);
    const SolveResult r2 = solve(m, p2);
    const SolveResult r8 = solve(m, p8);
    ASSERT_TRUE(r1.best.valid);
    EXPECT_EQ(validate_solution(m, r8.best), "");
    expect_identical(r1.best, r2.best, "precedence-heavy 1 vs 2 threads");
    expect_identical(r1.best, r8.best, "precedence-heavy 1 vs 8 threads");
    EXPECT_EQ(r1.stats.best_ordering, r8.stats.best_ordering);
  }
}

TEST(SolverParallel, LnsBatchOneMatchesSeedSemantics) {
  // lns_batch = 1 must reproduce the strictly sequential
  // accept-then-regenerate loop regardless of the thread count.
  const Model m = random_model(3);
  SolveParams a = parallel_params(3);
  a.lns_batch = 1;
  a.num_threads = 1;
  SolveParams b = a;
  b.num_threads = 4;
  expect_identical(solve(m, a).best, solve(m, b).best, "lns_batch=1");
}

}  // namespace
}  // namespace mrcp::cp
