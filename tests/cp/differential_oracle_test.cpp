// Differential testing of the full solver against exhaustive enumeration.
//
// For models small enough to enumerate (<= 7 free tasks here), the
// audit-layer oracle walks every candidate-respecting resource assignment
// crossed with every precedence-feasible task permutation (serial SGS
// generates all active schedules, and the paper's sum-N_j objective is
// regular, so the true optimum is among them). The solver — portfolio,
// branch-and-bound and LNS combined — must land on the same late-job
// count on every instance, and its schedule must pass both validators.
//
// Any divergence here is a propagation or search soundness bug, the
// exact class of defect that would silently bend the paper's Figs. 2-9.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "cp/audit.h"
#include "cp/model.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

struct GeneratedModel {
  Model model;
  bool usable = false;
};

/// Random small model: 1-2 resources, 1-3 jobs, <= 7 tasks total, mixed
/// tight/loose deadlines, occasional candidate restrictions, pinned
/// tasks, workflow precedences and link demands.
GeneratedModel generate_model(std::uint64_t seed) {
  RandomStream rng(seed, 0xD1FF);
  GeneratedModel out;
  Model& m = out.model;

  const int num_resources = static_cast<int>(rng.uniform_int(1, 2));
  const bool with_links = rng.bernoulli(0.25);
  std::vector<int> map_caps;
  std::vector<int> reduce_caps;
  for (int r = 0; r < num_resources; ++r) {
    const int map_cap = static_cast<int>(rng.uniform_int(1, 2));
    const int reduce_cap = static_cast<int>(rng.uniform_int(1, 2));
    const int net_cap = with_links ? static_cast<int>(rng.uniform_int(0, 2)) : 0;
    m.add_resource(map_cap, reduce_cap, net_cap);
    map_caps.push_back(map_cap);
    reduce_caps.push_back(reduce_cap);
  }
  const int max_map_cap = *std::max_element(map_caps.begin(), map_caps.end());
  const int max_reduce_cap =
      *std::max_element(reduce_caps.begin(), reduce_caps.end());

  const int num_jobs = static_cast<int>(rng.uniform_int(1, 3));
  int tasks_left = 7;
  std::vector<CpTaskIndex> all_tasks;
  for (int ji = 0; ji < num_jobs; ++ji) {
    const Time est{rng.uniform_int(0, 10)};
    const int num_maps =
        static_cast<int>(rng.uniform_int(1, std::min<std::int64_t>(3, tasks_left)));
    tasks_left -= num_maps;
    const int num_reduces = static_cast<int>(
        rng.uniform_int(0, std::min<std::int64_t>(2, tasks_left)));
    tasks_left -= num_reduces;

    Time total_work;
    // Deadline set after tasks are known; add_job first, patch via a
    // second job if needed — Model has no deadline setter, so draw the
    // durations first.
    std::vector<Time> map_durs(static_cast<std::size_t>(num_maps));
    std::vector<Time> reduce_durs(static_cast<std::size_t>(num_reduces));
    for (Time& d : map_durs) {
      d = Time{rng.uniform_int(1, 8)};
      total_work += d;
    }
    for (Time& d : reduce_durs) {
      d = Time{rng.uniform_int(1, 8)};
      total_work += d;
    }
    // Slack factor from ~0.5 (often must be late) to ~2.5 (loose).
    const Time deadline =
        est + (total_work * rng.uniform_int(5, 25)) / 10;
    const CpJobIndex j = m.add_job(est, deadline, ji);

    for (int k = 0; k < num_maps; ++k) {
      const int demand =
          max_map_cap > 1 && rng.bernoulli(0.2) ? 2 : 1;
      const int net_demand =
          with_links && rng.bernoulli(0.4) ? static_cast<int>(rng.uniform_int(1, 2))
                                           : 0;
      all_tasks.push_back(m.add_task(j, Phase::kMap,
                                     map_durs[static_cast<std::size_t>(k)],
                                     demand, -1, net_demand));
    }
    for (int k = 0; k < num_reduces; ++k) {
      const int demand =
          max_reduce_cap > 1 && rng.bernoulli(0.2) ? 2 : 1;
      all_tasks.push_back(m.add_task(j, Phase::kReduce,
                                     reduce_durs[static_cast<std::size_t>(k)],
                                     demand, -1, 0));
    }
    if (tasks_left <= 0) break;
  }

  // Candidate restrictions: drop one resource from a task's alternative
  // now and then, keeping at least one capacity-feasible candidate.
  if (m.num_resources() > 1) {
    for (CpTaskIndex t : all_tasks) {
      if (!rng.bernoulli(0.3)) continue;
      const CpTask& task = m.task(t);
      std::vector<CpResourceIndex> keep;
      for (CpResourceIndex r = 0;
           r < static_cast<CpResourceIndex>(m.num_resources()); ++r) {
        const CpResource& res = m.resource(r);
        if (res.capacity(task.phase) < task.demand) continue;
        if (task.net_demand > 0 && m.links_constrained() &&
            res.net_capacity < task.net_demand) {
          continue;
        }
        keep.push_back(r);
      }
      if (keep.size() < 2) continue;
      keep.erase(keep.begin() +
                 static_cast<std::ptrdiff_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(keep.size()) - 1)));
      m.restrict_candidates(t, keep);
    }
  }

  // Pin at most one map task, at its job's earliest start on a feasible
  // resource — mirrors a task already running at re-plan time.
  if (rng.bernoulli(0.2) && !all_tasks.empty()) {
    for (CpTaskIndex t : all_tasks) {
      const CpTask& task = m.task(t);
      if (task.phase != Phase::kMap) continue;
      CpResourceIndex target = kAnyResource;
      for (CpResourceIndex r = 0;
           r < static_cast<CpResourceIndex>(m.num_resources()); ++r) {
        const CpResource& res = m.resource(r);
        const bool candidate_ok =
            task.candidates.empty() ||
            std::find(task.candidates.begin(), task.candidates.end(), r) !=
                task.candidates.end();
        const bool net_ok = task.net_demand == 0 || !m.links_constrained() ||
                            res.net_capacity >= task.net_demand;
        if (candidate_ok && net_ok && res.capacity(task.phase) >= task.demand) {
          target = r;
          break;
        }
      }
      if (target == kAnyResource) break;
      m.pin_task(t, target, m.job(task.job).earliest_start);
      break;
    }
  }

  // Workflow precedence between two tasks of different jobs occasionally
  // (maps only, to keep the DAG trivially acyclic alongside map->reduce).
  if (all_tasks.size() >= 2 && rng.bernoulli(0.25)) {
    std::vector<CpTaskIndex> maps;
    for (CpTaskIndex t : all_tasks) {
      if (m.task(t).phase == Phase::kMap && !m.task(t).pinned) maps.push_back(t);
    }
    if (maps.size() >= 2) {
      m.add_precedence(maps.front(), maps.back());
    }
  }

  out.usable = m.validate().empty();
  return out;
}

SolveParams thorough_params(std::uint64_t seed) {
  SolveParams p;
  p.portfolio = {JobOrdering::kEdf, JobOrdering::kLeastLaxity,
                 JobOrdering::kJobId, JobOrdering::kFcfs};
  p.improvement_fails = 200000;
  p.postpone_tries = 3;
  p.lns_iterations = 40;
  p.lns_batch = 2;
  p.time_limit_s = 10.0;
  p.seed = seed;
  return p;
}

TEST(DifferentialOracle, SolverMatchesExhaustiveEnumerationOn500Models) {
  int compared = 0;
  int skipped_budget = 0;
  std::uint64_t seed = 0;
  while (compared < 500) {
    ++seed;
    GeneratedModel gen = generate_model(seed);
    if (!gen.usable) continue;
    const Model& m = gen.model;

    const int oracle_late = audit::exhaustive_min_late(m);
    if (oracle_late < 0) {
      // Enumeration budget exceeded — should be rare at this size.
      ++skipped_budget;
      ASSERT_LT(skipped_budget, 25) << "enumeration budget exceeded too often";
      continue;
    }

    const SolveResult result = solve(m, thorough_params(seed));
    ASSERT_TRUE(result.best.valid) << "seed " << seed;
    // Feasibility: both the production validator and the independent
    // brute-force oracle must accept the schedule.
    EXPECT_EQ(validate_solution(m, result.best), "") << "seed " << seed;
    EXPECT_EQ(audit::brute_force_check_solution(m, result.best), "")
        << "seed " << seed;
    // Objective: exact agreement with the enumerated optimum.
    EXPECT_EQ(result.best.num_late, oracle_late)
        << "seed " << seed << " (solver " << result.best.num_late
        << " vs exhaustive " << oracle_late << ")";
    if (result.best.num_late != oracle_late) {
      // One counterexample is enough to diagnose; don't spam 500.
      break;
    }
    ++compared;
  }
  EXPECT_EQ(compared, 500);
}

}  // namespace
}  // namespace mrcp::cp
