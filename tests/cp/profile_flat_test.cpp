// Randomized differential test: the flat-timeline Profile against a
// straightforward map-of-deltas reference model (the seed
// implementation), over long random add/remove/query sequences. Any
// divergence in earliest_feasible / fits / usage_at / peak_usage /
// next_event_after / num_events is a bug in the timeline or its skip
// index.
#include "cp/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace mrcp::cp {
namespace {

/// The seed's map-based profile, kept verbatim as the oracle.
class ReferenceProfile {
 public:
  explicit ReferenceProfile(int capacity) : capacity_(capacity) {}

  Time earliest_feasible(Time est, Time duration, int demand) const {
    int usage = 0;
    auto it = delta_.begin();
    for (; it != delta_.end() && it->first <= est; ++it) usage += it->second;
    Time candidate = est;
    bool in_feasible = usage + demand <= capacity_;
    while (true) {
      const Time next_change = (it == delta_.end()) ? kMaxTime : it->first;
      if (in_feasible && next_change - candidate >= duration) return candidate;
      if (it == delta_.end()) return candidate;
      const Time seg_start = next_change;
      while (it != delta_.end() && it->first == seg_start) {
        usage += it->second;
        ++it;
      }
      const bool feasible_now = usage + demand <= capacity_;
      if (feasible_now && !in_feasible) candidate = seg_start;
      in_feasible = feasible_now;
    }
  }

  bool fits(Time start, Time duration, int demand) const {
    int usage = 0;
    auto it = delta_.begin();
    for (; it != delta_.end() && it->first <= start; ++it) usage += it->second;
    if (usage + demand > capacity_) return false;
    for (; it != delta_.end() && it->first < start + duration; ++it) {
      usage += it->second;
      if (usage + demand > capacity_) return false;
    }
    return true;
  }

  void add(Time start, Time duration, int demand) {
    apply(start, duration, demand);
  }
  void remove(Time start, Time duration, int demand) {
    apply(start, duration, -demand);
  }

  int usage_at(Time t) const {
    int usage = 0;
    for (const auto& [time, d] : delta_) {
      if (time > t) break;
      usage += d;
    }
    return usage;
  }

  Time next_event_after(Time t) const {
    auto it = delta_.upper_bound(t);
    return it == delta_.end() ? kMaxTime : it->first;
  }

  int peak_usage() const {
    int usage = 0;
    int peak = 0;
    for (const auto& [time, d] : delta_) {
      usage += d;
      peak = std::max(peak, usage);
    }
    return peak;
  }

  std::size_t num_events() const { return delta_.size(); }

 private:
  void apply(Time start, Time duration, int delta) {
    delta_[start] += delta;
    if (delta_[start] == 0) delta_.erase(start);
    delta_[start + duration] -= delta;
    auto it = delta_.find(start + duration);
    if (it != delta_.end() && it->second == 0) delta_.erase(it);
  }

  int capacity_;
  std::map<Time, int> delta_;
};

class FlatProfileDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FlatProfileDifferential, AgreesWithMapReferenceOverRandomOps) {
  RandomStream rng(GetParam(), 0);
  const int capacity = static_cast<int>(rng.uniform_int(1, 8));
  Profile flat(capacity);
  ReferenceProfile ref(capacity);
  std::vector<std::tuple<Time, Time, int>> placed;

  const int kOps = 10000;
  for (int op = 0; op < kOps; ++op) {
    const auto dice = rng.uniform_int(0, 9);
    if (dice < 4 || placed.empty()) {
      // Add: mix of clustered short intervals and tail appends (the
      // set-times pattern the fast path serves).
      const Time s{rng.bernoulli(0.3) ? rng.uniform_int(0, 200)
                                      : rng.uniform_int(0, 100000)};
      const Time d{rng.uniform_int(1, 500)};
      const int q = static_cast<int>(rng.uniform_int(1, capacity));
      flat.add(s, d, q);
      ref.add(s, d, q);
      placed.emplace_back(s, d, q);
    } else if (dice < 6) {
      // Remove a random placed interval.
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(placed.size()) - 1));
      const auto [s, d, q] = placed[i];
      flat.remove(s, d, q);
      ref.remove(s, d, q);
      placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const Time t{rng.uniform_int(0, 110000)};
      const Time dur{rng.uniform_int(1, 800)};
      const int q = static_cast<int>(rng.uniform_int(1, capacity));
      ASSERT_EQ(flat.earliest_feasible(t, dur, q),
                ref.earliest_feasible(t, dur, q))
          << "op " << op << " est=" << t << " dur=" << dur << " q=" << q;
      ASSERT_EQ(flat.fits(t, dur, q), ref.fits(t, dur, q)) << "op " << op;
      ASSERT_EQ(flat.usage_at(t), ref.usage_at(t)) << "op " << op;
      ASSERT_EQ(flat.next_event_after(t), ref.next_event_after(t))
          << "op " << op;
    }
    if (op % 512 == 0) {
      ASSERT_EQ(flat.peak_usage(), ref.peak_usage()) << "op " << op;
      ASSERT_EQ(flat.num_events(), ref.num_events()) << "op " << op;
    }
  }

  // Drain everything: both representations must collapse to empty.
  rng.shuffle(placed.begin(), placed.end());
  for (const auto& [s, d, q] : placed) {
    flat.remove(s, d, q);
    ref.remove(s, d, q);
  }
  EXPECT_EQ(flat.num_events(), 0u);
  EXPECT_EQ(ref.num_events(), 0u);
  EXPECT_EQ(flat.peak_usage(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatProfileDifferential,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55));

// Overloaded profiles (usage above capacity) still answer queries the
// same way the reference does: add() never checks capacity, and the
// search relies on queries being exact in that regime too.
TEST(FlatProfileDifferentialTest, OverloadedProfileAgrees) {
  Profile flat(2);
  ReferenceProfile ref(2);
  for (int i = 0; i < 5; ++i) {
    flat.add(Time{10}, Time{20}, 2);
    ref.add(Time{10}, Time{20}, 2);
  }
  for (Time t : {Time{0}, Time{5}, Time{9}, Time{10}, Time{15}, Time{29}, Time{30}, Time{31}}) {
    EXPECT_EQ(flat.usage_at(t), ref.usage_at(t)) << t;
    EXPECT_EQ(flat.earliest_feasible(t, Time{5}, 1), ref.earliest_feasible(t, Time{5}, 1))
        << t;
  }
  EXPECT_EQ(flat.peak_usage(), 10);
}

}  // namespace
}  // namespace mrcp::cp
