// Differential test of the block-first feasibility sweeps inside
// Profile (next_violation / next_ok, exercised through earliest_feasible
// and fits) against the always-compiled O(n^2) audit::ReferenceProfile
// oracle. The constructions force every sweep regime: timelines several
// times longer than the 64-event skip block, queries entering mid-block
// and exactly at block boundaries, long capacity-saturated plateaus
// (whole-block next_ok skips), and removal storms that shrink and
// re-grow the block index.
#include "cp/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "cp/audit.h"

namespace mrcp::cp {
namespace {

/// Compare fast vs oracle on earliest_feasible / fits / usage_at at one
/// query point, for a spread of durations and demands.
void check_queries_at(const Profile& fast, const audit::ReferenceProfile& ref,
                      Time est) {
  for (const Time dur : {Time{1}, Time{7}, Time{100}, Time{5000}}) {
    for (int demand = 1; demand <= ref.capacity(); demand += 3) {
      const Time want = ref.earliest_feasible(est, dur, demand);
      const Time got = fast.earliest_feasible(est, dur, demand);
      ASSERT_EQ(want, got) << "earliest_feasible(est=" << est
                           << ", dur=" << dur << ", demand=" << demand << ")";
      ASSERT_EQ(ref.fits(est, dur, demand), fast.fits(est, dur, demand))
          << "fits(start=" << est << ", dur=" << dur << ", demand=" << demand
          << ")";
    }
  }
  ASSERT_EQ(ref.usage_at(est), fast.usage_at(est)) << "usage_at(" << est << ")";
}

/// Query at, just before, and just after every stored change point —
/// whatever block an event lands in, some query enters that block
/// mid-way and some exactly at its boundary.
void check_around_change_points(const Profile& fast,
                                const audit::ReferenceProfile& ref) {
  for (const Time t : ref.change_points()) {
    check_queries_at(fast, ref, std::max(Time{0}, t - Time{1}));
    check_queries_at(fast, ref, t);
    check_queries_at(fast, ref, t + Time{1});
  }
}

TEST(ProfileBlockSweep, SaturatedPlateausWithSparseHoles) {
  // Full-capacity plateaus hundreds of events long: next_ok must skip
  // whole blocks to find the sparse holes, and next_violation must stop
  // at the first saturated entry after each hole.
  constexpr int kCapacity = 4;
  Profile fast(kCapacity);
  audit::ReferenceProfile ref(kCapacity);
  // 400 adjacent near-saturated segments with alternating levels (equal
  // neighbouring levels would merge into one change point), a deep hole
  // every 37 segments -> ~400 change points (> 6 blocks).
  Time t;
  for (int seg = 0; seg < 400; ++seg) {
    const Time dur{5 + (seg % 3)};
    const int demand = (seg % 37 == 0) ? 1
                       : (seg % 2 != 0) ? kCapacity
                                        : kCapacity - 1;
    fast.add(t, dur, demand);
    ref.add(t, dur, demand);
    t += dur;
  }
  ASSERT_GT(fast.num_events(), 64u * 3u);
  check_around_change_points(fast, ref);
  // Far-right queries past the support must return est itself.
  check_queries_at(fast, ref, t + Time{12345});
}

TEST(ProfileBlockSweep, RandomDifferentialLongTimeline) {
  constexpr int kCapacity = 6;
  RandomStream rng(17, 0xB10C);
  Profile fast(kCapacity);
  audit::ReferenceProfile ref(kCapacity);
  std::vector<std::tuple<Time, Time, int>> live;
  for (int step = 0; step < 600; ++step) {
    const Time start{rng.uniform_int(0, 20000)};
    const Time dur{rng.uniform_int(1, 400)};
    const int demand = static_cast<int>(rng.uniform_int(1, kCapacity));
    if (ref.fits(start, dur, demand)) {
      fast.add(start, dur, demand);
      ref.add(start, dur, demand);
      live.emplace_back(start, dur, demand);
    }
    if (step % 50 == 49) {
      // Interleaved queries at random and boundary-adjacent points.
      for (int q = 0; q < 20; ++q) {
        check_queries_at(fast, ref, Time{rng.uniform_int(0, 25000)});
      }
    }
  }
  ASSERT_GT(fast.num_events(), 64u * 3u);
  check_around_change_points(fast, ref);
}

TEST(ProfileBlockSweep, RemovalStormKeepsSweepsExact) {
  constexpr int kCapacity = 5;
  RandomStream rng(23, 0xDEAD);
  Profile fast(kCapacity);
  audit::ReferenceProfile ref(kCapacity);
  std::vector<std::tuple<Time, Time, int>> live;
  for (int i = 0; i < 500; ++i) {
    const Time start{rng.uniform_int(0, 30000)};
    const Time dur{rng.uniform_int(1, 300)};
    const int demand = static_cast<int>(rng.uniform_int(1, kCapacity));
    if (!ref.fits(start, dur, demand)) continue;
    fast.add(start, dur, demand);
    ref.add(start, dur, demand);
    live.emplace_back(start, dur, demand);
  }
  ASSERT_GT(fast.num_events(), 64u * 3u);
  // Remove in shuffled order, re-checking the sweeps as the timeline
  // (and its block index) shrinks through every block-count boundary.
  for (std::size_t i = live.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(live[j], live[i - 1]);
    const auto [start, dur, demand] = live[i - 1];
    fast.remove(start, dur, demand);
    ref.remove(start, dur, demand);
    live.pop_back();
    if (i % 25 == 0) {
      for (int q = 0; q < 10; ++q) {
        check_queries_at(fast, ref, Time{rng.uniform_int(0, 35000)});
      }
    }
  }
  check_around_change_points(fast, ref);
}

}  // namespace
}  // namespace mrcp::cp
