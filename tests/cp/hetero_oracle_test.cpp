// Differential testing of the solver on heterogeneous, placement-
// constrained models against exhaustive enumeration.
//
// This is the companion of differential_oracle_test.cpp for the hetero
// extension: resources carry speed factors (durations become
// assignment-dependent), tasks carry data-locality candidate sets and
// anti-affinity groups. The enumeration oracle walks every candidate-
// and affinity-respecting resource assignment crossed with every
// precedence-feasible task permutation; active schedules under a regular
// objective still contain the optimum, so exact agreement is required.
//
// The EDF fallback scheduler is held to a weaker but still differential
// standard on the same instances: its schedule must pass both the
// production validator and the independent brute-force checker, and its
// late count can never beat the enumerated optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/fallback_scheduler.h"
#include "cp/audit.h"
#include "cp/model.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

constexpr int kSpeedChoices[] = {500, 750, 1000, 1500, 2000};

struct GeneratedModel {
  Model model;
  bool usable = false;
  bool placement = false;  ///< carries candidates or an affinity group
};

/// Random small hetero model: 2-3 resources with mixed speed factors,
/// 1-3 jobs, <= 6 tasks total (the extra resource multiplies the
/// enumeration fan-out, so one task fewer than the homogeneous suite),
/// candidate restrictions, anti-affinity pairs and pinned tasks.
GeneratedModel generate_hetero_model(std::uint64_t seed) {
  RandomStream rng(seed, 0x4E70);
  GeneratedModel out;
  Model& m = out.model;

  const int num_resources = static_cast<int>(rng.uniform_int(2, 3));
  const bool hetero = rng.bernoulli(0.8);
  for (int r = 0; r < num_resources; ++r) {
    const int map_cap = static_cast<int>(rng.uniform_int(1, 2));
    const int reduce_cap = static_cast<int>(rng.uniform_int(1, 2));
    const int speed =
        hetero ? kSpeedChoices[rng.uniform_int(0, 4)] : kBaseSpeedPermille;
    m.add_resource(map_cap, reduce_cap, /*net_capacity=*/0, speed);
  }

  const int num_jobs = static_cast<int>(rng.uniform_int(1, 3));
  int tasks_left = 6;
  std::vector<CpTaskIndex> all_tasks;
  for (int ji = 0; ji < num_jobs; ++ji) {
    const Time est{rng.uniform_int(0, 10)};
    const int num_maps = static_cast<int>(
        rng.uniform_int(1, std::min<std::int64_t>(3, tasks_left)));
    tasks_left -= num_maps;
    const int num_reduces = static_cast<int>(
        rng.uniform_int(0, std::min<std::int64_t>(2, tasks_left)));
    tasks_left -= num_reduces;

    Time total_work;
    std::vector<Time> map_durs(static_cast<std::size_t>(num_maps));
    std::vector<Time> reduce_durs(static_cast<std::size_t>(num_reduces));
    for (Time& d : map_durs) {
      d = Time{rng.uniform_int(1, 8)};
      total_work += d;
    }
    for (Time& d : reduce_durs) {
      d = Time{rng.uniform_int(1, 8)};
      total_work += d;
    }
    // Slack factor from ~0.5 (often must be late) to ~2.5 (loose). Base
    // durations; a slow machine can still push a loose job late, which
    // is exactly the regime the differential must cover.
    const Time deadline = est + (total_work * rng.uniform_int(5, 25)) / 10;
    const CpJobIndex j = m.add_job(est, deadline, ji);

    for (int k = 0; k < num_maps; ++k) {
      all_tasks.push_back(m.add_task(
          j, Phase::kMap, map_durs[static_cast<std::size_t>(k)], 1, -1, 0));
    }
    for (int k = 0; k < num_reduces; ++k) {
      all_tasks.push_back(m.add_task(
          j, Phase::kReduce, reduce_durs[static_cast<std::size_t>(k)], 1, -1,
          0));
    }

    // Anti-affinity: the job's first two tasks must run on distinct
    // resources now and then. Group ids are model-global and dense.
    if (num_maps + num_reduces >= 2 && rng.bernoulli(0.3)) {
      const int group = m.num_affinity_groups();
      const std::size_t base = all_tasks.size() -
                               static_cast<std::size_t>(num_maps + num_reduces);
      m.set_affinity_group(all_tasks[base], group);
      m.set_affinity_group(all_tasks[base + 1], group);
      out.placement = true;
    }
    if (tasks_left <= 0) break;
  }

  // Candidate restrictions (data locality compiled down to the CP layer):
  // drop one resource from a task's alternative now and then. Grouped
  // tasks keep their full candidate set, mirroring the workload
  // generator's feasibility guarantee.
  for (CpTaskIndex t : all_tasks) {
    if (m.task(t).affinity_group >= 0) continue;
    if (!rng.bernoulli(0.35)) continue;
    std::vector<CpResourceIndex> keep;
    for (CpResourceIndex r = 0;
         r < static_cast<CpResourceIndex>(m.num_resources()); ++r) {
      keep.push_back(r);
    }
    keep.erase(keep.begin() +
               static_cast<std::ptrdiff_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(keep.size()) - 1)));
    m.restrict_candidates(t, keep);
    out.placement = true;
  }

  // Pin at most one map task at its job's earliest start — a task
  // already running at re-plan time, on a possibly slow machine.
  if (rng.bernoulli(0.25)) {
    for (CpTaskIndex t : all_tasks) {
      const CpTask& task = m.task(t);
      if (task.phase != Phase::kMap) continue;
      CpResourceIndex target = kAnyResource;
      for (CpResourceIndex r = 0;
           r < static_cast<CpResourceIndex>(m.num_resources()); ++r) {
        const bool candidate_ok =
            task.candidates.empty() ||
            std::find(task.candidates.begin(), task.candidates.end(), r) !=
                task.candidates.end();
        if (candidate_ok) {
          target = r;
          break;
        }
      }
      if (target == kAnyResource) break;
      m.pin_task(t, target, m.job(task.job).earliest_start);
      break;
    }
  }

  out.usable = m.validate().empty();
  return out;
}

SolveParams thorough_params(std::uint64_t seed) {
  SolveParams p;
  p.portfolio = {JobOrdering::kEdf, JobOrdering::kLeastLaxity,
                 JobOrdering::kJobId, JobOrdering::kFcfs};
  p.improvement_fails = 200000;
  p.postpone_tries = 3;
  p.lns_iterations = 40;
  p.lns_batch = 2;
  p.time_limit_s = 10.0;
  p.seed = seed;
  return p;
}

TEST(HeteroOracle, SolverMatchesExhaustiveEnumerationOn500HeteroModels) {
  int compared = 0;
  int with_placement = 0;
  int skipped_budget = 0;
  std::uint64_t seed = 0;
  while (compared < 500) {
    ++seed;
    GeneratedModel gen = generate_hetero_model(seed);
    if (!gen.usable) continue;
    const Model& m = gen.model;

    const int oracle_late = audit::exhaustive_min_late(m);
    if (oracle_late < 0) {
      ++skipped_budget;
      ASSERT_LT(skipped_budget, 25) << "enumeration budget exceeded too often";
      continue;
    }

    const SolveResult result = solve(m, thorough_params(seed));
    ASSERT_TRUE(result.best.valid) << "seed " << seed;
    EXPECT_EQ(validate_solution(m, result.best), "") << "seed " << seed;
    EXPECT_EQ(audit::brute_force_check_solution(m, result.best), "")
        << "seed " << seed;
    EXPECT_EQ(result.best.num_late, oracle_late)
        << "seed " << seed << " (solver " << result.best.num_late
        << " vs exhaustive " << oracle_late << ")";
    if (result.best.num_late != oracle_late) break;
    with_placement += gen.placement ? 1 : 0;
    ++compared;
  }
  EXPECT_EQ(compared, 500);
  // The generator must actually exercise the new constraint classes, not
  // just speed factors.
  EXPECT_GT(with_placement, 150);
}

TEST(HeteroOracle, EdfFallbackIsSoundAndNeverBeatsTheOptimum) {
  int compared = 0;
  std::uint64_t seed = 1000000;  // disjoint from the solver sweep above
  while (compared < 200) {
    ++seed;
    GeneratedModel gen = generate_hetero_model(seed);
    if (!gen.usable) continue;
    const Model& m = gen.model;

    const int oracle_late = audit::exhaustive_min_late(m);
    if (oracle_late < 0) continue;

    const Solution fb = fallback_schedule(m);
    if (!fb.valid) continue;  // affinity can defeat the greedy — allowed
    EXPECT_EQ(validate_solution(m, fb), "") << "seed " << seed;
    EXPECT_EQ(audit::brute_force_check_solution(m, fb), "") << "seed " << seed;
    // A heuristic can tie the optimum but a "better" count would mean a
    // validator hole, not a smarter greedy.
    EXPECT_GE(fb.num_late, oracle_late) << "seed " << seed;
    ++compared;
  }
  EXPECT_EQ(compared, 200);
}

}  // namespace
}  // namespace mrcp::cp
