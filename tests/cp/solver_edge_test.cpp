// Edge-case and budget-behaviour tests for the solver layer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cp/solver.h"

namespace mrcp::cp {
namespace {

Model contended_model(int jobs, std::uint64_t seed) {
  RandomStream rng(seed, 0);
  Model m;
  m.add_resource(2, 2);
  for (int j = 0; j < jobs; ++j) {
    const Time est{rng.uniform_int(0, 20)};
    const Time work{rng.uniform_int(50, 120)};
    // Deliberately tight deadlines so late jobs exist and LNS has work.
    const CpJobIndex cj = m.add_job(est, est + work + Time{rng.uniform_int(0, 60)}, j);
    m.add_task(cj, Phase::kMap, work);
    m.add_task(cj, Phase::kReduce, Time{rng.uniform_int(10, 40)});
  }
  return m;
}

TEST(SolverEdge, ZeroBudgetsStillReturnCompleteSchedule) {
  const Model m = contended_model(6, 1);
  SolveParams p;
  p.improvement_fails = 0;
  p.lns_iterations = 0;
  p.time_limit_s = 0.0;  // exhausted immediately — first descent must win out
  const SolveResult r = solve(m, p);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(validate_solution(m, r.best), "");
}

TEST(SolverEdge, MoreBudgetNeverWorse) {
  const Model m = contended_model(8, 3);
  SolveParams small;
  small.improvement_fails = 0;
  small.lns_iterations = 0;
  SolveParams big;
  big.improvement_fails = 5000;
  big.lns_iterations = 50;
  big.time_limit_s = 5.0;
  const SolveResult a = solve(m, small);
  const SolveResult b = solve(m, big);
  EXPECT_LE(b.best.num_late, a.best.num_late);
}

TEST(SolverEdge, LnsImprovementsAreCounted) {
  // Over several seeds, at least one contended instance should record an
  // LNS improvement (the counter is otherwise hard to pin down
  // deterministically without over-fitting to solver internals).
  int total_improvements = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Model m = contended_model(8, seed);
    SolveParams p;
    p.improvement_fails = 0;  // leave all improvement to LNS
    p.lns_iterations = 40;
    p.time_limit_s = 5.0;
    p.seed = seed;
    total_improvements += solve(m, p).stats.lns_improvements;
  }
  EXPECT_GT(total_improvements, 0);
}

TEST(SolverEdge, ProvedOptimalOnZeroLate) {
  Model m;
  m.add_resource(4, 4);
  const CpJobIndex j = m.add_job(Time{0}, Time{100000}, 0);
  m.add_task(j, Phase::kMap, Time{10});
  const SolveResult r = solve(m, SolveParams{});
  EXPECT_EQ(r.best.num_late, 0);
  EXPECT_TRUE(r.stats.proved_optimal);
}

TEST(SolverEdge, NotProvedOptimalWhenLateAndBudgetTiny) {
  // Two slots, four identical jobs: two finish on time, two must be
  // late. The alternative/postpone branching tree is far larger than a
  // one-fail budget, and lateness only shows up deep in the tree (no
  // job is statically late), so the cut-off search must not claim an
  // optimality proof.
  Model m;
  m.add_resource(1, 1);
  m.add_resource(1, 1);
  for (int j = 0; j < 4; ++j) {
    const CpJobIndex job = m.add_job(Time{0}, Time{70}, j);
    m.add_task(job, Phase::kMap, Time{60});
  }
  SolveParams p;
  p.improvement_fails = 1;  // cannot exhaust the space
  p.lns_iterations = 0;
  const SolveResult r = solve(m, p);
  EXPECT_GE(r.best.num_late, 1);
  EXPECT_FALSE(r.stats.proved_optimal);
}

TEST(SolverEdge, SingleOrderingPortfolioWorks) {
  const Model m = contended_model(5, 7);
  SolveParams p;
  p.portfolio = {JobOrdering::kFcfs};
  const SolveResult r = solve(m, p);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(validate_solution(m, r.best), "");
  EXPECT_EQ(r.stats.best_ordering, JobOrdering::kFcfs);
}

TEST(SolverEdge, DecisionsAndFailsAccumulate) {
  const Model m = contended_model(8, 9);
  SolveParams p;
  p.improvement_fails = 500;
  p.lns_iterations = 10;
  const SolveResult r = solve(m, p);
  EXPECT_GT(r.stats.decisions, 0);
  EXPECT_GT(r.stats.solutions, 0);
}

TEST(SolverEdge, ManyIdenticalJobsStable) {
  Model m;
  m.add_resource(10, 10);
  for (int j = 0; j < 30; ++j) {
    const CpJobIndex cj = m.add_job(Time{0}, Time{5000}, j);
    m.add_task(cj, Phase::kMap, Time{100});
    m.add_task(cj, Phase::kReduce, Time{100});
  }
  const SolveResult r = solve(m, SolveParams{});
  EXPECT_EQ(validate_solution(m, r.best), "");
  EXPECT_EQ(r.best.num_late, 0);  // 30x200 work over 10+10 slots, loose d
}

TEST(SolverEdge, PinnedOnlyModelEvaluates) {
  Model m;
  m.add_resource(1, 1);
  const CpJobIndex j = m.add_job(Time{0}, Time{50}, 0);
  const CpTaskIndex t = m.add_task(j, Phase::kMap, Time{100});
  m.pin_task(t, 0, Time{10});  // ends at 110 > 50: late, and nothing to decide
  const SolveResult r = solve(m, SolveParams{});
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(r.best.num_late, 1);
  EXPECT_EQ(r.best.placements[0].start, Time{10});
}

}  // namespace
}  // namespace mrcp::cp
