// Workflow (user-specified precedence DAG) tests across the stack: the
// CP model/search, the resource manager, and the full simulation. This
// is the paper's §VII future-work generalization ("more complex
// workflows with user-specified precedence relationships").
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/mrcp_rm.h"
#include "cp/solver.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

// ---------------------------------------------------------------- CP level

TEST(WorkflowCp, ChainIsSequenced) {
  cp::Model m;
  m.add_resource(4, 4);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{20});
  const cp::CpTaskIndex c = m.add_task(j, cp::Phase::kMap, Time{30});
  m.add_precedence(a, b);
  m.add_precedence(b, c);
  ASSERT_EQ(m.validate(), "");

  const cp::SolveResult result = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(cp::validate_solution(m, result.best), "");
  EXPECT_EQ(result.best.placements[static_cast<std::size_t>(a)].start, Time{0});
  EXPECT_EQ(result.best.placements[static_cast<std::size_t>(b)].start, Time{10});
  EXPECT_EQ(result.best.placements[static_cast<std::size_t>(c)].start, Time{30});
  EXPECT_EQ(result.best.job_completion[0], Time{60});
}

TEST(WorkflowCp, DiamondDag) {
  // a -> {b, c} -> d; b and c run in parallel.
  cp::Model m;
  m.add_resource(2, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{20});
  const cp::CpTaskIndex c = m.add_task(j, cp::Phase::kMap, Time{25});
  const cp::CpTaskIndex d = m.add_task(j, cp::Phase::kMap, Time{5});
  m.add_precedence(a, b);
  m.add_precedence(a, c);
  m.add_precedence(b, d);
  m.add_precedence(c, d);

  const cp::SolveResult result = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(cp::validate_solution(m, result.best), "");
  const auto& p = result.best.placements;
  EXPECT_EQ(p[static_cast<std::size_t>(a)].start, Time{0});
  EXPECT_EQ(p[static_cast<std::size_t>(b)].start, Time{10});
  EXPECT_EQ(p[static_cast<std::size_t>(c)].start, Time{10});
  EXPECT_EQ(p[static_cast<std::size_t>(d)].start, Time{35});  // after c (10+25)
}

TEST(WorkflowCp, PrecedenceIntoReducePhase) {
  // map chain a -> b plus the implicit all-maps-before-reduces barrier.
  cp::Model m;
  m.add_resource(2, 2);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex r = m.add_task(j, cp::Phase::kReduce, Time{10});
  m.add_precedence(a, b);
  const cp::SolveResult result = cp::solve(m, cp::SolveParams{});
  const auto& p = result.best.placements;
  EXPECT_EQ(p[static_cast<std::size_t>(b)].start, Time{10});
  EXPECT_GE(p[static_cast<std::size_t>(r)].start, Time{20});
}

TEST(WorkflowCp, ValidateRejectsCycleThroughBarrier) {
  // reduce -> map user edge forms a cycle with the implicit barrier.
  cp::Model m;
  m.add_resource(1, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex r = m.add_task(j, cp::Phase::kReduce, Time{10});
  m.add_precedence(r, a);
  EXPECT_NE(m.validate(), "");
}

TEST(WorkflowCp, ValidateRejectsDirectCycle) {
  cp::Model m;
  m.add_resource(1, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{10});
  m.add_precedence(a, b);
  m.add_precedence(b, a);
  EXPECT_NE(m.validate(), "");
}

TEST(WorkflowCp, SolutionValidatorCatchesPrecedenceViolation) {
  cp::Model m;
  m.add_resource(2, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{10});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{10});
  m.add_precedence(a, b);
  cp::Solution s;
  s.placements = {{0, Time{0}}, {0, Time{5}}};  // b overlaps a
  EXPECT_NE(cp::validate_solution(m, s), "");
  s.placements = {{0, Time{0}}, {0, Time{10}}};
  EXPECT_EQ(cp::validate_solution(m, s), "");
  (void)b;
}

TEST(WorkflowCp, StaticEarliestStartUsesDirectPreds) {
  cp::Model m;
  m.add_resource(4, 4);
  const cp::CpJobIndex j = m.add_job(Time{100}, Time{10000}, 0);
  const cp::CpTaskIndex a = m.add_task(j, cp::Phase::kMap, Time{50});
  const cp::CpTaskIndex b = m.add_task(j, cp::Phase::kMap, Time{10});
  m.add_precedence(a, b);
  EXPECT_EQ(m.static_earliest_start(b), Time{150});  // 100 + 50
  EXPECT_EQ(m.completion_lower_bound(j), Time{160});
}

// Random DAG property: solutions always valid.
class WorkflowRandomDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkflowRandomDag, SolveProducesValidSchedules) {
  RandomStream rng(GetParam(), 0);
  cp::Model m;
  m.add_resource(static_cast<int>(rng.uniform_int(1, 3)),
                 static_cast<int>(rng.uniform_int(1, 3)));
  const int jobs = static_cast<int>(rng.uniform_int(1, 4));
  for (int jj = 0; jj < jobs; ++jj) {
    const cp::CpJobIndex cj = m.add_job(Time{rng.uniform_int(0, 50)}, Time{100000}, jj);
    const int maps = static_cast<int>(rng.uniform_int(2, 8));
    std::vector<cp::CpTaskIndex> ids;
    for (int t = 0; t < maps; ++t) {
      ids.push_back(m.add_task(cj, cp::Phase::kMap, Time{rng.uniform_int(5, 40)}));
    }
    // Random forward edges (i -> k with i < k): acyclic by construction.
    for (int e = 0; e < maps; ++e) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, maps - 2));
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i) + 1, maps - 1));
      m.add_precedence(ids[i], ids[k]);
    }
  }
  ASSERT_EQ(m.validate(), "");
  const cp::SolveResult result = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(result.best.valid);
  EXPECT_EQ(cp::validate_solution(m, result.best), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowRandomDag,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------ RM/sim level

MrcpConfig rm_config() {
  MrcpConfig c;
  c.validate_plans = true;
  c.solve.time_limit_s = 1.0;
  return c;
}

TEST(WorkflowRm, PipelinePlanIsSequenced) {
  Job job = make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}, Time{200}, Time{300}}, {Time{150}});
  job.precedences = {{0, 1}, {1, 2}};  // 3-stage map pipeline
  MrcpRm rm(Cluster::homogeneous(2, 1, 1), rm_config());
  rm.submit(job, Time{0});
  const Plan& plan = rm.reschedule(Time{0});
  std::vector<Time> start(4, kNoTime);
  std::vector<Time> end(4, kNoTime);
  for (const PlannedTask& pt : plan.tasks) {
    start[static_cast<std::size_t>(pt.task_index)] = pt.start;
    end[static_cast<std::size_t>(pt.task_index)] = pt.end;
  }
  EXPECT_GE(start[1], end[0]);
  EXPECT_GE(start[2], end[1]);
  EXPECT_GE(start[3], end[2]);  // reduce after all maps anyway
}

TEST(WorkflowRm, CompletedPredecessorEdgesAreDropped) {
  Job job = make_job(0, Time{0}, Time{0}, Time{100000}, {Time{100}, Time{200}}, {});
  job.precedences = {{0, 1}};
  MrcpRm rm(Cluster::homogeneous(1, 1, 1), rm_config());
  rm.submit(job, Time{0});
  rm.reschedule(Time{0});
  // Task 0 runs [0,100); at t=150 it is completed and task 1 is running.
  const Plan& plan = rm.reschedule(Time{150});
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].task_index, 1);
  EXPECT_GE(plan.tasks[0].start, Time{100});
}

TEST(WorkflowSim, PipelineExecutesInOrder) {
  Job job = make_job(0, Time{0}, Time{0}, Time{100000}, {Time{50}, Time{60}, Time{70}}, {Time{40}});
  job.precedences = {{0, 1}, {1, 2}};
  const Workload w = make_workload({job}, 2, 2, 1);
  const sim::SimMetrics m = sim::simulate_mrcp(w, rm_config());
  ASSERT_TRUE(m.records[0].completed());
  // Chain: 50 + 60 + 70 + reduce 40 = 220.
  EXPECT_EQ(m.records[0].completion, Time{220});
}

TEST(WorkflowSim, MixedWorkloadWithAndWithoutDags) {
  Job dag = make_job(0, Time{0}, Time{0}, Time{100000}, {Time{50}, Time{60}}, {Time{40}});
  dag.precedences = {{0, 1}};
  Job plain = make_job(1, Time{10}, Time{10}, Time{100000}, {Time{30}, Time{30}}, {Time{20}});
  const Workload w = make_workload({dag, plain}, 2, 1, 1);
  const sim::SimMetrics m = sim::simulate_mrcp(w, rm_config());
  EXPECT_TRUE(m.records[0].completed());
  EXPECT_TRUE(m.records[1].completed());
  EXPECT_EQ(m.records[0].completion, Time{150});  // 50+60 chained + 40 reduce
}

TEST(WorkflowSim, MinEdfRejectsWorkflows) {
  Job dag = make_job(0, Time{0}, Time{0}, Time{100000}, {Time{50}, Time{60}}, {});
  dag.precedences = {{0, 1}};
  const Workload w = make_workload({dag}, 1, 1, 1);
  EXPECT_DEATH(sim::simulate_minedf(w),
               "does not support workflow precedences");
}

TEST(WorkflowJob, ValidateJobAcceptsDagAndRejectsCycle) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{10}, Time{10}}, {Time{10}});
  job.precedences = {{0, 1}, {1, 2}};
  EXPECT_EQ(validate_job(job), "");
  job.precedences.push_back({2, 0});
  EXPECT_NE(validate_job(job), "");
  // Reduce -> map is a cycle through the implicit barrier.
  job.precedences = {{3, 0}};
  EXPECT_NE(validate_job(job), "");
  // Out-of-range index.
  job.precedences = {{0, 99}};
  EXPECT_NE(validate_job(job), "");
}

}  // namespace
}  // namespace mrcp
