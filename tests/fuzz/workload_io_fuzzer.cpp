// libFuzzer entry point for the workload_io parser (clang only; built
// when MRCP_BUILD_FUZZERS=ON). Run with e.g.
//   ./fuzz_workload_io -max_len=4096 corpus/
// Any property violation aborts, which libFuzzer reports with the
// offending input saved for the fixed-corpus regression test.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "../fuzz/workload_fuzz_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const std::string violation = mrcp::fuzz::workload_roundtrip_check(text);
  if (!violation.empty()) {
    std::fprintf(stderr, "workload_io property violation: %s\n",
                 violation.c_str());
    std::abort();
  }
  return 0;
}
