// Shared property harness for workload_io fuzzing.
//
// One function, two drivers: the libFuzzer target (tests/fuzz/
// workload_io_fuzzer.cpp, built when MRCP_BUILD_FUZZERS=ON) feeds it
// coverage-guided inputs, and the always-on gtest suite (tests/
// mapreduce/workload_fuzz_test.cpp) feeds it a fixed regression corpus
// plus deterministic mutations — so every CI run replays the properties
// even without a fuzzing toolchain.
//
// Properties checked on arbitrary bytes:
//   * the parser never crashes, hangs, or throws on any input;
//   * a rejected input yields an empty workload and a non-empty error;
//   * an accepted input roundtrips: serialize -> reparse -> serialize is
//     a fixpoint, and the reparse is accepted (what the parser lets in,
//     the writer can represent, bit-for-bit).
#pragma once

#include <string>

#include "mapreduce/workload.h"
#include "mapreduce/workload_io.h"

namespace mrcp::fuzz {

/// Runs the parse/roundtrip property on `text`. Returns an empty string
/// when the property holds, else a description of the violation.
inline std::string workload_roundtrip_check(const std::string& text) {
  std::string error;
  const Workload parsed = workload_from_string(text, &error);
  if (!error.empty()) {
    // Rejected: the contract says the returned workload is empty.
    if (!parsed.jobs.empty() || parsed.cluster.size() != 0) {
      return "rejected input returned a non-empty workload";
    }
    // Location-carrying parse errors (they lead with "line N") must
    // name the byte offset and the record index alongside it.
    if (error.rfind("line ", 0) == 0 &&
        (error.find("(byte ") == std::string::npos ||
         error.find(", record ") == std::string::npos)) {
      return "parse error lacks byte/record location: " + error;
    }
    return "";
  }
  // Accepted: must validate and roundtrip exactly.
  const std::string revalidate = validate_workload(parsed);
  if (!revalidate.empty()) {
    return "accepted workload fails validate_workload: " + revalidate;
  }
  const std::string serialized = workload_to_string(parsed);
  std::string error2;
  const Workload reparsed = workload_from_string(serialized, &error2);
  if (!error2.empty()) {
    return "serialized form of accepted input was rejected: " + error2;
  }
  if (workload_to_string(reparsed) != serialized) {
    return "serialize -> parse -> serialize is not a fixpoint";
  }
  if (reparsed.jobs.size() != parsed.jobs.size() ||
      reparsed.cluster.size() != parsed.cluster.size()) {
    return "reparsed workload has different shape";
  }
  return "";
}

}  // namespace mrcp::fuzz
