// Cross-module integration tests: generated workloads through the full
// simulation stack, for both resource managers, with execution
// validation on. These are small-scale versions of the paper's
// experiments — they assert structural properties and directional
// results, not absolute numbers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapreduce/facebook_workload.h"
#include "mapreduce/synthetic_workload.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"

namespace mrcp {
namespace {

MrcpConfig sim_mrcp_config() {
  MrcpConfig c;
  c.solve.time_limit_s = 0.3;
  c.solve.improvement_fails = 300;
  c.solve.lns_iterations = 5;
  return c;
}

SyntheticWorkloadConfig small_synthetic(std::uint64_t seed) {
  SyntheticWorkloadConfig c;
  c.num_jobs = 30;
  // Scale down Table 3 defaults to keep per-test runtime small: fewer
  // tasks per job, same structure.
  c.num_map_tasks = {1, 20};
  c.num_reduce_tasks = {1, 10};
  c.e_max = 20;
  c.arrival_rate = 0.02;
  c.num_resources = 10;
  c.seed = seed;
  return c;
}

TEST(Integration, SyntheticWorkloadThroughMrcp) {
  const Workload w = generate_synthetic_workload(small_synthetic(1));
  sim::SimOptions opts;
  opts.validate_execution = true;
  opts.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, sim_mrcp_config(), opts);
  for (const sim::JobRecord& r : m.records) {
    ASSERT_TRUE(r.completed());
    EXPECT_GE(r.completion, r.earliest_start);
  }
  const auto agg = m.aggregate();
  EXPECT_EQ(agg.jobs, w.size());
  // Default Table 3 deadlines are loose; very few jobs should be late.
  EXPECT_LE(agg.percent_late, 20.0);
}

TEST(Integration, SyntheticWorkloadThroughMinedf) {
  const Workload w = generate_synthetic_workload(small_synthetic(1));
  const sim::SimMetrics m = sim::simulate_minedf(w);
  for (const sim::JobRecord& r : m.records) ASSERT_TRUE(r.completed());
}

TEST(Integration, FacebookWorkloadBothManagers) {
  FacebookWorkloadConfig fb;
  fb.num_jobs = 25;
  fb.arrival_rate = 0.001;  // sparse to keep CP instances small
  fb.seed = 3;
  const Workload w = generate_facebook_workload(fb);
  const sim::SimMetrics cp_m = sim::simulate_mrcp(w, sim_mrcp_config());
  const sim::SimMetrics edf_m = sim::simulate_minedf(w);
  for (const sim::JobRecord& r : cp_m.records) ASSERT_TRUE(r.completed());
  for (const sim::JobRecord& r : edf_m.records) ASSERT_TRUE(r.completed());
  // Directional check (paper Fig. 2): MRCP-RM should not lose to
  // MinEDF-WC on late jobs.
  EXPECT_LE(cp_m.aggregate().late, edf_m.aggregate().late + 1);
}

TEST(Integration, MrcpDeterministicAcrossRuns) {
  const Workload w = generate_synthetic_workload(small_synthetic(5));
  const sim::SimMetrics a = sim::simulate_mrcp(w, sim_mrcp_config());
  const sim::SimMetrics b = sim::simulate_mrcp(w, sim_mrcp_config());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].completion, b.records[i].completion);
    EXPECT_EQ(a.records[i].late, b.records[i].late);
  }
}

TEST(Integration, SeparationAndDirectModesBothValid) {
  const Workload w = generate_synthetic_workload(small_synthetic(7));
  MrcpConfig combined = sim_mrcp_config();
  combined.use_separation = true;
  MrcpConfig direct = sim_mrcp_config();
  direct.use_separation = false;
  // Direct mode is slower (the paper's motivation for §V.D); run it on a
  // reduced prefix.
  Workload prefix = w;
  prefix.jobs.resize(8);
  const sim::SimMetrics a = sim::simulate_mrcp(prefix, combined);
  const sim::SimMetrics b = sim::simulate_mrcp(prefix, direct);
  for (std::size_t i = 0; i < prefix.jobs.size(); ++i) {
    ASSERT_TRUE(a.records[i].completed());
    ASSERT_TRUE(b.records[i].completed());
  }
}

TEST(Integration, HigherArrivalRateDoesNotBreakValidation) {
  SyntheticWorkloadConfig c = small_synthetic(11);
  c.arrival_rate = 0.05;  // heavy load
  c.num_jobs = 20;
  const Workload w = generate_synthetic_workload(c);
  const sim::SimMetrics m = sim::simulate_mrcp(w, sim_mrcp_config());
  for (const sim::JobRecord& r : m.records) ASSERT_TRUE(r.completed());
}

TEST(Integration, ReplicationHarnessOverRealSims) {
  const sim::ReplicatedMetrics agg =
      sim::replicate(3, [&](std::size_t rep) {
        const Workload w = generate_synthetic_workload(
            small_synthetic(replication_seed(42, rep)));
        const sim::SimMetrics m = sim::simulate_mrcp(w, sim_mrcp_config());
        return sim::summarize_run(m, 0.1);
      });
  EXPECT_EQ(agg.replications, 3u);
  EXPECT_GT(agg.T.mean, 0.0);
  EXPECT_GE(agg.P.mean, 0.0);
  EXPECT_GT(agg.O.mean, 0.0);
}

TEST(Integration, AdvanceReservationsExecuteAtTheirStart) {
  SyntheticWorkloadConfig c = small_synthetic(13);
  c.start_prob = 1.0;  // every job an AR request
  c.s_max = 100;
  c.num_jobs = 15;
  const Workload w = generate_synthetic_workload(c);
  const sim::SimMetrics m = sim::simulate_mrcp(w, sim_mrcp_config());
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    ASSERT_TRUE(m.records[i].completed());
    EXPECT_GE(m.records[i].completion,
              w.jobs[i].earliest_start + w.jobs[i].max_map_time());
  }
}

}  // namespace
}  // namespace mrcp
