// Fixed-corpus and deterministic-mutation fuzzing of the workload trace
// parser, running under plain ctest in every build. The coverage-guided
// libFuzzer driver (tests/fuzz/workload_io_fuzzer.cpp) shares the same
// property harness; inputs it ever minimizes belong in kCorpus below so
// regressions stay caught without a fuzzing toolchain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../fuzz/workload_fuzz_harness.h"
#include "../test_util.h"
#include "common/rng.h"
#include "mapreduce/workload_io.h"

namespace mrcp {
namespace {

using fuzz::workload_roundtrip_check;

std::string valid_workload_text() {
  Workload w = testutil::make_workload(
      {testutil::make_job(0, Time{0}, Time{0}, Time{50}, {Time{4}, Time{6}}, {Time{3}}),
       testutil::make_job(1, Time{2}, Time{5}, Time{80}, {Time{7}}, {Time{2}, Time{2}})},
      2, 2, 1);
  return workload_to_string(w);
}

// Hand-picked tricky inputs: header variations, truncations, count
// mismatches, overflow attempts, comment/CRLF handling, and the
// narrowing-truncation regressions fixed alongside this suite.
const std::vector<std::string> kCorpus = {
    "",
    "\n\n\n",
    "mrcp-workload v1",
    "mrcp-workload v1\n",
    "mrcp-workload v2\ncluster 1\n",
    "# comment only\n# another\n",
    "mrcp-workload v1\ncluster 0\n",
    "mrcp-workload v1\ncluster -1\n",
    "mrcp-workload v1\ncluster 1\nresource 0 0\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1\n",
    // Dense-id violation.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 3 0 0 10 1 0\ntask 5 1\n",
    // Deadline at earliest start.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 5 5 1 0\ntask 5 1\n",
    // Trailing garbage on a line.
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 9\njobs 0\n",
    // CRLF + comments interleaved.
    "mrcp-workload v1\r\n# hi\r\ncluster 1\r\nresource 1 1\r\njobs 0\r\n",
    // Huge jobs count with no job lines: must fail fast, not allocate.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 900000000000000000\n",
    // Task count that would overflow k_map + k_reduce.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 9223372036854775807 9223372036854775807\n",
    // res_req that used to truncate to 1 through static_cast<int>.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 4294967297\n",
    // Same for a resource capacity and a net demand.
    "mrcp-workload v1\ncluster 1\nresource 4294967297 1\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 4294967297\n",
    // Precedence index overflow and self-loop.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 1\ntask 5 1\ntask 3 1\nprecedence 0 4294967296\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 1\ntask 5 1\ntask 3 1\nprecedence 1 1\n",
    // Valid precedence.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 2 1\ntask 5 1\ntask 3 1\ntask 2 1\nprecedence 0 1\n",
    // Non-numeric fields.
    "mrcp-workload v1\ncluster x\n",
    "mrcp-workload v1\ncluster 1\nresource a b\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask five 1\n",
    // ---- Heterogeneity / placement (docs/heterogeneous.md) ----
    // Valid five-field resources plus every placement trailer kind.
    "mrcp-workload v1\ncluster 2\nresource 2 2 0 1500 0\n"
    "resource 1 1 0 500 1\njobs 1\njob 0 0 0 50 2 1\n"
    "task 4 1 0\ntask 6 1 0\ntask 3 1 0\n"
    "locality 0 1\nracks 1 0\naffinity 0 0\naffinity 1 0\n",
    // Speed must be a positive integer: zero, negative, NaN, fractional.
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 0 0\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 -500 0\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 nan 0\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 1.5 0\njobs 0\n",
    // Negative rack; four-field resource line (neither form).
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 1000 -1\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 1000\njobs 0\n",
    // Speed that truncates through static_cast<int>.
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 4294967297 0\njobs 0\n",
    // Dangling candidate resource and dangling rack id.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\nlocality 0 5\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\nracks 0 7\n",
    // Trailer index out of range, duplicates, empty list, bad group.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\nlocality 3 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\nlocality 0 0\nlocality 0 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\nlocality 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\naffinity 0 -2\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 0\naffinity 0 0\naffinity 0 1\n",
};

TEST(WorkloadFuzzTest, FixedCorpusHoldsProperties) {
  for (std::size_t i = 0; i < kCorpus.size(); ++i) {
    EXPECT_EQ(workload_roundtrip_check(kCorpus[i]), "") << "corpus entry " << i;
  }
}

TEST(WorkloadFuzzTest, ValidWorkloadRoundtrips) {
  const std::string text = valid_workload_text();
  std::string error;
  const Workload w = workload_from_string(text, &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(w.jobs.size(), 2u);
  EXPECT_EQ(workload_roundtrip_check(text), "");
}

TEST(WorkloadFuzzTest, TruncationRegressionsAreRejectedNotMangled) {
  // A res_req of 2^32+1 must be a parse error, not res_req == 1.
  std::string error;
  Workload w = workload_from_string(
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 0 10 1 0\ntask 5 4294967297\n",
      &error);
  EXPECT_NE(error, "");
  EXPECT_TRUE(w.jobs.empty());

  w = workload_from_string(
      "mrcp-workload v1\ncluster 1\nresource 4294967297 1\njobs 0\n", &error);
  EXPECT_NE(error, "");
  EXPECT_EQ(w.cluster.size(), 0u);
}

/// A workload exercising every heterogeneity field: mixed speeds, two
/// racks, candidate sets, rack locality and an anti-affinity pair.
Workload hetero_workload() {
  Workload w;
  w.cluster.add_resource_hetero(2, 2, 0, 1500, 0);
  w.cluster.add_resource_hetero(1, 1, 1, 500, 1);
  w.cluster.add_resource_hetero(2, 1, 0, 1000, 1);
  Job j0 = testutil::make_job(0, Time{0}, Time{0}, Time{80},
                              {Time{4}, Time{6}}, {Time{3}});
  j0.map_tasks[0].candidates = {0, 2};
  j0.map_tasks[1].racks = {1};
  j0.reduce_tasks[0].affinity_group = 0;
  Job j1 = testutil::make_job(1, Time{2}, Time{2}, Time{90},
                              {Time{7}, Time{5}}, {});
  j1.map_tasks[0].affinity_group = 0;
  j1.map_tasks[1].affinity_group = 0;
  w.jobs = {j0, j1};
  return w;
}

TEST(WorkloadFuzzTest, HeteroSerializationIsAFixpoint) {
  const std::string text = workload_to_string(hetero_workload());
  std::string error;
  const Workload back = workload_from_string(text, &error);
  ASSERT_EQ(error, "") << error;
  // serialize(parse(serialize(w))) == serialize(w): the canonical form
  // is stable, so hetero traces survive save/load cycles byte-for-byte.
  EXPECT_EQ(workload_to_string(back), text);
  EXPECT_EQ(workload_roundtrip_check(text), "");
  EXPECT_EQ(back.cluster.resource(1).speed_permille, 500);
  EXPECT_EQ(back.cluster.resource(1).rack, 1);
  ASSERT_EQ(back.jobs.size(), 2u);
  EXPECT_EQ(back.jobs[0].map_tasks[0].candidates,
            (std::vector<ResourceId>{0, 2}));
  EXPECT_EQ(back.jobs[0].map_tasks[1].racks, std::vector<int>{1});
  EXPECT_EQ(back.jobs[1].map_tasks[1].affinity_group, 0);
}

TEST(WorkloadFuzzTest, HeteroRejectionsCarryByteOffsets) {
  struct Case {
    const char* text;
    const char* needle;  ///< must appear in the error message
  };
  const Case cases[] = {
      {"mrcp-workload v1\ncluster 1\nresource 1 1 0 0 0\njobs 0\n",
       "speed must be a positive"},
      {"mrcp-workload v1\ncluster 1\nresource 1 1 0 -500 0\njobs 0\n",
       "speed must be a positive"},
      {"mrcp-workload v1\ncluster 1\nresource 1 1 0 nan 0\njobs 0\n",
       "resource"},
      {"mrcp-workload v1\ncluster 1\nresource 1 1 0 1000 -1\njobs 0\n",
       "rack must be a non-negative"},
      {"mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
       "job 0 0 0 10 1 0\ntask 5 1 0\nlocality 0 5\n",
       "locality names resource"},
      {"mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
       "job 0 0 0 10 1 0\ntask 5 1 0\nracks 0 7\n",
       "racks names rack"},
  };
  for (const Case& c : cases) {
    std::string error;
    const Workload w = workload_from_string(c.text, &error);
    EXPECT_TRUE(w.jobs.empty() && w.cluster.size() == 0u) << c.text;
    ASSERT_NE(error, "") << c.text;
    // The located-error contract: every rejection names the line and the
    // byte offset of the offending token's line.
    EXPECT_NE(error.find("byte"), std::string::npos) << error;
    EXPECT_NE(error.find("line"), std::string::npos) << error;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error;
  }
}

// Deterministic mutation fuzzing: byte flips, truncations, line drops,
// line duplications and digit perturbations of a valid trace. Every
// mutant must either parse (and then roundtrip) or be cleanly rejected.
TEST(WorkloadFuzzTest, DeterministicMutationsHoldProperties) {
  const std::string bases[] = {valid_workload_text(),
                               workload_to_string(hetero_workload())};
  for (const std::string& base : bases) {
    ASSERT_EQ(workload_roundtrip_check(base), "");
  }
  RandomStream rng(2024, 0xF022);

  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutant = bases[static_cast<std::size_t>(trial) % 2];
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    switch (kind) {
      case 0: {  // flip a byte
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size()) - 1));
        mutant[i] = static_cast<char>(rng.uniform_int(1, 126));
        break;
      }
      case 1: {  // truncate
        const std::size_t n = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size())));
        mutant.resize(n);
        break;
      }
      case 2: {  // drop one line
        std::vector<std::string> lines;
        std::size_t pos = 0;
        while (pos <= mutant.size()) {
          const std::size_t nl = mutant.find('\n', pos);
          if (nl == std::string::npos) break;
          lines.push_back(mutant.substr(pos, nl - pos));
          pos = nl + 1;
        }
        if (lines.empty()) break;
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(lines.size()) - 1)));
        mutant.clear();
        for (const std::string& l : lines) mutant += l + "\n";
        break;
      }
      case 3: {  // duplicate a random line at the end
        const std::size_t start = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size()) - 1));
        const std::size_t nl = mutant.find('\n', start);
        mutant += mutant.substr(start, nl == std::string::npos
                                           ? std::string::npos
                                           : nl - start + 1);
        break;
      }
      default: {  // perturb a digit (number-boundary mutations)
        for (std::size_t i = 0; i < mutant.size(); ++i) {
          const std::size_t j =
              (i + static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(mutant.size()) - 1))) %
              mutant.size();
          if (mutant[j] >= '0' && mutant[j] <= '9') {
            mutant[j] = static_cast<char>('0' + rng.uniform_int(0, 9));
            break;
          }
        }
        break;
      }
    }
    ASSERT_EQ(workload_roundtrip_check(mutant), "")
        << "trial " << trial << " kind " << kind << "\n--- mutant ---\n"
        << mutant;
  }
}

}  // namespace
}  // namespace mrcp
