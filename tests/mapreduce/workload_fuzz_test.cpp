// Fixed-corpus and deterministic-mutation fuzzing of the workload trace
// parser, running under plain ctest in every build. The coverage-guided
// libFuzzer driver (tests/fuzz/workload_io_fuzzer.cpp) shares the same
// property harness; inputs it ever minimizes belong in kCorpus below so
// regressions stay caught without a fuzzing toolchain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../fuzz/workload_fuzz_harness.h"
#include "../test_util.h"
#include "common/rng.h"
#include "mapreduce/workload_io.h"

namespace mrcp {
namespace {

using fuzz::workload_roundtrip_check;

std::string valid_workload_text() {
  Workload w = testutil::make_workload(
      {testutil::make_job(0, Time{0}, Time{0}, Time{50}, {Time{4}, Time{6}}, {Time{3}}),
       testutil::make_job(1, Time{2}, Time{5}, Time{80}, {Time{7}}, {Time{2}, Time{2}})},
      2, 2, 1);
  return workload_to_string(w);
}

// Hand-picked tricky inputs: header variations, truncations, count
// mismatches, overflow attempts, comment/CRLF handling, and the
// narrowing-truncation regressions fixed alongside this suite.
const std::vector<std::string> kCorpus = {
    "",
    "\n\n\n",
    "mrcp-workload v1",
    "mrcp-workload v1\n",
    "mrcp-workload v2\ncluster 1\n",
    "# comment only\n# another\n",
    "mrcp-workload v1\ncluster 0\n",
    "mrcp-workload v1\ncluster -1\n",
    "mrcp-workload v1\ncluster 1\nresource 0 0\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1\n",
    // Dense-id violation.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 3 0 0 10 1 0\ntask 5 1\n",
    // Deadline at earliest start.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 5 5 1 0\ntask 5 1\n",
    // Trailing garbage on a line.
    "mrcp-workload v1\ncluster 1\nresource 1 1 0 9\njobs 0\n",
    // CRLF + comments interleaved.
    "mrcp-workload v1\r\n# hi\r\ncluster 1\r\nresource 1 1\r\njobs 0\r\n",
    // Huge jobs count with no job lines: must fail fast, not allocate.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 900000000000000000\n",
    // Task count that would overflow k_map + k_reduce.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 9223372036854775807 9223372036854775807\n",
    // res_req that used to truncate to 1 through static_cast<int>.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 4294967297\n",
    // Same for a resource capacity and a net demand.
    "mrcp-workload v1\ncluster 1\nresource 4294967297 1\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask 5 1 4294967297\n",
    // Precedence index overflow and self-loop.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 1\ntask 5 1\ntask 3 1\nprecedence 0 4294967296\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 1\ntask 5 1\ntask 3 1\nprecedence 1 1\n",
    // Valid precedence.
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 2 1\ntask 5 1\ntask 3 1\ntask 2 1\nprecedence 0 1\n",
    // Non-numeric fields.
    "mrcp-workload v1\ncluster x\n",
    "mrcp-workload v1\ncluster 1\nresource a b\njobs 0\n",
    "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
    "job 0 0 0 10 1 0\ntask five 1\n",
};

TEST(WorkloadFuzzTest, FixedCorpusHoldsProperties) {
  for (std::size_t i = 0; i < kCorpus.size(); ++i) {
    EXPECT_EQ(workload_roundtrip_check(kCorpus[i]), "") << "corpus entry " << i;
  }
}

TEST(WorkloadFuzzTest, ValidWorkloadRoundtrips) {
  const std::string text = valid_workload_text();
  std::string error;
  const Workload w = workload_from_string(text, &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(w.jobs.size(), 2u);
  EXPECT_EQ(workload_roundtrip_check(text), "");
}

TEST(WorkloadFuzzTest, TruncationRegressionsAreRejectedNotMangled) {
  // A res_req of 2^32+1 must be a parse error, not res_req == 1.
  std::string error;
  Workload w = workload_from_string(
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 0 10 1 0\ntask 5 4294967297\n",
      &error);
  EXPECT_NE(error, "");
  EXPECT_TRUE(w.jobs.empty());

  w = workload_from_string(
      "mrcp-workload v1\ncluster 1\nresource 4294967297 1\njobs 0\n", &error);
  EXPECT_NE(error, "");
  EXPECT_EQ(w.cluster.size(), 0u);
}

// Deterministic mutation fuzzing: byte flips, truncations, line drops,
// line duplications and digit perturbations of a valid trace. Every
// mutant must either parse (and then roundtrip) or be cleanly rejected.
TEST(WorkloadFuzzTest, DeterministicMutationsHoldProperties) {
  const std::string base = valid_workload_text();
  ASSERT_EQ(workload_roundtrip_check(base), "");
  RandomStream rng(2024, 0xF022);

  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutant = base;
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    switch (kind) {
      case 0: {  // flip a byte
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size()) - 1));
        mutant[i] = static_cast<char>(rng.uniform_int(1, 126));
        break;
      }
      case 1: {  // truncate
        const std::size_t n = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size())));
        mutant.resize(n);
        break;
      }
      case 2: {  // drop one line
        std::vector<std::string> lines;
        std::size_t pos = 0;
        while (pos <= mutant.size()) {
          const std::size_t nl = mutant.find('\n', pos);
          if (nl == std::string::npos) break;
          lines.push_back(mutant.substr(pos, nl - pos));
          pos = nl + 1;
        }
        if (lines.empty()) break;
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(lines.size()) - 1)));
        mutant.clear();
        for (const std::string& l : lines) mutant += l + "\n";
        break;
      }
      case 3: {  // duplicate a random line at the end
        const std::size_t start = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutant.size()) - 1));
        const std::size_t nl = mutant.find('\n', start);
        mutant += mutant.substr(start, nl == std::string::npos
                                           ? std::string::npos
                                           : nl - start + 1);
        break;
      }
      default: {  // perturb a digit (number-boundary mutations)
        for (std::size_t i = 0; i < mutant.size(); ++i) {
          const std::size_t j =
              (i + static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(mutant.size()) - 1))) %
              mutant.size();
          if (mutant[j] >= '0' && mutant[j] <= '9') {
            mutant[j] = static_cast<char>('0' + rng.uniform_int(0, 9));
            break;
          }
        }
        break;
      }
    }
    ASSERT_EQ(workload_roundtrip_check(mutant), "")
        << "trial " << trial << " kind " << kind << "\n--- mutant ---\n"
        << mutant;
  }
}

}  // namespace
}  // namespace mrcp
