#include "mapreduce/facebook_workload.h"

#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"

namespace mrcp {
namespace {

TEST(FacebookMix, Table4SumsTo1000) {
  int total = 0;
  for (const FacebookJobType& t : facebook_job_mix()) total += t.count_per_1000;
  EXPECT_EQ(total, 1000);
}

TEST(FacebookMix, Table4Shapes) {
  const auto& mix = facebook_job_mix();
  EXPECT_EQ(mix[0].map_tasks, 1);
  EXPECT_EQ(mix[0].reduce_tasks, 0);
  EXPECT_EQ(mix[0].count_per_1000, 380);
  EXPECT_EQ(mix[8].map_tasks, 2400);
  EXPECT_EQ(mix[8].reduce_tasks, 360);
  EXPECT_EQ(mix[9].map_tasks, 4800);
  EXPECT_EQ(mix[9].reduce_tasks, 0);
}

FacebookWorkloadConfig small_config() {
  FacebookWorkloadConfig c;
  c.num_jobs = 100;
  c.seed = 5;
  return c;
}

TEST(FacebookWorkload, ExactMixAt1000Jobs) {
  FacebookWorkloadConfig c = small_config();
  c.num_jobs = 1000;
  const Workload w = generate_facebook_workload(c);
  ASSERT_EQ(w.size(), 1000u);
  // Count jobs by (maps, reduces) shape.
  std::map<std::pair<std::size_t, std::size_t>, int> counts;
  for (const Job& j : w.jobs) {
    ++counts[{j.num_map_tasks(), j.num_reduce_tasks()}];
  }
  for (const FacebookJobType& t : facebook_job_mix()) {
    EXPECT_EQ((counts[{static_cast<std::size_t>(t.map_tasks),
                       static_cast<std::size_t>(t.reduce_tasks)}]),
              t.count_per_1000)
        << "type with " << t.map_tasks << " maps";
  }
}

TEST(FacebookWorkload, ApportionmentForNon1000Counts) {
  FacebookWorkloadConfig c = small_config();
  c.num_jobs = 137;
  const Workload w = generate_facebook_workload(c);
  EXPECT_EQ(w.size(), 137u);
  EXPECT_EQ(validate_workload(w), "");
}

TEST(FacebookWorkload, EarliestStartEqualsArrival) {
  const Workload w = generate_facebook_workload(small_config());
  for (const Job& j : w.jobs) EXPECT_EQ(j.earliest_start, j.arrival_time);
}

TEST(FacebookWorkload, ClusterIs64x1x1ByDefault) {
  const Workload w = generate_facebook_workload(small_config());
  EXPECT_EQ(w.cluster.size(), 64);
  EXPECT_EQ(w.cluster.total_map_slots(), 64);
  EXPECT_EQ(w.cluster.total_reduce_slots(), 64);
}

TEST(FacebookWorkload, DeterministicForSeed) {
  const Workload a = generate_facebook_workload(small_config());
  const Workload b = generate_facebook_workload(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival_time, b.jobs[i].arrival_time);
    EXPECT_EQ(a.jobs[i].num_map_tasks(), b.jobs[i].num_map_tasks());
  }
}

TEST(FacebookWorkload, MapExecTimesRoughlyLogNormalMean) {
  FacebookWorkloadConfig c = small_config();
  c.num_jobs = 300;
  const Workload w = generate_facebook_workload(c);
  RunningStat stat;
  for (const Job& j : w.jobs) {
    for (const Task& t : j.map_tasks) stat.add(static_cast<double>(t.exec_time.count()));
  }
  // E[LN(9.9511, 1.6764)] ms.
  const double expected = std::exp(9.9511 + 0.5 * 1.6764);
  ASSERT_GT(stat.count(), 1000u);
  EXPECT_NEAR(stat.mean() / expected, 1.0, 0.25);  // heavy tail: loose bound
}

TEST(FacebookWorkload, DeadlineIsWithinTeAndTwoTe) {
  const Workload w = generate_facebook_workload(small_config());
  const int ms = w.cluster.total_map_slots();
  const int rs = w.cluster.total_reduce_slots();
  for (const Job& j : w.jobs) {
    const Time te = j.min_execution_time(ms, rs);
    EXPECT_GE(j.deadline, j.earliest_start + te - Time{1});
    EXPECT_LE(j.deadline, j.earliest_start + 2 * te + Time{1});
  }
}

TEST(FacebookWorkload, ValidWorkload) {
  const Workload w = generate_facebook_workload(small_config());
  EXPECT_EQ(validate_workload(w), "");
}

TEST(FacebookWorkload, MapOnlyJobsHaveNoReduces) {
  FacebookWorkloadConfig c = small_config();
  c.num_jobs = 1000;
  const Workload w = generate_facebook_workload(c);
  std::size_t map_only = 0;
  for (const Job& j : w.jobs) {
    if (j.num_reduce_tasks() == 0) ++map_only;
  }
  // Types 1,2,4,5,7,10 are map-only: 380+160+80+60+40+20 = 740 per 1000.
  EXPECT_EQ(map_only, 740u);
}

}  // namespace
}  // namespace mrcp
