#include "mapreduce/workload.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

TEST(WorkloadSummary, EmptyWorkload) {
  Workload w;
  w.cluster = Cluster::homogeneous(1, 1, 1);
  const auto s = w.summarize();
  EXPECT_DOUBLE_EQ(s.mean_map_tasks, 0.0);
  EXPECT_DOUBLE_EQ(s.offered_utilization, 0.0);
}

TEST(WorkloadSummary, CountsAndMeans) {
  const Workload w = make_workload(
      {
          make_job(0, Time{0}, Time{0}, Time{100000}, {Time{1000}, Time{3000}}, {Time{2000}}),
          make_job(1, Time{10000}, Time{10000}, Time{200000}, {Time{2000}}, {Time{4000}, Time{6000}, Time{8000}}),
      },
      2, 1, 1);
  const auto s = w.summarize();
  EXPECT_DOUBLE_EQ(s.mean_map_tasks, 1.5);
  EXPECT_DOUBLE_EQ(s.mean_reduce_tasks, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_map_exec_seconds, 2.0);  // (1+3+2)/3 s
  EXPECT_DOUBLE_EQ(s.mean_reduce_exec_seconds, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_interarrival_seconds, 10.0);
  EXPECT_DOUBLE_EQ(s.fraction_future_start, 0.0);
}

TEST(WorkloadSummary, FutureStartFraction) {
  const Workload w = make_workload(
      {
          make_job(0, Time{0}, Time{500}, Time{100000}, {Time{1000}}, {}),
          make_job(1, Time{0}, Time{0}, Time{100000}, {Time{1000}}, {}),
      },
      1, 1, 1);
  EXPECT_DOUBLE_EQ(w.summarize().fraction_future_start, 0.5);
}

TEST(ValidateWorkload, RejectsEmptyCluster) {
  Workload w;
  w.jobs = {make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {})};
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsOutOfOrderIds) {
  Workload w = make_workload(
      {make_job(1, Time{0}, Time{0}, Time{100}, {Time{10}}, {}), make_job(0, Time{5}, Time{5}, Time{100}, {Time{10}}, {})},
      1, 1, 1);
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsUnsortedArrivals) {
  Workload w = make_workload(
      {make_job(0, Time{100}, Time{100}, Time{500}, {Time{10}}, {}), make_job(1, Time{50}, Time{50}, Time{500}, {Time{10}}, {})},
      1, 1, 1);
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsInvalidJobInside) {
  Workload w = make_workload({make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {})}, 1, 1, 1);
  w.jobs[0].deadline = Time{0};  // breaks d_j > s_j
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, AcceptsGoodWorkload) {
  const Workload w = make_workload(
      {make_job(0, Time{0}, Time{0}, Time{100000}, {Time{10}}, {Time{20}}),
       make_job(1, Time{100}, Time{200}, Time{100000}, {Time{30}}, {})},
      2, 2, 1);
  EXPECT_EQ(validate_workload(w), "");
}

TEST(WorkloadToString, MentionsJobCount) {
  const Workload w = make_workload({make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {})}, 3, 1, 1);
  EXPECT_NE(w.to_string().find("jobs=1"), std::string::npos);
  EXPECT_NE(w.to_string().find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace mrcp
