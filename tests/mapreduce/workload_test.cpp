#include "mapreduce/workload.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

TEST(WorkloadSummary, EmptyWorkload) {
  Workload w;
  w.cluster = Cluster::homogeneous(1, 1, 1);
  const auto s = w.summarize();
  EXPECT_DOUBLE_EQ(s.mean_map_tasks, 0.0);
  EXPECT_DOUBLE_EQ(s.offered_utilization, 0.0);
}

TEST(WorkloadSummary, CountsAndMeans) {
  const Workload w = make_workload(
      {
          make_job(0, 0, 0, 100000, {1000, 3000}, {2000}),
          make_job(1, 10000, 10000, 200000, {2000}, {4000, 6000, 8000}),
      },
      2, 1, 1);
  const auto s = w.summarize();
  EXPECT_DOUBLE_EQ(s.mean_map_tasks, 1.5);
  EXPECT_DOUBLE_EQ(s.mean_reduce_tasks, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_map_exec_seconds, 2.0);  // (1+3+2)/3 s
  EXPECT_DOUBLE_EQ(s.mean_reduce_exec_seconds, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_interarrival_seconds, 10.0);
  EXPECT_DOUBLE_EQ(s.fraction_future_start, 0.0);
}

TEST(WorkloadSummary, FutureStartFraction) {
  const Workload w = make_workload(
      {
          make_job(0, 0, 500, 100000, {1000}, {}),
          make_job(1, 0, 0, 100000, {1000}, {}),
      },
      1, 1, 1);
  EXPECT_DOUBLE_EQ(w.summarize().fraction_future_start, 0.5);
}

TEST(ValidateWorkload, RejectsEmptyCluster) {
  Workload w;
  w.jobs = {make_job(0, 0, 0, 100, {10}, {})};
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsOutOfOrderIds) {
  Workload w = make_workload(
      {make_job(1, 0, 0, 100, {10}, {}), make_job(0, 5, 5, 100, {10}, {})},
      1, 1, 1);
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsUnsortedArrivals) {
  Workload w = make_workload(
      {make_job(0, 100, 100, 500, {10}, {}), make_job(1, 50, 50, 500, {10}, {})},
      1, 1, 1);
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, RejectsInvalidJobInside) {
  Workload w = make_workload({make_job(0, 0, 0, 100, {10}, {})}, 1, 1, 1);
  w.jobs[0].deadline = 0;  // breaks d_j > s_j
  EXPECT_NE(validate_workload(w), "");
}

TEST(ValidateWorkload, AcceptsGoodWorkload) {
  const Workload w = make_workload(
      {make_job(0, 0, 0, 100000, {10}, {20}),
       make_job(1, 100, 200, 100000, {30}, {})},
      2, 2, 1);
  EXPECT_EQ(validate_workload(w), "");
}

TEST(WorkloadToString, MentionsJobCount) {
  const Workload w = make_workload({make_job(0, 0, 0, 100, {10}, {})}, 3, 1, 1);
  EXPECT_NE(w.to_string().find("jobs=1"), std::string::npos);
  EXPECT_NE(w.to_string().find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace mrcp
