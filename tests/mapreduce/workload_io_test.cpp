#include "mapreduce/workload_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.h"
#include "mapreduce/facebook_workload.h"
#include "mapreduce/synthetic_workload.h"

namespace mrcp {
namespace {

using testutil::make_job;
using testutil::make_workload;

Workload sample_workload() {
  Job j0 = make_job(0, Time{0}, Time{0}, Time{5000}, {Time{100}, Time{200}}, {Time{300}});
  Job j1 = make_job(1, Time{1000}, Time{1500}, Time{9000}, {Time{50}}, {});
  j0.precedences = {{0, 1}};  // map 0 before map 1
  return make_workload({j0, j1}, 3, 2, 1);
}

TEST(WorkloadIo, RoundTripPreservesEverything) {
  const Workload original = sample_workload();
  std::string error;
  const Workload loaded =
      workload_from_string(workload_to_string(original), &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.cluster.size(), 3);
  EXPECT_EQ(loaded.cluster.resource(0).map_capacity, 2);
  EXPECT_EQ(loaded.cluster.resource(0).reduce_capacity, 1);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = loaded.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.arrival_time, b.arrival_time);
    EXPECT_EQ(a.earliest_start, b.earliest_start);
    EXPECT_EQ(a.deadline, b.deadline);
    ASSERT_EQ(a.num_tasks(), b.num_tasks());
    for (std::size_t t = 0; t < a.num_tasks(); ++t) {
      EXPECT_EQ(a.task(t).type, b.task(t).type);
      EXPECT_EQ(a.task(t).exec_time, b.task(t).exec_time);
      EXPECT_EQ(a.task(t).res_req, b.task(t).res_req);
    }
    EXPECT_EQ(a.precedences, b.precedences);
  }
}

TEST(WorkloadIo, RoundTripGeneratedSynthetic) {
  SyntheticWorkloadConfig c;
  c.num_jobs = 25;
  c.seed = 3;
  const Workload original = generate_synthetic_workload(c);
  std::string error;
  const Workload loaded =
      workload_from_string(workload_to_string(original), &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(validate_workload(loaded), "");
  EXPECT_EQ(loaded.jobs.back().deadline, original.jobs.back().deadline);
}

TEST(WorkloadIo, RoundTripGeneratedFacebook) {
  FacebookWorkloadConfig c;
  c.num_jobs = 20;
  c.seed = 3;
  const Workload original = generate_facebook_workload(c);
  std::string error;
  const Workload loaded =
      workload_from_string(workload_to_string(original), &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(loaded.size(), original.size());
}

TEST(WorkloadIo, FileRoundTrip) {
  const Workload original = sample_workload();
  const std::string path = testing::TempDir() + "/mrcp_io_test.workload";
  ASSERT_TRUE(save_workload_file(original, path));
  std::string error;
  const Workload loaded = load_workload_file(path, &error);
  EXPECT_EQ(error, "");
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(WorkloadIo, MissingFileReportsError) {
  std::string error;
  const Workload loaded = load_workload_file("/nonexistent/x.workload", &error);
  EXPECT_NE(error, "");
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(WorkloadIo, RejectsBadHeader) {
  std::string error;
  workload_from_string("not-a-workload\n", &error);
  EXPECT_NE(error, "");
}

TEST(WorkloadIo, RejectsTruncatedJob) {
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 0 100 2 0\ntask 10 1\n";  // second task missing
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
}

TEST(WorkloadIo, RejectsMalformedResource) {
  const std::string text = "mrcp-workload v1\ncluster 1\nresource x y\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
}

TEST(WorkloadIo, ErrorsReportByteOffsetAndRecordIndex) {
  // EOF while a second task line is expected: the error must name the
  // last line handed out, its byte offset, and its record index.
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 0 100 2 0\ntask 10 1\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error.find("line 6 (byte 65, record 6)"), std::string::npos)
      << error;
}

TEST(WorkloadIo, RecordIndexSkipsCommentsAndBlankLines) {
  // Comments and blank lines advance the line number and byte offset
  // but not the record index.
  const std::string text = "# c\nmrcp-workload v1\n\ncluster 1\nresource x y\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error.find("line 5 (byte 32, record 3)"), std::string::npos)
      << error;
}

TEST(WorkloadIo, RejectsInvalidJobSemantics) {
  // deadline before earliest start.
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 500 100 1 0\ntask 10 1\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
}

TEST(WorkloadIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\nmrcp-workload v1\n\ncluster 1\n# another\nresource 1 1\n"
      "jobs 1\njob 0 0 0 100 1 0\ntask 10 1\n";
  std::string error;
  const Workload loaded = workload_from_string(text, &error);
  EXPECT_EQ(error, "");
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(WorkloadIo, RejectsCyclicPrecedences) {
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 1\n"
      "job 0 0 0 100 2 0\ntask 10 1\ntask 10 1\n"
      "precedence 0 1\nprecedence 1 0\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
}

TEST(WorkloadIo, RejectsGappyJobIds) {
  // Job ids index per-job arrays throughout the simulator; a sparse id
  // (0 then 5) must be a load error with the offending line named, not
  // out-of-bounds indexing later.
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 2\n"
      "job 0 0 0 100 1 0\ntask 10 1\n"
      "job 5 10 10 200 1 0\ntask 10 1\n";
  std::string error;
  const Workload loaded = workload_from_string(text, &error);
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("dense"), std::string::npos) << error;
  EXPECT_NE(error.find("got 5"), std::string::npos) << error;
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(WorkloadIo, RejectsOutOfOrderJobIds) {
  const std::string text =
      "mrcp-workload v1\ncluster 1\nresource 1 1\njobs 2\n"
      "job 1 0 0 100 1 0\ntask 10 1\n"
      "job 0 10 10 200 1 0\ntask 10 1\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("dense"), std::string::npos) << error;
}

TEST(WorkloadIo, RejectsTrailingGarbageOnLine) {
  const std::string text =
      "mrcp-workload v1\ncluster 1 extra\nresource 1 1\n";
  std::string error;
  workload_from_string(text, &error);
  EXPECT_NE(error, "");
}

}  // namespace
}  // namespace mrcp
