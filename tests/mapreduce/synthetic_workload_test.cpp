#include "mapreduce/synthetic_workload.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mrcp {
namespace {

SyntheticWorkloadConfig small_config() {
  SyntheticWorkloadConfig c;
  c.num_jobs = 200;
  c.seed = 7;
  return c;
}

TEST(SyntheticWorkload, GeneratesRequestedJobCount) {
  const Workload w = generate_synthetic_workload(small_config());
  EXPECT_EQ(w.size(), 200u);
  EXPECT_EQ(validate_workload(w), "");
}

TEST(SyntheticWorkload, DeterministicForSameSeed) {
  const Workload a = generate_synthetic_workload(small_config());
  const Workload b = generate_synthetic_workload(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs[i].arrival_time, b.jobs[i].arrival_time);
    EXPECT_EQ(a.jobs[i].deadline, b.jobs[i].deadline);
    EXPECT_EQ(a.jobs[i].num_map_tasks(), b.jobs[i].num_map_tasks());
  }
}

TEST(SyntheticWorkload, DifferentSeedsDiffer) {
  SyntheticWorkloadConfig c1 = small_config();
  SyntheticWorkloadConfig c2 = small_config();
  c2.seed = 8;
  const Workload a = generate_synthetic_workload(c1);
  const Workload b = generate_synthetic_workload(c2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a.jobs[i].arrival_time != b.jobs[i].arrival_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticWorkload, TaskCountsWithinTable3Ranges) {
  const Workload w = generate_synthetic_workload(small_config());
  for (const Job& j : w.jobs) {
    EXPECT_GE(j.num_map_tasks(), 1u);
    EXPECT_LE(j.num_map_tasks(), 100u);
    EXPECT_GE(j.num_reduce_tasks(), 1u);
    EXPECT_LE(j.num_reduce_tasks(), 100u);
  }
}

TEST(SyntheticWorkload, MapExecTimesWithinEmax) {
  SyntheticWorkloadConfig c = small_config();
  c.e_max = 10;
  const Workload w = generate_synthetic_workload(c);
  for (const Job& j : w.jobs) {
    for (const Task& t : j.map_tasks) {
      EXPECT_GE(t.exec_time, Time{1} * kTicksPerSecond);
      EXPECT_LE(t.exec_time, Time{10} * kTicksPerSecond);
    }
  }
}

TEST(SyntheticWorkload, ReduceTimeFollowsFormula) {
  // re = (3 * sum(me)) / k_rd + DU[1,10]: all reduce tasks of one job
  // share the base term, so within a job the spread is at most 9 seconds
  // and each value is at least base + 1s.
  const Workload w = generate_synthetic_workload(small_config());
  for (const Job& j : w.jobs) {
    const Time base = (3 * j.total_map_time() /
                       static_cast<std::int64_t>(j.num_reduce_tasks()) /
                       kTicksPerSecond) *
                      kTicksPerSecond;
    for (const Task& t : j.reduce_tasks) {
      EXPECT_GE(t.exec_time, base + Time{1} * kTicksPerSecond);
      EXPECT_LE(t.exec_time, base + Time{10} * kTicksPerSecond);
    }
  }
}

TEST(SyntheticWorkload, EarliestStartRespectsP) {
  SyntheticWorkloadConfig c = small_config();
  c.num_jobs = 1000;
  c.start_prob = 0.0;
  Workload w = generate_synthetic_workload(c);
  for (const Job& j : w.jobs) EXPECT_EQ(j.earliest_start, j.arrival_time);

  c.start_prob = 1.0;
  w = generate_synthetic_workload(c);
  for (const Job& j : w.jobs) {
    EXPECT_GT(j.earliest_start, j.arrival_time);
    EXPECT_LE(j.earliest_start,
              j.arrival_time + seconds_to_ticks(std::int64_t{c.s_max}));
  }
}

TEST(SyntheticWorkload, FractionOfFutureStartsTracksP) {
  SyntheticWorkloadConfig c = small_config();
  c.num_jobs = 2000;
  c.start_prob = 0.5;
  const Workload w = generate_synthetic_workload(c);
  EXPECT_NEAR(w.summarize().fraction_future_start, 0.5, 0.05);
}

TEST(SyntheticWorkload, DeadlineAtLeastTePlusStart) {
  const Workload w = generate_synthetic_workload(small_config());
  const int ms = w.cluster.total_map_slots();
  const int rs = w.cluster.total_reduce_slots();
  for (const Job& j : w.jobs) {
    const Time te = j.min_execution_time(ms, rs);
    // d_j = s_j + TE * U[1, d_UL] with d_UL >= 1.
    EXPECT_GE(j.deadline, j.earliest_start + te - Time{1});
    EXPECT_LE(j.deadline,
              j.earliest_start +
                  Time{static_cast<std::int64_t>(
                      static_cast<double>(te.count()) *
                      small_config().deadline_multiplier_ul)} +
                  Time{1});
  }
}

TEST(SyntheticWorkload, ArrivalRateMatchesLambda) {
  SyntheticWorkloadConfig c = small_config();
  c.num_jobs = 5000;
  c.arrival_rate = 0.01;
  const Workload w = generate_synthetic_workload(c);
  const double mean_inter = w.summarize().mean_interarrival_seconds;
  EXPECT_NEAR(mean_inter, 100.0, 5.0);
}

TEST(SyntheticWorkload, ClusterMatchesConfig) {
  SyntheticWorkloadConfig c = small_config();
  c.num_resources = 25;
  c.map_capacity = 3;
  c.reduce_capacity = 1;
  const Workload w = generate_synthetic_workload(c);
  EXPECT_EQ(w.cluster.size(), 25);
  EXPECT_EQ(w.cluster.total_map_slots(), 75);
  EXPECT_EQ(w.cluster.total_reduce_slots(), 25);
}

// Parameterized sweep over e_max: mean map execution time should track
// (1 + e_max) / 2 seconds (DU[1, e_max]).
class SyntheticEmaxSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SyntheticEmaxSweep, MeanMapTimeTracksDistribution) {
  SyntheticWorkloadConfig c = small_config();
  c.num_jobs = 400;
  c.e_max = GetParam();
  const Workload w = generate_synthetic_workload(c);
  const double mean_s = w.summarize().mean_map_exec_seconds;
  const double expected = 0.5 * (1.0 + static_cast<double>(GetParam()));
  EXPECT_NEAR(mean_s / expected, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Table3, SyntheticEmaxSweep,
                         ::testing::Values<std::int64_t>(10, 50, 100));

// Offered utilization stays below 1 for every default factor-at-a-time
// configuration (the paper's experiments are all stable open systems).
class SyntheticStability : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticStability, OfferedUtilizationBelowOne) {
  SyntheticWorkloadConfig c = small_config();
  c.num_jobs = 300;
  c.arrival_rate = GetParam();
  const Workload w = generate_synthetic_workload(c);
  EXPECT_LT(w.summarize().offered_utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Table3Lambdas, SyntheticStability,
                         ::testing::Values(0.001, 0.01, 0.015, 0.02));

}  // namespace
}  // namespace mrcp
