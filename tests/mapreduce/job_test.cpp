#include "mapreduce/job.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

TEST(LptMakespan, EmptyIsZero) {
  EXPECT_EQ(lpt_makespan({}, 4), Time{0});
}

TEST(LptMakespan, SingleMachineSums) {
  EXPECT_EQ(lpt_makespan({Time{3}, Time{5}, Time{7}}, 1), Time{15});
}

TEST(LptMakespan, EnoughMachinesGivesMax) {
  EXPECT_EQ(lpt_makespan({Time{3}, Time{5}, Time{7}}, 3), Time{7});
  EXPECT_EQ(lpt_makespan({Time{3}, Time{5}, Time{7}}, 10), Time{7});
}

TEST(LptMakespan, TwoMachinesBalanced) {
  // LPT on {7,5,3} with 2 machines: m1={7}, m2={5,3} -> 8.
  EXPECT_EQ(lpt_makespan({Time{3}, Time{5}, Time{7}}, 2), Time{8});
}

TEST(LptMakespan, EqualTasks) {
  // 6 tasks of 10 on 3 machines: 2 each -> 20.
  EXPECT_EQ(lpt_makespan({Time{10}, Time{10}, Time{10}, Time{10}, Time{10}, Time{10}}, 3), Time{20});
}

TEST(JobAccessors, CountsAndTotals) {
  const Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{20}, Time{30}}, {Time{40}, Time{50}});
  EXPECT_EQ(j.num_map_tasks(), 3u);
  EXPECT_EQ(j.num_reduce_tasks(), 2u);
  EXPECT_EQ(j.num_tasks(), 5u);
  EXPECT_EQ(j.total_map_time(), Time{60});
  EXPECT_EQ(j.total_reduce_time(), Time{90});
  EXPECT_EQ(j.total_work(), Time{150});
  EXPECT_EQ(j.max_map_time(), Time{30});
  EXPECT_EQ(j.max_reduce_time(), Time{50});
}

TEST(JobAccessors, FlatTaskIndexing) {
  const Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{20}}, {Time{30}});
  EXPECT_EQ(j.task(0).exec_time, Time{10});
  EXPECT_EQ(j.task(0).type, TaskType::kMap);
  EXPECT_EQ(j.task(1).exec_time, Time{20});
  EXPECT_EQ(j.task(2).exec_time, Time{30});
  EXPECT_EQ(j.task(2).type, TaskType::kReduce);
}

TEST(JobAccessors, Laxity) {
  // L_j = d_j - s_j - sum(e_t) = 1000 - 100 - 150 = 750.
  const Job j = make_job(0, Time{50}, Time{100}, Time{1000}, {Time{10}, Time{20}, Time{30}}, {Time{40}, Time{50}});
  EXPECT_EQ(j.laxity(), Time{750});
}

TEST(MinExecutionTime, SequentialPhases) {
  // Maps {10,20} on 2 slots -> 20; reduces {30} on 1 slot -> 30; TE = 50.
  const Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{20}}, {Time{30}});
  EXPECT_EQ(j.min_execution_time(2, 1), Time{50});
}

TEST(MinExecutionTime, MapOnlyJob) {
  const Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{20}, Time{30}}, {});
  EXPECT_EQ(j.min_execution_time(1, 5), Time{60});
  EXPECT_EQ(j.min_execution_time(3, 5), Time{30});
}

TEST(MinExecutionTime, FullParallelism) {
  const Job j = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}, Time{10}, Time{10}}, {Time{20}, Time{20}});
  // 3 map slots, 2 reduce slots: 10 + 20 = 30.
  EXPECT_EQ(j.min_execution_time(3, 2), Time{30});
}

TEST(ValidateJob, AcceptsGoodJob) {
  EXPECT_EQ(validate_job(make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {Time{10}})), "");
  EXPECT_EQ(validate_job(make_job(5, Time{10}, Time{50}, Time{100}, {Time{1}}, {})), "");
}

TEST(ValidateJob, RejectsNegativeId) {
  Job j = make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {});
  j.id = -3;
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsStartBeforeArrival) {
  Job j = make_job(0, Time{100}, Time{50}, Time{500}, {Time{10}}, {});
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsDeadlineBeforeStart) {
  Job j = make_job(0, Time{0}, Time{100}, Time{100}, {Time{10}}, {});
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsEmptyJob) {
  Job j = make_job(0, Time{0}, Time{0}, Time{100}, {}, {});
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsNonPositiveExecTime) {
  Job j = make_job(0, Time{0}, Time{0}, Time{100}, {Time{0}}, {});
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsWrongPhaseType) {
  Job j = make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {Time{10}});
  j.map_tasks[0].type = TaskType::kReduce;
  EXPECT_NE(validate_job(j), "");
}

TEST(ValidateJob, RejectsBadResReq) {
  Job j = make_job(0, Time{0}, Time{0}, Time{100}, {Time{10}}, {});
  j.map_tasks[0].res_req = 0;
  EXPECT_NE(validate_job(j), "");
}

TEST(TaskTypeName, Names) {
  EXPECT_STREQ(task_type_name(TaskType::kMap), "map");
  EXPECT_STREQ(task_type_name(TaskType::kReduce), "reduce");
}

TEST(TimeConversion, RoundTrips) {
  EXPECT_EQ(seconds_to_ticks(1.0), Time{1000});
  EXPECT_EQ(seconds_to_ticks(0.5), Time{500});
  EXPECT_DOUBLE_EQ(ticks_to_seconds(Time{1500}), 1.5);
}

}  // namespace
}  // namespace mrcp
