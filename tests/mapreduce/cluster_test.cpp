#include "mapreduce/cluster.h"

#include <gtest/gtest.h>

namespace mrcp {
namespace {

TEST(ClusterTest, Homogeneous) {
  const Cluster c = Cluster::homogeneous(50, 2, 3);
  EXPECT_EQ(c.size(), 50);
  EXPECT_EQ(c.total_map_slots(), 100);
  EXPECT_EQ(c.total_reduce_slots(), 150);
  for (const Resource& r : c.resources()) {
    EXPECT_EQ(r.map_capacity, 2);
    EXPECT_EQ(r.reduce_capacity, 3);
  }
}

TEST(ClusterTest, IdsAreDense) {
  const Cluster c = Cluster::homogeneous(5, 1, 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.resource(i).id, i);
  }
}

TEST(ClusterTest, Heterogeneous) {
  Cluster c;
  c.add_resource(4, 0);
  c.add_resource(0, 6);
  c.add_resource(1, 1);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.total_map_slots(), 5);
  EXPECT_EQ(c.total_reduce_slots(), 7);
  EXPECT_EQ(c.resource(0).capacity(TaskType::kMap), 4);
  EXPECT_EQ(c.resource(1).capacity(TaskType::kReduce), 6);
}

TEST(ClusterTest, CombinedResource) {
  const Cluster c = Cluster::homogeneous(50, 2, 2);
  const Resource combined = c.combined_resource();
  // The §V.D example: 50 resources with c^mp = c^rd = 2 combine into a
  // single resource with 100 map and 100 reduce slots.
  EXPECT_EQ(combined.map_capacity, 100);
  EXPECT_EQ(combined.reduce_capacity, 100);
}

TEST(ClusterTest, TotalSlotsByType) {
  const Cluster c = Cluster::homogeneous(3, 2, 5);
  EXPECT_EQ(c.total_slots(TaskType::kMap), 6);
  EXPECT_EQ(c.total_slots(TaskType::kReduce), 15);
}

TEST(ClusterTest, ToStringMentionsSize) {
  const Cluster c = Cluster::homogeneous(7, 1, 1);
  EXPECT_NE(c.to_string().find("m=7"), std::string::npos);
}

}  // namespace
}  // namespace mrcp
