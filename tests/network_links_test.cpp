// Network-link (communication resource) tests — the paper's §VII
// extension "systems with additional resources including storage devices
// and communication links". Each resource can carry a link capacity; a
// task's net_demand occupies it while running, across both phases.
#include <gtest/gtest.h>

#include "core/mrcp_rm.h"
#include "cp/solver.h"
#include "sim/cluster_sim.h"
#include "test_util.h"

namespace mrcp {
namespace {

using testutil::make_job;

TEST(NetworkCp, LinkSerializesOtherwiseParallelTasks) {
  // 2 map slots but a single link unit: two net-hungry maps serialize.
  cp::Model m;
  m.add_resource(2, 1, /*net_capacity=*/1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 0, /*net_demand=*/1);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 1, /*net_demand=*/1);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(cp::validate_solution(m, r.best), "");
  EXPECT_EQ(r.best.job_completion[0], Time{200});  // serialized on the link
}

TEST(NetworkCp, ZeroNetDemandUnaffectedByLink) {
  cp::Model m;
  m.add_resource(2, 1, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100});
  m.add_task(j, cp::Phase::kMap, Time{100});
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(r.best.job_completion[0], Time{100});  // parallel: no link usage
}

TEST(NetworkCp, LinkSharedAcrossPhases) {
  // One map and one reduce, both on the link: a (1 map, 1 reduce, 1 net)
  // resource cannot run them concurrently even though the slot pools are
  // separate.
  cp::Model m;
  m.add_resource(1, 1, 1);
  const cp::CpJobIndex j0 = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j0, cp::Phase::kMap, Time{100}, 1, 0, 1);
  const cp::CpJobIndex j1 = m.add_job(Time{0}, Time{10000}, 1);
  m.add_task(j1, cp::Phase::kReduce, Time{100}, 1, 1, 1);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(cp::validate_solution(m, r.best), "");
  const Time s0 = r.best.placements[0].start;
  const Time s1 = r.best.placements[1].start;
  EXPECT_TRUE(s0 + Time{100} <= s1 || s1 + Time{100} <= s0)
      << "link-bound tasks overlap: " << s0 << " vs " << s1;
}

TEST(NetworkCp, UnconstrainedResourceIgnoresDemand) {
  // net_capacity = 0 means no link bookkeeping at all.
  cp::Model m;
  m.add_resource(2, 1, 0);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 0, 5);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 1, 5);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(r.best.job_completion[0], Time{100});
}

TEST(NetworkCp, SearchPrefersResourceWithFreeLink) {
  cp::Model m;
  m.add_resource(1, 1, 1);
  m.add_resource(1, 1, 1);
  const cp::CpJobIndex j0 = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j0, cp::Phase::kMap, Time{100}, 1, 0, 1);
  const cp::CpJobIndex j1 = m.add_job(Time{0}, Time{10000}, 1);
  m.add_task(j1, cp::Phase::kMap, Time{100}, 1, 1, 1);
  const cp::SolveResult r = cp::solve(m, cp::SolveParams{});
  EXPECT_EQ(r.best.placements[0].start, Time{0});
  EXPECT_EQ(r.best.placements[1].start, Time{0});
  EXPECT_NE(r.best.placements[0].resource, r.best.placements[1].resource);
}

TEST(NetworkCp, ValidatorCatchesLinkOverload) {
  cp::Model m;
  m.add_resource(2, 1, 1);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{10000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 0, 1);
  m.add_task(j, cp::Phase::kMap, Time{100}, 1, 1, 1);
  cp::Solution s;
  s.placements = {{0, Time{0}}, {0, Time{50}}};  // overlapping link usage
  EXPECT_NE(cp::validate_solution(m, s), "");
  s.placements = {{0, Time{0}}, {0, Time{100}}};
  EXPECT_EQ(cp::validate_solution(m, s), "");
}

TEST(NetworkCp, ModelValidateRejectsOversizedNetDemand) {
  cp::Model m;
  m.add_resource(1, 1, 2);
  const cp::CpJobIndex j = m.add_job(Time{0}, Time{1000}, 0);
  m.add_task(j, cp::Phase::kMap, Time{10}, 1, 0, 3);  // needs 3 link units, cap 2
  EXPECT_NE(m.validate(), "");
}

TEST(NetworkRm, FallsBackToDirectModelAndRespectsLinks) {
  // Cluster of link-constrained resources: the RM must use the direct
  // formulation and keep link usage within capacity end-to-end.
  Job job = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}, Time{100}, Time{100}}, {});
  for (Task& t : job.map_tasks) t.net_demand = 1;
  Workload w;
  w.jobs = {job};
  w.cluster = Cluster::homogeneous(2, 2, 1, /*net_capacity=*/1);

  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  ASSERT_TRUE(m.records[0].completed());
  // 4 unit-net maps over 2 links: at most 2 in parallel -> >= 200 ticks.
  EXPECT_GE(m.records[0].completion, Time{200});
}

TEST(NetworkRm, MixedDemandsShareLinksCorrectly) {
  Job heavy = make_job(0, Time{0}, Time{0}, Time{1000000}, {Time{100}, Time{100}}, {});
  heavy.map_tasks[0].net_demand = 2;
  heavy.map_tasks[1].net_demand = 2;
  Job light = make_job(1, Time{0}, Time{0}, Time{1000000}, {Time{100}}, {});
  light.map_tasks[0].net_demand = 0;
  Workload w;
  w.jobs = {heavy, light};
  w.cluster = Cluster::homogeneous(1, 3, 1, /*net_capacity=*/2);

  MrcpConfig cfg;
  cfg.validate_plans = true;
  const sim::SimMetrics m = sim::simulate_mrcp(w, cfg);
  // The two heavy maps each need the full link: serialized (>= 200);
  // the light map is free to run any time.
  EXPECT_GE(m.records[0].completion, Time{200});
  EXPECT_EQ(m.records[1].completion, Time{100});
}

TEST(NetworkJob, ValidateRejectsNegativeDemand) {
  Job job = make_job(0, Time{0}, Time{0}, Time{1000}, {Time{10}}, {});
  job.map_tasks[0].net_demand = -1;
  EXPECT_NE(validate_job(job), "");
}

}  // namespace
}  // namespace mrcp
