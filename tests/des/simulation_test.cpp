#include "des/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mrcp::des {
namespace {

TEST(Simulation, StartsAtZeroAndEmpty) {
  Simulation sim;
  EXPECT_EQ(sim.now(), Time{0});
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, ProcessesEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(Time{30}, [&] { fired.push_back(3); });
  sim.schedule_at(Time{10}, [&] { fired.push_back(1); });
  sim.schedule_at(Time{20}, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time{30});
}

TEST(Simulation, TiesBreakFifo) {
  Simulation sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(Time{5}, [&, i] { fired.push_back(i); });
  }
  sim.run();
  std::vector<int> expected(10);
  for (int i = 0; i < 10; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(fired, expected);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  Time observed = Time{-1};
  sim.schedule_at(Time{100}, [&] {
    sim.schedule_after(Time{50}, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, Time{150});
}

TEST(Simulation, EventsScheduledDuringRunAreProcessed) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(Time{10}, chain);
  };
  sim.schedule_at(Time{0}, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), Time{40});
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(Time{10}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.stats().cancelled, 1u);
  EXPECT_EQ(sim.stats().skipped_cancelled, 1u);
}

TEST(Simulation, DoubleCancelIsNoop) {
  Simulation sim;
  EventHandle h = sim.schedule_at(Time{10}, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  EventHandle h = sim.schedule_at(Time{10}, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, DefaultHandleIsInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.pending());
  Simulation sim;
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  std::vector<Time> fired;
  sim.schedule_at(Time{10}, [&] { fired.push_back(Time{10}); });
  sim.schedule_at(Time{20}, [&] { fired.push_back(Time{20}); });
  sim.schedule_at(Time{30}, [&] { fired.push_back(Time{30}); });
  sim.run(Time{20});
  EXPECT_EQ(fired, (std::vector<Time>{Time{10}, Time{20}}));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulation, StepProcessesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(Time{1}, [&] { ++count; });
  sim.schedule_at(Time{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RequestStopHaltsRun) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(Time{1}, [&] {
    ++count;
    sim.request_stop();
  });
  sim.schedule_at(Time{2}, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(Simulation, RequestStopBeforeRunHaltsBeforeFirstEvent) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(Time{1}, [&] { ++count; });
  sim.request_stop();
  sim.run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(sim.now(), Time{0});
  sim.run();  // the stop request was consumed by the first run()
  EXPECT_EQ(count, 1);
}

TEST(Simulation, CancelDuringOwnCallbackIsNoop) {
  Simulation sim;
  EventHandle h;
  bool cancel_result = true;
  h = sim.schedule_at(Time{10}, [&] {
    // The event is firing right now — it is no longer cancellable.
    cancel_result = sim.cancel(h);
  });
  sim.run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.stats().fired, 1u);
  EXPECT_EQ(sim.stats().cancelled, 0u);
}

TEST(Simulation, CancelFiredHandleDoesNotAffectLaterEvents) {
  Simulation sim;
  int count = 0;
  EventHandle h = sim.schedule_at(Time{1}, [&] { ++count; });
  sim.schedule_at(Time{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.cancel(h));  // already fired
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.stats().cancelled, 0u);
}

TEST(Simulation, StatsCountScheduledAndFired) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(Time{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.stats().scheduled, 5u);
  EXPECT_EQ(sim.stats().fired, 5u);
}

TEST(Simulation, PendingCountTracksQueue) {
  Simulation sim;
  EventHandle h1 = sim.schedule_at(Time{1}, [] {});
  sim.schedule_at(Time{2}, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, ManyEventsStressOrdering) {
  Simulation sim;
  Time last = Time{-1};
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    // Scatter times via a fixed mixing of i.
    const Time t = (static_cast<Time>(i) * 2654435761U) % Time{100000};
    sim.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.stats().fired, 10000u);
}

TEST(Simulation, SameTickScheduleNowIsAllowed) {
  Simulation sim;
  bool inner = false;
  sim.schedule_at(Time{5}, [&] { sim.schedule_at(Time{5}, [&] { inner = true; }); });
  sim.run();
  EXPECT_TRUE(inner);
}

}  // namespace
}  // namespace mrcp::des
