// Shared helpers for building small jobs/workloads in tests.
#pragma once

#include <vector>

#include "common/types.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"
#include "mapreduce/workload.h"

namespace mrcp::testutil {

/// A job with explicit map/reduce durations (in ticks).
inline Job make_job(JobId id, Time arrival, Time earliest_start, Time deadline,
                    const std::vector<Time>& map_durs,
                    const std::vector<Time>& reduce_durs) {
  Job j;
  j.id = id;
  j.arrival_time = arrival;
  j.earliest_start = earliest_start;
  j.deadline = deadline;
  for (Time d : map_durs) {
    Task t;
    t.type = TaskType::kMap;
    t.exec_time = d;
    j.map_tasks.push_back(std::move(t));
  }
  for (Time d : reduce_durs) {
    Task t;
    t.type = TaskType::kReduce;
    t.exec_time = d;
    j.reduce_tasks.push_back(std::move(t));
  }
  return j;
}

/// Workload from explicit jobs on a homogeneous cluster.
inline Workload make_workload(std::vector<Job> jobs, int m, int map_cap,
                              int reduce_cap) {
  Workload w;
  w.jobs = std::move(jobs);
  w.cluster = Cluster::homogeneous(m, map_cap, reduce_cap);
  return w;
}

}  // namespace mrcp::testutil
