#!/usr/bin/env bash
# Reproduce every table/figure of the paper at (near-)paper scale.
#
# Defaults below take ~1-3 hours on one core; the scaled-down versions
# that finish in minutes are just the benches' own defaults:
#   for b in build/bench/bench_*; do $b; done
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

OUT=${1:-paper_scale_results}
mkdir -p "$OUT"

# Figs. 2 & 3: paper uses 1000 jobs x 100 replications; 600x10 keeps the
# confidence bands comparable at a fraction of the cost.
./build/bench/bench_fig2_3_vs_minedf --jobs 600 --reps 10 \
    --csv "$OUT/fig2_3.csv" | tee "$OUT/fig2_3.txt"

for fig in fig4_exec_time fig5_smax fig6_start_prob fig7_deadline \
           fig8_arrival_rate fig9_resources; do
  ./build/bench/bench_$fig --jobs 500 --reps 10 \
      --csv "$OUT/$fig.csv" | tee "$OUT/$fig.txt"
done

./build/bench/bench_workload_stats --jobs 20000 | tee "$OUT/workload_stats.txt"
./build/bench/bench_ablation_separation --reps 10 | tee "$OUT/ablation_separation.txt"
./build/bench/bench_ablation_deferral --jobs 300 --reps 5 | tee "$OUT/ablation_deferral.txt"
./build/bench/bench_ablation_ordering --jobs 300 --reps 5 | tee "$OUT/ablation_ordering.txt"
./build/bench/bench_ablation_replan_scope --jobs 300 --reps 5 | tee "$OUT/ablation_replan_scope.txt"
./build/bench/bench_ablation_baseline_variants --jobs 400 --reps 5 | tee "$OUT/ablation_baseline_variants.txt"
./build/bench/bench_workflow_overhead --jobs 200 --reps 5 | tee "$OUT/workflow_overhead.txt"
./build/bench/bench_cp_micro | tee "$OUT/cp_micro.txt"
./build/bench/bench_des_micro | tee "$OUT/des_micro.txt"

echo "results in $OUT/"
