#!/usr/bin/env bash
# Static analysis + custom lint rules for the MRCP-RM tree.
#
#   scripts/lint.sh            # custom rules, plus clang-tidy if installed
#   scripts/lint.sh --tidy     # require clang-tidy (fail when missing)
#   scripts/lint.sh --no-tidy  # custom rules only
#
# clang-tidy needs a compile database; the script configures one into
# build-tidy/ on first use. The custom rules need nothing but grep, so
# they run everywhere (including machines with no clang toolchain).
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY_MODE=auto
case "${1:-}" in
  --tidy) TIDY_MODE=require ;;
  --no-tidy) TIDY_MODE=skip ;;
  "") ;;
  *) echo "usage: $0 [--tidy|--no-tidy]" >&2; exit 2 ;;
esac

SRC_DIRS=(src tools tests bench examples)
fail=0

# ---------------------------------------------------------------------------
# Custom rules. Each is a grep over the tree; a match is a finding.
# ---------------------------------------------------------------------------

# Reproducibility rule: all randomness must flow through RandomStream
# (seeded SplitMix64 -> mt19937_64). std::rand is global-state and
# unseeded; a bare std::random_device or default-constructed engine
# makes replications non-reproducible.
check_pattern() {
  local name="$1" pattern="$2"
  shift 2
  local matches count
  # grep -n over tracked source; allow-list via 'lint-ok: <rule>' comment.
  # tests/lint fixtures are deliberate rule violations (*.cc keeps them out
  # of the --include sweep, the --exclude-dir is belt and braces).
  matches=$(grep -rnE --include='*.cpp' --include='*.h' \
              --exclude-dir='lint' "$pattern" \
              "${SRC_DIRS[@]}" 2>/dev/null | grep -v "lint-ok: $name" || true)
  if [[ -n "$matches" ]]; then
    count=$(printf '%s\n' "$matches" | wc -l)
    echo "lint: rule '$name' violated ($count finding(s)):" >&2
    echo "$matches" >&2
    fail=1
  else
    echo "lint: rule '$name' OK (0 findings)"
  fi
}

check_pattern no-std-rand '\bstd::rand\b|\bsrand\s*\('
check_pattern no-unseeded-rng \
  'std::mt19937(_64)?\s+[A-Za-z_][A-Za-z0-9_]*\s*;|std::random_device'
# Ownership rule: no naked new outside placement/test fixtures — the
# codebase uses values, vectors and unique_ptr exclusively.
check_pattern no-naked-new '=\s*new\s+[A-Za-z_]|return\s+new\s+[A-Za-z_]'
# Determinism rule: wall-clock time must come from Stopwatch (solver
# budgets) — raw clock calls sneak nondeterminism into results.
# system_clock::now and clock_gettime are the same hazard through other
# doors; stopwatch.h itself is allow-listed via lint-ok comments.
check_pattern no-raw-clock \
  'std::time\s*\(|\bgettimeofday\s*\(|std::chrono::system_clock::now|\bclock_gettime\s*\('

if [[ $fail -ne 0 ]]; then
  echo "lint: custom rules FAILED" >&2
else
  echo "lint: custom rules OK"
fi

# ---------------------------------------------------------------------------
# clang-tidy (configuration in .clang-tidy).
# ---------------------------------------------------------------------------
if [[ $TIDY_MODE == skip ]]; then
  exit $fail
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ $TIDY_MODE == require ]]; then
    echo "lint: clang-tidy not found (required by --tidy)" >&2
    exit 1
  fi
  echo "lint: clang-tidy not installed; skipping static analysis"
  exit $fail
fi

if [[ ! -f build-tidy/compile_commands.json ]]; then
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DMRCP_BUILD_BENCH=OFF -DMRCP_BUILD_EXAMPLES=OFF >/dev/null
fi

mapfile -t files < <(find src tools -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build-tidy -quiet "${files[@]}" || fail=1
else
  for f in "${files[@]}"; do
    clang-tidy -p build-tidy --quiet "$f" || fail=1
  done
fi

if [[ $fail -eq 0 ]]; then
  echo "lint: OK"
else
  echo "lint: FAILED" >&2
fi
exit $fail
