// Lexical model of one source file for mrcp-lint.
//
// mrcp-lint works on a *sanitized* view of each translation unit: the
// original text with comments and string/character literals blanked out
// (replaced by spaces, newlines preserved), so structural rules can use
// plain text scanning without tripping over `"for (auto& x : m)"` inside
// a log message. Columns and line numbers in the sanitized view are
// identical to the original, so findings point at real locations.
//
// Allow-listing follows the repo-wide `lint-ok: <rule>` convention
// (docs/static_analysis.md): a comment containing `lint-ok: <rule>` on
// the same line — or on a line of its own immediately above — suppresses
// findings of that rule on that line.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace mrcp::lint {

struct SourceFile {
  std::string path;
  /// Original text split into lines (no trailing '\n').
  std::vector<std::string> lines;
  /// Comment/string-blanked text, same line/column layout as `lines`.
  std::vector<std::string> sanitized;
  /// allow[i] = rules allow-listed for 1-based line i+1.
  std::vector<std::set<std::string>> allow;

  bool allowed(int line, const std::string& rule) const {
    if (line < 1 || line > static_cast<int>(allow.size())) return false;
    return allow[static_cast<std::size_t>(line - 1)].count(rule) > 0;
  }
};

/// Load and sanitize `path`. Returns false when the file cannot be read.
bool load_source(const std::string& path, SourceFile& out);

}  // namespace mrcp::lint
