#include "source_file.h"

#include <fstream>
#include <sstream>

namespace mrcp::lint {
namespace {

/// Extract `lint-ok: <rule>[, <rule>...]` rule names from comment text.
void parse_lint_ok(const std::string& comment, std::set<std::string>& rules) {
  const std::string tag = "lint-ok:";
  std::size_t pos = comment.find(tag);
  while (pos != std::string::npos) {
    std::size_t i = pos + tag.size();
    // A comma-separated list of rule names follows the tag.
    while (i < comment.size()) {
      while (i < comment.size() && (comment[i] == ' ' || comment[i] == ','))
        ++i;
      std::size_t start = i;
      while (i < comment.size() &&
             (std::isalnum(static_cast<unsigned char>(comment[i])) != 0 ||
              comment[i] == '-' || comment[i] == '_'))
        ++i;
      if (i == start) break;
      rules.insert(comment.substr(start, i - start));
      if (i >= comment.size() || comment[i] != ',') break;
    }
    pos = comment.find(tag, i);
  }
}

}  // namespace

bool load_source(const std::string& path, SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  out.path = path;
  out.lines.clear();
  out.sanitized.clear();
  out.allow.clear();

  // Single pass: classify each character as code, comment, or literal.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string cur_line, cur_sani, cur_comment, raw_delim;
  std::set<std::string> cur_allow;
  bool pending_standalone_allow = false;
  std::set<std::string> standalone_allow;

  auto flush_line = [&]() {
    parse_lint_ok(cur_comment, cur_allow);
    // A line that is nothing but a comment pushes its allow-list onto the
    // next line as well (the standalone-comment-above convention).
    bool code_blank = true;
    for (char ch : cur_sani)
      if (ch != ' ' && ch != '\t') code_blank = false;
    std::set<std::string> line_allow = cur_allow;
    if (pending_standalone_allow)
      line_allow.insert(standalone_allow.begin(), standalone_allow.end());
    if (code_blank && !cur_allow.empty()) {
      pending_standalone_allow = true;
      standalone_allow = cur_allow;
    } else {
      pending_standalone_allow = false;
      standalone_allow.clear();
    }
    out.lines.push_back(cur_line);
    out.sanitized.push_back(cur_sani);
    out.allow.push_back(std::move(line_allow));
    cur_line.clear();
    cur_sani.clear();
    cur_comment.clear();
    cur_allow.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    cur_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          cur_sani.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          cur_sani.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (cur_sani.empty() ||
                    (std::isalnum(static_cast<unsigned char>(
                         cur_sani.back())) == 0 &&
                     cur_sani.back() != '_'))) {
          // Raw string literal R"delim( ... )delim"
          std::size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - (i + 2)) + "\"";
            state = State::kRawString;
          }
          cur_sani.push_back(' ');
        } else if (c == '"') {
          state = State::kString;
          cur_sani.push_back(' ');
        } else if (c == '\'' &&
                   !(std::isdigit(static_cast<unsigned char>(
                         cur_sani.empty() ? '\0' : cur_sani.back())) != 0 &&
                     (std::isdigit(static_cast<unsigned char>(next)) != 0 ||
                      next == '\''))) {
          // Skip digit separators (1'000'000); otherwise a char literal.
          state = State::kChar;
          cur_sani.push_back(' ');
        } else {
          cur_sani.push_back(c);
        }
        break;
      case State::kLineComment:
        cur_comment.push_back(c);
        cur_sani.push_back(' ');
        break;
      case State::kBlockComment:
        cur_comment.push_back(c);
        cur_sani.push_back(' ');
        if (c == '*' && next == '/') {
          cur_sani.push_back(' ');
          cur_line.push_back(next);
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        cur_sani.push_back(' ');
        if (c == '\\' && next != '\0') {
          cur_sani.push_back(' ');
          cur_line.push_back(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        cur_sani.push_back(' ');
        if (c == '\\' && next != '\0') {
          cur_sani.push_back(' ');
          cur_line.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        cur_sani.push_back(' ');
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            cur_line.push_back(text[i + k]);
            cur_sani.push_back(' ');
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (!cur_line.empty() || !cur_comment.empty()) flush_line();
  return true;
}

}  // namespace mrcp::lint
