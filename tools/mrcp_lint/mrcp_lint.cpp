// mrcp-lint: structural analyzer for the MRCP-RM tree.
//
// Enforces invariants that the grep layer (scripts/lint.sh) cannot see
// because they need declaration or scope context — see rules.h for the
// rule catalogue and docs/static_analysis.md for where this sits in the
// four-layer static-analysis stack.
//
// Usage:
//   mrcp-lint [--json] [--compile-commands <path>] [--dir <d>]... [file]...
//
// File discovery follows compile_commands.json (the same database
// clang-tidy uses) so the lint set and the build set cannot drift;
// --dir adds headers, which never appear as translation units. The
// frontend is a purpose-built comment/string-aware scanner rather than
// libclang — the build image carries no clang dev headers — structured
// so a libclang-backed frontend can replace source_file.h without
// touching the rules (docs/static_analysis.md#mrcp-lint).
//
// Output: one `file:line:col: [rule] message` line per finding, or a
// JSON array with --json. Exit 0 = clean, 1 = findings, 2 = bad usage.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"
#include "source_file.h"

namespace mrcp::lint {
namespace {

bool has_source_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".cc" || ext == ".hpp";
}

/// Pull the "file" entries out of a compile database. The format is a
/// JSON array of objects; a field-level regex is enough here and avoids
/// a JSON dependency the image does not carry.
bool files_from_compile_commands(const std::string& path,
                                 std::set<std::string>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::regex entry(R"rx("file"\s*:\s*"((?:[^"\\]|\\.)+)")rx");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), entry);
       it != std::sregex_iterator(); ++it) {
    std::string f = (*it)[1].str();
    // Unescape the two sequences cmake actually emits in paths.
    std::string clean;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (f[i] == '\\' && i + 1 < f.size()) {
        clean.push_back(f[++i]);
      } else {
        clean.push_back(f[i]);
      }
    }
    if (has_source_extension(clean)) out.insert(clean);
  }
  return true;
}

void files_from_dir(const std::string& dir, std::set<std::string>& out) {
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       it != std::filesystem::recursive_directory_iterator();
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && has_source_extension(it->path()))
      out.insert(it->path().string());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

int run(int argc, char** argv) {
  bool json = false;
  std::set<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--compile-commands") {
      if (++i >= argc) {
        std::cerr << "mrcp-lint: --compile-commands needs a path\n";
        return 2;
      }
      if (!files_from_compile_commands(argv[i], files)) {
        std::cerr << "mrcp-lint: cannot read " << argv[i] << "\n";
        return 2;
      }
    } else if (arg == "--dir") {
      if (++i >= argc) {
        std::cerr << "mrcp-lint: --dir needs a directory\n";
        return 2;
      }
      files_from_dir(argv[i], files);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: mrcp-lint [--json] [--compile-commands <path>] "
                   "[--dir <d>]... [file]...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mrcp-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.insert(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "mrcp-lint: no input files (see --help)\n";
    return 2;
  }

  RuleOptions options;
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    SourceFile src;
    if (!load_source(f, src)) {
      std::cerr << "mrcp-lint: cannot read " << f << "\n";
      return 2;
    }
    run_rules(src, options, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.column < b.column;
            });

  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "  {\"file\": \"" << json_escape(f.file)
                << "\", \"line\": " << f.line
                << ", \"column\": " << f.column << ", \"rule\": \""
                << json_escape(f.rule) << "\", \"message\": \""
                << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ":" << f.column << ": ["
                << f.rule << "] " << f.message << "\n";
    }
    std::cerr << "mrcp-lint: " << files.size() << " file(s), "
              << findings.size() << " finding(s)\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace mrcp::lint

int main(int argc, char** argv) { return mrcp::lint::run(argc, argv); }
