// mrcp-lint rule definitions.
//
// Five structural rules that the grep layer in scripts/lint.sh cannot
// express (they need scope or declaration context, not just a pattern):
//
//   unordered-iteration   range-for over a std::unordered_{map,set,multimap,
//                         multiset} — hash-order iteration feeding any
//                         downstream plan/output ordering is nondeterministic
//                         across standard libraries and even runs (pointer
//                         hashing). Iterate a sorted copy or an index vector.
//   raw-time-literal      Time{N}/Ticks{N} with |N| > 1 in production code
//                         (src/ outside common/types.h): a raw tick count
//                         hides its unit; route through seconds_to_ticks or
//                         name the constant. Time{0}/Time{1} stay legal —
//                         zero/epsilon have no unit ambiguity.
//   rng-construction      constructing a std:: random engine or a
//                         random_device outside src/common/rng.* —
//                         all randomness must flow through RandomStream
//                         (seeded, stream-split, reproducible).
//   blocking-under-lock   a sleep/join/pool-wait call while a lock guard
//                         (MutexLock, std::lock_guard, std::unique_lock,
//                         std::scoped_lock) is live in an enclosing scope.
//                         CondVar::wait is exempt: waiting with the lock
//                         held is the point of a condition variable.
//   raw-file-io           write-capable file I/O (std::ofstream,
//                         std::fstream, fopen, fwrite) in production code
//                         outside the sanctioned homes (src/common/io/,
//                         src/sim/trace_export.*). Everything the
//                         scheduler persists must flow through the
//                         checksummed framing layer so crash recovery
//                         (docs/crash_recovery.md) sees every write;
//                         read-only std::ifstream stays legal everywhere.
//
// Every rule honours the `lint-ok: <rule>` comment convention described
// in docs/static_analysis.md.
#pragma once

#include <string>
#include <vector>

#include "source_file.h"

namespace mrcp::lint {

struct Finding {
  std::string file;
  int line = 0;
  int column = 0;  ///< 1-based.
  std::string rule;
  std::string message;
};

/// Options controlling which paths each rule applies to.
struct RuleOptions {
  /// raw-time-literal only fires inside this path fragment (production
  /// code); tests/bench construct ad-hoc tick values by design.
  std::string time_literal_scope = "src/";
  /// Files whose path contains any of these fragments may construct RNG
  /// engines (the RandomStream implementation itself).
  std::vector<std::string> rng_home = {"src/common/rng."};
  /// raw-file-io only fires inside this path fragment (production code);
  /// tests and tools write scratch files by design.
  std::string file_io_scope = "src/";
  /// Files whose path contains any of these fragments may perform raw
  /// write-capable file I/O: the framing layer itself, and the CSV trace
  /// exporter (human-facing output, deliberately outside the journal).
  std::vector<std::string> file_io_homes = {"src/common/io/",
                                            "src/sim/trace_export."};
};

/// Run all rules over `file`, appending findings.
void run_rules(const SourceFile& file, const RuleOptions& options,
               std::vector<Finding>& findings);

}  // namespace mrcp::lint
