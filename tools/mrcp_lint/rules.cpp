#include "rules.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <regex>
#include <set>

namespace mrcp::lint {
namespace {

bool path_contains(const std::string& path, const std::string& fragment) {
  return path.find(fragment) != std::string::npos;
}

void report(const SourceFile& file, int line, int col, const char* rule,
            std::string message, std::vector<Finding>& findings) {
  if (file.allowed(line, rule)) return;
  findings.push_back(Finding{file.path, line, col, rule, std::move(message)});
}

// --------------------------------------------------------------------------
// unordered-iteration
// --------------------------------------------------------------------------

const std::regex kUnorderedDecl(
    R"(\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<)");
const std::regex kForHead(R"(\bfor\s*\()");
const std::regex kIdent(R"([A-Za-z_]\w*)");

/// Parse `for (...)` starting at the opening paren: returns the range
/// expression of a range-for (text after the top-level ':' that is not
/// part of a '::'), or an empty string for a classic for / no match.
/// Single-line headers only — multi-line is rare and self-documenting.
std::string range_for_expression(const std::string& line, std::size_t open) {
  int depth = 0;
  std::size_t colon = std::string::npos;
  for (std::size_t j = open; j < line.size(); ++j) {
    const char c = line[j];
    if (c == '(' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == ']') {
      --depth;
      if (depth == 0) {
        if (colon == std::string::npos) return "";
        return line.substr(colon + 1, j - colon - 1);
      }
    }
    if (c == ':' && depth == 1 && colon == std::string::npos) {
      const char prev = j > 0 ? line[j - 1] : '\0';
      const char next = j + 1 < line.size() ? line[j + 1] : '\0';
      if (prev != ':' && next != ':') colon = j;
    }
    if (c == ';') return "";  // classic for
  }
  return "";
}

void rule_unordered_iteration(const SourceFile& file,
                              std::vector<Finding>& findings) {
  // Pass 1: names declared with an unordered container type anywhere in
  // this file (member or local — either way its iteration order is
  // hash-order).
  std::set<std::string> unordered_names;
  for (const std::string& line : file.sanitized) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kUnorderedDecl);
         it != std::sregex_iterator(); ++it) {
      // The declared name is the first identifier after the closing '>'
      // of the template argument list.
      std::size_t pos = static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length());
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') --depth;
        ++pos;
      }
      if (depth != 0) continue;  // template args continue on the next line
      std::smatch m;
      std::string rest = line.substr(pos);
      if (std::regex_search(rest, m, kIdent))
        unordered_names.insert(m.str());
    }
  }

  // Pass 2: range-fors whose range mentions an unordered name or an
  // unordered container expression directly.
  for (std::size_t i = 0; i < file.sanitized.size(); ++i) {
    const std::string& line = file.sanitized[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kForHead);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position()) +
                               static_cast<std::size_t>(it->length()) - 1;
      const std::string range = range_for_expression(line, open);
      if (range.empty()) continue;
      bool hits = range.find("unordered_") != std::string::npos;
      if (!hits) {
        for (auto id = std::sregex_iterator(range.begin(), range.end(),
                                            kIdent);
             id != std::sregex_iterator(); ++id) {
          if (unordered_names.count(id->str()) > 0) {
            hits = true;
            break;
          }
        }
      }
      if (hits) {
        report(file, static_cast<int>(i) + 1,
               static_cast<int>(it->position()) + 1, "unordered-iteration",
               "range-for over an unordered container: hash-order iteration "
               "is nondeterministic; iterate a sorted copy or index vector",
               findings);
      }
    }
  }
}

// --------------------------------------------------------------------------
// raw-time-literal
// --------------------------------------------------------------------------

// Both forms of a unit-less tick count entering the Time domain: a bare
// construction `Time{250}` and a braced declaration `Time delay{250}`.
const std::regex kTimeLiteral(
    R"(\b(?:Time|Ticks)\s*(?:[A-Za-z_]\w*\s*)?\{\s*(-?\d[\d']*)\s*\})");

void rule_raw_time_literal(const SourceFile& file, const RuleOptions& options,
                           std::vector<Finding>& findings) {
  if (!path_contains(file.path, options.time_literal_scope)) return;
  if (path_contains(file.path, "common/types.h")) return;
  for (std::size_t i = 0; i < file.sanitized.size(); ++i) {
    const std::string& line = file.sanitized[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kTimeLiteral);
         it != std::sregex_iterator(); ++it) {
      std::string digits = (*it)[1].str();
      digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                   digits.end());
      const long long v = std::strtoll(digits.c_str(), nullptr, 10);
      if (v >= -1 && v <= 1) continue;  // zero/epsilon are unit-free
      report(file, static_cast<int>(i) + 1,
             static_cast<int>(it->position()) + 1, "raw-time-literal",
             "raw tick count " + digits +
                 " hides its unit; use seconds_to_ticks or a named constant",
             findings);
    }
  }
}

// --------------------------------------------------------------------------
// rng-construction
// --------------------------------------------------------------------------

const std::regex kRngType(
    R"(\bstd\s*::\s*(mt19937(?:_64)?|minstd_rand0?|default_random_engine|knuth_b|ranlux(?:24|48)(?:_base)?|random_device)\b)");

void rule_rng_construction(const SourceFile& file, const RuleOptions& options,
                           std::vector<Finding>& findings) {
  for (const std::string& home : options.rng_home)
    if (path_contains(file.path, home)) return;
  for (std::size_t i = 0; i < file.sanitized.size(); ++i) {
    const std::string& line = file.sanitized[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kRngType);
         it != std::sregex_iterator(); ++it) {
      // A *construction* is the type followed by a declarator or an
      // initializer. A reference/pointer (`std::mt19937_64&`) or a
      // template argument position is a pass-through, not a new engine.
      std::size_t pos = static_cast<std::size_t>(it->position()) +
                        static_cast<std::size_t>(it->length());
      while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                      line[pos])) != 0)
        ++pos;
      const char c = pos < line.size() ? line[pos] : '\0';
      const bool constructs = c == '{' || c == '(' ||
                              std::isalpha(static_cast<unsigned char>(c)) !=
                                  0 ||
                              c == '_';
      if (!constructs) continue;
      report(file, static_cast<int>(i) + 1,
             static_cast<int>(it->position()) + 1, "rng-construction",
             "random engine constructed outside RandomStream; all "
             "randomness must flow through common/rng.h for reproducibility",
             findings);
    }
  }
}

// --------------------------------------------------------------------------
// raw-file-io
// --------------------------------------------------------------------------

// Write-capable file I/O only: an ofstream/fstream mention or a C stdio
// write call. std::ifstream is read-only and deliberately not matched —
// loaders may read anywhere; it is *writes* that must flow through the
// checksummed framing layer so crash recovery sees them.
const std::regex kRawFileIo(
    R"(\bstd\s*::\s*(ofstream|fstream)\b|\b(fopen|freopen|fwrite)\s*\()");

void rule_raw_file_io(const SourceFile& file, const RuleOptions& options,
                      std::vector<Finding>& findings) {
  if (!path_contains(file.path, options.file_io_scope)) return;
  for (const std::string& home : options.file_io_homes)
    if (path_contains(file.path, home)) return;
  for (std::size_t i = 0; i < file.sanitized.size(); ++i) {
    const std::string& line = file.sanitized[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kRawFileIo);
         it != std::sregex_iterator(); ++it) {
      report(file, static_cast<int>(i) + 1,
             static_cast<int>(it->position()) + 1, "raw-file-io",
             "raw write-capable file I/O outside src/common/io and "
             "src/sim/trace_export; route through io::write_text_file or "
             "the framed record writer so durability covers the write",
             findings);
    }
  }
}

// --------------------------------------------------------------------------
// blocking-under-lock
// --------------------------------------------------------------------------

const std::regex kLockDecl(
    R"(\b(MutexLock|std\s*::\s*lock_guard|std\s*::\s*unique_lock|std\s*::\s*scoped_lock|std\s*::\s*shared_lock)\b)");
const std::regex kBlockingCall(
    R"(\b(sleep_for|sleep_until|wait_idle|run_indexed)\s*\(|\bjoin\s*\(\s*\))");

void rule_blocking_under_lock(const SourceFile& file,
                              std::vector<Finding>& findings) {
  int depth = 0;
  std::vector<int> lock_depths;  // brace depth at which each live lock lives
  for (std::size_t i = 0; i < file.sanitized.size(); ++i) {
    const std::string& line = file.sanitized[i];
    // Events on this line, in column order: brace changes, lock
    // declarations, blocking calls.
    struct Event {
      std::size_t col;
      int kind;  // 0 = '{', 1 = '}', 2 = lock decl, 3 = blocking call
      std::string what;
    };
    std::vector<Event> events;
    for (std::size_t j = 0; j < line.size(); ++j) {
      if (line[j] == '{') events.push_back({j, 0, "{"});
      if (line[j] == '}') events.push_back({j, 1, "}"});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kLockDecl);
         it != std::sregex_iterator(); ++it) {
      // Only a *guard declaration* counts: the type, optional template
      // arguments, then a declarator identifier. This skips the class
      // definition, constructors (`MutexLock(Mutex&...`), destructors
      // and pass-by-reference mentions of the same names.
      const std::size_t start = static_cast<std::size_t>(it->position());
      if (start > 0 && line[start - 1] == '~') continue;
      std::size_t pos = start + static_cast<std::size_t>(it->length());
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos])) != 0)
        ++pos;
      if (pos < line.size() && line[pos] == '<') {
        int angle = 0;
        while (pos < line.size()) {
          if (line[pos] == '<') ++angle;
          if (line[pos] == '>') --angle;
          ++pos;
          if (angle == 0) break;
        }
        while (pos < line.size() &&
               std::isspace(static_cast<unsigned char>(line[pos])) != 0)
          ++pos;
      }
      const char c = pos < line.size() ? line[pos] : '\0';
      if (std::isalpha(static_cast<unsigned char>(c)) == 0 && c != '_')
        continue;
      events.push_back({start, 2, it->str()});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kBlockingCall);
         it != std::sregex_iterator(); ++it)
      events.push_back({static_cast<std::size_t>(it->position()), 3,
                        (*it)[1].matched ? (*it)[1].str() : "join"});
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.col < b.col; });
    for (const Event& e : events) {
      switch (e.kind) {
        case 0:
          ++depth;
          break;
        case 1:
          --depth;
          while (!lock_depths.empty() && lock_depths.back() > depth)
            lock_depths.pop_back();
          break;
        case 2:
          lock_depths.push_back(depth);
          break;
        case 3:
          if (!lock_depths.empty()) {
            report(file, static_cast<int>(i) + 1,
                   static_cast<int>(e.col) + 1, "blocking-under-lock",
                   "'" + e.what +
                       "' called while a lock guard is live; release the "
                       "lock first (CondVar::wait is the sanctioned way to "
                       "sleep under a mutex)",
                   findings);
          }
          break;
      }
    }
  }
}

}  // namespace

void run_rules(const SourceFile& file, const RuleOptions& options,
               std::vector<Finding>& findings) {
  rule_unordered_iteration(file, findings);
  rule_raw_time_literal(file, options, findings);
  rule_rng_construction(file, options, findings);
  rule_raw_file_io(file, options, findings);
  rule_blocking_under_lock(file, findings);
}

}  // namespace mrcp::lint
