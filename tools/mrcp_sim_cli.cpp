// mrcp_sim — command-line driver for the whole library.
//
// Modes (--mode):
//   generate  Generate a workload (synthetic Table 3 or facebook Table 4)
//             and write it to --workload-out in the trace format.
//   simulate  Load (or generate) a workload and run it through a resource
//             manager (--rm mrcp|minedf|edf), printing O/N/T/P and
//             optionally exporting the executed schedule as CSV.
//   inspect   Load a workload and print its summary statistics.
//
// Examples:
//   mrcp_sim --mode generate --generator synthetic --jobs 100
//            --workload-out /tmp/w.workload
//   mrcp_sim --mode simulate --workload /tmp/w.workload --rm mrcp
//            --trace-out /tmp/schedule.csv
//   mrcp_sim --mode simulate --generator facebook --jobs 200
//            --lambda 0.0003 --rm minedf
#include <cstdint>
#include <cstdio>

#include "common/flags.h"
#include "mapreduce/facebook_workload.h"
#include "mapreduce/synthetic_workload.h"
#include "mapreduce/workload_io.h"
#include "sim/cluster_sim.h"
#include "sim/experiment.h"
#include "sim/trace_export.h"

using namespace mrcp;

namespace {

Workload build_workload(const Flags& flags, bool& ok) {
  ok = true;
  const std::string& path = flags.get_string("workload");
  if (!path.empty()) {
    std::string error;
    Workload w = load_workload_file(path, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      ok = false;
    }
    return w;
  }
  const std::string& gen = flags.get_string("generator");
  if (gen == "synthetic") {
    SyntheticWorkloadConfig c;
    c.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
    c.arrival_rate = flags.get_double("lambda") > 0 ? flags.get_double("lambda")
                                                    : 0.01;
    c.e_max = flags.get_int("emax");
    c.start_prob = flags.get_double("p");
    c.s_max = flags.get_int("smax");
    c.deadline_multiplier_ul = flags.get_double("dm");
    c.num_resources = static_cast<int>(flags.get_int("resources"));
    c.map_capacity = static_cast<int>(flags.get_int("map-slots"));
    c.reduce_capacity = static_cast<int>(flags.get_int("reduce-slots"));
    c.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    // Heterogeneity knobs (docs/heterogeneous.md). Defaults leave the
    // generator byte-identical to the homogeneous paper setup.
    c.num_racks = static_cast<int>(flags.get_int("num-racks"));
    c.locality_prob = flags.get_double("locality-prob");
    c.affinity_prob = flags.get_double("affinity-prob");
    const std::string& speeds = flags.get_string("speeds");
    std::size_t pos = 0;
    while (pos < speeds.size()) {
      std::size_t next = speeds.find(',', pos);
      if (next == std::string::npos) next = speeds.size();
      c.speed_choices.push_back(
          static_cast<int>(std::stol(speeds.substr(pos, next - pos))));
      pos = next + 1;
    }
    return generate_synthetic_workload(c);
  }
  if (gen == "facebook") {
    FacebookWorkloadConfig c;
    c.num_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
    c.arrival_rate = flags.get_double("lambda") > 0 ? flags.get_double("lambda")
                                                    : 0.0003;
    c.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    return generate_facebook_workload(c);
  }
  std::fprintf(stderr, "error: unknown --generator '%s' (synthetic|facebook)\n",
               gen.c_str());
  ok = false;
  return Workload{};
}

int run_generate(const Flags& flags) {
  bool ok = false;
  const Workload w = build_workload(flags, ok);
  if (!ok) return 1;
  const std::string& out = flags.get_string("workload-out");
  if (out.empty()) {
    std::printf("%s", workload_to_string(w).c_str());
    return 0;
  }
  if (!save_workload_file(w, out)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu jobs to %s\n", w.size(), out.c_str());
  return 0;
}

int run_inspect(const Flags& flags) {
  bool ok = false;
  const Workload w = build_workload(flags, ok);
  if (!ok) return 1;
  const auto s = w.summarize();
  std::printf("%s\n", w.to_string().c_str());
  std::printf("  mean map tasks/job:      %.2f\n", s.mean_map_tasks);
  std::printf("  mean reduce tasks/job:   %.2f\n", s.mean_reduce_tasks);
  std::printf("  mean map exec (s):       %.2f\n", s.mean_map_exec_seconds);
  std::printf("  mean reduce exec (s):    %.2f\n", s.mean_reduce_exec_seconds);
  std::printf("  mean inter-arrival (s):  %.2f\n", s.mean_interarrival_seconds);
  std::printf("  mean laxity (s):         %.2f\n", s.mean_laxity_seconds);
  std::printf("  fraction AR requests:    %.3f\n", s.fraction_future_start);
  std::printf("  offered utilization:     %.3f\n", s.offered_utilization);
  return 0;
}

int run_simulate(const Flags& flags) {
  bool ok = false;
  const Workload w = build_workload(flags, ok);
  if (!ok) return 1;

  sim::SimOptions options;
  options.faults.mtbf_s = flags.get_double("mtbf");
  options.faults.mttr_s = flags.get_double("mttr");
  options.faults.straggler_prob = flags.get_double("straggler-prob");
  options.faults.straggler_factor = flags.get_double("straggler-factor");
  options.faults.rack_mtbf_s = flags.get_double("rack-mtbf");
  options.faults.rack_mttr_s = flags.get_double("rack-mttr");
  options.faults.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  {
    const std::string err = options.faults.validate();
    if (!err.empty()) {
      std::fprintf(stderr, "error: fault config: %s\n", err.c_str());
      return 1;
    }
  }

  options.durability.journal_prefix = flags.get_string("journal");
  options.durability.snapshot_every =
      static_cast<std::uint64_t>(flags.get_int("snapshot-every"));
  options.durability.restore = flags.get_bool("restore");
  if (options.durability.restore && !options.durability.enabled()) {
    std::fprintf(stderr, "error: --restore requires --journal <prefix>\n");
    return 1;
  }

  const std::string& rm = flags.get_string("rm");
  sim::SimMetrics metrics;
  if (rm == "mrcp") {
    MrcpConfig config;
    config.solve.time_limit_s = flags.get_double("solver-budget-s");
    config.solve.num_threads = static_cast<int>(flags.get_int("solver-threads"));
    config.use_separation = !flags.get_bool("no-separation");
    config.defer_future_jobs = !flags.get_bool("no-deferral");
    config.fallback_enabled = flags.get_bool("fallback");
    config.max_solve_retries = static_cast<int>(flags.get_int("max-solve-retries"));
    config.solver_deadline_s = flags.get_double("solver-deadline");
    config.degrade_backpressure = flags.get_bool("degrade-backpressure");
    if (flags.get_bool("incremental")) {
      config.replan_scope = ReplanScope::kDirtyOnly;
    }
    config.reuse_model_cache = !flags.get_bool("no-model-cache");
    config.warm_start_previous = !flags.get_bool("no-warm-start");
    metrics = sim::simulate_mrcp(w, config, options);
  } else if (rm == "minedf" || rm == "edf") {
    baseline::MinEdfConfig config;
    if (rm == "edf") config.allocation = baseline::AllocationPolicy::kMaximal;
    metrics = sim::simulate_minedf(w, config, options);
  } else {
    std::fprintf(stderr, "error: unknown --rm '%s' (mrcp|minedf|edf)\n",
                 rm.c_str());
    return 1;
  }

  const sim::RunMetrics run =
      sim::summarize_run(metrics, flags.get_double("warmup"));
  std::printf("scheduler: %s over %zu jobs\n", rm.c_str(), w.size());
  std::printf("  O = %.6f s/job\n", run.O_seconds);
  std::printf("  T = %.1f s\n", run.T_seconds);
  std::printf("  N = %.0f late\n", run.N_late);
  std::printf("  P = %.2f %%\n", run.P_percent);
  if (options.faults.enabled()) {
    const sim::FailureMetrics& f = metrics.failure;
    std::printf("faults:\n");
    std::printf("  failures = %lld, repairs = %lld\n",
                static_cast<long long>(f.resource_failures),
                static_cast<long long>(f.resource_repairs));
    if (options.faults.rack_failures_enabled()) {
      std::printf("  rack bursts = %lld\n",
                  static_cast<long long>(f.rack_bursts));
    }
    std::printf("  tasks killed = %lld, wasted work = %.1f s\n",
                static_cast<long long>(f.tasks_killed), f.wasted_seconds());
    std::printf("  stragglers = %lld\n",
                static_cast<long long>(f.straggler_tasks));
    std::printf("  late jobs failure-affected = %lld\n",
                static_cast<long long>(f.jobs_late_failure_affected));
  }

  if (flags.get_bool("stats") && rm == "mrcp") {
    const DegradationCounts& d = metrics.degradation;
    std::printf("solver:\n");
    std::printf("  invocations = %llu, solve attempts = %llu\n",
                static_cast<unsigned long long>(metrics.rm_invocations),
                static_cast<unsigned long long>(d.solve_attempts));
    std::printf("  solve wall = %.3f s, max live tasks = %llu\n",
                d.solve_wall_seconds,
                static_cast<unsigned long long>(metrics.max_live_tasks));
    std::printf("degradation:\n");
    std::printf("  primary = %llu, retry = %llu, fallback = %llu\n",
                static_cast<unsigned long long>(d.primary),
                static_cast<unsigned long long>(d.retry),
                static_cast<unsigned long long>(d.fallback));
    std::printf("  parked = %llu, skipped = %llu, idle = %llu\n",
                static_cast<unsigned long long>(d.parked),
                static_cast<unsigned long long>(d.skipped),
                static_cast<unsigned long long>(d.idle));
    std::printf("  jobs backpressured = %llu\n",
                static_cast<unsigned long long>(d.jobs_backpressured));
  }

  const std::string& trace_out = flags.get_string("trace-out");
  if (!trace_out.empty()) {
    if (!sim::write_text_file(trace_out,
                              sim::execution_to_csv(metrics.executed, w))) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote executed schedule to %s\n", trace_out.c_str());
  }
  const std::string& downtime_out = flags.get_string("downtime-out");
  if (!downtime_out.empty()) {
    if (!sim::write_text_file(downtime_out,
                              sim::downtime_to_csv(metrics.downtime))) {
      std::fprintf(stderr, "error: cannot write %s\n", downtime_out.c_str());
      return 1;
    }
    std::printf("wrote downtime intervals to %s\n", downtime_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags("mrcp_sim — workload generation, inspection and simulation");
  flags.add_string("mode", "simulate", "generate | simulate | inspect")
      .add_string("workload", "", "load workload from this trace file")
      .add_string("workload-out", "", "generate: write workload here")
      .add_string("generator", "synthetic", "synthetic | facebook")
      .add_string("rm", "mrcp", "resource manager: mrcp | minedf | edf")
      .add_int("jobs", 100, "generated jobs")
      .add_double("lambda", 0.0, "arrival rate (0 = generator default)")
      .add_int("emax", 50, "synthetic: map exec upper bound (s)")
      .add_double("p", 0.5, "synthetic: AR probability")
      .add_int("smax", 50000, "synthetic: max start offset (s)")
      .add_double("dm", 5.0, "synthetic: deadline multiplier bound")
      .add_int("resources", 50, "synthetic: number of resources")
      .add_int("map-slots", 2, "synthetic: map slots per resource")
      .add_int("reduce-slots", 2, "synthetic: reduce slots per resource")
      .add_int("seed", 1, "generator seed")
      .add_double("warmup", 0.1, "warmup fraction for metrics")
      .add_double("solver-budget-s", 0.1, "mrcp: CP budget per invocation")
      .add_int("solver-threads", 1,
               "mrcp: CP solver worker threads (0 = all hardware threads)")
      .add_bool("no-separation", false, "mrcp: disable §V.D separation")
      .add_bool("no-deferral", false, "mrcp: disable §V.E deferral")
      .add_bool("fallback", true,
                "mrcp: EDF fallback when CP yields nothing (=false disables)")
      .add_int("max-solve-retries", 2,
               "mrcp: shrink/backoff retries before the fallback")
      .add_double("solver-deadline", 0.0,
                  "mrcp: wall-clock watchdog per invocation (s, 0 = auto)")
      .add_bool("degrade-backpressure", true,
                "mrcp: hold burst arrivals while running degraded")
      .add_bool("incremental", false,
                "mrcp: dirty-set incremental rescheduling (persistent model, "
                "frozen boundary — docs/incremental.md)")
      .add_bool("no-model-cache", false,
                "mrcp: incremental without the persistent model/root cache")
      .add_bool("no-warm-start", false,
                "mrcp: incremental without previous-plan warm starts")
      .add_bool("stats", false, "simulate: print solver/degradation stats")
      .add_double("mtbf", 0.0, "mean time between failures per resource (s, "
                               "0 = no failures)")
      .add_double("mttr", 60.0, "mean time to repair (s)")
      .add_double("straggler-prob", 0.0, "per-task straggler probability")
      .add_double("straggler-factor", 1.0, "straggler exec-time multiplier")
      .add_double("rack-mtbf", 0.0, "mean time between correlated rack "
                                    "bursts per rack (s, 0 = none)")
      .add_double("rack-mttr", 60.0,
                  "mean member repair after a rack burst (s)")
      .add_int("fault-seed", 1, "fault-injection seed")
      .add_string("speeds", "",
                  "synthetic: comma-separated machine speed choices "
                  "(permille of baseline; empty = homogeneous 1000)")
      .add_int("num-racks", 1, "synthetic: racks to stripe machines across")
      .add_double("locality-prob", 0.0,
                  "synthetic: per-task data-locality candidate-set "
                  "probability")
      .add_double("affinity-prob", 0.0,
                  "synthetic: per-job reduce anti-affinity probability")
      .add_string("trace-out", "", "simulate: write executed schedule CSV")
      .add_string("downtime-out", "", "simulate: write outage intervals CSV")
      .add_string("journal", "",
                  "simulate: write-ahead journal/snapshot file prefix "
                  "(docs/crash_recovery.md; empty = durability off)")
      .add_int("snapshot-every", 0,
               "simulate: snapshot full scheduler state every N journal "
               "records (0 = journal only)")
      .add_bool("restore", false,
                "simulate: resume from --journal state instead of starting "
                "fresh");
  if (!flags.parse(argc, argv)) return flags.ok() ? 0 : 1;

  const std::string& mode = flags.get_string("mode");
  if (mode == "generate") return run_generate(flags);
  if (mode == "inspect") return run_inspect(flags);
  if (mode == "simulate") return run_simulate(flags);
  std::fprintf(stderr, "error: unknown --mode '%s'\n", mode.c_str());
  return 1;
}
