#!/usr/bin/env bash
# Line/branch coverage report over src/ from a -DMRCP_COVERAGE=ON build.
#
# Usage: tools/coverage.sh [build-dir] [--threshold <line%>]
#
#   1. cmake -B build-cov -S . -DMRCP_COVERAGE=ON
#   2. cmake --build build-cov -j && (cd build-cov && ctest -j)
#   3. tools/coverage.sh build-cov
#
# Prefers gcovr (text summary + coverage.xml Cobertura artifact for CI).
# Falls back to raw gcov per-file summaries when gcovr is not installed
# (the summary then has no single total and the threshold is skipped).
#
# The threshold is ADVISORY: a shortfall prints a warning and exits 0.
# CI uploads the artifact either way; use --threshold-strict to make a
# shortfall fail (not enabled in CI — coverage gates on a moving tree
# cause more harm than signal; see docs/heterogeneous.md#coverage).
set -euo pipefail

build_dir="build-cov"
threshold="70"
strict=0
while [ $# -gt 0 ]; do
  case "$1" in
    --threshold) threshold="$2"; shift 2 ;;
    --threshold-strict) strict=1; shift ;;
    *) build_dir="$1"; shift ;;
  esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

if [ ! -d "$build_dir" ]; then
  echo "error: build dir '$build_dir' not found (configure with -DMRCP_COVERAGE=ON first)" >&2
  exit 1
fi
if ! find "$build_dir" -name '*.gcda' -print -quit | grep -q .; then
  echo "error: no .gcda files under '$build_dir' — run the tests first" >&2
  exit 1
fi

if command -v gcovr > /dev/null 2>&1; then
  gcovr --root "$repo_root" \
        --filter 'src/' \
        --exclude-throw-branches \
        --print-summary \
        --xml "$build_dir/coverage.xml" \
        --txt "$build_dir/coverage.txt" \
        "$build_dir"
  echo "wrote $build_dir/coverage.xml and $build_dir/coverage.txt"
  line_pct="$(sed -nE 's/^lines: ([0-9]+)\.[0-9]+%.*/\1/p' "$build_dir/coverage.txt" | head -1)"
  if [ -z "$line_pct" ]; then
    # gcovr's --txt is a table; take the TOTAL row instead.
    line_pct="$(awk '/^TOTAL/ { gsub(/%/, "", $4); print int($4) }' "$build_dir/coverage.txt")"
  fi
  if [ -n "$line_pct" ] && [ "$line_pct" -lt "$threshold" ]; then
    echo "warning: line coverage ${line_pct}% is below the advisory threshold ${threshold}%"
    [ "$strict" -eq 1 ] && exit 1
  fi
  exit 0
fi

echo "gcovr not found; falling back to raw gcov summaries (no total, no threshold)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
find "$build_dir" -name '*.gcda' | while read -r gcda; do
  (cd "$tmp" && gcov --no-output --stdout "$gcda" > /dev/null 2>&1) || true
done
# Per-object summaries: -n prints "File ... Lines executed:X% of N".
find "$build_dir" -name '*.gcda' -exec gcov -n {} + 2> /dev/null \
  | grep -A1 "^File '.*${repo_root}/src/" \
  | sed "s|${repo_root}/||" || true
