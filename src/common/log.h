// Minimal leveled logging to stderr.
//
// The resource-manager and solver code logs at kDebug/kTrace for
// diagnosing individual solves; benches run at the default kWarn so the
// result tables stay clean.
#pragma once

#include <cstdarg>
#include <string>

namespace mrcp {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging.
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define MRCP_LOG_TRACE(...) ::mrcp::log(::mrcp::LogLevel::kTrace, __VA_ARGS__)
#define MRCP_LOG_DEBUG(...) ::mrcp::log(::mrcp::LogLevel::kDebug, __VA_ARGS__)
#define MRCP_LOG_INFO(...) ::mrcp::log(::mrcp::LogLevel::kInfo, __VA_ARGS__)
#define MRCP_LOG_WARN(...) ::mrcp::log(::mrcp::LogLevel::kWarn, __VA_ARGS__)
#define MRCP_LOG_ERROR(...) ::mrcp::log(::mrcp::LogLevel::kError, __VA_ARGS__)

}  // namespace mrcp
