// Lightweight always-on invariant checking.
//
// These checks guard library invariants (schedule validity, domain
// consistency) and are kept enabled in Release builds: the cost is
// negligible next to CP search, and a silently-corrupt schedule would
// invalidate every experiment downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mrcp::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "MRCP_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace mrcp::detail

#define MRCP_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::mrcp::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define MRCP_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) ::mrcp::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// Debug-only check for hot paths (propagation loops).
#ifdef NDEBUG
#define MRCP_DCHECK(expr) ((void)0)
#else
#define MRCP_DCHECK(expr) MRCP_CHECK(expr)
#endif
