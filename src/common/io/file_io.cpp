#include "common/io/file_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace mrcp::io {

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  return out.good();
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = std::move(buffer).str();
  return !in.bad();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

bool truncate_file(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  const auto current = std::filesystem::file_size(path, ec);
  if (ec || current < size) return false;
  std::filesystem::resize_file(path, size, ec);
  return !ec;
}

}  // namespace mrcp::io
