// Checksummed record framing — the on-disk format of the durability
// layer (docs/crash_recovery.md).
//
// A framed stream is a sequence of records, each:
//
//   u32  payload length (little-endian)
//   u32  CRC32C of the payload
//   ...  payload bytes
//
// The reader is torn-write tolerant: a crash can leave a partial frame
// at the end of a file (short header, short payload, or a payload whose
// CRC does not match because only some of its bytes reached disk). Such
// a tail is reported as kTruncated/kCorrupt together with the byte
// offset of the last frame boundary — the caller truncates the file
// there and the stream is exactly the records that were durably written.
// Corruption *before* the tail (a bit flip inside an already-synced
// record) is also caught by the CRC; recovery then keeps the valid
// prefix and reports where trust ended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace mrcp::io {

enum class ReadStatus : std::uint8_t {
  kOk,         ///< a full record was read and its CRC matched
  kEof,        ///< clean end exactly at a frame boundary
  kTruncated,  ///< input ends inside a frame (torn tail)
  kCorrupt,    ///< complete frame whose CRC does not match (bit flip)
};

const char* read_status_name(ReadStatus status);

/// Wrap a payload in one frame (header + CRC + bytes).
std::string frame_record(std::string_view payload);

/// Sequential frame reader over an in-memory buffer.
class RecordReader {
 public:
  explicit RecordReader(std::string_view bytes) : bytes_(bytes) {}

  /// Read the next frame into `payload`. Returns kOk and advances on
  /// success; any other status leaves the reader parked at the last
  /// valid frame boundary (offset() is then the truncate-to point).
  ReadStatus next(std::string* payload);

  /// Byte offset of the next unread frame == end of the last valid one.
  std::size_t offset() const { return offset_; }
  /// Frames successfully returned so far (== record index of the next).
  std::size_t record_index() const { return record_index_; }
  /// Human-readable description after kTruncated/kCorrupt.
  const std::string& error() const { return error_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
  std::size_t record_index_ = 0;
  std::string error_;
};

/// Everything read_framed() recovered from a buffer: the valid record
/// prefix, how the stream ended, and where the valid bytes stop.
struct FramedData {
  std::vector<std::string> records;
  ReadStatus tail = ReadStatus::kEof;  ///< kEof == the whole buffer was valid
  ///< truncate-to offset (end of the last valid record)
  std::size_t valid_bytes = 0;
  std::string error;            ///< description when tail != kEof
};

/// Decode a whole framed buffer, truncating to the last valid record.
FramedData read_framed(std::string_view bytes);

/// Decode a whole framed file. `*opened` (if non-null) reports whether
/// the file could be read at all (a missing file yields an empty,
/// clean-tailed result with *opened == false).
FramedData read_framed_file(const std::string& path, bool* opened = nullptr);

/// Appends framed records to a file. Writes are flushed per record so a
/// crash loses at most the in-flight frame — which the reader then
/// truncates away (write-ahead semantics).
class FileRecordWriter {
 public:
  /// `truncate` starts a fresh stream; otherwise appends to an existing
  /// one (recovery reopens the journal this way after truncating the
  /// torn tail).
  bool open(const std::string& path, bool truncate);
  bool is_open() const { return out_.is_open(); }
  /// False on I/O error (disk full, closed stream).
  bool append(std::string_view payload);
  void close() { out_.close(); }

 private:
  std::ofstream out_;
};

}  // namespace mrcp::io
