// Whole-file read/write helpers — the sanctioned home for raw file I/O.
//
// Everything in src/ that touches the filesystem goes through these (or
// through record_io.h, which lives in the same directory); the
// raw-file-io lint rule (tools/mrcp_lint) enforces it. Centralizing the
// open/write/close dance keeps error handling and binary-mode behavior
// uniform and gives the crash-injection harness one seam to reason
// about.
#pragma once

#include <cstdint>
#include <string>

namespace mrcp::io {

/// Overwrite `path` with `content`. Returns false on any I/O error.
bool write_text_file(const std::string& path, const std::string& content);

/// Read all of `path` into `*out` (binary-exact). False if unreadable.
bool read_file(const std::string& path, std::string* out);

/// True if `path` exists and is a regular file.
bool file_exists(const std::string& path);

/// Shrink `path` to `size` bytes — recovery uses this to drop a torn
/// frame tail before reopening a journal for append. False on error or
/// if the file is already smaller.
bool truncate_file(const std::string& path, std::uint64_t size);

}  // namespace mrcp::io
