#include "common/io/codec.h"

#include <bit>
#include <cstring>

namespace mrcp::io {

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::bytes(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.append(v.data(), v.size());
}

const char* Decoder::take(std::size_t n) {
  if (!ok()) return nullptr;
  if (bytes_.size() - offset_ < n) {
    fail("input ends inside a " + std::to_string(n) + "-byte field");
    return nullptr;
  }
  const char* p = bytes_.data() + offset_;
  offset_ += n;
  return p;
}

std::uint8_t Decoder::u8() {
  const char* p = take(1);
  return p != nullptr ? static_cast<std::uint8_t>(*p) : 0;
}

std::uint32_t Decoder::u32() {
  const char* p = take(4);
  if (p == nullptr) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Decoder::u64() {
  const char* p = take(8);
  if (p == nullptr) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::string Decoder::bytes() {
  const std::uint32_t n = u32();
  // The length is untrusted: bounds-check it against what actually
  // remains before allocating anything.
  if (!ok()) return {};
  if (bytes_.size() - offset_ < n) {
    fail("byte-string length " + std::to_string(n) +
         " exceeds remaining input");
    return {};
  }
  const char* p = take(n);
  return p != nullptr ? std::string(p, n) : std::string{};
}

void Decoder::fail(std::string message) {
  if (!error_.empty()) return;  // keep the first violation's location
  error_ = std::move(message) + " at byte " + std::to_string(offset_);
}

}  // namespace mrcp::io
