// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum guarding every framed record the durability layer writes
// (journal entries, snapshots — see record_io.h). CRC32C rather than the
// zlib CRC32 because its error-detection properties for short records
// are as good, every storage system we model ourselves on (LevelDB/
// RocksDB WALs, HDFS checksums) standardized on it, and a future
// SSE4.2/ARMv8 hardware path drops in without a format change.
//
// Software implementation: slicing-by-four over 4 KiB tables built at
// static-init time. Plenty for journal bandwidth (the scheduler emits
// hundreds of bytes per event, not megabytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mrcp::io {

/// Extend a running CRC32C with `size` bytes. Pass the previous call's
/// return value to checksum data in chunks; start with crc = 0.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size);

/// CRC32C of a whole buffer.
inline std::uint32_t crc32c(std::string_view bytes) {
  return crc32c_extend(0, bytes.data(), bytes.size());
}

}  // namespace mrcp::io
