#include "common/io/crc32c.h"

#include <array>

namespace mrcp::io {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // tables[k][b]: CRC of byte b followed by k zero bytes — the classic
  // slicing-by-four layout (process 4 input bytes per iteration).
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = t[0][b];
      for (std::size_t k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][b] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = kTables.t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --size;
  }
  return ~crc;
}

}  // namespace mrcp::io
