#include "common/io/record_io.h"

#include <cstring>

#include "common/io/codec.h"
#include "common/io/crc32c.h"
#include "common/io/file_io.h"

namespace mrcp::io {

namespace {

constexpr std::size_t kHeaderBytes = 8;  // u32 length + u32 crc

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* read_status_name(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk:
      return "ok";
    case ReadStatus::kEof:
      return "eof";
    case ReadStatus::kTruncated:
      return "truncated";
    case ReadStatus::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

std::string frame_record(std::string_view payload) {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.u32(crc32c(payload));
  std::string frame = enc.take();
  frame.append(payload.data(), payload.size());
  return frame;
}

ReadStatus RecordReader::next(std::string* payload) {
  const std::size_t remaining = bytes_.size() - offset_;
  if (remaining == 0) return ReadStatus::kEof;
  if (remaining < kHeaderBytes) {
    error_ = "torn frame header at byte " + std::to_string(offset_) + " (" +
             std::to_string(remaining) + " of 8 header bytes)";
    return ReadStatus::kTruncated;
  }
  const char* base = bytes_.data() + offset_;
  const std::uint32_t length = load_u32(base);
  const std::uint32_t expected_crc = load_u32(base + 4);
  if (remaining - kHeaderBytes < length) {
    error_ = "torn frame payload at byte " + std::to_string(offset_) + " (" +
             std::to_string(remaining - kHeaderBytes) + " of " +
             std::to_string(length) + " payload bytes)";
    return ReadStatus::kTruncated;
  }
  const char* data = base + kHeaderBytes;
  const std::uint32_t actual_crc = crc32c_extend(0, data, length);
  if (actual_crc != expected_crc) {
    error_ = "CRC mismatch in frame at byte " + std::to_string(offset_) +
             " (record " + std::to_string(record_index_) + ")";
    return ReadStatus::kCorrupt;
  }
  payload->assign(data, length);
  offset_ += kHeaderBytes + length;
  ++record_index_;
  return ReadStatus::kOk;
}

FramedData read_framed(std::string_view bytes) {
  FramedData out;
  RecordReader reader(bytes);
  std::string payload;
  for (;;) {
    const ReadStatus status = reader.next(&payload);
    if (status == ReadStatus::kOk) {
      out.records.push_back(std::move(payload));
      payload.clear();
      continue;
    }
    out.tail = status;
    out.valid_bytes = reader.offset();
    out.error = reader.error();
    return out;
  }
}

FramedData read_framed_file(const std::string& path, bool* opened) {
  std::string bytes;
  const bool ok = read_file(path, &bytes);
  if (opened != nullptr) *opened = ok;
  if (!ok) return FramedData{};
  return read_framed(bytes);
}

bool FileRecordWriter::open(const std::string& path, bool truncate) {
  out_.close();
  out_.clear();
  const auto mode =
      std::ios::binary | (truncate ? std::ios::trunc : std::ios::app);
  out_.open(path, mode);
  return out_.is_open();
}

bool FileRecordWriter::append(std::string_view payload) {
  if (!out_.is_open()) return false;
  const std::string frame = frame_record(payload);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  return out_.good();
}

}  // namespace mrcp::io
