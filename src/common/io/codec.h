// Byte-level encode/decode primitives for the durability layer.
//
// Explicit little-endian fixed-width fields — no struct memcpy, no
// host-endianness leakage, no padding bytes — so a journal or snapshot
// written by one build is readable by any other. Higher layers
// (core/journal.h) compose these into versioned per-type codecs.
//
// Decoding is total: a Decoder never aborts on malformed input. Reads
// past the end (or a failed bounds check) latch an error with the byte
// offset of the first violation and return zero values from then on; the
// caller checks ok() once at the end. This is what lets corrupted or
// truncated-inside-a-record journals be *rejected* with a location
// instead of crashing the recovery path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"

namespace mrcp::io {

/// Append-only byte buffer with fixed-width little-endian writers.
class Encoder {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< IEEE-754 bit pattern, little-endian
  void boolean(bool v) { u8(v ? 1 : 0); }
  void ticks(Ticks t) { i64(t.count()); }
  /// Length-prefixed byte string (u32 length + raw bytes).
  void bytes(std::string_view v);

  const std::string& str() const { return bytes_; }
  std::string take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Sequential reader over an encoded buffer. See the header comment for
/// the error model.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  Ticks ticks() { return Ticks{i64()}; }
  std::string bytes();

  /// Latch an error at the current offset (for semantic checks layered
  /// on top of the raw reads, e.g. an unsupported version byte).
  void fail(std::string message);

  bool ok() const { return error_.empty(); }
  /// True when every byte was consumed and no error latched — the
  /// "decoded exactly this type" post-condition.
  bool done() const { return ok() && offset_ == bytes_.size(); }
  /// Empty while ok(); else "<message> at byte <offset>".
  const std::string& error() const { return error_; }
  std::size_t offset() const { return offset_; }

 private:
  const char* take(std::size_t n);

  std::string_view bytes_;
  std::size_t offset_ = 0;
  std::string error_;
};

}  // namespace mrcp::io
