// Core scalar types shared by every mrcp library.
//
// All simulated and scheduled time in this codebase is expressed in integer
// *ticks*. A tick is one millisecond: the Facebook-derived workload of the
// paper (Table 4) draws task execution times from LogNormal distributions in
// milliseconds, while the synthetic workload (Table 3) is specified in
// seconds; using ms ticks represents both exactly and keeps the CP engine's
// domains integral (the paper's CP Optimizer likewise works on discrete
// interval variables without enumerating time).
#pragma once

#include <cstdint>
#include <limits>

namespace mrcp {

/// Time in integer ticks (1 tick = 1 ms).
using Time = std::int64_t;

/// Number of ticks per second; used when converting Table 3 parameters
/// (given in seconds) into tick space.
inline constexpr Time kTicksPerSecond = 1000;

/// Sentinel for "no time" / unset.
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// Largest representable schedule horizon. Domains of CP start-time
/// variables are clamped to [0, kMaxTime].
inline constexpr Time kMaxTime = std::numeric_limits<Time>::max() / 4;

/// Convert seconds (double) to ticks, rounding to nearest with halves
/// away from zero (std::llround semantics, usable in constexpr context).
/// Negative inputs (slack/lateness deltas) round symmetrically: the old
/// `x + 0.5` truncation rounded -0.5 ticks up to 0 instead of to -1.
/// Results are clamped to [-kMaxTime, kMaxTime] so an out-of-range
/// double cannot overflow the Time domain.
constexpr Time seconds_to_ticks(double seconds) {
  const double scaled = seconds * static_cast<double>(kTicksPerSecond);
  if (scaled >= static_cast<double>(kMaxTime)) return kMaxTime;
  if (scaled <= -static_cast<double>(kMaxTime)) return -kMaxTime;
  return scaled >= 0.0 ? static_cast<Time>(scaled + 0.5)
                       : static_cast<Time>(scaled - 0.5);
}

/// Convert ticks to seconds.
constexpr double ticks_to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Identifier types. 32-bit indices are ample (workloads are <10^6 jobs).
using JobId = std::int32_t;
using TaskId = std::int32_t;      ///< Index of a task *within its job*.
using ResourceId = std::int32_t;  ///< Index of a resource in the cluster.

inline constexpr JobId kNoJob = -1;
inline constexpr ResourceId kNoResource = -1;

}  // namespace mrcp
