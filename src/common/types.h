// Core scalar types shared by every mrcp library.
//
// All simulated and scheduled time in this codebase is expressed in integer
// *ticks*. A tick is one millisecond: the Facebook-derived workload of the
// paper (Table 4) draws task execution times from LogNormal distributions in
// milliseconds, while the synthetic workload (Table 3) is specified in
// seconds; using ms ticks represents both exactly and keeps the CP engine's
// domains integral (the paper's CP Optimizer likewise works on discrete
// interval variables without enumerating time).
//
// `Ticks` is a strong type, not an integer alias. The PR-6 class of bug —
// a raw count in the wrong unit flowing silently into tick arithmetic —
// is a compile error now: ticks add and subtract with ticks, scale by a
// dimensionless integer, and divide by ticks to yield a dimensionless
// ratio, but ticks*ticks does not exist (the unit ticks^2 is always a
// mistake) and seconds cross the boundary only through seconds_to_ticks /
// ticks_to_seconds. Construction from a raw count is explicit
// (`Time{250}`), so every unit entry point is visible to review and to
// the mrcp-lint raw-time-literal rule (docs/static_analysis.md).
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>

namespace mrcp {

/// Time in integer ticks (1 tick = 1 ms). Wrapper over int64 with
/// dimension-checked arithmetic; see the header comment.
class Ticks {
 public:
  constexpr Ticks() = default;
  constexpr explicit Ticks(std::int64_t count) : count_(count) {}

  /// Raw tick count. The escape hatch into integer space — use it for
  /// hashing/serialization, not to smuggle arithmetic past the type.
  constexpr std::int64_t count() const { return count_; }

  constexpr Ticks& operator+=(Ticks o) {
    count_ += o.count_;
    return *this;
  }
  constexpr Ticks& operator-=(Ticks o) {
    count_ -= o.count_;
    return *this;
  }

  friend constexpr Ticks operator+(Ticks a, Ticks b) {
    return Ticks{a.count_ + b.count_};
  }
  friend constexpr Ticks operator-(Ticks a, Ticks b) {
    return Ticks{a.count_ - b.count_};
  }
  constexpr Ticks operator-() const { return Ticks{-count_}; }

  // Scaling by a dimensionless integer. Ticks*Ticks is deliberately not
  // provided; neither is any double overload (go through ticks_to_seconds).
  friend constexpr Ticks operator*(Ticks a, std::int64_t k) {
    return Ticks{a.count_ * k};
  }
  friend constexpr Ticks operator*(std::int64_t k, Ticks a) {
    return Ticks{k * a.count_};
  }
  friend constexpr Ticks operator/(Ticks a, std::int64_t k) {
    return Ticks{a.count_ / k};
  }
  /// ticks / ticks is a dimensionless ratio (truncating).
  friend constexpr std::int64_t operator/(Ticks a, Ticks b) {
    return a.count_ / b.count_;
  }
  friend constexpr Ticks operator%(Ticks a, Ticks b) {
    return Ticks{a.count_ % b.count_};
  }

  friend constexpr bool operator==(Ticks a, Ticks b) = default;
  friend constexpr auto operator<=>(Ticks a, Ticks b) = default;

  /// Streams the raw count (what an int64 Time printed before).
  friend std::ostream& operator<<(std::ostream& os, Ticks t) {
    return os << t.count_;
  }

 private:
  std::int64_t count_ = 0;
};

using Time = Ticks;

/// Number of ticks per second; used when converting Table 3 parameters
/// (given in seconds) into tick space.
inline constexpr std::int64_t kTicksPerSecond = 1000;

/// Sentinel for "no time" / unset.
inline constexpr Time kNoTime{std::numeric_limits<std::int64_t>::min()};

/// Largest representable schedule horizon. Domains of CP start-time
/// variables are clamped to [0, kMaxTime].
inline constexpr Time kMaxTime{std::numeric_limits<std::int64_t>::max() / 4};

/// Zero ticks; the natural origin/accumulator seed (`Time{}` works too,
/// a named constant reads better in comparisons).
inline constexpr Time kTimeZero{0};

/// Convert seconds (double) to ticks, rounding to nearest with halves
/// away from zero (std::llround semantics, usable in constexpr context).
/// Negative inputs (slack/lateness deltas) round symmetrically: the old
/// `x + 0.5` truncation rounded -0.5 ticks up to 0 instead of to -1.
/// Results are clamped to [-kMaxTime, kMaxTime] so an out-of-range
/// double cannot overflow the Time domain.
constexpr Time seconds_to_ticks(double seconds) {
  const double scaled = seconds * static_cast<double>(kTicksPerSecond);
  if (scaled >= static_cast<double>(kMaxTime.count())) return kMaxTime;
  if (scaled <= -static_cast<double>(kMaxTime.count())) return -kMaxTime;
  return scaled >= 0.0 ? Time{static_cast<std::int64_t>(scaled + 0.5)}
                       : Time{static_cast<std::int64_t>(scaled - 0.5)};
}

/// Convert a whole number of seconds to ticks, exactly.
constexpr Time seconds_to_ticks(std::int64_t seconds) {
  return Time{seconds * kTicksPerSecond};
}

/// Saturating tick addition: the result is clamped to [-kMaxTime,
/// kMaxTime] instead of wrapping. User-configurable delays (backpressure
/// holds, park-retry folds) are added to open-ended simulation times;
/// with extreme configured values plain `+` is signed overflow (UB).
/// Inputs beyond the clamp range (e.g. a kNoTime sentinel is a caller
/// bug, but int64 extremes in general) are clamped first, so the inner
/// sum cannot overflow: |a| + |b| <= 2 * kMaxTime < int64 max.
constexpr Ticks saturating_add(Ticks a, Ticks b) {
  const auto clamp = [](std::int64_t v) {
    if (v > kMaxTime.count()) return kMaxTime.count();
    if (v < -kMaxTime.count()) return -kMaxTime.count();
    return v;
  };
  return Ticks{clamp(clamp(a.count()) + clamp(b.count()))};
}

/// Saturating scaling of ticks by a dimensionless integer, clamped to
/// [-kMaxTime, kMaxTime] (see saturating_add). Overflow is detected on
/// unsigned magnitudes before multiplying, so no intermediate signed
/// overflow is possible — int64 min included.
constexpr Ticks saturating_mul(Ticks a, std::int64_t k) {
  if (a.count() == 0 || k == 0) return Ticks{0};
  const bool negative = (a.count() < 0) != (k < 0);
  const auto magnitude = [](std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    return v < 0 ? std::uint64_t{0} - u : u;
  };
  const std::uint64_t limit = static_cast<std::uint64_t>(kMaxTime.count());
  const std::uint64_t ma = magnitude(a.count());
  const std::uint64_t mk = magnitude(k);
  if (ma > limit / mk) return negative ? -kMaxTime : kMaxTime;
  const auto product = static_cast<std::int64_t>(ma * mk);
  return Ticks{negative ? -product : product};
}

/// Ceiling division of a non-negative tick quantity by a positive
/// dimensionless count (e.g. total work spread over k slots). Lives here
/// because the epsilon term needs the raw count — call sites stay free
/// of unit-escaping arithmetic.
constexpr Ticks ceil_div(Ticks t, std::int64_t k) {
  return Ticks{(t.count() + k - 1) / k};
}

/// Baseline machine speed: a resource with speed 1000 permille runs tasks
/// at exactly their base duration.
inline constexpr int kBaseSpeedPermille = 1000;

/// Scale a base task duration by a machine speed factor expressed in
/// permille of the baseline (500 = half speed, 2000 = double speed).
/// Rounds up, so a scaled duration never rounds down to zero and a slower
/// machine never finishes early. speed == 1000 is an exact identity, which
/// keeps homogeneous clusters bit-identical to the unscaled model. The
/// multiply is split as base = q*speed + r to stay clear of int64 overflow
/// for any duration below kMaxTime; out-of-range results saturate there.
constexpr Ticks scale_duration(Ticks base, int speed_permille) {
  if (speed_permille == kBaseSpeedPermille) return base;
  const std::int64_t b = base.count();
  const std::int64_t s = speed_permille;
  const std::int64_t q = b / s;
  const std::int64_t r = b % s;
  if (q > kMaxTime.count() / kBaseSpeedPermille) return kMaxTime;
  const std::int64_t scaled =
      q * kBaseSpeedPermille + (r * kBaseSpeedPermille + s - 1) / s;
  if (scaled > kMaxTime.count()) return kMaxTime;
  return Ticks{scaled < 1 && b > 0 ? 1 : scaled};
}

/// Convert ticks to seconds.
constexpr double ticks_to_seconds(Time t) {
  return static_cast<double>(t.count()) / static_cast<double>(kTicksPerSecond);
}

/// Identifier types. 32-bit indices are ample (workloads are <10^6 jobs).
using JobId = std::int32_t;
using TaskId = std::int32_t;      ///< Index of a task *within its job*.
using ResourceId = std::int32_t;  ///< Index of a resource in the cluster.

inline constexpr JobId kNoJob = -1;
inline constexpr ResourceId kNoResource = -1;

}  // namespace mrcp
