// Named distribution objects matching the notation of the paper's Table 3.
//
// The workload generators are written against these small value types so
// the experiment configuration can say `DU{1, 100}` exactly as the paper
// does, and so tests can verify the sampling machinery independently of
// the generators.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace mrcp {

/// Discrete uniform DU[lo, hi] (inclusive), as used for k_mp, k_rd, me.
struct DiscreteUniform {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  std::int64_t sample(RandomStream& rng) const { return rng.uniform_int(lo, hi); }
  double mean() const { return 0.5 * static_cast<double>(lo + hi); }
};

/// Continuous uniform U[lo, hi], as used for the deadline multiplier.
struct Uniform {
  double lo = 0.0;
  double hi = 0.0;

  double sample(RandomStream& rng) const { return rng.uniform_real(lo, hi); }
  double mean() const { return 0.5 * (lo + hi); }
};

/// Bernoulli(p), as used to decide whether s_j > v_j.
struct Bernoulli {
  double p = 0.0;

  bool sample(RandomStream& rng) const { return rng.bernoulli(p); }
};

/// LogNormal(mu, sigma^2) parameterized exactly as the paper reports the
/// Facebook fit: mu is the mean and sigma2 the variance of the underlying
/// normal (paper §VI.B.1: LN(9.9511, 1.6764) for maps, LN(12.375, 1.6262)
/// for reduces, in milliseconds).
struct LogNormal {
  double mu = 0.0;
  double sigma2 = 1.0;

  double sample(RandomStream& rng) const;
  /// E[X] = exp(mu + sigma^2/2).
  double mean() const;
};

/// Exponential with the given rate (Poisson inter-arrival times).
struct Exponential {
  double rate = 1.0;

  double sample(RandomStream& rng) const { return rng.exponential(rate); }
  double mean() const { return 1.0 / rate; }
};

}  // namespace mrcp
