// Reproducible random number streams.
//
// Every stochastic component (arrival process, task-size sampler, LNS
// neighbourhood picker, ...) owns its own RandomStream, derived from a
// master seed and a stream id via SplitMix64. Replication r of an
// experiment uses master seed f(base_seed, r), so replications are
// independent and each is bit-reproducible regardless of how many samples
// other components consume — a standard DES variance-reduction hygiene
// measure.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>

namespace mrcp {

/// SplitMix64 step; used to decorrelate (seed, stream) pairs before
/// feeding them into the mt19937_64 engine.
std::uint64_t splitmix64(std::uint64_t x);

/// Derive the master seed for replication `rep` of an experiment.
std::uint64_t replication_seed(std::uint64_t base_seed, std::uint64_t rep);

/// A self-contained random stream. Copyable (copies fork the state).
class RandomStream {
 public:
  RandomStream() : RandomStream(0, 0) {}
  RandomStream(std::uint64_t master_seed, std::uint64_t stream_id);

  /// Underlying engine, for use with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0,1].
  bool bernoulli(double p);

  /// Exponential variate with given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// LogNormal variate: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  /// Serialize the engine state (mt19937_64's textual form) so a
  /// snapshot can freeze a stream mid-sequence and resume it exactly.
  std::string save_state() const;
  /// Restore a state captured by save_state(). False on malformed input
  /// (the stream is left unchanged in that case).
  bool load_state(const std::string& state);

 private:
  std::mt19937_64 engine_;  // seeded in every ctor (lint-ok: no-unseeded-rng)
};

}  // namespace mrcp
