#include "common/stats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace mrcp {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

namespace {
// 97.5th percentile of Student's t (two-sided 95%) for df = 1..30.
constexpr std::array<double, 30> kT975 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
// 95th percentile (two-sided 90%).
constexpr std::array<double, 30> kT95 = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
// 99.5th percentile (two-sided 99%).
constexpr std::array<double, 30> kT995 = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
}  // namespace

double t_critical(double confidence, std::size_t df) {
  MRCP_CHECK(df >= 1);
  const std::array<double, 30>* table = nullptr;
  double z = 1.960;
  if (confidence >= 0.985) {
    table = &kT995;
    z = 2.576;
  } else if (confidence >= 0.925) {
    table = &kT975;
    z = 1.960;
  } else {
    table = &kT95;
    z = 1.645;
  }
  if (df <= 30) return (*table)[df - 1];
  return z;
}

double ConfidenceInterval::relative() const {
  if (mean == 0.0) return 0.0;
  return half_width / std::abs(mean);
}

ConfidenceInterval confidence_interval(const RunningStat& s, double confidence) {
  ConfidenceInterval ci;
  ci.mean = s.mean();
  ci.n = s.count();
  if (s.count() < 2) {
    ci.half_width = 0.0;
    return ci;
  }
  const double se = s.stddev() / std::sqrt(static_cast<double>(s.count()));
  ci.half_width = t_critical(confidence, s.count() - 1) * se;
  return ci;
}

ConfidenceInterval confidence_interval(const std::vector<double>& values,
                                       double confidence) {
  RunningStat s;
  for (double v : values) s.add(v);
  return confidence_interval(s, confidence);
}

std::string format_ci(const ConfidenceInterval& ci, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, ci.mean, precision,
                ci.half_width);
  return buf;
}

}  // namespace mrcp
