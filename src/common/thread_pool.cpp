#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mrcp {

namespace {
/// Worker index within its owning pool; -1 on non-worker threads.
thread_local int tl_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (unfinished_ != 0) idle_cv_.wait(mu_);
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  {
    MutexLock lock(mu_);
    batch_ = &batch;
  }
  work_cv_.notify_all();
  // Wait until every call has returned AND no worker still holds a
  // pointer to the stack-owned batch (active_workers == 0) — only then is
  // it safe to let `batch` go out of scope.
  {
    MutexLock lock(mu_);
    while (!(batch.done == batch.n && batch.active_workers == 0)) {
      idle_cv_.wait(mu_);
    }
    batch_ = nullptr;
  }
}

int ThreadPool::current_worker_id() { return tl_worker_id; }

void ThreadPool::worker_loop(int worker_id) {
  tl_worker_id = worker_id;
  for (;;) {
    std::function<void()> task;
    Batch* batch = nullptr;
    {
      MutexLock lock(mu_);
      while (!(stop_ || !queue_.empty() ||
               (batch_ != nullptr &&
                batch_->next.load(std::memory_order_relaxed) < batch_->n))) {
        work_cv_.wait(mu_);
      }
      if (batch_ != nullptr &&
          batch_->next.load(std::memory_order_relaxed) < batch_->n) {
        batch = batch_;
        ++batch->active_workers;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stop_ set and nothing left to run
      }
    }
    if (batch != nullptr) {
      std::size_t ran = 0;
      for (;;) {
        const std::size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n) break;
        (*batch->fn)(i);
        ++ran;
      }
      MutexLock lock(mu_);
      batch->done += ran;
      --batch->active_workers;
      if (batch->done == batch->n && batch->active_workers == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    task();
    {
      MutexLock lock(mu_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

int ThreadPool::resolve_num_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace mrcp
