#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mrcp {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

int ThreadPool::resolve_num_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace mrcp
