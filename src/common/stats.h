// Online statistics and confidence intervals for simulation output analysis.
//
// The paper reports each metric as a mean over independent replications
// with a 95% confidence interval (§VI.A: T within ±1%, O within ±5-7%).
// RunningStat accumulates per-replication values with Welford's algorithm;
// ConfidenceInterval turns them into mean ± half-width using Student's t.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mrcp {

/// Numerically stable accumulator for mean/variance/min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 if fewer than 2 samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.95) and degrees of freedom. Exact table for df <= 30, normal
/// approximation beyond.
double t_critical(double confidence, std::size_t df);

/// A mean with a confidence-interval half width.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;

  /// Half width as a fraction of the mean (0 when mean == 0).
  double relative() const;
};

/// Build a CI at `confidence` (default 95%) from replication values.
ConfidenceInterval confidence_interval(const RunningStat& s,
                                       double confidence = 0.95);

/// Convenience: CI directly from a vector of per-replication values.
ConfidenceInterval confidence_interval(const std::vector<double>& values,
                                       double confidence = 0.95);

/// Format "mean ± hw" with the given precision.
std::string format_ci(const ConfidenceInterval& ci, int precision = 3);

}  // namespace mrcp
