// Minimal command-line flag parser used by the bench and example binaries.
//
// Every experiment binary registers its knobs (--jobs, --reps, --lambda,
// ...) with defaults matching the scaled-down reproduction, prints a
// --help listing, and accepts `--flag=value` or `--flag value`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mrcp {

class Flags {
 public:
  explicit Flags(std::string program_description);

  /// Register a flag with a default. Returns *this for chaining.
  Flags& add_int(const std::string& name, std::int64_t def, const std::string& help);
  Flags& add_double(const std::string& name, double def, const std::string& help);
  Flags& add_bool(const std::string& name, bool def, const std::string& help);
  Flags& add_string(const std::string& name, const std::string& def,
                    const std::string& help);

  /// Parse argv. On `--help` prints usage and returns false (caller should
  /// exit 0). On an unknown flag or malformed value prints an error and
  /// returns false (caller should exit 1); `ok()` distinguishes the cases.
  bool parse(int argc, char** argv);
  bool ok() const { return ok_; }

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Usage text (also printed by --help).
  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_val = 0;
    double double_val = 0.0;
    bool bool_val = false;
    std::string string_val;
    std::string default_repr;
  };

  const Flag& find(const std::string& name, Kind kind) const;
  bool set_from_string(Flag& f, const std::string& value, const std::string& name);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool ok_ = true;
};

}  // namespace mrcp
