// A small fixed-size worker pool for CPU-bound fan-out.
//
// The CP solver uses one to run portfolio members and LNS neighbourhoods
// concurrently (docs/cp_engine.md); the experiment runner's per-thread
// replication scheme predates it and stays as is. Tasks are plain
// closures; submit() enqueues, wait_idle() is the barrier the caller
// uses between deterministic phases. The pool is reusable across
// submit/wait rounds and joins its workers on destruction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mrcp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Resolve a user-facing thread-count knob: values >= 1 are taken
  /// literally, anything else means one thread per hardware thread.
  static int resolve_num_threads(int requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t unfinished_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
};

}  // namespace mrcp
