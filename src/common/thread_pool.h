// A small fixed-size worker pool for CPU-bound fan-out.
//
// The CP solver uses one to run portfolio members and LNS neighbourhoods
// concurrently (docs/cp_engine.md); the experiment runner's per-thread
// replication scheme predates it and stays as is. Two submission styles:
//
//  * submit() enqueues a plain closure; wait_idle() is the barrier the
//    caller uses between deterministic phases.
//  * run_indexed(n, fn) runs fn(0..n-1) as ONE batch: workers pull
//    indices from a shared atomic counter instead of the mutex-guarded
//    queue, so a fan-out of n small tasks costs one notify_all and n
//    relaxed fetch_adds rather than n lock/notify/wake cycles — the
//    difference matters when the tasks are a few hundred microseconds
//    each (the CP portfolio's shape, docs/perf.md). Blocks until the
//    batch completes.
//
// The pool is reusable across rounds and joins its workers on
// destruction. current_worker_id() lets batch tasks index per-thread
// scratch (e.g. the solver's cached search objects) without a mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace mrcp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw.
  void submit(std::function<void()> task) MRCP_EXCLUDES(mu_);

  /// Block until every task submitted so far has finished executing.
  void wait_idle() MRCP_EXCLUDES(mu_);

  /// Run fn(0), fn(1), ..., fn(n-1) across the workers as a single
  /// batched submission and block until all calls have returned. Calls
  /// are claimed dynamically (an atomic counter), so completion order is
  /// unspecified — callers needing determinism must write results into
  /// per-index slots and fold after the barrier, exactly as with
  /// submit()+wait_idle(). fn must not throw. Only one batch may be
  /// active at a time (the blocking call enforces this for a single
  /// caller thread; concurrent callers must serialize externally).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn)
      MRCP_EXCLUDES(mu_);

  /// Index of the calling pool worker in [0, num_threads()), or -1 when
  /// called from a thread that is not a worker of any ThreadPool. Workers
  /// of different pools reuse ids; callers pair it with the pool they
  /// submitted to.
  static int current_worker_id();

  /// Resolve a user-facing thread-count knob: values >= 1 are taken
  /// literally, anything else means one thread per hardware thread.
  static int resolve_num_threads(int requested);

 private:
  /// State of one run_indexed() call, stack-owned by the caller. Workers
  /// claim indices via `next`; `done`/`active_workers` let the caller
  /// wait until no worker can still touch this object. Both are guarded
  /// by the owning pool's mu_ — inexpressible as a GUARDED_BY here
  /// (nested struct, capability lives in the enclosing pool), so the
  /// discipline is enforced at the ThreadPool::batch_ access sites.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;            ///< completed calls (guarded by mu_)
    int active_workers = 0;          ///< workers inside the batch (guarded by mu_)
  };

  void worker_loop(int worker_id) MRCP_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ MRCP_GUARDED_BY(mu_);
  /// Active run_indexed batch. The pointer itself and the pointee's
  /// done/active_workers fields are all protected by mu_ (`next` is
  /// atomic and claimed lock-free).
  Batch* batch_ MRCP_GUARDED_BY(mu_) = nullptr;
  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::size_t unfinished_ MRCP_GUARDED_BY(mu_) = 0;  ///< queued + running tasks
  bool stop_ MRCP_GUARDED_BY(mu_) = false;
};

}  // namespace mrcp
