// Clang Thread Safety Analysis annotations.
//
// These macros attach lock-discipline contracts to types, members and
// functions: which mutex guards a field, which lock a function expects
// to hold, which calls acquire or release a capability. Clang's
// -Wthread-safety pass (enabled by the MRCP_THREAD_SAFETY CMake option
// and enforced with -Werror in CI) checks the contracts at compile
// time, so a forgotten lock or a call made with the wrong mutex held is
// a build error, not a latent race for TSan to hopefully catch at
// runtime. Under GCC (or with the analysis off) every macro expands to
// nothing — zero code, zero ABI impact.
//
// The macro set mirrors the attribute names in the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// ones this codebase uses are defined. Annotate with the MRCP_ names,
// never the raw attributes, so non-clang builds stay clean.
//
// See src/common/mutex.h for the annotated Mutex/MutexLock/CondVar
// types the annotations attach to (std::mutex itself carries no
// capability attributes under libstdc++), and docs/static_analysis.md
// for how this layer fits next to lint.sh, clang-tidy and mrcp-lint.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define MRCP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MRCP_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define MRCP_CAPABILITY(x) MRCP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped types).
#define MRCP_SCOPED_CAPABILITY MRCP_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define MRCP_GUARDED_BY(x) MRCP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define MRCP_PT_GUARDED_BY(x) MRCP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while already holding the capabilities.
#define MRCP_REQUIRES(...) \
  MRCP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the capabilities
/// (guards against self-deadlock on non-reentrant mutexes).
#define MRCP_EXCLUDES(...) MRCP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define MRCP_ACQUIRE(...) \
  MRCP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability before returning.
#define MRCP_RELEASE(...) \
  MRCP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define MRCP_TRY_ACQUIRE(b, ...) \
  MRCP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Escape hatch: the function's locking is correct for reasons the
/// analysis cannot see. Use sparingly and justify with a comment.
#define MRCP_NO_THREAD_SAFETY_ANALYSIS \
  MRCP_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime assertion that the calling thread holds `x`; teaches the
/// analysis the capability is held from here on.
#define MRCP_ASSERT_CAPABILITY(x) \
  MRCP_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define MRCP_RETURN_CAPABILITY(x) MRCP_THREAD_ANNOTATION(lock_returned(x))
