#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/io/file_io.h"

namespace mrcp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MRCP_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MRCP_CHECK_MSG(row.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::int64_t v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  // Routed through the sanctioned raw-I/O home (mrcp-lint raw-file-io).
  return io::write_text_file(path, to_csv());
}

}  // namespace mrcp
