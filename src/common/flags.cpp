#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace mrcp {

Flags::Flags(std::string program_description)
    : description_(std::move(program_description)) {
  add_bool("help", false, "Print this help message and exit");
}

Flags& Flags::add_int(const std::string& name, std::int64_t def,
                      const std::string& help) {
  Flag f;
  f.kind = Kind::kInt;
  f.help = help;
  f.int_val = def;
  f.default_repr = std::to_string(def);
  MRCP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_double(const std::string& name, double def,
                         const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_val = def;
  std::ostringstream os;
  os << def;
  f.default_repr = os.str();
  MRCP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_bool(const std::string& name, bool def, const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_val = def;
  f.default_repr = def ? "true" : "false";
  MRCP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

Flags& Flags::add_string(const std::string& name, const std::string& def,
                         const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_val = def;
  f.default_repr = def.empty() ? "\"\"" : def;
  MRCP_CHECK_MSG(flags_.emplace(name, std::move(f)).second, "duplicate flag");
  order_.push_back(name);
  return *this;
}

bool Flags::set_from_string(Flag& f, const std::string& value,
                            const std::string& name) {
  try {
    switch (f.kind) {
      case Kind::kInt:
        f.int_val = std::stoll(value);
        return true;
      case Kind::kDouble:
        f.double_val = std::stod(value);
        return true;
      case Kind::kBool:
        if (value == "true" || value == "1" || value == "yes") {
          f.bool_val = true;
          return true;
        }
        if (value == "false" || value == "0" || value == "no") {
          f.bool_val = false;
          return true;
        }
        break;
      case Kind::kString:
        f.string_val = value;
        return true;
    }
  } catch (const std::exception&) {
    // fall through to error message
  }
  std::fprintf(stderr, "error: invalid value '%s' for flag --%s\n", value.c_str(),
               name.c_str());
  return false;
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n",
                   arg.c_str());
      ok_ = false;
      return false;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      ok_ = false;
      return false;
    }
    Flag& f = it->second;
    if (!have_value) {
      if (f.kind == Kind::kBool) {
        f.bool_val = true;  // bare --flag means true
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: flag --%s expects a value\n", name.c_str());
          ok_ = false;
          return false;
        }
        value = argv[++i];
        have_value = true;
      }
    }
    if (have_value && !set_from_string(f, value, name)) {
      ok_ = false;
      return false;
    }
  }
  if (get_bool("help")) {
    std::printf("%s", usage().c_str());
    return false;  // ok_ stays true: exit 0
  }
  return true;
}

const Flags::Flag& Flags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  MRCP_CHECK_MSG(it != flags_.end(), "flag not registered");
  MRCP_CHECK_MSG(it->second.kind == kind, "flag type mismatch");
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return find(name, Kind::kInt).int_val;
}
double Flags::get_double(const std::string& name) const {
  return find(name, Kind::kDouble).double_val;
}
bool Flags::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).bool_val;
}
const std::string& Flags::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_val;
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Kind::kInt: os << " <int>"; break;
      case Kind::kDouble: os << " <float>"; break;
      case Kind::kBool: os << " <bool>"; break;
      case Kind::kString: os << " <string>"; break;
    }
    os << "  (default: " << f.default_repr << ")\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace mrcp
