// Annotated synchronization primitives.
//
// Thin wrappers over the std primitives that carry the Clang Thread
// Safety capability attributes (src/common/annotations.h). libstdc++'s
// std::mutex has no such attributes, so code locking it directly is
// invisible to -Wthread-safety; routing every lock through mrcp::Mutex
// and mrcp::MutexLock makes the whole lock discipline checkable at
// compile time. Off clang the attributes vanish and these are
// zero-overhead forwarders.
//
// CondVar wraps std::condition_variable_any so it can block on the
// annotated Mutex directly (wait() unlocks/relocks the capability the
// caller already holds — annotated MRCP_REQUIRES). Prefer the explicit
//     MutexLock lock(mu_);
//     while (!condition) cv_.wait(mu_);
// loop over a predicate lambda: the analysis checks the condition
// expression against the held lock set in place, whereas a lambda body
// is analyzed as a separate unlocked function and would need an escape
// hatch.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace mrcp {

/// Standard exclusive mutex, annotated as a thread-safety capability.
class MRCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MRCP_ACQUIRE() { mu_.lock(); }
  void unlock() MRCP_RELEASE() { mu_.unlock(); }
  bool try_lock() MRCP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (std::lock_guard shape, annotated).
class MRCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MRCP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MRCP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that blocks on an annotated Mutex. wait() must be
/// called with the mutex held (it unlocks while blocked and relocks
/// before returning, like std::condition_variable::wait).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MRCP_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mrcp
