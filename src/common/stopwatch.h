// Wall-clock stopwatch used to measure the scheduling overhead metric O.
//
// The paper measures O with Java's System.nanoTime(); we use
// steady_clock, which has the same monotonic semantics.
#pragma once

#include <chrono>

namespace mrcp {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time in seconds.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Elapsed time in nanoseconds.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// An absolute point in wall-clock time, fixed at construction. Unlike a
/// Stopwatch budget (elapsed vs. a per-phase allowance), a Deadline is
/// shared: passing the same Deadline through several phases makes them
/// jointly respect one cutoff. Used as the degraded-mode hard watchdog
/// (docs/degraded_mode.md).
class Deadline {
 public:
  explicit Deadline(double seconds_from_now)
      : at_(std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds_from_now))) {}

  bool expired() const { return std::chrono::steady_clock::now() >= at_; }

  /// Seconds until expiry; negative once expired.
  double remaining_seconds() const {
    return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point at_;
};

}  // namespace mrcp
