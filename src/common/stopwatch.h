// Wall-clock stopwatch used to measure the scheduling overhead metric O.
//
// The paper measures O with Java's System.nanoTime(); we use
// steady_clock, which has the same monotonic semantics.
#pragma once

#include <chrono>

namespace mrcp {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time in seconds.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Elapsed time in nanoseconds.
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mrcp
