#include "common/distributions.h"

#include <cmath>

namespace mrcp {

double LogNormal::sample(RandomStream& rng) const {
  return rng.lognormal(mu, std::sqrt(sigma2));
}

double LogNormal::mean() const { return std::exp(mu + 0.5 * sigma2); }

}  // namespace mrcp
