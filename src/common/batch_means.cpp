#include "common/batch_means.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace mrcp {

double lag1_autocorrelation(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = series[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (series[i + 1] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

BatchMeansResult batch_means_ci(std::span<const double> series,
                                std::size_t num_batches, double confidence) {
  MRCP_CHECK(num_batches >= 2);
  BatchMeansResult result;

  const std::size_t n = series.size();
  if (n == 0) return result;
  if (n < num_batches) {
    // Too little data to batch: report the plain mean, zero width.
    RunningStat s;
    for (double x : series) s.add(x);
    result.mean = s.mean();
    result.batches = 1;
    result.batch_size = n;
    return result;
  }

  const std::size_t batch_size = n / num_batches;
  const std::size_t discarded = n - batch_size * num_batches;
  std::vector<double> batch_means;
  batch_means.reserve(num_batches);
  RunningStat batch_stat;
  for (std::size_t b = 0; b < num_batches; ++b) {
    double sum = 0.0;
    const std::size_t begin = discarded + b * batch_size;
    for (std::size_t i = 0; i < batch_size; ++i) {
      sum += series[begin + i];
    }
    const double bm = sum / static_cast<double>(batch_size);
    batch_means.push_back(bm);
    batch_stat.add(bm);
  }

  const ConfidenceInterval ci = confidence_interval(batch_stat, confidence);
  result.mean = ci.mean;
  result.half_width = ci.half_width;
  result.batches = num_batches;
  result.batch_size = batch_size;
  result.discarded = discarded;
  result.batch_lag1_autocorr = lag1_autocorrelation(batch_means);
  return result;
}

}  // namespace mrcp
