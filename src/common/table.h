// Column-aligned result tables.
//
// Each bench binary prints the series the paper plots (one row per swept
// parameter value) both as an aligned console table and, optionally, as
// CSV for external plotting.
#pragma once

#include <string>
#include <vector>

namespace mrcp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row. Must match the header count.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string cell(double v, int precision = 3);
  static std::string cell(std::int64_t v);

  /// Render with aligned columns (pads with spaces, separates with 2 spaces).
  std::string to_string() const;

  /// Render as CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Write CSV to `path`; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrcp
