// Batch-means output analysis for steady-state simulation.
//
// The paper (§VI.A) runs each experiment "long enough to ensure that the
// system operates at steady state" and repeats it until the confidence
// interval for T is tight. Across-replication CIs (stats.h) are the
// primary method in this repo; batch means is the standard complementary
// technique for a *single long run*: consecutive per-job observations
// are autocorrelated (jobs share congestion periods), so the naive
// iid-sample CI is too narrow. Grouping the series into contiguous
// batches and treating the batch averages as the samples restores
// (approximate) independence when batches are long relative to the
// correlation length.
#pragma once

#include <cstddef>
#include <span>

namespace mrcp {

struct BatchMeansResult {
  double mean = 0.0;
  double half_width = 0.0;      ///< at the requested confidence
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  std::size_t discarded = 0;    ///< leading observations not fitting batches
  /// Lag-1 autocorrelation of the batch means — a diagnostic: values
  /// near 0 suggest the batches are long enough; large positive values
  /// mean the half width is still optimistic.
  double batch_lag1_autocorr = 0.0;
};

/// Batch-means CI over `series` (observations in arrival order, warmup
/// already removed by the caller). Uses `num_batches` equal batches,
/// discarding the first (n mod num_batches) observations. Requires
/// num_batches >= 2 and series.size() >= num_batches; returns a
/// zero-width result around the plain mean otherwise.
BatchMeansResult batch_means_ci(std::span<const double> series,
                                std::size_t num_batches = 20,
                                double confidence = 0.95);

/// Lag-1 autocorrelation of a series (utility, also used in tests).
double lag1_autocorrelation(std::span<const double> series);

}  // namespace mrcp
