#include "common/rng.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mrcp {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t replication_seed(std::uint64_t base_seed, std::uint64_t rep) {
  return splitmix64(splitmix64(base_seed) ^ (0xA5A5A5A5A5A5A5A5ULL + rep));
}

RandomStream::RandomStream(std::uint64_t master_seed, std::uint64_t stream_id)
    : engine_(splitmix64(splitmix64(master_seed ^ 0xD1B54A32D192ED03ULL) +
                         stream_id)) {}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  MRCP_CHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RandomStream::uniform_real(double lo, double hi) {
  MRCP_CHECK(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool RandomStream::bernoulli(double p) {
  MRCP_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double RandomStream::exponential(double rate) {
  MRCP_CHECK(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

double RandomStream::lognormal(double mu, double sigma) {
  MRCP_CHECK(sigma >= 0.0);
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

std::string RandomStream::save_state() const {
  std::ostringstream out;
  out << engine_;
  return std::move(out).str();
}

bool RandomStream::load_state(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;  // overwritten below (lint-ok: no-unseeded-rng)
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  return true;
}

}  // namespace mrcp
