// The output of one MRCP-RM matchmaking-and-scheduling invocation: a
// complete mapping of every live task to a resource and start time.
//
// Tasks are identified by (job id, flat task index) where flat index
// enumerates the job's map tasks first, then its reduce tasks — matching
// Job::task().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

struct PlannedTask {
  JobId job = kNoJob;
  int task_index = -1;  ///< flat index within the job (maps, then reduces)
  TaskType type = TaskType::kMap;
  ResourceId resource = kNoResource;
  Time start = kNoTime;
  Time end = kNoTime;
  bool started = false;  ///< start <= invocation time: pinned, not re-planned

  Time duration() const { return end - start; }
};

struct Plan {
  /// Monotonically increasing per-RM; the simulator uses it to discard
  /// start events that belong to superseded plans.
  std::uint64_t epoch = 0;
  Time planned_at;
  std::vector<PlannedTask> tasks;
  /// Live (non-completed) tasks deliberately absent from `tasks`: the
  /// unstarted work of parked jobs that no currently-up resource can
  /// host (docs/degraded_mode.md). When nonzero the driver must cancel
  /// any stale events it still holds for absent tasks; the RM retries
  /// the parked work via next_deferred_release() and on every repair.
  std::size_t parked_tasks = 0;

  std::string to_string() const;
};

/// Validate a plan against a cluster and the jobs it schedules: capacity
/// sweeps per (resource, phase), map-before-reduce per job, earliest
/// start times for tasks that have not started, matching durations.
/// `jobs` maps job id -> Job for every job appearing in the plan.
/// Returns empty string when the plan is consistent.
std::string validate_plan(const Plan& plan, const Cluster& cluster,
                          const std::vector<const Job*>& jobs_by_id);

}  // namespace mrcp
