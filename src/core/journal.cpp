#include "core/journal.h"

#include <limits>
#include <utility>

#include "common/io/file_io.h"

namespace mrcp {

namespace {

// All composite codecs share one format version; bump it (and branch in
// the decoders) when a field list changes.
// v2: tasks carry placement constraints (candidates, racks, affinity).
constexpr std::uint8_t kFormatVersion = 2;

void check_version(io::Decoder& dec, const char* what) {
  const std::uint8_t version = dec.u8();
  if (dec.ok() && version != kFormatVersion) {
    dec.fail(std::string("unsupported ") + what + " version " +
             std::to_string(version));
  }
}

int decode_int32(io::Decoder& dec, const char* what) {
  const std::int64_t v = dec.i64();
  if (dec.ok() && (v < std::numeric_limits<std::int32_t>::min() ||
                   v > std::numeric_limits<std::int32_t>::max())) {
    dec.fail(std::string(what) + " out of int32 range");
    return 0;
  }
  return static_cast<int>(v);
}

TaskType decode_task_type(io::Decoder& dec) {
  const std::uint8_t raw = dec.u8();
  if (dec.ok() && raw > static_cast<std::uint8_t>(TaskType::kReduce)) {
    dec.fail("invalid task type " + std::to_string(raw));
    return TaskType::kMap;
  }
  return static_cast<TaskType>(raw);
}

}  // namespace

void encode_ticks(io::Encoder& enc, Ticks t) { enc.ticks(t); }

Ticks decode_ticks(io::Decoder& dec) { return dec.ticks(); }

void encode_task(io::Encoder& enc, const Task& task) {
  enc.u8(static_cast<std::uint8_t>(task.type));
  enc.ticks(task.exec_time);
  enc.i64(task.res_req);
  enc.i64(task.net_demand);
  enc.u32(static_cast<std::uint32_t>(task.candidates.size()));
  for (const ResourceId r : task.candidates) enc.i64(r);
  enc.u32(static_cast<std::uint32_t>(task.racks.size()));
  for (const int rack : task.racks) enc.i64(rack);
  enc.i64(task.affinity_group);
}

Task decode_task(io::Decoder& dec) {
  Task task;
  task.type = decode_task_type(dec);
  task.exec_time = dec.ticks();
  task.res_req = decode_int32(dec, "task res_req");
  task.net_demand = decode_int32(dec, "task net_demand");
  const std::uint32_t num_candidates = dec.u32();
  for (std::uint32_t i = 0; i < num_candidates && dec.ok(); ++i) {
    task.candidates.push_back(decode_int32(dec, "task candidate"));
  }
  const std::uint32_t num_racks = dec.u32();
  for (std::uint32_t i = 0; i < num_racks && dec.ok(); ++i) {
    task.racks.push_back(decode_int32(dec, "task rack"));
  }
  task.affinity_group = decode_int32(dec, "task affinity group");
  return task;
}

void encode_job(io::Encoder& enc, const Job& job) {
  enc.u8(kFormatVersion);
  enc.i64(job.id);
  enc.ticks(job.arrival_time);
  enc.ticks(job.earliest_start);
  enc.ticks(job.deadline);
  enc.u32(static_cast<std::uint32_t>(job.map_tasks.size()));
  for (const Task& task : job.map_tasks) encode_task(enc, task);
  enc.u32(static_cast<std::uint32_t>(job.reduce_tasks.size()));
  for (const Task& task : job.reduce_tasks) encode_task(enc, task);
  enc.u32(static_cast<std::uint32_t>(job.precedences.size()));
  for (const auto& [before, after] : job.precedences) {
    enc.i64(before);
    enc.i64(after);
  }
}

Job decode_job(io::Decoder& dec) {
  Job job;
  check_version(dec, "job");
  job.id = decode_int32(dec, "job id");
  job.arrival_time = dec.ticks();
  job.earliest_start = dec.ticks();
  job.deadline = dec.ticks();
  const std::uint32_t num_maps = dec.u32();
  for (std::uint32_t i = 0; i < num_maps && dec.ok(); ++i) {
    job.map_tasks.push_back(decode_task(dec));
  }
  const std::uint32_t num_reduces = dec.u32();
  for (std::uint32_t i = 0; i < num_reduces && dec.ok(); ++i) {
    job.reduce_tasks.push_back(decode_task(dec));
  }
  const std::uint32_t num_precedences = dec.u32();
  for (std::uint32_t i = 0; i < num_precedences && dec.ok(); ++i) {
    const int before = decode_int32(dec, "precedence");
    const int after = decode_int32(dec, "precedence");
    job.precedences.emplace_back(before, after);
  }
  return job;
}

void encode_planned_task(io::Encoder& enc, const PlannedTask& task) {
  enc.i64(task.job);
  enc.i64(task.task_index);
  enc.u8(static_cast<std::uint8_t>(task.type));
  enc.i64(task.resource);
  enc.ticks(task.start);
  enc.ticks(task.end);
  enc.boolean(task.started);
}

PlannedTask decode_planned_task(io::Decoder& dec) {
  PlannedTask task;
  task.job = decode_int32(dec, "planned-task job");
  task.task_index = decode_int32(dec, "planned-task index");
  task.type = decode_task_type(dec);
  task.resource = decode_int32(dec, "planned-task resource");
  task.start = dec.ticks();
  task.end = dec.ticks();
  task.started = dec.boolean();
  return task;
}

void encode_plan(io::Encoder& enc, const Plan& plan) {
  enc.u8(kFormatVersion);
  enc.u64(plan.epoch);
  enc.ticks(plan.planned_at);
  enc.u32(static_cast<std::uint32_t>(plan.tasks.size()));
  for (const PlannedTask& task : plan.tasks) encode_planned_task(enc, task);
  enc.u64(plan.parked_tasks);
}

Plan decode_plan(io::Decoder& dec) {
  Plan plan;
  check_version(dec, "plan");
  plan.epoch = dec.u64();
  plan.planned_at = dec.ticks();
  const std::uint32_t num_tasks = dec.u32();
  for (std::uint32_t i = 0; i < num_tasks && dec.ok(); ++i) {
    plan.tasks.push_back(decode_planned_task(dec));
  }
  plan.parked_tasks = static_cast<std::size_t>(dec.u64());
  return plan;
}

void encode_mrcp_stats(io::Encoder& enc, const MrcpStats& stats) {
  enc.u8(kFormatVersion);
  enc.u64(stats.invocations);
  enc.u64(stats.jobs_submitted);
  enc.u64(stats.jobs_completed);
  enc.u64(stats.jobs_completed_late);
  enc.f64(stats.total_sched_seconds);
  enc.i64(stats.solver_decisions);
  enc.i64(stats.solver_fails);
  enc.u64(stats.max_live_tasks);
  enc.u64(stats.resource_down_events);
  enc.u64(stats.resource_up_events);
  enc.u64(stats.tasks_reset_by_failure);
  enc.u64(stats.solve_attempts);
  enc.u64(stats.fallback_plans);
  enc.u64(stats.jobs_backpressured);
  enc.u64(stats.jobs_parked);
  enc.f64(stats.solve_wall_seconds);
  enc.u64(stats.model_cache_hits);
  enc.u64(stats.model_cache_misses);
  enc.u64(stats.warm_starts_used);
  enc.u64(stats.dirty_promotions);
}

MrcpStats decode_mrcp_stats(io::Decoder& dec) {
  MrcpStats stats;
  check_version(dec, "stats");
  stats.invocations = dec.u64();
  stats.jobs_submitted = dec.u64();
  stats.jobs_completed = dec.u64();
  stats.jobs_completed_late = dec.u64();
  stats.total_sched_seconds = dec.f64();
  stats.solver_decisions = dec.i64();
  stats.solver_fails = dec.i64();
  stats.max_live_tasks = dec.u64();
  stats.resource_down_events = dec.u64();
  stats.resource_up_events = dec.u64();
  stats.tasks_reset_by_failure = dec.u64();
  stats.solve_attempts = dec.u64();
  stats.fallback_plans = dec.u64();
  stats.jobs_backpressured = dec.u64();
  stats.jobs_parked = dec.u64();
  stats.solve_wall_seconds = dec.f64();
  stats.model_cache_hits = dec.u64();
  stats.model_cache_misses = dec.u64();
  stats.warm_starts_used = dec.u64();
  stats.dirty_promotions = dec.u64();
  return stats;
}

void encode_invocation_record(io::Encoder& enc, const InvocationRecord& rec) {
  enc.u8(kFormatVersion);
  enc.u64(rec.epoch);
  enc.ticks(rec.sim_time);
  enc.i64(rec.attempts);
  enc.u8(static_cast<std::uint8_t>(rec.last_status));
  enc.u8(static_cast<std::uint8_t>(rec.outcome));
  enc.f64(rec.solve_wall_seconds);
  enc.u64(rec.live_tasks);
  enc.u64(rec.parked_jobs);
  enc.u64(rec.dirty_jobs);
  enc.u64(rec.frozen_tasks);
  enc.boolean(rec.model_cache_hit);
}

InvocationRecord decode_invocation_record(io::Decoder& dec) {
  InvocationRecord rec;
  check_version(dec, "invocation record");
  rec.epoch = dec.u64();
  rec.sim_time = dec.ticks();
  rec.attempts = decode_int32(dec, "invocation attempts");
  const std::uint8_t status = dec.u8();
  if (dec.ok() &&
      status > static_cast<std::uint8_t>(cp::SolveStatus::kInfeasible)) {
    dec.fail("invalid solve status " + std::to_string(status));
  }
  rec.last_status = static_cast<cp::SolveStatus>(status);
  const std::uint8_t outcome = dec.u8();
  if (dec.ok() &&
      outcome > static_cast<std::uint8_t>(InvocationOutcome::kIdle)) {
    dec.fail("invalid invocation outcome " + std::to_string(outcome));
  }
  rec.outcome = static_cast<InvocationOutcome>(outcome);
  rec.solve_wall_seconds = dec.f64();
  rec.live_tasks = static_cast<std::size_t>(dec.u64());
  rec.parked_jobs = static_cast<std::size_t>(dec.u64());
  rec.dirty_jobs = static_cast<std::size_t>(dec.u64());
  rec.frozen_tasks = static_cast<std::size_t>(dec.u64());
  rec.model_cache_hit = dec.boolean();
  return rec;
}

void encode_ledger(io::Encoder& enc, const DegradationLedger& ledger) {
  enc.u8(kFormatVersion);
  enc.u32(static_cast<std::uint32_t>(ledger.records().size()));
  for (const InvocationRecord& rec : ledger.records()) {
    encode_invocation_record(enc, rec);
  }
}

DegradationLedger decode_ledger(io::Decoder& dec) {
  // Rebuilt by replaying record(), which regenerates the aggregate
  // counters exactly (same doubles added in the same order).
  DegradationLedger ledger;
  check_version(dec, "ledger");
  const std::uint32_t count = dec.u32();
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    ledger.record(decode_invocation_record(dec));
  }
  return ledger;
}

// ---------------------------------------------------------------------------
// Journal events.
// ---------------------------------------------------------------------------

const char* journal_event_type_name(JournalEventType type) {
  switch (type) {
    case JournalEventType::kSubmit:
      return "submit";
    case JournalEventType::kRelease:
      return "release";
    case JournalEventType::kCompletion:
      return "completion";
    case JournalEventType::kResourceDown:
      return "resource-down";
    case JournalEventType::kResourceUp:
      return "resource-up";
    case JournalEventType::kPlanPublished:
      return "plan-published";
    case JournalEventType::kParkRetry:
      return "park-retry";
  }
  return "unknown";
}

namespace {

io::Encoder event_header(JournalEventType type) {
  io::Encoder enc;
  enc.u8(static_cast<std::uint8_t>(type));
  enc.u8(kFormatVersion);
  return enc;
}

}  // namespace

std::string encode_submit_event(const Job& job, Time now) {
  io::Encoder enc = event_header(JournalEventType::kSubmit);
  enc.ticks(now);
  encode_job(enc, job);
  return enc.take();
}

std::string encode_release_event(JobId id, Time now) {
  io::Encoder enc = event_header(JournalEventType::kRelease);
  enc.ticks(now);
  enc.i64(id);
  return enc.take();
}

std::string encode_completion_event(JobId id, Time completed_at) {
  io::Encoder enc = event_header(JournalEventType::kCompletion);
  enc.ticks(completed_at);
  enc.i64(id);
  return enc.take();
}

std::string encode_resource_down_event(ResourceId resource, Time now) {
  io::Encoder enc = event_header(JournalEventType::kResourceDown);
  enc.ticks(now);
  enc.i64(resource);
  return enc.take();
}

std::string encode_resource_up_event(ResourceId resource, Time now) {
  io::Encoder enc = event_header(JournalEventType::kResourceUp);
  enc.ticks(now);
  enc.i64(resource);
  return enc.take();
}

std::string encode_plan_event(const Plan& plan) {
  io::Encoder enc = event_header(JournalEventType::kPlanPublished);
  enc.ticks(plan.planned_at);
  encode_plan(enc, plan);
  return enc.take();
}

std::string encode_park_retry_event(Time retry_at,
                                    const std::set<JobId>& parked) {
  io::Encoder enc = event_header(JournalEventType::kParkRetry);
  enc.ticks(retry_at);
  enc.u32(static_cast<std::uint32_t>(parked.size()));
  for (const JobId id : parked) enc.i64(id);
  return enc.take();
}

bool decode_journal_event(std::string_view payload, JournalEvent* out,
                          std::string* error) {
  io::Decoder dec(payload);
  const std::uint8_t raw_type = dec.u8();
  if (dec.ok() &&
      (raw_type < static_cast<std::uint8_t>(JournalEventType::kSubmit) ||
       raw_type > static_cast<std::uint8_t>(JournalEventType::kParkRetry))) {
    dec.fail("unknown journal event type " + std::to_string(raw_type));
  }
  check_version(dec, "journal event");
  JournalEvent event;
  if (dec.ok()) {
    event.type = static_cast<JournalEventType>(raw_type);
    event.time = dec.ticks();
    switch (event.type) {
      case JournalEventType::kSubmit:
        event.job = decode_job(dec);
        break;
      case JournalEventType::kRelease:
      case JournalEventType::kCompletion:
        event.job_id = decode_int32(dec, "event job id");
        break;
      case JournalEventType::kResourceDown:
      case JournalEventType::kResourceUp:
        event.resource = decode_int32(dec, "event resource");
        break;
      case JournalEventType::kPlanPublished:
        event.plan = decode_plan(dec);
        break;
      case JournalEventType::kParkRetry: {
        const std::uint32_t count = dec.u32();
        for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
          event.parked.push_back(decode_int32(dec, "parked job id"));
        }
        break;
      }
    }
  }
  if (!dec.ok()) {
    if (error != nullptr) *error = dec.error();
    return false;
  }
  if (!dec.done()) {
    if (error != nullptr) {
      *error = "trailing bytes after journal event at byte " +
               std::to_string(dec.offset());
    }
    return false;
  }
  *out = std::move(event);
  return true;
}

// ---------------------------------------------------------------------------
// Snapshot records.
// ---------------------------------------------------------------------------

std::string encode_snapshot_record(const SnapshotRecord& snapshot) {
  io::Encoder enc;
  enc.u8(kFormatVersion);
  enc.u64(snapshot.journal_cursor);
  enc.bytes(snapshot.state);
  return enc.take();
}

bool decode_snapshot_record(std::string_view payload, SnapshotRecord* out,
                            std::string* error) {
  io::Decoder dec(payload);
  check_version(dec, "snapshot");
  SnapshotRecord snapshot;
  snapshot.journal_cursor = dec.u64();
  snapshot.state = dec.bytes();
  if (!dec.done()) {
    if (error != nullptr) {
      *error = dec.ok() ? "trailing bytes after snapshot record" : dec.error();
    }
    return false;
  }
  *out = std::move(snapshot);
  return true;
}

std::optional<SnapshotRecord> choose_snapshot(
    const std::vector<std::string>& payloads, std::uint64_t cursor_limit) {
  std::optional<SnapshotRecord> best;
  for (const std::string& payload : payloads) {
    SnapshotRecord snapshot;
    if (!decode_snapshot_record(payload, &snapshot, nullptr)) continue;
    if (snapshot.journal_cursor > cursor_limit) continue;
    // Snapshots are appended in capture order, so the last qualifying
    // record is the newest restorable state.
    best = std::move(snapshot);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Journal.
// ---------------------------------------------------------------------------

bool Journal::open(const std::string& path, std::string* error) {
  if (!writer_.open(path, /*truncate=*/true)) {
    if (error != nullptr) *error = "cannot open journal for writing: " + path;
    return false;
  }
  return true;
}

bool Journal::open_resume(const std::string& path, std::uint64_t valid_bytes,
                          std::vector<std::string> expected,
                          std::uint64_t base_records, std::string* error) {
  if (io::file_exists(path) && !io::truncate_file(path, valid_bytes)) {
    if (error != nullptr) {
      *error = "cannot truncate journal to " + std::to_string(valid_bytes) +
               " bytes: " + path;
    }
    return false;
  }
  if (!writer_.open(path, /*truncate=*/false)) {
    if (error != nullptr) *error = "cannot reopen journal for append: " + path;
    return false;
  }
  expected_ = std::move(expected);
  verify_pos_ = 0;
  base_records_ = base_records;
  appended_ = 0;
  return true;
}

bool Journal::append(std::string_view payload) {
  if (!ok()) return false;
  if (crash_after_ != 0 && records_appended() >= crash_after_) {
    // Injected crash: the record is dropped as if the process died
    // before this write. Reported as success — a dying process gets no
    // error either; the driver notices crashed() and stops.
    crashed_ = true;
    return true;
  }
  if (verify_pos_ < expected_.size()) {
    // Resume verification: this record already exists on disk; the
    // re-executed run must reproduce it byte for byte.
    const std::string& want = expected_[verify_pos_];
    if (payload != want) {
      error_ = "resume divergence at journal record " +
               std::to_string(records_appended()) + ": re-emitted " +
               std::to_string(payload.size()) + " bytes, journal holds " +
               std::to_string(want.size());
      return false;
    }
    ++verify_pos_;
    ++appended_;
    return true;
  }
  if (!writer_.append(payload)) {
    error_ = "journal append failed (I/O error)";
    return false;
  }
  ++appended_;
  return true;
}

}  // namespace mrcp
