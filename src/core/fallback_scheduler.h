// Deterministic EDF list scheduler over the CP model — the final rung of
// the degraded-mode escalation ladder (docs/degraded_mode.md).
//
// When the CP solve's hard watchdog expires before any descent completes,
// the resource manager still owes the simulator a complete plan. This
// scheduler produces one greedily: tasks are placed one at a time in EDF
// job order (maps before reduces, then index order — the same preference
// the CP portfolio's EDF/FIFO member uses), each on the (earliest start,
// lowest index) resource its flat-timeline Profile admits. It respects
// pinned/running assignments, map->reduce barriers, user precedence
// edges, per-phase cumulative capacities, and network-link capacities —
// i.e. it emits schedules that satisfy every Model constraint, just
// without any optimization of the late-job count.
//
// Runtime is one earliest_feasible query per (task, resource) pair — no
// search, no backtracking, no wall-clock dependence — so the result is a
// pure function of the model and the scheduler can never time out.
#pragma once

#include "cp/model.h"
#include "cp/solution.h"

namespace mrcp {

/// Greedy EDF-ordered list schedule for `model`. For a model that passes
/// Model::validate() the result is always valid (a complete,
/// constraint-satisfying schedule, evaluated like any CP solution).
/// Returns an invalid solution only when some non-pinned task fits no
/// resource at all — a model validate() would have rejected.
cp::Solution fallback_schedule(const cp::Model& model);

}  // namespace mrcp
