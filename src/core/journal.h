// Write-ahead event journal and snapshot codecs — the durability layer's
// schema (docs/crash_recovery.md).
//
// The journal is an append-only framed stream (common/io/record_io.h) of
// every scheduler-visible event: job submissions, deferral releases,
// completions, resource failures/repairs, every published plan, and
// park-retry wakeups. Alongside it, a snapshot file holds periodic full
// captures of the world state (resource manager + driver + fault
// injector), each tagged with its journal cursor — the number of journal
// records that existed when it was taken.
//
// Recovery = pick the newest snapshot whose cursor is covered by the
// journal's valid prefix, restore it, and re-run the deterministic
// scheduler from there. The journal suffix past the cursor is not
// replayed into effect — the solver re-derives it — but every record the
// resumed run emits is byte-compared against the on-disk suffix before
// new appends go live. A resumed run that finishes with a journal file
// byte-identical to the uninterrupted run's has therefore proved its
// plan stream identical too (tests/sim/crash_recovery_test.cpp).
//
// Every composite codec starts with a format-version byte; decoders are
// total (common/io/codec.h) and reject unknown versions, truncation and
// bit flips with a byte offset instead of aborting.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/io/codec.h"
#include "common/io/record_io.h"
#include "common/types.h"
#include "core/degradation.h"
#include "core/mrcp_rm.h"
#include "core/plan.h"
#include "mapreduce/job.h"

namespace mrcp {

// ---------------------------------------------------------------------------
// Per-type codecs. Encoders append to an io::Encoder; decoders read from
// an io::Decoder and latch any violation there (check dec.ok() / done()).
// ---------------------------------------------------------------------------

void encode_ticks(io::Encoder& enc, Ticks t);
Ticks decode_ticks(io::Decoder& dec);

void encode_task(io::Encoder& enc, const Task& task);
Task decode_task(io::Decoder& dec);

void encode_job(io::Encoder& enc, const Job& job);
Job decode_job(io::Decoder& dec);

void encode_planned_task(io::Encoder& enc, const PlannedTask& task);
PlannedTask decode_planned_task(io::Decoder& dec);

void encode_plan(io::Encoder& enc, const Plan& plan);
Plan decode_plan(io::Decoder& dec);

void encode_mrcp_stats(io::Encoder& enc, const MrcpStats& stats);
MrcpStats decode_mrcp_stats(io::Decoder& dec);

void encode_invocation_record(io::Encoder& enc, const InvocationRecord& rec);
InvocationRecord decode_invocation_record(io::Decoder& dec);

void encode_ledger(io::Encoder& enc, const DegradationLedger& ledger);
DegradationLedger decode_ledger(io::Decoder& dec);

// ---------------------------------------------------------------------------
// Journal events.
// ---------------------------------------------------------------------------

enum class JournalEventType : std::uint8_t {
  kSubmit = 1,        ///< job arrived at the RM
  kRelease = 2,       ///< deferred/backpressured job released into the model
  kCompletion = 3,    ///< job fully completed (swept by the RM)
  kResourceDown = 4,  ///< resource failed
  kResourceUp = 5,    ///< resource repaired
  kPlanPublished = 6, ///< full plan published by reschedule()
  kParkRetry = 7,     ///< park-retry wakeup armed (retry time + parked set)
};

const char* journal_event_type_name(JournalEventType type);

/// Decoded view of one journal record; only the fields of its type are
/// meaningful.
struct JournalEvent {
  JournalEventType type = JournalEventType::kSubmit;
  Time time;                   ///< event time (all types)
  Job job;                     ///< kSubmit
  JobId job_id = kNoJob;       ///< kRelease / kCompletion
  ResourceId resource = kNoResource;  ///< kResourceDown / kResourceUp
  Plan plan;                   ///< kPlanPublished
  std::vector<JobId> parked;   ///< kParkRetry
};

std::string encode_submit_event(const Job& job, Time now);
std::string encode_release_event(JobId id, Time now);
std::string encode_completion_event(JobId id, Time completed_at);
std::string encode_resource_down_event(ResourceId resource, Time now);
std::string encode_resource_up_event(ResourceId resource, Time now);
std::string encode_plan_event(const Plan& plan);
std::string encode_park_retry_event(Time retry_at,
                                    const std::set<JobId>& parked);

/// Decode one journal record payload. False (with `*error` set, including
/// the byte offset) on truncation, bit flips, unknown types or versions.
bool decode_journal_event(std::string_view payload, JournalEvent* out,
                          std::string* error);

// ---------------------------------------------------------------------------
// Snapshot records.
// ---------------------------------------------------------------------------

/// One snapshot: an opaque world-state blob plus the journal cursor at
/// capture time. Snapshots are appended to their own framed file; the
/// torn-tail rules apply there too, so a crash mid-snapshot simply loses
/// the last record and recovery falls back to an earlier one.
struct SnapshotRecord {
  std::uint64_t journal_cursor = 0;  ///< journal records existing at capture
  std::string state;                 ///< encoded world state (sim driver)
};

std::string encode_snapshot_record(const SnapshotRecord& snapshot);
bool decode_snapshot_record(std::string_view payload, SnapshotRecord* out,
                            std::string* error);

/// Pick the newest decodable snapshot whose cursor is <= `cursor_limit`
/// (the journal's valid record count) — a snapshot past the journal's
/// valid prefix cannot be verified and is skipped. nullopt when none
/// qualifies; recovery then restarts from scratch (cold restore).
std::optional<SnapshotRecord> choose_snapshot(
    const std::vector<std::string>& payloads, std::uint64_t cursor_limit);

// ---------------------------------------------------------------------------
// The write-ahead journal.
// ---------------------------------------------------------------------------

/// Append-only WAL with a resume-time verification mode.
///
/// Fresh runs open() and append() one framed record per event. A resumed
/// run open_resume()s instead: the file is physically truncated to its
/// valid prefix and the records past the chosen snapshot's cursor become
/// an *expected* queue — each append() is byte-compared against it (and
/// not rewritten; the bytes are already on disk) until the queue drains,
/// after which appends go live. A mismatch latches an error and fails
/// the append: the resumed run diverged from the original, which the
/// crash-injection harness treats as fatal.
class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Start a fresh journal at `path`, truncating any existing file.
  bool open(const std::string& path, std::string* error);

  /// Resume at `path`: truncate the file to `valid_bytes` (dropping a
  /// torn tail), arm verification against `expected` (the valid records
  /// after the snapshot's cursor `base_records`), and reopen for append.
  bool open_resume(const std::string& path, std::uint64_t valid_bytes,
                   std::vector<std::string> expected,
                   std::uint64_t base_records, std::string* error);

  /// Append one event record (or verify it while resuming). False on a
  /// verification mismatch or I/O error — see error().
  bool append(std::string_view payload);

  /// Total records in the journal's history, counting both the resumed
  /// base and appends since — the snapshot cursor, and the coordinate
  /// the crash-injection harness counts crash points in.
  std::uint64_t records_appended() const { return base_records_ + appended_; }

  /// Records still awaiting verification (resume mode only).
  std::size_t verify_pending() const { return expected_.size() - verify_pos_; }

  /// Crash injection (the recovery harness): persist exactly
  /// `total_records` records, then silently drop every further append —
  /// exactly what a process death between two writes leaves on disk.
  /// crashed() turns true at the first dropped append; the sim driver
  /// abandons the run at the next event boundary. 0 = off.
  void set_crash_after(std::uint64_t total_records) {
    crash_after_ = total_records;
  }
  bool crashed() const { return crashed_; }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  io::FileRecordWriter writer_;
  std::vector<std::string> expected_;
  std::size_t verify_pos_ = 0;
  std::uint64_t base_records_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t crash_after_ = 0;
  bool crashed_ = false;
  std::string error_;
};

}  // namespace mrcp
