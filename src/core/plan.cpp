#include "core/plan.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/check.h"

namespace mrcp {

std::string Plan::to_string() const {
  std::ostringstream os;
  os << "Plan{epoch=" << epoch << ", t=" << planned_at
     << ", tasks=" << tasks.size() << "}";
  return os.str();
}

std::string validate_plan(const Plan& plan, const Cluster& cluster,
                          const std::vector<const Job*>& jobs_by_id) {
  bool links_constrained = false;
  for (const Resource& r : cluster.resources()) {
    links_constrained = links_constrained || r.net_capacity > 0;
  }
  // (resource, phase) -> time -> usage delta
  std::map<std::pair<ResourceId, int>, std::map<Time, int>> deltas;
  // Anti-affinity: (job, group, resource) -> first holder in the plan.
  std::map<std::tuple<JobId, int, ResourceId>, const PlannedTask*>
      group_holders;
  // job -> latest map end / earliest reduce start in this plan
  std::map<JobId, Time> latest_map_end;
  std::map<JobId, Time> earliest_reduce_start;

  for (const PlannedTask& pt : plan.tasks) {
    std::ostringstream where;
    where << "job " << pt.job << " task " << pt.task_index << ": ";
    if (pt.resource < 0 || pt.resource >= cluster.size()) {
      return where.str() + "resource out of range";
    }
    if (pt.start == kNoTime || pt.end <= pt.start) {
      return where.str() + "bad interval";
    }
    if (pt.job < 0 || static_cast<std::size_t>(pt.job) >= jobs_by_id.size() ||
        jobs_by_id[static_cast<std::size_t>(pt.job)] == nullptr) {
      return where.str() + "unknown job";
    }
    const Job& job = *jobs_by_id[static_cast<std::size_t>(pt.job)];
    if (pt.task_index < 0 ||
        static_cast<std::size_t>(pt.task_index) >= job.num_tasks()) {
      return where.str() + "task index out of range";
    }
    const Task& task = job.task(static_cast<std::size_t>(pt.task_index));
    if (task.type != pt.type) return where.str() + "task type mismatch";
    const Resource& host = cluster.resource(pt.resource);
    if (pt.duration() != host.scaled_duration(task.exec_time)) {
      return where.str() +
             "duration does not match task exec time scaled by the "
             "resource speed";
    }
    if (!pt.started && pt.type == TaskType::kMap &&
        pt.start < job.earliest_start) {
      return where.str() + "map scheduled before s_j";
    }
    if (!pt.started && !task.candidates.empty() &&
        std::find(task.candidates.begin(), task.candidates.end(),
                  pt.resource) == task.candidates.end()) {
      return where.str() + "resource not among the task's candidates";
    }
    if (!pt.started && !task.racks.empty() &&
        std::find(task.racks.begin(), task.racks.end(), host.rack) ==
            task.racks.end()) {
      return where.str() + "resource outside the task's racks";
    }
    if (task.affinity_group >= 0) {
      auto [it, inserted] = group_holders.try_emplace(
          std::make_tuple(pt.job, task.affinity_group, pt.resource), &pt);
      if (!inserted) {
        return where.str() + "shares resource " + std::to_string(pt.resource) +
               " with task " + std::to_string(it->second->task_index) +
               " of the same anti-affinity group";
      }
    }
    const int cap = host.capacity(pt.type);
    if (cap < task.res_req) return where.str() + "resource lacks capacity";

    deltas[{pt.resource, static_cast<int>(pt.type)}][pt.start] += task.res_req;
    deltas[{pt.resource, static_cast<int>(pt.type)}][pt.end] -= task.res_req;
    // Swept against every resource once links are constrained anywhere:
    // a zero-capacity resource then rejects net demand instead of
    // silently skipping the check.
    if (task.net_demand > 0 && links_constrained) {
      deltas[{pt.resource, 2}][pt.start] += task.net_demand;
      deltas[{pt.resource, 2}][pt.end] -= task.net_demand;
    }

    if (pt.type == TaskType::kMap) {
      auto [it, inserted] = latest_map_end.try_emplace(pt.job, pt.end);
      if (!inserted) it->second = std::max(it->second, pt.end);
    } else {
      auto [it, inserted] = earliest_reduce_start.try_emplace(pt.job, pt.start);
      if (!inserted) it->second = std::min(it->second, pt.start);
    }
  }

  // Precedence: a plan may omit completed maps, in which case the reduce
  // check is against the maps that are present only (the RM guarantees
  // dropped maps ended before `planned_at` <= any unstarted reduce start).
  for (const auto& [job, reduce_start] : earliest_reduce_start) {
    auto it = latest_map_end.find(job);
    if (it != latest_map_end.end() && reduce_start < it->second) {
      return "job " + std::to_string(job) + ": reduce overlaps its map phase";
    }
  }

  // Workflow precedences between tasks present in the plan (edges with a
  // completed endpoint were filtered by the RM and are satisfied).
  {
    std::map<std::pair<JobId, int>, const PlannedTask*> by_key;
    std::map<JobId, const Job*> jobs_in_plan;
    for (const PlannedTask& pt : plan.tasks) {
      by_key[{pt.job, pt.task_index}] = &pt;
      jobs_in_plan.emplace(pt.job,
                           jobs_by_id[static_cast<std::size_t>(pt.job)]);
    }
    for (const auto& [job_id, job] : jobs_in_plan) {
      for (const auto& [before, after] : job->precedences) {
        const auto b = by_key.find({job_id, before});
        const auto a = by_key.find({job_id, after});
        if (b == by_key.end() || a == by_key.end()) continue;
        if (!a->second->started && a->second->start < b->second->end) {
          return "job " + std::to_string(job_id) +
                 ": workflow precedence violated in plan";
        }
      }
    }
  }

  for (const auto& [key, delta] : deltas) {
    const Resource& r = cluster.resource(key.first);
    const int cap = key.second == 2
                        ? r.net_capacity
                        : r.capacity(static_cast<TaskType>(key.second));
    int usage = 0;
    for (const auto& [time, d] : delta) {
      usage += d;
      if (usage > cap) {
        std::ostringstream os;
        os << "resource " << key.first << " "
           << (key.second == 2   ? "net"
               : key.second == 0 ? "map"
                                 : "reduce")
           << " capacity exceeded at t=" << time;
        return os.str();
      }
    }
  }
  return "";
}

}  // namespace mrcp
