// MRCP-RM — the MapReduce Constraint Programming based Resource Manager
// (paper §V). This is the paper's primary contribution.
//
// Usage in an open system: submit() each job when it arrives, then call
// reschedule(now) to run the Table 2 algorithm, which
//   1. clamps earliest start times that have passed to `now`;
//   2. classifies every previously-scheduled task: completed tasks are
//      dropped (and fully-completed jobs removed), running tasks are
//      pinned (resource + start + end fixed, earliest-start constraint
//      lifted);
//   3. rebuilds the CP model over all remaining tasks — newly submitted
//      jobs *and* previously scheduled but unstarted tasks, which are
//      re-mapped and re-scheduled from scratch for maximum flexibility;
//   4. solves it (combined-resource + matchmaking when the §V.D
//      separation optimization is on, direct model otherwise);
//   5. publishes a new Plan carrying every live task's assignment.
//
// §V.E deferral: jobs whose s_j lies more than `deferral_window` in the
// future are parked in a deferral queue and only join the CP model once
// now >= s_j - deferral_window; next_deferred_release() tells the driver
// when to invoke reschedule() for that.
//
// The O metric (average matchmaking and scheduling time per job) is
// accumulated from wall-clock measurements around steps 1-5, mirroring
// the paper's System.nanoTime() instrumentation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/degradation.h"
#include "core/model_builder.h"
#include "core/plan.h"
#include "cp/solver.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

class Journal;

/// How much of the existing schedule each invocation reconsiders.
enum class ReplanScope {
  /// Paper Table 2: every task that has not *started* is re-mapped and
  /// re-scheduled for maximum flexibility.
  kAllUnstarted,
  /// Low-overhead mode (a §VII "reduce scheduling times at high lambda"
  /// mechanism): previously planned tasks keep their placement even if
  /// not started; only newly arrived/released jobs are placed, into the
  /// gaps of the frozen schedule. Cheaper solves, slightly worse P.
  kNewJobsOnly,
  /// Incremental rescheduling (docs/incremental.md): the RM tracks the
  /// set of jobs touched since the last solve — arrivals, deferral and
  /// backpressure releases, fault-reset assignments, parked work — and
  /// re-solves only those against a frozen boundary of untouched
  /// assignments (the frozen-model machinery of the degradation ladder
  /// promoted to the primary path). The CP model and its SearchRoot
  /// persist across invocations and are reused whenever the live state
  /// fingerprint recurs; per-invocation cost tracks the dirty set, not
  /// the live set (bench/epoch_scaling.cpp).
  kDirtyOnly,
};

struct MrcpConfig {
  /// §V.D separation of matchmaking and scheduling (combined-resource
  /// solve + min-gap matchmaking). Requires unit task demands.
  bool use_separation = true;

  ReplanScope replan_scope = ReplanScope::kAllUnstarted;

  /// §V.E: defer jobs with far-future earliest start times.
  bool defer_future_jobs = true;
  /// A deferred job enters scheduling at s_j - deferral_window.
  Time deferral_window;

  /// CP solver budgets (per invocation). `solve.num_threads` selects the
  /// solver's parallel portfolio/LNS worker count; results for a fixed
  /// seed are thread-count independent, so turning this up is purely a
  /// latency (O metric) optimization.
  cp::SolveParams solve;

  /// Re-validate every published plan (slow; for tests/debugging).
  bool validate_plans = false;

  // ---- Graceful degradation (docs/degraded_mode.md) ----

  /// When the CP solve returns no schedule (hard watchdog expired before
  /// any descent completed), escalate: shrink+backoff retries, then the
  /// deterministic EDF fallback scheduler. Off restores the fatal
  /// pre-degradation behaviour (abort on an empty solve) — tests only.
  bool fallback_enabled = true;
  /// Shrunk-model retries before falling back: each freezes every
  /// planned assignment in place (LNS-style neighbourhood fixing),
  /// doubles the soft budget, and is seeded with the EDF fallback's
  /// incumbent. 0 = straight to the fallback.
  int max_solve_retries = 2;
  /// Absolute wall-clock watchdog for a whole reschedule() invocation,
  /// shared by every attempt. 0 = auto: 256x solve.time_limit_s — far
  /// above any descent that fits the soft budget, so default-budget runs
  /// never hit it and stay byte-identical to the pre-degradation code.
  double solver_deadline_s = 0.0;
  /// Backpressure: while invocations run degraded, newly submitted jobs
  /// are held in the deferral queue (hold scales with the degraded
  /// streak) so a burst amortizes into one recovery solve instead of
  /// thrashing a full re-solve per arrival.
  bool degrade_backpressure = true;
  /// Base hold per degraded-streak step (10 s); the applied hold is
  /// min(streak, 8) * this.
  Time backpressure_hold = seconds_to_ticks(std::int64_t{10});
  /// A parked (currently unplaceable) job is retried 5 s later via
  /// next_deferred_release(), in addition to the reschedule every repair
  /// event triggers anyway.
  Time park_retry_delay = seconds_to_ticks(std::int64_t{5});

  // ---- Incremental mode (ReplanScope::kDirtyOnly; docs/incremental.md) ----

  /// Keep the built CP model + SearchRoot across invocations and reuse
  /// them when the live-state fingerprint is unchanged (park-retry
  /// storms, repeated re-solves of the same dirty region). Off rebuilds
  /// from scratch every invocation — the incremental-vs-full
  /// differential tests compare the two for byte-identical plans.
  bool reuse_model_cache = true;
  /// Seed each incremental solve with the previous invocation's
  /// assignments when they still satisfy every constraint (warm start:
  /// the incumbent bound prunes descents; the solver never returns a
  /// worse plan than the one it started from).
  bool warm_start_previous = true;
};

struct MrcpStats {
  std::uint64_t invocations = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_completed_late = 0;
  double total_sched_seconds = 0.0;  ///< sum of per-invocation wall time
  std::int64_t solver_decisions = 0;
  std::int64_t solver_fails = 0;
  std::uint64_t max_live_tasks = 0;  ///< largest model solved
  std::uint64_t resource_down_events = 0;
  std::uint64_t resource_up_events = 0;
  /// Assignments reset by handle_resource_down (killed + unstarted).
  std::uint64_t tasks_reset_by_failure = 0;
  std::uint64_t solve_attempts = 0;      ///< cp::solve calls (all rungs)
  std::uint64_t fallback_plans = 0;      ///< invocations resolved by the EDF fallback
  std::uint64_t jobs_backpressured = 0;  ///< submissions deferred by backpressure
  std::uint64_t jobs_parked = 0;         ///< job-epochs parked as unplaceable
  double solve_wall_seconds = 0.0;       ///< wall clock inside cp::solve
  // ---- Incremental mode (docs/incremental.md) ----
  std::uint64_t model_cache_hits = 0;    ///< persistent model + root reused
  std::uint64_t model_cache_misses = 0;  ///< incremental solves that rebuilt
  std::uint64_t warm_starts_used = 0;    ///< solves seeded by the old plan
  /// Clean jobs force-promoted to dirty by the collect-time safety net
  /// (an unstarted task without a live assignment on an up resource).
  /// Nonzero means the dirty-set bookkeeping missed an event — the audit
  /// tests assert it stays 0.
  std::uint64_t dirty_promotions = 0;

  /// O: average matchmaking and scheduling time per submitted job
  /// (paper §VI: total scheduling time / jobs mapped and scheduled).
  double average_sched_seconds_per_job() const {
    if (jobs_submitted == 0) return 0.0;
    return total_sched_seconds / static_cast<double>(jobs_submitted);
  }
};

class MrcpRm {
 public:
  MrcpRm(Cluster cluster, MrcpConfig config);

  /// A job has arrived (now == job.arrival_time in the simulator). The
  /// job is queued; call reschedule() to actually plan it.
  void submit(const Job& job, Time now);

  /// Run the Table 2 matchmaking-and-scheduling algorithm at time `now`.
  /// Returns the freshly published plan.
  const Plan& reschedule(Time now);

  /// A resource failed at `now`: its slot capacity leaves the model and
  /// every non-completed assignment on it — running tasks the driver
  /// just killed as well as planned-but-unstarted ones — is reset, so
  /// the next reschedule() re-enters them as unstarted work (the Table 2
  /// classification applied to failure recovery). The caller must invoke
  /// reschedule(now) afterwards to publish a repaired plan.
  void handle_resource_down(ResourceId resource, Time now);

  /// The resource was repaired at `now`: its capacity rejoins the model.
  /// Call reschedule(now) to let the solver take advantage of it.
  void handle_resource_up(ResourceId resource, Time now);

  const Plan& current_plan() const { return plan_; }
  const Cluster& cluster() const { return cluster_; }

  /// Earliest time a deferred job becomes eligible; kNoTime when the
  /// deferral queue is empty.
  Time next_deferred_release() const;

  /// Jobs currently known to the RM (active + deferred), for testing.
  std::size_t live_jobs() const { return active_.size() + deferred_.size(); }

  /// Force a job into the dirty set (incremental mode): its unstarted
  /// tasks are re-solved on the next reschedule() instead of staying
  /// frozen. Bench/test hook — every real event marks dirty jobs itself.
  void mark_dirty(JobId id);
  /// Jobs queued for re-solving by the next incremental invocation.
  const std::set<JobId>& dirty_jobs() const { return dirty_jobs_; }

  const MrcpStats& stats() const { return stats_; }

  /// Per-invocation degraded-mode attribution (docs/degraded_mode.md).
  const DegradationLedger& ledger() const { return ledger_; }
  /// Ledger counters plus the RM-side backpressure counter, ready to
  /// embed in sim::SimMetrics.
  DegradationCounts degradation_counts() const;

  // ---- Durability (docs/crash_recovery.md) ----

  /// Attach a write-ahead journal: from now on every scheduler-visible
  /// event (submission, release, completion, fault activity, every
  /// published plan, park-retry arming) appends one record. Null
  /// detaches; the default is off and costs nothing.
  void attach_journal(Journal* journal) { journal_ = journal; }

  /// Serialize the RM's full mutable state — active/deferred/parked
  /// jobs, current plan, stats, degradation ledger, dirty set, fault
  /// flags, model-cache fingerprint — as a versioned blob.
  std::string encode_state() const;

  /// Restore state captured by encode_state(). The RM must have been
  /// constructed with the same cluster and config as the captured one.
  /// False (with *error set) on truncation, corruption, version or
  /// cluster-shape mismatch; the RM is unusable after a failed restore.
  bool restore_state(std::string_view state, std::string* error);

  /// Restore a snapshot, then replay a journal suffix on top of it:
  /// input events (submissions, faults) are re-applied, and each
  /// journaled plan triggers a real reschedule() whose published plan is
  /// byte-compared against the record — re-deriving the outputs proves
  /// the restored state equivalent instead of trusting it.
  bool restore(std::string_view snapshot_state,
               const std::vector<std::string>& journal_suffix,
               std::string* error);

 private:
  struct Assignment {
    ResourceId resource = kNoResource;
    Time start = kNoTime;
    Time end = kNoTime;
    bool assigned() const { return resource != kNoResource; }
  };
  struct JobState {
    Job job;
    std::vector<std::uint8_t> completed;   ///< per flat task index
    std::vector<Assignment> assignments;   ///< per flat task index
  };

  void release_deferred(Time now);
  void sweep_completed(Time now);
  /// Live jobs for the CP model. `freeze_planned` additionally pins
  /// planned-but-unstarted assignments (kNewJobsOnly semantics; also the
  /// shrunk model of degraded-mode retries). With `dirty` non-null
  /// (incremental mode) freezing is per job: jobs absent from `dirty`
  /// form the frozen boundary, dirty jobs are re-solved from free. A
  /// clean job that cannot be frozen soundly — an unstarted task with no
  /// assignment, or one stranded on a down resource — is promoted into
  /// `dirty` (and counted in stats_.dirty_promotions: the promotion is a
  /// safety net, correct bookkeeping never needs it).
  std::vector<LiveJob> collect_live_jobs(Time now, bool freeze_planned,
                                         std::set<JobId>* dirty = nullptr);
  /// Previous-plan warm start for an incremental solve: the old
  /// assignments of every non-pinned task, when they are all present, on
  /// up resources, and still satisfy the model. Invalid solution when not.
  cp::Solution warm_start_from_assignments(const BuiltModel& built) const;
  /// Park jobs with a free task no *current* (post-failure) resource can
  /// host: their unstarted assignments are released and only their
  /// started tasks stay in `live` (they occupy real capacity). A task
  /// even the pristine cluster cannot host is a workload error and stays
  /// fatal. Rebuilds `parked_`.
  void park_unplaceable(std::vector<LiveJob>& live, Time now);
  /// Append one record to the attached journal (no-op when detached);
  /// a failed append — I/O error or resume-verification divergence — is
  /// fatal, which is what the crash-injection harness leans on.
  void journal_append(const std::string& payload);
  /// Drop the unstarted tasks of already-parked jobs from a re-collected
  /// live set (retry rungs re-collect; parking must not be re-decided
  /// mid-invocation).
  void strip_parked(std::vector<LiveJob>& live) const;
  void publish_plan(Time now);

  Cluster cluster_;            ///< working capacities (failed => zeroed)
  Cluster pristine_cluster_;   ///< capacities as constructed
  std::vector<std::uint8_t> down_;  ///< per-resource failed flag
  MrcpConfig config_;
  std::map<JobId, JobState> active_;
  std::multimap<Time, Job> deferred_;  ///< release time -> job
  Plan plan_;
  MrcpStats stats_;

  // ---- Degraded-mode state (docs/degraded_mode.md) ----
  std::set<JobId> parked_;       ///< jobs with unplaced tasks this epoch
  Time park_retry_at_ = kNoTime; ///< next parked-work retry wakeup
  std::uint64_t degraded_streak_ = 0;  ///< consecutive degraded invocations
  /// Live-set changed since the last full solve (arrival, release,
  /// failure, repair)? While degraded, an unchanged set lets
  /// reschedule() republish instead of re-solving (backpressure
  /// short-circuit); on the healthy path (streak 0) it is never read.
  bool dirty_ = true;
  DegradationLedger ledger_;

  // ---- Incremental-mode state (docs/incremental.md) ----

  /// Jobs touched since the last solve: arrivals, deferral/backpressure
  /// releases, assignments reset by failures, and (folded in at every
  /// invocation) parked jobs. Only these are re-solved in kDirtyOnly
  /// mode; everything else is frozen boundary. Maintained in every
  /// scope so switching modes mid-run stays consistent.
  std::set<JobId> dirty_jobs_;
  /// Persistent model + search root, reused while the live-state
  /// fingerprint is unchanged. unique_ptr for address stability: the
  /// SearchRoot holds a pointer into `built.model`.
  struct ModelCacheEntry {
    std::uint64_t fingerprint = 0;
    BuiltModel built;
    std::optional<cp::SearchRoot> root;
  };
  std::unique_ptr<ModelCacheEntry> model_cache_;

  /// Write-ahead journal; null (the default) disables all journaling.
  Journal* journal_ = nullptr;
};

}  // namespace mrcp
