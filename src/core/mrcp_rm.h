// MRCP-RM — the MapReduce Constraint Programming based Resource Manager
// (paper §V). This is the paper's primary contribution.
//
// Usage in an open system: submit() each job when it arrives, then call
// reschedule(now) to run the Table 2 algorithm, which
//   1. clamps earliest start times that have passed to `now`;
//   2. classifies every previously-scheduled task: completed tasks are
//      dropped (and fully-completed jobs removed), running tasks are
//      pinned (resource + start + end fixed, earliest-start constraint
//      lifted);
//   3. rebuilds the CP model over all remaining tasks — newly submitted
//      jobs *and* previously scheduled but unstarted tasks, which are
//      re-mapped and re-scheduled from scratch for maximum flexibility;
//   4. solves it (combined-resource + matchmaking when the §V.D
//      separation optimization is on, direct model otherwise);
//   5. publishes a new Plan carrying every live task's assignment.
//
// §V.E deferral: jobs whose s_j lies more than `deferral_window` in the
// future are parked in a deferral queue and only join the CP model once
// now >= s_j - deferral_window; next_deferred_release() tells the driver
// when to invoke reschedule() for that.
//
// The O metric (average matchmaking and scheduling time per job) is
// accumulated from wall-clock measurements around steps 1-5, mirroring
// the paper's System.nanoTime() instrumentation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/model_builder.h"
#include "core/plan.h"
#include "cp/solver.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

/// How much of the existing schedule each invocation reconsiders.
enum class ReplanScope {
  /// Paper Table 2: every task that has not *started* is re-mapped and
  /// re-scheduled for maximum flexibility.
  kAllUnstarted,
  /// Low-overhead mode (a §VII "reduce scheduling times at high lambda"
  /// mechanism): previously planned tasks keep their placement even if
  /// not started; only newly arrived/released jobs are placed, into the
  /// gaps of the frozen schedule. Cheaper solves, slightly worse P.
  kNewJobsOnly,
};

struct MrcpConfig {
  /// §V.D separation of matchmaking and scheduling (combined-resource
  /// solve + min-gap matchmaking). Requires unit task demands.
  bool use_separation = true;

  ReplanScope replan_scope = ReplanScope::kAllUnstarted;

  /// §V.E: defer jobs with far-future earliest start times.
  bool defer_future_jobs = true;
  /// A deferred job enters scheduling at s_j - deferral_window.
  Time deferral_window = 0;

  /// CP solver budgets (per invocation). `solve.num_threads` selects the
  /// solver's parallel portfolio/LNS worker count; results for a fixed
  /// seed are thread-count independent, so turning this up is purely a
  /// latency (O metric) optimization.
  cp::SolveParams solve;

  /// Re-validate every published plan (slow; for tests/debugging).
  bool validate_plans = false;
};

struct MrcpStats {
  std::uint64_t invocations = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_completed_late = 0;
  double total_sched_seconds = 0.0;  ///< sum of per-invocation wall time
  std::int64_t solver_decisions = 0;
  std::int64_t solver_fails = 0;
  std::uint64_t max_live_tasks = 0;  ///< largest model solved
  std::uint64_t resource_down_events = 0;
  std::uint64_t resource_up_events = 0;
  /// Assignments reset by handle_resource_down (killed + unstarted).
  std::uint64_t tasks_reset_by_failure = 0;

  /// O: average matchmaking and scheduling time per submitted job
  /// (paper §VI: total scheduling time / jobs mapped and scheduled).
  double average_sched_seconds_per_job() const {
    if (jobs_submitted == 0) return 0.0;
    return total_sched_seconds / static_cast<double>(jobs_submitted);
  }
};

class MrcpRm {
 public:
  MrcpRm(Cluster cluster, MrcpConfig config);

  /// A job has arrived (now == job.arrival_time in the simulator). The
  /// job is queued; call reschedule() to actually plan it.
  void submit(const Job& job, Time now);

  /// Run the Table 2 matchmaking-and-scheduling algorithm at time `now`.
  /// Returns the freshly published plan.
  const Plan& reschedule(Time now);

  /// A resource failed at `now`: its slot capacity leaves the model and
  /// every non-completed assignment on it — running tasks the driver
  /// just killed as well as planned-but-unstarted ones — is reset, so
  /// the next reschedule() re-enters them as unstarted work (the Table 2
  /// classification applied to failure recovery). The caller must invoke
  /// reschedule(now) afterwards to publish a repaired plan.
  void handle_resource_down(ResourceId resource, Time now);

  /// The resource was repaired at `now`: its capacity rejoins the model.
  /// Call reschedule(now) to let the solver take advantage of it.
  void handle_resource_up(ResourceId resource, Time now);

  const Plan& current_plan() const { return plan_; }
  const Cluster& cluster() const { return cluster_; }

  /// Earliest time a deferred job becomes eligible; kNoTime when the
  /// deferral queue is empty.
  Time next_deferred_release() const;

  /// Jobs currently known to the RM (active + deferred), for testing.
  std::size_t live_jobs() const { return active_.size() + deferred_.size(); }

  const MrcpStats& stats() const { return stats_; }

 private:
  struct Assignment {
    ResourceId resource = kNoResource;
    Time start = kNoTime;
    Time end = kNoTime;
    bool assigned() const { return resource != kNoResource; }
  };
  struct JobState {
    Job job;
    std::vector<std::uint8_t> completed;   ///< per flat task index
    std::vector<Assignment> assignments;   ///< per flat task index
  };

  void release_deferred(Time now);
  void sweep_completed(Time now);
  std::vector<LiveJob> collect_live_jobs(Time now) const;
  void publish_plan(Time now);

  Cluster cluster_;            ///< working capacities (failed => zeroed)
  Cluster pristine_cluster_;   ///< capacities as constructed
  std::vector<std::uint8_t> down_;  ///< per-resource failed flag
  MrcpConfig config_;
  std::map<JobId, JobState> active_;
  std::multimap<Time, Job> deferred_;  ///< release time -> job
  Plan plan_;
  MrcpStats stats_;
};

}  // namespace mrcp
