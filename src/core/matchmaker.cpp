#include "core/matchmaker.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace mrcp {

namespace {

struct Slot {
  ResourceId resource;
  Time last_end;
};

std::vector<Slot> make_slots(const Cluster& cluster, TaskType type) {
  std::vector<Slot> slots;
  for (const Resource& r : cluster.resources()) {
    const int cap = r.capacity(type);
    for (int s = 0; s < cap; ++s) slots.push_back(Slot{r.id, Time{0}});
  }
  return slots;
}

}  // namespace

std::vector<ResourceId> matchmake(const Cluster& cluster,
                                  const std::vector<MatchItem>& items) {
  std::vector<Slot> map_slots = make_slots(cluster, TaskType::kMap);
  std::vector<Slot> reduce_slots = make_slots(cluster, TaskType::kReduce);

  // Process in start order; pinned before new at equal start so running
  // tasks claim their resource's slots first.
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (items[a].start != items[b].start) return items[a].start < items[b].start;
    if (items[a].pinned != items[b].pinned) return items[a].pinned;
    return items[a].end < items[b].end;
  });

  std::vector<ResourceId> assigned(items.size(), kNoResource);
  for (std::size_t idx : order) {
    const MatchItem& item = items[idx];
    MRCP_CHECK(item.end > item.start);
    std::vector<Slot>& slots =
        item.type == TaskType::kMap ? map_slots : reduce_slots;

    Slot* best = nullptr;
    for (Slot& slot : slots) {
      if (slot.last_end > item.start) continue;  // busy at item start
      if (item.pinned && slot.resource != item.pinned_resource) continue;
      // Min-gap: prefer the slot whose previous interval ends latest.
      if (best == nullptr || slot.last_end > best->last_end) best = &slot;
    }
    MRCP_CHECK_MSG(best != nullptr,
                   "matchmake: no free slot — combined schedule violates "
                   "total capacity");
    best->last_end = item.end;
    assigned[idx] = best->resource;
  }
  return assigned;
}

Cluster compute_regrouping(int total_map_slots, int total_reduce_slots, int nm,
                           int nr) {
  MRCP_CHECK(nm >= 1);
  MRCP_CHECK(nr >= 0);
  MRCP_CHECK(total_map_slots >= nm);
  const int num_resources = std::max(nm, nr);

  // Map slots spread evenly over all resources; remainder goes to the
  // last resources ("smaller counts first", as in the paper's reduce
  // example).
  std::vector<int> map_caps(static_cast<std::size_t>(num_resources), 0);
  {
    const int base = total_map_slots / num_resources;
    const int extra = total_map_slots % num_resources;
    for (int i = 0; i < num_resources; ++i) {
      map_caps[static_cast<std::size_t>(i)] =
          base + (i >= num_resources - extra ? 1 : 0);
    }
  }
  std::vector<int> reduce_caps(static_cast<std::size_t>(num_resources), 0);
  if (nr > 0) {
    MRCP_CHECK(total_reduce_slots >= nr || total_reduce_slots == 0);
    const int base = total_reduce_slots / nr;
    const int extra = total_reduce_slots % nr;
    for (int i = 0; i < nr; ++i) {
      reduce_caps[static_cast<std::size_t>(i)] = base + (i >= nr - extra ? 1 : 0);
    }
  }

  Cluster out;
  for (int i = 0; i < num_resources; ++i) {
    out.add_resource(map_caps[static_cast<std::size_t>(i)],
                     reduce_caps[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace mrcp
