#include "core/degradation.h"

#include <sstream>

namespace mrcp {

const char* invocation_outcome_name(InvocationOutcome outcome) {
  switch (outcome) {
    case InvocationOutcome::kCpPrimary: return "cp-primary";
    case InvocationOutcome::kCpRetry: return "cp-retry";
    case InvocationOutcome::kFallback: return "fallback";
    case InvocationOutcome::kParked: return "parked";
    case InvocationOutcome::kSkipped: return "skipped";
    case InvocationOutcome::kIdle: return "idle";
  }
  return "unknown";
}

void DegradationLedger::record(const InvocationRecord& rec) {
  records_.push_back(rec);
  switch (rec.outcome) {
    case InvocationOutcome::kCpPrimary: ++counts_.primary; break;
    case InvocationOutcome::kCpRetry: ++counts_.retry; break;
    case InvocationOutcome::kFallback: ++counts_.fallback; break;
    case InvocationOutcome::kParked: ++counts_.parked; break;
    case InvocationOutcome::kSkipped: ++counts_.skipped; break;
    case InvocationOutcome::kIdle: ++counts_.idle; break;
  }
  counts_.solve_attempts += static_cast<std::uint64_t>(rec.attempts);
  counts_.solve_wall_seconds += rec.solve_wall_seconds;
}

std::string DegradationLedger::summary() const {
  std::ostringstream os;
  os << "invocations=" << counts_.invocations()
     << " primary=" << counts_.primary << " retry=" << counts_.retry
     << " fallback=" << counts_.fallback << " parked=" << counts_.parked
     << " skipped=" << counts_.skipped << " idle=" << counts_.idle
     << " attempts=" << counts_.solve_attempts;
  return os.str();
}

}  // namespace mrcp
