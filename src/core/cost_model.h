// Monetary cost accounting for resource usage — the paper's §VII
// future-work item ("consideration of monetary costs for resource
// usage").
//
// Cloud pricing is modelled per slot-second, with separate map/reduce
// rates and an optional per-resource-uptime rate: a resource is "up"
// from the first instant any of its slots is busy until the last (the
// pay-as-you-go lease window), so schedules that pack work onto fewer
// resources for shorter spans are cheaper even when the pure busy time
// is identical.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/plan.h"
#include "mapreduce/cluster.h"

namespace mrcp {

struct CostRates {
  /// Price per busy map/reduce slot-second.
  double map_slot_second = 0.0;
  double reduce_slot_second = 0.0;
  /// Price per resource-second of lease (first busy -> last busy instant).
  double resource_uptime_second = 0.0;
};

/// One priced busy interval on a resource. Plans and executed-task logs
/// both convert to this.
struct BusyInterval {
  ResourceId resource = kNoResource;
  TaskType type = TaskType::kMap;
  Time start;
  Time end;
};

struct CostBreakdown {
  double map_busy_cost = 0.0;
  double reduce_busy_cost = 0.0;
  double uptime_cost = 0.0;
  /// Busy slot-seconds per phase (pricing-independent utilization data).
  double map_busy_seconds = 0.0;
  double reduce_busy_seconds = 0.0;
  /// Summed lease seconds over resources that executed anything.
  double uptime_seconds = 0.0;

  double total() const { return map_busy_cost + reduce_busy_cost + uptime_cost; }
};

/// Price a set of busy intervals.
CostBreakdown intervals_cost(const std::vector<BusyInterval>& intervals,
                             const CostRates& rates);

/// Cost of a plan (all tasks, started or not) under `rates`.
CostBreakdown plan_cost(const Plan& plan, const CostRates& rates);

}  // namespace mrcp
