// Degradation ledger: per-invocation attribution of how MRCP-RM obtained
// each published plan (docs/degraded_mode.md).
//
// Every reschedule() appends one InvocationRecord saying which rung of
// the escalation ladder produced the plan — the primary CP solve, a
// shrink/backoff retry, the EDF fallback scheduler, a backpressure
// short-circuit, or nothing at all (idle / everything parked) — plus how
// many CP attempts ran and how much wall clock they burned. The ledger
// is what makes degraded operation observable: a run that silently fell
// back on every invocation would otherwise look identical to a healthy
// one in the O/N/T/P metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "cp/solver.h"

namespace mrcp {

/// Which rung of the escalation ladder produced an invocation's plan.
enum class InvocationOutcome : std::uint8_t {
  kCpPrimary,  ///< the primary CP solve (healthy path)
  kCpRetry,    ///< a shrink/backoff retry found its own solution (degraded)
  kFallback,   ///< the EDF fallback scheduler's plan was published (degraded)
  kParked,     ///< nothing schedulable: every live job parked (degraded)
  kSkipped,    ///< backpressure short-circuit: previous plan republished
  kIdle,       ///< no live work at all
};

const char* invocation_outcome_name(InvocationOutcome outcome);

struct InvocationRecord {
  std::uint64_t epoch = 0;  ///< plan epoch this invocation published
  Time sim_time;
  int attempts = 0;  ///< cp::solve calls made (0 = none ran)
  cp::SolveStatus last_status = cp::SolveStatus::kFeasible;  ///< of last attempt
  InvocationOutcome outcome = InvocationOutcome::kIdle;
  double solve_wall_seconds = 0.0;  ///< wall clock inside cp::solve
  std::size_t live_tasks = 0;       ///< tasks in the solved model
  std::size_t parked_jobs = 0;      ///< jobs parked as unplaceable
  // ---- Incremental-mode attribution (docs/incremental.md) ----
  std::size_t dirty_jobs = 0;    ///< jobs re-solved this invocation
  std::size_t frozen_tasks = 0;  ///< boundary tasks pinned, not re-solved
  bool model_cache_hit = false;  ///< persistent model + root were reused
};

/// Aggregate counters over a ledger; embedded in sim::SimMetrics and
/// printed by `mrcp-sim --stats`.
struct DegradationCounts {
  std::uint64_t primary = 0;
  std::uint64_t retry = 0;
  std::uint64_t fallback = 0;
  std::uint64_t parked = 0;
  std::uint64_t skipped = 0;
  std::uint64_t idle = 0;
  std::uint64_t solve_attempts = 0;
  double solve_wall_seconds = 0.0;
  /// Submissions the RM deferred under backpressure (filled by the RM,
  /// not derived from records — see MrcpRm::degradation_counts()).
  std::uint64_t jobs_backpressured = 0;

  std::uint64_t invocations() const {
    return primary + retry + fallback + parked + skipped + idle;
  }
  /// Invocations that did not get a plan from the primary CP solve.
  std::uint64_t degraded() const { return retry + fallback + parked; }
};

class DegradationLedger {
 public:
  void record(const InvocationRecord& rec);

  const std::vector<InvocationRecord>& records() const { return records_; }
  const DegradationCounts& counts() const { return counts_; }

  /// One-line human-readable summary of the counters.
  std::string summary() const;

 private:
  std::vector<InvocationRecord> records_;
  DegradationCounts counts_;
};

}  // namespace mrcp
