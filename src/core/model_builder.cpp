#include "core/model_builder.h"

#include <map>

#include "common/check.h"

namespace mrcp {

namespace {

cp::Phase to_phase(TaskType type) {
  return type == TaskType::kMap ? cp::Phase::kMap : cp::Phase::kReduce;
}

void add_jobs_and_tasks(BuiltModel& built, std::span<const LiveJob> jobs,
                        bool combined) {
  for (const LiveJob& lj : jobs) {
    MRCP_CHECK(!lj.tasks.empty());
    const cp::CpJobIndex cj = built.model.add_job(
        lj.effective_earliest_start, lj.deadline, lj.id);
    built.job_refs.push_back(lj.id);
    // Flat task index -> CP task index, for wiring precedences below.
    std::map<int, cp::CpTaskIndex> by_flat_index;
    for (const LiveTask& lt : lj.tasks) {
      const cp::CpTaskIndex ct =
          built.model.add_task(cj, to_phase(lt.type), lt.exec_time, lt.res_req,
                               lt.task_index, lt.net_demand);
      built.task_refs.emplace_back(lj.id, lt.task_index);
      by_flat_index.emplace(lt.task_index, ct);
      if (lt.started) {
        MRCP_CHECK(lt.resource != kNoResource && lt.start != kNoTime);
        // In combined mode every task lives on CP resource 0; the true
        // resource is re-attached by the matchmaker afterwards.
        const cp::CpResourceIndex pin_res =
            combined ? 0 : static_cast<cp::CpResourceIndex>(lt.resource);
        built.model.pin_task(ct, pin_res, lt.start);
      }
    }
    for (const auto& [before, after] : lj.precedences) {
      const auto b = by_flat_index.find(before);
      const auto a = by_flat_index.find(after);
      MRCP_CHECK_MSG(b != by_flat_index.end() && a != by_flat_index.end(),
                     "precedence references a task absent from the model");
      built.model.add_precedence(b->second, a->second);
    }
  }
}

}  // namespace

BuiltModel build_direct_model(const Cluster& cluster,
                              std::span<const LiveJob> jobs) {
  BuiltModel built;
  built.combined = false;
  for (const Resource& r : cluster.resources()) {
    built.model.add_resource(r.map_capacity, r.reduce_capacity,
                             r.net_capacity);
  }
  add_jobs_and_tasks(built, jobs, /*combined=*/false);
  return built;
}

BuiltModel build_combined_model(const Cluster& cluster,
                                std::span<const LiveJob> jobs) {
  BuiltModel built;
  built.combined = true;
  built.model.add_resource(cluster.total_map_slots(),
                           cluster.total_reduce_slots());
  bool links_constrained = false;
  for (const Resource& r : cluster.resources()) {
    links_constrained |= r.net_capacity > 0;
  }
  for (const LiveJob& lj : jobs) {
    for (const LiveTask& lt : lj.tasks) {
      MRCP_CHECK_MSG(lt.res_req == 1,
                     "combined mode requires unit task demands (q_t = 1)");
      MRCP_CHECK_MSG(lt.net_demand == 0 || !links_constrained,
                     "combined mode cannot carry per-resource link "
                     "constraints — use the direct model");
    }
  }
  add_jobs_and_tasks(built, jobs, /*combined=*/true);
  return built;
}

}  // namespace mrcp
