#include "core/model_builder.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace mrcp {

namespace {

cp::Phase to_phase(TaskType type) {
  return type == TaskType::kMap ? cp::Phase::kMap : cp::Phase::kReduce;
}

/// Compiles the task's placement constraints — candidate hosts, rack
/// locality, resources burned by completed anti-affinity siblings — into
/// the CP alternative. Started tasks are pinned and skip this entirely.
void compile_allowed(cp::Model& model, cp::CpTaskIndex ct, const LiveTask& lt,
                     const Cluster& cluster) {
  if (lt.candidates.empty() && lt.racks.empty() &&
      lt.anti_affinity_exclude.empty()) {
    return;
  }
  auto rack_ok = [&](ResourceId r) {
    if (lt.racks.empty()) return true;
    const int rack = cluster.resource(r).rack;
    return std::find(lt.racks.begin(), lt.racks.end(), rack) != lt.racks.end();
  };
  auto excluded = [&](ResourceId r) {
    return std::find(lt.anti_affinity_exclude.begin(),
                     lt.anti_affinity_exclude.end(),
                     r) != lt.anti_affinity_exclude.end();
  };
  std::vector<cp::CpResourceIndex> allowed;
  auto try_add = [&](ResourceId r) {
    if (rack_ok(r) && !excluded(r)) {
      allowed.push_back(static_cast<cp::CpResourceIndex>(r));
    }
  };
  if (lt.candidates.empty()) {
    for (ResourceId r = 0; r < static_cast<ResourceId>(cluster.size()); ++r) {
      try_add(r);
    }
  } else {
    for (ResourceId r : lt.candidates) try_add(r);
  }
  MRCP_CHECK_MSG(!allowed.empty(),
                 "live task has no eligible resource — the RM must park such "
                 "tasks before building a model");
  if (allowed.size() == static_cast<std::size_t>(cluster.size())) return;
  model.restrict_candidates(ct, std::move(allowed));
}

void add_jobs_and_tasks(BuiltModel& built, std::span<const LiveJob> jobs,
                        bool combined, const Cluster* cluster) {
  // (job, job-local group) -> member CP tasks; groups with >= 2 live
  // members get dense model-global ids below. Pinned members are included
  // so the search replays the resource they already occupy.
  std::map<std::pair<JobId, int>, std::vector<cp::CpTaskIndex>> groups;
  for (const LiveJob& lj : jobs) {
    MRCP_CHECK(!lj.tasks.empty());
    const cp::CpJobIndex cj = built.model.add_job(
        lj.effective_earliest_start, lj.deadline, lj.id);
    built.job_refs.push_back(lj.id);
    // Flat task index -> CP task index, for wiring precedences below.
    std::map<int, cp::CpTaskIndex> by_flat_index;
    for (const LiveTask& lt : lj.tasks) {
      const cp::CpTaskIndex ct =
          built.model.add_task(cj, to_phase(lt.type), lt.exec_time, lt.res_req,
                               lt.task_index, lt.net_demand);
      built.task_refs.emplace_back(lj.id, lt.task_index);
      by_flat_index.emplace(lt.task_index, ct);
      if (!combined) {
        if (!lt.started) compile_allowed(built.model, ct, lt, *cluster);
        if (lt.affinity_group >= 0) {
          groups[{lj.id, lt.affinity_group}].push_back(ct);
        }
      }
      if (lt.started) {
        MRCP_CHECK(lt.resource != kNoResource && lt.start != kNoTime);
        // In combined mode every task lives on CP resource 0; the true
        // resource is re-attached by the matchmaker afterwards.
        const cp::CpResourceIndex pin_res =
            combined ? 0 : static_cast<cp::CpResourceIndex>(lt.resource);
        built.model.pin_task(ct, pin_res, lt.start);
      }
    }
    for (const auto& [before, after] : lj.precedences) {
      const auto b = by_flat_index.find(before);
      const auto a = by_flat_index.find(after);
      MRCP_CHECK_MSG(b != by_flat_index.end() && a != by_flat_index.end(),
                     "precedence references a task absent from the model");
      built.model.add_precedence(b->second, a->second);
    }
  }
  // Dense model-global group ids, in deterministic (job id, group) order.
  int next_group = 0;
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;  // singletons: exclusions suffice
    for (cp::CpTaskIndex t : members) {
      built.model.set_affinity_group(t, next_group);
    }
    ++next_group;
  }
}

}  // namespace

BuiltModel build_direct_model(const Cluster& cluster,
                              std::span<const LiveJob> jobs) {
  BuiltModel built;
  built.combined = false;
  for (const Resource& r : cluster.resources()) {
    built.model.add_resource(r.map_capacity, r.reduce_capacity, r.net_capacity,
                             r.speed_permille);
  }
  add_jobs_and_tasks(built, jobs, /*combined=*/false, &cluster);
  return built;
}

BuiltModel build_combined_model(const Cluster& cluster,
                                std::span<const LiveJob> jobs) {
  BuiltModel built;
  built.combined = true;
  const int uniform_speed = cluster.uniform_speed_permille();
  MRCP_CHECK_MSG(uniform_speed > 0,
                 "combined mode requires a uniform-speed cluster — use the "
                 "direct model");
  built.model.add_resource(cluster.total_map_slots(),
                           cluster.total_reduce_slots(), 0, uniform_speed);
  bool links_constrained = false;
  for (const Resource& r : cluster.resources()) {
    links_constrained |= r.net_capacity > 0;
  }
  for (const LiveJob& lj : jobs) {
    for (const LiveTask& lt : lj.tasks) {
      MRCP_CHECK_MSG(lt.res_req == 1,
                     "combined mode requires unit task demands (q_t = 1)");
      MRCP_CHECK_MSG(lt.net_demand == 0 || !links_constrained,
                     "combined mode cannot carry per-resource link "
                     "constraints — use the direct model");
      MRCP_CHECK_MSG(lt.candidates.empty() && lt.racks.empty() &&
                         lt.affinity_group < 0 &&
                         lt.anti_affinity_exclude.empty(),
                     "combined mode cannot carry placement constraints — "
                     "use the direct model");
    }
  }
  add_jobs_and_tasks(built, jobs, /*combined=*/true, nullptr);
  return built;
}

}  // namespace mrcp
