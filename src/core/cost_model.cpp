#include "core/cost_model.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace mrcp {

CostBreakdown intervals_cost(const std::vector<BusyInterval>& intervals,
                             const CostRates& rates) {
  CostBreakdown cost;
  std::map<ResourceId, std::pair<Time, Time>> lease;  // first start, last end
  for (const BusyInterval& iv : intervals) {
    MRCP_CHECK(iv.end >= iv.start);
    const double busy_s = ticks_to_seconds(iv.end - iv.start);
    if (iv.type == TaskType::kMap) {
      cost.map_busy_seconds += busy_s;
    } else {
      cost.reduce_busy_seconds += busy_s;
    }
    auto [it, inserted] = lease.try_emplace(iv.resource, iv.start, iv.end);
    if (!inserted) {
      it->second.first = std::min(it->second.first, iv.start);
      it->second.second = std::max(it->second.second, iv.end);
    }
  }
  for (const auto& [resource, window] : lease) {
    cost.uptime_seconds += ticks_to_seconds(window.second - window.first);
  }
  cost.map_busy_cost = cost.map_busy_seconds * rates.map_slot_second;
  cost.reduce_busy_cost = cost.reduce_busy_seconds * rates.reduce_slot_second;
  cost.uptime_cost = cost.uptime_seconds * rates.resource_uptime_second;
  return cost;
}

CostBreakdown plan_cost(const Plan& plan, const CostRates& rates) {
  std::vector<BusyInterval> intervals;
  intervals.reserve(plan.tasks.size());
  for (const PlannedTask& pt : plan.tasks) {
    intervals.push_back(BusyInterval{pt.resource, pt.type, pt.start, pt.end});
  }
  return intervals_cost(intervals, rates);
}

}  // namespace mrcp
