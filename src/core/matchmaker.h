// Matchmaking for the §V.D separation optimization.
//
// After the CP solve on the single combined resource fixes every task's
// start time, the matchmaker maps each task onto a concrete resource
// slot. Following the paper:
//   * tasks are processed in start-time order;
//   * each task goes to the slot that "leaves the smallest remaining gap"
//     — the slot whose last busy interval ends latest while still at or
//     before the task's start;
//   * map tasks use map slots, reduce tasks use reduce slots;
//   * tasks that have already started are pre-placed on their actual
//     resource (their slot within it is re-derived, which is sound
//     because slots of one resource are interchangeable).
//
// Because the combined-resource cumulative constraint bounds the number
// of concurrent tasks by the total slot count, the greedy start-ordered
// assignment always finds a free slot (interval-graph colouring); the
// matchmaker checks this invariant.
//
// The paper's intermediate "unit capacity resources" and the step-2
// regrouping of unit resources into a user-specified number of resources
// (n_m / n_r) are exposed as compute_regrouping(), reproduced exactly as
// the §V.D example describes.
#pragma once

#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

/// One scheduled interval to be matchmade.
struct MatchItem {
  TaskType type = TaskType::kMap;
  Time start;
  Time end;
  bool pinned = false;               ///< already running on `pinned_resource`
  ResourceId pinned_resource = kNoResource;
};

/// Assign each item a resource. Returns resources indexed like `items`.
/// Aborts (MRCP_CHECK) if the items violate the total-capacity invariant,
/// which would indicate an invalid combined-resource schedule.
std::vector<ResourceId> matchmake(const Cluster& cluster,
                                  const std::vector<MatchItem>& items);

/// §V.D step 2: distribute `total_map_slots` map slots over max(nm, nr)
/// resources (evenly) and `total_reduce_slots` reduce slots over the
/// first nr of them (as evenly as possible, smaller counts first).
/// Example from the paper: 100 map + 100 reduce slots, nm=50, nr=30 →
/// 50 resources with 2 map slots; the first 20 of the 30 reduce-carrying
/// resources get 3 reduce slots and the remaining 10 get 4.
Cluster compute_regrouping(int total_map_slots, int total_reduce_slots, int nm,
                           int nr);

}  // namespace mrcp
