#include "core/mrcp_rm.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "core/matchmaker.h"
#include "core/model_builder.h"
#include "cp/audit.h"

namespace mrcp {

MrcpRm::MrcpRm(Cluster cluster, MrcpConfig config)
    : cluster_(std::move(cluster)), config_(std::move(config)) {
  MRCP_CHECK(cluster_.size() >= 1);
  pristine_cluster_ = cluster_;
  down_.assign(static_cast<std::size_t>(cluster_.size()), 0);
}

void MrcpRm::handle_resource_down(ResourceId resource, Time now) {
  MRCP_CHECK(resource >= 0 && resource < cluster_.size());
  const auto ri = static_cast<std::size_t>(resource);
  MRCP_CHECK_MSG(down_[ri] == 0, "resource failed twice without repair");
  down_[ri] = 1;
  ++stats_.resource_down_events;
  cluster_.set_resource_capacity(resource, 0, 0);
  MRCP_CHECK_MSG(
      cluster_.total_map_slots() > 0 || cluster_.total_reduce_slots() > 0,
      "every resource is down");
  // Any assignment still running or planned on the failed resource
  // becomes unassigned work; assignments that already ended stay and are
  // swept as completed by the next reschedule().
  for (auto& [id, st] : active_) {
    for (std::size_t ti = 0; ti < st.assignments.size(); ++ti) {
      if (st.completed[ti]) continue;
      Assignment& as = st.assignments[ti];
      if (as.assigned() && as.resource == resource && as.end > now) {
        as = Assignment{};
        ++stats_.tasks_reset_by_failure;
      }
    }
  }
}

void MrcpRm::handle_resource_up(ResourceId resource, Time now) {
  MRCP_CHECK(resource >= 0 && resource < cluster_.size());
  (void)now;
  const auto ri = static_cast<std::size_t>(resource);
  MRCP_CHECK_MSG(down_[ri] != 0, "repair of a resource that is not down");
  down_[ri] = 0;
  ++stats_.resource_up_events;
  const Resource& base = pristine_cluster_.resource(resource);
  cluster_.set_resource_capacity(resource, base.map_capacity,
                                 base.reduce_capacity);
}

void MrcpRm::submit(const Job& job, Time now) {
  MRCP_CHECK_MSG(validate_job(job).empty(), "submitted job is invalid");
  MRCP_CHECK_MSG(active_.find(job.id) == active_.end(), "duplicate job id");
  ++stats_.jobs_submitted;

  if (config_.defer_future_jobs &&
      job.earliest_start - config_.deferral_window > now) {
    deferred_.emplace(job.earliest_start - config_.deferral_window, job);
    return;
  }
  JobState st;
  st.job = job;
  st.completed.assign(job.num_tasks(), 0);
  st.assignments.assign(job.num_tasks(), Assignment{});
  active_.emplace(job.id, std::move(st));
}

Time MrcpRm::next_deferred_release() const {
  if (deferred_.empty()) return kNoTime;
  return deferred_.begin()->first;
}

void MrcpRm::release_deferred(Time now) {
  while (!deferred_.empty() && deferred_.begin()->first <= now) {
    Job job = std::move(deferred_.begin()->second);
    deferred_.erase(deferred_.begin());
    JobState st;
    st.completed.assign(job.num_tasks(), 0);
    st.assignments.assign(job.num_tasks(), Assignment{});
    st.job = std::move(job);
    const JobId id = st.job.id;
    active_.emplace(id, std::move(st));
  }
}

void MrcpRm::sweep_completed(Time now) {
  for (auto it = active_.begin(); it != active_.end();) {
    JobState& st = it->second;
    bool all_done = true;
    Time completion = 0;
    for (std::size_t ti = 0; ti < st.completed.size(); ++ti) {
      if (st.completed[ti]) {
        completion = std::max(completion, st.assignments[ti].end);
        continue;
      }
      const Assignment& as = st.assignments[ti];
      // Paper Table 2 line 10: end <= now means the task finished.
      if (as.assigned() && as.start <= now && as.end <= now) {
        st.completed[ti] = 1;
        completion = std::max(completion, as.end);
      } else {
        all_done = false;
      }
    }
    if (all_done) {
      ++stats_.jobs_completed;
      if (completion > st.job.deadline) ++stats_.jobs_completed_late;
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LiveJob> MrcpRm::collect_live_jobs(Time now) const {
  std::vector<LiveJob> live;
  live.reserve(active_.size());
  for (const auto& [id, st] : active_) {
    LiveJob lj;
    lj.id = id;
    // Table 2 lines 1-4: an earliest start time in the past becomes `now`.
    lj.effective_earliest_start = std::max(st.job.earliest_start, now);
    lj.deadline = st.job.deadline;
    for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
      if (st.completed[ti]) continue;
      const Task& task = st.job.task(ti);
      LiveTask lt;
      lt.task_index = static_cast<int>(ti);
      lt.type = task.type;
      lt.exec_time = task.exec_time;
      lt.res_req = task.res_req;
      lt.net_demand = task.net_demand;
      const Assignment& as = st.assignments[ti];
      const bool freeze_planned =
          config_.replan_scope == ReplanScope::kNewJobsOnly;
      if (as.assigned() && (as.start <= now || freeze_planned)) {
        // Running: pinned (Table 2 lines 11-12). In kNewJobsOnly scope,
        // planned-but-unstarted tasks are frozen in place too.
        lt.started = true;
        lt.resource = as.resource;
        lt.start = as.start;
      }
      lj.tasks.push_back(lt);
    }
    MRCP_CHECK(!lj.tasks.empty());  // fully-completed jobs were swept
    // Workflow precedences: edges whose predecessor (or successor)
    // completed are already satisfied (the executed end lies in the
    // past); only live-live edges constrain the new plan.
    for (const auto& [before, after] : st.job.precedences) {
      if (st.completed[static_cast<std::size_t>(before)] ||
          st.completed[static_cast<std::size_t>(after)]) {
        continue;
      }
      lj.precedences.emplace_back(before, after);
    }
    live.push_back(std::move(lj));
  }
  return live;
}

const Plan& MrcpRm::reschedule(Time now) {
  Stopwatch timer;
  ++stats_.invocations;

  release_deferred(now);
  sweep_completed(now);
  const std::vector<LiveJob> live = collect_live_jobs(now);

  if (!live.empty()) {
    // Separation (§V.D) needs unit demands; fall back to the direct
    // formulation when any task requires more than one slot.
    bool unit_demands = true;
    bool links_active = false;
    bool cluster_constrains_links = false;
    for (const Resource& r : cluster_.resources()) {
      cluster_constrains_links |= r.net_capacity > 0;
    }
    std::size_t live_tasks = 0;
    for (const LiveJob& lj : live) {
      live_tasks += lj.tasks.size();
      for (const LiveTask& lt : lj.tasks) {
        unit_demands &= lt.res_req == 1;
        links_active |= lt.net_demand > 0 && cluster_constrains_links;
      }
    }
    stats_.max_live_tasks = std::max(stats_.max_live_tasks,
                                     static_cast<std::uint64_t>(live_tasks));
    // The §V.D combined-resource abstraction is only sound when every
    // non-running task is re-placed: frozen *future* tasks (kNewJobsOnly)
    // fragment concrete slots, and an interval can fit the summed
    // capacity while fitting no single slot. The frozen-scope mode
    // therefore solves the direct per-resource model — which is cheap
    // there, since only the newly arrived jobs' tasks are free.
    // ... and per-resource link constraints likewise cannot be expressed
    // on the combined resource.
    const bool combined =
        config_.use_separation && unit_demands && !links_active &&
        config_.replan_scope == ReplanScope::kAllUnstarted;

    BuiltModel built = combined ? build_combined_model(cluster_, live)
                                : build_direct_model(cluster_, live);
    const std::string model_err = built.model.validate();
    MRCP_CHECK_MSG(model_err.empty(), model_err.c_str());

    cp::SolveParams params = config_.solve;
    // Vary the LNS seed across invocations, deterministically.
    params.seed = config_.solve.seed + plan_.epoch * 0x9E3779B9ULL;
    cp::SolveResult result = cp::solve(built.model, params);
    MRCP_CHECK_MSG(result.best.valid, "solver returned no solution");
    // Audit builds always validate (MRCP_AUDIT_ENABLED is a compile-time
    // constant, so the check folds away in default builds), and small
    // models additionally face the brute-force constraint oracle.
    if (config_.validate_plans || MRCP_AUDIT_ENABLED) {
      const std::string err = validate_solution(built.model, result.best);
      MRCP_CHECK_MSG(err.empty(), err.c_str());
    }
    MRCP_AUDIT_ONLY({
      if (built.model.num_tasks() <= cp::audit::kAuditModelSizeLimit) {
        MRCP_AUDIT_CHECK(
            cp::audit::brute_force_check_solution(built.model, result.best));
      }
    })
    stats_.solver_decisions += result.stats.decisions;
    stats_.solver_fails += result.stats.fails;

    // Map CP placements back onto cluster resources.
    std::vector<ResourceId> resources(built.task_refs.size(), kNoResource);
    if (combined) {
      std::vector<MatchItem> items(built.task_refs.size());
      for (std::size_t i = 0; i < built.task_refs.size(); ++i) {
        const cp::CpTask& ct = built.model.task(static_cast<cp::CpTaskIndex>(i));
        const auto& placement = result.best.placements[i];
        MatchItem& item = items[i];
        item.type = ct.phase == cp::Phase::kMap ? TaskType::kMap
                                                : TaskType::kReduce;
        item.start = placement.start;
        item.end = placement.start + ct.duration;
        item.pinned = ct.pinned;
        if (ct.pinned) {
          const auto& [job_id, task_index] = built.task_refs[i];
          item.pinned_resource =
              active_.at(job_id)
                  .assignments[static_cast<std::size_t>(task_index)]
                  .resource;
        }
      }
      resources = matchmake(cluster_, items);
    } else {
      for (std::size_t i = 0; i < built.task_refs.size(); ++i) {
        resources[i] =
            static_cast<ResourceId>(result.best.placements[i].resource);
      }
    }

    // Commit the new assignments.
    for (std::size_t i = 0; i < built.task_refs.size(); ++i) {
      const auto& [job_id, task_index] = built.task_refs[i];
      const cp::CpTask& ct = built.model.task(static_cast<cp::CpTaskIndex>(i));
      Assignment& as =
          active_.at(job_id).assignments[static_cast<std::size_t>(task_index)];
      as.resource = resources[i];
      as.start = result.best.placements[i].start;
      as.end = as.start + ct.duration;
    }
  }

  publish_plan(now);
  stats_.total_sched_seconds += timer.elapsed_seconds();
  return plan_;
}

void MrcpRm::publish_plan(Time now) {
  ++plan_.epoch;
  plan_.planned_at = now;
  plan_.tasks.clear();
  for (const auto& [id, st] : active_) {
    for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
      if (st.completed[ti]) continue;
      const Assignment& as = st.assignments[ti];
      MRCP_CHECK(as.assigned());
      PlannedTask pt;
      pt.job = id;
      pt.task_index = static_cast<int>(ti);
      pt.type = st.job.task(ti).type;
      pt.resource = as.resource;
      pt.start = as.start;
      pt.end = as.end;
      pt.started = as.start <= now;
      plan_.tasks.push_back(pt);
    }
  }
  if ((config_.validate_plans || MRCP_AUDIT_ENABLED) && !plan_.tasks.empty()) {
    JobId max_id = 0;
    for (const auto& [id, st] : active_) max_id = std::max(max_id, id);
    std::vector<const Job*> jobs_by_id(static_cast<std::size_t>(max_id) + 1,
                                       nullptr);
    for (const auto& [id, st] : active_) {
      jobs_by_id[static_cast<std::size_t>(id)] = &st.job;
    }
    const std::string err = validate_plan(plan_, cluster_, jobs_by_id);
    MRCP_CHECK_MSG(err.empty(), err.c_str());
  }
}

}  // namespace mrcp
