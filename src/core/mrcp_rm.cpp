#include "core/mrcp_rm.h"

#include <algorithm>
#include <memory>
#include <span>
#include <utility>

#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/fallback_scheduler.h"
#include "core/journal.h"
#include "core/matchmaker.h"
#include "core/model_builder.h"
#include "cp/audit.h"

namespace mrcp {

MrcpRm::MrcpRm(Cluster cluster, MrcpConfig config)
    : cluster_(std::move(cluster)), config_(std::move(config)) {
  MRCP_CHECK(cluster_.size() >= 1);
  pristine_cluster_ = cluster_;
  down_.assign(static_cast<std::size_t>(cluster_.size()), 0);
}

void MrcpRm::handle_resource_down(ResourceId resource, Time now) {
  MRCP_CHECK(resource >= 0 && resource < cluster_.size());
  const auto ri = static_cast<std::size_t>(resource);
  MRCP_CHECK_MSG(down_[ri] == 0, "resource failed twice without repair");
  down_[ri] = 1;
  ++stats_.resource_down_events;
  dirty_ = true;
  if (journal_ != nullptr) {
    journal_append(encode_resource_down_event(resource, now));
  }
  cluster_.set_resource_capacity(resource, 0, 0);
  // A fully-down cluster is survivable: park_unplaceable() parks every
  // live job until a repair restores capacity (pre-degradation code
  // aborted here — see docs/degraded_mode.md).
  // Any assignment still running or planned on the failed resource
  // becomes unassigned work; assignments that already ended stay and are
  // swept as completed by the next reschedule().
  for (auto& [id, st] : active_) {
    for (std::size_t ti = 0; ti < st.assignments.size(); ++ti) {
      if (st.completed[ti]) continue;
      Assignment& as = st.assignments[ti];
      if (as.assigned() && as.resource == resource && as.end > now) {
        as = Assignment{};
        ++stats_.tasks_reset_by_failure;
        // The job lost work to the failure: it must be re-solved, not
        // frozen, by the next incremental invocation.
        dirty_jobs_.insert(id);
      }
    }
  }
}

void MrcpRm::handle_resource_up(ResourceId resource, Time now) {
  MRCP_CHECK(resource >= 0 && resource < cluster_.size());
  (void)now;
  const auto ri = static_cast<std::size_t>(resource);
  MRCP_CHECK_MSG(down_[ri] != 0, "repair of a resource that is not down");
  down_[ri] = 0;
  ++stats_.resource_up_events;
  dirty_ = true;
  if (journal_ != nullptr) {
    journal_append(encode_resource_up_event(resource, now));
  }
  // A repair can unblock parked work: parked jobs join the dirty set so
  // the next incremental invocation re-attempts them (reschedule() also
  // folds parked_ in defensively — see the comment there).
  dirty_jobs_.insert(parked_.begin(), parked_.end());
  const Resource& base = pristine_cluster_.resource(resource);
  cluster_.set_resource_capacity(resource, base.map_capacity,
                                 base.reduce_capacity);
}

void MrcpRm::submit(const Job& job, Time now) {
  MRCP_CHECK_MSG(validate_job(job).empty(), "submitted job is invalid");
  MRCP_CHECK_MSG(active_.find(job.id) == active_.end(), "duplicate job id");
  ++stats_.jobs_submitted;
  if (journal_ != nullptr) journal_append(encode_submit_event(job, now));

  if (config_.defer_future_jobs &&
      job.earliest_start - config_.deferral_window > now) {
    deferred_.emplace(job.earliest_start - config_.deferral_window, job);
    return;
  }
  // Overload backpressure (docs/degraded_mode.md): while invocations run
  // degraded, hold new arrivals in the deferral queue — a streak-scaled
  // delay lets a burst amortize into one recovery solve instead of
  // triggering a doomed full re-solve per arrival. Never taken on the
  // healthy path (streak 0), so default behaviour is unchanged.
  if (config_.degrade_backpressure && degraded_streak_ > 0) {
    // Saturating fold: an extreme configured hold (or a hold near the
    // time horizon) clamps to kMaxTime instead of wrapping into the past.
    const Time hold = saturating_mul(
        config_.backpressure_hold,
        static_cast<std::int64_t>(std::min<std::uint64_t>(degraded_streak_, 8)));
    deferred_.emplace(saturating_add(now, hold), job);
    ++stats_.jobs_backpressured;
    return;
  }
  JobState st;
  st.job = job;
  st.completed.assign(job.num_tasks(), 0);
  st.assignments.assign(job.num_tasks(), Assignment{});
  dirty_jobs_.insert(job.id);
  active_.emplace(job.id, std::move(st));
  dirty_ = true;
}

void MrcpRm::mark_dirty(JobId id) {
  MRCP_CHECK_MSG(active_.count(id) != 0, "mark_dirty of a non-active job");
  dirty_jobs_.insert(id);
  dirty_ = true;
}

Time MrcpRm::next_deferred_release() const {
  Time next = deferred_.empty() ? kNoTime : deferred_.begin()->first;
  if (park_retry_at_ != kNoTime && (next == kNoTime || park_retry_at_ < next)) {
    next = park_retry_at_;
  }
  return next;
}

void MrcpRm::release_deferred(Time now) {
  while (!deferred_.empty() && deferred_.begin()->first <= now) {
    Job job = std::move(deferred_.begin()->second);
    deferred_.erase(deferred_.begin());
    if (journal_ != nullptr) journal_append(encode_release_event(job.id, now));
    JobState st;
    st.completed.assign(job.num_tasks(), 0);
    st.assignments.assign(job.num_tasks(), Assignment{});
    st.job = std::move(job);
    const JobId id = st.job.id;
    dirty_jobs_.insert(id);
    active_.emplace(id, std::move(st));
    dirty_ = true;
  }
}

void MrcpRm::sweep_completed(Time now) {
  for (auto it = active_.begin(); it != active_.end();) {
    JobState& st = it->second;
    bool all_done = true;
    Time completion;
    for (std::size_t ti = 0; ti < st.completed.size(); ++ti) {
      if (st.completed[ti]) {
        completion = std::max(completion, st.assignments[ti].end);
        continue;
      }
      const Assignment& as = st.assignments[ti];
      // Paper Table 2 line 10: end <= now means the task finished.
      if (as.assigned() && as.start <= now && as.end <= now) {
        st.completed[ti] = 1;
        completion = std::max(completion, as.end);
      } else {
        all_done = false;
      }
    }
    if (all_done) {
      ++stats_.jobs_completed;
      if (completion > st.job.deadline) ++stats_.jobs_completed_late;
      if (journal_ != nullptr) {
        journal_append(encode_completion_event(it->first, completion));
      }
      // Dirty-set invariant: dirty_jobs_ ⊆ active jobs. A completed
      // job's placements leave the boundary by dropping out of the live
      // set — the remaining frozen assignments stay feasible (capacity
      // only got freer), so completion dirties nothing else.
      dirty_jobs_.erase(it->first);
      it = active_.erase(it);
      // The live set shrank: a degraded-streak skip must not republish
      // the stale plan past this point.
      dirty_ = true;
    } else {
      ++it;
    }
  }
}

std::vector<LiveJob> MrcpRm::collect_live_jobs(Time now, bool freeze_planned,
                                               std::set<JobId>* dirty) {
  std::vector<LiveJob> live;
  live.reserve(active_.size());
  for (const auto& [id, st] : active_) {
    // Incremental mode (dirty != nullptr): freezing is per job — jobs
    // outside the dirty set form the frozen boundary, dirty jobs are
    // re-solved from free. A clean job is only sound to freeze when
    // every non-completed task still has an assignment and every
    // planned-but-unstarted one sits on an up resource; anything else
    // means the dirty-set bookkeeping missed an event, so the job is
    // promoted to dirty (counted — the audit tests assert this safety
    // net never fires).
    bool job_freeze = freeze_planned;
    if (dirty != nullptr) {
      job_freeze = dirty->count(id) == 0;
      if (job_freeze) {
        for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
          if (st.completed[ti]) continue;
          const Assignment& as = st.assignments[ti];
          const bool sound =
              as.assigned() &&
              (as.start <= now ||
               down_[static_cast<std::size_t>(as.resource)] == 0);
          if (!sound) {
            job_freeze = false;
            dirty->insert(id);
            ++stats_.dirty_promotions;
            break;
          }
        }
      }
    }
    LiveJob lj;
    lj.id = id;
    // Table 2 lines 1-4: an earliest start time in the past becomes `now`.
    lj.effective_earliest_start = std::max(st.job.earliest_start, now);
    lj.deadline = st.job.deadline;
    // Resources permanently burned per anti-affinity group: a *completed*
    // member's host is off-limits to every live sibling, but the
    // completed task itself is no longer in the model to enforce that —
    // compile the exclusion into each live member instead.
    std::map<int, std::vector<ResourceId>> burned;
    for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
      if (!st.completed[ti]) continue;
      const int group = st.job.task(ti).affinity_group;
      if (group < 0) continue;
      const ResourceId host = st.assignments[ti].resource;
      auto& list = burned[group];
      if (std::find(list.begin(), list.end(), host) == list.end()) {
        list.push_back(host);
      }
    }
    for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
      if (st.completed[ti]) continue;
      const Task& task = st.job.task(ti);
      LiveTask lt;
      lt.task_index = static_cast<int>(ti);
      lt.type = task.type;
      lt.exec_time = task.exec_time;
      lt.res_req = task.res_req;
      lt.net_demand = task.net_demand;
      lt.candidates = task.candidates;
      lt.racks = task.racks;
      lt.affinity_group = task.affinity_group;
      if (task.affinity_group >= 0) {
        const auto bit = burned.find(task.affinity_group);
        if (bit != burned.end()) lt.anti_affinity_exclude = bit->second;
      }
      const Assignment& as = st.assignments[ti];
      // Freezing never pins a planned assignment onto a down resource:
      // handle_resource_down resets those, so one surviving here would
      // be a stale-plan resurrection — treat the task as free instead.
      const bool frozen =
          job_freeze && as.assigned() &&
          down_[static_cast<std::size_t>(as.resource)] == 0;
      if (as.assigned() && (as.start <= now || frozen)) {
        // Running: pinned (Table 2 lines 11-12). With freeze_planned
        // (kNewJobsOnly scope, and the degraded-mode retry rungs),
        // planned-but-unstarted tasks are frozen in place too.
        lt.started = true;
        lt.resource = as.resource;
        lt.start = as.start;
      }
      lj.tasks.push_back(lt);
    }
    MRCP_CHECK(!lj.tasks.empty());  // fully-completed jobs were swept
    // Workflow precedences: edges whose predecessor (or successor)
    // completed are already satisfied (the executed end lies in the
    // past); only live-live edges constrain the new plan.
    for (const auto& [before, after] : st.job.precedences) {
      if (st.completed[static_cast<std::size_t>(before)] ||
          st.completed[static_cast<std::size_t>(after)]) {
        continue;
      }
      lj.precedences.emplace_back(before, after);
    }
    // Incremental per-job freezing never needs the demotion fixpoint: a
    // frozen (clean) job has *every* live task marked started, so no
    // frozen task can have a free predecessor, and a dirty job has no
    // frozen tasks at all. The fixpoint below serves the whole-model
    // freeze of kNewJobsOnly and the degraded-mode retry rungs.
    if (freeze_planned && dirty == nullptr) {
      // A frozen assignment is only sound while every predecessor of the
      // task is still accounted for. When a failure resets a map (or a
      // workflow predecessor) to free, the dependent's old start time
      // assumed a completion that no longer exists — keeping it pinned
      // would let the plan run a reduce before its maps. Demote such
      // dependents back to free, to fixpoint (demotions cascade along
      // precedence chains). Tasks that actually started are never
      // demoted: a started task's predecessors all completed, and
      // completed tasks are never reset.
      std::map<int, std::size_t> by_flat;
      for (std::size_t i = 0; i < lj.tasks.size(); ++i) {
        by_flat.emplace(lj.tasks[i].task_index, i);
      }
      auto really_started = [&](const LiveTask& lt) {
        return lt.started &&
               st.assignments[static_cast<std::size_t>(lt.task_index)].start <=
                   now;
      };
      bool changed = true;
      while (changed) {
        changed = false;
        bool any_free_map = false;
        for (const LiveTask& lt : lj.tasks) {
          any_free_map |= lt.type == TaskType::kMap && !lt.started;
        }
        for (LiveTask& lt : lj.tasks) {
          if (!lt.started || really_started(lt)) continue;
          bool free_pred = any_free_map && lt.type == TaskType::kReduce;
          for (const auto& [before, after] : lj.precedences) {
            if (after != lt.task_index) continue;
            const auto bit = by_flat.find(before);
            free_pred |= bit != by_flat.end() && !lj.tasks[bit->second].started;
          }
          if (free_pred) {
            lt.started = false;
            lt.resource = kNoResource;
            lt.start = kNoTime;
            changed = true;
          }
        }
      }
    }
    live.push_back(std::move(lj));
  }
  return live;
}

namespace {

/// Is `r` (by id) within the task's placement constraints — candidate
/// list, rack locality, and resources burned by completed anti-affinity
/// siblings?
bool placement_allows(const Cluster& cluster, const LiveTask& lt,
                      ResourceId r) {
  if (!lt.candidates.empty() &&
      std::find(lt.candidates.begin(), lt.candidates.end(), r) ==
          lt.candidates.end()) {
    return false;
  }
  if (!lt.racks.empty()) {
    const int rack = cluster.resource(r).rack;
    if (std::find(lt.racks.begin(), lt.racks.end(), rack) == lt.racks.end()) {
      return false;
    }
  }
  return std::find(lt.anti_affinity_exclude.begin(),
                   lt.anti_affinity_exclude.end(),
                   r) == lt.anti_affinity_exclude.end();
}

/// Can `r` host `lt` at all: capacity, links, placement constraints.
bool resource_hosts(const Cluster& cluster, const LiveTask& lt, ResourceId r,
                    bool links_constrained) {
  const Resource& res = cluster.resource(r);
  if (res.capacity(lt.type) < lt.res_req) return false;
  if (lt.net_demand > 0 && links_constrained &&
      res.net_capacity < lt.net_demand) {
    return false;
  }
  return placement_allows(cluster, lt, r);
}

/// Mirror of Model::validate()'s per-task fit check against a concrete
/// cluster: can some resource host the task at all?
bool task_fits_somewhere(const Cluster& cluster, const LiveTask& lt,
                         bool links_constrained) {
  for (ResourceId r = 0; r < cluster.size(); ++r) {
    if (resource_hosts(cluster, lt, r, links_constrained)) return true;
  }
  return false;
}

/// Hall-style necessary condition for a job's anti-affinity groups: the
/// union of eligible hosts across a group's live members must be at
/// least the member count, or no pairwise-distinct placement exists.
/// (Started members are eligible only where they already run.) This is a
/// park trigger, not a completeness proof — the CP search settles the
/// rest.
bool affinity_groups_satisfiable(const Cluster& cluster, const LiveJob& lj,
                                 bool links_constrained) {
  std::map<int, std::pair<int, std::vector<ResourceId>>> groups;
  for (const LiveTask& lt : lj.tasks) {
    if (lt.affinity_group < 0) continue;
    auto& [members, hosts] = groups[lt.affinity_group];
    ++members;
    auto add_host = [&hosts = hosts](ResourceId r) {
      if (std::find(hosts.begin(), hosts.end(), r) == hosts.end()) {
        hosts.push_back(r);
      }
    };
    if (lt.started) {
      add_host(lt.resource);
      continue;
    }
    for (ResourceId r = 0; r < cluster.size(); ++r) {
      if (resource_hosts(cluster, lt, r, links_constrained)) add_host(r);
    }
  }
  for (const auto& [group, entry] : groups) {
    if (entry.second.size() < static_cast<std::size_t>(entry.first)) {
      return false;
    }
  }
  return true;
}

bool cluster_links_constrained(const Cluster& cluster) {
  for (const Resource& r : cluster.resources()) {
    if (r.net_capacity > 0) return true;
  }
  return false;
}

std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer over the running hash: cheaper than byte-wise
  // FNV (the fingerprint walks every live task every invocation) with
  // full 64-bit diffusion per field.
  return splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

/// Content fingerprint of everything build_direct_model() consumes: the
/// cluster's working capacities plus the full live set (ids, windows,
/// per-task shape and pin state, precedences). Two invocations with
/// equal fingerprints would build structurally identical models, so the
/// persistent model + SearchRoot can be reused; the audit layer
/// cross-checks equality on every hit (collisions are detectable, not
/// silently trusted).
std::uint64_t live_fingerprint(const Cluster& cluster,
                               std::span<const LiveJob> live) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Resource& r : cluster.resources()) {
    h = fp_mix(h, static_cast<std::uint64_t>(r.map_capacity));
    h = fp_mix(h, static_cast<std::uint64_t>(r.reduce_capacity));
    h = fp_mix(h, static_cast<std::uint64_t>(r.net_capacity));
    h = fp_mix(h, static_cast<std::uint64_t>(r.speed_permille));
    h = fp_mix(h, static_cast<std::uint64_t>(r.rack));
  }
  h = fp_mix(h, live.size());
  for (const LiveJob& lj : live) {
    h = fp_mix(h, static_cast<std::uint64_t>(lj.id));
    h = fp_mix(h, static_cast<std::uint64_t>(lj.effective_earliest_start.count()));
    h = fp_mix(h, static_cast<std::uint64_t>(lj.deadline.count()));
    h = fp_mix(h, lj.tasks.size());
    for (const LiveTask& lt : lj.tasks) {
      h = fp_mix(h, static_cast<std::uint64_t>(lt.task_index));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.type));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.exec_time.count()));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.res_req));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.net_demand));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.started));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.resource));
      h = fp_mix(h, static_cast<std::uint64_t>(lt.start.count()));
      h = fp_mix(h, lt.candidates.size());
      for (const ResourceId r : lt.candidates) {
        h = fp_mix(h, static_cast<std::uint64_t>(r));
      }
      h = fp_mix(h, lt.racks.size());
      for (const int rack : lt.racks) {
        h = fp_mix(h, static_cast<std::uint64_t>(rack));
      }
      h = fp_mix(h, static_cast<std::uint64_t>(lt.affinity_group));
      h = fp_mix(h, lt.anti_affinity_exclude.size());
      for (const ResourceId r : lt.anti_affinity_exclude) {
        h = fp_mix(h, static_cast<std::uint64_t>(r));
      }
    }
    h = fp_mix(h, lj.precedences.size());
    for (const auto& [before, after] : lj.precedences) {
      h = fp_mix(h, static_cast<std::uint64_t>(before));
      h = fp_mix(h, static_cast<std::uint64_t>(after));
    }
  }
  return h;
}

/// Keep only a job's started tasks (and the precedence edges among
/// them); the rest is parked. Returns false when nothing remains.
bool keep_started_tasks_only(LiveJob& lj) {
  std::vector<LiveTask> kept;
  for (const LiveTask& lt : lj.tasks) {
    if (lt.started) kept.push_back(lt);
  }
  if (kept.empty()) return false;
  std::vector<std::pair<int, int>> kept_edges;
  auto present = [&](int task_index) {
    for (const LiveTask& lt : kept) {
      if (lt.task_index == task_index) return true;
    }
    return false;
  };
  for (const auto& [before, after] : lj.precedences) {
    if (present(before) && present(after)) kept_edges.emplace_back(before, after);
  }
  lj.tasks = std::move(kept);
  lj.precedences = std::move(kept_edges);
  return true;
}

}  // namespace

void MrcpRm::park_unplaceable(std::vector<LiveJob>& live, Time now) {
  parked_.clear();
  const bool cur_links = cluster_links_constrained(cluster_);
  const bool pristine_links = cluster_links_constrained(pristine_cluster_);
  for (auto it = live.begin(); it != live.end();) {
    LiveJob& lj = *it;
    bool park = false;
    for (const LiveTask& lt : lj.tasks) {
      if (lt.started) continue;  // occupies capacity it already holds
      if (task_fits_somewhere(cluster_, lt, cur_links)) continue;
      // Unplaceable against the current (post-failure) capacities. If
      // even the pristine cluster cannot host it, no amount of repair
      // will help — that is a workload error and stays fatal, exactly
      // like the pre-degradation model-validate abort.
      MRCP_CHECK_MSG(task_fits_somewhere(pristine_cluster_, lt, pristine_links),
                     "task demand exceeds every resource in the cluster");
      park = true;
      break;
    }
    // Each task fitting *somewhere* is not enough under anti-affinity:
    // the group needs pairwise-distinct hosts. Same fatal-vs-park split
    // as above, against the pristine cluster.
    if (!park && !affinity_groups_satisfiable(cluster_, lj, cur_links)) {
      MRCP_CHECK_MSG(
          affinity_groups_satisfiable(pristine_cluster_, lj, pristine_links),
          "anti-affinity group larger than its eligible resource pool");
      park = true;
    }
    if (!park) {
      ++it;
      continue;
    }
    // Park the whole job's unstarted work (a partial park would split
    // the job's map->reduce barrier between two planning regimes): its
    // planned-but-unstarted assignments are released so they cannot
    // double-book capacity against the model, and only started tasks —
    // which hold real slots the solver must plan around — stay live.
    parked_.insert(lj.id);
    ++stats_.jobs_parked;
    JobState& st = active_.at(lj.id);
    for (std::size_t ti = 0; ti < st.assignments.size(); ++ti) {
      if (st.completed[ti]) continue;
      Assignment& as = st.assignments[ti];
      if (as.assigned() && as.start > now) as = Assignment{};
    }
    it = keep_started_tasks_only(lj) ? it + 1 : live.erase(it);
  }
}

void MrcpRm::strip_parked(std::vector<LiveJob>& live) const {
  for (auto it = live.begin(); it != live.end();) {
    if (parked_.count(it->id) == 0) {
      ++it;
      continue;
    }
    it = keep_started_tasks_only(*it) ? it + 1 : live.erase(it);
  }
}

cp::Solution MrcpRm::warm_start_from_assignments(const BuiltModel& built) const {
  cp::Solution sol;
  const std::size_t n = built.task_refs.size();
  sol.placements.assign(n, cp::TaskPlacement{});
  for (std::size_t i = 0; i < n; ++i) {
    const cp::CpTask& ct = built.model.task(static_cast<cp::CpTaskIndex>(i));
    if (ct.pinned) {
      sol.placements[i] = cp::TaskPlacement{ct.pinned_resource, ct.pinned_start};
      continue;
    }
    const auto& [job_id, task_index] = built.task_refs[i];
    const Assignment& as =
        active_.at(job_id).assignments[static_cast<std::size_t>(task_index)];
    // Any free task without a usable previous placement voids the warm
    // start: evaluate_solution needs every task decided, and a partial
    // seed would mix two plan generations.
    if (!as.assigned() || down_[static_cast<std::size_t>(as.resource)] != 0) {
      return cp::Solution{};
    }
    sol.placements[i] = cp::TaskPlacement{
        static_cast<cp::CpResourceIndex>(as.resource), as.start};
  }
  evaluate_solution(built.model, sol);
  // The old placements can violate the new model (an earliest start
  // clamped past a planned start, capacity lost to a fault): then they
  // are not a solution and cannot seed the bound.
  if (!validate_solution(built.model, sol).empty()) return cp::Solution{};
  return sol;
}

DegradationCounts MrcpRm::degradation_counts() const {
  DegradationCounts counts = ledger_.counts();
  counts.jobs_backpressured = stats_.jobs_backpressured;
  return counts;
}

const Plan& MrcpRm::reschedule(Time now) {
  Stopwatch timer;
  ++stats_.invocations;

  release_deferred(now);
  sweep_completed(now);

  InvocationRecord rec;
  rec.sim_time = now;

  const bool incremental = config_.replan_scope == ReplanScope::kDirtyOnly;
  if (incremental) {
    // Parked jobs always rejoin the dirty set before the fast-path
    // check: every invocation re-attempts them, so a job parked in a
    // previous epoch whose blocking resource has since recovered
    // re-enters the solve instead of staying stripped, and an
    // empty-dirty skip can never starve parked work.
    dirty_jobs_.insert(parked_.begin(), parked_.end());
  }

  // Backpressure short-circuit: while degraded, an invocation whose live
  // set did not change since the last full pass (arrivals were
  // backpressure-deferred, nothing completed early, no fault activity)
  // republishes the current plan instead of burning another doomed
  // solve. Gated on the streak, so the healthy path never takes it.
  if (degraded_streak_ > 0 && !dirty_ && parked_.empty()) {
    rec.outcome = InvocationOutcome::kSkipped;
    publish_plan(now);
    rec.epoch = plan_.epoch;
    ledger_.record(rec);
    stats_.total_sched_seconds += timer.elapsed_seconds();
    return plan_;
  }

  // Incremental fast path: an empty dirty set means every unstarted
  // task of every active job still holds a sound assignment — the
  // current plan is re-published unchanged (a repair with nothing parked
  // lands here: re-optimizing clean jobs onto the recovered capacity is
  // a quality opportunity the incremental scope deliberately forgoes).
  if (incremental && dirty_jobs_.empty() && !active_.empty()) {
    rec.outcome = InvocationOutcome::kSkipped;
    publish_plan(now);
    rec.epoch = plan_.epoch;
    ledger_.record(rec);
    stats_.total_sched_seconds += timer.elapsed_seconds();
    return plan_;
  }
  dirty_ = false;
  park_retry_at_ = kNoTime;

  std::vector<LiveJob> live =
      incremental
          ? collect_live_jobs(now, /*freeze_planned=*/false, &dirty_jobs_)
          : collect_live_jobs(now,
                              config_.replan_scope == ReplanScope::kNewJobsOnly);
  park_unplaceable(live, now);
  rec.parked_jobs = parked_.size();
  if (incremental) {
    rec.dirty_jobs = dirty_jobs_.size();
    for (const LiveJob& lj : live) {
      for (const LiveTask& lt : lj.tasks) {
        if (lt.started && lt.start > now) ++rec.frozen_tasks;
      }
    }
  } else {
    rec.dirty_jobs = active_.size();
  }

  InvocationOutcome outcome =
      parked_.empty() ? InvocationOutcome::kIdle : InvocationOutcome::kParked;

  if (!live.empty()) {
    // Separation (§V.D) needs unit demands; fall back to the direct
    // formulation when any task requires more than one slot.
    bool unit_demands = true;
    bool links_active = false;
    bool cluster_constrains_links = false;
    for (const Resource& r : cluster_.resources()) {
      cluster_constrains_links |= r.net_capacity > 0;
    }
    bool placement_active = false;
    std::size_t live_tasks = 0;
    for (const LiveJob& lj : live) {
      live_tasks += lj.tasks.size();
      for (const LiveTask& lt : lj.tasks) {
        unit_demands &= lt.res_req == 1;
        links_active |= lt.net_demand > 0 && cluster_constrains_links;
        placement_active |= !lt.candidates.empty() || !lt.racks.empty() ||
                            lt.affinity_group >= 0 ||
                            !lt.anti_affinity_exclude.empty();
      }
    }
    stats_.max_live_tasks = std::max(stats_.max_live_tasks,
                                     static_cast<std::uint64_t>(live_tasks));
    // The §V.D combined-resource abstraction is only sound when every
    // non-running task is re-placed: frozen *future* tasks (kNewJobsOnly
    // and the kDirtyOnly frozen boundary) fragment concrete slots, and
    // an interval can fit the summed capacity while fitting no single
    // slot. The frozen-scope modes therefore solve the direct
    // per-resource model — which is cheap there, since only the dirty
    // jobs' tasks are free.
    // ... and per-resource link constraints likewise cannot be expressed
    // on the combined resource — nor can per-machine speeds (unless they
    // are uniform, which the combined resource then carries) or any
    // placement constraint, which names concrete machines.
    const bool combined =
        config_.use_separation && unit_demands && !links_active &&
        !placement_active && cluster_.uniform_speed_permille() > 0 &&
        config_.replan_scope == ReplanScope::kAllUnstarted;

    BuiltModel local_built;
    const BuiltModel* built = nullptr;
    const cp::SearchRoot* shared_root = nullptr;
    if (incremental && config_.reuse_model_cache) {
      // Persistent model: reuse the cached model + SearchRoot whenever
      // the live-state fingerprint recurs (park-retry storms, repeated
      // re-solves of one dirty region) — the whole model-build and
      // pinned-replay cost drops out of the invocation.
      const std::uint64_t fp = live_fingerprint(cluster_, live);
      if (model_cache_ != nullptr && model_cache_->fingerprint == fp) {
        ++stats_.model_cache_hits;
        rec.model_cache_hit = true;
        if (config_.validate_plans || MRCP_AUDIT_ENABLED) {
          // A fingerprint collision would silently solve a stale model;
          // audit builds verify the cached model against a fresh build.
          BuiltModel fresh = build_direct_model(cluster_, live);
          MRCP_CHECK_MSG(
              structurally_equal(fresh.model, model_cache_->built.model),
              "model cache hit does not match a freshly built model");
        }
      } else {
        ++stats_.model_cache_misses;
        auto entry = std::make_unique<ModelCacheEntry>();
        entry->fingerprint = fp;
        entry->built = build_direct_model(cluster_, live);
        const std::string model_err = entry->built.model.validate();
        MRCP_CHECK_MSG(model_err.empty(), model_err.c_str());
        entry->root.emplace(entry->built.model);
        model_cache_ = std::move(entry);
      }
      built = &model_cache_->built;
      shared_root = &*model_cache_->root;
    } else {
      local_built = combined ? build_combined_model(cluster_, live)
                             : build_direct_model(cluster_, live);
      // After park_unplaceable() every free task has a capable host, so a
      // validation failure here is an internal invariant violation, not a
      // runtime condition — it stays fatal.
      const std::string model_err = local_built.model.validate();
      MRCP_CHECK_MSG(model_err.empty(), model_err.c_str());
      built = &local_built;
    }

    cp::SolveParams params = config_.solve;
    // Vary the LNS seed across invocations, deterministically.
    params.seed = config_.solve.seed + plan_.epoch * 0x9E3779B9ULL;
    // One absolute watchdog bounds the whole invocation; each attempt
    // additionally gets 64x its own soft budget. The margins are wide on
    // purpose: a first descent legitimately overshoots the soft budget
    // (nothing interrupts a descent that has no solution yet), and the
    // watchdog must only catch runaways — with default budgets no search
    // ever aborts, even on a loaded machine, and the solve is bit-for-bit
    // the pre-degradation one. Shrinking the budget shrinks the watchdog
    // proportionally, which is how near-zero budgets force degradation.
    const double invocation_budget_s =
        config_.solver_deadline_s > 0.0 ? config_.solver_deadline_s
                                        : config_.solve.time_limit_s * 256.0;
    Deadline invocation_deadline(invocation_budget_s);
    Deadline primary_deadline(std::min(
        invocation_deadline.remaining_seconds(), params.time_limit_s * 64.0));
    params.hard_deadline = &primary_deadline;

    auto account = [&](const cp::SolveResult& r) {
      ++stats_.solve_attempts;
      ++rec.attempts;
      rec.last_status = r.status;
      rec.solve_wall_seconds += r.wall_seconds;
      stats_.solve_wall_seconds += r.wall_seconds;
      stats_.solver_decisions += r.stats.decisions;
      stats_.solver_fails += r.stats.fails;
    };

    // Warm start: seed the solve with the previous invocation's
    // assignments when they still form a feasible solution of the new
    // model. The incumbent bound prunes strictly-worse branches, and the
    // deterministic winner fold keeps the seed only when no descent
    // strictly beats it — the published plan is never worse than the one
    // the invocation started from.
    cp::Solution warm;
    const cp::Solution* warm_ptr = nullptr;
    if (incremental && config_.warm_start_previous) {
      warm = warm_start_from_assignments(*built);
      if (warm.valid) {
        warm_ptr = &warm;
        ++stats_.warm_starts_used;
      }
    }

    cp::SolveResult result = cp::solve(built->model, params, warm_ptr,
                                       shared_root);
    account(result);

    cp::Solution chosen;
    const BuiltModel* solved = built;
    BuiltModel shrunk_built;  // owns the frozen model when a retry rung wins

    if (result.best.valid) {
      outcome = InvocationOutcome::kCpPrimary;
      chosen = std::move(result.best);
    } else {
      // Escalation ladder (docs/degraded_mode.md): the hard watchdog cut
      // every descent short. Shrink the model by freezing all planned
      // assignments in place (LNS-style neighbourhood fixing), double
      // the soft budget per rung, seed each rung with the EDF fallback's
      // schedule for that model, and finally publish the fallback plan
      // outright.
      MRCP_CHECK_MSG(config_.fallback_enabled, "solver returned no solution");
      cp::Solution parachute;  // EDF seed returned by an aborted retry
      BuiltModel parachute_built;
      for (int retry = 1;
           retry <= config_.max_solve_retries && !invocation_deadline.expired();
           ++retry) {
        // The combined-resource abstraction is unsound with frozen
        // fragments (see the kNewJobsOnly comment above), so retries
        // always solve the direct model.
        std::vector<LiveJob> frozen = collect_live_jobs(now, true);
        strip_parked(frozen);
        if (frozen.empty()) break;
        BuiltModel shrunk = build_direct_model(cluster_, frozen);
        const std::string frozen_err = shrunk.model.validate();
        MRCP_CHECK_MSG(frozen_err.empty(), frozen_err.c_str());

        cp::SolveParams retry_params = params;
        // ldexp, not (1 << retry): a configured max_solve_retries >= 31
        // would make the int shift UB. The exponent is additionally
        // capped — doublings beyond 2^40 are already far past any
        // invocation watchdog, so the budget simply saturates there.
        retry_params.time_limit_s =
            std::ldexp(config_.solve.time_limit_s, std::min(retry, 40));
        retry_params.improvement_fails = 0;  // descent-only: cheapest
        retry_params.lns_iterations = 0;     // complete schedule wins
        Deadline retry_deadline(
            std::min(invocation_deadline.remaining_seconds(),
                     retry_params.time_limit_s * 64.0));
        retry_params.hard_deadline = &retry_deadline;

        const cp::Solution seed = fallback_schedule(shrunk.model);
        cp::SolveResult rr = cp::solve(shrunk.model, retry_params,
                                       seed.valid ? &seed : nullptr);
        account(rr);
        if (rr.best.valid && rr.stats.solutions > 0) {
          // The rung completed a descent of its own (at worst tying the
          // EDF incumbent, never worse — warm starts only prune).
          outcome = InvocationOutcome::kCpRetry;
          chosen = std::move(rr.best);
          shrunk_built = std::move(shrunk);
          solved = &shrunk_built;
          break;
        }
        if (rr.best.valid && !parachute.valid) {
          // Aborted again: rr.best is exactly the EDF seed. Keep it as a
          // minimal-churn fallback plan while the budget escalates.
          parachute = std::move(rr.best);
          parachute_built = std::move(shrunk);
        }
      }
      if (!chosen.valid) {
        outcome = InvocationOutcome::kFallback;
        ++stats_.fallback_plans;
        if (parachute.valid) {
          // Frozen-model EDF plan: respects every previous placement.
          chosen = std::move(parachute);
          shrunk_built = std::move(parachute_built);
          solved = &shrunk_built;
        } else {
          // Full-model EDF plan — deterministic, never times out.
          chosen = fallback_schedule(built->model);
          if (!chosen.valid && built->model.num_affinity_groups() > 0) {
            // The greedy EDF pass can paint itself into a corner under
            // anti-affinity (it never backtracks a group member off a
            // contended host). A first-solution CP search without a hard
            // deadline is complete — the soft budget never interrupts a
            // descent that has no solution yet — so it settles
            // feasibility outright.
            cp::SolveParams complete = params;
            complete.improvement_fails = 0;
            complete.lns_iterations = 0;
            complete.portfolio = {cp::JobOrdering::kEdf};
            complete.hard_deadline = nullptr;
            cp::SolveResult cr = cp::solve(built->model, complete);
            account(cr);
            chosen = std::move(cr.best);
          }
          MRCP_CHECK_MSG(chosen.valid,
                         "fallback scheduler failed on a validated model");
        }
      }
    }

    const BuiltModel& bm = *solved;
    // Audit builds always validate (MRCP_AUDIT_ENABLED is a compile-time
    // constant, so the check folds away in default builds), and small
    // models additionally face the brute-force constraint oracle —
    // fallback-produced plans included.
    if (config_.validate_plans || MRCP_AUDIT_ENABLED) {
      const std::string err = validate_solution(bm.model, chosen);
      MRCP_CHECK_MSG(err.empty(), err.c_str());
    }
    MRCP_AUDIT_ONLY({
      if (bm.model.num_tasks() <= cp::audit::kAuditModelSizeLimit) {
        MRCP_AUDIT_CHECK(cp::audit::brute_force_check_solution(bm.model, chosen));
      }
    })

    // Map CP placements back onto cluster resources.
    std::vector<ResourceId> resources(bm.task_refs.size(), kNoResource);
    if (bm.combined) {
      std::vector<MatchItem> items(bm.task_refs.size());
      for (std::size_t i = 0; i < bm.task_refs.size(); ++i) {
        const cp::CpTask& ct = bm.model.task(static_cast<cp::CpTaskIndex>(i));
        const auto& placement = chosen.placements[i];
        MatchItem& item = items[i];
        item.type = ct.phase == cp::Phase::kMap ? TaskType::kMap
                                                : TaskType::kReduce;
        item.start = placement.start;
        item.end = placement.start +
                   bm.model.duration_on(static_cast<cp::CpTaskIndex>(i),
                                        placement.resource);
        item.pinned = ct.pinned;
        if (ct.pinned) {
          const auto& [job_id, task_index] = bm.task_refs[i];
          item.pinned_resource =
              active_.at(job_id)
                  .assignments[static_cast<std::size_t>(task_index)]
                  .resource;
        }
      }
      resources = matchmake(cluster_, items);
    } else {
      for (std::size_t i = 0; i < bm.task_refs.size(); ++i) {
        resources[i] = static_cast<ResourceId>(chosen.placements[i].resource);
      }
    }

    // Commit the new assignments. Durations are resource-scaled: in
    // combined mode the single CP resource carries the cluster's uniform
    // speed, so placements[i].resource is the right scaling source in
    // both modes (matchmade hosts all run at that same speed).
    for (std::size_t i = 0; i < bm.task_refs.size(); ++i) {
      const auto& [job_id, task_index] = bm.task_refs[i];
      Assignment& as =
          active_.at(job_id).assignments[static_cast<std::size_t>(task_index)];
      as.resource = resources[i];
      as.start = chosen.placements[i].start;
      as.end = as.start + bm.model.duration_on(static_cast<cp::CpTaskIndex>(i),
                                               chosen.placements[i].resource);
    }
    rec.live_tasks = bm.model.num_tasks();
  }

  // The invocation consumed the dirty set: every dirty job either got
  // fresh assignments committed above or was parked (and parked jobs
  // re-enter the dirty set at the next invocation's fold).
  dirty_jobs_.clear();

  rec.outcome = outcome;
  const bool degraded = outcome == InvocationOutcome::kCpRetry ||
                        outcome == InvocationOutcome::kFallback ||
                        outcome == InvocationOutcome::kParked ||
                        !parked_.empty();
  degraded_streak_ = degraded ? degraded_streak_ + 1 : 0;
  if (!parked_.empty()) {
    // Saturating: a park_retry_delay near the horizon pins the retry at
    // kMaxTime instead of wrapping negative (and so never waking up).
    park_retry_at_ = saturating_add(now, config_.park_retry_delay);
    if (journal_ != nullptr) {
      journal_append(encode_park_retry_event(park_retry_at_, parked_));
    }
  }

  publish_plan(now);
  rec.epoch = plan_.epoch;
  ledger_.record(rec);
  stats_.total_sched_seconds += timer.elapsed_seconds();
  return plan_;
}

void MrcpRm::publish_plan(Time now) {
  ++plan_.epoch;
  plan_.planned_at = now;
  plan_.tasks.clear();
  plan_.parked_tasks = 0;
  for (const auto& [id, st] : active_) {
    for (std::size_t ti = 0; ti < st.job.num_tasks(); ++ti) {
      if (st.completed[ti]) continue;
      const Assignment& as = st.assignments[ti];
      if (!as.assigned()) {
        // Only a parked job may publish unassigned work: its unstarted
        // tasks wait for capacity and are deliberately absent from the
        // plan (the driver cancels their stale events; see
        // docs/degraded_mode.md). Anything else is an internal error.
        MRCP_CHECK_MSG(parked_.count(id) != 0,
                       "unassigned live task outside a parked job");
        ++plan_.parked_tasks;
        continue;
      }
      PlannedTask pt;
      pt.job = id;
      pt.task_index = static_cast<int>(ti);
      pt.type = st.job.task(ti).type;
      pt.resource = as.resource;
      pt.start = as.start;
      pt.end = as.end;
      pt.started = as.start <= now;
      plan_.tasks.push_back(pt);
    }
  }
  if ((config_.validate_plans || MRCP_AUDIT_ENABLED) && !plan_.tasks.empty()) {
    JobId max_id = 0;
    for (const auto& [id, st] : active_) max_id = std::max(max_id, id);
    std::vector<const Job*> jobs_by_id(static_cast<std::size_t>(max_id) + 1,
                                       nullptr);
    for (const auto& [id, st] : active_) {
      jobs_by_id[static_cast<std::size_t>(id)] = &st.job;
    }
    const std::string err = validate_plan(plan_, cluster_, jobs_by_id);
    MRCP_CHECK_MSG(err.empty(), err.c_str());
  }
  if (journal_ != nullptr) journal_append(encode_plan_event(plan_));
}

void MrcpRm::journal_append(const std::string& payload) {
  if (journal_ == nullptr) return;
  MRCP_CHECK_MSG(journal_->append(payload), journal_->error().c_str());
}

namespace {
constexpr std::uint8_t kRmStateVersion = 1;
}  // namespace

std::string MrcpRm::encode_state() const {
  io::Encoder enc;
  enc.u8(kRmStateVersion);
  enc.u32(static_cast<std::uint32_t>(down_.size()));
  for (const std::uint8_t flag : down_) enc.boolean(flag != 0);
  enc.u32(static_cast<std::uint32_t>(active_.size()));
  for (const auto& [id, st] : active_) {
    // The map key is st.job.id; per-task flag/assignment counts are the
    // job's task count — neither is encoded separately.
    encode_job(enc, st.job);
    for (const std::uint8_t flag : st.completed) enc.boolean(flag != 0);
    for (const Assignment& as : st.assignments) {
      enc.i64(as.resource);
      enc.ticks(as.start);
      enc.ticks(as.end);
    }
  }
  enc.u32(static_cast<std::uint32_t>(deferred_.size()));
  for (const auto& [release_at, job] : deferred_) {
    enc.ticks(release_at);
    encode_job(enc, job);
  }
  encode_plan(enc, plan_);
  encode_mrcp_stats(enc, stats_);
  enc.u32(static_cast<std::uint32_t>(parked_.size()));
  for (const JobId id : parked_) enc.i64(id);
  enc.ticks(park_retry_at_);
  enc.u64(degraded_streak_);
  enc.boolean(dirty_);
  encode_ledger(enc, ledger_);
  enc.u32(static_cast<std::uint32_t>(dirty_jobs_.size()));
  for (const JobId id : dirty_jobs_) enc.i64(id);
  // Informational: the cache itself is rebuilt cold after a restore (the
  // incremental-vs-full differential proved cache on/off byte-identical,
  // so a cold cache cannot change any published plan).
  enc.u64(model_cache_ != nullptr ? model_cache_->fingerprint : 0);
  return enc.take();
}

bool MrcpRm::restore_state(std::string_view state, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  io::Decoder dec(state);
  const std::uint8_t version = dec.u8();
  if (dec.ok() && version != kRmStateVersion) {
    return fail("unsupported RM state version " + std::to_string(version));
  }
  const std::uint32_t num_resources = dec.u32();
  if (dec.ok() && num_resources != static_cast<std::uint32_t>(cluster_.size())) {
    return fail("snapshot cluster has " + std::to_string(num_resources) +
                " resources, this RM has " + std::to_string(cluster_.size()));
  }
  std::vector<std::uint8_t> down(down_.size(), 0);
  for (std::size_t r = 0; r < down.size() && dec.ok(); ++r) {
    down[r] = dec.boolean() ? 1 : 0;
  }
  std::map<JobId, JobState> active;
  const std::uint32_t num_active = dec.u32();
  for (std::uint32_t i = 0; i < num_active && dec.ok(); ++i) {
    JobState st;
    st.job = decode_job(dec);
    st.completed.assign(st.job.num_tasks(), 0);
    st.assignments.assign(st.job.num_tasks(), Assignment{});
    for (std::size_t ti = 0; ti < st.job.num_tasks() && dec.ok(); ++ti) {
      st.completed[ti] = dec.boolean() ? 1 : 0;
    }
    for (std::size_t ti = 0; ti < st.job.num_tasks() && dec.ok(); ++ti) {
      Assignment& as = st.assignments[ti];
      const std::int64_t resource = dec.i64();
      as.resource = static_cast<ResourceId>(resource);
      as.start = dec.ticks();
      as.end = dec.ticks();
    }
    const JobId id = st.job.id;
    if (dec.ok() && !active.emplace(id, std::move(st)).second) {
      return fail("duplicate active job " + std::to_string(id) +
                  " in snapshot");
    }
  }
  std::multimap<Time, Job> deferred;
  const std::uint32_t num_deferred = dec.u32();
  for (std::uint32_t i = 0; i < num_deferred && dec.ok(); ++i) {
    const Time release_at = dec.ticks();
    deferred.emplace(release_at, decode_job(dec));
  }
  Plan plan = decode_plan(dec);
  MrcpStats stats = decode_mrcp_stats(dec);
  std::set<JobId> parked;
  const std::uint32_t num_parked = dec.u32();
  for (std::uint32_t i = 0; i < num_parked && dec.ok(); ++i) {
    parked.insert(static_cast<JobId>(dec.i64()));
  }
  const Time park_retry_at = dec.ticks();
  const std::uint64_t degraded_streak = dec.u64();
  const bool dirty = dec.boolean();
  DegradationLedger ledger = decode_ledger(dec);
  std::set<JobId> dirty_jobs;
  const std::uint32_t num_dirty = dec.u32();
  for (std::uint32_t i = 0; i < num_dirty && dec.ok(); ++i) {
    dirty_jobs.insert(static_cast<JobId>(dec.i64()));
  }
  dec.u64();  // model-cache fingerprint: informational, cache restarts cold
  if (!dec.ok()) return fail("corrupt RM state: " + dec.error());
  if (!dec.done()) {
    return fail("trailing bytes after RM state at byte " +
                std::to_string(dec.offset()));
  }

  down_ = std::move(down);
  for (ResourceId r = 0; r < cluster_.size(); ++r) {
    const Resource& base = pristine_cluster_.resource(r);
    const bool is_down = down_[static_cast<std::size_t>(r)] != 0;
    cluster_.set_resource_capacity(r, is_down ? 0 : base.map_capacity,
                                   is_down ? 0 : base.reduce_capacity);
  }
  active_ = std::move(active);
  deferred_ = std::move(deferred);
  plan_ = std::move(plan);
  stats_ = stats;
  parked_ = std::move(parked);
  park_retry_at_ = park_retry_at;
  degraded_streak_ = degraded_streak;
  dirty_ = dirty;
  ledger_ = std::move(ledger);
  dirty_jobs_ = std::move(dirty_jobs);
  model_cache_.reset();
  return true;
}

bool MrcpRm::restore(std::string_view snapshot_state,
                     const std::vector<std::string>& journal_suffix,
                     std::string* error) {
  if (!restore_state(snapshot_state, error)) return false;
  // Replay re-executes the real logic, so it must not re-journal; the
  // caller re-attaches (or the sim driver resumes in verify mode).
  Journal* const saved_journal = journal_;
  journal_ = nullptr;
  for (std::size_t i = 0; i < journal_suffix.size(); ++i) {
    JournalEvent event;
    if (!decode_journal_event(journal_suffix[i], &event, error)) {
      journal_ = saved_journal;
      return false;
    }
    switch (event.type) {
      case JournalEventType::kSubmit:
        submit(event.job, event.time);
        break;
      case JournalEventType::kResourceDown:
        handle_resource_down(event.resource, event.time);
        break;
      case JournalEventType::kResourceUp:
        handle_resource_up(event.resource, event.time);
        break;
      case JournalEventType::kPlanPublished: {
        // Inputs were re-applied above; re-running the deterministic
        // solve must re-derive the exact journaled plan.
        reschedule(event.time);
        io::Encoder replayed;
        encode_plan(replayed, plan_);
        io::Encoder journaled;
        encode_plan(journaled, event.plan);
        if (replayed.str() != journaled.str()) {
          if (error != nullptr) {
            *error = "replayed plan diverges from journal record " +
                     std::to_string(i) + " (epoch " +
                     std::to_string(event.plan.epoch) + ")";
          }
          journal_ = saved_journal;
          return false;
        }
        break;
      }
      case JournalEventType::kRelease:
      case JournalEventType::kCompletion:
      case JournalEventType::kParkRetry:
        // Outputs of reschedule(); re-derived by the replayed calls.
        break;
    }
  }
  journal_ = saved_journal;
  return true;
}

}  // namespace mrcp
