#include "core/fallback_scheduler.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "cp/profile.h"
#include "cp/search.h"

namespace mrcp {

namespace {

using cp::CpJob;
using cp::CpJobIndex;
using cp::CpResource;
using cp::CpResourceIndex;
using cp::CpTask;
using cp::CpTaskIndex;
using cp::Model;
using cp::Phase;
using cp::Profile;
using cp::Solution;
using cp::TaskPlacement;

/// The per-(resource, phase) slot timetables plus per-resource link
/// timetables, mirroring SetTimesSearch's root state: pinned tasks are
/// pre-loaded, everything else is placed by the caller.
struct Timetables {
  explicit Timetables(const Model& model) : model_(model) {
    slots_.reserve(model.num_resources() * 2);
    net_.reserve(model.num_resources());
    for (const CpResource& r : model.resources()) {
      // Zero-capacity phases get a 1-capacity placeholder that is never
      // queried: hosts() filters on capacity >= demand first.
      slots_.emplace_back(std::max(1, r.map_capacity));
      slots_.emplace_back(std::max(1, r.reduce_capacity));
      net_.emplace_back(std::max(1, r.net_capacity));
    }
    links_constrained_ = model.links_constrained();
  }

  Profile& slot(CpResourceIndex r, Phase phase) {
    return slots_[static_cast<std::size_t>(r) * 2 +
                  static_cast<std::size_t>(phase)];
  }

  bool net_constrained(CpResourceIndex r, const CpTask& t) const {
    return t.net_demand > 0 && links_constrained_ &&
           model_.resource(r).net_capacity > 0;
  }

  /// Can resource `r` host `t` at all (static capacities)?
  bool hosts(CpResourceIndex r, const CpTask& t) const {
    const CpResource& res = model_.resource(r);
    if (res.capacity(t.phase) < t.demand) return false;
    // In a links-constrained cluster a zero-capacity resource offers no
    // link at all — not a valid home for a net-demanding task.
    if (t.net_demand > 0 && links_constrained_ &&
        res.net_capacity < t.net_demand) {
      return false;
    }
    return true;
  }

  /// Earliest start >= est feasible on BOTH the phase-slot profile and
  /// (when constrained) the network profile — fixpoint of the two
  /// one-dimensional queries, exactly as the CP search computes it.
  /// `duration` is the resource-scaled duration of `t` on `r`.
  Time earliest_on(CpResourceIndex r, const CpTask& t, Time est,
                   Time duration) {
    Profile& slots = slot(r, t.phase);
    if (!net_constrained(r, t)) {
      return slots.earliest_feasible(est, duration, t.demand);
    }
    Profile& net = net_[static_cast<std::size_t>(r)];
    Time start = est;
    while (true) {
      const Time s1 = slots.earliest_feasible(start, duration, t.demand);
      const Time s2 = net.earliest_feasible(s1, duration, t.net_demand);
      if (s2 == s1) return s1;
      start = s2;
    }
  }

  void place(CpResourceIndex r, const CpTask& t, Time start, Time duration) {
    slot(r, t.phase).add(start, duration, t.demand);
    if (net_constrained(r, t)) {
      net_[static_cast<std::size_t>(r)].add(start, duration, t.net_demand);
    }
  }

 private:
  const Model& model_;
  std::vector<Profile> slots_;  ///< [resource * 2 + phase]
  std::vector<Profile> net_;    ///< [resource], link usage
  bool links_constrained_ = false;
};

/// Non-pinned tasks in placement order: EDF job rank, maps before
/// reduces, index order within a phase — re-derived as a
/// priority-topological sort when user precedence edges exist (same
/// barrier treatment as SetTimesSearch: cross-job edges must not hoist a
/// reduce ahead of its own job's last map).
std::vector<CpTaskIndex> placement_order(const Model& model) {
  const std::vector<int> rank = make_job_ranks(model, cp::JobOrdering::kEdf);
  std::vector<CpTaskIndex> order;
  order.reserve(model.num_tasks());
  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    if (!model.task(static_cast<CpTaskIndex>(ti)).pinned) {
      order.push_back(static_cast<CpTaskIndex>(ti));
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](CpTaskIndex a, CpTaskIndex b) {
                     const CpTask& ta = model.task(a);
                     const CpTask& tb = model.task(b);
                     const int ra = rank[static_cast<std::size_t>(ta.job)];
                     const int rb = rank[static_cast<std::size_t>(tb.job)];
                     if (ra != rb) return ra < rb;
                     if (ta.phase != tb.phase) return ta.phase == Phase::kMap;
                     return a < b;
                   });
  if (model.num_precedences() == 0) return order;

  std::vector<int> position(model.num_tasks(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::vector<int> indeg(model.num_tasks(), 0);
  std::vector<std::vector<CpTaskIndex>> succs(model.num_tasks());
  auto add_edge = [&](CpTaskIndex before, CpTaskIndex after) {
    succs[static_cast<std::size_t>(before)].push_back(after);
    ++indeg[static_cast<std::size_t>(after)];
  };
  for (CpTaskIndex t : order) {
    for (CpTaskIndex p : model.predecessors(t)) {
      if (model.task(p).pinned) continue;  // already placed at the root
      add_edge(p, t);
    }
  }
  for (const CpJob& j : model.jobs()) {
    for (CpTaskIndex mt : j.map_tasks) {
      if (model.task(mt).pinned) continue;
      for (CpTaskIndex rt : j.reduce_tasks) {
        if (model.task(rt).pinned) continue;
        add_edge(mt, rt);
      }
    }
  }
  auto later = [&](CpTaskIndex a, CpTaskIndex b) {
    return position[static_cast<std::size_t>(a)] >
           position[static_cast<std::size_t>(b)];
  };
  std::vector<CpTaskIndex> heap;
  for (CpTaskIndex t : order) {
    if (indeg[static_cast<std::size_t>(t)] == 0) heap.push_back(t);
  }
  std::make_heap(heap.begin(), heap.end(), later);
  std::vector<CpTaskIndex> topo;
  topo.reserve(order.size());
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const CpTaskIndex t = heap.back();
    heap.pop_back();
    topo.push_back(t);
    for (CpTaskIndex s : succs[static_cast<std::size_t>(t)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) {
        heap.push_back(s);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }
  MRCP_CHECK_MSG(topo.size() == order.size(), "precedence graph has a cycle");
  return topo;
}

}  // namespace

cp::Solution fallback_schedule(const cp::Model& model) {
  Solution sol;
  sol.placements.assign(model.num_tasks(), TaskPlacement{});

  Timetables tables(model);
  // Anti-affinity: which resources each group already occupies
  // ([group * num_resources + resource]), pinned members replayed.
  std::vector<int> group_use(
      static_cast<std::size_t>(model.num_affinity_groups()) *
          model.num_resources(),
      0);
  auto group_slot = [&](int group, CpResourceIndex r) -> int& {
    return group_use[static_cast<std::size_t>(group) * model.num_resources() +
                     static_cast<std::size_t>(r)];
  };
  std::vector<Time> fixed_map_end(model.num_jobs(), Time{0});
  for (std::size_t ji = 0; ji < model.num_jobs(); ++ji) {
    fixed_map_end[ji] = model.job(static_cast<CpJobIndex>(ji)).earliest_start;
  }
  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
    if (!t.pinned) continue;
    const Time dur =
        model.duration_on(static_cast<CpTaskIndex>(ti), t.pinned_resource);
    tables.place(t.pinned_resource, t, t.pinned_start, dur);
    sol.placements[ti] = TaskPlacement{t.pinned_resource, t.pinned_start};
    if (t.affinity_group >= 0) ++group_slot(t.affinity_group, t.pinned_resource);
    if (t.phase == Phase::kMap) {
      const auto ji = static_cast<std::size_t>(t.job);
      fixed_map_end[ji] = std::max(fixed_map_end[ji], t.pinned_start + dur);
    }
  }

  for (CpTaskIndex ti : placement_order(model)) {
    const CpTask& t = model.task(ti);
    const CpJob& j = model.job(t.job);
    const auto ji = static_cast<std::size_t>(t.job);
    Time est = t.phase == Phase::kMap
                   ? j.earliest_start
                   : std::max(j.earliest_start, fixed_map_end[ji]);
    for (CpTaskIndex p : model.predecessors(ti)) {
      const TaskPlacement& pp = sol.placements[static_cast<std::size_t>(p)];
      MRCP_DCHECK(pp.decided());
      est = std::max(est, pp.start + model.duration_on(p, pp.resource));
    }

    // Greedy pick: earliest *completion* (start on homogeneous clusters,
    // where every duration ties and the first resource wins as before).
    CpResourceIndex chosen = cp::kAnyResource;
    Time chosen_start = kMaxTime;
    Time chosen_dur = Time{0};
    Time chosen_end = kMaxTime;
    auto consider = [&](CpResourceIndex r) {
      if (!tables.hosts(r, t)) return;
      if (t.affinity_group >= 0 && group_slot(t.affinity_group, r) > 0) return;
      const Time dur = model.duration_on(ti, r);
      const Time start = tables.earliest_on(r, t, est, dur);
      if (start + dur < chosen_end) {
        chosen = r;
        chosen_start = start;
        chosen_dur = dur;
        chosen_end = start + dur;
      }
    };
    if (t.candidates.empty()) {
      for (CpResourceIndex r = 0;
           r < static_cast<CpResourceIndex>(model.num_resources()); ++r) {
        consider(r);
      }
    } else {
      for (CpResourceIndex r : t.candidates) consider(r);
    }
    if (chosen == cp::kAnyResource) return Solution{};  // no host: invalid

    tables.place(chosen, t, chosen_start, chosen_dur);
    sol.placements[static_cast<std::size_t>(ti)] =
        TaskPlacement{chosen, chosen_start};
    if (t.affinity_group >= 0) ++group_slot(t.affinity_group, chosen);
    if (t.phase == Phase::kMap) {
      fixed_map_end[ji] =
          std::max(fixed_map_end[ji], chosen_start + chosen_dur);
    }
  }

  evaluate_solution(model, sol);
  return sol;
}

}  // namespace mrcp
