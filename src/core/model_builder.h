// Builds the CP model (paper Table 1) from the live state of the open
// system: the jobs that have arrived and still have uncompleted tasks.
//
// Two build modes:
//   * direct     — one CP resource per cluster resource; the alternative
//                  constraint ranges over all of them (the formulation of
//                  §III.B exactly as written);
//   * combined   — the §V.D performance optimization: one CP resource
//                  carrying the summed capacity of the cluster. The
//                  combined solve fixes start times; the Matchmaker then
//                  assigns tasks to concrete resources.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "cp/model.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp {

/// One not-yet-completed task of a live job, as fed to the model builder.
struct LiveTask {
  int task_index = -1;  ///< flat index within the job
  TaskType type = TaskType::kMap;
  Time exec_time;  ///< baseline-speed duration; resources scale it
  int res_req = 1;
  int net_demand = 0;
  bool started = false;          ///< running now: pinned in the model
  ResourceId resource = kNoResource;  ///< valid when started
  Time start = kNoTime;               ///< valid when started
  /// Placement constraints (all empty/-1 = unconstrained):
  std::vector<ResourceId> candidates;  ///< data-locality hosts (empty = any)
  std::vector<int> racks;              ///< eligible rack ids (empty = any)
  int affinity_group = -1;             ///< job-local anti-affinity group
  /// Resources permanently taken by *completed* same-group siblings —
  /// live members may never land there again.
  std::vector<ResourceId> anti_affinity_exclude;
};

/// A job with at least one uncompleted task.
struct LiveJob {
  JobId id = kNoJob;
  /// s_j clamped to the invocation time (paper Table 2 lines 1-4).
  Time effective_earliest_start;
  Time deadline;
  std::vector<LiveTask> tasks;  ///< completed tasks are omitted
  /// User precedences between *live* tasks, as flat indices (edges whose
  /// predecessor already completed are satisfied and must be filtered
  /// out by the caller).
  std::vector<std::pair<int, int>> precedences;
};

/// A built model plus the mapping from CP task indices back to
/// (job id, flat task index).
struct BuiltModel {
  cp::Model model;
  std::vector<std::pair<JobId, int>> task_refs;  ///< by CP task index
  std::vector<JobId> job_refs;                   ///< by CP job index
  bool combined = false;
};

BuiltModel build_direct_model(const Cluster& cluster,
                              std::span<const LiveJob> jobs);

/// Requires all task res_req == 1 (slot-level matchmaking assumes unit
/// demands, as the paper does: "the value of q_t is typically set to one").
/// Also requires a uniform-speed cluster and no placement constraints —
/// a single summed resource cannot express per-machine speeds or hosts.
BuiltModel build_combined_model(const Cluster& cluster,
                                std::span<const LiveJob> jobs);

}  // namespace mrcp
