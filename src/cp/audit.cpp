#include "cp/audit.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mrcp::cp::audit {

// ---------------------------------------------------------------------------
// ReferenceProfile
// ---------------------------------------------------------------------------

void ReferenceProfile::add(Time start, Time duration, int demand) {
  MRCP_CHECK(duration >= Time{1});
  MRCP_CHECK(demand >= 1);
  intervals_.push_back(Interval{start, duration, demand});
}

void ReferenceProfile::remove(Time start, Time duration, int demand) {
  auto it = std::find_if(intervals_.begin(), intervals_.end(),
                         [&](const Interval& iv) {
                           return iv.start == start && iv.duration == duration &&
                                  iv.demand == demand;
                         });
  MRCP_CHECK_MSG(it != intervals_.end(),
                 "ReferenceProfile::remove of an interval never added");
  intervals_.erase(it);
}

int ReferenceProfile::usage_at(Time t) const {
  int usage = 0;
  for (const Interval& iv : intervals_) {
    if (iv.start <= t && t < iv.start + iv.duration) usage += iv.demand;
  }
  return usage;
}

bool ReferenceProfile::fits(Time start, Time duration, int demand) const {
  if (demand > capacity_) return false;
  const Time end = start + duration;
  // Usage within [start, end) changes only at interval starts; checking
  // `start` and every interval start inside the window covers every level.
  if (usage_at(start) + demand > capacity_) return false;
  for (const Interval& iv : intervals_) {
    if (iv.start > start && iv.start < end &&
        usage_at(iv.start) + demand > capacity_) {
      return false;
    }
  }
  return true;
}

Time ReferenceProfile::earliest_feasible(Time est, Time duration,
                                         int demand) const {
  MRCP_CHECK(demand <= capacity_);
  if (fits(est, duration, demand)) return est;
  // Usage only drops at interval end points, so the answer is one of them.
  std::vector<Time> candidates;
  candidates.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    const Time end = iv.start + iv.duration;
    if (end > est) candidates.push_back(end);
  }
  std::sort(candidates.begin(), candidates.end());
  for (Time t : candidates) {
    if (fits(t, duration, demand)) return t;
  }
  MRCP_CHECK_MSG(false, "ReferenceProfile: no feasible start found");
  return kMaxTime;
}

std::vector<Time> ReferenceProfile::change_points() const {
  std::vector<Time> points;
  points.reserve(intervals_.size() * 2);
  for (const Interval& iv : intervals_) {
    points.push_back(iv.start);
    points.push_back(iv.start + iv.duration);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

// ---------------------------------------------------------------------------
// Cross-checks
// ---------------------------------------------------------------------------

namespace {

std::string mismatch(const char* what, Time t, long long fast_value,
                     long long ref_value) {
  std::ostringstream os;
  os << "profile audit: " << what << " diverges at t=" << t
     << " (fast=" << fast_value << ", reference=" << ref_value << ")";
  return os.str();
}

}  // namespace

std::string check_profile_against_reference(const Profile& fast,
                                            const ReferenceProfile& ref) {
  if (fast.capacity() != ref.capacity()) {
    return mismatch("capacity", Time{0}, fast.capacity(), ref.capacity());
  }
  // Walk the union of both change-point sets (a level the fast profile
  // dropped shows up at a reference point, and vice versa), comparing
  // the usage level at each point and immediately before it (one tick
  // earlier lies in the preceding segment).
  std::vector<Time> points = ref.change_points();
  Time t = std::numeric_limits<Time>::min();
  while ((t = fast.next_event_after(t)) != kMaxTime) points.push_back(t);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (Time p : points) {
    if (fast.usage_at(p) != ref.usage_at(p)) {
      return mismatch("usage", p, fast.usage_at(p), ref.usage_at(p));
    }
    if (p > std::numeric_limits<Time>::min() &&
        fast.usage_at(p - Time{1}) != ref.usage_at(p - Time{1})) {
      return mismatch("usage", p - Time{1}, fast.usage_at(p - Time{1}), ref.usage_at(p - Time{1}));
    }
  }
  // After the last fast event the level must be zero and stay zero — a
  // reference interval extending past it would make ref non-zero there.
  const Time horizon = points.empty() ? Time{0} : points.back();
  if (fast.usage_at(horizon) != 0 || ref.usage_at(horizon) != 0) {
    return mismatch("tail usage", horizon, fast.usage_at(horizon),
                    ref.usage_at(horizon));
  }
  return "";
}

std::string check_earliest_feasible_answer(const Profile& profile, Time est,
                                           Time duration, int demand,
                                           Time got) {
  std::ostringstream os;
  if (got < est) {
    os << "earliest_feasible audit: non-monotone answer " << got
       << " < est " << est;
    return os.str();
  }
  if (!profile.fits(got, duration, demand)) {
    os << "earliest_feasible audit: answer " << got
       << " does not fit (duration=" << duration << ", demand=" << demand
       << ") in " << profile.to_string();
    return os.str();
  }
  const Time again = profile.earliest_feasible(got, duration, demand);
  if (again != got) {
    os << "earliest_feasible audit: not idempotent (got " << got
       << ", re-query returned " << again << ")";
    return os.str();
  }
  // Minimality: no start in [est, got) fits. It suffices to test est and
  // every profile change point in (est, got): if some start s fits, the
  // usage on [prev_change(s), s) equals the usage at s, so prev_change(s)
  // (or est, if later) fits as well.
  if (got > est && profile.fits(est, duration, demand)) {
    os << "earliest_feasible audit: not minimal (est " << est
       << " already fits, got " << got << ")";
    return os.str();
  }
  Time t = est;
  while ((t = profile.next_event_after(t)) < got) {
    if (profile.fits(t, duration, demand)) {
      os << "earliest_feasible audit: not minimal (start " << t
         << " fits, got " << got << ")";
      return os.str();
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// SharedBoundAuditor
// ---------------------------------------------------------------------------

void SharedBoundAuditor::on_publish(int published_late,
                                    const std::atomic<int>& bound) {
  MutexLock lock(mu_);
  low_water_ = std::min(low_water_, published_late);
  // Every publish recorded so far completed its fetch-min before we
  // acquired the lock, so a correct running-minimum bound must now read
  // at or below the lowest recorded value.
  const int observed = bound.load(std::memory_order_seq_cst);
  if (observed > low_water_ && error_.empty()) {
    std::ostringstream os;
    os << "shared incumbent bound audit: bound rose to " << observed
       << " after a publish of " << low_water_
       << " (lost fetch-min update?)";
    error_ = os.str();
  }
}

void SharedBoundAuditor::on_reset(int new_value,
                                  const std::atomic<int>& bound) {
  MutexLock lock(mu_);
  const int observed = bound.load(std::memory_order_seq_cst);
  if (new_value > observed && error_.empty()) {
    std::ostringstream os;
    os << "shared incumbent bound audit: reset would raise the bound from "
       << observed << " to " << new_value;
    error_ = os.str();
  }
  low_water_ = std::min(low_water_, new_value);
}

int SharedBoundAuditor::low_water_mark() const {
  MutexLock lock(mu_);
  return low_water_;
}

std::string SharedBoundAuditor::error() const {
  MutexLock lock(mu_);
  return error_;
}

// ---------------------------------------------------------------------------
// Brute-force solution oracle
// ---------------------------------------------------------------------------

std::string brute_force_check_solution(const Model& model,
                                       const Solution& sol) {
  std::ostringstream os;
  if (sol.placements.size() != model.num_tasks()) {
    return "brute-force audit: placement count mismatch";
  }
  const auto n = static_cast<CpTaskIndex>(model.num_tasks());
  for (CpTaskIndex ti = 0; ti < n; ++ti) {
    const CpTask& t = model.task(ti);
    const TaskPlacement& p = sol.placements[static_cast<std::size_t>(ti)];
    if (!p.decided() || p.start < Time{0} || p.resource < 0 ||
        static_cast<std::size_t>(p.resource) >= model.num_resources()) {
      os << "brute-force audit: task " << ti << " undecided or out of range";
      return os.str();
    }
    if (!t.candidates.empty() &&
        std::find(t.candidates.begin(), t.candidates.end(), p.resource) ==
            t.candidates.end()) {
      os << "brute-force audit: task " << ti << " placed off-candidate";
      return os.str();
    }
    if (t.pinned &&
        (p.resource != t.pinned_resource || p.start != t.pinned_start)) {
      os << "brute-force audit: task " << ti << " violates pinning";
      return os.str();
    }
    const CpJob& j = model.job(t.job);
    if (!t.pinned && t.phase == Phase::kMap && p.start < j.earliest_start) {
      os << "brute-force audit: map task " << ti << " starts before s_j";
      return os.str();
    }
    // Constraint 3 — this reduce after every map of its job. Durations
    // are taken at each map's assigned machine speed.
    if (!t.pinned && t.phase == Phase::kReduce) {
      for (CpTaskIndex m : j.map_tasks) {
        const TaskPlacement& mp = sol.placements[static_cast<std::size_t>(m)];
        if (p.start < mp.start + model.duration_on(m, mp.resource)) {
          os << "brute-force audit: reduce " << ti << " overlaps map " << m;
          return os.str();
        }
      }
    }
    // Workflow precedences.
    if (!t.pinned) {
      for (CpTaskIndex pred : model.predecessors(ti)) {
        const TaskPlacement& pp =
            sol.placements[static_cast<std::size_t>(pred)];
        if (p.start < pp.start + model.duration_on(pred, pp.resource)) {
          os << "brute-force audit: task " << ti << " starts before pred "
             << pred << " ends";
          return os.str();
        }
      }
    }
    // Anti-affinity: no other task of the same group on the same resource.
    if (t.affinity_group >= 0) {
      for (CpTaskIndex tj = 0; tj < n; ++tj) {
        if (tj == ti) continue;
        const CpTask& u = model.task(tj);
        if (u.affinity_group == t.affinity_group &&
            sol.placements[static_cast<std::size_t>(tj)].resource ==
                p.resource) {
          os << "brute-force audit: tasks " << ti << " and " << tj
             << " of affinity group " << t.affinity_group
             << " share resource " << p.resource;
          return os.str();
        }
      }
    }
  }
  // Capacity, by direct pairwise overlap: at each task's start, sum the
  // demands of every same-resource same-dimension task covering it.
  const bool links = model.links_constrained();
  for (CpTaskIndex ti = 0; ti < n; ++ti) {
    const CpTask& t = model.task(ti);
    const TaskPlacement& p = sol.placements[static_cast<std::size_t>(ti)];
    const CpResource& res = model.resource(p.resource);
    int slot_usage = 0;
    int net_usage = 0;
    for (CpTaskIndex tj = 0; tj < n; ++tj) {
      const CpTask& u = model.task(tj);
      const TaskPlacement& q = sol.placements[static_cast<std::size_t>(tj)];
      if (q.resource != p.resource) continue;
      const bool covers =
          q.start <= p.start &&
          p.start < q.start + model.duration_on(tj, q.resource);
      if (!covers) continue;
      if (u.phase == t.phase) slot_usage += u.demand;
      if (links && u.net_demand > 0) net_usage += u.net_demand;
    }
    if (slot_usage > res.capacity(t.phase)) {
      os << "brute-force audit: resource " << p.resource << " "
         << (t.phase == Phase::kMap ? "map" : "reduce")
         << " capacity exceeded at t=" << p.start << " (" << slot_usage
         << " > " << res.capacity(t.phase) << ")";
      return os.str();
    }
    if (links && t.net_demand > 0 && net_usage > res.net_capacity) {
      os << "brute-force audit: resource " << p.resource
         << " link capacity exceeded at t=" << p.start << " (" << net_usage
         << " > " << res.net_capacity << ")";
      return os.str();
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Exhaustive enumeration oracle
// ---------------------------------------------------------------------------

namespace {

struct EnumState {
  const Model& model;
  std::int64_t budget;
  bool exhausted_budget = false;
  int best_late = std::numeric_limits<int>::max();

  std::vector<TaskPlacement> placements;
  std::vector<int> unscheduled_preds;  ///< per task, counting maps for reduces
  std::vector<std::vector<CpTaskIndex>> succs;
  // One ReferenceProfile per (resource, phase) plus one per resource for
  // links.
  std::vector<ReferenceProfile> slots;
  std::vector<ReferenceProfile> net;
  std::vector<int> group_use;  ///< [group * num_resources + resource]
  bool links;
};

Time enum_earliest_start(const EnumState& st, CpTaskIndex ti) {
  const CpTask& t = st.model.task(ti);
  const CpJob& j = st.model.job(t.job);
  Time est = j.earliest_start;
  if (t.phase == Phase::kReduce) {
    for (CpTaskIndex m : j.map_tasks) {
      const TaskPlacement& mp = st.placements[static_cast<std::size_t>(m)];
      est = std::max(est,
                     mp.start + st.model.duration_on(m, mp.resource));
    }
  }
  for (CpTaskIndex p : st.model.predecessors(ti)) {
    const TaskPlacement& pp = st.placements[static_cast<std::size_t>(p)];
    est = std::max(est, pp.start + st.model.duration_on(p, pp.resource));
  }
  return est;
}

void enum_recurse(EnumState& st, std::size_t scheduled) {
  if (st.exhausted_budget) return;
  if (scheduled == st.model.num_tasks()) {
    if (--st.budget < 0) {
      st.exhausted_budget = true;
      return;
    }
    int late = 0;
    for (std::size_t ji = 0; ji < st.model.num_jobs(); ++ji) {
      const CpJob& j = st.model.job(static_cast<CpJobIndex>(ji));
      Time completion{};
      for (CpTaskIndex m : j.map_tasks) {
        const auto& p = st.placements[static_cast<std::size_t>(m)];
        completion =
            std::max(completion, p.start + st.model.duration_on(m, p.resource));
      }
      for (CpTaskIndex r : j.reduce_tasks) {
        const auto& p = st.placements[static_cast<std::size_t>(r)];
        completion =
            std::max(completion, p.start + st.model.duration_on(r, p.resource));
      }
      if (completion > j.deadline) ++late;
    }
    st.best_late = std::min(st.best_late, late);
    return;
  }
  const auto n = static_cast<CpTaskIndex>(st.model.num_tasks());
  for (CpTaskIndex ti = 0; ti < n && !st.exhausted_budget; ++ti) {
    if (st.placements[static_cast<std::size_t>(ti)].decided()) continue;
    if (st.unscheduled_preds[static_cast<std::size_t>(ti)] > 0) continue;
    const CpTask& t = st.model.task(ti);
    const Time est = enum_earliest_start(st, ti);

    auto try_resource = [&](CpResourceIndex r) {
      const CpResource& res = st.model.resource(r);
      if (res.capacity(t.phase) < t.demand) return;
      const bool net_active = st.links && t.net_demand > 0;
      if (net_active && res.net_capacity < t.net_demand) return;
      // Anti-affinity: a resource already holding a group member is not an
      // alternative for this task.
      const std::size_t group_key =
          t.affinity_group >= 0
              ? static_cast<std::size_t>(t.affinity_group) *
                        st.model.num_resources() +
                    static_cast<std::size_t>(r)
              : 0;
      if (t.affinity_group >= 0 && st.group_use[group_key] > 0) return;
      // The effective duration is this machine's — the enum oracle scales
      // independently of the engine.
      const Time dur = st.model.duration_on(ti, r);
      ReferenceProfile& slot =
          st.slots[static_cast<std::size_t>(r) * 2 +
                   static_cast<std::size_t>(t.phase)];
      ReferenceProfile& link = st.net[static_cast<std::size_t>(r)];
      // Fixpoint of the two reference queries (mirrors the engine's
      // definition of feasibility, computed independently).
      Time start = est;
      while (true) {
        const Time s1 = slot.earliest_feasible(start, dur, t.demand);
        const Time s2 = net_active
                            ? link.earliest_feasible(s1, dur, t.net_demand)
                            : s1;
        if (s2 == s1) {
          start = s1;
          break;
        }
        start = s2;
      }
      slot.add(start, dur, t.demand);
      if (net_active) link.add(start, dur, t.net_demand);
      if (t.affinity_group >= 0) ++st.group_use[group_key];
      st.placements[static_cast<std::size_t>(ti)] = TaskPlacement{r, start};
      for (CpTaskIndex s : st.succs[static_cast<std::size_t>(ti)]) {
        --st.unscheduled_preds[static_cast<std::size_t>(s)];
      }

      enum_recurse(st, scheduled + 1);

      for (CpTaskIndex s : st.succs[static_cast<std::size_t>(ti)]) {
        ++st.unscheduled_preds[static_cast<std::size_t>(s)];
      }
      st.placements[static_cast<std::size_t>(ti)] = TaskPlacement{};
      if (t.affinity_group >= 0) --st.group_use[group_key];
      slot.remove(start, dur, t.demand);
      if (net_active) link.remove(start, dur, t.net_demand);
    };

    if (t.candidates.empty()) {
      for (CpResourceIndex r = 0;
           r < static_cast<CpResourceIndex>(st.model.num_resources()); ++r) {
        try_resource(r);
      }
    } else {
      for (CpResourceIndex r : t.candidates) try_resource(r);
    }
  }
}

}  // namespace

int exhaustive_min_late(const Model& model, std::int64_t max_schedules) {
  MRCP_CHECK_MSG(model.validate().empty(),
                 "exhaustive_min_late: invalid model");
  EnumState st{model, max_schedules, false, std::numeric_limits<int>::max(),
               {}, {}, {}, {}, {}, {}, model.links_constrained()};
  st.placements.assign(model.num_tasks(), TaskPlacement{});
  st.unscheduled_preds.assign(model.num_tasks(), 0);
  st.succs.assign(model.num_tasks(), {});
  if (model.num_affinity_groups() > 0) {
    st.group_use.assign(static_cast<std::size_t>(model.num_affinity_groups()) *
                            model.num_resources(),
                        0);
  }
  st.slots.reserve(model.num_resources() * 2);
  st.net.reserve(model.num_resources());
  for (const CpResource& r : model.resources()) {
    st.slots.emplace_back(std::max(1, r.map_capacity));
    st.slots.emplace_back(std::max(1, r.reduce_capacity));
    st.net.emplace_back(std::max(1, r.net_capacity));
  }
  // Precedence bookkeeping: reduces wait for their job's maps, plus any
  // user precedences. Pinned tasks are pre-placed and never counted.
  const auto n = static_cast<CpTaskIndex>(model.num_tasks());
  std::size_t pre_placed = 0;
  for (CpTaskIndex ti = 0; ti < n; ++ti) {
    const CpTask& t = model.task(ti);
    if (t.pinned) {
      const Time dur = model.duration_on(ti, t.pinned_resource);
      st.placements[static_cast<std::size_t>(ti)] =
          TaskPlacement{t.pinned_resource, t.pinned_start};
      st.slots[static_cast<std::size_t>(t.pinned_resource) * 2 +
               static_cast<std::size_t>(t.phase)]
          .add(t.pinned_start, dur, t.demand);
      if (st.links && t.net_demand > 0 &&
          model.resource(t.pinned_resource).net_capacity > 0) {
        st.net[static_cast<std::size_t>(t.pinned_resource)].add(
            t.pinned_start, dur, t.net_demand);
      }
      if (t.affinity_group >= 0) {
        ++st.group_use[static_cast<std::size_t>(t.affinity_group) *
                           model.num_resources() +
                       static_cast<std::size_t>(t.pinned_resource)];
      }
      ++pre_placed;
      continue;
    }
    const CpJob& j = model.job(t.job);
    if (t.phase == Phase::kReduce) {
      for (CpTaskIndex m : j.map_tasks) {
        if (model.task(m).pinned) continue;
        st.succs[static_cast<std::size_t>(m)].push_back(ti);
        ++st.unscheduled_preds[static_cast<std::size_t>(ti)];
      }
    }
    for (CpTaskIndex p : model.predecessors(ti)) {
      if (model.task(p).pinned) continue;
      st.succs[static_cast<std::size_t>(p)].push_back(ti);
      ++st.unscheduled_preds[static_cast<std::size_t>(ti)];
    }
  }
  enum_recurse(st, pre_placed);
  if (st.exhausted_budget) return -1;
  return st.best_late;
}

}  // namespace mrcp::cp::audit
