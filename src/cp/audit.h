// Self-verification layer for the CP engine.
//
// The engine's answers drive every result curve in the reproduction, so
// a silent propagation bug would corrupt the paper's headline comparison
// without failing a single test. This header provides two things:
//
//  1. Always-compiled audit *functions* (namespace mrcp::cp::audit): an
//     O(n^2) ReferenceProfile oracle for the timetable `cumulative`
//     propagation, checks that `Profile::earliest_feasible` answers are
//     monotone / idempotent / minimal, a monotonicity auditor for the
//     parallel portfolio's shared incumbent bound, and a brute-force
//     feasibility oracle for final Solutions. These are plain functions
//     returning an error string (empty = ok), so gtest suites exercise
//     them in every build configuration.
//
//  2. Compiled-in engine *hooks* behind the MRCP_AUDIT macro (CMake
//     option of the same name). When the option is OFF the hook macros
//     expand to nothing — zero code, zero data, zero branches — and the
//     engine is bit-identical to a build without this header. When ON,
//     SetTimesSearch cross-checks every propagation answer against the
//     reference oracle (on models under a size threshold), solve()
//     audits the shared bound and the final solution, and any violation
//     aborts with a diagnostic via MRCP_CHECK machinery.
//
// See docs/correctness.md for the full audit catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "cp/model.h"
#include "cp/profile.h"
#include "cp/solution.h"

namespace mrcp::cp::audit {

/// Quadratic reference implementation of the timetable cumulative
/// constraint. Stores the raw interval set and answers every query by
/// scanning all of it — too slow for search, trivially correct, and
/// sharing no code with Profile (so a bug must be made twice to escape).
class ReferenceProfile {
 public:
  explicit ReferenceProfile(int capacity) : capacity_(capacity) {}

  int capacity() const { return capacity_; }
  std::size_t num_intervals() const { return intervals_.size(); }

  void add(Time start, Time duration, int demand);
  /// Removes one interval previously added with exactly these arguments.
  void remove(Time start, Time duration, int demand);

  /// Sum of demands of intervals overlapping time t.
  int usage_at(Time t) const;

  /// True iff [start, start+duration) never exceeds capacity with
  /// `demand` added.
  bool fits(Time start, Time duration, int demand) const;

  /// Earliest t >= est at which the interval fits, by trying est and
  /// every interval end point — the only candidate starts at which the
  /// usage step function can drop.
  Time earliest_feasible(Time est, Time duration, int demand) const;

  /// Sorted, deduplicated start/end points of every stored interval.
  std::vector<Time> change_points() const;

 private:
  struct Interval {
    Time start;
    Time duration;
    int demand;
  };
  int capacity_;
  std::vector<Interval> intervals_;
};

/// Cross-checks a fast Profile against the reference holding the same
/// interval set: usage must agree at every change point (and just before
/// it), and earliest_feasible must agree for the given queries.
std::string check_profile_against_reference(const Profile& fast,
                                            const ReferenceProfile& ref);

/// Audits one earliest_feasible answer `got` for query (est, duration,
/// demand) against the profile itself:
///   * monotone   — got >= est (propagation only narrows domains);
///   * feasible   — the interval actually fits at got;
///   * idempotent — re-running the query from got returns got
///                  (a second propagation pass is a no-op);
///   * minimal    — no start in [est, got) fits (checked at est and at
///                  every profile change point, which is complete: if any
///                  start fits, the change point at or before it does too).
std::string check_earliest_feasible_answer(const Profile& profile, Time est,
                                           Time duration, int demand, Time got);

/// Monitors the parallel portfolio's shared incumbent bound — the atomic
/// late-count that workers maintain with a CAS fetch-min. The invariant:
/// the atomic's value never rises above any published late-count, i.e.
/// the bound behaves as a running minimum (an increase would mean a lost
/// update or a plain store racing the fetch-min). Workers call
/// on_publish(v, bound) right after publishing a solution with v late
/// jobs; the auditor serializes recordings under a mutex and re-reads the
/// atomic inside the lock, so the check is race-free: by then every
/// recorded publish happens-before the load, and a correct fetch-min
/// bound must read <= the minimum recorded value. Thread-safe; failures
/// are latched and returned by error().
class SharedBoundAuditor {
 public:
  SharedBoundAuditor() = default;

  /// Record a worker's publish of a solution with `published_late` late
  /// jobs into `bound`.
  void on_publish(int published_late, const std::atomic<int>& bound)
      MRCP_EXCLUDES(mu_);

  /// Record the solver's between-round reset of the bound to
  /// `new_value`; must not raise the bound (checked against its current
  /// value before the caller stores).
  void on_reset(int new_value, const std::atomic<int>& bound)
      MRCP_EXCLUDES(mu_);

  /// Minimum late-count recorded so far.
  int low_water_mark() const MRCP_EXCLUDES(mu_);

  /// Empty when every observation kept the bound monotone non-increasing.
  std::string error() const MRCP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int low_water_ MRCP_GUARDED_BY(mu_) = std::numeric_limits<int>::max();
  std::string error_ MRCP_GUARDED_BY(mu_);
};

/// Brute-force feasibility oracle for a complete Solution: re-derives
/// every constraint of Table 1 from scratch by pairwise interval
/// comparison (no sweep, no sharing with validate_solution). Intended
/// for small models; cost is O(num_tasks^2 * num_tasks). Empty = feasible.
std::string brute_force_check_solution(const Model& model, const Solution& sol);

/// Exhaustive minimum late-job count over all active schedules of the
/// model: every candidate-respecting resource assignment crossed with
/// every precedence-feasible task permutation, each scheduled by serial
/// SGS (earliest feasible start in permutation order). For the paper's
/// regular objective an optimal schedule is active, so this is the true
/// optimum. Cost is exponential — callers must keep models tiny (<= ~7
/// free tasks). Returns -1 if `max_schedules` was exceeded, otherwise
/// the optimal number of late jobs.
int exhaustive_min_late(const Model& model,
                        std::int64_t max_schedules = 2'000'000);

/// Threshold used by the compiled-in hooks: models at or below this many
/// tasks get the expensive cross-checks on every propagation fixpoint.
inline constexpr std::size_t kAuditModelSizeLimit = 48;

}  // namespace mrcp::cp::audit

// ---------------------------------------------------------------------------
// Engine hook macros. MRCP_AUDIT is defined (via the CMake option) for
// audit builds; otherwise every hook compiles away entirely.
// ---------------------------------------------------------------------------
#ifdef MRCP_AUDIT
#define MRCP_AUDIT_ENABLED 1
/// Execute the statement(s) only in audit builds.
#define MRCP_AUDIT_ONLY(...) __VA_ARGS__
/// Evaluate `expr` (an audit function returning std::string) and abort
/// with its message when non-empty.
#define MRCP_AUDIT_CHECK(expr)                                          \
  do {                                                                  \
    const std::string mrcp_audit_err_ = (expr);                         \
    MRCP_CHECK_MSG(mrcp_audit_err_.empty(), mrcp_audit_err_.c_str());   \
  } while (0)
#else
#define MRCP_AUDIT_ENABLED 0
#define MRCP_AUDIT_ONLY(...)
#define MRCP_AUDIT_CHECK(expr) ((void)0)
#endif
