#include "cp/solution.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"

namespace mrcp::cp {

void evaluate_solution(const Model& model, Solution& sol) {
  const auto num_jobs = model.num_jobs();
  sol.job_completion.assign(num_jobs, Time{0});
  sol.job_late.assign(num_jobs, 0);
  sol.num_late = 0;
  sol.total_completion = Time{0};

  MRCP_CHECK(sol.placements.size() == model.num_tasks());
  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
    const TaskPlacement& p = sol.placements[ti];
    MRCP_CHECK_MSG(p.decided(), "evaluate_solution: undecided task");
    const Time end =
        p.start + model.duration_on(static_cast<CpTaskIndex>(ti), p.resource);
    auto& completion = sol.job_completion[static_cast<std::size_t>(t.job)];
    completion = std::max(completion, end);
  }
  for (std::size_t ji = 0; ji < num_jobs; ++ji) {
    const CpJob& j = model.job(static_cast<CpJobIndex>(ji));
    if (sol.job_completion[ji] > j.deadline) {
      sol.job_late[ji] = 1;
      ++sol.num_late;
    }
    sol.total_completion += sol.job_completion[ji];
  }
  sol.valid = true;
}

namespace {
std::string err(const std::string& what) { return what; }
}  // namespace

std::string validate_solution(const Model& model, const Solution& sol) {
  if (sol.placements.size() != model.num_tasks()) {
    return err("placement count != task count");
  }
  // Per-(resource, phase) usage sweeps.
  std::map<std::pair<CpResourceIndex, int>, std::map<Time, int>> deltas;

  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
    const TaskPlacement& p = sol.placements[ti];
    const std::string where = "task " + std::to_string(ti) + ": ";
    if (!p.decided()) return where + "undecided";
    if (p.resource < 0 ||
        static_cast<std::size_t>(p.resource) >= model.num_resources()) {
      return where + "resource out of range";
    }
    // Constraint 1/7: the chosen resource must be a candidate.
    if (!t.candidates.empty() &&
        std::find(t.candidates.begin(), t.candidates.end(), p.resource) ==
            t.candidates.end()) {
      return where + "resource not among candidates";
    }
    if (t.pinned && (p.resource != t.pinned_resource || p.start != t.pinned_start)) {
      return where + "pinning violated";
    }
    // Constraint 2: map tasks start at/after s_j (pinned tasks exempt,
    // paper §V.B line 12).
    const CpJob& j = model.job(t.job);
    if (!t.pinned && t.phase == Phase::kMap && p.start < j.earliest_start) {
      return where + "map starts before s_j";
    }
    if (p.start < Time{0}) return where + "negative start";
    const Time dur =
        model.duration_on(static_cast<CpTaskIndex>(ti), p.resource);
    deltas[{p.resource, static_cast<int>(t.phase)}][p.start] += t.demand;
    deltas[{p.resource, static_cast<int>(t.phase)}][p.start + dur] -= t.demand;
    // Third sweep dimension (key 2): per-resource network-link usage.
    // Swept whenever the cluster constrains links at all — placing a
    // net-demanding task on a zero-capacity resource must *fail* the
    // sweep, not skip it.
    if (t.net_demand > 0 && model.links_constrained()) {
      deltas[{p.resource, 2}][p.start] += t.net_demand;
      deltas[{p.resource, 2}][p.start + dur] -= t.net_demand;
    }
  }

  // Anti-affinity: tasks sharing a group must sit on distinct resources.
  if (model.num_affinity_groups() > 0) {
    std::map<std::pair<int, CpResourceIndex>, std::size_t> group_holders;
    for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
      const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
      if (t.affinity_group < 0) continue;
      const auto key =
          std::make_pair(t.affinity_group, sol.placements[ti].resource);
      const auto [it, inserted] = group_holders.emplace(key, ti);
      if (!inserted) {
        return "task " + std::to_string(ti) + ": shares resource " +
               std::to_string(sol.placements[ti].resource) +
               " with task " + std::to_string(it->second) +
               " of affinity group " + std::to_string(t.affinity_group);
      }
    }
  }

  // User precedences (workflow DAG extension).
  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    const auto task = static_cast<CpTaskIndex>(ti);
    if (model.task(task).pinned) continue;  // running before the re-plan
    for (CpTaskIndex p : model.predecessors(task)) {
      const auto& pred_p = sol.placements[static_cast<std::size_t>(p)];
      if (sol.placements[ti].start <
          pred_p.start + model.duration_on(p, pred_p.resource)) {
        return "task " + std::to_string(ti) +
               ": starts before its predecessor ends";
      }
    }
  }

  // Constraint 3: reduces after all maps of the job.
  for (std::size_t ji = 0; ji < model.num_jobs(); ++ji) {
    const CpJob& j = model.job(static_cast<CpJobIndex>(ji));
    Time latest_map_end{};
    for (CpTaskIndex m : j.map_tasks) {
      const auto& p = sol.placements[static_cast<std::size_t>(m)];
      latest_map_end =
          std::max(latest_map_end, p.start + model.duration_on(m, p.resource));
    }
    for (CpTaskIndex r : j.reduce_tasks) {
      const CpTask& rt = model.task(r);
      const auto& p = sol.placements[static_cast<std::size_t>(r)];
      if (!rt.pinned && p.start < latest_map_end) {
        return "job " + std::to_string(ji) + ": reduce starts before map ends";
      }
    }
  }

  // Constraints 5/6 (and the network dimension): capacity sweeps.
  for (const auto& [key, delta] : deltas) {
    const CpResource& r = model.resource(key.first);
    const int cap = key.second == 2 ? r.net_capacity
                    : key.second == static_cast<int>(Phase::kMap)
                        ? r.map_capacity
                        : r.reduce_capacity;
    int usage = 0;
    for (const auto& [time, d] : delta) {
      usage += d;
      if (usage > cap) {
        std::ostringstream os;
        os << "resource " << key.first << " "
           << (key.second == 2   ? "net"
               : key.second == 0 ? "map"
                                 : "reduce")
           << " capacity exceeded at t=" << time << " (" << usage << " > "
           << cap << ")";
        return os.str();
      }
    }
    if (usage != 0) return err("internal sweep error: usage does not return to 0");
  }
  return "";
}

}  // namespace mrcp::cp
