// Anytime CP solver facade.
//
// This plays the role CPLEX's CP Optimizer plays in the paper: given a
// Model it returns the best schedule it can find within a budget,
// minimizing the number of late jobs. The strategy is
//   1. a portfolio of first-descent searches, one per job-ordering
//     strategy (EDF, least laxity, job id, FCFS) — these are the list
//      schedules the paper's §VI.B ordering experiment compares;
//   2. a set-times branch-and-bound improvement run seeded with the
//      portfolio incumbent;
//   3. large-neighbourhood search: randomized perturbations of the job
//      ranking around late jobs, each evaluated with a cheap first
//      descent, accepting improvements.
// Phase 2 and 3 only run while jobs are still late — a zero-late
// incumbent is optimal for the paper's objective.
//
// With num_threads > 1 the portfolio members and each LNS round's
// neighbourhoods run concurrently on a ThreadPool, sharing an atomic
// incumbent late-count that prunes strictly-worse branches. Winner
// selection happens deterministically after the barrier, so for a fixed
// seed the result is independent of thread count and timing (as long as
// the wall-clock budget does not bind) — see docs/cp_engine.md.
#pragma once

#include <cstdint>
#include <vector>

#include "cp/model.h"
#include "cp/search.h"
#include "cp/solution.h"

namespace mrcp::cp {

struct SolveParams {
  /// Orderings to try in the greedy portfolio, in order.
  std::vector<JobOrdering> portfolio = {JobOrdering::kEdf,
                                        JobOrdering::kLeastLaxity,
                                        JobOrdering::kJobId};
  /// Fail budget of the branch-and-bound improvement run (0 disables it).
  std::int64_t improvement_fails = 2000;
  int postpone_tries = 2;
  /// LNS restarts after the improvement run (0 disables LNS).
  int lns_iterations = 20;
  /// LNS neighbourhoods generated and evaluated per round. All of a
  /// round's neighbourhoods are derived from the incumbent at the start
  /// of the round (RNG draws in a fixed order) and their acceptance is
  /// folded in generation order, so results depend on this value but —
  /// for a fixed value — not on num_threads. 1 reproduces the purely
  /// sequential accept-then-regenerate behaviour.
  int lns_batch = 1;
  /// Overall wall-clock budget for the solve.
  double time_limit_s = 0.5;
  std::uint64_t seed = 1;
  /// Worker threads for the portfolio and LNS phases: 1 = run in the
  /// calling thread (default), 0 = one worker per hardware thread, n >
  /// 1 = exactly n workers. For a fixed seed the returned solution is
  /// identical for every value whenever time_limit_s does not bind.
  int num_threads = 1;
  /// Optional hard watchdog shared by every phase (portfolio descents,
  /// B&B improvement, LNS): once expired, running searches abort at the
  /// next check — even mid-descent, so the solve may return no solution
  /// at all (SolveStatus::kBudgetExhausted). Callers own the Deadline;
  /// nullptr (the default) keeps the anytime guarantee that a validated
  /// model always yields a schedule. See docs/degraded_mode.md.
  const Deadline* hard_deadline = nullptr;
};

/// What the solver can promise about its result.
enum class SolveStatus : std::uint8_t {
  kOptimal,          ///< proved optimal (zero late jobs or exhausted search)
  kFeasible,         ///< best-effort schedule found within the budget
  kBudgetExhausted,  ///< hard deadline expired before any solution existed
  kInfeasible,       ///< search space exhausted without a solution
};

const char* solve_status_name(SolveStatus status);

struct SolveStats {
  std::int64_t decisions = 0;
  std::int64_t fails = 0;
  std::int64_t solutions = 0;
  int lns_improvements = 0;
  double solve_seconds = 0.0;
  /// Per-phase wall-clock breakdown (sums to ~solve_seconds): greedy
  /// portfolio, branch-and-bound improvement, LNS. Feeds the perf bench
  /// (bench/cp_micro.cpp) so regressions are attributable to a phase.
  double portfolio_seconds = 0.0;
  double improvement_seconds = 0.0;
  double lns_seconds = 0.0;
  JobOrdering best_ordering = JobOrdering::kEdf;
  bool proved_optimal = false;  ///< zero late jobs, or search exhausted
  bool aborted = false;         ///< some search hit the hard deadline
};

struct SolveResult {
  Solution best;
  SolveStats stats;
  /// What `best` is: with the default params (no hard deadline) this is
  /// always kOptimal or kFeasible and `best.valid` holds; a hard
  /// deadline adds the kBudgetExhausted outcome where `best` is invalid
  /// and the caller must fall back (docs/degraded_mode.md).
  SolveStatus status = SolveStatus::kFeasible;
  /// Wall-clock seconds this solve actually consumed (== stats.solve_seconds,
  /// surfaced here so budget-bound solves are visible next to `status`).
  double wall_seconds = 0.0;
};

/// Solve the model. The model must pass Model::validate(). If
/// `warm_start` is a valid solution for this model it seeds the bound.
///
/// `shared_root` lets a caller that solves the same model repeatedly
/// (the incremental resource manager re-solving a persistent model
/// across plan epochs — docs/incremental.md) reuse one SearchRoot
/// instead of replaying pins and re-deriving static state on every
/// invocation. It must have been constructed for exactly this `model`
/// object (checked); nullptr builds a private root as before.
SolveResult solve(const Model& model, const SolveParams& params,
                  const Solution* warm_start = nullptr,
                  const SearchRoot* shared_root = nullptr);

}  // namespace mrcp::cp
