#include "cp/model.h"

#include <algorithm>

namespace mrcp::cp {

CpResourceIndex Model::add_resource(int map_capacity, int reduce_capacity,
                                    int net_capacity, int speed_permille) {
  MRCP_CHECK(map_capacity >= 0 && reduce_capacity >= 0 && net_capacity >= 0);
  MRCP_CHECK(speed_permille > 0);
  resources_.push_back(
      CpResource{map_capacity, reduce_capacity, net_capacity, speed_permille});
  max_speed_permille_ = std::max(max_speed_permille_, speed_permille);
  hetero_speeds_ = hetero_speeds_ || speed_permille != kBaseSpeedPermille;
  return static_cast<CpResourceIndex>(resources_.size() - 1);
}

CpJobIndex Model::add_job(Time earliest_start, Time deadline,
                          std::int64_t external_id) {
  MRCP_CHECK(earliest_start >= Time{0});
  MRCP_CHECK(deadline > Time{0});
  CpJob j;
  j.earliest_start = earliest_start;
  j.deadline = deadline;
  j.external_id = external_id;
  jobs_.push_back(std::move(j));
  return static_cast<CpJobIndex>(jobs_.size() - 1);
}

CpTaskIndex Model::add_task(CpJobIndex job, Phase phase, Time duration, int demand,
                            std::int64_t external_id, int net_demand) {
  MRCP_CHECK(job >= 0 && static_cast<std::size_t>(job) < jobs_.size());
  MRCP_CHECK(duration > Time{0});
  MRCP_CHECK(demand >= 1);
  MRCP_CHECK(net_demand >= 0);
  CpTask t;
  t.job = job;
  t.phase = phase;
  t.duration = duration;
  t.demand = demand;
  t.net_demand = net_demand;
  t.external_id = external_id;
  tasks_.push_back(std::move(t));
  preds_.emplace_back();
  const auto index = static_cast<CpTaskIndex>(tasks_.size() - 1);
  if (phase == Phase::kMap) {
    jobs_[static_cast<std::size_t>(job)].map_tasks.push_back(index);
  } else {
    jobs_[static_cast<std::size_t>(job)].reduce_tasks.push_back(index);
  }
  return index;
}

void Model::restrict_candidates(CpTaskIndex task,
                                std::vector<CpResourceIndex> resources) {
  MRCP_CHECK(task >= 0 && static_cast<std::size_t>(task) < tasks_.size());
  for (CpResourceIndex r : resources) {
    MRCP_CHECK(r >= 0 && static_cast<std::size_t>(r) < resources_.size());
  }
  tasks_[static_cast<std::size_t>(task)].candidates = std::move(resources);
}

void Model::set_affinity_group(CpTaskIndex task, int group) {
  MRCP_CHECK(task >= 0 && static_cast<std::size_t>(task) < tasks_.size());
  MRCP_CHECK(group >= 0);
  tasks_[static_cast<std::size_t>(task)].affinity_group = group;
  num_affinity_groups_ = std::max(num_affinity_groups_, group + 1);
}

void Model::pin_task(CpTaskIndex task, CpResourceIndex resource, Time start) {
  MRCP_CHECK(task >= 0 && static_cast<std::size_t>(task) < tasks_.size());
  MRCP_CHECK(resource >= 0 && static_cast<std::size_t>(resource) < resources_.size());
  MRCP_CHECK(start >= Time{0});
  CpTask& t = tasks_[static_cast<std::size_t>(task)];
  t.pinned = true;
  t.pinned_resource = resource;
  t.pinned_start = start;
}

void Model::add_precedence(CpTaskIndex before, CpTaskIndex after) {
  MRCP_CHECK(before >= 0 && static_cast<std::size_t>(before) < tasks_.size());
  MRCP_CHECK(after >= 0 && static_cast<std::size_t>(after) < tasks_.size());
  MRCP_CHECK_MSG(before != after, "precedence self-loop");
  preds_[static_cast<std::size_t>(after)].push_back(before);
  ++num_precedences_;
}

Time Model::static_earliest_start(CpTaskIndex task) const {
  const CpTask& t = tasks_[static_cast<std::size_t>(task)];
  if (t.pinned) return t.pinned_start;
  const CpJob& j = jobs_[static_cast<std::size_t>(t.job)];
  Time est = j.earliest_start;
  // Durations are assignment-dependent: a pinned task runs at its fixed
  // resource's speed, an undecided one no faster than min_duration — both
  // keep this a valid lower bound.
  auto duration_lb = [&](CpTaskIndex i) {
    const CpTask& other = tasks_[static_cast<std::size_t>(i)];
    return other.pinned ? duration_on(i, other.pinned_resource)
                        : min_duration(i);
  };
  if (t.phase == Phase::kReduce) {
    // A reduce may not start before every map of the job could have ended.
    for (CpTaskIndex m : j.map_tasks) {
      const CpTask& mt = tasks_[static_cast<std::size_t>(m)];
      const Time start_lb = mt.pinned ? mt.pinned_start : j.earliest_start;
      est = std::max(est, start_lb + duration_lb(m));
    }
  }
  // User precedences: recursive chains tighten this further, but the
  // direct-predecessor bound is enough for a static LB (the search
  // tracks exact fixed ends during placement).
  for (CpTaskIndex p : preds_[static_cast<std::size_t>(task)]) {
    const CpTask& pt = tasks_[static_cast<std::size_t>(p)];
    const Time start_lb = pt.pinned
                              ? pt.pinned_start
                              : jobs_[static_cast<std::size_t>(pt.job)]
                                    .earliest_start;
    est = std::max(est, start_lb + duration_lb(p));
  }
  return est;
}

Time Model::completion_lower_bound(CpJobIndex job) const {
  // Two valid lower bounds, combined with max:
  //  (a) critical-task bound: every task ends no earlier than its static
  //      earliest start plus its duration (folds in s_j, the map-phase
  //      barrier, pinned starts, direct user predecessors);
  //  (b) energetic bound: even with the whole cluster to itself, the
  //      job's map phase needs ceil(map_work / total_map_slots) and its
  //      reduce phase ceil(reduce_work / total_reduce_slots) from s_j —
  //      phases are sequential.
  const CpJob& j = jobs_[static_cast<std::size_t>(job)];
  Time completion = j.earliest_start;
  Time map_work{};
  Time reduce_work{};
  // Both bounds use assignment-independent duration lower bounds: a
  // pinned task's duration is exact at its fixed resource, an undecided
  // task's is min_duration (no machine runs it faster).
  auto duration_lb = [&](CpTaskIndex t) {
    const CpTask& task = tasks_[static_cast<std::size_t>(t)];
    return task.pinned ? duration_on(t, task.pinned_resource)
                       : min_duration(t);
  };
  for (CpTaskIndex t : j.map_tasks) {
    const CpTask& task = tasks_[static_cast<std::size_t>(t)];
    completion =
        std::max(completion, static_earliest_start(t) + duration_lb(t));
    if (!task.pinned) map_work += duration_lb(t);
  }
  for (CpTaskIndex t : j.reduce_tasks) {
    const CpTask& task = tasks_[static_cast<std::size_t>(t)];
    completion =
        std::max(completion, static_earliest_start(t) + duration_lb(t));
    if (!task.pinned) reduce_work += duration_lb(t);
  }
  std::int64_t map_slots = 0;
  std::int64_t reduce_slots = 0;
  for (const CpResource& r : resources_) {
    map_slots += r.map_capacity;
    reduce_slots += r.reduce_capacity;
  }
  Time energetic = j.earliest_start;
  if (map_work > Time{0} && map_slots > 0) {
    energetic += ceil_div(map_work, map_slots);
  }
  if (reduce_work > Time{0} && reduce_slots > 0) {
    energetic += ceil_div(reduce_work, reduce_slots);
  }
  return std::max(completion, energetic);
}

bool Model::links_constrained() const {
  for (const CpResource& r : resources_) {
    if (r.net_capacity > 0) return true;
  }
  return false;
}

std::string Model::validate() const {
  if (resources_.empty()) return "model has no resources";
  const bool links = links_constrained();
  for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
    const CpTask& t = tasks_[ti];
    const std::string where = "task " + std::to_string(ti) + ": ";
    if (t.duration <= Time{0}) return where + "non-positive duration";
    if (t.demand < 1) return where + "demand < 1";
    for (CpResourceIndex r : t.candidates) {
      if (r < 0 || static_cast<std::size_t>(r) >= resources_.size()) {
        return where + "candidate resource out of range";
      }
    }
    // Demand must fit on at least one candidate resource's capacity
    // (slot demand, and link demand where the resource constrains links).
    bool fits = false;
    auto check_fit = [&](const CpResource& res) {
      if (res.capacity(t.phase) < t.demand) return false;
      // With links constrained cluster-wide, a zero-capacity resource
      // cannot host a net-demanding task (it is not "unconstrained").
      if (t.net_demand > 0 && links && res.net_capacity < t.net_demand) {
        return false;
      }
      return true;
    };
    if (t.candidates.empty()) {
      for (const CpResource& res : resources_) fits = fits || check_fit(res);
    } else {
      for (CpResourceIndex r : t.candidates) {
        fits = fits || check_fit(resources_[static_cast<std::size_t>(r)]);
      }
    }
    if (!fits) return where + "demand exceeds every candidate's capacity";
    if (t.pinned) {
      const auto& res = resources_[static_cast<std::size_t>(t.pinned_resource)];
      if (!check_fit(res)) {
        return where + "pinned to resource without capacity";
      }
      if (!t.candidates.empty() &&
          std::find(t.candidates.begin(), t.candidates.end(), t.pinned_resource) ==
              t.candidates.end()) {
        return where + "pinned resource not among candidates";
      }
    }
  }
  for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
    const CpJob& j = jobs_[ji];
    const std::string where = "job " + std::to_string(ji) + ": ";
    // Note: deadline <= earliest_start is allowed — in the open system a
    // job's s_j is clamped to "now" on every RM invocation, so a job that
    // is already past its deadline while waiting is simply (statically)
    // late, not malformed.
    if (j.map_tasks.empty() && j.reduce_tasks.empty()) return where + "no tasks";
  }

  // Anti-affinity groups: each group needs as many pairwise-distinct
  // capable resources as it has members (a Hall-style necessary check on
  // the union of the members' eligible sets), and pinned members must not
  // already collide. The RM parks jobs whose groups cannot fit before
  // building a model, so a violation here is a modeling bug.
  if (num_affinity_groups_ > 0) {
    std::vector<std::vector<bool>> eligible(
        static_cast<std::size_t>(num_affinity_groups_),
        std::vector<bool>(resources_.size(), false));
    std::vector<int> members(static_cast<std::size_t>(num_affinity_groups_), 0);
    std::vector<std::vector<CpResourceIndex>> pinned_at(
        static_cast<std::size_t>(num_affinity_groups_));
    for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
      const CpTask& t = tasks_[ti];
      if (t.affinity_group < 0) continue;
      const auto g = static_cast<std::size_t>(t.affinity_group);
      ++members[g];
      if (t.pinned) pinned_at[g].push_back(t.pinned_resource);
      auto mark = [&](CpResourceIndex r) {
        if (resources_[static_cast<std::size_t>(r)].capacity(t.phase) >=
            t.demand) {
          eligible[g][static_cast<std::size_t>(r)] = true;
        }
      };
      if (t.candidates.empty()) {
        for (std::size_t r = 0; r < resources_.size(); ++r) {
          mark(static_cast<CpResourceIndex>(r));
        }
      } else {
        for (CpResourceIndex r : t.candidates) mark(r);
      }
    }
    for (std::size_t g = 0; g < eligible.size(); ++g) {
      std::sort(pinned_at[g].begin(), pinned_at[g].end());
      if (std::adjacent_find(pinned_at[g].begin(), pinned_at[g].end()) !=
          pinned_at[g].end()) {
        return "affinity group " + std::to_string(g) +
               ": two pinned members share a resource";
      }
      const auto hosts = static_cast<int>(
          std::count(eligible[g].begin(), eligible[g].end(), true));
      if (members[g] > hosts) {
        return "affinity group " + std::to_string(g) + ": " +
               std::to_string(members[g]) + " members but only " +
               std::to_string(hosts) + " eligible resources";
      }
    }
  }

  // The combined precedence graph (user edges + per-job map->reduce
  // barriers, the latter via one virtual node per job) must be acyclic.
  if (num_precedences_ > 0) {
    const std::size_t n = tasks_.size();
    const std::size_t total = n + jobs_.size();
    std::vector<std::vector<std::size_t>> adj(total);
    std::vector<int> indeg(total, 0);
    auto add_edge = [&](std::size_t u, std::size_t v) {
      adj[u].push_back(v);
      ++indeg[v];
    };
    for (std::size_t ti = 0; ti < n; ++ti) {
      for (CpTaskIndex p : preds_[ti]) {
        add_edge(static_cast<std::size_t>(p), ti);
      }
    }
    for (std::size_t ji = 0; ji < jobs_.size(); ++ji) {
      const std::size_t barrier = n + ji;
      for (CpTaskIndex m : jobs_[ji].map_tasks) {
        add_edge(static_cast<std::size_t>(m), barrier);
      }
      for (CpTaskIndex r : jobs_[ji].reduce_tasks) {
        add_edge(barrier, static_cast<std::size_t>(r));
      }
    }
    std::vector<std::size_t> queue;
    for (std::size_t v = 0; v < total; ++v) {
      if (indeg[v] == 0) queue.push_back(v);
    }
    std::size_t processed = 0;
    while (processed < queue.size()) {
      const std::size_t u = queue[processed++];
      for (std::size_t v : adj[u]) {
        if (--indeg[v] == 0) queue.push_back(v);
      }
    }
    if (processed != total) return "precedence graph has a cycle";
  }
  return "";
}

bool structurally_equal(const Model& a, const Model& b) {
  if (a.tasks_.size() != b.tasks_.size() ||
      a.jobs_.size() != b.jobs_.size() ||
      a.resources_.size() != b.resources_.size() ||
      a.num_precedences_ != b.num_precedences_) {
    return false;
  }
  for (std::size_t i = 0; i < a.resources_.size(); ++i) {
    const CpResource& ra = a.resources_[i];
    const CpResource& rb = b.resources_[i];
    if (ra.map_capacity != rb.map_capacity ||
        ra.reduce_capacity != rb.reduce_capacity ||
        ra.net_capacity != rb.net_capacity ||
        ra.speed_permille != rb.speed_permille) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.jobs_.size(); ++i) {
    const CpJob& ja = a.jobs_[i];
    const CpJob& jb = b.jobs_[i];
    if (ja.earliest_start != jb.earliest_start || ja.deadline != jb.deadline ||
        ja.external_id != jb.external_id || ja.map_tasks != jb.map_tasks ||
        ja.reduce_tasks != jb.reduce_tasks) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.tasks_.size(); ++i) {
    const CpTask& ta = a.tasks_[i];
    const CpTask& tb = b.tasks_[i];
    if (ta.job != tb.job || ta.phase != tb.phase ||
        ta.duration != tb.duration || ta.demand != tb.demand ||
        ta.net_demand != tb.net_demand || ta.candidates != tb.candidates ||
        ta.pinned != tb.pinned || ta.pinned_resource != tb.pinned_resource ||
        ta.pinned_start != tb.pinned_start ||
        ta.affinity_group != tb.affinity_group ||
        ta.external_id != tb.external_id) {
      return false;
    }
    if (a.preds_[i] != b.preds_[i]) return false;
  }
  return true;
}

}  // namespace mrcp::cp
