#include "cp/search.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <tuple>

#include "common/stopwatch.h"

namespace mrcp::cp {

const char* job_ordering_name(JobOrdering ordering) {
  switch (ordering) {
    case JobOrdering::kJobId: return "job-id";
    case JobOrdering::kEdf: return "edf";
    case JobOrdering::kLeastLaxity: return "least-laxity";
    case JobOrdering::kFcfs: return "fcfs";
  }
  return "?";
}

std::vector<int> make_job_ranks(const Model& model, JobOrdering ordering) {
  const auto n = model.num_jobs();
  std::vector<CpJobIndex> jobs(n);
  std::iota(jobs.begin(), jobs.end(), 0);

  // Remaining work per job (pinned/completed tasks excluded from the
  // model do not contribute) for the laxity strategy:
  // L_j = d_j - s_j - sum e_t (paper §VI.B).
  std::vector<Time> work(n, Time{0});
  if (ordering == JobOrdering::kLeastLaxity) {
    // Durations are assignment-dependent on heterogeneous clusters; the
    // ranking heuristic uses each task's duration lower bound, which is
    // exact on homogeneous clusters.
    for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
      const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
      work[static_cast<std::size_t>(t.job)] +=
          model.min_duration(static_cast<CpTaskIndex>(ti));
    }
  }

  // Hopeless jobs decide last: a job whose completion lower bound already
  // exceeds its deadline is late in every schedule, so placing its tasks
  // early can only squat on capacity that would save another job (the
  // set-times order is static — an early-ranked hopeless task can never
  // be pushed past a later-ranked one). Only applied when durations are
  // assignment-dependent or anti-affinity is active: on plain homogeneous
  // models the ranking — and therefore every schedule the engine emits —
  // stays bit-identical to the pre-extension solver.
  const bool defer_hopeless =
      model.hetero_speeds() || model.num_affinity_groups() > 0;
  auto hopeless = [&](CpJobIndex j) -> int {
    if (!defer_hopeless) return 0;
    return model.completion_lower_bound(j) > model.job(j).deadline ? 1 : 0;
  };

  auto key = [&](CpJobIndex j) -> std::tuple<int, Time, std::int64_t> {
    const CpJob& job = model.job(j);
    // Jobs with unset external ids (-1) fall back to the model index so
    // the secondary key is always a total order — otherwise EDF/LLF/FCFS
    // ties would collapse to equal keys and the ranking would depend on
    // stable_sort input order alone.
    const std::int64_t id = job.external_id >= 0 ? job.external_id : j;
    switch (ordering) {
      case JobOrdering::kJobId:
        return {hopeless(j), Time{0}, id};
      case JobOrdering::kEdf:
        return {hopeless(j), job.deadline, id};
      case JobOrdering::kLeastLaxity:
        return {hopeless(j), job.deadline - job.earliest_start -
                                 work[static_cast<std::size_t>(j)],
                id};
      case JobOrdering::kFcfs:
        return {hopeless(j), job.earliest_start, id};
    }
    return {0, Time{0}, j};
  };
  std::stable_sort(jobs.begin(), jobs.end(), [&](CpJobIndex a, CpJobIndex b) {
    return key(a) < key(b);
  });

  std::vector<int> rank(n);
  for (std::size_t pos = 0; pos < jobs.size(); ++pos) {
    rank[static_cast<std::size_t>(jobs[pos])] = static_cast<int>(pos);
  }
  return rank;
}

SearchRoot::SearchRoot(const Model& model) : model_(&model) {
  // Profiles for every (resource, phase) pair. Zero-capacity phases get a
  // 1-capacity placeholder that is never used (tasks cannot select them:
  // build_choices filters on capacity >= demand).
  profiles_.reserve(model.num_resources() * 2);
  net_profiles_.reserve(model.num_resources());
  for (const CpResource& r : model.resources()) {
    profiles_.emplace_back(std::max(1, r.map_capacity));
    profiles_.emplace_back(std::max(1, r.reduce_capacity));
    net_profiles_.emplace_back(std::max(1, r.net_capacity));
  }
  links_constrained_ = model.links_constrained();
#if MRCP_AUDIT_ENABLED
  audit_small_ = model.num_tasks() <= audit::kAuditModelSizeLimit;
  audit_profiles_.reserve(model.num_resources() * 2);
  audit_net_profiles_.reserve(model.num_resources());
  for (const CpResource& r : model.resources()) {
    audit_profiles_.emplace_back(std::max(1, r.map_capacity));
    audit_profiles_.emplace_back(std::max(1, r.reduce_capacity));
    audit_net_profiles_.emplace_back(std::max(1, r.net_capacity));
  }
#endif

  placements_.assign(model.num_tasks(), TaskPlacement{});
  fixed_map_end_.assign(model.num_jobs(), Time{0});
  fixed_completion_.assign(model.num_jobs(), Time{0});
  job_late_.assign(model.num_jobs(), 0);

  // Root state: pinned tasks are pre-placed; statically-late jobs are
  // counted from the start (their completion lower bound already exceeds
  // the deadline, so every leaf below the root has them late).
  for (std::size_t ji = 0; ji < model.num_jobs(); ++ji) {
    const CpJob& j = model.job(static_cast<CpJobIndex>(ji));
    fixed_map_end_[ji] = j.earliest_start;
    if (model.completion_lower_bound(static_cast<CpJobIndex>(ji)) > j.deadline) {
      job_late_[ji] = 1;
      ++late_count_;
    }
  }
  auto net_constrained = [&](CpResourceIndex r, const CpTask& t) {
    return t.net_demand > 0 && model.resource(r).net_capacity > 0;
  };
  if (model.num_affinity_groups() > 0) {
    group_use_.assign(static_cast<std::size_t>(model.num_affinity_groups()) *
                          model.num_resources(),
                      0);
  }
  for (std::size_t ti = 0; ti < model.num_tasks(); ++ti) {
    const CpTask& t = model.task(static_cast<CpTaskIndex>(ti));
    if (!t.pinned) {
      free_tasks_.push_back(static_cast<CpTaskIndex>(ti));
      continue;
    }
    // Pinned tasks occupy their fixed resource for the duration scaled by
    // THAT machine's speed.
    const Time dur =
        model.duration_on(static_cast<CpTaskIndex>(ti), t.pinned_resource);
    profiles_[static_cast<std::size_t>(t.pinned_resource) * 2 +
              static_cast<std::size_t>(t.phase)]
        .add(t.pinned_start, dur, t.demand);
    if (net_constrained(t.pinned_resource, t)) {
      net_profiles_[static_cast<std::size_t>(t.pinned_resource)].add(
          t.pinned_start, dur, t.net_demand);
    }
    MRCP_AUDIT_ONLY({
      audit_profiles_[static_cast<std::size_t>(t.pinned_resource) * 2 +
                      static_cast<std::size_t>(t.phase)]
          .add(t.pinned_start, dur, t.demand);
      if (net_constrained(t.pinned_resource, t)) {
        audit_net_profiles_[static_cast<std::size_t>(t.pinned_resource)].add(
            t.pinned_start, dur, t.net_demand);
      }
    })
    if (t.affinity_group >= 0) {
      ++group_use_[static_cast<std::size_t>(t.affinity_group) *
                       model.num_resources() +
                   static_cast<std::size_t>(t.pinned_resource)];
    }
    placements_[ti] = TaskPlacement{t.pinned_resource, t.pinned_start};
    const Time end = t.pinned_start + dur;
    const auto ji = static_cast<std::size_t>(t.job);
    if (t.phase == Phase::kMap) {
      fixed_map_end_[ji] = std::max(fixed_map_end_[ji], end);
    }
    fixed_completion_[ji] = std::max(fixed_completion_[ji], end);
    // Lateness of pinned tasks is covered by completion_lower_bound above.
  }

  // User precedences (workflow DAGs): the decision order must fix every
  // predecessor before its successor so earliest starts propagate along
  // edges. The graph (user edges plus the implicit MapReduce barrier —
  // see reset()) is rank-independent, so it is built once here; reset()
  // re-derives each ranking's order as a priority-topological sort over
  // it.
  if (model.num_precedences() > 0) {
    succs_.assign(model.num_tasks(), {});
    indeg_.assign(model.num_tasks(), 0);
    for (CpTaskIndex t : free_tasks_) {
      for (CpTaskIndex p : model.predecessors(t)) {
        if (model.task(p).pinned) continue;  // already fixed at the root
        succs_[static_cast<std::size_t>(p)].push_back(t);
        ++indeg_[static_cast<std::size_t>(t)];
      }
    }
    // The implicit MapReduce barrier (all maps before all reduces of a
    // job) is only encoded in the rank-derived preference order, which
    // the topological re-derivation is free to override: a cross-job user
    // edge can otherwise hoist a reduce ahead of its own job's last map,
    // and the reduce would then be placed against a stale fixed map end.
    // Make the barrier explicit so the topo order always respects it.
    for (const CpJob& j : model.jobs()) {
      for (CpTaskIndex mt : j.map_tasks) {
        if (model.task(mt).pinned) continue;
        for (CpTaskIndex rt : j.reduce_tasks) {
          if (model.task(rt).pinned) continue;
          succs_[static_cast<std::size_t>(mt)].push_back(rt);
          ++indeg_[static_cast<std::size_t>(rt)];
        }
      }
    }
  }
}

SetTimesSearch::SetTimesSearch(const SearchRoot& root)
    : root_(root),
      model_(root.model()),
      links_constrained_(root.links_constrained_),
      profiles_(root.profiles_),
      net_profiles_(root.net_profiles_),
#if MRCP_AUDIT_ENABLED
      audit_profiles_(root.audit_profiles_),
      audit_net_profiles_(root.audit_net_profiles_),
      audit_small_(root.audit_small_),
#endif
      placements_(root.placements_),
      fixed_map_end_(root.fixed_map_end_),
      fixed_completion_(root.fixed_completion_),
      job_late_(root.job_late_),
      late_count_(root.late_count_),
      group_use_(root.group_use_) {
}

SetTimesSearch::SetTimesSearch(std::unique_ptr<SearchRoot> owned_root)
    : owned_root_(std::move(owned_root)),
      root_(*owned_root_),
      model_(root_.model()),
      links_constrained_(root_.links_constrained_),
      profiles_(root_.profiles_),
      net_profiles_(root_.net_profiles_),
#if MRCP_AUDIT_ENABLED
      audit_profiles_(root_.audit_profiles_),
      audit_net_profiles_(root_.audit_net_profiles_),
      audit_small_(root_.audit_small_),
#endif
      placements_(root_.placements_),
      fixed_map_end_(root_.fixed_map_end_),
      fixed_completion_(root_.fixed_completion_),
      job_late_(root_.job_late_),
      late_count_(root_.late_count_),
      group_use_(root_.group_use_) {
}

SetTimesSearch::SetTimesSearch(const Model& model, std::vector<int> job_rank,
                               std::vector<std::uint8_t> lpt_within_job)
    : SetTimesSearch(std::make_unique<SearchRoot>(model)) {
  reset(job_rank, lpt_within_job);
}

void SetTimesSearch::reset(const std::vector<int>& job_rank,
                           const std::vector<std::uint8_t>& lpt_within_job) {
  MRCP_CHECK(job_rank.size() == model_.num_jobs());
  job_rank_ = job_rank;
  if (lpt_within_job.empty()) {
    lpt_within_job_.assign(model_.num_jobs(), 0);
  } else {
    MRCP_CHECK(lpt_within_job.size() == model_.num_jobs());
    lpt_within_job_ = lpt_within_job;
  }
  MRCP_AUDIT_ONLY(audit_at_root();)

  // Decision order: jobs by rank; within a job maps before reduces (the
  // reduce earliest start needs the fixed map ends); within a phase, LPT
  // or index order per the job's lpt_within_job flag.
  order_ = root_.free_tasks_;
  std::stable_sort(order_.begin(), order_.end(), [&](CpTaskIndex a, CpTaskIndex b) {
    const CpTask& ta = model_.task(a);
    const CpTask& tb = model_.task(b);
    const int ra = job_rank_[static_cast<std::size_t>(ta.job)];
    const int rb = job_rank_[static_cast<std::size_t>(tb.job)];
    if (ra != rb) return ra < rb;
    if (ta.phase != tb.phase) return ta.phase == Phase::kMap;
    if (lpt_within_job_[static_cast<std::size_t>(ta.job)] != 0 &&
        ta.duration != tb.duration) {
      return ta.duration > tb.duration;
    }
    return a < b;
  });

  // Re-derive the order as a priority-topological sort over the root's
  // precedence DAG (user edges + map→reduce barrier) that stays as close
  // to the preference order above as the DAG permits.
  if (model_.num_precedences() > 0) {
    topo_position_.assign(model_.num_tasks(), -1);
    for (std::size_t i = 0; i < order_.size(); ++i) {
      topo_position_[static_cast<std::size_t>(order_[i])] = static_cast<int>(i);
    }
    topo_indeg_ = root_.indeg_;
    // Min-heap on preference position.
    auto later = [&](CpTaskIndex a, CpTaskIndex b) {
      return topo_position_[static_cast<std::size_t>(a)] >
             topo_position_[static_cast<std::size_t>(b)];
    };
    topo_heap_.clear();
    for (CpTaskIndex t : order_) {
      if (topo_indeg_[static_cast<std::size_t>(t)] == 0) topo_heap_.push_back(t);
    }
    std::make_heap(topo_heap_.begin(), topo_heap_.end(), later);
    topo_out_.clear();
    topo_out_.reserve(order_.size());
    while (!topo_heap_.empty()) {
      std::pop_heap(topo_heap_.begin(), topo_heap_.end(), later);
      const CpTaskIndex t = topo_heap_.back();
      topo_heap_.pop_back();
      topo_out_.push_back(t);
      for (CpTaskIndex s : root_.succs_[static_cast<std::size_t>(t)]) {
        if (--topo_indeg_[static_cast<std::size_t>(s)] == 0) {
          topo_heap_.push_back(s);
          std::push_heap(topo_heap_.begin(), topo_heap_.end(), later);
        }
      }
    }
    MRCP_CHECK_MSG(topo_out_.size() == order_.size(),
                   "precedence graph has a cycle");
    std::swap(order_, topo_out_);
  }
}

Profile& SetTimesSearch::profile(CpResourceIndex r, Phase phase) {
  return profiles_[static_cast<std::size_t>(r) * 2 +
                   static_cast<std::size_t>(phase)];
}

#if MRCP_AUDIT_ENABLED
void SetTimesSearch::audit_slot_query(CpResourceIndex r, Phase phase, Time est,
                                      Time duration, int demand, Time got) {
  if (!audit_small_) return;
  MRCP_AUDIT_CHECK(audit::check_earliest_feasible_answer(profile(r, phase), est,
                                                         duration, demand, got));
  const audit::ReferenceProfile& ref =
      audit_profiles_[static_cast<std::size_t>(r) * 2 +
                      static_cast<std::size_t>(phase)];
  const Time ref_got = ref.earliest_feasible(est, duration, demand);
  if (ref_got != got) {
    std::ostringstream os;
    os << "cumulative audit: slot earliest_feasible(est=" << est
       << ", dur=" << duration << ", demand=" << demand << ") = " << got
       << " but reference sweep says " << ref_got << " on resource " << r;
    MRCP_CHECK_MSG(false, os.str().c_str());
  }
}

void SetTimesSearch::audit_net_query(CpResourceIndex r, Time est, Time duration,
                                     int net_demand, Time got) {
  if (!audit_small_) return;
  Profile& net = net_profiles_[static_cast<std::size_t>(r)];
  MRCP_AUDIT_CHECK(audit::check_earliest_feasible_answer(net, est, duration,
                                                         net_demand, got));
  const audit::ReferenceProfile& ref =
      audit_net_profiles_[static_cast<std::size_t>(r)];
  const Time ref_got = ref.earliest_feasible(est, duration, net_demand);
  if (ref_got != got) {
    std::ostringstream os;
    os << "cumulative audit: net earliest_feasible(est=" << est
       << ", dur=" << duration << ", demand=" << net_demand << ") = " << got
       << " but reference sweep says " << ref_got << " on resource " << r;
    MRCP_CHECK_MSG(false, os.str().c_str());
  }
}

void SetTimesSearch::audit_cross_check(CpResourceIndex r, const CpTask& t) {
  if (!audit_small_) return;
  MRCP_AUDIT_CHECK(audit::check_profile_against_reference(
      profile(r, t.phase),
      audit_profiles_[static_cast<std::size_t>(r) * 2 +
                      static_cast<std::size_t>(t.phase)]));
  if (net_constrained(r, t)) {
    MRCP_AUDIT_CHECK(audit::check_profile_against_reference(
        net_profiles_[static_cast<std::size_t>(r)],
        audit_net_profiles_[static_cast<std::size_t>(r)]));
  }
}

void SetTimesSearch::audit_at_root() const {
  // reset() relies on run() having unwound every decision: the mutable
  // state must be exactly the root state.
  MRCP_CHECK_MSG(late_count_ == root_.late_count_,
                 "search reuse audit: late_count diverged from root");
  MRCP_CHECK_MSG(placements_.size() == root_.placements_.size(),
                 "search reuse audit: placement count diverged from root");
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    MRCP_CHECK_MSG(placements_[i].resource == root_.placements_[i].resource &&
                       placements_[i].start == root_.placements_[i].start,
                   "search reuse audit: placements diverged from root");
  }
  MRCP_CHECK_MSG(fixed_map_end_ == root_.fixed_map_end_ &&
                     fixed_completion_ == root_.fixed_completion_ &&
                     job_late_ == root_.job_late_,
                 "search reuse audit: per-job state diverged from root");
  MRCP_CHECK_MSG(group_use_ == root_.group_use_,
                 "search reuse audit: anti-affinity state diverged from root");
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    MRCP_CHECK_MSG(profiles_[i].to_string() == root_.profiles_[i].to_string(),
                   "search reuse audit: slot profile diverged from root");
  }
  for (std::size_t i = 0; i < net_profiles_.size(); ++i) {
    MRCP_CHECK_MSG(
        net_profiles_[i].to_string() == root_.net_profiles_[i].to_string(),
        "search reuse audit: net profile diverged from root");
  }
}
#endif

bool SetTimesSearch::net_constrained(CpResourceIndex r, const CpTask& t) const {
  return t.net_demand > 0 &&
         model_.resource(r).net_capacity > 0;
}

Time SetTimesSearch::earliest_feasible_on(CpResourceIndex r, const CpTask& t,
                                          Time est, Time duration) {
  Profile& slots = profile(r, t.phase);
  if (!net_constrained(r, t)) {
    const Time s = slots.earliest_feasible(est, duration, t.demand);
    MRCP_AUDIT_ONLY(audit_slot_query(r, t.phase, est, duration, t.demand, s);)
    return s;
  }
  Profile& net = net_profiles_[static_cast<std::size_t>(r)];
  // Fixpoint of the two one-dimensional queries: each pass can only move
  // the start later, and both are finitely supported, so this terminates.
  Time start = est;
  while (true) {
    const Time s1 = slots.earliest_feasible(start, duration, t.demand);
    const Time s2 = net.earliest_feasible(s1, duration, t.net_demand);
    MRCP_AUDIT_ONLY({
      audit_slot_query(r, t.phase, start, duration, t.demand, s1);
      audit_net_query(r, s1, duration, t.net_demand, s2);
    })
    if (s2 == s1) return s1;
    start = s2;
  }
}

void SetTimesSearch::build_choices(CpTaskIndex task, Level& level) {
  const CpTask& t = model_.task(task);
  const CpJob& j = model_.job(t.job);
  const auto ji = static_cast<std::size_t>(t.job);
  Time est = t.phase == Phase::kMap
                 ? j.earliest_start
                 : std::max(j.earliest_start, fixed_map_end_[ji]);
  // User-precedence predecessors are fixed before this task (topological
  // decision order) — propagate their exact ends, scaled by the machine
  // each predecessor was placed on.
  for (CpTaskIndex p : model_.predecessors(task)) {
    const TaskPlacement& pp = placements_[static_cast<std::size_t>(p)];
    MRCP_DCHECK(pp.decided());
    est = std::max(est, pp.start + model_.duration_on(p, pp.resource));
  }

  level.choices.clear();
  auto consider = [&](CpResourceIndex r) {
    const CpResource& res = model_.resource(r);
    if (res.capacity(t.phase) < t.demand) return;
    // In a links-constrained cluster a zero-capacity resource offers no
    // link at all — it is not a valid home for a net-demanding task.
    if (t.net_demand > 0 && links_constrained_ &&
        res.net_capacity < t.net_demand) {
      return;
    }
    // Anti-affinity: a resource already holding a task of this group is
    // not an alternative (the branch simply never exists).
    if (t.affinity_group >= 0 && group_use(t.affinity_group, r) > 0) return;
    level.choices.push_back(
        Choice{r, earliest_feasible_on(r, t, est, model_.duration_on(task, r))});
  };
  if (t.candidates.empty()) {
    for (CpResourceIndex r = 0; r < static_cast<CpResourceIndex>(model_.num_resources());
         ++r) {
      consider(r);
    }
  } else {
    for (CpResourceIndex r : t.candidates) consider(r);
  }
  // A task no resource can host is a dead end, not a crash: the caller
  // backtracks through the empty level (and reports exhaustion at the
  // root). Unreachable for models that pass Model::validate(), which
  // requires a capable candidate per task — kept recoverable so the
  // degraded-mode pipeline can treat it as kInfeasible.
  if (level.choices.empty()) return;
  std::stable_sort(level.choices.begin(), level.choices.end(),
                   [](const Choice& a, const Choice& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.resource < b.resource;
                   });

  // Postponed-start branches on the earliest resource: skip past the next
  // profile change(s). This is the "second branch" of set-times search.
  const Choice best = level.choices.front();
  Profile& prof = profile(best.resource, t.phase);
  const Time best_dur = model_.duration_on(task, best.resource);
  Time from = best.start;
  postponed_scratch_.clear();
  for (int k = 0; k < level.postpone_budget; ++k) {
    const Time event = prof.next_event_after(from);
    if (event == kMaxTime) break;
    const Time start = earliest_feasible_on(best.resource, t, event, best_dur);
    if (start <= from) break;
    postponed_scratch_.push_back(Choice{best.resource, start});
    from = start;
  }
  level.choices.insert(level.choices.end(), postponed_scratch_.begin(),
                       postponed_scratch_.end());
}

void SetTimesSearch::apply(CpTaskIndex task, Level& level, const Choice& choice) {
  const CpTask& t = model_.task(task);
  const auto ji = static_cast<std::size_t>(t.job);
  const CpJob& j = model_.job(t.job);

  const Time dur = model_.duration_on(task, choice.resource);
  profile(choice.resource, t.phase).add(choice.start, dur, t.demand);
  if (net_constrained(choice.resource, t)) {
    net_profiles_[static_cast<std::size_t>(choice.resource)].add(
        choice.start, dur, t.net_demand);
  }
  MRCP_AUDIT_ONLY({
    audit_profiles_[static_cast<std::size_t>(choice.resource) * 2 +
                    static_cast<std::size_t>(t.phase)]
        .add(choice.start, dur, t.demand);
    if (net_constrained(choice.resource, t)) {
      audit_net_profiles_[static_cast<std::size_t>(choice.resource)].add(
          choice.start, dur, t.net_demand);
    }
    audit_cross_check(choice.resource, t);
  })
  if (t.affinity_group >= 0) ++group_use(t.affinity_group, choice.resource);
  placements_[static_cast<std::size_t>(task)] =
      TaskPlacement{choice.resource, choice.start};

  level.applied = true;
  level.applied_choice = choice;
  level.prev_fixed_map_end = fixed_map_end_[ji];
  level.prev_fixed_completion = fixed_completion_[ji];
  level.prev_late = job_late_[ji] != 0;

  const Time end = choice.start + dur;
  if (t.phase == Phase::kMap) {
    fixed_map_end_[ji] = std::max(fixed_map_end_[ji], end);
  }
  fixed_completion_[ji] = std::max(fixed_completion_[ji], end);
  if (end > j.deadline && job_late_[ji] == 0) {
    job_late_[ji] = 1;
    ++late_count_;
  }
}

void SetTimesSearch::undo(CpTaskIndex task, Level& level) {
  MRCP_CHECK(level.applied);
  const CpTask& t = model_.task(task);
  const auto ji = static_cast<std::size_t>(t.job);

  const Time dur = model_.duration_on(task, level.applied_choice.resource);
  profile(level.applied_choice.resource, t.phase)
      .remove(level.applied_choice.start, dur, t.demand);
  if (net_constrained(level.applied_choice.resource, t)) {
    net_profiles_[static_cast<std::size_t>(level.applied_choice.resource)]
        .remove(level.applied_choice.start, dur, t.net_demand);
  }
  MRCP_AUDIT_ONLY({
    audit_profiles_[static_cast<std::size_t>(level.applied_choice.resource) * 2 +
                    static_cast<std::size_t>(t.phase)]
        .remove(level.applied_choice.start, dur, t.demand);
    if (net_constrained(level.applied_choice.resource, t)) {
      audit_net_profiles_[static_cast<std::size_t>(
                              level.applied_choice.resource)]
          .remove(level.applied_choice.start, dur, t.net_demand);
    }
    audit_cross_check(level.applied_choice.resource, t);
  })
  if (t.affinity_group >= 0) {
    --group_use(t.affinity_group, level.applied_choice.resource);
  }
  placements_[static_cast<std::size_t>(task)] = TaskPlacement{};

  fixed_map_end_[ji] = level.prev_fixed_map_end;
  fixed_completion_[ji] = level.prev_fixed_completion;
  if (job_late_[ji] != 0 && !level.prev_late) {
    job_late_[ji] = 0;
    --late_count_;
  }
  level.applied = false;
}

Solution SetTimesSearch::run(const SearchLimits& limits, const Solution* incumbent,
                             SearchStats* stats) {
  MRCP_CHECK_MSG(job_rank_.size() == model_.num_jobs(),
                 "SetTimesSearch::run() before reset()");
  Stopwatch timer;
  SearchStats local_stats;
  SearchStats& st = stats ? *stats : local_stats;
  st = SearchStats{};

  Solution best;
  if (incumbent && incumbent->valid) best = *incumbent;

  // Degenerate case: nothing to decide (all tasks pinned or no tasks).
  if (order_.empty()) {
    Solution sol;
    sol.placements = placements_;
    if (model_.num_tasks() == 0) {
      sol.valid = true;
      sol.job_completion.assign(model_.num_jobs(), Time{0});
      sol.job_late.assign(model_.num_jobs(), 0);
    } else {
      evaluate_solution(model_, sol);
    }
    st.solutions = 1;
    st.exhausted = true;
    if (sol.better_than(best)) best = sol;
    return best;
  }

  // Level storage persists across runs/resets (same thread), so choice
  // vectors keep their capacity and deep backtracks stop reallocating.
  if (levels_.size() < order_.size()) levels_.resize(order_.size());
  for (std::size_t d = 0; d < order_.size(); ++d) {
    levels_[d].postpone_budget = limits.postpone_tries;
    levels_[d].applied = false;
  }
  std::vector<Level>& levels = levels_;

  std::size_t depth = 0;
  bool level_fresh = true;  // does levels[depth] need (re)building?
  bool done = false;

  // The soft budget never interrupts the initial descent: the search
  // must normally return a complete schedule (it is the RM's primary
  // source of one), and the first descent costs only one placement per
  // task. Only the hard watchdog below can cut a descent short.
  auto over_budget = [&]() {
    if (!best.valid) return false;
    return st.fails > limits.max_fails ||
           ((st.decisions & 0xFF) == 0 &&
            timer.elapsed_seconds() > limits.time_limit_s);
  };

  std::atomic<int>* shared = limits.shared_late_bound;
  // The shared bound is read through a periodically refreshed cache so
  // the per-decision prune test stays off the shared cache line. The
  // cache is always >= the true bound (the bound is a running minimum),
  // so a stale value only prunes less — the determinism argument in
  // SearchLimits::shared_late_bound covers every refresh schedule.
  int shared_cache = shared ? shared->load(std::memory_order_relaxed)
                            : std::numeric_limits<int>::max();
  auto publish_shared = [&](int num_late) {
    if (!shared || num_late >= shared_cache) return;
    shared_cache = num_late;
    int cur = shared->load(std::memory_order_relaxed);
    while (num_late < cur &&
           !shared->compare_exchange_weak(cur, num_late,
                                          std::memory_order_relaxed)) {
    }
    if (limits.bound_auditor) limits.bound_auditor->on_publish(num_late, *shared);
  };

  while (!done) {
    // Hard watchdog: unlike the soft budget this aborts even before a
    // first solution exists (the RM's degraded-mode ladder recovers via
    // the EDF fallback scheduler). Checked every 8 decisions so the
    // healthy path pays one null test per iteration.
    if (limits.hard_deadline != nullptr && (st.decisions & 0x7) == 0 &&
        limits.hard_deadline->expired()) {
      st.aborted = true;
      break;
    }
    if (shared != nullptr && (st.decisions & 0x3F) == 0) {
      shared_cache = std::min(shared_cache,
                              shared->load(std::memory_order_relaxed));
    }

    if (depth == order_.size()) {
      // All tasks fixed: a complete solution.
      Solution sol;
      sol.placements = placements_;
      evaluate_solution(model_, sol);
      ++st.solutions;
      publish_shared(sol.num_late);
      if (sol.better_than(best)) best = sol;
      if (limits.stop_after_first_solution) break;
      // No schedule can beat zero late jobs on the primary objective, and
      // the B&B prune (late_count >= incumbent) would reject every branch
      // anyway; stop rather than burn the fail budget.
      if (best.valid && best.num_late == 0) {
        st.exhausted = true;
        break;
      }
      // Backtrack to search for a strictly better leaf.
      if (depth == 0) break;
      --depth;
      undo(order_[depth], levels[depth]);
      level_fresh = false;
      continue;
    }

    Level& level = levels[depth];
    if (level_fresh) {
      build_choices(order_[depth], level);
      level.next_choice = 0;
    }

    if (level.next_choice >= level.choices.size()) {
      // Exhausted this level: backtrack.
      if (depth == 0) {
        st.exhausted = true;
        break;
      }
      --depth;
      undo(order_[depth], levels[depth]);
      level_fresh = false;
      continue;
    }

    const Choice choice = level.choices[level.next_choice++];
    apply(order_[depth], level, choice);
    ++st.decisions;

    // Branch-and-bound pruning: `late_count_` only grows as more tasks
    // are fixed, so reaching the incumbent's objective kills the branch.
    // The shared bound cuts strictly-worse branches only (late_count_
    // must *exceed* it) — see SearchLimits::shared_late_bound.
    const bool pruned_local = best.valid && late_count_ >= best.num_late;
    const bool pruned_shared = !pruned_local && late_count_ > shared_cache;
    if (pruned_local || pruned_shared) {
      ++st.fails;
      undo(order_[depth], level);
      // Keep this level's remaining choices: a rebuild would reset
      // next_choice and re-apply the pruned branch forever.
      level_fresh = false;
      if (pruned_shared && limits.stop_after_first_solution) {
        // The descent's eventual solution could only be strictly worse
        // than the sibling that published the bound; rerouting here
        // would make the first solution depend on sibling timing, so
        // abort the whole search instead.
        break;
      }
      if (over_budget()) break;
      continue;  // try next choice at this level
    }

    ++depth;
    level_fresh = true;
    if (over_budget()) break;
  }

  // Unwind any applied decisions so the object can be reused.
  while (depth > 0) {
    --depth;
    if (levels[depth].applied) undo(order_[depth], levels[depth]);
  }

  return best;
}

}  // namespace mrcp::cp
