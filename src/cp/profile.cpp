#include "cp/profile.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mrcp::cp {

Profile::Profile(int capacity) : capacity_(capacity) {
  MRCP_CHECK(capacity >= 1);
}

Time Profile::earliest_feasible(Time est, Time duration, int demand) const {
  MRCP_CHECK(duration >= 1);
  MRCP_CHECK(demand >= 1 && demand <= capacity_);

  // Usage just before est: accumulate deltas at times <= est.
  int usage = 0;
  auto it = delta_.begin();
  for (; it != delta_.end() && it->first <= est; ++it) usage += it->second;

  // Sweep segments [seg_start, next_event) looking for a contiguous
  // window of length `duration` with usage + demand <= capacity.
  Time candidate = est;  // start of the current feasible stretch
  bool in_feasible = usage + demand <= capacity_;
  Time seg_start = est;
  while (true) {
    const Time next_change = (it == delta_.end()) ? kMaxTime : it->first;
    if (in_feasible) {
      // Feasible from `candidate`; does the stretch reach duration before
      // the next usage change?
      if (next_change - candidate >= duration) return candidate;
    }
    if (it == delta_.end()) {
      // No more changes; if currently feasible the window is unbounded.
      MRCP_CHECK_MSG(in_feasible, "profile never frees capacity");
      return candidate;
    }
    seg_start = next_change;
    while (it != delta_.end() && it->first == seg_start) {
      usage += it->second;
      ++it;
    }
    const bool feasible_now = usage + demand <= capacity_;
    if (feasible_now && !in_feasible) candidate = seg_start;
    in_feasible = feasible_now;
  }
}

bool Profile::fits(Time start, Time duration, int demand) const {
  MRCP_CHECK(duration >= 1);
  int usage = 0;
  auto it = delta_.begin();
  for (; it != delta_.end() && it->first <= start; ++it) usage += it->second;
  if (usage + demand > capacity_) return false;
  for (; it != delta_.end() && it->first < start + duration; ++it) {
    usage += it->second;
    if (usage + demand > capacity_) return false;
  }
  return true;
}

void Profile::apply(Time start, Time duration, int delta) {
  MRCP_CHECK(duration >= 1);
  delta_[start] += delta;
  if (delta_[start] == 0) delta_.erase(start);
  delta_[start + duration] -= delta;
  auto it = delta_.find(start + duration);
  if (it != delta_.end() && it->second == 0) delta_.erase(it);
}

void Profile::add(Time start, Time duration, int demand) {
  MRCP_CHECK(demand >= 1);
  apply(start, duration, demand);
}

void Profile::remove(Time start, Time duration, int demand) {
  MRCP_CHECK(demand >= 1);
  apply(start, duration, -demand);
}

int Profile::usage_at(Time t) const {
  int usage = 0;
  for (const auto& [time, d] : delta_) {
    if (time > t) break;
    usage += d;
  }
  return usage;
}

Time Profile::next_event_after(Time t) const {
  auto it = delta_.upper_bound(t);
  if (it == delta_.end()) return kMaxTime;
  return it->first;
}

int Profile::peak_usage() const {
  int usage = 0;
  int peak = 0;
  for (const auto& [time, d] : delta_) {
    usage += d;
    peak = std::max(peak, usage);
  }
  return peak;
}

std::string Profile::to_string() const {
  std::ostringstream os;
  os << "Profile{cap=" << capacity_ << ", events=[";
  int usage = 0;
  bool first = true;
  for (const auto& [time, d] : delta_) {
    usage += d;
    if (!first) os << ", ";
    first = false;
    os << time << ":" << usage;
  }
  os << "]}";
  return os.str();
}

}  // namespace mrcp::cp
