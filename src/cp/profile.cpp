#include "cp/profile.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace mrcp::cp {

Profile::Profile(int capacity) : capacity_(capacity) {
  MRCP_CHECK(capacity >= 1);
}

std::size_t Profile::first_after(Time t) const {
  auto it = std::upper_bound(
      timeline_.begin(), timeline_.end(), t,
      [](Time value, const Event& e) { return value < e.time; });
  return static_cast<std::size_t>(it - timeline_.begin());
}

// Both sweeps are block-first: finish the (possibly partial) entry block
// element-wise, then hop whole blocks on the summary alone, and only then
// scan inside the one block the summary could not exclude. The entry
// block must be scanned element-wise even when its summary would allow a
// skip in the other direction — the summary also covers entries before
// `i`, so it can prove nothing about the suffix the caller asked for.
std::size_t Profile::next_violation(std::size_t i, int limit) const {
  const std::size_t n = timeline_.size();
  if (i % kBlockSize != 0) {
    const std::size_t entry_end =
        std::min(n, (i / kBlockSize + 1) * kBlockSize);
    for (; i < entry_end; ++i) {
      if (timeline_[i].usage > limit) return i;
    }
  }
  if (i >= n) return n;
  std::size_t b = i / kBlockSize;
  while (b < blocks_.size() && blocks_[b].max_usage <= limit) ++b;
  i = b * kBlockSize;
  const std::size_t block_end = std::min(n, i + kBlockSize);
  for (; i < block_end; ++i) {
    if (timeline_[i].usage > limit) return i;
  }
  // A block whose max_usage exceeds the limit contains a violation, so
  // the scan above returned unless the block loop ran off the end.
  MRCP_DCHECK(b >= blocks_.size());
  return n;
}

std::size_t Profile::next_ok(std::size_t i, int limit) const {
  const std::size_t n = timeline_.size();
  if (i % kBlockSize != 0) {
    const std::size_t entry_end =
        std::min(n, (i / kBlockSize + 1) * kBlockSize);
    for (; i < entry_end; ++i) {
      if (timeline_[i].usage <= limit) return i;
    }
  }
  if (i >= n) return n;
  std::size_t b = i / kBlockSize;
  while (b < blocks_.size() && blocks_[b].min_usage > limit) ++b;
  i = b * kBlockSize;
  const std::size_t block_end = std::min(n, i + kBlockSize);
  for (; i < block_end; ++i) {
    if (timeline_[i].usage <= limit) return i;
  }
  MRCP_DCHECK(b >= blocks_.size());
  return n;
}

void Profile::rebuild_blocks_from(std::size_t event_index) {
  const std::size_t n = timeline_.size();
  const std::size_t num_blocks = (n + kBlockSize - 1) / kBlockSize;
  blocks_.resize(num_blocks);
  for (std::size_t b = event_index / kBlockSize; b < num_blocks; ++b) {
    const std::size_t lo = b * kBlockSize;
    const std::size_t hi = std::min(lo + kBlockSize, n);
    Block block{timeline_[lo].usage, timeline_[lo].usage};
    for (std::size_t i = lo + 1; i < hi; ++i) {
      block.min_usage = std::min(block.min_usage, timeline_[i].usage);
      block.max_usage = std::max(block.max_usage, timeline_[i].usage);
    }
    blocks_[b] = block;
  }
}

Time Profile::earliest_feasible(Time est, Time duration, int demand) const {
  MRCP_CHECK(duration >= Time{1});
  MRCP_CHECK(demand >= 1 && demand <= capacity_);
  const int limit = capacity_ - demand;  // usage must stay <= limit

  // Locate the segment containing est; step to the first ok segment if
  // est itself is overloaded. The profile is finitely supported, so the
  // final level is 0 and an ok segment always exists.
  std::size_t i = first_after(est);  // first entry strictly after est
  Time candidate;
  if (i == 0 || timeline_[i - 1].usage <= limit) {
    candidate = est;
  } else {
    i = next_ok(i, limit);
    MRCP_DCHECK(i < timeline_.size());
    candidate = timeline_[i].time;
    ++i;
  }
  // Invariant: usage <= limit on [candidate, time of entry i).
  while (true) {
    const std::size_t k = next_violation(i, limit);
    const Time window_end = k < timeline_.size() ? timeline_[k].time : kMaxTime;
    if (window_end - candidate >= duration) return candidate;
    const std::size_t m = next_ok(k + 1, limit);
    MRCP_DCHECK(m < timeline_.size());
    candidate = timeline_[m].time;
    i = m + 1;
  }
}

bool Profile::fits(Time start, Time duration, int demand) const {
  MRCP_CHECK(duration >= Time{1});
  const int limit = capacity_ - demand;
  if (limit < 0) return false;
  std::size_t i = first_after(start);
  if (i > 0 && timeline_[i - 1].usage > limit) return false;
  const Time end = start + duration;
  for (; i < timeline_.size() && timeline_[i].time < end; ++i) {
    if (timeline_[i].usage > limit) return false;
  }
  return true;
}

std::size_t Profile::ensure_event(Time t) {
  auto it = std::lower_bound(
      timeline_.begin(), timeline_.end(), t,
      [](const Event& e, Time value) { return e.time < value; });
  const auto idx = static_cast<std::size_t>(it - timeline_.begin());
  if (it != timeline_.end() && it->time == t) return idx;
  const int level = idx > 0 ? timeline_[idx - 1].usage : 0;
  timeline_.insert(it, Event{t, level});
  return idx;
}

bool Profile::drop_if_redundant(std::size_t i) {
  const int prev = i > 0 ? timeline_[i - 1].usage : 0;
  if (timeline_[i].usage != prev) return false;
  timeline_.erase(timeline_.begin() + static_cast<std::ptrdiff_t>(i));
  return true;
}

void Profile::apply(Time start, Time duration, int delta) {
  MRCP_CHECK(duration >= Time{1});
  const Time end = start + duration;

  // Fast path: the interval begins at or after the last change point, so
  // the whole edit is an amortized-O(1) tail append (the common case the
  // set-times search produces when it fixes tasks in time order).
  if (timeline_.empty() || start >= timeline_.back().time) {
    const int base = timeline_.empty() ? 0 : timeline_.back().usage;
    const std::size_t first_touched =
        timeline_.empty() ? 0 : timeline_.size() - 1;
    if (!timeline_.empty() && timeline_.back().time == start) {
      timeline_.back().usage += delta;
      drop_if_redundant(timeline_.size() - 1);
    } else if (delta != 0) {
      timeline_.push_back(Event{start, base + delta});
    }
    if (!timeline_.empty() && timeline_.back().time != end &&
        timeline_.back().usage != base) {
      timeline_.push_back(Event{end, base});
    }
    rebuild_blocks_from(first_touched);
    return;
  }

  std::size_t lo = ensure_event(start);
  std::size_t hi = ensure_event(end);
  MRCP_DCHECK(lo < hi);
  for (std::size_t i = lo; i < hi; ++i) timeline_[i].usage += delta;
  // Re-canonicalize the two edit boundaries (interior entries keep their
  // pairwise-distinct levels: they all shifted by the same delta).
  if (drop_if_redundant(lo)) --hi;
  drop_if_redundant(hi);
  rebuild_blocks_from(lo > 0 ? lo - 1 : 0);
}

void Profile::add(Time start, Time duration, int demand) {
  MRCP_CHECK(demand >= 1);
  apply(start, duration, demand);
}

void Profile::remove(Time start, Time duration, int demand) {
  MRCP_CHECK(demand >= 1);
  apply(start, duration, -demand);
}

int Profile::usage_at(Time t) const {
  const std::size_t i = first_after(t);
  return i > 0 ? timeline_[i - 1].usage : 0;
}

Time Profile::next_event_after(Time t) const {
  const std::size_t i = first_after(t);
  return i < timeline_.size() ? timeline_[i].time : kMaxTime;
}

int Profile::peak_usage() const {
  int peak = 0;
  for (const Block& b : blocks_) peak = std::max(peak, b.max_usage);
  return peak;
}

std::string Profile::to_string() const {
  std::ostringstream os;
  os << "Profile{cap=" << capacity_ << ", events=[";
  bool first = true;
  for (const Event& e : timeline_) {
    if (!first) os << ", ";
    first = false;
    os << e.time << ":" << e.usage;
  }
  os << "]}";
  return os.str();
}

}  // namespace mrcp::cp
