// Set-times branch-and-bound search.
//
// The search fixes one task per decision level, in a static order derived
// from a job ranking (the paper's "job ordering strategies", §VI.B: job
// id, EDF, least laxity first). For the chosen task it branches on the
// alternative (candidate resource) and on postponed start times; within a
// branch the start is the earliest time the resource's timetable admits
// (set-times). Lateness indicators N_j are propagated eagerly: as soon as
// a fixed task ends after its job's deadline the job is late, and a
// branch is pruned when the number of certainly-late jobs reaches the
// incumbent objective (branch-and-bound on sum N_j). Jobs whose static
// completion lower bound already exceeds their deadline are counted late
// from the root.
//
// The first descent (taking the first branch everywhere) is an EDF/LLF
// list schedule, so the search is anytime: it always returns a feasible
// schedule, improved for as long as the fail/time budget lasts. The one
// exception is the optional hard watchdog (SearchLimits::hard_deadline),
// which may abort even the first descent — callers that set it must be
// prepared for an invalid result (SearchStats::aborted).
//
// Root state is factored into SearchRoot: everything that depends only on
// the Model (pinned-task replay into the timetables, the static lateness
// lower bounds, the precedence DAG with the implicit map→reduce barrier)
// is computed once and shared by any number of SetTimesSearch instances.
// A search is re-targeted at a new (job ranking, intra-job order) with
// reset(), which costs only the decision-order rebuild — the portfolio
// and LNS phases of solve() rely on this to run one cached search per
// worker thread instead of reconstructing per member (docs/perf.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "cp/audit.h"
#include "cp/model.h"
#include "cp/profile.h"
#include "cp/solution.h"

namespace mrcp::cp {

struct SearchLimits {
  std::int64_t max_fails = 2000;      ///< prune-events before giving up
  double time_limit_s = 1.0;          ///< wall-clock cap for this search
  int postpone_tries = 2;             ///< extra delayed-start branches per level
  bool stop_after_first_solution = false;
  /// Shared incumbent late-count for parallel portfolio/LNS workers
  /// (nullptr = none). Every solution found is published with a
  /// fetch-min; a branch whose certain-late count strictly exceeds the
  /// bound is pruned. The strict inequality is what keeps the solver's
  /// deterministic winner fold exact: a search that ties the bound is
  /// never cut, so it returns the same solution it would sequentially,
  /// and a cut search could only have returned a solution that loses
  /// every tie-break. A first-solution search aborts (returns no
  /// solution) instead of rerouting past the cut, so its result never
  /// depends on sibling timing. The search reads the atomic through a
  /// periodically refreshed local cache (a stale bound only prunes
  /// less, which the argument above already covers), so the hot loop
  /// does not hammer the shared cache line. See docs/cp_engine.md.
  std::atomic<int>* shared_late_bound = nullptr;
  /// Optional monitor for shared_late_bound publishes (available in every
  /// build; installed automatically by solve() in MRCP_AUDIT builds).
  /// Publishes are rare — one per solution found — so the null check is
  /// free next to the search itself.
  audit::SharedBoundAuditor* bound_auditor = nullptr;
  /// Optional hard watchdog. The soft budget above never interrupts a
  /// search that has no solution yet (anytime guarantee: the first
  /// descent always completes), but an expired hard deadline aborts the
  /// search even mid-descent, possibly leaving the caller without a
  /// solution (SearchStats::aborted). The degraded-mode pipeline
  /// (docs/degraded_mode.md) recovers via the EDF fallback scheduler;
  /// nullptr (the default) preserves the always-return-a-schedule
  /// behaviour exactly.
  const Deadline* hard_deadline = nullptr;
};

struct SearchStats {
  std::int64_t decisions = 0;
  std::int64_t fails = 0;
  std::int64_t solutions = 0;
  bool exhausted = false;  ///< search space fully explored (proof of optimality)
  bool aborted = false;    ///< hard deadline expired before completion
};

/// Immutable per-model root state shared by every SetTimesSearch over the
/// same Model: the timetable profiles with all pinned tasks replayed, the
/// pre-computed pinned placements and per-job fixed end/lateness state,
/// the list of free (non-pinned) tasks, and the precedence DAG (user
/// edges plus the implicit map→reduce barrier) used by the priority-topo
/// decision-order rebuild. Building one costs what a full search
/// construction used to; every search created from it (and every reset())
/// then pays only for what a new job ranking actually changes.
///
/// Thread-safety: const after construction; any number of searches on any
/// threads may share one root.
class SearchRoot {
 public:
  explicit SearchRoot(const Model& model);

  const Model& model() const { return *model_; }

 private:
  friend class SetTimesSearch;

  const Model* model_;
  bool links_constrained_ = false;
  std::vector<Profile> profiles_;      ///< [resource * 2 + phase], pinned replayed
  std::vector<Profile> net_profiles_;  ///< [resource], pinned replayed
#if MRCP_AUDIT_ENABLED
  std::vector<audit::ReferenceProfile> audit_profiles_;
  std::vector<audit::ReferenceProfile> audit_net_profiles_;
  bool audit_small_ = false;
#endif
  std::vector<TaskPlacement> placements_;  ///< pinned tasks placed, rest unset
  std::vector<Time> fixed_map_end_;
  std::vector<Time> fixed_completion_;
  std::vector<std::uint8_t> job_late_;  ///< statically-late jobs
  int late_count_ = 0;
  std::vector<CpTaskIndex> free_tasks_;  ///< non-pinned tasks, index order
  /// Precedence DAG over free tasks (user edges + map→reduce barrier);
  /// populated only when the model has user precedences — without them
  /// the preference order already respects the barrier.
  std::vector<std::vector<CpTaskIndex>> succs_;
  std::vector<int> indeg_;
  /// Anti-affinity occupancy [group * num_resources + resource]: how many
  /// tasks of each group sit on each resource (pinned tasks replayed).
  /// Empty when the model has no affinity groups.
  std::vector<int> group_use_;
};

class SetTimesSearch {
 public:
  /// Create a search over a shared root. The search holds a reference to
  /// `root` (which must outlive it) and starts un-targeted: call reset()
  /// with a job ranking before run().
  explicit SetTimesSearch(const SearchRoot& root);

  /// Convenience constructor owning a private root; equivalent to
  /// SearchRoot(model) + SetTimesSearch(root) + reset(ranks, lpt).
  ///
  /// `job_rank[j]` gives job j's scheduling priority (lower = fixed
  /// earlier). Must be a permutation-like ranking of all jobs.
  ///
  /// `lpt_within_job[j]` selects the intra-job decision order: when set,
  /// job j's tasks are fixed longest-first (LPT — reproduces the job's
  /// minimum-makespan list schedule, so a job alone on the cluster always
  /// achieves exactly its TE); when clear, tasks are fixed in index order
  /// (FIFO — staggers task endings, which leaves earlier slot holes for
  /// later-arriving urgent jobs). Empty means FIFO for every job.
  SetTimesSearch(const Model& model, std::vector<int> job_rank,
                 std::vector<std::uint8_t> lpt_within_job = {});

  /// Re-target the search at a new (job ranking, intra-job order). Only
  /// the decision order is recomputed — the timetables, placements and
  /// lateness state are already back at the root state because run()
  /// always unwinds its decisions (verified against the root in
  /// MRCP_AUDIT builds). Scratch buffers (choice lists, topo heaps) keep
  /// their capacity across resets, so a reused search allocates nothing
  /// in steady state. Same `lpt_within_job` semantics as the constructor.
  void reset(const std::vector<int>& job_rank,
             const std::vector<std::uint8_t>& lpt_within_job = {});

  /// Run the search. If `incumbent` is a valid solution it seeds the
  /// branch-and-bound upper bound (the paper's warm start across MRCP-RM
  /// invocations). Returns the best solution found (always valid for a
  /// structurally valid model). The search object is reusable afterwards:
  /// every decision is undone on exit, restoring the root state.
  Solution run(const SearchLimits& limits, const Solution* incumbent,
               SearchStats* stats);

 private:
  struct Choice {
    CpResourceIndex resource;
    Time start;
  };
  struct Level {
    std::vector<Choice> choices;
    std::size_t next_choice = 0;
    int postpone_budget = 0;
    bool applied = false;
    // Undo data for the applied choice:
    Choice applied_choice{kAnyResource, kNoTime};
    Time prev_fixed_map_end;
    Time prev_fixed_completion;
    bool prev_late = false;
  };

  /// Delegation target for the owning (convenience) constructor.
  explicit SetTimesSearch(std::unique_ptr<SearchRoot> owned_root);

  Profile& profile(CpResourceIndex r, Phase phase);
#if MRCP_AUDIT_ENABLED
  /// Audit one slot-profile earliest_feasible answer: monotone,
  /// idempotent, minimal, and equal to the O(n^2) reference oracle.
  void audit_slot_query(CpResourceIndex r, Phase phase, Time est,
                        Time duration, int demand, Time got);
  /// Same for a network-profile query.
  void audit_net_query(CpResourceIndex r, Time est, Time duration,
                       int net_demand, Time got);
  /// Cross-check the fast profiles touched by placing/removing `t` on
  /// resource `r` against their shadow reference oracles.
  void audit_cross_check(CpResourceIndex r, const CpTask& t);
  /// Verify the mutable state equals the root state (called by reset():
  /// run() must have unwound every decision).
  void audit_at_root() const;
#endif
  /// Earliest start >= est feasible on BOTH the phase-slot profile and
  /// (when the resource constrains links and the task uses them) the
  /// network profile — computed as a fixpoint of the two queries.
  /// `duration` is the task's effective duration ON resource `r`
  /// (assignment-dependent on heterogeneous clusters).
  Time earliest_feasible_on(CpResourceIndex r, const CpTask& t, Time est,
                            Time duration);
  bool net_constrained(CpResourceIndex r, const CpTask& t) const;
  /// Anti-affinity occupancy of (group, resource); groups only.
  int& group_use(int group, CpResourceIndex r) {
    return group_use_[static_cast<std::size_t>(group) *
                          model_.num_resources() +
                      static_cast<std::size_t>(r)];
  }
  void build_choices(CpTaskIndex task, Level& level);
  void apply(CpTaskIndex task, Level& level, const Choice& choice);
  void undo(CpTaskIndex task, Level& level);

  /// Owning storage for the convenience constructor; unused when sharing.
  std::unique_ptr<SearchRoot> owned_root_;
  const SearchRoot& root_;
  const Model& model_;
  bool links_constrained_ = false;  ///< cached Model::links_constrained()
  std::vector<int> job_rank_;
  std::vector<std::uint8_t> lpt_within_job_;
  std::vector<CpTaskIndex> order_;  ///< non-pinned tasks, decision order

  std::vector<Profile> profiles_;      ///< [resource * 2 + phase]
  std::vector<Profile> net_profiles_;  ///< [resource], link usage
#if MRCP_AUDIT_ENABLED
  /// Shadow oracles mirroring every profile mutation; cross-checked
  /// against the fast profiles after each apply/undo and every
  /// earliest-feasible query (audit builds only, small models only).
  std::vector<audit::ReferenceProfile> audit_profiles_;
  std::vector<audit::ReferenceProfile> audit_net_profiles_;
  bool audit_small_ = false;
#endif
  std::vector<TaskPlacement> placements_;
  std::vector<Time> fixed_map_end_;     ///< per job: max end of fixed maps
  std::vector<Time> fixed_completion_;  ///< per job: max end of all fixed tasks
  std::vector<std::uint8_t> job_late_;
  int late_count_ = 0;
  std::vector<int> group_use_;  ///< anti-affinity occupancy, see SearchRoot

  /// Scratch reused across run()s and reset()s (capacity persists, so a
  /// cached search stops reallocating choice vectors on deep backtracks
  /// and topo buffers on reorder — the free-list the hot path needs).
  std::vector<Level> levels_;
  std::vector<Choice> postponed_scratch_;
  std::vector<int> topo_position_;
  std::vector<int> topo_indeg_;
  std::vector<CpTaskIndex> topo_heap_;
  std::vector<CpTaskIndex> topo_out_;
};

/// Compute job ranks for the standard orderings.
enum class JobOrdering {
  kJobId,        ///< by external job id (paper strategy 1)
  kEdf,          ///< earliest deadline first (paper strategy 2)
  kLeastLaxity,  ///< least laxity first (paper strategy 3)
  kFcfs          ///< by earliest start time (extension)
};

const char* job_ordering_name(JobOrdering ordering);

std::vector<int> make_job_ranks(const Model& model, JobOrdering ordering);

}  // namespace mrcp::cp
