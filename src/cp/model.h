// CP model of the matchmaking-and-scheduling problem (paper Table 1).
//
// The model mirrors the paper's OPL formulation:
//   * every task is an interval of fixed duration with a demand q_t;
//   * the `alternative` constraint (which resource executes the task) is
//     represented by each task's candidate-resource set — exactly one
//     candidate is selected in a solution (Constraint 1/7);
//   * map tasks start at or after the job's earliest start s_j
//     (Constraint 2);
//   * a job's reduce tasks start after all its map tasks end
//     (Constraint 3);
//   * per-resource cumulative constraints cap concurrent map tasks at
//     c_r^mp and reduce tasks at c_r^rd (Constraints 5/6), enforced by
//     timetable propagation in the solver;
//   * N_j is set when the job's last task ends after d_j (Constraint 4);
//     the objective minimizes sum N_j (ties broken by total completion
//     time, which left-packs schedules the way set-times search does in
//     CP Optimizer).
//
// Tasks that have already started executing in the open system are
// *pinned*: their resource and start are fixed by an equality constraint
// (paper §V.B lines 11-12) and the earliest-start constraint no longer
// applies to them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mrcp::cp {

/// Index types within one model instance.
using CpTaskIndex = std::int32_t;
using CpJobIndex = std::int32_t;
using CpResourceIndex = std::int32_t;

inline constexpr CpResourceIndex kAnyResource = -1;

enum class Phase : std::uint8_t { kMap = 0, kReduce = 1 };

struct CpTask {
  CpJobIndex job = -1;
  Phase phase = Phase::kMap;
  /// Base duration at baseline machine speed. The effective duration is
  /// assignment-dependent on heterogeneous clusters — use
  /// Model::duration_on(task, resource), never `start + duration`.
  Time duration;
  int demand = 1;
  /// Network-link units consumed while running; constrained by the
  /// resource's net_capacity when that is > 0 (a second cumulative
  /// dimension — the §VII "communication links" extension).
  int net_demand = 0;

  /// Candidate resources; empty means "any resource in the model"
  /// (the alternative constraint ranges over all of them).
  std::vector<CpResourceIndex> candidates;

  /// Pinned tasks are already running: resource and start are fixed.
  bool pinned = false;
  CpResourceIndex pinned_resource = kAnyResource;
  Time pinned_start;

  /// Anti-affinity group id, or -1. Tasks sharing a group must be placed
  /// on pairwise-distinct resources (dense model-global ids assigned via
  /// Model::set_affinity_group).
  int affinity_group = -1;

  /// External identity, carried through so the resource manager can map
  /// solutions back to its own job/task ids. Not interpreted by the solver.
  std::int64_t external_id = -1;
};

struct CpJob {
  Time earliest_start;      ///< s_j (already clamped to "now" by the RM)
  Time deadline;            ///< d_j
  std::int64_t external_id = -1;
  std::vector<CpTaskIndex> map_tasks;
  std::vector<CpTaskIndex> reduce_tasks;
};

struct CpResource {
  int map_capacity = 0;
  int reduce_capacity = 0;
  int net_capacity = 0;  ///< 0 = unconstrained links
  /// Machine speed in permille of the baseline (see scale_duration).
  int speed_permille = kBaseSpeedPermille;
  int capacity(Phase phase) const {
    return phase == Phase::kMap ? map_capacity : reduce_capacity;
  }
};

class Model {
 public:
  CpResourceIndex add_resource(int map_capacity, int reduce_capacity,
                               int net_capacity = 0,
                               int speed_permille = kBaseSpeedPermille);
  CpJobIndex add_job(Time earliest_start, Time deadline,
                     std::int64_t external_id = -1);
  CpTaskIndex add_task(CpJobIndex job, Phase phase, Time duration, int demand = 1,
                       std::int64_t external_id = -1, int net_demand = 0);

  /// Restrict the alternative for `task` to the given resources.
  void restrict_candidates(CpTaskIndex task, std::vector<CpResourceIndex> resources);

  /// Put `task` in anti-affinity group `group` (>= 0): tasks sharing a
  /// group must be placed on pairwise-distinct resources. Group ids must
  /// be dense model-global ids (num_affinity_groups() tracks the count).
  void set_affinity_group(CpTaskIndex task, int group);
  int num_affinity_groups() const { return num_affinity_groups_; }

  /// Effective duration of `task` when executed by `resource`: its base
  /// duration scaled by the machine's speed. This is THE duration used by
  /// timetables, solution ends and validators — `task.duration` alone is
  /// only meaningful at baseline speed.
  Time duration_on(CpTaskIndex task, CpResourceIndex resource) const {
    return scale_duration(
        tasks_[static_cast<std::size_t>(task)].duration,
        resources_[static_cast<std::size_t>(resource)].speed_permille);
  }

  /// Valid lower bound on the effective duration of `task` regardless of
  /// where it is eventually placed: its base duration scaled by the
  /// fastest machine in the model. (Restricting to the task's candidate
  /// set would be tighter but this stays O(1), and the bound only feeds
  /// must-be-late detection and ordering heuristics.)
  Time min_duration(CpTaskIndex task) const {
    const Time base = tasks_[static_cast<std::size_t>(task)].duration;
    return max_speed_permille_ > 0 ? scale_duration(base, max_speed_permille_)
                                   : base;
  }

  /// Pin a task that has already started executing (paper §V.B line 11):
  /// fixes its resource and start time.
  void pin_task(CpTaskIndex task, CpResourceIndex resource, Time start);

  /// General precedence: `after` may start only once `before` has ended.
  /// This extends the implicit MapReduce rule (reduces after all maps of
  /// the job) to arbitrary workflow DAGs — the paper's §VII future-work
  /// generalization. The combined graph must be acyclic (validate()).
  void add_precedence(CpTaskIndex before, CpTaskIndex after);

  const std::vector<CpTaskIndex>& predecessors(CpTaskIndex task) const {
    return preds_[static_cast<std::size_t>(task)];
  }
  std::size_t num_precedences() const { return num_precedences_; }

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_jobs() const { return jobs_.size(); }
  std::size_t num_resources() const { return resources_.size(); }

  const CpTask& task(CpTaskIndex i) const {
    return tasks_[static_cast<std::size_t>(i)];
  }
  const CpJob& job(CpJobIndex i) const { return jobs_[static_cast<std::size_t>(i)]; }
  const CpResource& resource(CpResourceIndex i) const {
    return resources_[static_cast<std::size_t>(i)];
  }
  const std::vector<CpTask>& tasks() const { return tasks_; }
  const std::vector<CpJob>& jobs() const { return jobs_; }
  const std::vector<CpResource>& resources() const { return resources_; }

  /// Earliest time `task` may start, from the static constraints alone
  /// (s_j for maps; for reduces, the lower bound implied by the job's map
  /// ends assuming unbounded capacity). Pinned tasks return their start.
  Time static_earliest_start(CpTaskIndex task) const;

  /// Lower bound on the job's completion time from static constraints
  /// (ignores capacity). Used by the search to detect must-be-late jobs.
  Time completion_lower_bound(CpJobIndex job) const;

  /// True when any resource has net_capacity > 0: the cluster models
  /// communication links. A net-demanding task must then fit its
  /// resource's link capacity — a zero-capacity resource has none. With
  /// every capacity zero, links are unconstrained and net_demand is
  /// ignored everywhere.
  bool links_constrained() const;

  /// Structural validation; empty string when consistent.
  std::string validate() const;

  /// Deep structural equality: same resources, jobs, tasks (including
  /// pins, candidates and external ids) and precedence edges. Used by the
  /// incremental resource manager's audit layer to cross-check that a
  /// fingerprint-matched cached model really equals a freshly built one
  /// (docs/incremental.md).
  friend bool structurally_equal(const Model& a, const Model& b);

  /// True when any resource runs at a non-baseline speed: durations are
  /// assignment-dependent.
  bool hetero_speeds() const { return hetero_speeds_; }

 private:
  std::vector<CpTask> tasks_;
  std::vector<CpJob> jobs_;
  std::vector<CpResource> resources_;
  std::vector<std::vector<CpTaskIndex>> preds_;  ///< per-task predecessors
  std::size_t num_precedences_ = 0;
  int num_affinity_groups_ = 0;
  int max_speed_permille_ = 0;  ///< fastest machine seen; 0 = no resources
  bool hetero_speeds_ = false;
};

}  // namespace mrcp::cp
