#include "cp/solver.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace mrcp::cp {

namespace {

/// Per-job intra-order selection for the adaptive portfolio member: LPT
/// for jobs whose deadline is tight relative to a capacity-aware
/// makespan lower bound (LPT reproduces the minimum-makespan list
/// schedule), FIFO for loose jobs (staggered task endings leave earlier
/// holes for future arrivals).
std::vector<std::uint8_t> adaptive_lpt_flags(const Model& model) {
  // Total slot capacity per phase across all resources.
  Time map_slots = 0;
  Time reduce_slots = 0;
  for (const CpResource& r : model.resources()) {
    map_slots += r.map_capacity;
    reduce_slots += r.reduce_capacity;
  }
  map_slots = std::max<Time>(map_slots, 1);
  reduce_slots = std::max<Time>(reduce_slots, 1);

  std::vector<Time> map_work(model.num_jobs(), 0);
  std::vector<Time> map_max(model.num_jobs(), 0);
  std::vector<Time> reduce_work(model.num_jobs(), 0);
  std::vector<Time> reduce_max(model.num_jobs(), 0);
  for (const CpTask& t : model.tasks()) {
    const auto j = static_cast<std::size_t>(t.job);
    if (t.phase == Phase::kMap) {
      map_work[j] += t.duration;
      map_max[j] = std::max(map_max[j], t.duration);
    } else {
      reduce_work[j] += t.duration;
      reduce_max[j] = std::max(reduce_max[j], t.duration);
    }
  }
  std::vector<std::uint8_t> flags(model.num_jobs(), 0);
  for (std::size_t j = 0; j < model.num_jobs(); ++j) {
    const CpJob& job = model.job(static_cast<CpJobIndex>(j));
    const Time lb =
        std::max(map_max[j], (map_work[j] + map_slots - 1) / map_slots) +
        std::max(reduce_max[j],
                 (reduce_work[j] + reduce_slots - 1) / reduce_slots);
    if (lb <= 0) continue;
    const Time budget = job.deadline - job.earliest_start;
    // Tight: less than ~30% slack over the alone-on-the-cluster bound.
    flags[j] = budget * 10 < lb * 13 ? 1 : 0;
  }
  return flags;
}

/// Ranks with one job promoted to the front (all ranks below its old rank
/// shift up by one). Used by LNS to give a late job first pick.
std::vector<int> promote_job(const std::vector<int>& ranks, std::size_t job) {
  std::vector<int> out = ranks;
  const int old_rank = out[job];
  for (auto& r : out) {
    if (r < old_rank) ++r;
  }
  out[job] = 0;
  return out;
}

}  // namespace

SolveResult solve(const Model& model, const SolveParams& params,
                  const Solution* warm_start) {
  MRCP_CHECK_MSG(model.validate().empty(), "invalid model passed to solve()");
  Stopwatch timer;
  SolveResult result;
  SolveStats& stats = result.stats;

  Solution best;
  if (warm_start && warm_start->valid) best = *warm_start;

  auto remaining = [&]() {
    return params.time_limit_s - timer.elapsed_seconds();
  };
  auto account = [&](const SearchStats& st) {
    stats.decisions += st.decisions;
    stats.fails += st.fails;
    stats.solutions += st.solutions;
  };

  // Phase 1: greedy portfolio over (job ordering, intra-job task order).
  // LPT within jobs reproduces each job's minimum-makespan list schedule
  // (a lone job finishes exactly at its TE); FIFO staggers task endings,
  // which helps later tight-deadline arrivals find early slot holes.
  std::vector<int> best_ranks;
  std::vector<std::uint8_t> best_lpt(model.num_jobs(), 0);
  MRCP_CHECK(!params.portfolio.empty());
  // Intra-order variants, first-listed wins objective ties: adaptive
  // (LPT only where the deadline demands it) is preferred — staggered
  // task endings leave earlier holes for future arrivals, a benefit the
  // per-solve objective cannot see; all-FIFO and all-LPT must strictly
  // improve to be chosen.
  const std::vector<std::uint8_t> adaptive = adaptive_lpt_flags(model);
  const std::vector<std::vector<std::uint8_t>> intra_variants = {
      adaptive, std::vector<std::uint8_t>(model.num_jobs(), 0),
      std::vector<std::uint8_t>(model.num_jobs(), 1)};
  for (JobOrdering ordering : params.portfolio) {
    for (const std::vector<std::uint8_t>& lpt_variant : intra_variants) {
      if (remaining() <= 0.0 && best.valid) break;
      std::vector<int> ranks = make_job_ranks(model, ordering);
      std::vector<std::uint8_t> lpt = lpt_variant;
      SetTimesSearch search(model, ranks, lpt);
      SearchLimits limits;
      limits.max_fails = 0;
      limits.stop_after_first_solution = true;
      limits.postpone_tries = 0;
      limits.time_limit_s = std::max(remaining(), 0.05);
      SearchStats st;
      Solution sol = search.run(limits, nullptr, &st);
      account(st);
      // Variant selection is keyed on the primary objective only: the
      // completion-time tie-break would otherwise always pick all-LPT by
      // an epsilon, re-synchronizing task endings and hurting future
      // arrivals the current model cannot see.
      const bool strictly_fewer_late =
          sol.valid && (!best.valid || sol.num_late < best.num_late);
      if (strictly_fewer_late) {
        best = sol;
        best_ranks = std::move(ranks);
        best_lpt = std::move(lpt);
        stats.best_ordering = ordering;
      }
    }
  }
  if (best_ranks.empty()) {
    best_ranks = make_job_ranks(model, params.portfolio.front());
  }

  // Phases 2 and 3 can only help while some job is late.
  const bool improvable = best.valid && best.num_late > 0;

  // Phase 2: branch-and-bound improvement from the portfolio incumbent.
  if (improvable && params.improvement_fails > 0 && remaining() > 0.0) {
    SetTimesSearch search(model, best_ranks, best_lpt);
    SearchLimits limits;
    limits.max_fails = params.improvement_fails;
    limits.postpone_tries = params.postpone_tries;
    limits.time_limit_s = remaining();
    SearchStats st;
    Solution sol = search.run(limits, &best, &st);
    account(st);
    if (st.exhausted) stats.proved_optimal = true;
    if (sol.better_than(best)) best = sol;
  }

  // Phase 3: LNS — promote a (random) late job to the front of the
  // ranking and take a fresh first descent.
  if (improvable && params.lns_iterations > 0) {
    RandomStream rng(params.seed, 0x1A5);
    for (int iter = 0; iter < params.lns_iterations; ++iter) {
      if (best.num_late == 0 || remaining() <= 0.0) break;
      // Collect currently-late jobs.
      std::vector<std::size_t> late_jobs;
      for (std::size_t j = 0; j < best.job_late.size(); ++j) {
        if (best.job_late[j]) late_jobs.push_back(j);
      }
      if (late_jobs.empty()) break;
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(late_jobs.size()) - 1));
      std::vector<int> ranks = promote_job(best_ranks, late_jobs[pick]);
      std::vector<std::uint8_t> lpt = best_lpt;
      // Neighbourhood moves: flip the late job's intra-job order, and
      // occasionally swap two job priorities for diversification.
      if (rng.bernoulli(0.5)) {
        lpt[late_jobs[pick]] = lpt[late_jobs[pick]] != 0 ? 0 : 1;
      }
      if (model.num_jobs() >= 2 && rng.bernoulli(0.5)) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.num_jobs()) - 1));
        const auto b = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.num_jobs()) - 1));
        std::swap(ranks[a], ranks[b]);
      }
      SetTimesSearch search(model, ranks, lpt);
      SearchLimits limits;
      limits.max_fails = 0;
      limits.stop_after_first_solution = true;
      limits.postpone_tries = 0;
      limits.time_limit_s = std::max(remaining(), 0.01);
      SearchStats st;
      Solution sol = search.run(limits, nullptr, &st);
      account(st);
      if (sol.better_than(best)) {
        best = sol;
        best_ranks = std::move(ranks);
        best_lpt = std::move(lpt);
        ++stats.lns_improvements;
      }
    }
  }

  if (best.valid && best.num_late == 0) stats.proved_optimal = true;
  stats.solve_seconds = timer.elapsed_seconds();
  result.best = std::move(best);
  return result;
}

}  // namespace mrcp::cp
