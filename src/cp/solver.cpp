#include "cp/solver.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "cp/audit.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace mrcp::cp {

namespace {

/// Per-job intra-order selection for the adaptive portfolio member: LPT
/// for jobs whose deadline is tight relative to a capacity-aware
/// makespan lower bound (LPT reproduces the minimum-makespan list
/// schedule), FIFO for loose jobs (staggered task endings leave earlier
/// holes for future arrivals).
std::vector<std::uint8_t> adaptive_lpt_flags(const Model& model) {
  // Total slot capacity per phase across all resources.
  std::int64_t map_slots = 0;
  std::int64_t reduce_slots = 0;
  for (const CpResource& r : model.resources()) {
    map_slots += r.map_capacity;
    reduce_slots += r.reduce_capacity;
  }
  map_slots = std::max<std::int64_t>(map_slots, 1);
  reduce_slots = std::max<std::int64_t>(reduce_slots, 1);

  std::vector<Time> map_work(model.num_jobs(), Time{0});
  std::vector<Time> map_max(model.num_jobs(), Time{0});
  std::vector<Time> reduce_work(model.num_jobs(), Time{0});
  std::vector<Time> reduce_max(model.num_jobs(), Time{0});
  for (const CpTask& t : model.tasks()) {
    const auto j = static_cast<std::size_t>(t.job);
    if (t.phase == Phase::kMap) {
      map_work[j] += t.duration;
      map_max[j] = std::max(map_max[j], t.duration);
    } else {
      reduce_work[j] += t.duration;
      reduce_max[j] = std::max(reduce_max[j], t.duration);
    }
  }
  std::vector<std::uint8_t> flags(model.num_jobs(), 0);
  for (std::size_t j = 0; j < model.num_jobs(); ++j) {
    const CpJob& job = model.job(static_cast<CpJobIndex>(j));
    const Time lb =
        std::max(map_max[j], ceil_div(map_work[j], map_slots)) +
        std::max(reduce_max[j],
                 ceil_div(reduce_work[j], reduce_slots));
    if (lb <= Time{0}) continue;
    const Time budget = job.deadline - job.earliest_start;
    // Tight: less than ~30% slack over the alone-on-the-cluster bound.
    flags[j] = budget * 10 < lb * 13 ? 1 : 0;
  }
  return flags;
}

/// Ranks with one job promoted to the front (all ranks below its old rank
/// shift up by one). Used by LNS to give a late job first pick.
std::vector<int> promote_job(const std::vector<int>& ranks, std::size_t job) {
  std::vector<int> out = ranks;
  const int old_rank = out[job];
  for (auto& r : out) {
    if (r < old_rank) ++r;
  }
  out[job] = 0;
  return out;
}

/// One worker's result slot, cache-line padded: the portfolio and LNS
/// phases write these concurrently from different threads, and without
/// the alignment two neighbouring slots share a line and every write
/// ping-pongs it between cores (false sharing).
struct alignas(64) ResultSlot {
  Solution sol;
  SearchStats stats;
  bool ran = false;
};

}  // namespace

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kBudgetExhausted: return "budget-exhausted";
    case SolveStatus::kInfeasible: return "infeasible";
  }
  return "unknown";
}

SolveResult solve(const Model& model, const SolveParams& params,
                  const Solution* warm_start, const SearchRoot* shared_root) {
  MRCP_CHECK_MSG(model.validate().empty(), "invalid model passed to solve()");
  Stopwatch timer;
  SolveResult result;
  SolveStats& stats = result.stats;

  Solution best;
  if (warm_start && warm_start->valid) best = *warm_start;

  auto remaining = [&]() {
    double r = params.time_limit_s - timer.elapsed_seconds();
    if (params.hard_deadline != nullptr) {
      r = std::min(r, params.hard_deadline->remaining_seconds());
    }
    return r;
  };
  auto account = [&](const SearchStats& st) {
    stats.decisions += st.decisions;
    stats.fails += st.fails;
    stats.solutions += st.solutions;
    stats.aborted = stats.aborted || st.aborted;
  };

  const int num_threads = ThreadPool::resolve_num_threads(params.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  // Shared immutable root (pinned-task replay, static lateness, the
  // precedence DAG) plus one cached search object per executor thread:
  // portfolio members and LNS neighbourhoods re-target a cached search
  // with reset() — O(decision-order rebuild) — instead of reconstructing
  // profiles and re-running the priority-topo sort per member, which is
  // what made two solver threads slower than one (docs/perf.md). Slot
  // layout: pool workers use their worker id; the calling thread (the
  // sequential path and the B&B phase) uses the last slot. A caller that
  // re-solves a persistent model across invocations can pass its own
  // root and skip this construction entirely.
  std::optional<SearchRoot> owned_root;
  if (shared_root != nullptr) {
    MRCP_CHECK_MSG(&shared_root->model() == &model,
                   "shared SearchRoot was built for a different model");
  } else {
    owned_root.emplace(model);
  }
  const SearchRoot& root = shared_root != nullptr ? *shared_root : *owned_root;
  std::vector<std::unique_ptr<SetTimesSearch>> searches(
      static_cast<std::size_t>(pool ? num_threads + 1 : 1));
  auto local_search = [&]() -> SetTimesSearch& {
    const int wid = pool ? ThreadPool::current_worker_id() : -1;
    auto& slot = searches[wid >= 0 ? static_cast<std::size_t>(wid)
                                   : searches.size() - 1];
    if (!slot) slot = std::make_unique<SetTimesSearch>(root);
    return *slot;
  };

  // Shared incumbent late-count: workers publish every solution they
  // find and cut branches that strictly exceed it. The winner fold below
  // stays bit-identical to the sequential semantics because a search
  // that ties the bound is never cut (see SearchLimits::shared_late_bound).
  std::atomic<int> shared_late{best.valid ? best.num_late
                                          : std::numeric_limits<int>::max()};
  MRCP_AUDIT_ONLY(audit::SharedBoundAuditor bound_auditor;)
  auto descent_limits = [&](double floor_s) {
    SearchLimits limits;
    limits.max_fails = 0;
    limits.stop_after_first_solution = true;
    limits.postpone_tries = 0;
    limits.time_limit_s = std::max(remaining(), floor_s);
    limits.shared_late_bound = &shared_late;
    limits.hard_deadline = params.hard_deadline;
    MRCP_AUDIT_ONLY(limits.bound_auditor = &bound_auditor;)
    return limits;
  };

  // Phase 1: greedy portfolio over (job ordering, intra-job task order).
  // LPT within jobs reproduces each job's minimum-makespan list schedule
  // (a lone job finishes exactly at its TE); FIFO staggers task endings,
  // which helps later tight-deadline arrivals find early slot holes.
  std::vector<int> best_ranks;
  std::vector<std::uint8_t> best_lpt(model.num_jobs(), 0);
  MRCP_CHECK(!params.portfolio.empty());
  // Intra-order variants, first-listed wins objective ties: adaptive
  // (LPT only where the deadline demands it) is preferred — staggered
  // task endings leave earlier holes for future arrivals, a benefit the
  // per-solve objective cannot see; all-FIFO and all-LPT must strictly
  // improve to be chosen.
  const std::vector<std::uint8_t> adaptive = adaptive_lpt_flags(model);
  const std::vector<std::vector<std::uint8_t>> intra_variants = {
      adaptive, std::vector<std::uint8_t>(model.num_jobs(), 0),
      std::vector<std::uint8_t>(model.num_jobs(), 1)};

  struct Member {
    JobOrdering ordering;
    std::vector<int> ranks;
    std::vector<std::uint8_t> lpt;
  };
  std::vector<Member> members;
  members.reserve(params.portfolio.size() * intra_variants.size());
  for (JobOrdering ordering : params.portfolio) {
    const std::vector<int> ranks = make_job_ranks(model, ordering);
    for (const std::vector<std::uint8_t>& lpt_variant : intra_variants) {
      members.push_back(Member{ordering, ranks, lpt_variant});
    }
  }

  std::vector<ResultSlot> member_results(members.size());
  auto run_member = [&](std::size_t i) {
    // An exhausted budget skips the member before any setup — the same
    // monotone check on both the sequential and the pool path, so both
    // do identical work when the budget binds (slot stays ran = false).
    if (remaining() <= 0.0 && best.valid) return;
    ResultSlot& out = member_results[i];
    out.ran = true;
    const SearchLimits limits = descent_limits(0.05);
    SetTimesSearch& search = local_search();
    search.reset(members[i].ranks, members[i].lpt);
    out.sol = search.run(limits, nullptr, &out.stats);
  };
  if (pool) {
    pool->run_indexed(members.size(), run_member);
  } else {
    for (std::size_t i = 0; i < members.size(); ++i) run_member(i);
  }
  // Post-barrier audit, before the fold consumes the member solutions:
  // every member that ran must have produced a constraint-satisfying
  // solution, and the fold below must land exactly on the best late-count
  // in the member set — a pure function of (warm start, member order),
  // which is what makes the winner independent of thread count and
  // completion timing.
  MRCP_AUDIT_ONLY(
      int audit_expected_late = best.valid ? best.num_late
                                           : std::numeric_limits<int>::max();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (!member_results[i].ran || !member_results[i].sol.valid) continue;
        MRCP_AUDIT_CHECK(validate_solution(model, member_results[i].sol));
        if (model.num_tasks() <= audit::kAuditModelSizeLimit) {
          MRCP_AUDIT_CHECK(
              audit::brute_force_check_solution(model, member_results[i].sol));
        }
        audit_expected_late =
            std::min(audit_expected_late, member_results[i].sol.num_late);
      })
  // Deterministic winner fold, in member order — identical to running
  // the members sequentially. Selection is keyed on the primary
  // objective only: the completion-time tie-break would otherwise always
  // pick all-LPT by an epsilon, re-synchronizing task endings and
  // hurting future arrivals the current model cannot see.
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!member_results[i].ran) continue;
    account(member_results[i].stats);
    Solution& sol = member_results[i].sol;
    const bool strictly_fewer_late =
        sol.valid && (!best.valid || sol.num_late < best.num_late);
    if (strictly_fewer_late) {
      best = std::move(sol);
      best_ranks = std::move(members[i].ranks);
      best_lpt = std::move(members[i].lpt);
      stats.best_ordering = members[i].ordering;
    }
  }
  MRCP_AUDIT_ONLY({
    const int folded = best.valid ? best.num_late
                                  : std::numeric_limits<int>::max();
    MRCP_CHECK_MSG(folded == audit_expected_late,
                   "portfolio fold audit: folded incumbent does not equal "
                   "the best member late-count");
  })
  if (best_ranks.empty()) {
    best_ranks = make_job_ranks(model, params.portfolio.front());
  }
  stats.portfolio_seconds = timer.elapsed_seconds();

  // Phases 2 and 3 can only help while some job is late.
  const bool improvable = best.valid && best.num_late > 0;

  // Phase 2: branch-and-bound improvement from the portfolio incumbent.
  if (improvable && params.improvement_fails > 0 && remaining() > 0.0) {
    SetTimesSearch& search = local_search();
    search.reset(best_ranks, best_lpt);
    SearchLimits limits;
    limits.max_fails = params.improvement_fails;
    limits.postpone_tries = params.postpone_tries;
    limits.time_limit_s = remaining();
    limits.hard_deadline = params.hard_deadline;
    SearchStats st;
    Solution sol = search.run(limits, &best, &st);
    account(st);
    if (st.exhausted) stats.proved_optimal = true;
    if (sol.better_than(best)) best = sol;
  }
  stats.improvement_seconds =
      timer.elapsed_seconds() - stats.portfolio_seconds;

  // Phase 3: LNS — promote a (random) late job to the front of the
  // ranking and take a fresh first descent. Neighbourhoods are generated
  // and evaluated `lns_batch` at a time; every neighbourhood of a round
  // derives from the incumbent at the start of the round, with the RNG
  // drawn in generation order, and acceptance folds in that same order —
  // so the outcome depends on lns_batch but not on num_threads.
  if (improvable && params.lns_iterations > 0) {
    RandomStream rng(params.seed, 0x1A5);
    const int batch = std::max(1, params.lns_batch);
    struct Neighbourhood {
      std::vector<int> ranks;
      std::vector<std::uint8_t> lpt;
    };
    int iters_left = params.lns_iterations;
    std::vector<ResultSlot> round_results;
    while (iters_left > 0) {
      if (best.num_late == 0 || remaining() <= 0.0) break;
      // Collect currently-late jobs.
      std::vector<std::size_t> late_jobs;
      for (std::size_t j = 0; j < best.job_late.size(); ++j) {
        if (best.job_late[j]) late_jobs.push_back(j);
      }
      if (late_jobs.empty()) break;

      const int round = std::min(batch, iters_left);
      iters_left -= round;
      std::vector<Neighbourhood> nbhs;
      nbhs.reserve(static_cast<std::size_t>(round));
      for (int r = 0; r < round; ++r) {
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(late_jobs.size()) - 1));
        std::vector<int> ranks = promote_job(best_ranks, late_jobs[pick]);
        std::vector<std::uint8_t> lpt = best_lpt;
        // Neighbourhood moves: flip the late job's intra-job order, and
        // occasionally swap two job priorities for diversification.
        if (rng.bernoulli(0.5)) {
          lpt[late_jobs[pick]] = lpt[late_jobs[pick]] != 0 ? 0 : 1;
        }
        if (model.num_jobs() >= 2 && rng.bernoulli(0.5)) {
          const auto a = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(model.num_jobs()) - 1));
          const auto b = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(model.num_jobs()) - 1));
          std::swap(ranks[a], ranks[b]);
        }
        nbhs.push_back(Neighbourhood{std::move(ranks), std::move(lpt)});
      }

      // Between rounds no worker is running (post-barrier), and the fold
      // above already absorbed every published solution, so this reset
      // can never raise the bound — audited in MRCP_AUDIT builds.
      MRCP_AUDIT_ONLY(bound_auditor.on_reset(best.num_late, shared_late);)
      shared_late.store(best.num_late, std::memory_order_relaxed);
      round_results.assign(nbhs.size(), ResultSlot{});
      auto run_neighbourhood = [&](std::size_t r) {
        const SearchLimits limits = descent_limits(0.01);
        SetTimesSearch& search = local_search();
        search.reset(nbhs[r].ranks, nbhs[r].lpt);
        round_results[r].sol = search.run(limits, nullptr, &round_results[r].stats);
      };
      if (pool && nbhs.size() > 1) {
        pool->run_indexed(nbhs.size(), run_neighbourhood);
      } else {
        for (std::size_t r = 0; r < nbhs.size(); ++r) run_neighbourhood(r);
      }
      MRCP_AUDIT_ONLY(
          for (std::size_t r = 0; r < nbhs.size(); ++r) {
            if (!round_results[r].sol.valid) continue;
            MRCP_AUDIT_CHECK(validate_solution(model, round_results[r].sol));
          })
      for (std::size_t r = 0; r < nbhs.size(); ++r) {
        account(round_results[r].stats);
        if (round_results[r].sol.better_than(best)) {
          best = std::move(round_results[r].sol);
          best_ranks = std::move(nbhs[r].ranks);
          best_lpt = std::move(nbhs[r].lpt);
          ++stats.lns_improvements;
        }
      }
    }
  }
  stats.lns_seconds = timer.elapsed_seconds() - stats.portfolio_seconds -
                      stats.improvement_seconds;

  // Final-answer audit: the returned schedule must satisfy every model
  // constraint (independent brute-force oracle on small models), and the
  // shared bound must have stayed a running minimum throughout.
  MRCP_AUDIT_ONLY({
    if (best.valid) {
      MRCP_AUDIT_CHECK(validate_solution(model, best));
      if (model.num_tasks() <= audit::kAuditModelSizeLimit) {
        MRCP_AUDIT_CHECK(audit::brute_force_check_solution(model, best));
      }
    }
    MRCP_AUDIT_CHECK(bound_auditor.error());
  })
  if (best.valid && best.num_late == 0) stats.proved_optimal = true;
  stats.solve_seconds = timer.elapsed_seconds();
  result.wall_seconds = stats.solve_seconds;
  if (best.valid) {
    result.status =
        stats.proved_optimal ? SolveStatus::kOptimal : SolveStatus::kFeasible;
  } else {
    // No solution at all: either the hard deadline cut every descent
    // short (recoverable — the caller escalates per the degraded-mode
    // ladder) or the searches genuinely exhausted an empty space.
    result.status = stats.aborted ? SolveStatus::kBudgetExhausted
                                  : SolveStatus::kInfeasible;
  }
  result.best = std::move(best);
  return result;
}

}  // namespace mrcp::cp
