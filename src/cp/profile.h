// Timetable profile: the solver-side data structure behind the paper's
// cumulative constraints (Table 1, Constraints 5 and 6).
//
// One Profile exists per (resource, phase) pair with capacity c. It
// stores the usage step function of all intervals placed so far as a
// sorted map of capacity deltas, and answers the query the set-times
// search needs: the earliest start >= est at which an interval of the
// given duration and demand fits without ever exceeding the capacity.
// This is timetable filtering specialised to fully-decided intervals,
// which is exactly the propagation the `pulse`-sum formulation of the
// paper's OPL model performs on the incrementally fixed schedule.
#pragma once

#include <map>
#include <string>

#include "common/types.h"

namespace mrcp::cp {

class Profile {
 public:
  explicit Profile(int capacity);

  int capacity() const { return capacity_; }

  /// Earliest t >= est such that usage(u) + demand <= capacity for all
  /// u in [t, t + duration). Always exists (the profile is finitely
  /// supported), so this never fails. duration >= 1, demand in [1, cap].
  Time earliest_feasible(Time est, Time duration, int demand) const;

  /// True iff the interval [start, start+duration) fits with `demand`.
  bool fits(Time start, Time duration, int demand) const;

  /// Place / remove an interval. remove() must mirror a previous add().
  void add(Time start, Time duration, int demand);
  void remove(Time start, Time duration, int demand);

  /// Usage at time t (number of busy slots).
  int usage_at(Time t) const;

  /// The first time strictly greater than t at which the usage step
  /// function changes; kMaxTime when there is none. Used to enumerate
  /// postponed start candidates during branching.
  Time next_event_after(Time t) const;

  /// Peak usage over the whole horizon (diagnostics/tests).
  int peak_usage() const;

  std::size_t num_events() const { return delta_.size(); }

  std::string to_string() const;

 private:
  void apply(Time start, Time duration, int delta);

  int capacity_;
  std::map<Time, int> delta_;  ///< time -> usage change at that time
};

}  // namespace mrcp::cp
