// Timetable profile: the solver-side data structure behind the paper's
// cumulative constraints (Table 1, Constraints 5 and 6).
//
// One Profile exists per (resource, phase) pair with capacity c. It
// stores the usage step function of all intervals placed so far and
// answers the query the set-times search needs: the earliest start >=
// est at which an interval of the given duration and demand fits
// without ever exceeding the capacity. This is timetable filtering
// specialised to fully-decided intervals, which is exactly the
// propagation the `pulse`-sum formulation of the paper's OPL model
// performs on the incrementally fixed schedule.
//
// Representation: a flat sorted timeline of (time, usage) change points
// — entry i means the usage level is `usage` on [time_i, time_{i+1}).
// Queries enter the timeline with a binary search instead of rescanning
// a delta map from the beginning, appends at or after the last event
// (the common case set-times search produces) are amortized O(1), and a
// per-block min/max skip index lets the feasibility sweep jump whole
// infeasible (or known-feasible) stretches instead of walking them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace mrcp::cp {

class Profile {
 public:
  explicit Profile(int capacity);

  int capacity() const { return capacity_; }

  /// Earliest t >= est such that usage(u) + demand <= capacity for all
  /// u in [t, t + duration). Always exists (the profile is finitely
  /// supported), so this never fails. duration >= 1, demand in [1, cap].
  Time earliest_feasible(Time est, Time duration, int demand) const;

  /// True iff the interval [start, start+duration) fits with `demand`.
  bool fits(Time start, Time duration, int demand) const;

  /// Place / remove an interval. remove() must mirror a previous add().
  void add(Time start, Time duration, int demand);
  void remove(Time start, Time duration, int demand);

  /// Usage at time t (number of busy slots).
  int usage_at(Time t) const;

  /// The first time strictly greater than t at which the usage step
  /// function changes; kMaxTime when there is none. Used to enumerate
  /// postponed start candidates during branching.
  Time next_event_after(Time t) const;

  /// Peak usage over the whole horizon (diagnostics/tests).
  int peak_usage() const;

  std::size_t num_events() const { return timeline_.size(); }

  std::string to_string() const;

 private:
  /// Usage level `usage` holds on [time, next entry's time).
  struct Event {
    Time time;
    int usage;
  };
  /// min/max usage over one block of kBlockSize consecutive events.
  struct Block {
    int min_usage;
    int max_usage;
  };
  static constexpr std::size_t kBlockSize = 64;

  void apply(Time start, Time duration, int delta);
  /// Index of the entry at exactly time t, inserting one (with the
  /// surrounding usage level, i.e. a no-op change point) if absent.
  std::size_t ensure_event(Time t);
  /// Drop entry i if it no longer changes the level; true if dropped.
  bool drop_if_redundant(std::size_t i);
  /// Index of the first entry with time > t (== size() if none).
  std::size_t first_after(Time t) const;
  /// First index >= i whose usage exceeds `limit` (== size() if none).
  std::size_t next_violation(std::size_t i, int limit) const;
  /// First index >= i whose usage is <= `limit` (== size() if none).
  std::size_t next_ok(std::size_t i, int limit) const;
  void rebuild_blocks_from(std::size_t event_index);

  int capacity_;
  std::vector<Event> timeline_;  ///< canonical: times increasing, levels
                                 ///< distinct from their predecessor
  std::vector<Block> blocks_;    ///< skip index over timeline_
};

}  // namespace mrcp::cp
