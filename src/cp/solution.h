// Solution of a CP model: one (resource, start) placement per task, plus
// the derived per-job completions and lateness indicators N_j.
#pragma once

#include <string>
#include <vector>

#include "cp/model.h"

namespace mrcp::cp {

struct TaskPlacement {
  CpResourceIndex resource = kAnyResource;
  Time start = kNoTime;

  bool decided() const { return resource != kAnyResource && start != kNoTime; }
};

struct Solution {
  std::vector<TaskPlacement> placements;  ///< indexed by CpTaskIndex
  std::vector<Time> job_completion;       ///< indexed by CpJobIndex
  std::vector<std::uint8_t> job_late;     ///< N_j

  int num_late = 0;            ///< objective: sum N_j
  Time total_completion;       ///< tie-break: sum of job completions
  bool valid = false;

  /// Lexicographic objective comparison (fewer late jobs, then earlier
  /// total completion).
  bool better_than(const Solution& other) const {
    if (!valid) return false;
    if (!other.valid) return true;
    if (num_late != other.num_late) return num_late < other.num_late;
    return total_completion < other.total_completion;
  }
};

/// Derive job completions / lateness / objective from the placements.
/// Every task must be decided.
void evaluate_solution(const Model& model, Solution& sol);

/// Full validation against every constraint of the model (Table 1):
///   (1/7) each task on exactly one candidate resource,
///   (2)   map starts >= s_j (non-pinned tasks),
///   (3)   reduce starts >= all map ends of the job,
///   (5/6) per-resource per-phase capacity respected at all times,
///   pinning respected, demands within capacity.
/// Returns empty string if the solution satisfies all of them.
std::string validate_solution(const Model& model, const Solution& sol);

}  // namespace mrcp::cp
