#include "baseline/minedf_wc.h"

#include <algorithm>

#include "baseline/aria_estimator.h"
#include "common/check.h"
#include "common/stopwatch.h"

namespace mrcp::baseline {

namespace {

/// Build a phase's dispatch queue in the configured order and precompute
/// the suffix statistics used by remaining_stats().
void build_queue(MinEdfWcScheduler::PhaseQueue& queue, const Job& job,
                 TaskType type, TaskDispatchOrder order) {
  const std::size_t begin = type == TaskType::kMap ? 0 : job.num_map_tasks();
  const std::size_t count =
      type == TaskType::kMap ? job.num_map_tasks() : job.num_reduce_tasks();
  queue.order.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queue.order.push_back(static_cast<int>(begin + i));
  }
  if (order == TaskDispatchOrder::kLpt) {
    std::stable_sort(queue.order.begin(), queue.order.end(), [&](int a, int b) {
      return job.task(static_cast<std::size_t>(a)).exec_time >
             job.task(static_cast<std::size_t>(b)).exec_time;
    });
  }
  queue.suffix_sum.assign(count + 1, Time{0});
  queue.suffix_max.assign(count + 1, Time{0});
  for (std::size_t i = count; i > 0; --i) {
    const Time d =
        job.task(static_cast<std::size_t>(queue.order[i - 1])).exec_time;
    queue.suffix_sum[i - 1] = queue.suffix_sum[i] + d;
    queue.suffix_max[i - 1] = std::max(queue.suffix_max[i], d);
  }
}

}  // namespace

void MinEdfWcScheduler::PhaseQueue::requeue(int task_index, Time duration) {
  MRCP_CHECK_MSG(head > 0, "requeue without a prior pop");
  --head;
  order[head] = task_index;
  suffix_sum[head] = suffix_sum[head + 1] + duration;
  suffix_max[head] = std::max(suffix_max[head + 1], duration);
}

PhaseStats MinEdfWcScheduler::PhaseQueue::remaining_stats(Time now) const {
  PhaseStats stats;
  stats.sum = suffix_sum[head];
  stats.max = suffix_max[head];
  stats.count = static_cast<std::int64_t>(pending());
  for (Time end : running_ends) {
    if (end > now) stats.add(end - now);
  }
  return stats;
}

MinEdfWcScheduler::MinEdfWcScheduler(const Cluster& cluster, LaunchFn launch,
                                     MinEdfConfig config)
    : cluster_(cluster),
      launch_(std::move(launch)),
      config_(config),
      free_map_(cluster.total_map_slots()),
      free_reduce_(cluster.total_reduce_slots()),
      avail_map_(cluster.total_map_slots()),
      avail_reduce_(cluster.total_reduce_slots()) {
  MRCP_CHECK(launch_ != nullptr);
}

void MinEdfWcScheduler::handle_resource_down(int map_slots, int reduce_slots) {
  MRCP_CHECK(map_slots >= 0 && reduce_slots >= 0);
  ++stats_.resource_down_events;
  avail_map_ -= map_slots;
  avail_reduce_ -= reduce_slots;
  MRCP_CHECK_MSG(avail_map_ >= 0 && avail_reduce_ >= 0,
                 "more slots failed than the cluster has");
  // Busy slots on the failed resource are subtracted here too; each of
  // their tasks departs via handle_task_killed (or finishes at this very
  // tick), which adds the slot back — restoring free = avail - running.
  free_map_ -= map_slots;
  free_reduce_ -= reduce_slots;
}

void MinEdfWcScheduler::handle_resource_up(int map_slots, int reduce_slots) {
  MRCP_CHECK(map_slots >= 0 && reduce_slots >= 0);
  ++stats_.resource_up_events;
  avail_map_ += map_slots;
  avail_reduce_ += reduce_slots;
  free_map_ += map_slots;
  free_reduce_ += reduce_slots;
}

void MinEdfWcScheduler::handle_task_killed(JobId job, int task_index,
                                           Time planned_end, Time now) {
  auto it = jobs_.find(job);
  MRCP_CHECK_MSG(it != jobs_.end(), "killed task of unknown job");
  JobRun& run = it->second;
  const Task& task = run.job.task(static_cast<std::size_t>(task_index));
  MRCP_CHECK_MSG(planned_end > now, "killed task had already ended");
  auto drop_exact_end = [planned_end](std::vector<Time>& ends) {
    for (std::size_t i = 0; i < ends.size(); ++i) {
      if (ends[i] == planned_end) {
        ends[i] = ends.back();
        ends.pop_back();
        return;
      }
    }
    MRCP_CHECK_MSG(false, "killed task not among running ends");
  };
  if (task.type == TaskType::kMap) {
    MRCP_CHECK(run.running_maps > 0);
    --run.running_maps;
    drop_exact_end(run.maps.running_ends);
    run.maps.requeue(task_index, task.exec_time);
    ++free_map_;
  } else {
    MRCP_CHECK(run.running_reduces > 0);
    --run.running_reduces;
    drop_exact_end(run.reduces.running_ends);
    run.reduces.requeue(task_index, task.exec_time);
    ++free_reduce_;
  }
  ++stats_.tasks_requeued;
}

void MinEdfWcScheduler::submit(const Job& job, Time now) {
  MRCP_CHECK_MSG(validate_job(job).empty(), "submitted job is invalid");
  MRCP_CHECK_MSG(jobs_.find(job.id) == jobs_.end(), "duplicate job id");
  ++stats_.jobs_submitted;
  JobRun run;
  build_queue(run.maps, job, TaskType::kMap, config_.task_order);
  build_queue(run.reduces, job, TaskType::kReduce, config_.task_order);
  run.maps_unfinished = static_cast<int>(run.maps.pending());
  run.job = job;
  const JobId id = run.job.id;
  jobs_.emplace(id, std::move(run));
  dispatch(now);
}

void MinEdfWcScheduler::on_task_finished(JobId job, int task_index, Time now) {
  auto it = jobs_.find(job);
  MRCP_CHECK_MSG(it != jobs_.end(), "task finished for unknown job");
  JobRun& run = it->second;
  const Task& task = run.job.task(static_cast<std::size_t>(task_index));
  auto drop_one_end = [now](std::vector<Time>& ends) {
    // Remove one entry ending at/before now (the finished task's).
    for (std::size_t i = 0; i < ends.size(); ++i) {
      if (ends[i] <= now) {
        ends[i] = ends.back();
        ends.pop_back();
        return;
      }
    }
    ends.pop_back();  // fallback; should not happen with exact DES times
  };
  if (task.type == TaskType::kMap) {
    MRCP_CHECK(run.running_maps > 0);
    --run.running_maps;
    --run.maps_unfinished;
    drop_one_end(run.maps.running_ends);
    ++free_map_;
  } else {
    MRCP_CHECK(run.running_reduces > 0);
    --run.running_reduces;
    drop_one_end(run.reduces.running_ends);
    ++free_reduce_;
  }
  if (run.finished()) {
    ++stats_.jobs_completed;
    jobs_.erase(it);
  }
  dispatch(now);
}

Time MinEdfWcScheduler::next_eligible_time(Time now) const {
  Time next = kNoTime;
  for (const auto& [id, run] : jobs_) {
    if (run.job.earliest_start > now) {
      if (next == kNoTime || run.job.earliest_start < next) {
        next = run.job.earliest_start;
      }
    }
  }
  return next;
}

std::vector<JobId> MinEdfWcScheduler::edf_order() const {
  std::vector<JobId> order;
  order.reserve(jobs_.size());
  for (const auto& [id, run] : jobs_) order.push_back(id);
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const Time da = jobs_.at(a).job.deadline;
    const Time db = jobs_.at(b).job.deadline;
    if (da != db) return da < db;
    return a < b;
  });
  return order;
}

bool MinEdfWcScheduler::launch_task(JobRun& run, int task_index, Time now) {
  const Task& task = run.job.task(static_cast<std::size_t>(task_index));
  // The driver owns slot-to-resource mapping: it returns the actual
  // (speed-scaled) end, or kNoTime when no eligible slot exists for the
  // task's placement constraints.
  const Time end = launch_(run.job.id, task_index, now, now + task.exec_time);
  if (end == kNoTime) return false;
  MRCP_CHECK_MSG(end > now, "driver returned a non-positive task duration");
  if (task.type == TaskType::kMap) {
    MRCP_CHECK(free_map_ > 0);
    --free_map_;
    ++run.running_maps;
    run.maps.running_ends.push_back(end);
  } else {
    MRCP_CHECK(free_reduce_ > 0);
    --free_reduce_;
    ++run.running_reduces;
    run.reduces.running_ends.push_back(end);
  }
  ++stats_.tasks_launched;
  return true;
}

void MinEdfWcScheduler::dispatch(Time now) {
  Stopwatch timer;
  ++stats_.dispatches;

  const std::vector<JobId> order = edf_order();

  // Pass 1 (MinEDF): grant each job, in EDF order, the extra slots its
  // minimal profile demands beyond what it already runs.
  // Pass 2 (WC): hand remaining slots to EDF-first jobs with pending work.
  std::map<JobId, int> grant_m;
  std::map<JobId, int> grant_r;
  int free_m = free_map_;
  int free_r = free_reduce_;

  for (JobId id : order) {
    const JobRun& run = jobs_.at(id);
    if (run.job.earliest_start > now) continue;  // not yet eligible (AR)
    SlotProfile prof;
    if (config_.allocation == AllocationPolicy::kMaximal) {
      // Plain EDF: grab everything; the EDF pass order is the only
      // prioritization.
      prof.map_slots = avail_map_;
      prof.reduce_slots = avail_reduce_;
      prof.feasible = true;
    } else {
      // Remaining work = pending tasks plus the residual of running
      // tasks; ignoring the running residual would make the estimator
      // think a busy slot can immediately serve pending work. The
      // estimator is capped by the currently-up slot pool (clamped to 1
      // during a total-phase outage; grants are bounded by the free
      // counters anyway, so nothing launches then).
      const PhaseStats map_stats = run.maps.remaining_stats(now);
      const PhaseStats reduce_stats = run.reduces.remaining_stats(now);
      prof = minimal_slot_profile(map_stats, reduce_stats, now,
                                  run.job.deadline, std::max(1, avail_map_),
                                  std::max(1, avail_reduce_), config_.bound);
    }

    int want_m = std::max(0, prof.map_slots - run.running_maps);
    want_m = std::max(
        0, std::min({want_m, static_cast<int>(run.maps.pending()), free_m}));
    grant_m[id] = want_m;
    free_m -= want_m;

    if (run.reduces_eligible()) {
      int want_r = std::max(0, prof.reduce_slots - run.running_reduces);
      want_r = std::max(
          0,
          std::min({want_r, static_cast<int>(run.reduces.pending()), free_r}));
      grant_r[id] = want_r;
      free_r -= want_r;
    }
    if (free_m == 0 && free_r == 0) break;
  }

  for (JobId id : order) {
    if (free_m == 0 && free_r == 0) break;
    const JobRun& run = jobs_.at(id);
    if (run.job.earliest_start > now) continue;
    const int extra_m =
        std::min(free_m, static_cast<int>(run.maps.pending()) - grant_m[id]);
    if (extra_m > 0) {
      grant_m[id] += extra_m;
      free_m -= extra_m;
    }
    if (run.reduces_eligible()) {
      const int extra_r = std::min(
          free_r, static_cast<int>(run.reduces.pending()) - grant_r[id]);
      if (extra_r > 0) {
        grant_r[id] += extra_r;
        free_r -= extra_r;
      }
    }
  }

  // Launch the granted tasks in each job's dispatch order. A refusal
  // (placement-constrained task with no eligible free slot) is stashed
  // and re-queued *after* the job's launches — re-queuing inline would
  // pop/refuse the same head task forever.
  for (JobId id : order) {
    JobRun& run = jobs_.at(id);
    std::vector<int> refused_m;
    std::vector<int> refused_r;
    for (int k = 0; k < grant_m[id]; ++k) {
      const int ti = run.maps.pop_front();
      if (!launch_task(run, ti, now)) refused_m.push_back(ti);
    }
    if (grant_r.count(id) != 0U) {
      for (int k = 0; k < grant_r[id]; ++k) {
        const int ti = run.reduces.pop_front();
        if (!launch_task(run, ti, now)) refused_r.push_back(ti);
      }
    }
    // Reverse re-queue restores the original dispatch order.
    for (auto it = refused_m.rbegin(); it != refused_m.rend(); ++it) {
      run.maps.requeue(*it,
                       run.job.task(static_cast<std::size_t>(*it)).exec_time);
      ++stats_.tasks_refused;
    }
    for (auto it = refused_r.rbegin(); it != refused_r.rend(); ++it) {
      run.reduces.requeue(
          *it, run.job.task(static_cast<std::size_t>(*it)).exec_time);
      ++stats_.tasks_refused;
    }
  }

  stats_.total_sched_seconds += timer.elapsed_seconds();
}

}  // namespace mrcp::baseline
