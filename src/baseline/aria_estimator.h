// ARIA-style completion time estimation and minimal-slot computation
// (Verma et al. — the paper's comparison baseline MinEDF-WC allocates
// "the minimum number of task slots required for completing a job before
// its deadline").
//
// For a set of task durations executed by n slots with greedy list
// scheduling, the classic makespan upper bound used by ARIA is
//     T_up(n) = (sum - max) / n + max
// (Graham's bound). The estimator inverts it: the smallest n with
// T_up(n) <= budget. Phases are sequential (all maps, then all reduces),
// so a job's completion estimate at time `now` is
//     now + T_up^map(n_m) + T_up^reduce(n_r).
// minimal_slot_profile() finds the (n_m, n_r) pair minimizing n_m + n_r
// subject to the estimate meeting the deadline.
#pragma once

#include <vector>

#include "common/types.h"

namespace mrcp::baseline {

/// Graham/ARIA makespan upper bound of `durations` on `slots` slots.
/// Zero for an empty set.
Time completion_upper_bound(const std::vector<Time>& durations, int slots);

/// Smallest slot count n in [1, max_slots] with
/// completion_upper_bound(durations, n) <= budget; 0 if even max_slots
/// cannot meet the budget (or if budget <= 0 while work remains).
/// Returns 0 slots needed when `durations` is empty.
int min_slots_for_budget(const std::vector<Time>& durations, Time budget,
                         int max_slots);

/// Which ARIA completion-time estimate drives the slot allocation.
///
/// Verma et al. derive T_low = N*avg/n and T_up = (N-1)*avg/n + max and
/// report that the *average* of the two predicts completions best; their
/// MinEDF-WC allocates the minimum slots whose T_avg estimate meets the
/// deadline. Under heavy-tailed (LogNormal) task durations T_avg
/// regularly underestimates, which is precisely why the baseline misses
/// deadlines even in light load (paper Fig. 2). kUpper instead uses the
/// Graham bound on the exact durations — a guaranteed-safe allocation,
/// kept as an ablation knob.
enum class AriaBound {
  kAverage,  ///< (T_low + T_up) / 2 on phase statistics — faithful to [8]
  kUpper,    ///< Graham bound on exact durations — conservative variant
};

/// Sufficient statistics of one phase's remaining work. Both ARIA
/// estimates are closed forms over (sum, max, count), so the scheduler
/// can maintain these incrementally instead of materializing duration
/// vectors on every dispatch.
struct PhaseStats {
  Time sum;
  Time max;
  std::int64_t count = 0;

  bool empty() const { return count == 0; }
  void add(Time duration) {
    sum += duration;
    if (duration > max) max = duration;
    ++count;
  }
  static PhaseStats of(const std::vector<Time>& durations);
};

/// Completion-time estimate of the phase on `slots` slots under the
/// chosen bound. Zero for an empty phase. O(1).
Time aria_completion_estimate(const PhaseStats& stats, int slots,
                              AriaBound bound);

/// Vector convenience wrapper.
Time aria_completion_estimate(const std::vector<Time>& durations, int slots,
                              AriaBound bound);

/// Smallest n in [1, max_slots] with aria_completion_estimate(...) <=
/// budget; 0 when unattainable. Returns 0 slots needed for empty work.
int min_slots_for_estimate(const PhaseStats& stats, Time budget, int max_slots,
                           AriaBound bound);
int min_slots_for_estimate(const std::vector<Time>& durations, Time budget,
                           int max_slots, AriaBound bound);

struct SlotProfile {
  int map_slots = 0;
  int reduce_slots = 0;
  bool feasible = false;  ///< deadline achievable with available slots
};

/// Minimal (n_m + n_r) profile meeting `deadline` starting at `now`,
/// with at most max_map/max_reduce slots per phase. When the deadline is
/// unachievable, returns feasible=false with the max slots profile
/// (MinEDF-WC then simply throws everything it can at the job).
SlotProfile minimal_slot_profile(const PhaseStats& map_stats,
                                 const PhaseStats& reduce_stats, Time now,
                                 Time deadline, int max_map_slots,
                                 int max_reduce_slots,
                                 AriaBound bound = AriaBound::kUpper);
SlotProfile minimal_slot_profile(const std::vector<Time>& map_durations,
                                 const std::vector<Time>& reduce_durations,
                                 Time now, Time deadline, int max_map_slots,
                                 int max_reduce_slots,
                                 AriaBound bound = AriaBound::kUpper);

}  // namespace mrcp::baseline
