// MinEDF-WC — the comparison baseline (Verma et al. [8], paper §VI.B.1).
//
// An earliest-deadline-first slot scheduler with work conservation:
//   * jobs are served in EDF order;
//   * each job is granted the *minimum* number of map/reduce slots that
//     its ARIA completion-time estimate says it needs to meet its
//     deadline (aria_estimator.h);
//   * spare slots are handed out work-conservingly to EDF-first jobs with
//     pending tasks;
//   * slots are reclaimed (de-allocated) from jobs as their running tasks
//     finish whenever a more urgent job needs them — tasks are never
//     preempted, matching [8].
//
// Unlike MRCP-RM this scheduler is *dynamic*: it holds no future plan and
// makes decisions only when a job arrives, a job becomes eligible
// (s_j reached), or a task finishes. The simulator drives it through
// submit()/on_task_finished() and launches tasks via the callback.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "baseline/aria_estimator.h"
#include "common/types.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace mrcp::baseline {

/// Order in which a job's pending tasks are dispatched to freed slots.
enum class TaskDispatchOrder {
  kFifo,  ///< input-split order — faithful to Hadoop/ARIA, which does not
          ///< know individual task durations at dispatch time
  kLpt,   ///< longest task first — duration-aware ablation variant
};

/// How many slots a job is granted in the first (pre-work-conserving)
/// pass.
enum class AllocationPolicy {
  /// The minimum per the ARIA estimate (MinEDF of [8]).
  kMinimal,
  /// Everything it can use (plain EDF with work conservation — a naive
  /// baseline that ignores deadline-aware sizing entirely; kept for
  /// comparison benches).
  kMaximal,
};

struct MinEdfConfig {
  /// Which ARIA estimate drives minimal slot allocation. kAverage is
  /// faithful to Verma et al. [8]; kUpper is the conservative ablation.
  AriaBound bound = AriaBound::kAverage;
  TaskDispatchOrder task_order = TaskDispatchOrder::kFifo;
  AllocationPolicy allocation = AllocationPolicy::kMinimal;
};

struct MinEdfStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t tasks_launched = 0;
  std::uint64_t tasks_requeued = 0;  ///< killed by failures, re-queued
  std::uint64_t tasks_refused = 0;   ///< launch refused (placement), re-queued
  std::uint64_t resource_down_events = 0;
  std::uint64_t resource_up_events = 0;
  double total_sched_seconds = 0.0;

  double average_sched_seconds_per_job() const {
    if (jobs_submitted == 0) return 0.0;
    return total_sched_seconds / static_cast<double>(jobs_submitted);
  }
};

class MinEdfWcScheduler {
 public:
  /// Called for every task launch. `base_end` is start + the task's
  /// baseline-speed duration; the driver picks the concrete slot and
  /// returns the *actual* end (scaled by the host's speed factor), which
  /// it must report back via on_task_finished(job, task_index, now) at
  /// that time. Returning kNoTime refuses the launch (no eligible slot —
  /// placement constraints); the task is re-queued and the granted slot
  /// goes unused this dispatch. On a homogeneous, unconstrained cluster
  /// the driver simply returns base_end.
  using LaunchFn = std::function<Time(JobId job, int task_index, Time start,
                                      Time base_end)>;

  MinEdfWcScheduler(const Cluster& cluster, LaunchFn launch,
                    MinEdfConfig config = {});

  void submit(const Job& job, Time now);
  void on_task_finished(JobId job, int task_index, Time now);

  /// A resource with the given slot counts failed: its slots leave the
  /// pool. Free counters may go transiently negative until the driver
  /// reports every task that was running on it via handle_task_killed()
  /// (or a same-tick on_task_finished()); no dispatch happens here —
  /// call wake(now) once the failure is fully processed.
  void handle_resource_down(int map_slots, int reduce_slots);
  /// The resource was repaired: its (idle) slots rejoin the pool. Call
  /// wake(now) afterwards to hand them out.
  void handle_resource_up(int map_slots, int reduce_slots);

  /// A running task was killed at `now` by a resource failure. Its slot
  /// is accounted back (see handle_resource_down) and the task re-enters
  /// the front of its phase queue, to be re-dispatched EDF-style. The
  /// task's previously planned end time identifies it among the job's
  /// running tasks. No dispatch — call wake(now) after the batch.
  void handle_task_killed(JobId job, int task_index, Time planned_end,
                          Time now);

  /// Earliest future s_j among jobs not yet eligible; kNoTime when all
  /// jobs are eligible. The driver should call wake() at that time.
  Time next_eligible_time(Time now) const;
  /// Re-run the dispatch loop (used for s_j wakeups).
  void wake(Time now) { dispatch(now); }

  int free_map_slots() const { return free_map_; }
  int free_reduce_slots() const { return free_reduce_; }
  std::size_t live_jobs() const { return jobs_.size(); }
  const MinEdfStats& stats() const { return stats_; }

 private:
 public:
  /// One phase's dispatch queue. Tasks are consumed from the front only,
  /// so a head index plus precomputed suffix (sum, max) arrays give the
  /// remaining-work statistics in O(1) — dispatch stays cheap even for
  /// jobs with thousands of tasks.
  struct PhaseQueue {
    std::vector<int> order;        ///< flat task indices, dispatch order
    std::vector<Time> suffix_sum;  ///< sum of durations from position i
    std::vector<Time> suffix_max;  ///< max duration from position i
    std::size_t head = 0;
    std::vector<Time> running_ends;  ///< end times of running tasks

    std::size_t pending() const { return order.size() - head; }
    int pop_front() { return order[head++]; }
    /// Push a previously popped task back to the front (failure
    /// recovery); O(1), restores the suffix statistics for its slot.
    void requeue(int task_index, Time duration);
    /// Remaining work = pending durations + residuals of running tasks.
    PhaseStats remaining_stats(Time now) const;
  };

 private:
  struct JobRun {
    Job job;
    PhaseQueue maps;
    PhaseQueue reduces;
    int running_maps = 0;
    int running_reduces = 0;
    int maps_unfinished = 0;  ///< pending + running map tasks

    bool reduces_eligible() const { return maps_unfinished == 0; }
    bool finished() const {
      return maps_unfinished == 0 && reduces.pending() == 0 &&
             running_reduces == 0;
    }
  };

  void dispatch(Time now);
  std::vector<JobId> edf_order() const;
  /// False when the driver refused the launch (caller re-queues).
  bool launch_task(JobRun& run, int task_index, Time now);

  Cluster cluster_;
  LaunchFn launch_;
  MinEdfConfig config_;
  int free_map_ = 0;
  int free_reduce_ = 0;
  /// Slots on currently-up resources; caps the ARIA profile under
  /// failures (equal to the cluster totals while nothing is down).
  int avail_map_ = 0;
  int avail_reduce_ = 0;
  std::map<JobId, JobRun> jobs_;
  MinEdfStats stats_;
};

}  // namespace mrcp::baseline
