#include "baseline/aria_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace mrcp::baseline {

PhaseStats PhaseStats::of(const std::vector<Time>& durations) {
  PhaseStats s;
  for (Time d : durations) s.add(d);
  return s;
}

Time completion_upper_bound(const std::vector<Time>& durations, int slots) {
  const PhaseStats s = PhaseStats::of(durations);
  return aria_completion_estimate(s, slots, AriaBound::kUpper);
}

Time aria_completion_estimate(const PhaseStats& stats, int slots,
                              AriaBound bound) {
  if (stats.empty()) return Time{0};
  MRCP_CHECK(slots >= 1);
  if (bound == AriaBound::kUpper) {
    // Graham bound: ceil((sum - max) / slots) + max.
    return ceil_div(stats.sum - stats.max, slots) + stats.max;
  }
  const Time avg = ceil_div(stats.sum, stats.count);
  // T_low = N*avg/n_slots, T_up = (N-1)*avg/n_slots + max (Verma et al.).
  const Time t_low = ceil_div(stats.sum, slots);
  const Time t_up = ceil_div((stats.count - 1) * avg, slots) + stats.max;
  return (t_low + t_up) / 2;
}

Time aria_completion_estimate(const std::vector<Time>& durations, int slots,
                              AriaBound bound) {
  return aria_completion_estimate(PhaseStats::of(durations), slots, bound);
}

int min_slots_for_budget(const std::vector<Time>& durations, Time budget,
                         int max_slots) {
  return min_slots_for_estimate(PhaseStats::of(durations), budget, max_slots,
                                AriaBound::kUpper);
}

int min_slots_for_estimate(const PhaseStats& stats, Time budget, int max_slots,
                           AriaBound bound) {
  if (stats.empty()) return 0;
  MRCP_CHECK(max_slots >= 1);
  if (budget <= Time{0}) return 0;
  if (bound == AriaBound::kUpper) {
    if (budget < stats.max) return 0;  // unbeatable even with infinite slots
    if (budget >= stats.sum) return 1;
    const Time slack = budget - stats.max;
    if (slack <= Time{0}) return 0;
    int n = static_cast<int>((stats.sum - stats.max + slack - Time{1}) / slack);
    n = std::max(n, 1);
    while (n <= max_slots &&
           aria_completion_estimate(stats, n, bound) > budget) {
      ++n;
    }
    if (n > max_slots) return 0;
    return n;
  }
  // Average estimate: non-increasing in slots; binary search the smallest
  // feasible count.
  if (aria_completion_estimate(stats, max_slots, bound) > budget) return 0;
  int lo = 1;
  int hi = max_slots;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (aria_completion_estimate(stats, mid, bound) <= budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

int min_slots_for_estimate(const std::vector<Time>& durations, Time budget,
                           int max_slots, AriaBound bound) {
  return min_slots_for_estimate(PhaseStats::of(durations), budget, max_slots,
                                bound);
}

SlotProfile minimal_slot_profile(const PhaseStats& map_stats,
                                 const PhaseStats& reduce_stats, Time now,
                                 Time deadline, int max_map_slots,
                                 int max_reduce_slots, AriaBound bound) {
  SlotProfile best;
  best.map_slots = map_stats.empty() ? 0 : max_map_slots;
  best.reduce_slots = reduce_stats.empty() ? 0 : max_reduce_slots;
  best.feasible = false;

  const Time budget = deadline - now;
  if (budget <= Time{0}) return best;

  if (map_stats.empty()) {
    const int nr =
        min_slots_for_estimate(reduce_stats, budget, max_reduce_slots, bound);
    if (nr > 0 || reduce_stats.empty()) {
      best.map_slots = 0;
      best.reduce_slots = nr;
      best.feasible = true;
    }
    return best;
  }
  if (reduce_stats.empty()) {
    const int nm =
        min_slots_for_estimate(map_stats, budget, max_map_slots, bound);
    if (nm > 0) {
      best.map_slots = nm;
      best.reduce_slots = 0;
      best.feasible = true;
    }
    return best;
  }

  // Sweep map slots; for each, the reduce phase gets the residual budget.
  int best_total = max_map_slots + max_reduce_slots + 1;
  for (int nm = 1; nm <= max_map_slots; ++nm) {
    const Time t_map = aria_completion_estimate(map_stats, nm, bound);
    const Time residual = budget - t_map;
    if (residual <= Time{0}) continue;
    const int nr =
        min_slots_for_estimate(reduce_stats, residual, max_reduce_slots, bound);
    if (nr == 0) continue;
    if (nm + nr < best_total) {
      best_total = nm + nr;
      best.map_slots = nm;
      best.reduce_slots = nr;
      best.feasible = true;
    }
    // Once the reduce phase needs a single slot, growing nm only raises
    // the total.
    if (nr == 1) break;
  }
  return best;
}

SlotProfile minimal_slot_profile(const std::vector<Time>& map_durations,
                                 const std::vector<Time>& reduce_durations,
                                 Time now, Time deadline, int max_map_slots,
                                 int max_reduce_slots, AriaBound bound) {
  return minimal_slot_profile(PhaseStats::of(map_durations),
                              PhaseStats::of(reduce_durations), now, deadline,
                              max_map_slots, max_reduce_slots, bound);
}

}  // namespace mrcp::baseline
