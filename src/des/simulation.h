// Discrete event simulation kernel.
//
// This is the hand-rolled DES substrate the paper's evaluation rests on
// (§VI: "a simulation-based approach has been used in this research").
// It is a classic event-list kernel:
//   * events are (time, sequence, callback) triples kept in a binary heap;
//   * ties in time are broken by scheduling order (FIFO), which makes runs
//     deterministic for a fixed seed;
//   * events can be cancelled; cancellation is lazy (the heap entry stays
//     but is skipped on pop), which keeps cancel O(1) — important because
//     MRCP-RM re-plans future task starts on every job arrival, cancelling
//     all not-yet-started task events.
//
// The kernel knows nothing about MapReduce; `mrcp::sim` builds the cluster
// model on top of it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace mrcp::des {

class Simulation;

/// Handle to a scheduled event; used to cancel it. Handles are cheap
/// value types; a default-constructed handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// True if the event has neither fired nor been cancelled.
  bool pending() const;
  /// Scheduling metadata of the referenced event. The sequence number is
  /// what snapshot/restore uses to rebuild the event list with the exact
  /// same-tick tie-break order as the original run (docs/crash_recovery.md).
  /// Requires valid().
  std::uint64_t seq() const;
  Time time() const;

 private:
  friend class Simulation;
  struct State {
    Time time = kTimeZero;
    std::uint64_t seq = 0;
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Statistics the kernel keeps about itself.
struct SimulationStats {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t skipped_cancelled = 0;  ///< popped but already cancelled
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time (ticks). Starts at 0.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  /// Returns a handle usable with cancel().
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedule `fn` `delay` ticks from now (delay >= 0).
  EventHandle schedule_after(Time delay, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or already-
  /// cancelled event is a no-op. Returns true if the event was pending.
  bool cancel(EventHandle& handle);

  /// Run until the event list is empty or `until` is reached (events at
  /// exactly `until` are processed). Pass kMaxTime to drain everything.
  void run(Time until = kMaxTime);

  /// Process exactly one event if any is pending before `until`.
  /// Returns false when no such event exists.
  bool step(Time until = kMaxTime);

  /// Stop the current run() after the in-flight event returns. Calling
  /// this before run() makes that run() return before processing any
  /// event; the request is consumed when run() returns.
  void request_stop() { stop_requested_ = true; }

  bool empty() const { return pending_count_ == 0; }
  std::size_t pending_events() const { return pending_count_; }
  const SimulationStats& stats() const { return stats_; }

  /// Jump the clock of an *empty* simulation forward to `at` — used when
  /// resuming from a snapshot before re-scheduling the captured pending
  /// events (each at a time >= the snapshot instant).
  void restore_clock(Time at);

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_count_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimulationStats stats_;
};

}  // namespace mrcp::des
